// E3/E4 (Theorems 1.3/1.4): parallel single-update algorithms.
//
// NOTE: this container exposes a single hardware thread, so wall-clock
// "speedup" here measures scheduler overhead, not scaling (see
// EXPERIMENTS.md). The experiment therefore reports, per algorithm,
// both time and the machine-independent work proxies; the parallel
// algorithms must match the sequential ones' work shape while being
// expressed as fork-join + primitive calls.
#include "bench_util.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/par.hpp"
#include "parallel/stats.hpp"

using namespace dynsld;
using bench::Timer;

int main() {
  bench::header("E3/E4", "parallel update algorithms (work shape; 1-core box)");
  bench::row("%-12s %8s %7s %10s %10s %10s", "algo", "h", "thr", "ins_us",
             "del_us", "ptr_chgs");
  for (vertex_id h : {1u << 10, 1u << 13}) {
    for (int threads : {1, 2, 4}) {
      par::set_num_workers(threads);
      gen::Forest f = gen::lower_bound_stars(h, 4);
      struct Algo {
        const char* name;
        int kind;  // 0 walk/seq, 1 parallel, 2 parallel-OS
      };
      for (Algo algo : {Algo{"seq", 0}, Algo{"parallel", 1}, Algo{"par_os", 2}}) {
        DynSLD s(f.n, algo.kind == 0 ? SpineIndex::kPointer : SpineIndex::kLct);
        for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
        const int reps = 10;
        double ins = 0, del = 0;
        uint64_t chg = 0;
        for (int r = 0; r < reps; ++r) {
          stats::counters().reset();
          Timer ti;
          edge_id e;
          switch (algo.kind) {
            case 1:
              e = s.insert_parallel(0, h + 1, 0.0);
              break;
            case 2:
              e = s.insert_parallel_output_sensitive(0, h + 1, 0.0);
              break;
            default:
              e = s.insert(0, h + 1, 0.0);
          }
          ins += ti.us();
          chg += stats::counters().pointer_writes.load();
          Timer td;
          if (algo.kind == 0) {
            s.erase(e);
          } else {
            s.erase_parallel(e);
          }
          del += td.us();
        }
        bench::row("%-12s %8u %7d %10.1f %10.1f %10llu", algo.name, h, threads,
                   ins / reps, del / reps,
                   static_cast<unsigned long long>(chg / reps));
      }
    }
  }
  par::set_num_workers(1);
  return 0;
}
