// Runtime substrate microbenchmarks (google-benchmark): the fork-join
// primitives every algorithm in the library is built from. Validates
// that the substrate's constants are sane (§2.3 primitives).
#include <benchmark/benchmark.h>

#include "parallel/par.hpp"
#include "parallel/primitives.hpp"
#include "parallel/random.hpp"

namespace dynsld::par {
namespace {

void BM_ParallelFor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> v(n);
  for (auto _ : state) {
    parallel_for(0, n, [&](size_t i) { v[i] = hash64(i); });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Reduce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i) % 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce<uint64_t>(v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 20);

void BM_Filter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i);
  for (auto _ : state) {
    auto out = filter<uint64_t>(v, [](uint64_t x) { return x % 3 == 0; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Filter)->Arg(1 << 16)->Arg(1 << 20);

void BM_Merge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> a(n / 2), b(n - n / 2);
  for (size_t i = 0; i < a.size(); ++i) a[i] = hash64(i);
  for (size_t i = 0; i < b.size(); ++i) b[i] = hash64(i + 77);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> out(n);
  for (auto _ : state) {
    merge<uint64_t>(a, b, std::span<uint64_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Merge)->Arg(1 << 16)->Arg(1 << 20);

void BM_Sort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> v(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < n; ++i) v[i] = hash64(i);
    state.ResumeTiming();
    par::sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Sort)->Arg(1 << 16)->Arg(1 << 18);

}  // namespace
}  // namespace dynsld::par

BENCHMARK_MAIN();
