// E6: static SLD construction — sequential Kruskal baseline vs the
// batch-insertion-based parallel construction (Thm 1.5 machinery), and
// the dynamic-vs-static crossover point.
//
// Expected shape: Kruskal is O(n log n) regardless of h; batch-based
// construction is competitive; a sequence of k dynamic updates beats
// one static rebuild until k*h ~ n log n.
#include "bench_util.hpp"
#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using bench::Timer;

int main() {
  bench::header("E6", "static construction & dynamic-vs-static crossover");
  bench::row("%-10s %9s %8s %12s %12s", "family", "n", "height", "kruskal_ms",
             "batch_ms");
  for (vertex_id n : {1u << 12, 1u << 14, 1u << 16}) {
    struct Case {
      const char* name;
      gen::Forest f;
    };
    Case cases[] = {
        {"path_inc", gen::path(n, gen::Weights::kIncreasing)},   // h = n-1
        {"path_bal", gen::path(n, gen::Weights::kBalanced)},     // h ~ log n
        {"random", gen::random_tree(n, 7)},
    };
    for (auto& c : cases) {
      Timer tk;
      Dendrogram dk = build_kruskal(c.f.n, c.f.edges);
      double k_ms = tk.ms();
      Timer tb;
      Dendrogram db = build_batch_parallel(c.f.n, c.f.edges);
      double b_ms = tb.ms();
      if (!(dk == db)) bench::row("!! mismatch");
      bench::row("%-10s %9u %8zu %12.2f %12.2f", c.name, n, dk.height(), k_ms,
                 b_ms);
    }
  }

  bench::header("E6b", "crossover: k sequential updates vs one static rebuild");
  bench::row("%9s %9s %14s %14s", "k", "n", "k_updates_ms", "static_ms");
  const vertex_id n = 1 << 15;
  gen::Forest f = gen::random_tree(n, 11);
  DynSLD s(n, SpineIndex::kPointer);
  for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
  par::Rng rng(3);
  for (size_t k : {16u, 128u, 1024u, 8192u}) {
    // k delete+reinsert cycles of random edges.
    Timer tu;
    for (size_t r = 0; r < k; ++r) {
      edge_id e = static_cast<edge_id>(rng.next_bounded(f.edges.size()));
      if (!s.edge_alive(e)) continue;
      WeightedEdge ed = s.edge(e);
      s.erase(e);
      s.insert(ed.u, ed.v, ed.weight);
    }
    double upd_ms = tu.ms();
    auto live = s.edges();
    Timer ts;
    Dendrogram d = build_kruskal(n, live);
    (void)d;
    bench::row("%9zu %9u %14.2f %14.2f", k, n, upd_ms, ts.ms());
  }
  return 0;
}
