// E5 (Theorem 1.5): batch updates vs k single updates vs static rebuild.
//
// Workload: a random forest of many components; a batch of k edges
// joining components (acyclic). Batch deletion removes the same k.
//
// Expected shape: batch cost grows sublinearly vs k singles (shared
// spines/connectivity), and both dynamic paths beat a full static
// rebuild until k·h work approaches n log n.
#include "bench_util.hpp"
#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using bench::Timer;

namespace {

struct Workload {
  vertex_id n;
  gen::Forest base;                       // many components
  std::vector<DynSLD::EdgeInsert> batch;  // k joining edges
};

Workload make(vertex_id n, size_t k, uint64_t seed) {
  Workload w;
  w.n = n;
  // k+1 components so k joining edges keep it a forest.
  w.base = gen::random_forest(n, static_cast<vertex_id>(k + 1), seed);
  // Discover components, then chain them with k edges.
  UnionFind uf(n);
  for (const auto& e : w.base.edges) uf.unite(e.u, e.v);
  std::vector<vertex_id> reps;
  std::vector<char> seen(n, 0);
  for (vertex_id v = 0; v < n; ++v) {
    vertex_id r = uf.find(v);
    if (!seen[r]) {
      seen[r] = 1;
      reps.push_back(v);
    }
  }
  par::Rng rng(seed + 5);
  for (size_t i = 0; i + 1 < reps.size() && w.batch.size() < k; ++i) {
    w.batch.push_back({reps[i], reps[i + 1],
                       static_cast<double>(rng.next_bounded(1u << 30))});
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_json_arg(argc, argv, "batch", /*smoke=*/false, /*workers=*/1);
  bench::header("E5", "batch insert/delete vs k singles vs static rebuild (Thm 1.5)");
  bench::row("%8s %9s %14s %14s %14s %14s", "k", "n", "batch_ins_ms",
             "single_ins_ms", "batch_del_ms", "static_ms");
  const vertex_id n = 1 << 14;
  for (size_t k : {1u, 8u, 64u, 512u, 4096u}) {
    Workload w = make(n, k, 1);
    if (w.batch.size() < k) break;

    // Batch insert.
    DynSLD sb(n, SpineIndex::kPointer);
    for (const auto& e : w.base.edges) sb.insert(e.u, e.v, e.weight);
    Timer tb;
    auto ids = sb.insert_batch(w.batch);
    double batch_ins = tb.ms();

    // Batch delete of the same edges.
    Timer td;
    sb.erase_batch(ids);
    double batch_del = td.ms();

    // k single inserts.
    DynSLD ss(n, SpineIndex::kPointer);
    for (const auto& e : w.base.edges) ss.insert(e.u, e.v, e.weight);
    Timer t1;
    for (const auto& e : w.batch) ss.insert(e.u, e.v, e.weight);
    double single_ins = t1.ms();

    // Static rebuild of base + batch.
    auto all = w.base.edges;
    for (const auto& e : w.batch) {
      all.push_back(WeightedEdge{e.u, e.v, e.weight,
                                 static_cast<edge_id>(all.size())});
    }
    Timer ts;
    Dendrogram d = build_kruskal(n, all);
    double stat = ts.ms();
    (void)d;

    bench::row("%8zu %9u %14.2f %14.2f %14.2f %14.2f", k, n, batch_ins,
               single_ins, batch_del, stat);
    std::string ks = std::to_string(k);
    bench::json_log().metric("E5", "batch_ins_ms_k" + ks, batch_ins, "ms");
    bench::json_log().metric("E5", "single_ins_ms_k" + ks, single_ins, "ms");
    bench::json_log().metric("E5", "batch_del_ms_k" + ks, batch_del, "ms");
    bench::json_log().metric("E5", "static_ms_k" + ks, stat, "ms");
  }
  bench::json_log().write();
  return 0;
}
