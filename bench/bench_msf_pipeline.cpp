// E8 (Problem 2 / §7): end-to-end fully-dynamic single-linkage
// clustering of a dynamic graph — MSF maintenance + explicit dendrogram
// after every update, with interleaved threshold/size queries.
//
// Workload: random geometric graph edge stream (insert all, then churn
// delete/insert), the motivating setting of the intro (point sets whose
// similarity graph evolves).
#include <cmath>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "msf/dynamic_msf.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using bench::Timer;

int main() {
  bench::header("E8", "end-to-end dynamic clustering pipeline (Problem 2)");
  bench::row("%7s %9s %12s %12s %12s %10s", "n", "m", "build_ms", "churn_us",
             "query_us", "height");
  for (vertex_id n : {256u, 512u, 1024u}) {
    gen::Graph g = gen::random_geometric(n, 3.0 / std::sqrt(double(n)), 5);
    DynamicClustering dc(n);
    struct Live {
      vertex_id u, v;
      double w;
      uint32_t h;
    };
    std::vector<Live> live;
    Timer tb;
    for (const auto& e : g.edges) {
      live.push_back({e.u, e.v, e.weight, dc.insert_edge(e.u, e.v, e.weight)});
    }
    double build_ms = tb.ms();

    par::Rng rng(6);
    const int reps = 300;
    Timer tc;
    for (int r = 0; r < reps; ++r) {
      Live& e = live[rng.next_bounded(live.size())];
      dc.erase_edge(e.h);
      e.h = dc.insert_edge(e.u, e.v, e.w);
    }
    double churn_us = tc.us() / reps;

    Timer tq;
    for (int r = 0; r < reps; ++r) {
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
      dc.sld().cluster_size(u, 0.08);
      dc.sld().same_cluster(u, static_cast<vertex_id>(rng.next_bounded(n)), 0.08);
    }
    double query_us = tq.us() / reps;

    bench::row("%7u %9zu %12.2f %12.2f %12.2f %10zu", n, g.edges.size(),
               build_ms, churn_us, query_us, dc.dendrogram().height());
  }
  return 0;
}
