// Shared benchmark helpers: wall-clock timing and aligned table output.
// Every bench prints the experiment id from DESIGN.md, the workload
// parameters, measured times, and machine-independent work proxies
// (pointer changes, queries) so the *shape* claims are checkable even
// on throttled hardware.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace dynsld::bench {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  double us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_)
        .count();
  }
  double ms() const { return us() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

inline void header(const char* experiment, const char* title) {
  std::printf("\n=== %s — %s ===\n", experiment, title);
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stdout, fmt, ap);
  va_end(ap);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace dynsld::bench
