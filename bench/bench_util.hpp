// Shared benchmark helpers: wall-clock timing, aligned table output,
// and the machine-readable trajectory file. Every bench prints the
// experiment id from DESIGN.md, the workload parameters, measured
// times, and machine-independent work proxies (pointer changes,
// queries) so the *shape* claims are checkable even on throttled
// hardware; with --json the same headline numbers are also written as
// a BENCH_*.json record that tools/bench_diff.py can compare across
// commits and tools/bench_schema_check.py can validate in CI.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace dynsld::bench {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  double us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_)
        .count();
  }
  double ms() const { return us() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

inline void header(const char* experiment, const char* title) {
  std::printf("\n=== %s — %s ===\n", experiment, title);
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stdout, fmt, ap);
  va_end(ap);
  std::printf("\n");
  std::fflush(stdout);
}

// The machine-readable bench trajectory: one JSON file per bench run
// holding run metadata plus a flat list of (experiment, name, value,
// unit) metrics. Schema "dynsld-bench-v1":
//
//   {"schema": "dynsld-bench-v1", "bench": "engine", "smoke": true,
//    "workers": 4,
//    "metrics": [{"experiment": "E-ENGINE-7",
//                 "name": "broker_fulfill_p50_us",
//                 "value": 123.4, "unit": "us"}, ...]}
//
// Unit conventions (bench_diff.py keys regression direction off them):
// time units ("ns", "us", "ms", "s") are lower-is-better; rates ("*/s")
// and speedup factors ("x") are higher-is-better; everything else
// ("count", "%", ...) is reported but never fails a comparison.
class JsonLog {
 public:
  /// Arm the log: metrics recorded after this call are written to
  /// `path` when write() runs. Disarmed (default) logs drop metrics.
  void open(std::string path, std::string bench, bool smoke, int workers) {
    path_ = std::move(path);
    bench_ = std::move(bench);
    smoke_ = smoke;
    workers_ = workers;
  }

  /// Armed (i.e. --json was parsed)?
  explicit operator bool() const { return !path_.empty(); }

  /// Record one metric. No-op when disarmed, so call sites need no
  /// guards; non-finite values are recorded as 0 (JSON has no NaN).
  void metric(const std::string& experiment, const std::string& name,
              double value, const std::string& unit) {
    if (path_.empty()) return;
    if (!std::isfinite(value)) value = 0.0;
    entries_.push_back(Entry{experiment, name, unit, value});
  }

  /// Write the file (idempotent; also runs at destruction). Returns
  /// false when disarmed or the file could not be opened.
  bool write() {
    if (path_.empty() || written_) return false;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f,
                 "{\"schema\": \"dynsld-bench-v1\", \"bench\": \"%s\", "
                 "\"smoke\": %s, \"workers\": %d, \"metrics\": [",
                 bench_.c_str(), smoke_ ? "true" : "false", workers_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "%s\n  {\"experiment\": \"%s\", \"name\": \"%s\", "
                   "\"value\": %.6g, \"unit\": \"%s\"}",
                   i ? "," : "", e.experiment.c_str(), e.name.c_str(),
                   e.value, e.unit.c_str());
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("bench: wrote %zu metrics to %s\n", entries_.size(),
                path_.c_str());
    written_ = true;
    return true;
  }

  ~JsonLog() { write(); }

 private:
  struct Entry {
    std::string experiment, name, unit;
    double value = 0;
  };

  std::string path_, bench_;
  bool smoke_ = false;
  bool written_ = false;
  int workers_ = 0;
  std::vector<Entry> entries_;
};

/// The process-wide trajectory log benches record into.
inline JsonLog& json_log() {
  static JsonLog log;
  return log;
}

/// Parse `--json [path]` out of argv and arm json_log() when present
/// (default path BENCH_<bench>.json). Returns whether it was armed.
inline bool parse_json_arg(int argc, char** argv, const char* bench,
                           bool smoke, int workers) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    std::string path;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
      path = argv[i + 1];
    else
      path = std::string("BENCH_") + bench + ".json";
    json_log().open(std::move(path), bench, smoke, workers);
    return true;
  }
  return false;
}

}  // namespace dynsld::bench
