// T2 (Table 2): dendrogram query costs with the explicit SLD (DynSLD)
// vs an MSF-only pipeline (adjacency crawl).
//
// Workload: a forest of clusters of size S connected by heavy bridges;
// queries at a threshold that isolates one cluster.
//
// Expected shape (Table 2): threshold queries O(log n) for both;
// cluster REPORT O(|S|) for both (but low-depth for DynSLD); cluster
// SIZE O(log n) for DynSLD vs O(|S|) for the crawl — the crawl's cost
// grows linearly in S while DynSLD's stays flat.
#include "bench_util.hpp"
#include "dynsld/dyn_sld.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using bench::Timer;

int main(int argc, char** argv) {
  bench::parse_json_arg(argc, argv, "queries", /*smoke=*/false, /*workers=*/1);
  bench::header("T2", "queries: explicit SLD (DynSLD) vs MSF-only crawl");
  bench::row("%9s %9s %12s %12s %12s %12s %12s", "S", "n", "thresh_us",
             "size_us", "size_crawl", "report_us", "report_crawl");
  par::Rng rng(4);
  for (vertex_id S : {16u, 256u, 4096u, 65536u}) {
    vertex_id clusters = std::max<vertex_id>(4, (1u << 18) / S);
    vertex_id n = S * clusters;
    DynSLD s(n, SpineIndex::kLct);
    // Each cluster: a random tree with weights < 100; bridges weight 1e6.
    for (vertex_id c = 0; c < clusters; ++c) {
      vertex_id base = c * S;
      for (vertex_id i = 1; i < S; ++i) {
        s.insert(base + static_cast<vertex_id>(rng.next_bounded(i)), base + i,
                 static_cast<double>(rng.next_bounded(100)));
      }
      if (c > 0) s.insert(base - 1, base, 1e6);
    }
    const double tau = 1000.0;  // isolates one cluster of size S
    const int reps = 50;
    double th_us = 0, sz_us = 0, szc_us = 0, rp_us = 0, rpc_us = 0;
    for (int r = 0; r < reps; ++r) {
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
      vertex_id v = static_cast<vertex_id>(rng.next_bounded(n));
      Timer t1;
      s.same_cluster(u, v, tau);
      th_us += t1.us();
      Timer t2;
      uint64_t a = s.cluster_size(u, tau);
      sz_us += t2.us();
      Timer t3;
      uint64_t b = s.cluster_size_via_crawl(u, tau);
      szc_us += t3.us();
      if (a != b) bench::row("!! size mismatch");
      Timer t4;
      auto rep = s.cluster_report(u, tau);
      rp_us += t4.us();
      Timer t5;
      auto rep2 = s.cluster_report_via_crawl(u, tau);
      rpc_us += t5.us();
      if (rep.size() != rep2.size()) bench::row("!! report mismatch");
    }
    bench::row("%9u %9u %12.2f %12.2f %12.2f %12.2f %12.2f", S, n, th_us / reps,
               sz_us / reps, szc_us / reps, rp_us / reps, rpc_us / reps);
    std::string Ss = std::to_string(S);
    bench::json_log().metric("T2", "thresh_us_S" + Ss, th_us / reps, "us");
    bench::json_log().metric("T2", "size_us_S" + Ss, sz_us / reps, "us");
    bench::json_log().metric("T2", "size_crawl_us_S" + Ss, szc_us / reps,
                             "us");
    bench::json_log().metric("T2", "report_us_S" + Ss, rp_us / reps, "us");
    bench::json_log().metric("T2", "report_crawl_us_S" + Ss, rpc_us / reps,
                             "us");
  }
  bench::json_log().write();
  return 0;
}
