// E1 (Theorem 1.1 / §5): update cost scales with the dendrogram height.
//
// Workload: the Theorem 5.1 lower-bound family (n fixed, h swept).
// Inserting a weight-0 edge between two star centers forces Theta(h)
// pointer changes; deleting it undoes them. Compared against full
// static recomputation (sorted Kruskal) of the same forest.
//
// Expected shape: insert/delete time grows linearly in h while static
// recomputation stays ~flat (it always pays Theta(n log n)); dynamic
// wins by orders of magnitude for small h and stays ahead at h = n-1.
#include "bench_util.hpp"
#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/stats.hpp"

using namespace dynsld;
using bench::Timer;

int main() {
  bench::header("E1", "single update cost vs dendrogram height h (Thm 1.1, Thm 5.1)");
  bench::row("%8s %9s %12s %12s %12s %10s", "h", "n", "insert_us", "delete_us",
             "static_us", "ptr_chgs");
  const vertex_id total_n = 1 << 15;
  for (vertex_id h = 16; h <= total_n / 2; h *= 4) {
    vertex_id stars = total_n / (h + 1);
    if (stars < 2) break;
    gen::Forest f = gen::lower_bound_stars(h, stars);
    DynSLD s(f.n, SpineIndex::kPointer);
    for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);

    const int reps = 20;
    double ins_us = 0, del_us = 0;
    uint64_t writes = 0;
    for (int r = 0; r < reps; ++r) {
      // Join two star centers (rotating which pair) with a minimal edge.
      vertex_id c1 = static_cast<vertex_id>((2 * r) % stars) * (h + 1);
      vertex_id c2 = static_cast<vertex_id>((2 * r + 1) % stars) * (h + 1);
      stats::counters().reset();
      Timer ti;
      edge_id e = s.insert(c1, c2, 0.0);
      ins_us += ti.us();
      writes += stats::counters().pointer_writes.load();
      Timer td;
      s.erase(e);
      del_us += td.us();
    }
    // Static recomputation baseline on the same forest.
    auto live = s.edges();
    Timer ts;
    Dendrogram d = build_kruskal(f.n, live);
    double static_us = ts.us();
    (void)d;
    bench::row("%8u %9u %12.1f %12.1f %12.1f %10llu", h, f.n, ins_us / reps,
               del_us / reps, static_us,
               static_cast<unsigned long long>(writes / reps));
  }
  return 0;
}
