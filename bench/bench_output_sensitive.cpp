// E2 (Theorem 1.2): output-sensitive insertion cost scales with c, the
// number of structural changes, not with h.
//
// Workloads on a height-h chain (increasing path), all with h >> c:
//   - "leaf append": c = O(1) per insertion,
//   - "mid splice":  insert an edge whose rank lands mid-spine (small c),
//   - "full interleave": the Thm 5.1 star join, c = Theta(h).
// Each is timed with the O(h) walk-merge (Thm 1.1) and the
// O(c log(1+n/c)) PWS-alternation merge (Thm 1.2, LCT spine index).
//
// Expected shape: for c = O(1) the OS algorithm is ~independent of h
// while the walk grows linearly; for c = Theta(h) both grow and the
// walk's lower constant wins — matching the theory's crossover.
#include "bench_util.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/stats.hpp"

using namespace dynsld;
using bench::Timer;

namespace {

/// Time one insert+undo cycle with each algorithm on a fresh structure.
void run_case(const char* name, vertex_id h, bool interleave) {
  // Build either one chain of height h (append/splice cases) or the
  // 2-star lower-bound instance (interleave case).
  for (int os = 0; os <= 1; ++os) {
    DynSLD s(2 * h + 4, os ? SpineIndex::kLct : SpineIndex::kPointer);
    vertex_id u, v;
    double w;
    if (!interleave) {
      gen::Forest f = gen::path(h + 1, gen::Weights::kIncreasing);
      for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
      u = h;  // path end
      v = h + 1;
      w = 1e12;  // leaf append: c = O(1)
    } else {
      gen::Forest f = gen::lower_bound_stars(h, 2);
      for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
      u = 0;
      v = h + 1;
      w = 0.0;  // star join: c = Theta(h)
    }
    const int reps = 50;
    double us = 0;
    uint64_t c = 0, pws = 0;
    for (int r = 0; r < reps; ++r) {
      stats::counters().reset();
      Timer t;
      edge_id e = os ? s.insert_output_sensitive(u, v, w) : s.insert(u, v, w);
      us += t.us();
      c += stats::counters().pointer_writes.load();
      pws += stats::counters().pws_queries.load();
      s.erase(e);
    }
    bench::row("%-16s %8u %6s %10.2f %10llu %10llu", name, h,
               os ? "os" : "walk", us / reps,
               static_cast<unsigned long long>(c / reps),
               static_cast<unsigned long long>(pws / reps));
  }
}

}  // namespace

int main() {
  bench::header("E2", "output-sensitive insertion: cost tracks c, not h (Thm 1.2)");
  bench::row("%-16s %8s %6s %10s %10s %10s", "workload", "h", "algo", "us/op",
             "c", "pws");
  for (vertex_id h : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
    run_case("leaf_append", h, /*interleave=*/false);
  }
  for (vertex_id h : {1u << 8, 1u << 10, 1u << 12}) {
    run_case("star_interleave", h, /*interleave=*/true);
  }
  return 0;
}
