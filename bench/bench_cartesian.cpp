// E7 (§6.2): dynamic Cartesian trees — worst-case O(log n) appends and
// arbitrary updates vs full stack rebuild, plus RMQ throughput.
//
// Expected shape: per-append cost is ~flat in n (worst-case O(log n),
// improving the amortized bounds of Demaine et al.); rebuild grows
// linearly; RMQ is logarithmic.
#include "bench_util.hpp"
#include "cartesian/cartesian_tree.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using bench::Timer;

int main() {
  bench::header("E7", "dynamic Cartesian trees vs rebuild (§6.2)");
  bench::row("%9s %12s %12s %12s %12s", "n", "append_us", "splice_us",
             "rebuild_ms", "rmq_us");
  par::Rng rng(8);
  for (size_t n : {1u << 10, 1u << 13, 1u << 16}) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = static_cast<double>(par::hash64(i) % (1u << 30));
    }
    CartesianTree t(n + 4096);
    Timer ta;
    for (double v : values) t.push_back(v);
    double append_us = ta.us() / static_cast<double>(n);

    // Arbitrary splices (insert_after + erase at random positions).
    auto seq = t.in_order();
    const int reps = 200;
    Timer tspl;
    for (int r = 0; r < reps; ++r) {
      auto h = seq[rng.next_bounded(seq.size())];
      if (!t.tree().alive(h)) continue;  // handle was reassigned earlier
      auto fresh = t.insert_after(h, static_cast<double>(rng.next_bounded(1u << 30)));
      t.erase(fresh);
    }
    double splice_us = tspl.us() / reps;

    Timer tr;
    auto parents = build_cartesian_parents(values);
    double rebuild_ms = tr.ms();
    (void)parents;

    seq = t.in_order();
    Timer tq;
    for (int r = 0; r < reps; ++r) {
      size_t a = rng.next_bounded(seq.size());
      size_t b = rng.next_bounded(seq.size());
      if (a > b) std::swap(a, b);
      t.range_max(seq[a], seq[b]);
    }
    double rmq_us = tq.us() / reps;

    bench::row("%9zu %12.2f %12.2f %12.2f %12.2f", n, append_us, splice_us,
               rebuild_ms, rmq_us);
  }
  return 0;
}
