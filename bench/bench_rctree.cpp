// T1 (Table 1): RC tree operation costs — link, cut, connectivity
// query, path query — on random trees across n, plus the LCT providing
// the same interface for comparison.
//
// Expected shape: every RC op is polylogarithmic in n (Table 1's
// O(log n) column); the hierarchy height grows logarithmically.
#include "bench_util.hpp"
#include "dtree/link_cut_tree.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"
#include "rctree/rc_tree.hpp"

using namespace dynsld;
using bench::Timer;

int main() {
  bench::header("T1", "dynamic-tree operation costs (RC tree vs LCT)");
  bench::row("%6s %9s %5s %10s %10s %10s %10s %8s", "struct", "n", "", "link_us",
             "cut_us", "conn_us", "pathq_us", "rc_h");
  for (vertex_id n : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    gen::Forest f = gen::random_tree(n, 3);
    par::Rng rng(9);
    const int reps = 200;

    // --- RC tree ---
    {
      rctree::RcTree t(n);
      for (const auto& e : f.edges) {
        t.link(e.u, e.v, e.rank());
      }
      // link/cut: cut and relink random existing edges.
      Timer tc;
      std::vector<size_t> picks;
      for (int r = 0; r < reps; ++r) picks.push_back(rng.next_bounded(f.edges.size()));
      double cut_us = 0, link_us = 0;
      for (size_t p : picks) {
        const auto& e = f.edges[p];
        Timer t1;
        t.cut(e.u, e.v);
        cut_us += t1.us();
        Timer t2;
        t.link(e.u, e.v, e.rank());
        link_us += t2.us();
      }
      Timer tq;
      for (int r = 0; r < reps; ++r) {
        t.connected(static_cast<vertex_id>(rng.next_bounded(n)),
                    static_cast<vertex_id>(rng.next_bounded(n)));
      }
      double conn_us = tq.us() / reps;
      Timer tp;
      for (int r = 0; r < reps; ++r) {
        vertex_id a = static_cast<vertex_id>(rng.next_bounded(n));
        vertex_id b = static_cast<vertex_id>(rng.next_bounded(n));
        t.path_max_edge(a, b);
      }
      double path_us = tp.us() / reps;
      bench::row("%6s %9u %5s %10.2f %10.2f %10.2f %10.2f %8zu", "rc", n, "",
                 link_us / reps, cut_us / reps, conn_us, path_us,
                 t.hierarchy_height());
    }

    // --- LCT (same ops) ---
    {
      LinkCutTree t(n);
      for (vertex_id v = 0; v < n; ++v) {
        t.set_key(static_cast<int>(v), Rank{static_cast<double>(v), v});
      }
      for (const auto& e : f.edges) t.link(static_cast<int>(e.u), static_cast<int>(e.v));
      double cut_us = 0, link_us = 0;
      for (int r = 0; r < reps; ++r) {
        const auto& e = f.edges[rng.next_bounded(f.edges.size())];
        Timer t1;
        t.cut(static_cast<int>(e.u), static_cast<int>(e.v));
        cut_us += t1.us();
        Timer t2;
        t.link(static_cast<int>(e.u), static_cast<int>(e.v));
        link_us += t2.us();
      }
      Timer tq;
      for (int r = 0; r < reps; ++r) {
        t.connected(static_cast<int>(rng.next_bounded(n)),
                    static_cast<int>(rng.next_bounded(n)));
      }
      double conn_us = tq.us() / reps;
      Timer tp;
      for (int r = 0; r < reps; ++r) {
        int a = static_cast<int>(rng.next_bounded(n));
        int b = static_cast<int>(rng.next_bounded(n));
        if (t.connected(a, b)) t.path_max(a, b);
      }
      double path_us = tp.us() / reps;
      bench::row("%6s %9u %5s %10.2f %10.2f %10.2f %10.2f %8s", "lct", n, "",
                 link_us / reps, cut_us / reps, conn_us, path_us, "-");
    }
  }
  return 0;
}
