// E-ENGINE: the concurrent SLD serving engine.
//
//   1. Concurrent serving: a writer streams sliding-window batches
//      through the service while R reader threads query epoch
//      snapshots. Readers hold a ThresholdView per epoch (amortized
//      read path) vs re-resolving per call; the ratio column is the
//      amortization win.
//   2. Shard scaling: block-local churn with a small cross-shard
//      fraction, S = 1..8 shards; per-shard sub-batches apply in
//      parallel on the fork-join pool.
//   3. Coalescing: short-lived edges annihilate in the mutation queue
//      and never reach the shards.
//   4. View amortization: N mixed queries at one tau through per-call
//      snapshot conveniences vs one ThresholdView vs one batched
//      ClusterView::run() — one cross-shard merge resolution amortized
//      over the whole batch.
//   5. Subscription refresh: skewed traffic keeps hammering one shard
//      of eight; a SubscribedView refreshing per epoch (incremental:
//      clean shards' endpoint tops reused, blob union-find re-run) vs
//      a fresh view()+at(tau) (full resolution) per epoch.
//   6. Flat-label maintenance: same skewed traffic; the refreshed
//      view's flat_clustering() patches the previous epoch's label
//      array (dirty shard ranges + cross groups) vs the fresh view's
//      full relabel — the labels_patched/labels_rebuilt counters prove
//      which path ran.
//   7. Broker cross-client batching: N concurrent clients issue single
//      queries at a shared tau across churning epochs — per-caller
//      fresh views (every client pays its own resolution per epoch) vs
//      the sync run() wrapper vs pipelined submit() futures. The
//      resolution counters prove one cross-UF per (epoch, tau) group
//      fleet-wide on the broker paths; p50/p99 fulfillment latency is
//      reported for both broker modes.
//   8. Durability: one churny schedule replayed under no persistence /
//      WAL with fsync off / every-8 / every-1 (the flush-path tax per
//      policy), recovery wall time for WAL-only replay vs checkpoint +
//      tail over the same history, and AsOf{epoch} query latency per
//      serving tier (retention ring, cold checkpoint rehydration,
//      rehydration LRU) against the Latest baseline.
//   9. Incremental flush: per-flush latency of the contraction-round
//      patch (retained per-shard state, copy-on-write snapshot arrays)
//      vs the from-scratch rebuild across a batch-size x shard-size
//      sweep; the rounds_rerun/rounds_total counters prove which
//      lifting rounds were reused, and oversized batches show the
//      viability gate falling back to rebuilds.
//  10. Wire serving: the same single-query request stream through an
//      in-process submit() vs across a loopback RpcServer (the delta
//      is pure plumbing: frame codec + TCP + poll loop + completion
//      pipe), then read throughput against the writer alone vs fanned
//      out across the writer plus two wire-bootstrapped read replicas.
//
//   $ ./bench_engine [--smoke]     (--smoke: tiny sizes, CI rot check)
#include <unistd.h>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/replay.hpp"
#include "engine/sld_service.hpp"
#include "engine/subscription.hpp"
#include "net/client.hpp"
#include "net/replication.hpp"
#include "net/server.hpp"
#include "parallel/par.hpp"
#include "parallel/random.hpp"
#include "persist/persist.hpp"

using namespace dynsld;
using namespace dynsld::engine;

static double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

static void concurrent_serving(bool smoke) {
  bench::header("E-ENGINE-1", "readers sustain queries during batch flushes");
  Trace tr = Trace::sliding_window(/*window=*/smoke ? 120 : 600,
                                   /*steps=*/smoke ? 6 : 30,
                                   /*per_step=*/smoke ? 30 : 120,
                                   /*connect_radius=*/0.45,
                                   /*seed=*/42);
  bench::row("%-28s %8zu vertices, %zu ops (%zu inserts)", "sliding-window trace:",
             (size_t)tr.num_vertices, tr.ops.size(), tr.num_inserts());
  bench::row("%8s %12s %14s %14s %8s %10s", "readers", "updates/s",
             "q/s percall", "q/s amortized", "ratio", "epochs");
  for (int readers : smoke ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4, 8}) {
    ReplayReport per_call, amortized;
    // With no readers the two modes are identical writer-only runs, so
    // a single replay covers the row.
    for (bool amortize : readers == 0 ? std::vector<bool>{true}
                                      : std::vector<bool>{false, true}) {
      ServiceConfig cfg;
      cfg.num_vertices = tr.num_vertices;
      SldService svc(cfg);
      ReplayOptions opt;
      opt.reader_threads = readers;
      opt.tau = 0.3;
      opt.ops_per_flush = 128;
      opt.amortize_views = amortize;
      (amortize ? amortized : per_call) = replay(tr, svc, opt);
    }
    if (readers == 0) {
      bench::row("%8d %12.0f %14s %14s %8s %10llu", readers,
                 amortized.updates_per_s, "-", "-", "-",
                 (unsigned long long)amortized.epochs_published);
      bench::json_log().metric("E-ENGINE-1", "updates_per_s_r0",
                               amortized.updates_per_s, "updates/s");
    } else {
      bench::row("%8d %12.0f %14.0f %14.0f %7.1fx %10llu", readers,
                 amortized.updates_per_s, per_call.queries_per_s,
                 amortized.queries_per_s,
                 per_call.queries_per_s > 0
                     ? amortized.queries_per_s / per_call.queries_per_s
                     : 0.0,
                 (unsigned long long)amortized.epochs_published);
      std::string rs = std::to_string(readers);
      bench::json_log().metric("E-ENGINE-1", "updates_per_s_r" + rs,
                               amortized.updates_per_s, "updates/s");
      bench::json_log().metric("E-ENGINE-1", "qps_amortized_r" + rs,
                               amortized.queries_per_s, "q/s");
    }
  }
}

static void shard_scaling(bool smoke) {
  bench::header("E-ENGINE-2", "sharded flushes: independent blocks in parallel");
  const int groups = 8, block = smoke ? 128 : 512,
            ops = smoke ? 4000 : 40000;
  Trace tr = Trace::blocks(groups, block, ops, /*cross_fraction=*/0.03,
                           /*seed=*/7);
  bench::row("%-28s %d blocks x %d vertices, %zu ops", "block-churn trace:",
             groups, block, tr.ops.size());
  bench::row("%8s %12s %10s %14s %12s", "shards", "updates/s", "epochs",
             "cross_ops", "wall_ms");
  for (int shards : {1, 2, 4, 8}) {
    ServiceConfig cfg;
    cfg.num_vertices = tr.num_vertices;
    cfg.num_shards = shards;
    SldService svc(cfg);
    ReplayOptions opt;
    opt.ops_per_flush = 256;
    ReplayReport rep = replay(tr, svc, opt);
    bench::row("%8d %12.0f %10llu %14llu %12.2f", shards, rep.updates_per_s,
               (unsigned long long)rep.epochs_published,
               (unsigned long long)svc.stats().cross_ops, rep.wall_ms);
    std::string ss = std::to_string(shards);
    bench::json_log().metric("E-ENGINE-2", "updates_per_s_s" + ss,
                             rep.updates_per_s, "updates/s");
    bench::json_log().metric("E-ENGINE-2", "wall_ms_s" + ss, rep.wall_ms,
                             "ms");
    if (shards == 8) {
      // Per-stage flush percentiles for the trajectory, straight from
      // the engine's histograms (the obs subsystem measuring itself —
      // the replay above drove the full drain/apply/build/publish
      // pipeline through them).
      auto m = svc.obs().registry.scrape();
      for (const char* stage : {"drain", "apply", "shards", "cross"}) {
        const auto* h = m.histogram(std::string("flush.") + stage);
        if (!h || h->count == 0) continue;
        bench::json_log().metric("E-ENGINE-2",
                                 std::string("flush_") + stage + "_p50_us",
                                 h->p50() / 1e3, "us");
        bench::json_log().metric("E-ENGINE-2",
                                 std::string("flush_") + stage + "_p99_us",
                                 h->p99() / 1e3, "us");
      }
    }
  }
}

static void coalescing(bool smoke) {
  bench::header("E-ENGINE-3", "update coalescing: churn dies in the queue");
  const vertex_id n = 4096;
  bench::row("%12s %12s %12s %14s", "churn_frac", "enqueued", "applied",
             "coalesced_%");
  for (double churn : {0.0, 0.5, 0.9}) {
    ServiceConfig cfg;
    cfg.num_vertices = n;
    SldService svc(cfg);
    par::Rng rng(13);
    const int ops = smoke ? 2000 : 20000;
    std::vector<ticket_t> live;
    for (int i = 0; i < ops; ++i) {
      vertex_id u = rng.next_bounded(n), v;
      do {
        v = rng.next_bounded(n);
      } while (v == u);
      ticket_t t = svc.insert(u, v, rng.next_double());
      if (rng.next_double() < churn) {
        svc.erase(t);  // short-lived: annihilates pre-flush
      } else {
        live.push_back(t);
      }
      if (i % 512 == 511) svc.flush();
    }
    svc.flush();
    auto r = svc.stats();
    uint64_t enq = r.inserts_enqueued + r.erases_enqueued;
    double pct = enq ? 100.0 * (enq - r.ops_applied) / enq : 0.0;
    bench::row("%12.1f %12llu %12llu %13.1f%%", churn,
               (unsigned long long)enq, (unsigned long long)r.ops_applied,
               pct);
    bench::json_log().metric(
        "E-ENGINE-3",
        "coalesced_pct_c" + std::to_string(static_cast<int>(churn * 100)),
        pct, "%");
  }
}

static void view_amortization(bool smoke) {
  bench::header("E-ENGINE-4",
                "ThresholdView/run(): one merge resolution, many queries");
  // 4-shard service with enough sub-tau cross edges that every per-call
  // query pays a fresh cross-shard union-find resolution.
  const int shards = 4, block = smoke ? 256 : 1024;
  const vertex_id n = static_cast<vertex_id>(shards) * block;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = shards;
  SldService svc(cfg);
  par::Rng rng(2027);
  const int edges = smoke ? 2000 : 12000;
  for (int i = 0; i < edges; ++i) {
    vertex_id u, v;
    if (rng.next_double() < 0.15) {  // cross-shard
      u = rng.next_bounded(n);
      do {
        v = rng.next_bounded(n);
      } while (v / block == u / block);
    } else {
      int g = static_cast<int>(rng.next_bounded(shards));
      u = static_cast<vertex_id>(g) * block + rng.next_bounded(block);
      do {
        v = static_cast<vertex_id>(g) * block + rng.next_bounded(block);
      } while (v == u);
    }
    svc.insert(u, v, rng.next_double());
  }
  svc.flush();

  const double tau = 0.35;
  const int q = smoke ? 2000 : 20000;
  std::vector<Query> queries;
  queries.reserve(q);
  par::Rng qrng(5);
  for (int i = 0; i < q; ++i) {
    vertex_id u = qrng.next_bounded(n), v = qrng.next_bounded(n);
    switch (qrng.next_bounded(3)) {
      case 0:
        queries.push_back(SameClusterQuery{u, v, tau});
        break;
      case 1:
        queries.push_back(ClusterSizeQuery{u, tau});
        break;
      default:
        queries.push_back(ClusterReportQuery{u, tau});
        break;
    }
  }

  auto snap = svc.snapshot();
  double t0 = now_ms();
  for (const Query& query : queries) {
    if (const auto* sc = std::get_if<SameClusterQuery>(&query))
      snap->same_cluster(sc->u, sc->v, tau);
    else if (const auto* cs = std::get_if<ClusterSizeQuery>(&query))
      snap->cluster_size(cs->u, tau);
    else if (const auto* cr = std::get_if<ClusterReportQuery>(&query))
      snap->cluster_report(cr->u, tau);
  }
  double per_call_ms = now_ms() - t0;

  ClusterView view = svc.view();
  auto before = svc.stats();
  t0 = now_ms();
  auto tv = view.at(tau);
  for (const Query& query : queries) tv->run(query);
  double view_ms = now_ms() - t0;
  auto after = svc.stats();

  t0 = now_ms();
  auto results = svc.run(queries);
  double batch_ms = now_ms() - t0;

  bench::row("%-24s %8zu queries @tau=%.2f, %zu cross edges", "mixed workload:",
             queries.size(), tau, svc.snapshot()->cross().size());
  bench::row("%-24s %10.2f ms  (%12.0f q/s)", "per-call conveniences:",
             per_call_ms, 1e3 * q / per_call_ms);
  bench::row("%-24s %10.2f ms  (%12.0f q/s)  %.1fx", "one ThresholdView:",
             view_ms, 1e3 * q / view_ms, per_call_ms / view_ms);
  bench::row("%-24s %10.2f ms  (%12.0f q/s)  %.1fx", "batched run():",
             batch_ms, 1e3 * q / batch_ms, per_call_ms / batch_ms);
  bench::row("%-24s %llu cross-uf builds for %d view queries (per-call: 1 each)",
             "merge resolutions:",
             (unsigned long long)(after.cross_uf_builds - before.cross_uf_builds),
             q);
  bench::json_log().metric("E-ENGINE-4", "per_call_ms", per_call_ms, "ms");
  bench::json_log().metric("E-ENGINE-4", "view_ms", view_ms, "ms");
  bench::json_log().metric("E-ENGINE-4", "batch_ms", batch_ms, "ms");
  bench::json_log().metric("E-ENGINE-4", "view_speedup",
                           view_ms > 0 ? per_call_ms / view_ms : 0.0, "x");
  (void)results;
}

static void subscription_refresh(bool smoke) {
  bench::header("E-ENGINE-5",
                "subscription refresh vs fresh view (1 of 8 shards dirty)");
  const int shards = 8, block = smoke ? 256 : 2048;
  const vertex_id n = static_cast<vertex_id>(shards) * block;
  const double tau = 0.6;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = shards;
  SldService svc(cfg);
  par::Rng rng(31);

  // Dense intra-shard structure everywhere + sub-tau cross edges whose
  // endpoints span all shards, so the resolution is nontrivial and the
  // hot shard hosts cross endpoints (incremental path, not wholesale).
  for (int k = 0; k < shards; ++k) {
    vertex_id base = static_cast<vertex_id>(k) * block;
    for (int i = 0; i < 3 * block; ++i) {
      vertex_id u = base + rng.next_bounded(block), v;
      do {
        v = base + rng.next_bounded(block);
      } while (v == u);
      svc.insert(u, v, rng.next_double());
    }
  }
  const int cross = smoke ? 800 : 6000;
  for (int i = 0; i < cross; ++i) {
    vertex_id u = rng.next_bounded(n), v;
    do {
      v = rng.next_bounded(n);
    } while (v / block == u / block);
    svc.insert(u, v, rng.next_double());
  }
  svc.flush();

  SubscribedView sub(svc);
  sub.at(tau);  // initial full resolution (not timed)

  const int rounds = smoke ? 30 : 100, churn = smoke ? 64 : 256;
  std::vector<ticket_t> hot_live;
  double fresh_ms = 0, sub_ms = 0;
  size_t sanity = 0;
  auto before = svc.stats();
  for (int r = 0; r < rounds; ++r) {
    // Skewed traffic: every op lands inside shard 0.
    for (int i = 0; i < churn; ++i) {
      if (!hot_live.empty() && rng.next_double() < 0.4) {
        size_t j = rng.next_bounded(hot_live.size());
        svc.erase(hot_live[j]);
        hot_live[j] = hot_live.back();
        hot_live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(block), v;
        do {
          v = rng.next_bounded(block);
        } while (v == u);
        hot_live.push_back(svc.insert(u, v, rng.next_double()));
      }
    }
    svc.flush();

    double t0 = now_ms();
    ClusterView fresh = svc.view();
    auto ftv = fresh.at(tau);  // full resolution every epoch (poll-and-rebuild)
    fresh_ms += now_ms() - t0;

    t0 = now_ms();
    sub.refresh();  // incremental: 7 of 8 shards' tops reused
    sub_ms += now_ms() - t0;

    sanity += sub.at(tau)->num_cross_groups() == ftv->num_cross_groups();
  }
  auto after = svc.stats();

  bench::row("%-26s %d shards x %d vertices, %zu cross edges, %d epochs",
             "skewed-churn workload:", shards, block,
             (size_t)svc.snapshot()->cross().size(), rounds);
  bench::row("%-26s %10.3f ms/epoch", "fresh view()+at(tau):",
             fresh_ms / rounds);
  bench::row("%-26s %10.3f ms/epoch  %.1fx", "subscription refresh:",
             sub_ms / rounds, sub_ms > 0 ? fresh_ms / sub_ms : 0.0);
  bench::row("%-26s %.1f reused / %.1f rebuilt per refresh; %llu incremental, "
             "%llu full",
             "shards per refresh:",
             static_cast<double>(after.refresh_shards_reused -
                                 before.refresh_shards_reused) /
                 rounds,
             static_cast<double>(after.refresh_shards_rebuilt -
                                 before.refresh_shards_rebuilt) /
                 rounds,
             (unsigned long long)(after.cross_uf_incremental -
                                  before.cross_uf_incremental),
             (unsigned long long)(after.refresh_views_full -
                                  before.refresh_views_full));
  bench::json_log().metric("E-ENGINE-5", "fresh_ms_per_epoch",
                           fresh_ms / rounds, "ms");
  bench::json_log().metric("E-ENGINE-5", "refresh_ms_per_epoch",
                           sub_ms / rounds, "ms");
  bench::json_log().metric("E-ENGINE-5", "refresh_speedup",
                           sub_ms > 0 ? fresh_ms / sub_ms : 0.0, "x");
  if (sanity != static_cast<size_t>(rounds))
    bench::row("WARNING: refresh/fresh divergence in %zu rounds",
               rounds - sanity);
}

static void label_maintenance(bool smoke) {
  bench::header("E-ENGINE-6",
                "flat labels: patched on refresh vs full relabel (1 of 8 "
                "shards dirty)");
  const int shards = 8, block = smoke ? 256 : 8192;
  const vertex_id n = static_cast<vertex_id>(shards) * block;
  const double tau = 0.6;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = shards;
  SldService svc(cfg);
  par::Rng rng(47);

  // Dense intra-shard structure plus sub-tau cross edges spanning all
  // shards: the label pass has real per-shard work to skip and real
  // cross-group fixups to redo.
  for (int k = 0; k < shards; ++k) {
    vertex_id base = static_cast<vertex_id>(k) * block;
    for (int i = 0; i < 3 * block; ++i) {
      vertex_id u = base + rng.next_bounded(block), v;
      do {
        v = base + rng.next_bounded(block);
      } while (v == u);
      svc.insert(u, v, rng.next_double());
    }
  }
  const int cross = smoke ? 800 : 6000;
  for (int i = 0; i < cross; ++i) {
    vertex_id u = rng.next_bounded(n), v;
    do {
      v = rng.next_bounded(n);
    } while (v / block == u / block);
    svc.insert(u, v, rng.next_double());
  }
  svc.flush();

  SubscribedView sub(svc);
  sub.at(tau)->flat_clustering();  // initial full materialization (not timed)

  const int rounds = smoke ? 30 : 100, churn = smoke ? 64 : 256;
  std::vector<ticket_t> hot_live;
  double full_ms = 0, patched_ms = 0;
  size_t sanity = 0;
  auto before = svc.stats();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < churn; ++i) {  // every op lands inside shard 0
      if (!hot_live.empty() && rng.next_double() < 0.4) {
        size_t j = rng.next_bounded(hot_live.size());
        svc.erase(hot_live[j]);
        hot_live[j] = hot_live.back();
        hot_live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(block), v;
        do {
          v = rng.next_bounded(block);
        } while (v == u);
        hot_live.push_back(svc.insert(u, v, rng.next_double()));
      }
    }
    svc.flush();

    // Both sides resolve their view first; only the lazy label
    // materialization is timed (the resolution delta is E-ENGINE-5).
    ClusterView fresh = svc.view();
    auto ftv = fresh.at(tau);
    double t0 = now_ms();
    const auto& full = ftv->flat_clustering();  // global relabel
    full_ms += now_ms() - t0;

    sub.refresh();
    auto stv = sub.at(tau);
    t0 = now_ms();
    const auto& patched = stv->flat_clustering();  // copy + patch
    patched_ms += now_ms() - t0;

    sanity += full == patched && ftv->size_histogram() == stv->size_histogram();
  }
  auto after = svc.stats();

  bench::row("%-26s %d shards x %d vertices, %zu cross edges, %d epochs",
             "skewed-churn workload:", shards, block,
             (size_t)svc.snapshot()->cross().size(), rounds);
  bench::row("%-26s %10.3f ms/epoch", "full relabel (fresh):",
             full_ms / rounds);
  bench::row("%-26s %10.3f ms/epoch  %.1fx", "patched labels (refresh):",
             patched_ms / rounds, patched_ms > 0 ? full_ms / patched_ms : 0.0);
  bench::row("%-26s %llu rebuilt / %llu patched / %llu reused",
             "label materializations:",
             (unsigned long long)(after.labels_rebuilt - before.labels_rebuilt),
             (unsigned long long)(after.labels_patched - before.labels_patched),
             (unsigned long long)(after.labels_reused - before.labels_reused));
  bench::json_log().metric("E-ENGINE-6", "full_relabel_ms_per_epoch",
                           full_ms / rounds, "ms");
  bench::json_log().metric("E-ENGINE-6", "patched_ms_per_epoch",
                           patched_ms / rounds, "ms");
  bench::json_log().metric("E-ENGINE-6", "patch_speedup",
                           patched_ms > 0 ? full_ms / patched_ms : 0.0, "x");
  if (sanity != static_cast<size_t>(rounds))
    bench::row("WARNING: patched/full label divergence in %zu rounds",
               rounds - sanity);
}

static void broker_cross_client(bool smoke) {
  bench::header("E-ENGINE-7",
                "broker: cross-client batching at a shared tau across epochs");
  const int shards = 4, block = smoke ? 256 : 1024;
  const vertex_id n = static_cast<vertex_id>(shards) * block;
  const double tau = 0.35;
  const int clients = smoke ? 4 : 8;
  const int rounds = smoke ? 8 : 30;
  const int per_round = smoke ? 60 : 400;  // queries per client per round

  enum Mode { kPerCaller, kSyncRun, kAsyncSubmit };
  struct Row {
    double wall_ms = 0, qps = 0, res_per_round = 0, reqs_per_group = 0;
    double p50_us = 0, p99_us = 0;
    // Engine-side fulfillment latency (broker.fulfill histogram:
    // admission to promise resolution), vs the client-side p50/p99
    // above which include future-reap scheduling.
    double fulfill_p50_us = 0, fulfill_p99_us = 0;
  };

  auto run_mode = [&](Mode mode) {
    ServiceConfig cfg;
    cfg.num_vertices = n;
    cfg.num_shards = shards;
    SldService svc(cfg);
    par::Rng rng(2027);
    // E-ENGINE-4's workload shape: dense intra structure + 15% cross
    // edges, so every resolution at tau has a real cross merge to pay.
    const int edges = smoke ? 2000 : 12000;
    for (int i = 0; i < edges; ++i) {
      vertex_id u, v;
      if (rng.next_double() < 0.15) {
        u = rng.next_bounded(n);
        do {
          v = rng.next_bounded(n);
        } while (v / block == u / block);
      } else {
        int g = static_cast<int>(rng.next_bounded(shards));
        u = static_cast<vertex_id>(g) * block + rng.next_bounded(block);
        do {
          v = static_cast<vertex_id>(g) * block + rng.next_bounded(block);
        } while (v == u);
      }
      svc.insert(u, v, rng.next_double());
    }
    svc.flush();

    std::vector<double> lats;
    lats.reserve(static_cast<size_t>(clients) * rounds * per_round);
    std::mutex lat_mu;
    auto before = svc.stats();
    double t0 = now_ms();
    for (int round = 0; round < rounds; ++round) {
      // Skewed churn inside shard 0, one flush -> one new epoch.
      for (int i = 0; i < 64; ++i) {
        vertex_id u = rng.next_bounded(block), v;
        do {
          v = rng.next_bounded(block);
        } while (v == u);
        svc.insert(u, v, rng.next_double());
      }
      svc.flush();

      std::vector<std::thread> cs;
      cs.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        cs.emplace_back([&, c, round] {
          par::Rng qr(static_cast<uint64_t>(round) * 131 + c);
          std::vector<double> local;
          local.reserve(per_round);
          if (mode == kPerCaller) {
            // The pre-broker pattern: this client's own fresh view per
            // epoch — N clients, N resolutions, zero sharing.
            auto tv = svc.view().at(tau);
            for (int i = 0; i < per_round; ++i) {
              double s = now_ms();
              tv->cluster_size(qr.next_bounded(n));
              local.push_back(now_ms() - s);
            }
          } else if (mode == kSyncRun) {
            for (int i = 0; i < per_round; ++i) {
              Query q = ClusterSizeQuery{
                  static_cast<vertex_id>(qr.next_bounded(n)), tau};
              double s = now_ms();
              svc.run(std::span<const Query>(&q, 1));
              local.push_back(now_ms() - s);
            }
          } else {
            // Pipelined submits, bounded window: latency recorded when
            // the oldest future is reaped (≈ fulfillment under load).
            std::deque<std::pair<std::future<ResultSet>, double>> window;
            auto reap = [&] {
              auto [fut, s] = std::move(window.front());
              window.pop_front();
              fut.get();
              local.push_back(now_ms() - s);
            };
            for (int i = 0; i < per_round; ++i) {
              QueryRequest req;
              req.queries = {ClusterSizeQuery{
                  static_cast<vertex_id>(qr.next_bounded(n)), tau}};
              double s = now_ms();
              window.emplace_back(svc.submit(std::move(req)), s);
              if (window.size() >= 32) reap();
            }
            while (!window.empty()) reap();
          }
          std::lock_guard<std::mutex> lk(lat_mu);
          lats.insert(lats.end(), local.begin(), local.end());
        });
      }
      for (auto& t : cs) t.join();
    }
    double wall = now_ms() - t0;
    auto after = svc.stats();

    Row row;
    row.wall_ms = wall;
    row.qps = 1e3 * clients * per_round * rounds / wall;
    uint64_t res = (after.cross_uf_builds - before.cross_uf_builds) +
                   (after.cross_uf_incremental - before.cross_uf_incremental);
    row.res_per_round = static_cast<double>(res) / rounds;
    uint64_t groups = after.broker_groups - before.broker_groups;
    row.reqs_per_group =
        groups ? static_cast<double>(after.broker_group_requests -
                                     before.broker_group_requests) /
                     groups
               : 0.0;
    std::sort(lats.begin(), lats.end());
    if (!lats.empty()) {
      row.p50_us = 1e3 * lats[lats.size() / 2];
      row.p99_us = 1e3 * lats[lats.size() * 99 / 100];
    }
    auto scrape = svc.obs().registry.scrape();
    if (const auto* h = scrape.histogram("broker.fulfill"); h && h->count) {
      row.fulfill_p50_us = h->p50() / 1e3;
      row.fulfill_p99_us = h->p99() / 1e3;
    }
    return row;
  };

  Row per_caller = run_mode(kPerCaller);
  Row sync_run = run_mode(kSyncRun);
  Row async = run_mode(kAsyncSubmit);

  bench::row("%-22s %d clients x %d q x %d epochs @tau=%.2f, %d shards",
             "shared-tau workload:", clients, per_round, rounds, tau, shards);
  bench::row("%-22s %9s %12s %10s %11s %9s %9s", "mode", "wall_ms", "q/s",
             "res/epoch", "reqs/group", "p50_us", "p99_us");
  bench::row("%-22s %9.1f %12.0f %10.1f %11s %9.2f %9.2f",
             "per-caller views:", per_caller.wall_ms, per_caller.qps,
             per_caller.res_per_round, "-", per_caller.p50_us,
             per_caller.p99_us);
  bench::row("%-22s %9.1f %12.0f %10.1f %11.1f %9.2f %9.2f",
             "sync run() wrapper:", sync_run.wall_ms, sync_run.qps,
             sync_run.res_per_round, sync_run.reqs_per_group, sync_run.p50_us,
             sync_run.p99_us);
  bench::row("%-22s %9.1f %12.0f %10.1f %11.1f %9.2f %9.2f",
             "pipelined submit():", async.wall_ms, async.qps,
             async.res_per_round, async.reqs_per_group, async.p50_us,
             async.p99_us);
  bench::row("%-22s per-caller pays ~%d resolutions/epoch; the broker pays "
             "~1 per (epoch, tau) group fleet-wide",
             "amortization:", clients);
  bench::row("%-22s sync p50/p99 %0.2f/%0.2f us, async p50/p99 %0.2f/%0.2f "
             "us (broker.fulfill histogram)",
             "engine-side latency:", sync_run.fulfill_p50_us,
             sync_run.fulfill_p99_us, async.fulfill_p50_us,
             async.fulfill_p99_us);
  bench::json_log().metric("E-ENGINE-7", "qps_per_caller", per_caller.qps,
                           "q/s");
  bench::json_log().metric("E-ENGINE-7", "qps_sync", sync_run.qps, "q/s");
  bench::json_log().metric("E-ENGINE-7", "qps_async", async.qps, "q/s");
  bench::json_log().metric("E-ENGINE-7", "res_per_epoch_async",
                           async.res_per_round, "count");
  bench::json_log().metric("E-ENGINE-7", "reqs_per_group_async",
                           async.reqs_per_group, "count");
  bench::json_log().metric("E-ENGINE-7", "client_p50_us", async.p50_us, "us");
  bench::json_log().metric("E-ENGINE-7", "client_p99_us", async.p99_us, "us");
  bench::json_log().metric("E-ENGINE-7", "broker_fulfill_p50_us",
                           async.fulfill_p50_us, "us");
  bench::json_log().metric("E-ENGINE-7", "broker_fulfill_p99_us",
                           async.fulfill_p99_us, "us");
  if (per_caller.res_per_round < clients * 0.9)
    bench::row("WARNING: per-caller baseline resolved fewer views than "
               "expected (%.1f/epoch)", per_caller.res_per_round);
  if (sync_run.res_per_round > 2.5 || async.res_per_round > 2.5)
    bench::row("WARNING: broker resolved more than expected per epoch "
               "(sync %.1f, async %.1f)",
               sync_run.res_per_round, async.res_per_round);
}

static void durability(bool smoke) {
  bench::header("E-ENGINE-8",
                "durability: WAL tax per fsync policy, recovery, AsOf");
  namespace fs = std::filesystem;
  const vertex_id n = smoke ? 256 : 4096;
  const int shards = 4;
  const int epochs = smoke ? 24 : 120;
  const int batch = smoke ? 64 : 512;

  // One deterministic churny schedule, replayed identically under each
  // persistence configuration (distinct weights keep replay exact).
  auto drive = [&](SldService& svc) {
    par::Rng rng(7);
    uint64_t widx = 0;
    std::vector<ticket_t> live;
    for (int e = 0; e < epochs; ++e) {
      for (int i = 0; i < batch; ++i) {
        if (!live.empty() && rng.next_double() < 0.3) {
          size_t j = rng.next_bounded(live.size());
          svc.erase(live[j]);
          live[j] = live.back();
          live.pop_back();
        } else {
          vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
          vertex_id v = static_cast<vertex_id>(rng.next_bounded(n - 1));
          if (v >= u) ++v;
          live.push_back(svc.insert(
              u, v,
              static_cast<double>(widx * 2654435761ull % 999983ull) /
                  999983.0));
          ++widx;
        }
      }
      svc.flush();
    }
  };

  struct Variant {
    const char* label;
    const char* metric;  // json suffix
    bool persist;
    persist::FsyncPolicy policy;
    uint64_t every_n;
  };
  const Variant variants[] = {
      {"no persistence", "nopersist", false, persist::FsyncPolicy::kOff, 0},
      {"WAL, fsync off", "fsync_off", true, persist::FsyncPolicy::kOff, 0},
      {"WAL, fsync every 8", "fsync_every8", true,
       persist::FsyncPolicy::kEveryN, 8},
      {"WAL, fsync every 1", "fsync_every1", true,
       persist::FsyncPolicy::kEveryN, 1},
  };

  bench::row("%-22s %12s %14s %10s %10s", "flush path", "wall ms",
             "updates/s", "ms/epoch", "WAL MB");
  const fs::path base =
      fs::temp_directory_path() /
      ("dynsld_bench_persist_" +
       std::to_string(static_cast<unsigned long long>(::getpid())));
  double baseline_ms = 0;
  for (const Variant& var : variants) {
    const fs::path dir = base / var.metric;
    fs::remove_all(dir);
    ServiceConfig cfg;
    cfg.num_vertices = n;
    cfg.num_shards = shards;
    if (var.persist) {
      cfg.persist.dir = dir.string();
      cfg.persist.fsync_policy = var.policy;
      cfg.persist.fsync_every_n = var.every_n;
      cfg.persist.checkpoint_every = 1u << 30;  // isolate the WAL tax
    }
    bench::Timer t;
    uint64_t wal_bytes = 0;
    {
      SldService svc(cfg);
      drive(svc);
      wal_bytes = svc.stats().wal_bytes;
    }
    double ms = t.ms();
    if (!var.persist) baseline_ms = ms;
    bench::row("%-22s %12.1f %14.0f %10.2f %10.2f", var.label, ms,
               epochs * static_cast<double>(batch) / (ms / 1000.0),
               ms / epochs, wal_bytes / 1e6);
    bench::json_log().metric("E-ENGINE-8",
                             std::string("flush_ms_per_epoch_") + var.metric,
                             ms / epochs, "ms");
    if (var.persist && baseline_ms > 0)
      bench::json_log().metric("E-ENGINE-8",
                               std::string("wal_overhead_pct_") + var.metric,
                               (ms - baseline_ms) / baseline_ms * 100.0, "%");
  }

  // Recovery: WAL-only replay vs checkpoint + short tail, same history.
  for (bool ckpt : {false, true}) {
    const fs::path dir = base / (ckpt ? "recover_ckpt" : "recover_wal");
    fs::remove_all(dir);
    ServiceConfig cfg;
    cfg.num_vertices = n;
    cfg.num_shards = shards;
    cfg.persist.dir = dir.string();
    cfg.persist.checkpoint_every = ckpt ? 16 : (1u << 30);
    {
      SldService svc(cfg);
      drive(svc);
    }
    bench::Timer t;
    auto res = persist::recover(cfg);
    double ms = t.ms();
    bench::row("%-22s %12.1f ms to epoch %llu (%llu records replayed)",
               ckpt ? "recover ckpt+tail:" : "recover WAL-only:", ms,
               static_cast<unsigned long long>(res.tip_epoch),
               static_cast<unsigned long long>(res.records_replayed));
    bench::json_log().metric(
        "E-ENGINE-8", ckpt ? "recover_ckpt_ms" : "recover_walonly_ms", ms,
        "ms");
    if (!ckpt)
      bench::json_log().metric("E-ENGINE-8", "recover_replayed",
                               static_cast<double>(res.records_replayed),
                               "count");
  }

  // AsOf vs Latest: the price of time travel per serving tier.
  {
    const fs::path dir = base / "asof";
    fs::remove_all(dir);
    ServiceConfig cfg;
    cfg.num_vertices = n;
    cfg.num_shards = shards;
    cfg.retain_epochs = 8;
    cfg.persist.dir = dir.string();
    cfg.persist.checkpoint_every = 16;
    SldService svc(cfg);
    drive(svc);
    const uint64_t tip = svc.epoch();
    const uint64_t ring_epoch = tip - 4;          // in the retention ring
    const uint64_t cold_epoch = (tip / 16) * 16;  // checkpointed, off-ring
    const int reps = smoke ? 50 : 400;
    auto timed = [&](const char* label, const char* metric, auto consistency,
                     int iters) {
      bench::Timer t;
      for (int i = 0; i < iters; ++i) {
        QueryRequest req;
        req.queries = {NumClustersQuery{0.5}};
        req.consistency = consistency;
        (void)svc.submit(std::move(req)).get();
      }
      double us = t.us() / iters;
      bench::row("%-22s %12.2f us/query", label, us);
      bench::json_log().metric("E-ENGINE-8", metric, us, "us");
      return us;
    };
    timed("query Latest:", "latest_us", Latest{}, reps);
    timed("query AsOf (ring):", "asof_ring_us", AsOf{ring_epoch}, reps);
    // First touch decodes the checkpoint; repeats hit the LRU.
    timed("AsOf rehydrate cold:", "asof_rehydrate_first_us", AsOf{cold_epoch},
          1);
    timed("AsOf rehydrate LRU:", "asof_rehydrate_cached_us", AsOf{cold_epoch},
          reps);
  }
  std::error_code ec;
  fs::remove_all(base, ec);
}

static void incremental_flush(bool smoke) {
  bench::header("E-ENGINE-9",
                "incremental shard flush: contraction patch vs full rebuild");
  auto pct = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    return v[std::min(v.size() - 1,
                      static_cast<size_t>(q * static_cast<double>(v.size())))];
  };
  // Enough flushes per config that the p50 reflects the engine rather
  // than scheduling noise on small hosts (the slow tail is one-sided).
  const int rounds = smoke ? 32 : 48;
  bench::row("%8s %6s | %10s %10s | %10s %10s | %8s %10s %8s", "shard n",
             "batch", "rb p50 us", "rb p99 us", "pt p50 us", "pt p99 us",
             "speedup", "rounds", "patched");
  for (vertex_id n : smoke ? std::vector<vertex_id>{1024, 8192}
                           : std::vector<vertex_id>{1024, 2048, 8192}) {
    for (int batch : smoke ? std::vector<int>{8, 16, 64}
                           : std::vector<int>{8, 16, 64, 256}) {
      // Index 0 = full rebuild every flush, 1 = incremental patch.
      // The headline numbers are the per-shard snapshot materialization
      // stage (the flush.shard_build / flush.shard_patch histograms the
      // router records into) — that is the stage this path optimizes.
      // Whole-flush wall time is dominated by the MSF apply stage
      // (erase replacement searches) and is emitted as secondary JSON
      // metrics for context.
      std::vector<double> wall[2];
      double stage50[2] = {0, 0}, stage99[2] = {0, 0};
      uint64_t rr = 0, rt = 0, patched = 0, fallbacks = 0;
      {
        // Twin services, identical op streams, flushes interleaved per
        // round: external disturbances (this is a latency benchmark on
        // a shared host) then contaminate both sides' histograms about
        // equally instead of landing on whichever variant happened to
        // be running, so the p50 ratio is stable run-to-run.
        std::unique_ptr<SldService> svcs[2];
        for (int inc = 0; inc < 2; ++inc) {
          ServiceConfig cfg;
          cfg.num_vertices = n;
          cfg.num_shards = 1;
          cfg.incremental_snapshots = inc == 1;
          svcs[inc] = std::make_unique<SldService>(cfg);
        }
        par::Rng rng(99);
        uint64_t widx = 0;
        auto wgen = [&] {
          return static_cast<double>((widx++ * 2654435761ull + 3) %
                                     999983ull) /
                 999983.0;
        };
        auto rand_pair = [&] {
          vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
          vertex_id v = static_cast<vertex_id>(rng.next_bounded(n - 1));
          if (v >= u) ++v;
          return std::pair<vertex_id, vertex_id>{u, v};
        };
        // Bulk load: a path over the shard plus n/4 random chords, so
        // the dendrogram is one big component with internal structure.
        // Tickets are service-local, but the identical op streams keep
        // the two live lists index-aligned.
        std::vector<ticket_t> live[2];
        auto ins = [&](vertex_id u, vertex_id v) {
          const double w = wgen();
          live[0].push_back(svcs[0]->insert(u, v, w));
          live[1].push_back(svcs[1]->insert(u, v, w));
        };
        for (vertex_id v = 0; v + 1 < n; ++v) ins(v, v + 1);
        for (vertex_id i = 0; i < n / 4; ++i) {
          auto [u, v] = rand_pair();
          ins(u, v);
        }
        svcs[0]->flush();
        svcs[1]->flush();
        for (int r = 0; r < rounds; ++r) {
          for (int i = 0; i < batch; ++i) {
            if (!live[0].empty() && rng.next_double() < 0.5) {
              size_t j = rng.next_bounded(live[0].size());
              for (int inc = 0; inc < 2; ++inc) {
                svcs[inc]->erase(live[inc][j]);
                live[inc][j] = live[inc].back();
                live[inc].pop_back();
              }
            } else {
              auto [u, v] = rand_pair();
              ins(u, v);
            }
          }
          for (int inc = 0; inc < 2; ++inc) {
            bench::Timer t;
            svcs[inc]->flush();
            wall[inc].push_back(t.us());
          }
        }
        // The rebuild service records every materialization into
        // flush.shard_build; the incremental one records patched ones
        // into flush.shard_patch (its bulk load and any fallbacks land
        // in shard_build, so the patch histogram is pure).
        for (int inc = 0; inc < 2; ++inc) {
          auto hs = (inc ? svcs[inc]->obs().flush_shard_patch
                         : svcs[inc]->obs().flush_shard_build)
                        ->snapshot();
          stage50[inc] = hs.p50() / 1000.0;
          stage99[inc] = hs.p99() / 1000.0;
        }
        auto st = svcs[1]->stats();
        rr = st.contraction_rounds_rerun;
        rt = st.contraction_rounds_total;
        patched = st.shard_snapshots_patched;
        fallbacks = st.shard_patch_fallbacks;
      }
      const double rb50 = stage50[0], rb99 = stage99[0];
      const double pt50 = stage50[1], pt99 = stage99[1];
      const double speedup = pt50 > 0 ? rb50 / pt50 : 0.0;
      const double wall_rb50 = pct(wall[0], 0.5);
      const double wall_pt50 = pct(wall[1], 0.5);
      char rounds_col[32];
      std::snprintf(rounds_col, sizeof rounds_col, "%llu/%llu",
                    static_cast<unsigned long long>(rr),
                    static_cast<unsigned long long>(rt));
      char patched_col[32];
      std::snprintf(patched_col, sizeof patched_col, "%llu(%lluF)",
                    static_cast<unsigned long long>(patched),
                    static_cast<unsigned long long>(fallbacks));
      bench::row("%8u %6d | %10.1f %10.1f | %10.1f %10.1f | %7.2fx %10s %8s",
                 n, batch, rb50, rb99, pt50, pt99, speedup, rounds_col,
                 patched_col);
      const std::string key =
          "_n" + std::to_string(n) + "_b" + std::to_string(batch);
      bench::json_log().metric("E-ENGINE-9", "flush_p50_us_rebuild" + key,
                               rb50, "us");
      bench::json_log().metric("E-ENGINE-9", "flush_p99_us_rebuild" + key,
                               rb99, "us");
      bench::json_log().metric("E-ENGINE-9", "flush_p50_us_patch" + key, pt50,
                               "us");
      bench::json_log().metric("E-ENGINE-9", "flush_p99_us_patch" + key, pt99,
                               "us");
      bench::json_log().metric("E-ENGINE-9", "speedup" + key, speedup, "x");
      bench::json_log().metric("E-ENGINE-9", "wall_flush_p50_us_rebuild" + key,
                               wall_rb50, "us");
      bench::json_log().metric("E-ENGINE-9", "wall_flush_p50_us_patch" + key,
                               wall_pt50, "us");
      if (rt)
        bench::json_log().metric(
            "E-ENGINE-9", "rounds_rerun_pct" + key,
            100.0 * static_cast<double>(rr) / static_cast<double>(rt), "%");
    }
  }
}

static void wire_serving(bool smoke) {
  bench::header("E-ENGINE-10",
                "wire serving: RPC round trip vs submit(), replica fan-out");
  namespace fs = std::filesystem;
  auto pct = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    return v[std::min(v.size() - 1,
                      static_cast<size_t>(q * static_cast<double>(v.size())))];
  };
  const fs::path dir =
      fs::temp_directory_path() /
      ("dynsld_bench_net_" +
       std::to_string(static_cast<unsigned long long>(::getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);
  {
    const vertex_id n = smoke ? 256 : 2048;
    const int shards = 4;
    ServiceConfig cfg;
    cfg.num_vertices = n;
    cfg.num_shards = shards;
    cfg.persist.dir = dir.string();  // replicas feed off the WAL stream
    cfg.persist.checkpoint_every = 16;
    SldService svc(cfg);
    {
      par::Rng rng(11);
      uint64_t widx = 0;
      std::vector<ticket_t> live;
      const int epochs = smoke ? 12 : 48, batch = smoke ? 64 : 256;
      for (int e = 0; e < epochs; ++e) {
        for (int i = 0; i < batch; ++i) {
          if (!live.empty() && rng.next_double() < 0.3) {
            size_t j = rng.next_bounded(live.size());
            svc.erase(live[j]);
            live[j] = live.back();
            live.pop_back();
          } else {
            vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
            vertex_id v = static_cast<vertex_id>(rng.next_bounded(n - 1));
            if (v >= u) ++v;
            live.push_back(svc.insert(
                u, v,
                static_cast<double>(widx * 2654435761ull % 999983ull) /
                    999983.0));
            ++widx;
          }
        }
        svc.flush();
      }
    }
    net::RpcServer server(svc);  // ephemeral loopback port

    // Round trip: the identical single-query request stream, submitted
    // in-process vs across the wire by a blocking client. Both paths go
    // through the same broker, so the p50 delta is pure plumbing.
    const double taus[] = {0.15, 0.35, 0.55, 0.75, 0.95};
    auto request = [&](int i) {
      QueryRequest req;
      req.queries.push_back(NumClustersQuery{taus[i % 5]});
      return req;
    };
    const int reps = smoke ? 300 : 3000;
    std::vector<double> in_us, wire_us;
    in_us.reserve(reps);
    wire_us.reserve(reps);
    for (int i = 0; i < reps; ++i) {
      bench::Timer t;
      (void)svc.submit(request(i)).get();
      in_us.push_back(t.us());
    }
    {
      net::RpcClient cli("127.0.0.1", server.port());
      for (int i = 0; i < reps; ++i) {
        bench::Timer t;
        (void)cli.query(request(i));
        wire_us.push_back(t.us());
      }
    }
    const double in50 = pct(in_us, 0.5), in99 = pct(in_us, 0.99);
    const double wr50 = pct(wire_us, 0.5), wr99 = pct(wire_us, 0.99);
    bench::row("%-22s %10s %10s", "round trip", "p50 us", "p99 us");
    bench::row("%-22s %10.1f %10.1f", "in-process submit()", in50, in99);
    bench::row("%-22s %10.1f %10.1f", "loopback wire", wr50, wr99);
    bench::json_log().metric("E-ENGINE-10", "inproc_p50_us", in50, "us");
    bench::json_log().metric("E-ENGINE-10", "inproc_p99_us", in99, "us");
    bench::json_log().metric("E-ENGINE-10", "wire_p50_us", wr50, "us");
    bench::json_log().metric("E-ENGINE-10", "wire_p99_us", wr99, "us");
    bench::json_log().metric("E-ENGINE-10", "wire_overhead_p50_x",
                             in50 > 0 ? wr50 / in50 : 0.0, "x");

    // Fan-out: two replicas bootstrap over the wire and serve their own
    // ports; the same client fleet then drives a fixed query count at
    // the writer alone vs round-robined across all three servers.
    net::Replica::Options ro;
    ro.port = server.port();
    ro.cfg.num_vertices = n;
    ro.cfg.num_shards = shards;
    net::Replica rep1(ro), rep2(ro);
    const uint64_t tip = svc.epoch();
    if (!rep1.wait_for_epoch(tip, std::chrono::seconds(30)) ||
        !rep2.wait_for_epoch(tip, std::chrono::seconds(30))) {
      std::printf("  replica bootstrap timed out; skipping fan-out\n");
      return;
    }
    net::RpcServer rsrv1(rep1.service());
    net::RpcServer rsrv2(rep2.service());
    const int threads = smoke ? 4 : 8;
    const int per_thread = smoke ? 150 : 600;
    // A distinct tau per query defeats the broker's (epoch, tau) group
    // cache, so every query pays a real resolution — the throughput
    // ratio then measures serving capacity, not cache hits. All three
    // servers share this host's cores (the replicas are in-process), so
    // the fan-out ratio reflects host parallelism: ~1x on a single-core
    // runner, approaching 3x only when cores are free to take the extra
    // brokers' work.
    auto tput_request = [&](int i) {
      QueryRequest req;
      req.queries.push_back(SizeHistogramQuery{
          static_cast<double>(static_cast<uint64_t>(i) * 2654435761ull %
                              999983ull) /
          999983.0});
      return req;
    };
    auto run = [&](std::vector<uint16_t> ports) {
      std::vector<std::thread> ts;
      bench::Timer t;
      for (int c = 0; c < threads; ++c)
        ts.emplace_back([&, c] {
          net::RpcClient cli("127.0.0.1", ports[c % ports.size()]);
          for (int i = 0; i < per_thread; ++i)
            (void)cli.query(tput_request(c * per_thread + i));
        });
      for (auto& th : ts) th.join();
      return threads * per_thread / (t.ms() / 1000.0);
    };
    const double qps_single = run({server.port()});
    const double qps_fanout = run({server.port(), rsrv1.port(), rsrv2.port()});
    bench::row("%-22s %12.0f q/s", "1 server", qps_single);
    bench::row("%-22s %12.0f q/s  (%0.2fx)", "writer + 2 replicas",
               qps_fanout, qps_single > 0 ? qps_fanout / qps_single : 0.0);
    bench::json_log().metric("E-ENGINE-10", "qps_single_server", qps_single,
                             "q/s");
    bench::json_log().metric("E-ENGINE-10", "qps_fanout3", qps_fanout, "q/s");
    bench::json_log().metric("E-ENGINE-10", "fanout_speedup",
                             qps_single > 0 ? qps_fanout / qps_single : 0.0,
                             "x");
  }
  fs::remove_all(dir, ec);
}

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Snapshot arrays are a few hundred KB each; above glibc's default
  // mmap threshold they are mmap'd fresh per flush and handed back to
  // the OS on free, so every epoch pays page faults instead of reusing
  // heap chunks. Pin the threshold high so latency numbers measure the
  // engine, not the allocator.
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
#endif
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  bench::parse_json_arg(argc, argv, "engine", smoke, par::num_workers());
  std::printf("workers: %d%s\n", par::num_workers(), smoke ? " (smoke)" : "");
  concurrent_serving(smoke);
  shard_scaling(smoke);
  coalescing(smoke);
  view_amortization(smoke);
  subscription_refresh(smoke);
  label_maintenance(smoke);
  broker_cross_client(smoke);
  durability(smoke);
  incremental_flush(smoke);
  wire_serving(smoke);
  bench::json_log().write();
  return 0;
}
