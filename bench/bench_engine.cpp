// E-ENGINE: the concurrent SLD serving engine.
//
//   1. Concurrent serving: a writer streams sliding-window batches
//      through the service while R reader threads query epoch
//      snapshots. Readers sustain queries *during* batch flushes —
//      queries/s stays high while updates/s holds — because readers
//      bind to immutable epochs instead of locking the structure.
//   2. Shard scaling: block-local churn with a small cross-shard
//      fraction, S = 1..8 shards; per-shard sub-batches apply in
//      parallel on the fork-join pool.
//   3. Coalescing: short-lived edges annihilate in the mutation queue
//      and never reach the shards.
//
//   $ ./bench_engine
#include <cstdio>

#include "bench_util.hpp"
#include "engine/replay.hpp"
#include "engine/sld_service.hpp"
#include "parallel/par.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using namespace dynsld::engine;

static void concurrent_serving() {
  bench::header("E-ENGINE-1", "readers sustain queries during batch flushes");
  Trace tr = Trace::sliding_window(/*window=*/600, /*steps=*/30,
                                   /*per_step=*/120, /*connect_radius=*/0.45,
                                   /*seed=*/42);
  bench::row("%-28s %8zu vertices, %zu ops (%zu inserts)", "sliding-window trace:",
             (size_t)tr.num_vertices, tr.ops.size(), tr.num_inserts());
  bench::row("%8s %12s %12s %10s %12s", "readers", "updates/s", "queries/s",
             "epochs", "wall_ms");
  for (int readers : {0, 1, 2, 4, 8}) {
    ServiceConfig cfg;
    cfg.num_vertices = tr.num_vertices;
    SldService svc(cfg);
    ReplayOptions opt;
    opt.reader_threads = readers;
    opt.tau = 0.3;
    opt.ops_per_flush = 128;
    ReplayReport rep = replay(tr, svc, opt);
    bench::row("%8d %12.0f %12.0f %10llu %12.2f", readers, rep.updates_per_s,
               rep.queries_per_s, (unsigned long long)rep.epochs_published,
               rep.wall_ms);
  }
}

static void shard_scaling() {
  bench::header("E-ENGINE-2", "sharded flushes: independent blocks in parallel");
  const int groups = 8, block = 512, ops = 40000;
  Trace tr = Trace::blocks(groups, block, ops, /*cross_fraction=*/0.03,
                           /*seed=*/7);
  bench::row("%-28s %d blocks x %d vertices, %zu ops", "block-churn trace:",
             groups, block, tr.ops.size());
  bench::row("%8s %12s %10s %14s %12s", "shards", "updates/s", "epochs",
             "cross_ops", "wall_ms");
  for (int shards : {1, 2, 4, 8}) {
    ServiceConfig cfg;
    cfg.num_vertices = tr.num_vertices;
    cfg.num_shards = shards;
    SldService svc(cfg);
    ReplayOptions opt;
    opt.ops_per_flush = 256;
    ReplayReport rep = replay(tr, svc, opt);
    bench::row("%8d %12.0f %10llu %14llu %12.2f", shards, rep.updates_per_s,
               (unsigned long long)rep.epochs_published,
               (unsigned long long)svc.stats().cross_ops, rep.wall_ms);
  }
}

static void coalescing() {
  bench::header("E-ENGINE-3", "update coalescing: churn dies in the queue");
  const vertex_id n = 4096;
  bench::row("%12s %12s %12s %14s", "churn_frac", "enqueued", "applied",
             "coalesced_%");
  for (double churn : {0.0, 0.5, 0.9}) {
    ServiceConfig cfg;
    cfg.num_vertices = n;
    SldService svc(cfg);
    par::Rng rng(13);
    const int ops = 20000;
    std::vector<ticket_t> live;
    for (int i = 0; i < ops; ++i) {
      vertex_id u = rng.next_bounded(n), v;
      do {
        v = rng.next_bounded(n);
      } while (v == u);
      ticket_t t = svc.insert(u, v, rng.next_double());
      if (rng.next_double() < churn) {
        svc.erase(t);  // short-lived: annihilates pre-flush
      } else {
        live.push_back(t);
      }
      if (i % 512 == 511) svc.flush();
    }
    svc.flush();
    auto r = svc.stats();
    uint64_t enq = r.inserts_enqueued + r.erases_enqueued;
    bench::row("%12.1f %12llu %12llu %13.1f%%", churn,
               (unsigned long long)enq, (unsigned long long)r.ops_applied,
               enq ? 100.0 * (enq - r.ops_applied) / enq : 0.0);
  }
}

int main() {
  std::printf("workers: %d\n", par::num_workers());
  concurrent_serving();
  shard_scaling();
  coalescing();
  return 0;
}
