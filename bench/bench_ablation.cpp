// A1 (ablation): spine-index choice — pointer walks vs LCT vs RC tree —
// for each update algorithm on the height-h family. Quantifies the
// index-maintenance overhead the paper's sequential Thm 1.1 algorithm
// avoids, and what the output-sensitive algorithms buy in exchange.
#include "bench_util.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"

using namespace dynsld;
using bench::Timer;

namespace {

const char* index_name(SpineIndex s) {
  switch (s) {
    case SpineIndex::kPointer:
      return "ptr";
    case SpineIndex::kLct:
      return "lct";
    default:
      return "rc";
  }
}

}  // namespace

int main() {
  bench::header("A1", "ablation: spine index (ptr / lct / rc) per algorithm");
  bench::row("%6s %8s %-10s %12s %12s", "index", "h", "algo", "ins_us", "del_us");
  for (vertex_id h : {1u << 8, 1u << 11}) {
    gen::Forest f = gen::lower_bound_stars(h, 4);
    for (SpineIndex idx :
         {SpineIndex::kPointer, SpineIndex::kLct, SpineIndex::kRc}) {
      for (int algo = 0; algo < 2; ++algo) {
        if (algo == 1 && idx == SpineIndex::kPointer) continue;  // needs index
        DynSLD s(f.n, idx);
        for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
        const int reps = idx == SpineIndex::kRc ? 5 : 20;
        double ins = 0, del = 0;
        for (int r = 0; r < reps; ++r) {
          Timer ti;
          edge_id e = algo == 0 ? s.insert(0, h + 1, 0.0)
                                : s.insert_output_sensitive(0, h + 1, 0.0);
          ins += ti.us();
          Timer td;
          s.erase(e);
          del += td.us();
        }
        bench::row("%6s %8u %-10s %12.1f %12.1f", index_name(idx), h,
                   algo == 0 ? "walk" : "out_sens", ins / reps, del / reps);
      }
    }
  }
  return 0;
}
