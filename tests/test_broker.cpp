// QueryBroker tests: the asynchronous request plane's contracts.
//
// Correctness: submitted batches answer exactly like pinned views at
// the fulfillment epoch (the fuzz harness additionally differentials
// this on every schedule). Control plane: deadlines, cancellation,
// admission control, and shutdown all resolve futures with the right
// typed QueryError and — counter-asserted — never execute any query
// work. Amortization: concurrent clients' requests at one (epoch, tau)
// share a single merge resolution.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "engine/broker.hpp"
#include "engine/cluster_view.hpp"
#include "engine/query.hpp"
#include "engine/sld_service.hpp"
#include "parallel/random.hpp"
#include "test_util.hpp"

namespace dynsld::engine {
namespace {

using namespace std::chrono_literals;

/// Total §6.1 query executions recorded by the stats block — the "did
/// any query work run" probe the error-path tests assert on.
uint64_t executed_queries(const SldService& svc) {
  return svc.stats().queries();
}

/// Seed a 2-shard service with intra edges in both shards plus sub-tau
/// cross edges, then flush: queries at tau 0.6 have a real cross merge.
void seed_two_shards(SldService& svc, par::Rng& rng) {
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 30; ++i) {
      auto [u, v] = test::random_block_pair(rng, static_cast<vertex_id>(k) * 20, 20);
      svc.insert(u, v, rng.next_double() * 0.5);
    }
  }
  for (int i = 0; i < 8; ++i)
    svc.insert(rng.next_bounded(20), 20 + rng.next_bounded(20),
               0.1 + 0.4 * rng.next_double());
  svc.flush();
}

/// QueryErrorCode of the error a future resolves with; fails the test
/// if it resolves with a value instead.
QueryErrorCode error_code_of(std::future<ResultSet>& fut) {
  try {
    fut.get();
  } catch (const QueryError& e) {
    return e.code();
  }
  ADD_FAILURE() << "future resolved with a value, expected QueryError";
  return QueryErrorCode::kShutdown;
}

TEST(QueryBroker, SubmitMatchesPinnedViewAnswers) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  auto snap = svc.snapshot();
  ClusterView view(snap);
  for (double tau : {0.2, 0.6}) {
    QueryRequest req;
    auto [s, t] = test::random_distinct_pair(rng, 40);
    req.queries = {SameClusterQuery{s, t, tau}, ClusterSizeQuery{s, tau},
                   FlatClusteringQuery{tau},    SizeHistogramQuery{tau},
                   NumClustersQuery{tau},       ClusterReportQuery{t, tau}};
    ResultSet rs = svc.submit(std::move(req)).get();
    ASSERT_EQ(rs.epoch, snap->epoch());
    auto tv = view.at(tau);
    EXPECT_EQ(std::get<bool>(rs.results[0]), tv->same_cluster(s, t));
    EXPECT_EQ(std::get<uint64_t>(rs.results[1]), tv->cluster_size(s));
    EXPECT_EQ(std::get<std::vector<vertex_id>>(rs.results[2]),
              tv->flat_clustering());
    EXPECT_EQ(std::get<SizeHistogram>(rs.results[3]), tv->size_histogram());
    EXPECT_EQ(std::get<uint64_t>(rs.results[4]), tv->num_clusters());
    auto rep = std::get<std::vector<vertex_id>>(rs.results[5]);
    EXPECT_EQ(rep.size(), tv->cluster_size(t));
  }
}

/// A deadline already in the past at submit: the future resolves with
/// kDeadlineExceeded immediately and no query work ever runs.
TEST(QueryBroker, DeadlineExpiredAtSubmitNeverExecutes) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  uint64_t q_before = executed_queries(svc);
  uint64_t views_before = svc.stats().views_built;

  QueryRequest req;
  req.queries = {SameClusterQuery{1, 2, 0.6}, FlatClusteringQuery{0.6}};
  req.deadline = std::chrono::steady_clock::now() - 1ms;
  auto fut = svc.submit(std::move(req));
  EXPECT_EQ(error_code_of(fut), QueryErrorCode::kDeadlineExceeded);

  EXPECT_EQ(executed_queries(svc), q_before);
  EXPECT_EQ(svc.stats().views_built, views_before);
  EXPECT_EQ(svc.stats().broker_deadline_expired, 1u);
  EXPECT_EQ(svc.stats().broker_submits, 0u);  // fast-failed pre-intake
  EXPECT_EQ(svc.broker().depth(), 0u);
}

/// A parked AtLeastEpoch request whose deadline passes before the epoch
/// arrives expires in place — typed error, no execution.
TEST(QueryBroker, DeadlineExpiresWhileParked) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  uint64_t q_before = executed_queries(svc);
  QueryRequest req;
  req.queries = {ClusterSizeQuery{3, 0.6}};
  req.consistency = AtLeastEpoch{svc.epoch() + 1};  // never published here
  req.deadline = std::chrono::steady_clock::now() + 10ms;
  auto fut = svc.submit(std::move(req));
  EXPECT_EQ(error_code_of(fut), QueryErrorCode::kDeadlineExceeded);
  EXPECT_EQ(executed_queries(svc), q_before);
  EXPECT_EQ(svc.stats().broker_deadline_expired, 1u);
  EXPECT_EQ(svc.broker().depth(), 0u);
}

/// Cancelling a queued request resolves it with kCancelled and skips
/// execution entirely.
TEST(QueryBroker, CancelQueuedRequest) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  uint64_t q_before = executed_queries(svc);
  CancelSource cancel;
  QueryRequest req;
  req.queries = {FlatClusteringQuery{0.6}};
  req.consistency = AtLeastEpoch{svc.epoch() + 1};  // parks until a flush
  req.cancel = cancel.token();
  auto fut = svc.submit(std::move(req));

  cancel.request_cancel();
  // The next publish wakes the dispatcher, which must drop the request
  // instead of running it at the now-satisfying epoch.
  svc.insert(1, 2, 0.3);
  svc.flush();
  EXPECT_EQ(error_code_of(fut), QueryErrorCode::kCancelled);
  EXPECT_EQ(executed_queries(svc), q_before);
  EXPECT_EQ(svc.stats().broker_cancelled, 1u);
  EXPECT_EQ(svc.broker().depth(), 0u);
}

/// Destroying the service (=> broker shutdown) with futures in flight:
/// every one resolves with kShutdown — never dangles — and the futures
/// stay valid past the service's lifetime.
TEST(QueryBroker, ShutdownResolvesInFlightFutures) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  std::optional<SldService> svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(*svc, rng);

  std::vector<std::future<ResultSet>> futs;
  for (int i = 0; i < 4; ++i) {
    QueryRequest req;
    req.queries = {SameClusterQuery{1, 2, 0.6}};
    req.consistency = AtLeastEpoch{svc->epoch() + 1000};  // never satisfied
    futs.push_back(svc->submit(std::move(req)));
  }
  // Give the dispatcher a chance to park them (not required for the
  // contract — shutdown drains intake and parked alike).
  std::this_thread::sleep_for(1ms);
  uint64_t q_before = executed_queries(*svc);
  svc.reset();  // broker shutdown runs in the service destructor
  for (auto& fut : futs)
    EXPECT_EQ(error_code_of(fut), QueryErrorCode::kShutdown);
  (void)q_before;
}

/// AtLeastEpoch holds the request across a flush and answers at the
/// published epoch — the read-your-writes pattern.
TEST(QueryBroker, AtLeastEpochWaitsAcrossFlush) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  svc.insert(5, 6, 0.2);  // enqueued, not yet visible

  const uint64_t target = svc.epoch() + 1;
  QueryRequest req;
  req.queries = {SameClusterQuery{5, 6, 0.5}};
  req.consistency = AtLeastEpoch{target};
  auto fut = svc.submit(std::move(req));
  // Not ready while the edge sits in the mutation queue.
  EXPECT_EQ(fut.wait_for(5ms), std::future_status::timeout);

  ASSERT_EQ(svc.flush(), target);
  ResultSet rs = fut.get();
  EXPECT_EQ(rs.epoch, target);
  EXPECT_TRUE(std::get<bool>(rs.results[0]));  // the write is visible
  EXPECT_GE(svc.stats().broker_epoch_waits, 1u);
}

/// Intake beyond the configured queue depth is rejected immediately
/// with kAdmissionRejected; accepted requests are unaffected.
TEST(QueryBroker, AdmissionControlRejectsBeyondDepth) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  cfg.broker_queue_depth = 2;
  SldService svc(cfg);

  const uint64_t target = svc.epoch() + 1;
  auto parked_req = [&] {
    QueryRequest req;
    req.queries = {ClusterSizeQuery{1, 0.5}};
    req.consistency = AtLeastEpoch{target};
    return req;
  };
  auto f1 = svc.submit(parked_req());
  auto f2 = svc.submit(parked_req());
  uint64_t q_before = executed_queries(svc);
  auto f3 = svc.submit(parked_req());  // over depth: rejected at intake
  EXPECT_EQ(error_code_of(f3), QueryErrorCode::kAdmissionRejected);
  EXPECT_EQ(svc.stats().broker_admission_rejects, 1u);
  EXPECT_EQ(executed_queries(svc), q_before);

  // The accepted two still complete once the epoch arrives.
  svc.insert(1, 2, 0.3);
  ASSERT_EQ(svc.flush(), target);
  EXPECT_EQ(f1.get().epoch, target);
  EXPECT_EQ(f2.get().epoch, target);
  EXPECT_EQ(svc.broker().depth(), 0u);
  EXPECT_EQ(svc.stats().broker_max_depth, 2u);
}

/// The cross-client amortization claim: N single-query requests at one
/// tau submitted as one atomic batch collapse into a single (epoch,
/// tau) group backed by one merge resolution.
TEST(QueryBroker, CrossClientGroupingSharesOneResolution) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  const double tau = 0.6;
  auto before = svc.stats();
  std::vector<QueryRequest> reqs(8);
  for (int i = 0; i < 8; ++i)
    reqs[i].queries = {ClusterSizeQuery{static_cast<vertex_id>(i), tau}};
  auto futs = svc.submit_batch(std::move(reqs));
  ClusterView view = svc.view();  // same epoch: no flush in between
  auto tv = view.at(tau);
  for (int i = 0; i < 8; ++i) {
    ResultSet rs = futs[i].get();
    ASSERT_EQ(rs.results.size(), 1u);
    EXPECT_EQ(std::get<uint64_t>(rs.results[0]),
              tv->cluster_size(static_cast<vertex_id>(i)));
  }
  auto after = svc.stats();
  EXPECT_EQ(after.broker_batches - before.broker_batches, 1u);
  EXPECT_EQ(after.broker_groups - before.broker_groups, 1u);
  EXPECT_EQ(after.broker_group_requests - before.broker_group_requests, 8u);
  // One resolution for the whole fleet (the view.at above may add one
  // more, built after the counters were re-read — exclude it by order).
  EXPECT_EQ(after.views_built - before.views_built -
                /*our explicit view.at*/ 1u,
            1u);
}

/// Pinned consistency answers against the exact pinned snapshot even
/// after newer epochs publish.
TEST(QueryBroker, PinnedServesSupersededEpoch) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  svc.insert(1, 2, 0.3);
  svc.flush();
  auto pinned = svc.snapshot();
  const uint64_t pinned_epoch = pinned->epoch();

  ASSERT_TRUE(svc.erase(vertex_id{1}, vertex_id{2}));
  svc.flush();  // newer epoch: the edge is gone

  QueryRequest req;
  req.queries = {SameClusterQuery{1, 2, 0.5}};
  req.consistency = Pinned{pinned};
  ResultSet rs = svc.submit(std::move(req)).get();
  EXPECT_EQ(rs.epoch, pinned_epoch);
  EXPECT_TRUE(std::get<bool>(rs.results[0]));  // answered at the old epoch
  EXPECT_FALSE(svc.same_cluster(1, 2, 0.5));   // Latest sees the erase
}

/// Empty Latest requests complete immediately (current epoch, no
/// results) and the sync run() wrapper mirrors that for empty spans —
/// but an empty AtLeastEpoch request is an epoch BARRIER: it parks
/// until the awaited epoch publishes.
TEST(QueryBroker, EmptyRequestCompletesImmediately) {
  ServiceConfig cfg;
  cfg.num_vertices = 8;
  SldService svc(cfg);
  ResultSet rs = svc.submit(QueryRequest{}).get();
  EXPECT_TRUE(rs.results.empty());
  EXPECT_EQ(rs.epoch, svc.epoch());
  EXPECT_TRUE(svc.run({}).empty());
  EXPECT_EQ(svc.stats().broker_submits, 0u);  // no intake consumed

  const uint64_t target = svc.epoch() + 1;
  QueryRequest barrier;
  barrier.consistency = AtLeastEpoch{target};
  auto fut = svc.submit(std::move(barrier));
  EXPECT_EQ(fut.wait_for(5ms), std::future_status::timeout);  // parked
  svc.insert(1, 2, 0.5);
  ASSERT_EQ(svc.flush(), target);
  ResultSet brs = fut.get();
  EXPECT_TRUE(brs.results.empty());
  EXPECT_EQ(brs.epoch, target);  // resolved by the awaited epoch, not before
}

/// The sync surfaces are broker wrappers now: they produce correct
/// answers and account as broker traffic.
TEST(QueryBroker, SyncWrappersRouteThroughBroker) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  auto snap = svc.snapshot();
  const double tau = 0.6;
  auto ref = test::reference_labels(40, snap->captured_edges(), tau);
  for (int q = 0; q < 10; ++q) {
    auto [s, t] = test::random_distinct_pair(rng, 40);
    EXPECT_EQ(svc.same_cluster(s, t, tau), ref[s] == ref[t]);
    EXPECT_EQ(svc.cluster_size(s, tau), test::ref_cluster_size(ref, s));
  }
  test::expect_same_partition(ref, svc.flat_clustering(tau));
  EXPECT_EQ(svc.num_clusters(tau), test::ref_histogram(ref).num_clusters());
  EXPECT_GE(svc.stats().broker_submits, 22u);
  EXPECT_GT(svc.stats().broker_batches, 0u);
}

/// NumClustersQuery: the per-shard reassembly (rank-prefix counts
/// corrected by the cross merge) equals the histogram's count at every
/// threshold, without materializing bins — including epoch 0 (all
/// singletons) and the all-cross regime.
TEST(QueryBroker, NumClustersMatchesHistogramReassembly) {
  ServiceConfig cfg;
  cfg.num_vertices = 50;
  cfg.num_shards = 4;  // stride 13: uneven last shard
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();

  {  // epoch 0: every vertex a singleton
    auto tv = svc.view().at(0.5);
    EXPECT_EQ(tv->num_clusters(), 50u);
  }

  std::vector<ticket_t> live;
  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.next_double() < 0.3) {
      size_t j = rng.next_bounded(live.size());
      svc.erase(live[j]);
      live[j] = live.back();
      live.pop_back();
    } else {
      auto [u, v] = test::random_distinct_pair(rng, 50);
      live.push_back(svc.insert(u, v, rng.next_double()));
    }
    if (step % 75 != 74) continue;
    svc.flush();
    auto snap = svc.snapshot();
    ClusterView view(snap);
    for (double tau : {0.0, 0.15, 0.4, 0.7, 1.0}) {
      auto tv = view.at(tau);
      auto ref = test::reference_labels(50, snap->captured_edges(), tau);
      uint64_t expected = test::ref_histogram(ref).num_clusters();
      EXPECT_EQ(tv->num_clusters(), expected) << "tau=" << tau;
      EXPECT_EQ(tv->size_histogram().num_clusters(), expected);
      // And through the typed query + the broker.
      QueryRequest req;
      req.queries = {NumClustersQuery{tau}};
      req.consistency = Pinned{snap};
      EXPECT_EQ(std::get<uint64_t>(svc.submit(std::move(req)).get().results[0]),
                expected);
    }
  }
}

/// Every fulfilled submit records its submit->fulfill latency into the
/// broker.fulfill histogram, and the resulting percentiles are sane:
/// p50 <= p99 <= the bucket bound of the recorded max. Error-path
/// resolutions (here: a pre-expired deadline) never record — the
/// histogram answers "how fast are answers", not "how fast are
/// rejections".
TEST(QueryBroker, FulfillmentHistogramTracksCompletedRequests) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_two_shards(svc, rng);

  const int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    QueryRequest req;
    auto [u, v] = test::random_distinct_pair(rng, 40);
    req.queries = {SameClusterQuery{u, v, 0.6}};
    svc.submit(std::move(req)).get();
  }
  // An expired request resolves exceptionally and must not record.
  {
    QueryRequest req;
    req.queries = {SameClusterQuery{0, 1, 0.6}};
    req.deadline = std::chrono::steady_clock::now() - 1ms;
    auto fut = svc.submit(std::move(req));
    EXPECT_EQ(error_code_of(fut), QueryErrorCode::kDeadlineExceeded);
  }

  auto scrape = svc.obs().registry.scrape();
  const obs::HistogramSnapshot* h = scrape.histogram("broker.fulfill");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(kRequests));
  EXPECT_GT(h->max, 0u);
  EXPECT_LE(h->p50(), h->p90());
  EXPECT_LE(h->p90(), h->p99());
  // The p99 estimate interpolates inside a bucket, so it is bounded by
  // the upper edge of the bucket holding the true maximum.
  EXPECT_LT(h->p99(),
            static_cast<double>(obs::LatencyHistogram::bucket_upper(
                obs::LatencyHistogram::bucket_of(h->max))));

  // The dispatcher's own cycle instrumentation ran too.
  EXPECT_GT(svc.obs().broker_cycle->snapshot().count, 0u);
}

}  // namespace
}  // namespace dynsld::engine
