// Dendrogram structure + static construction tests: build_kruskal vs
// the definitional brute-force simulation across generator families,
// plus structural invariants (heap order, child consistency, height).
#include <gtest/gtest.h>

#include "dendrogram/static_sld.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dynsld {
namespace {

using gen::Forest;
using gen::Weights;

void expect_valid_sld(const Dendrogram& d) {
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (!d.alive(e)) continue;
    edge_id p = d.parent(e);
    if (p != kNoEdge) {
      ASSERT_TRUE(d.alive(p));
      EXPECT_LT(d.rank(e), d.rank(p)) << "heap order violated at " << e;
    }
    int kids = 0;
    for (edge_id c : d.node(e).child) {
      if (c != kNoEdge) {
        ++kids;
        EXPECT_EQ(d.parent(c), e);
      }
    }
    EXPECT_LE(kids, 2);
  }
}

TEST(StaticSld, EmptyAndSingleEdge) {
  Dendrogram d0 = build_kruskal(3, {});
  EXPECT_EQ(d0.size(), 0u);
  std::vector<WeightedEdge> one{{0, 1, 5.0, 0}};
  Dendrogram d1 = build_kruskal(3, one);
  EXPECT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1.parent(0), kNoEdge);
}

TEST(StaticSld, PathIncreasingIsChain) {
  Forest f = gen::path(6, Weights::kIncreasing);
  Dendrogram d = build_kruskal(f.n, f.edges);
  // Weights 1..5 along the path: each node's parent is the next edge.
  for (edge_id e = 0; e + 1 < 5; ++e) EXPECT_EQ(d.parent(e), e + 1);
  EXPECT_EQ(d.parent(4), kNoEdge);
  EXPECT_EQ(d.height(), 5u);
}

TEST(StaticSld, PathBalancedIsShallow) {
  Forest f = gen::path(1025, Weights::kBalanced);
  Dendrogram d = build_kruskal(f.n, f.edges);
  expect_valid_sld(d);
  EXPECT_LE(d.height(), 22u);  // ~2 log2(1024)
}

TEST(StaticSld, StarIncreasing) {
  Forest f = gen::star(5, Weights::kIncreasing);
  Dendrogram d = build_kruskal(f.n, f.edges);
  // Star edges merge in weight order onto the center: chain again.
  for (edge_id e = 0; e + 1 < 4; ++e) EXPECT_EQ(d.parent(e), e + 1);
}

TEST(StaticSld, LowerBoundStarsArePaths) {
  Forest f = gen::lower_bound_stars(/*h=*/8, /*num_stars=*/4);
  Dendrogram d = build_kruskal(f.n, f.edges);
  expect_valid_sld(d);
  // Each star's SLD is a path of height h: every node has <=1 child.
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (d.alive(e)) EXPECT_LE(d.num_children(e), 1);
  }
  EXPECT_EQ(d.height(), 8u);
}

struct FamilyParam {
  const char* name;
  Forest (*make)(vertex_id, Weights, uint64_t);
  Weights weights;
  vertex_id n;
};

class KruskalVsBrute : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(KruskalVsBrute, Agree) {
  const auto& p = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Forest f = p.make(p.n, p.weights, seed);
    Dendrogram got = build_kruskal(f.n, f.edges);
    Dendrogram want = test::build_brute(f.n, f.edges);
    ASSERT_DENDRO_EQ(got, want);
    expect_valid_sld(got);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, KruskalVsBrute,
    ::testing::Values(
        FamilyParam{"path_rand", gen::path, Weights::kRandom, 40},
        FamilyParam{"path_inc", gen::path, Weights::kIncreasing, 40},
        FamilyParam{"path_dec", gen::path, Weights::kDecreasing, 40},
        FamilyParam{"path_bal", gen::path, Weights::kBalanced, 40},
        FamilyParam{"star_rand", gen::star, Weights::kRandom, 40},
        FamilyParam{"cat_rand", gen::caterpillar, Weights::kRandom, 40},
        FamilyParam{"bin_rand", gen::binary_tree, Weights::kRandom, 40},
        FamilyParam{"bin_bal", gen::binary_tree, Weights::kBalanced, 63}),
    [](const auto& info) { return info.param.name; });

TEST(KruskalVsBruteRandomTree, Agree) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    gen::Forest f = gen::random_tree(50, seed);
    Dendrogram got = build_kruskal(f.n, f.edges);
    Dendrogram want = test::build_brute(f.n, f.edges);
    ASSERT_DENDRO_EQ(got, want);
  }
}

TEST(KruskalVsBruteForest, MultipleComponents) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    gen::Forest f = gen::random_forest(60, 5, seed);
    Dendrogram got = build_kruskal(f.n, f.edges);
    Dendrogram want = test::build_brute(f.n, f.edges);
    ASSERT_DENDRO_EQ(got, want);
  }
}

TEST(Dendrogram, SpineIsSortedByRank) {
  gen::Forest f = gen::random_tree(80, 3);
  Dendrogram d = build_kruskal(f.n, f.edges);
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (!d.alive(e)) continue;
    auto s = d.spine(e);
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      EXPECT_LT(d.rank(s[i]), d.rank(s[i + 1]));
    }
    EXPECT_EQ(s[0], e);
    EXPECT_EQ(d.parent(s.back()), kNoEdge);
  }
}

TEST(Dendrogram, ApplyParentChangesTwoPhase) {
  // A relink pattern whose naive sequential application would
  // transiently give a node three children: rotate chains under a
  // 2-child node.
  Dendrogram d;
  for (edge_id i = 0; i < 5; ++i) {
    d.add_node(WeightedEdge{0, static_cast<vertex_id>(i + 1),
                            static_cast<double>(i + 1), i});
  }
  // 4 has children 2 and 3; 2 has child 0; 3 has child 1.
  d.set_parent(2, 4);
  d.set_parent(3, 4);
  d.set_parent(0, 2);
  d.set_parent(1, 3);
  // Swap the sub-chains: 0 under 3, 1 under 2.
  std::vector<std::pair<edge_id, edge_id>> ch{{0, 3}, {1, 2}};
  d.apply_parent_changes(ch);
  EXPECT_EQ(d.parent(0), 3u);
  EXPECT_EQ(d.parent(1), 2u);
  EXPECT_EQ(d.num_children(2), 1);
  EXPECT_EQ(d.num_children(3), 1);
  EXPECT_EQ(d.num_children(4), 2);
}

TEST(Dendrogram, HeightOfForest) {
  gen::Forest f = gen::random_forest(100, 4, 7);
  Dendrogram d = build_kruskal(f.n, f.edges);
  // Height equals the longest spine.
  size_t want = 0;
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (d.alive(e)) want = std::max(want, d.spine(e).size());
  }
  EXPECT_EQ(d.height(), want);
}

}  // namespace
}  // namespace dynsld
