// Observability subsystem tests: the log-bucketed latency histogram
// (bucket layout, percentile-vs-oracle, shard merge, concurrent
// writers), the metric registry and its exposition formats, the span
// ring, and the engine wiring — EngineStats's X-macro coverage, the
// EngineObs scrape surface, the per-epoch trace frozen into published
// snapshots, and the bundle outliving its service.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/sld_service.hpp"
#include "engine/stats.hpp"
#include "engine/subscription.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/random.hpp"
#include "test_util.hpp"

namespace dynsld {
namespace {

using obs::HistogramSnapshot;
using obs::LatencyHistogram;

// ---------------------------------------------------------------------
// LatencyHistogram: bucket layout.
// ---------------------------------------------------------------------

TEST(HistogramBuckets, EveryValueLandsInsideItsBucket) {
  auto check = [](uint64_t v) {
    uint32_t b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kBuckets) << "v=" << v;
    EXPECT_LE(LatencyHistogram::bucket_lower(b), v) << "v=" << v;
    if (b + 1 < LatencyHistogram::kBuckets) {  // top bucket clamps
      EXPECT_LT(v, LatencyHistogram::bucket_upper(b)) << "v=" << v;
    }
  };
  for (uint64_t v = 0; v < 4096; ++v) check(v);
  for (int s = 2; s < 63; ++s) {
    check((uint64_t{1} << s) - 1);
    check(uint64_t{1} << s);
    check((uint64_t{1} << s) + 1);
  }
  auto rng = test::test_rng();
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform: a random bit width, then random bits below it.
    int w = 1 + static_cast<int>(rng.next_bounded(63));
    check(rng.next() & ((uint64_t{1} << w) - 1));
  }
}

TEST(HistogramBuckets, IndexMonotoneAndRelativeWidthBounded) {
  uint32_t prev = 0;
  for (uint64_t v = 0; v < (1u << 20); v += 1 + v / 64) {
    uint32_t b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev) << "v=" << v;
    prev = b;
  }
  // Each bucket's width is at most 1/kSub of its lower bound (values
  // below kSub are exact, width 1).
  for (uint32_t b = LatencyHistogram::kSub; b + 1 < LatencyHistogram::kBuckets;
       ++b) {
    uint64_t lo = LatencyHistogram::bucket_lower(b);
    uint64_t hi = LatencyHistogram::bucket_upper(b);
    EXPECT_GT(hi, lo) << "b=" << b;
    EXPECT_LE(hi - lo, lo / LatencyHistogram::kSub + 1) << "b=" << b;
  }
}

// ---------------------------------------------------------------------
// LatencyHistogram: percentiles vs a sorted oracle.
// ---------------------------------------------------------------------

TEST(HistogramPercentile, WithinBucketOfSortedOracle) {
  auto rng = test::test_rng();
  LatencyHistogram h;
  std::vector<uint64_t> values;
  uint64_t sum = 0;
  for (int i = 0; i < 20000; ++i) {
    int w = 1 + static_cast<int>(rng.next_bounded(30));
    uint64_t v = rng.next() & ((uint64_t{1} << w) - 1);
    values.push_back(v);
    sum += v;
    h.record(v);
  }
  std::sort(values.begin(), values.end());

  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, values.size());
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.max, values.back());

  // The percentile estimate must land inside the bucket that holds the
  // true nearest-rank sample — that is the histogram's accuracy
  // contract (bounded relative error, not exactness).
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    uint64_t oracle = values[rank - 1];
    uint32_t b = LatencyHistogram::bucket_of(oracle);
    double est = s.percentile(p);
    EXPECT_GE(est, static_cast<double>(LatencyHistogram::bucket_lower(b)))
        << "p=" << p << " oracle=" << oracle;
    EXPECT_LT(est, static_cast<double>(LatencyHistogram::bucket_upper(b)))
        << "p=" << p << " oracle=" << oracle;
  }
  // Percentiles are monotone in p.
  EXPECT_LE(s.p50(), s.p90());
  EXPECT_LE(s.p90(), s.p99());
  EXPECT_LE(s.p99(), s.percentile(100));
}

TEST(HistogramPercentile, EmptyAndSingleSample) {
  LatencyHistogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().p99(), 0.0);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
  h.record(1000);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, 1000u);
  uint32_t b = LatencyHistogram::bucket_of(1000);
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_GE(s.percentile(p), LatencyHistogram::bucket_lower(b));
    EXPECT_LT(s.percentile(p), LatencyHistogram::bucket_upper(b));
  }
}

// ---------------------------------------------------------------------
// LatencyHistogram: shard merge and concurrent writers.
// ---------------------------------------------------------------------

TEST(HistogramMerge, MultiThreadSnapshotEqualsSingleThreaded) {
  auto rng = test::test_rng();
  std::vector<uint64_t> values;
  for (int i = 0; i < 16000; ++i) {
    values.push_back(rng.next_bounded(1u << 24));
  }

  LatencyHistogram reference;
  for (uint64_t v : values) reference.record(v);

  // The same multiset recorded from 8 threads (distinct shard slots):
  // the merged snapshot must be identical, buckets and all.
  LatencyHistogram sharded;
  const int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (size_t i = t; i < values.size(); i += kThreads) {
        sharded.record(values[i]);
      }
    });
  }
  for (auto& th : ts) th.join();

  EXPECT_EQ(sharded.snapshot(), reference.snapshot());
}

TEST(HistogramConcurrency, WritersNeverBlockOrCorruptScrapes) {
  // TSan target: many writers record while a scraper merges — the
  // contract is no locks on the record path and relaxed-consistent
  // snapshots. Final totals must be exact once writers join.
  LatencyHistogram h;
  const int kThreads = 8, kPer = 20000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      HistogramSnapshot s = h.snapshot();
      EXPECT_GE(s.count, last);  // counts only grow
      last = s.count;
    }
  });
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        h.record(static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : ts) th.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(s.max, 7u * 1000 + (kPer - 1));
}

// ---------------------------------------------------------------------
// MetricRegistry and exposition.
// ---------------------------------------------------------------------

TEST(MetricRegistry, ScrapeReadsCountersGaugesHistograms) {
  obs::MetricRegistry reg;
  std::atomic<uint64_t> c{41};
  reg.add_counter("test.counter", &c);
  uint64_t g = 7;
  reg.add_gauge("test.gauge", [&g] { return g; });
  LatencyHistogram* h = reg.add_histogram("test.lat");
  h->record(100);
  h->record(300);

  c.fetch_add(1);
  g = 9;
  obs::MetricsSnapshot m = reg.scrape();
  EXPECT_EQ(m.counter("test.counter"), 42u);
  EXPECT_EQ(m.counter("no.such"), 0u);
  ASSERT_EQ(m.gauges.size(), 1u);
  EXPECT_EQ(m.gauges[0].value, 9u);  // evaluated at scrape, not add
  const HistogramSnapshot* hs = m.histogram("test.lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  EXPECT_EQ(hs->sum, 400u);
  EXPECT_EQ(m.histogram("no.such"), nullptr);

  // add_histogram is get-or-create; find_histogram never creates.
  EXPECT_EQ(reg.add_histogram("test.lat"), h);
  EXPECT_EQ(reg.find_histogram("test.lat"), h);
  EXPECT_EQ(reg.find_histogram("no.such"), nullptr);

  reg.clear_gauges();
  EXPECT_TRUE(reg.scrape().gauges.empty());
  EXPECT_EQ(reg.scrape().counters.size(), 1u);  // counters survive
}

TEST(Exposition, JsonAndPrometheusRenderings) {
  obs::MetricRegistry reg;
  std::atomic<uint64_t> c{12};
  reg.add_counter("engine.flushes", &c);
  reg.add_gauge("broker.depth", [] { return uint64_t{3}; });
  LatencyHistogram* h = reg.add_histogram("broker.fulfill");
  for (int i = 1; i <= 100; ++i) h->record(static_cast<uint64_t>(i) * 50);
  obs::MetricsSnapshot m = reg.scrape();

  std::string j = obs::to_json(m);
  for (const char* sub :
       {"\"counters\"", "\"engine.flushes\": 12", "\"gauges\"",
        "\"broker.depth\": 3", "\"histograms\"", "\"broker.fulfill\"",
        "\"count\": 100", "\"p50_ns\"", "\"p99_ns\"", "\"buckets\""}) {
    EXPECT_NE(j.find(sub), std::string::npos) << "missing " << sub;
  }

  std::string p = obs::to_prometheus(m);
  for (const char* sub :
       {"# TYPE dynsld_engine_flushes counter", "dynsld_engine_flushes 12",
        "# TYPE dynsld_broker_depth gauge",
        "# TYPE dynsld_broker_fulfill histogram",
        "dynsld_broker_fulfill_bucket{le=\"+Inf\"} 100",
        "dynsld_broker_fulfill_count 100", "dynsld_broker_fulfill_sum"}) {
    EXPECT_NE(p.find(sub), std::string::npos) << "missing " << sub;
  }
}

TEST(Exposition, StatsSinkEmitsAndStops) {
  obs::MetricRegistry reg;
  std::atomic<uint64_t> c{5};
  reg.add_counter("engine.epochs_published", &c);
  std::mutex mu;
  std::vector<std::string> emitted;
  {
    obs::StatsSink::Options opt;
    opt.interval = std::chrono::milliseconds(3600 * 1000);  // manual only
    obs::StatsSink sink(
        reg,
        [&](const std::string& s) {
          std::lock_guard<std::mutex> lk(mu);
          emitted.push_back(s);
        },
        opt);
    sink.flush_now();
  }  // destructor performs one final scrape+emit
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_GE(emitted.size(), 2u);
  EXPECT_NE(emitted[0].find("\"engine.epochs_published\": 5"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Span ring.
// ---------------------------------------------------------------------

TEST(TraceRing, ScopedSpansRecordStopIdempotentCancelDiscards) {
  obs::TraceRing ring(4);
  LatencyHistogram h;
  {
    obs::ScopedSpan span(&ring, "flush.apply", 7, &h);
    uint64_t d1 = span.stop();
    EXPECT_EQ(span.stop(), d1);  // idempotent, same duration
  }  // destructor after stop() records nothing extra
  {
    obs::ScopedSpan span(&ring, "flush.drain", 8, &h);
    span.cancel();
  }  // cancelled: nothing recorded
  obs::ScopedSpan(nullptr, "nowhere", 0).stop();  // null ring tolerated

  auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "flush.apply");
  EXPECT_EQ(spans[0].tag, 7u);
  EXPECT_EQ(ring.total_recorded(), 1u);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  obs::TraceRing ring(3);
  for (uint64_t i = 0; i < 5; ++i) ring.record("s", i, i * 10, 1);
  auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].tag, 2u);  // oldest retained, in order
  EXPECT_EQ(spans[2].tag, 4u);
  EXPECT_EQ(ring.total_recorded(), 5u);
}

// ---------------------------------------------------------------------
// EngineStats X-macro coverage and the EngineObs scrape surface.
// ---------------------------------------------------------------------

TEST(EngineStatsXmacro, ForEachVisitsExactlyTheCounterList) {
  engine::EngineStats s;
  std::set<std::string> names;
  size_t n = 0;
  s.for_each([&](const char* name, const std::atomic<uint64_t>&) {
    ++n;
    names.insert(name);
  });
  EXPECT_EQ(n, engine::EngineStats::kNumCounters);
  EXPECT_EQ(names.size(), n) << "duplicate counter name in the X-macro list";
  // The size static_asserts in stats.hpp pin the layout; spot-check the
  // generated report against a bumped field.
  s.flushes.fetch_add(3);
  EXPECT_EQ(s.report().flushes, 3u);
}

TEST(EngineObs, RegistersEveryCounterAndTheHistogramCatalog) {
  engine::EngineObs o;
  obs::MetricsSnapshot m = o.registry.scrape();
  EXPECT_EQ(m.counters.size(), engine::EngineStats::kNumCounters);
  for (const auto& s : m.counters) {
    EXPECT_EQ(s.name.rfind("engine.", 0), 0u) << s.name;
  }
  for (const char* h :
       {"flush.drain", "flush.apply", "flush.shard_build", "flush.shards",
        "flush.cross", "flush.publish", "flush.notify", "flush.total",
        "broker.intake_wait", "broker.park", "broker.resolve",
        "broker.fulfill", "broker.cycle", "sub.refresh"}) {
    EXPECT_NE(o.registry.find_histogram(h), nullptr) << h;
  }
  // Counter bumps are visible through the registry: same atomics.
  o.stats.epochs_published.fetch_add(2);
  EXPECT_EQ(o.registry.scrape().counter("engine.epochs_published"), 2u);
}

// ---------------------------------------------------------------------
// Engine wiring: EpochTrace, flush spans, and bundle lifetime.
// ---------------------------------------------------------------------

TEST(EngineTrace, FlushFreezesEpochTraceAndRecordsStageSpans) {
  engine::ServiceConfig cfg;
  cfg.num_vertices = 64;
  cfg.num_shards = 2;
  engine::SldService svc(cfg);
  auto rng = test::test_rng();

  // Nothing pending: flush is a no-op and records no stage latency.
  EXPECT_EQ(svc.flush(), 0u);
  EXPECT_EQ(svc.obs().flush_total->snapshot().count, 0u);

  for (int i = 0; i < 200; ++i) {
    auto [u, v] = test::random_distinct_pair(rng, 64);
    svc.insert(u, v, rng.next_double());
  }
  uint64_t e = svc.flush();
  EXPECT_EQ(e, 1u);

  auto snap = svc.snapshot();
  const obs::EpochTrace& tr = snap->trace();
  EXPECT_EQ(tr.epoch, e);
  EXPECT_GT(tr.ops, 0u);
  EXPECT_GT(tr.shards_rebuilt, 0);
  EXPECT_GT(tr.total_ns(), 0u);

  // Stage histograms saw exactly this one flush.
  EXPECT_EQ(svc.obs().flush_total->snapshot().count, 1u);
  EXPECT_EQ(svc.obs().flush_apply->snapshot().count, 1u);

  // The ring holds the epoch-tagged pipeline spans, drain..notify.
  std::set<std::string> names;
  for (const auto& s : svc.obs().trace.snapshot()) {
    if (s.tag == e) names.insert(s.name);
  }
  for (const char* want : {"flush.drain", "flush.apply", "flush.shards",
                           "flush.publish", "flush.notify", "flush.total"}) {
    EXPECT_TRUE(names.count(want)) << "missing span " << want;
  }

  // The registry reads the same atomics the engine bumps.
  obs::MetricsSnapshot m = svc.obs().registry.scrape();
  EXPECT_EQ(m.counter("engine.flushes"), 1u);
  // Gauges read the live service.
  bool saw_epoch = false;
  for (const auto& g : m.gauges) {
    if (g.name == "engine.epoch") {
      saw_epoch = true;
      EXPECT_EQ(g.value, e);
    }
  }
  EXPECT_TRUE(saw_epoch);
}

TEST(EngineTrace, SubscribedViewRefreshRecordsHistogram) {
  engine::ServiceConfig cfg;
  cfg.num_vertices = 48;
  cfg.num_shards = 2;
  engine::SldService svc(cfg);
  auto rng = test::test_rng();
  {
    engine::SubscribedView sub(svc);
    for (int i = 0; i < 60; ++i) {
      auto [u, v] = test::random_distinct_pair(rng, 48);
      svc.insert(u, v, rng.next_double());
    }
    svc.flush();
    (void)sub.at(0.5);  // resolve a view so refresh() has work
    EXPECT_TRUE(sub.stale());
    EXPECT_TRUE(sub.refresh());
    EXPECT_GE(svc.obs().sub_refresh->snapshot().count, 1u);
  }
}

TEST(EngineTrace, ObsBundleOutlivesService) {
  engine::ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.num_shards = 2;
  auto svc = std::make_unique<engine::SldService>(cfg);
  auto rng = test::test_rng();
  for (int i = 0; i < 40; ++i) {
    auto [u, v] = test::random_distinct_pair(rng, 32);
    svc->insert(u, v, rng.next_double());
  }
  svc->flush();
  auto snap = svc->snapshot();
  ASSERT_NE(snap->obs(), nullptr);
  std::shared_ptr<engine::EngineObs> bundle = snap->obs();

  svc.reset();  // service gone; the snapshot keeps the bundle alive

  obs::MetricsSnapshot m = bundle->registry.scrape();
  EXPECT_TRUE(m.gauges.empty());  // live-service gauges were cleared
  EXPECT_EQ(m.counters.size(), engine::EngineStats::kNumCounters);
  EXPECT_GT(m.counter("engine.inserts_enqueued"), 0u);
  const HistogramSnapshot* ft = m.histogram("flush.total");
  ASSERT_NE(ft, nullptr);
  EXPECT_EQ(ft->count, 1u);
  EXPECT_EQ(snap->trace().epoch, 1u);
}

}  // namespace
}  // namespace dynsld
