// End-to-end pipeline tests (Problem 2): the maintained forest must be
// exactly the MSF of the live graph under the (weight, id) order after
// every update, and the dendrogram queries must match brute-force
// threshold clustering of the *graph*.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "dendrogram/static_sld.hpp"
#include "graph/generators.hpp"
#include "msf/dynamic_msf.hpp"
#include "parallel/random.hpp"

namespace dynsld {
namespace {

using par::Rng;

struct GraphOracle {
  vertex_id n;
  // alive graph edges keyed by handle
  std::map<uint32_t, WeightedEdge> edges;

  /// Kruskal MSF under (w, id): returns sorted (u,v,w,id) list.
  std::vector<WeightedEdge> msf() const {
    std::vector<WeightedEdge> es;
    for (const auto& [id, e] : edges) es.push_back(e);
    std::sort(es.begin(), es.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
      return a.rank() < b.rank();
    });
    UnionFind uf(n);
    std::vector<WeightedEdge> out;
    for (const auto& e : es) {
      if (!uf.connected(e.u, e.v)) {
        uf.unite(e.u, e.v);
        out.push_back(e);
      }
    }
    std::sort(out.begin(), out.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
      return a.id < b.id;
    });
    return out;
  }

  bool same_cluster(vertex_id s, vertex_id t, double tau) const {
    UnionFind uf(n);
    for (const auto& [id, e] : edges) {
      if (e.weight <= tau) uf.unite(e.u, e.v);
    }
    return uf.connected(s, t);
  }
};

void expect_forest_is_msf(DynamicClustering& dc, const GraphOracle& oracle) {
  auto got = dc.forest_edges();
  std::sort(got.begin(), got.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return a.id < b.id;
  });
  auto want = oracle.msf();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "forest edge " << i;
    EXPECT_EQ(got[i].weight, want[i].weight);
  }
}

class MsfRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MsfRandom, ForestAlwaysMsf) {
  const vertex_id n = 24;
  Rng rng(GetParam());
  DynamicClustering dc(n);
  GraphOracle oracle{n, {}};
  std::vector<uint32_t> live;
  for (int step = 0; step < 300; ++step) {
    bool ins = live.empty() || rng.next_bounded(10) < 6;
    if (ins) {
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
      vertex_id v = static_cast<vertex_id>(rng.next_bounded(n));
      if (u == v) continue;
      double w = static_cast<double>(rng.next_bounded(1000));
      auto g = dc.insert_edge(u, v, w);
      oracle.edges[g] = WeightedEdge{u, v, w, g};
      live.push_back(g);
    } else {
      size_t i = rng.next_bounded(live.size());
      dc.erase_edge(live[i]);
      oracle.edges.erase(live[i]);
      live.erase(live.begin() + static_cast<long>(i));
    }
    expect_forest_is_msf(dc, oracle);
    // The dendrogram must equal the Kruskal SLD of the forest.
    auto fe = dc.sld().edges();
    ASSERT_TRUE(dc.dendrogram() == build_kruskal(n, fe));
  }
}

TEST_P(MsfRandom, ThresholdQueriesMatchGraph) {
  const vertex_id n = 18;
  Rng rng(GetParam() + 100);
  DynamicClustering dc(n);
  GraphOracle oracle{n, {}};
  std::vector<uint32_t> live;
  for (int step = 0; step < 150; ++step) {
    bool ins = live.empty() || rng.next_bounded(10) < 7;
    if (ins) {
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
      vertex_id v = static_cast<vertex_id>(rng.next_bounded(n));
      if (u == v) continue;
      double w = static_cast<double>(rng.next_bounded(100));
      auto g = dc.insert_edge(u, v, w);
      oracle.edges[g] = WeightedEdge{u, v, w, g};
      live.push_back(g);
    } else {
      size_t i = rng.next_bounded(live.size());
      dc.erase_edge(live[i]);
      oracle.edges.erase(live[i]);
      live.erase(live.begin() + static_cast<long>(i));
    }
    // Single-linkage clustering of the graph == of its MSF: spot-check
    // threshold queries at several taus.
    for (double tau : {10.0, 35.0, 70.0, 99.0}) {
      vertex_id s = static_cast<vertex_id>(rng.next_bounded(n));
      vertex_id t = static_cast<vertex_id>(rng.next_bounded(n));
      EXPECT_EQ(dc.sld().same_cluster(s, t, tau), oracle.same_cluster(s, t, tau))
          << "tau " << tau << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsfRandom, ::testing::Range<uint64_t>(1, 7));

TEST(Msf, GeometricGraphLifecycle) {
  gen::Graph g = gen::random_geometric(60, 0.25, 3);
  DynamicClustering dc(g.n);
  GraphOracle oracle{g.n, {}};
  std::vector<uint32_t> handles;
  for (const auto& e : g.edges) {
    auto h = dc.insert_edge(e.u, e.v, e.weight);
    oracle.edges[h] = WeightedEdge{e.u, e.v, e.weight, h};
    handles.push_back(h);
  }
  expect_forest_is_msf(dc, oracle);
  // Remove a third, verify, reinsert.
  Rng rng(12);
  for (size_t i = 0; i < handles.size(); i += 3) {
    dc.erase_edge(handles[i]);
    oracle.edges.erase(handles[i]);
  }
  expect_forest_is_msf(dc, oracle);
}

TEST(Msf, ParallelEdgesAndDuplicates) {
  DynamicClustering dc(4);
  auto a = dc.insert_edge(0, 1, 5);
  auto b = dc.insert_edge(0, 1, 3);  // lighter parallel edge: swaps in
  EXPECT_TRUE(dc.is_tree_edge(b));
  EXPECT_FALSE(dc.is_tree_edge(a));
  auto c = dc.insert_edge(0, 1, 4);  // middle: stays non-tree
  EXPECT_FALSE(dc.is_tree_edge(c));
  dc.erase_edge(b);  // replacement must pick c (4 < 5)
  EXPECT_TRUE(dc.is_tree_edge(c));
  EXPECT_FALSE(dc.is_tree_edge(a));
  dc.erase_edge(c);
  EXPECT_TRUE(dc.is_tree_edge(a));
  dc.erase_edge(a);
  EXPECT_EQ(dc.num_tree_edges(), 0u);
}

}  // namespace
}  // namespace dynsld
