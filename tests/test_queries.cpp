// §6.1 query tests (Table 2): threshold/LCA, cluster size, cluster
// report, and flat clustering against brute-force oracles, for every
// spine index; the crawl-based MSF-only baselines must agree with the
// dendrogram-based answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"

namespace dynsld {
namespace {

using par::Rng;

/// Brute-force: components of the forest under edges with weight <= tau.
std::vector<vertex_id> brute_labels(vertex_id n,
                                    const std::vector<WeightedEdge>& edges,
                                    double tau) {
  UnionFind uf(n);
  for (const auto& e : edges) {
    if (e.weight <= tau) uf.unite(e.u, e.v);
  }
  std::vector<vertex_id> lab(n);
  for (vertex_id v = 0; v < n; ++v) lab[v] = uf.find(v);
  return lab;
}

class QueryCombo : public ::testing::TestWithParam<SpineIndex> {};

TEST_P(QueryCombo, AllQueriesMatchBrute) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen::Forest f = gen::random_forest(40, 3, seed);
    DynSLD s(f.n, GetParam());
    for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
    auto live = s.edges();
    Rng rng(seed * 11);
    for (int q = 0; q < 60; ++q) {
      double tau = static_cast<double>(rng.next_bounded(45));
      auto lab = brute_labels(f.n, live, tau);
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(f.n));
      vertex_id v = static_cast<vertex_id>(rng.next_bounded(f.n));
      // threshold query
      EXPECT_EQ(s.same_cluster(u, v, tau), lab[u] == lab[v])
          << "tau " << tau << " u " << u << " v " << v;
      // cluster size
      uint64_t want_size = 0;
      for (vertex_id x = 0; x < f.n; ++x) {
        if (lab[x] == lab[u]) ++want_size;
      }
      EXPECT_EQ(s.cluster_size(u, tau), want_size) << "tau " << tau;
      EXPECT_EQ(s.cluster_size_via_crawl(u, tau), want_size);
      // cluster report
      auto rep = s.cluster_report(u, tau);
      std::set<vertex_id> got(rep.begin(), rep.end());
      EXPECT_EQ(got.size(), rep.size()) << "duplicates in report";
      std::set<vertex_id> want;
      for (vertex_id x = 0; x < f.n; ++x) {
        if (lab[x] == lab[u]) want.insert(x);
      }
      EXPECT_EQ(got, want) << "tau " << tau;
      auto rep2 = s.cluster_report_via_crawl(u, tau);
      EXPECT_EQ(std::set<vertex_id>(rep2.begin(), rep2.end()), want);
      // flat clustering: same partition as brute labels
      auto flat = s.flat_clustering(tau);
      for (vertex_id a = 0; a < f.n; ++a) {
        for (vertex_id b = a + 1; b < std::min<vertex_id>(f.n, a + 5); ++b) {
          EXPECT_EQ(flat[a] == flat[b], lab[a] == lab[b]);
        }
      }
    }
  }
}

TEST_P(QueryCombo, QueriesTrackUpdates) {
  // Queries stay correct as the forest changes.
  const vertex_id n = 30;
  Rng rng(77);
  DynSLD s(n, GetParam());
  std::vector<edge_id> live;
  for (int step = 0; step < 120; ++step) {
    bool ins = live.empty() || rng.next_bounded(10) < 6;
    if (ins) {
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
      vertex_id v = static_cast<vertex_id>(rng.next_bounded(n));
      if (u == v || s.connected(u, v)) continue;
      live.push_back(s.insert(u, v, static_cast<double>(rng.next_bounded(500))));
    } else {
      size_t i = rng.next_bounded(live.size());
      s.erase(live[i]);
      live.erase(live.begin() + static_cast<long>(i));
    }
    double tau = static_cast<double>(rng.next_bounded(500));
    auto edges = s.edges();
    auto lab = brute_labels(n, edges, tau);
    vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
    uint64_t want = 0;
    for (vertex_id x = 0; x < n; ++x) {
      if (lab[x] == lab[u]) ++want;
    }
    EXPECT_EQ(s.cluster_size(u, tau), want) << "step " << step;
  }
}

TEST_P(QueryCombo, ThresholdEdgeCases) {
  DynSLD s(5, GetParam());
  edge_id e1 = s.insert(0, 1, 10.0);
  s.insert(1, 2, 20.0);
  (void)e1;
  EXPECT_TRUE(s.same_cluster(0, 0, 0.0));          // identical vertices
  EXPECT_TRUE(s.same_cluster(0, 1, 10.0));         // inclusive threshold
  EXPECT_FALSE(s.same_cluster(0, 1, 9.999));
  EXPECT_FALSE(s.same_cluster(0, 4, 1e18));        // different components
  EXPECT_EQ(s.cluster_size(4, 100.0), 1u);         // isolated vertex
  EXPECT_EQ(s.cluster_report(4, 100.0), std::vector<vertex_id>{4});
  EXPECT_EQ(s.cluster_size(0, 10.0), 2u);
  EXPECT_EQ(s.cluster_size(0, 20.0), 3u);
  EXPECT_EQ(s.cluster_size(0, 5.0), 1u);
}

INSTANTIATE_TEST_SUITE_P(Indices, QueryCombo,
                         ::testing::Values(SpineIndex::kPointer, SpineIndex::kLct,
                                           SpineIndex::kRc),
                         [](const auto& info) {
                           switch (info.param) {
                             case SpineIndex::kPointer:
                               return "ptr";
                             case SpineIndex::kLct:
                               return "lct";
                             default:
                               return "rc";
                           }
                         });

}  // namespace
}  // namespace dynsld
