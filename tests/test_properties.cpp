// Property-style sweeps across sizes, families and spine indices:
//  - the dendrogram is a pure function of the edge set (insertion
//    order, algorithm choice, and batching must not matter),
//  - delete + reinsert is the identity,
//  - every spine-index query agrees with the pointer-walk definition,
//  - structural invariants (height bounds, spine monotonicity).
#include <gtest/gtest.h>

#include <algorithm>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"
#include "test_util.hpp"

namespace dynsld {
namespace {

using par::Rng;

struct SweepParam {
  vertex_id n;
  SpineIndex index;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* idx = info.param.index == SpineIndex::kPointer ? "ptr"
                    : info.param.index == SpineIndex::kLct   ? "lct"
                                                             : "rc";
  return std::string("n") + std::to_string(info.param.n) + "_" + idx;
}

class PropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PropertySweep, OrderAndAlgorithmInvariance) {
  const auto [n, index] = GetParam();
  gen::Forest f = gen::random_tree(n, 17);
  // Reference: forward insertion with the walk algorithm.
  DynSLD fwd(n, index);
  for (const auto& e : f.edges) fwd.insert(e.u, e.v, e.weight);

  // Reversed order must give... careful: different insertion orders
  // allocate different internal ids, so compare via a normalized map:
  // (edge endpoints+weight) -> (parent endpoints+weight).
  auto normalize = [](DynSLD& s) {
    std::vector<std::pair<WeightedEdge, WeightedEdge>> out;
    for (const auto& e : s.edges()) {
      edge_id p = s.dendrogram().parent(e.id);
      WeightedEdge pe =
          p == kNoEdge ? WeightedEdge{} : s.dendrogram().edge(p);
      WeightedEdge key = e;
      key.id = 0;
      pe.id = 0;
      if (key.u > key.v) std::swap(key.u, key.v);
      if (pe.u > pe.v) std::swap(pe.u, pe.v);
      out.emplace_back(key, pe);
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return std::tie(a.first.u, a.first.v, a.first.weight) <
             std::tie(b.first.u, b.first.v, b.first.weight);
    });
    return out;
  };
  auto want = normalize(fwd);

  // Reversed single insertion (distinct weights in random_tree make the
  // dendrogram unique irrespective of id tie-breaks).
  DynSLD rev(n, index);
  for (auto it = f.edges.rbegin(); it != f.edges.rend(); ++it) {
    rev.insert(it->u, it->v, it->weight);
  }
  EXPECT_EQ(normalize(rev), want);

  // One batch.
  DynSLD bat(n, index);
  std::vector<DynSLD::EdgeInsert> batch;
  for (const auto& e : f.edges) batch.push_back({e.u, e.v, e.weight});
  bat.insert_batch(batch);
  EXPECT_EQ(normalize(bat), want);

  // Mixed algorithms, shuffled order.
  Rng rng(23);
  auto order = f.edges;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_bounded(i)]);
  }
  DynSLD mix(n, index);
  int k = 0;
  for (const auto& e : order) {
    switch (k++ % 3) {
      case 0:
        mix.insert(e.u, e.v, e.weight);
        break;
      case 1:
        mix.insert_parallel(e.u, e.v, e.weight);
        break;
      default:
        if (index == SpineIndex::kPointer) {
          mix.insert(e.u, e.v, e.weight);
        } else {
          mix.insert_output_sensitive(e.u, e.v, e.weight);
        }
    }
  }
  EXPECT_EQ(normalize(mix), want);
}

TEST_P(PropertySweep, DeleteReinsertIsIdentity) {
  const auto [n, index] = GetParam();
  gen::Forest f = gen::random_tree(n, 29);
  DynSLD s(n, index);
  std::vector<edge_id> ids;
  for (const auto& e : f.edges) ids.push_back(s.insert(e.u, e.v, e.weight));
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    size_t i = rng.next_bounded(ids.size());
    WeightedEdge ed = s.edge(ids[i]);
    Dendrogram before = s.dendrogram();
    s.erase(ids[i]);
    ids[i] = s.insert(ed.u, ed.v, ed.weight);
    // Slot reuse gives the same id back, so exact equality applies.
    ASSERT_EQ(ids[i], ed.id);
    ASSERT_DENDRO_EQ(s.dendrogram(), before);
  }
}

TEST_P(PropertySweep, SpineQueriesAgreeWithWalk) {
  const auto [n, index] = GetParam();
  gen::Forest f = gen::random_tree(n, 41);
  DynSLD s(n, index);
  for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
  Rng rng(43);
  for (int q = 0; q < 100; ++q) {
    edge_id x = static_cast<edge_id>(rng.next_bounded(s.num_edges()));
    if (!s.edge_alive(x)) continue;
    auto walk = s.dendrogram().spine(x);
    ASSERT_EQ(s.idx_spine_length(x), walk.size());
    EXPECT_EQ(s.extract_spine(x), walk);
    size_t i = rng.next_bounded(walk.size());
    EXPECT_EQ(s.idx_spine_select_from_bottom(x, i), walk[i]);
    EXPECT_EQ(s.idx_spine_index_from_bottom(x, walk[i]), i);
    // PWS against the walk definition.
    Rank w{static_cast<double>(rng.next_bounded(1u << 20)),
           static_cast<edge_id>(rng.next_bounded(n))};
    edge_id below = kNoEdge, above = kNoEdge;
    for (edge_id t : walk) {
      if (s.dendrogram().rank(t) < w) below = t;
      if (above == kNoEdge && w < s.dendrogram().rank(t)) above = t;
    }
    EXPECT_EQ(s.idx_spine_search_below(x, w), below);
    EXPECT_EQ(s.idx_spine_search_above(x, w), above);
    // Subtree size against a child-pointer DFS.
    uint64_t count = 0;
    std::vector<edge_id> stack{x};
    while (!stack.empty()) {
      edge_id t = stack.back();
      stack.pop_back();
      ++count;
      for (edge_id c : s.dendrogram().node(t).child) {
        if (c != kNoEdge) stack.push_back(c);
      }
    }
    EXPECT_EQ(s.idx_subtree_size(x), count);
  }
}

TEST_P(PropertySweep, HeightAndSpineInvariants) {
  const auto [n, index] = GetParam();
  for (auto pattern : {gen::Weights::kRandom, gen::Weights::kBalanced}) {
    gen::Forest f = gen::path(n, pattern, 51);
    DynSLD s(f.n, index);
    for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
    size_t h = s.dendrogram().height();
    // h >= ceil(log2(#edges + 1)) always; kBalanced keeps it near that.
    size_t lower = 0;
    for (size_t m = f.edges.size(); m > 0; m >>= 1) ++lower;
    EXPECT_GE(h + 1, lower);
    if (pattern == gen::Weights::kBalanced) EXPECT_LE(h, 2 * lower + 2);
    s.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertySweep,
    ::testing::Values(SweepParam{16, SpineIndex::kPointer},
                      SweepParam{16, SpineIndex::kLct},
                      SweepParam{16, SpineIndex::kRc},
                      SweepParam{64, SpineIndex::kPointer},
                      SweepParam{64, SpineIndex::kLct},
                      SweepParam{64, SpineIndex::kRc},
                      SweepParam{256, SpineIndex::kLct},
                      SweepParam{256, SpineIndex::kRc}),
    sweep_name);

}  // namespace
}  // namespace dynsld
