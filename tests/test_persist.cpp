// Durability plane tests: WAL framing and torn tails, checkpoint
// round-trips, compaction, crash-injected recovery, and AsOf time
// travel.
//
// The centerpiece is the crash-injection harness: a FaultBackend that
// kills the write path after a byte budget — mid-record, mid-header,
// mid-checkpoint, wherever the budget lands — so randomized budgets
// sweep crash points across every structure the plane writes. After
// each injected crash the directory is recovered with the real backend
// and the republished epochs must match the pre-crash run BIT FOR BIT:
// exact flat-label arrays (labels are canonical — a pure function of
// the snapshot and tau), exact size histograms, exact cluster counts.
// Every workload draws distinct edge weights, which is what makes the
// dendrogram (and hence the replayed snapshot) unique; equal-weight
// ties are the documented exactness caveat (docs/DURABILITY.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/cluster_view.hpp"
#include "engine/query.hpp"
#include "engine/sld_service.hpp"
#include "persist/bytes.hpp"
#include "persist/checkpoint.hpp"
#include "persist/crc32c.hpp"
#include "persist/file_backend.hpp"
#include "persist/persist.hpp"
#include "persist/wal.hpp"
#include "test_util.hpp"

namespace dynsld::engine {
namespace {

namespace fs = std::filesystem;

/// A unique scratch directory, recursively removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    static std::atomic<int> seq{0};
    path = (fs::temp_directory_path() /
            ("dynsld_persist_" + std::to_string(seq.fetch_add(1)) + "_" +
             std::to_string(
                 reinterpret_cast<uintptr_t>(this) & 0xffffffu)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Crash injection: delegates to the real backend until a byte budget
/// runs out, then dies. The fatal append writes exactly the remaining
/// budget — a torn prefix on disk, like a crash mid-write(2) — and
/// every later write fails. write_atomic is all-or-nothing, honoring
/// the rename-publication contract: with insufficient budget NOTHING
/// lands. Reads and directory ops never fail (recovery uses them).
class FaultBackend : public persist::FileBackend {
 public:
  FaultBackend(std::shared_ptr<persist::FileBackend> inner, uint64_t budget)
      : inner_(std::move(inner)), budget_(budget) {}

  bool dead() const { return dead_; }

  bool mkdirs(const std::string& dir) override { return inner_->mkdirs(dir); }
  std::vector<std::string> list(const std::string& dir) override {
    return inner_->list(dir);
  }
  bool read_file(const std::string& path, std::string* out) override {
    return inner_->read_file(path, out);
  }
  bool remove(const std::string& path) override { return inner_->remove(path); }
  bool truncate(const std::string& path, uint64_t size) override {
    return inner_->truncate(path, size);
  }

  std::unique_ptr<File> open_append(const std::string& path) override {
    if (dead_) return nullptr;
    auto f = inner_->open_append(path);
    if (!f) return nullptr;
    return std::make_unique<FaultFile>(std::move(f), this);
  }

  bool write_atomic(const std::string& path,
                    const std::string& bytes) override {
    if (dead_ || budget_ < bytes.size()) {
      dead_ = true;
      return false;
    }
    budget_ -= bytes.size();
    return inner_->write_atomic(path, bytes);
  }

 private:
  class FaultFile : public File {
   public:
    FaultFile(std::unique_ptr<File> inner, FaultBackend* owner)
        : inner_(std::move(inner)), owner_(owner) {}
    bool append(const void* data, size_t len) override {
      if (owner_->dead_) return false;
      if (owner_->budget_ >= len) {
        owner_->budget_ -= len;
        return inner_->append(data, len);
      }
      // The crash: a prefix lands, the rest never will.
      inner_->append(data, static_cast<size_t>(owner_->budget_));
      inner_->sync();
      owner_->budget_ = 0;
      owner_->dead_ = true;
      return false;
    }
    bool sync() override { return !owner_->dead_ && inner_->sync(); }
    uint64_t size() const override { return inner_->size(); }

   private:
    std::unique_ptr<File> inner_;
    FaultBackend* owner_;
  };

  std::shared_ptr<persist::FileBackend> inner_;
  uint64_t budget_;
  bool dead_ = false;
};

/// Distinct, deterministic edge weights (999983 is prime and coprime
/// with the multiplier, so idx -> weight is injective below it).
double unique_weight(uint64_t idx) {
  return static_cast<double>(idx * 2654435761ull % 999983ull) / 999983.0;
}

/// Everything one epoch must reproduce bit for bit after recovery.
struct EpochFingerprint {
  std::vector<vertex_id> labels;  // exact canonical label array
  SizeHistogram hist;
  uint64_t num_clusters = 0;
};

EpochFingerprint fingerprint(const EpochManager::Snap& snap, double tau) {
  EpochFingerprint fp;
  fp.labels = snap->flat_clustering(tau);
  ClusterView view(snap);
  fp.hist = view.at(tau)->size_histogram();
  fp.num_clusters = view.at(tau)->num_clusters();
  return fp;
}

void expect_fingerprint_eq(const EpochFingerprint& a,
                           const EpochFingerprint& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.hist, b.hist);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

// ---- low-level codecs -------------------------------------------------

TEST(Crc32c, KnownAnswerAndChaining) {
  // The CRC-32C check value: crc of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(persist::crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(persist::crc32c("", 0), 0u);
  // Chaining: crc(a ++ b) == crc(b, seed = crc(a)).
  const std::string a = "hello ", b = "world";
  uint32_t whole = persist::crc32c((a + b).data(), a.size() + b.size());
  uint32_t chained =
      persist::crc32c(b.data(), b.size(), persist::crc32c(a.data(), a.size()));
  EXPECT_EQ(whole, chained);
}

TEST(Bytes, RoundTripAndUnderrunSafety) {
  persist::ByteWriter w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(1ull << 40);
  w.f64(-0.125);
  std::vector<uint32_t> vec{1, 2, 3};
  w.pod_vec(vec);
  persist::ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 1ull << 40);
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_EQ(r.pod_vec<uint32_t>(), vec);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  // Underrun: zero values, sticky !ok(), no crash.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  // A pod_vec whose count field lies about the remaining bytes must
  // not allocate terabytes; it must just fail.
  persist::ByteWriter bad;
  bad.u64(1ull << 60);  // "count"
  persist::ByteReader br(bad.bytes().data(), bad.bytes().size());
  EXPECT_TRUE(br.pod_vec<uint64_t>().empty());
  EXPECT_FALSE(br.ok());
}

TEST(Wal, SegmentRoundTrip) {
  TempDir dir;
  persist::PersistOptions opts;
  opts.dir = dir.path;
  opts.fsync_policy = persist::FsyncPolicy::kEveryN;
  opts.fsync_every_n = 1;
  MutationQueue::Drained b1, b2;
  b1.inserts.push_back({0, 1, 2, 0.5});
  b1.inserts.push_back({1, 3, 4, 0.25});
  b2.erases.push_back({0, 1, 2});
  {
    persist::WalWriter w(persist::local_backend(), opts, nullptr);
    EXPECT_TRUE(w.append(1, b1));
    EXPECT_TRUE(w.append(2, b2));
    EXPECT_TRUE(w.append(3, {}));  // empty batches are legal records
  }
  std::string bytes;
  ASSERT_TRUE(persist::local_backend()->read_file(
      dir.path + "/" + persist::WalReader::segment_name(1), &bytes));
  auto scan = persist::WalReader::scan(bytes);
  ASSERT_TRUE(scan.ok);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].epoch, 1u);
  ASSERT_EQ(scan.records[0].batch.inserts.size(), 2u);
  EXPECT_EQ(scan.records[0].batch.inserts[1].ticket, 1u);
  EXPECT_EQ(scan.records[0].batch.inserts[1].w, 0.25);
  ASSERT_EQ(scan.records[1].batch.erases.size(), 1u);
  EXPECT_EQ(scan.records[1].batch.erases[0].v, 2u);
  EXPECT_TRUE(scan.records[2].batch.empty());
  // Name parsing is strict round-trip.
  uint64_t e = 0;
  EXPECT_TRUE(persist::WalReader::parse_segment_name(
      persist::WalReader::segment_name(42), &e));
  EXPECT_EQ(e, 42u);
  EXPECT_FALSE(persist::WalReader::parse_segment_name("wal-abc.log", &e));
  EXPECT_FALSE(persist::WalReader::parse_segment_name(
      persist::WalReader::segment_name(42) + ".tmp", &e));
}

TEST(Wal, TornTailStopsScanAndTruncates) {
  TempDir dir;
  persist::PersistOptions opts;
  opts.dir = dir.path;
  MutationQueue::Drained b;
  b.inserts.push_back({0, 1, 2, 0.5});
  {
    persist::WalWriter w(persist::local_backend(), opts, nullptr);
    ASSERT_TRUE(w.append(1, b));
    ASSERT_TRUE(w.append(2, b));
  }
  const std::string path =
      dir.path + "/" + persist::WalReader::segment_name(1);
  std::string clean;
  ASSERT_TRUE(persist::local_backend()->read_file(path, &clean));
  // Appending a valid record's PREFIX simulates a crash mid-append.
  std::string torn_rec = persist::WalWriter::encode_record(3, b);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write(torn_rec.data(), static_cast<std::streamsize>(torn_rec.size() / 2));
  }
  std::string dirty;
  ASSERT_TRUE(persist::local_backend()->read_file(path, &dirty));
  auto scan = persist::WalReader::scan(dirty);
  ASSERT_TRUE(scan.ok);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, clean.size());
  // A flipped payload byte is also a tear (CRC catches it) even though
  // the length field is intact.
  std::string corrupt = clean;
  corrupt[corrupt.size() - 3] ^= 0x40;
  auto scan2 = persist::WalReader::scan(corrupt);
  ASSERT_TRUE(scan2.ok);
  EXPECT_TRUE(scan2.torn);
  EXPECT_EQ(scan2.records.size(), 1u);
  // Truncation restores a clean segment.
  ASSERT_TRUE(persist::local_backend()->truncate(path, scan.valid_bytes));
  std::string fixed;
  ASSERT_TRUE(persist::local_backend()->read_file(path, &fixed));
  EXPECT_FALSE(persist::WalReader::scan(fixed).torn);
}

TEST(Wal, FsyncPolicies) {
  MutationQueue::Drained b;
  b.inserts.push_back({0, 1, 2, 0.5});
  auto run = [&](persist::FsyncPolicy pol, uint64_t n,
                 std::chrono::milliseconds iv) {
    TempDir dir;
    persist::PersistOptions opts;
    opts.dir = dir.path;
    opts.fsync_policy = pol;
    opts.fsync_every_n = n;
    opts.fsync_interval = iv;
    auto obs = std::make_shared<EngineObs>();
    {
      persist::WalWriter w(persist::local_backend(), opts, obs);
      for (uint64_t e = 1; e <= 4; ++e) EXPECT_TRUE(w.append(e, b));
    }
    return obs->stats.wal_fsyncs.load();
  };
  EXPECT_EQ(run(persist::FsyncPolicy::kOff, 0, {}), 0u);
  EXPECT_EQ(run(persist::FsyncPolicy::kEveryN, 1, {}), 4u);
  EXPECT_EQ(run(persist::FsyncPolicy::kEveryN, 2, {}), 2u);
  // Interval 0: every append is past due.
  EXPECT_EQ(
      run(persist::FsyncPolicy::kInterval, 0, std::chrono::milliseconds(0)),
      4u);
}

TEST(Wal, SyncIfDueCoversBurstThenSilence) {
  // kInterval's clock used to be checked only inside append(), so a
  // burst followed by silence left the tail unsynced indefinitely.
  // sync_if_due() is the out-of-band deadline check.
  MutationQueue::Drained b;
  b.inserts.push_back({0, 1, 2, 0.5});
  TempDir dir;
  persist::PersistOptions opts;
  opts.dir = dir.path;
  opts.fsync_policy = persist::FsyncPolicy::kInterval;
  opts.fsync_interval = std::chrono::milliseconds(25);
  auto obs = std::make_shared<EngineObs>();
  persist::WalWriter w(persist::local_backend(), opts, obs);
  EXPECT_TRUE(w.append(1, b));  // the burst
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Deadline passed with no further appends: the check pays exactly the
  // one owed fsync. (On a pathologically slow machine the append itself
  // may have paid it — either way the total is one, never zero.)
  EXPECT_TRUE(w.sync_if_due());
  EXPECT_EQ(obs->stats.wal_fsyncs.load(), 1u);
  // Nothing pending: later ticks never re-sync, however long the lull.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(w.sync_if_due());
  EXPECT_EQ(obs->stats.wal_fsyncs.load(), 1u);
}

TEST(Wal, SyncIfDueIsPolicyGated) {
  MutationQueue::Drained b;
  b.inserts.push_back({0, 1, 2, 0.5});
  for (auto pol : {persist::FsyncPolicy::kOff, persist::FsyncPolicy::kEveryN}) {
    TempDir dir;
    persist::PersistOptions opts;
    opts.dir = dir.path;
    opts.fsync_policy = pol;
    opts.fsync_every_n = 4;  // far from due
    auto obs = std::make_shared<EngineObs>();
    persist::WalWriter w(persist::local_backend(), opts, obs);
    EXPECT_TRUE(w.append(1, b));
    EXPECT_TRUE(w.sync_if_due());  // not an interval policy: no-op
    EXPECT_EQ(obs->stats.wal_fsyncs.load(), 0u);
  }
}

TEST(Persist, IntervalLullSyncedByIdleTickWithinOneTick) {
  // Service-level: the background writer's idle tick (and empty
  // flushes) must honor the interval deadline, so a lull after a burst
  // is synced within roughly interval + one writer tick.
  TempDir dir;
  ServiceConfig cfg;
  cfg.num_vertices = 16;
  cfg.persist.dir = dir.path;
  cfg.persist.fsync_policy = persist::FsyncPolicy::kInterval;
  cfg.persist.fsync_interval = std::chrono::milliseconds(25);
  cfg.flush_interval = std::chrono::milliseconds(5);  // the writer tick
  cfg.flush_threshold = 1000;  // only the interval timer flushes
  SldService svc(cfg);
  svc.start_writer();
  uint64_t base = svc.stats().wal_fsyncs;
  svc.insert(1, 2, 0.5);
  svc.flush();
  if (svc.stats().wal_fsyncs != base) {
    // The append itself paid the sync (clock already past due on a slow
    // machine): burst again immediately so records are left pending.
    base = svc.stats().wal_fsyncs;
    svc.insert(2, 3, 0.6);
    svc.flush();
  }
  // Pure silence from here. The idle tick must pay the owed fsync; the
  // loop bound is generous for CI, the expected latency is
  // interval + one tick (~30 ms).
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  while (svc.stats().wal_fsyncs == base &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(svc.stats().wal_fsyncs, base)
      << "burst-then-silence left the WAL tail unsynced past the interval";
  svc.stop_writer();
}

TEST(Persist, OptionsValidateRejectsZeroKnobs) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.num_vertices = 8;
  cfg.persist.dir = dir.path;
  {
    ServiceConfig c = cfg;
    c.persist.rehydrate_cache = 0;  // used to be silently clamped to 1
    EXPECT_THROW(SldService svc(c), std::invalid_argument);
    EXPECT_THROW(persist::recover(c), std::invalid_argument);
  }
  {
    ServiceConfig c = cfg;
    c.persist.fsync_policy = persist::FsyncPolicy::kEveryN;
    c.persist.fsync_every_n = 0;
    EXPECT_THROW(SldService svc(c), std::invalid_argument);
  }
  {
    ServiceConfig c = cfg;
    c.persist.checkpoint_every = 0;
    EXPECT_THROW(SldService svc(c), std::invalid_argument);
  }
  // fsync_every_n = 0 is legal when the policy never reads it.
  {
    ServiceConfig c = cfg;
    c.persist.fsync_policy = persist::FsyncPolicy::kOff;
    c.persist.fsync_every_n = 0;
    SldService svc(c);
    svc.insert(1, 2, 0.5);
    EXPECT_EQ(svc.flush(), 1u);
  }
}

TEST(AsOf, RehydrateCacheCapacityOneBoundary) {
  // Capacity 1 — the smallest legal value (and the old clamp target for
  // zero) — must behave as a real one-entry LRU: a repeat of the cached
  // epoch is a hit, alternating epochs decode every time.
  TempDir dir;
  const double tau = 0.5;
  ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.retain_epochs = 1;  // everything historical leaves the ring fast
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 2;
  cfg.persist.retain_checkpoints = 8;
  cfg.persist.rehydrate_cache = 1;
  SldService svc(cfg);
  auto rng = test::test_rng();
  uint64_t widx = 0;
  for (int i = 0; i < 8; ++i) {
    auto [u, v] = test::random_distinct_pair(rng, 32);
    svc.insert(u, v, unique_weight(widx++));
    svc.flush();
  }
  auto asof = [&](uint64_t e) {
    QueryRequest req;
    req.queries = {NumClustersQuery{tau}};
    req.consistency = AsOf{e};
    return svc.submit(std::move(req)).get().epoch;
  };
  EXPECT_EQ(asof(2), 2u);
  EXPECT_EQ(svc.stats().asof_rehydrated, 1u);
  EXPECT_EQ(asof(2), 2u);  // cache hit: no second decode
  EXPECT_EQ(svc.stats().asof_rehydrated, 1u);
  EXPECT_EQ(asof(4), 4u);  // evicts epoch 2 (capacity one)
  EXPECT_EQ(svc.stats().asof_rehydrated, 2u);
  EXPECT_EQ(asof(2), 2u);  // decoded again
  EXPECT_EQ(svc.stats().asof_rehydrated, 3u);
}

// ---- checkpoint codec -------------------------------------------------

TEST(Checkpoint, SnapshotCodecRoundTripIsByteExact) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 4;
  cfg.capture_edges = true;
  SldService svc(cfg);
  auto rng = test::test_rng();
  uint64_t widx = 0;
  std::vector<ticket_t> live;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 12; ++i) {
      auto [u, v] = test::random_distinct_pair(rng, 40);
      live.push_back(svc.insert(u, v, unique_weight(widx++)));
    }
    if (round == 2) svc.erase(live[3]);
    svc.flush();
  }
  auto snap = svc.snapshot();
  persist::ByteWriter w;
  persist::SnapshotCodec::encode(*snap, w);
  persist::ByteReader r(w.bytes().data(), w.bytes().size());
  auto decoded = persist::SnapshotCodec::decode(r, nullptr, nullptr);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded->epoch(), snap->epoch());
  EXPECT_EQ(decoded->num_tree_edges(), snap->num_tree_edges());
  EXPECT_EQ(decoded->cross().size(), snap->cross().size());
  EXPECT_EQ(decoded->captured_edges().size(), snap->captured_edges().size());
  for (double tau : {0.2, 0.5, 0.9})
    EXPECT_EQ(decoded->flat_clustering(tau), snap->flat_clustering(tau));
  // Byte-exactness: re-encoding the decoded snapshot reproduces the
  // original encoding bit for bit.
  persist::ByteWriter w2;
  persist::SnapshotCodec::encode(*decoded, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  // Malformed input degrades to null, never UB: truncate mid-stream.
  persist::ByteReader half(w.bytes().data(), w.bytes().size() / 2);
  EXPECT_EQ(persist::SnapshotCodec::decode(half, nullptr, nullptr), nullptr);
}

// ---- service wiring ---------------------------------------------------

TEST(Persist, FreshServiceRefusesDirWithExistingState) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.num_vertices = 16;
  cfg.persist.dir = dir.path;
  {
    SldService svc(cfg);
    svc.insert(1, 2, 0.5);
    svc.flush();
  }
  EXPECT_THROW(SldService svc2(cfg), std::runtime_error);
  // recover() is the sanctioned way back in.
  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  EXPECT_EQ(res.tip_epoch, 1u);
}

TEST(Persist, RecoverEmptyDirIsFreshEngine) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.num_vertices = 16;
  cfg.persist.dir = dir.path;
  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  EXPECT_EQ(res.tip_epoch, 0u);
  EXPECT_EQ(res.checkpoint_epoch, 0u);
  EXPECT_EQ(res.records_replayed, 0u);
  EXPECT_FALSE(res.torn_tail_truncated);
  // And it is a live durable engine: mutations flow into the WAL.
  res.service->insert(0, 1, 0.5);
  EXPECT_EQ(res.service->flush(), 1u);
  EXPECT_EQ(res.service->stats().wal_records, 1u);
  // Empty-dir recover must not throw on a second round trip either.
  res.service.reset();
  auto res2 = persist::recover(cfg);
  EXPECT_EQ(res2.tip_epoch, 1u);
  EXPECT_EQ(res2.records_replayed, 1u);
}

/// Shared workload: seeded churn against a persisted service, flushing
/// every few ops and fingerprinting every published epoch at `tau`.
/// Returns the per-epoch fingerprints of the original run.
std::map<uint64_t, EpochFingerprint> churn_workload(SldService& svc,
                                                    uint64_t seed, int steps,
                                                    double tau) {
  par::Rng rng(seed);
  const vertex_id n = svc.num_vertices();
  uint64_t widx = 0;
  std::vector<ticket_t> applied;
  std::vector<std::pair<vertex_id, vertex_id>> applied_uv;
  std::map<uint64_t, EpochFingerprint> fps;
  for (int step = 0; step < steps; ++step) {
    int ops = 1 + static_cast<int>(rng.next_bounded(5));
    for (int i = 0; i < ops; ++i) {
      if (!applied.empty() && rng.next_double() < 0.3) {
        size_t j = rng.next_bounded(applied.size());
        if (rng.next_double() < 0.5)
          svc.erase(applied[j]);
        else
          svc.erase(applied_uv[j].first, applied_uv[j].second);
        applied[j] = applied.back();
        applied.pop_back();
        applied_uv[j] = applied_uv.back();
        applied_uv.pop_back();
      } else {
        auto [u, v] = test::random_distinct_pair(rng, n);
        applied.push_back(svc.insert(u, v, unique_weight(seed * 1000 + widx++)));
        applied_uv.push_back({u, v});
      }
    }
    uint64_t before = svc.epoch();
    uint64_t e = svc.flush();
    if (e != before) fps[e] = fingerprint(svc.snapshot(), tau);
  }
  return fps;
}

TEST(Persist, RecoverWalOnlyReplaysEveryEpochBitForBit) {
  TempDir dir;
  const double tau = 0.5;
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 4;
  cfg.retain_epochs = 256;  // ring holds the whole replayed history
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 1'000'000;  // WAL-only recovery
  std::map<uint64_t, EpochFingerprint> fps;
  {
    SldService svc(cfg);
    fps = churn_workload(svc, 17, 25, tau);
  }
  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  EXPECT_EQ(res.checkpoint_epoch, 0u);
  EXPECT_FALSE(res.torn_tail_truncated);
  ASSERT_FALSE(fps.empty());
  EXPECT_EQ(res.tip_epoch, fps.rbegin()->first);
  EXPECT_EQ(res.records_replayed, fps.size());
  EXPECT_EQ(res.service->stats().recovery_replayed, fps.size());
  // EVERY republished epoch fingerprints identically, served from the
  // recovered service's retention ring.
  for (const auto& [e, fp] : fps) {
    SCOPED_TRACE("epoch=" + std::to_string(e));
    auto snap = res.service->snapshot_at(e);
    ASSERT_TRUE(snap);
    expect_fingerprint_eq(fingerprint(snap, tau), fp);
  }
}

TEST(Persist, RecoverFromCheckpointPlusWalTail) {
  TempDir dir;
  const double tau = 0.4;
  ServiceConfig cfg;
  cfg.num_vertices = 48;
  cfg.num_shards = 3;
  cfg.retain_epochs = 256;
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 4;
  std::map<uint64_t, EpochFingerprint> fps;
  uint64_t pre_ckpts = 0;
  {
    SldService svc(cfg);
    fps = churn_workload(svc, 23, 22, tau);
    pre_ckpts = svc.stats().checkpoints_written;
  }
  ASSERT_GE(pre_ckpts, 2u);
  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  EXPECT_GT(res.checkpoint_epoch, 0u);
  EXPECT_EQ(res.tip_epoch, fps.rbegin()->first);
  // Replay covers exactly the epochs past the checkpoint.
  EXPECT_EQ(res.records_replayed, res.tip_epoch - res.checkpoint_epoch);
  for (const auto& [e, fp] : fps) {
    if (e < res.checkpoint_epoch) continue;  // before the replay base
    SCOPED_TRACE("epoch=" + std::to_string(e));
    auto snap = res.service->snapshot_at(e);
    ASSERT_TRUE(snap);
    expect_fingerprint_eq(fingerprint(snap, tau), fp);
  }
  // The recovered engine keeps serving and persisting: more churn, a
  // second crashless restart, still bit-for-bit.
  auto more = churn_workload(*res.service, 29, 8, tau);
  res.service.reset();
  auto res2 = persist::recover(cfg);
  ASSERT_TRUE(res2.service);
  EXPECT_EQ(res2.tip_epoch, more.rbegin()->first);
  expect_fingerprint_eq(fingerprint(res2.service->snapshot(), tau),
                        more.rbegin()->second);
}

TEST(Persist, TicketAndLedgerContinuityAfterRecovery) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.num_vertices = 16;
  cfg.persist.dir = dir.path;
  ticket_t t_max = 0;
  {
    SldService svc(cfg);
    svc.insert(0, 1, 0.1);
    ticket_t t2 = svc.insert(2, 3, 0.2);
    svc.flush();
    svc.erase(t2);  // applied-then-erased: the ticket existed
    t_max = svc.insert(4, 5, 0.3);
    svc.flush();
  }
  auto res = persist::recover(cfg);
  auto& svc = *res.service;
  // New tickets never collide with history, including erased tickets.
  ticket_t fresh = svc.insert(6, 7, 0.4);
  EXPECT_GT(fresh, t_max);
  // The endpoint ledger survived: erase-by-endpoints of a pre-crash
  // edge resolves, and a dead edge does not.
  EXPECT_TRUE(svc.erase(vertex_id{0}, vertex_id{1}));
  EXPECT_FALSE(svc.erase(vertex_id{2}, vertex_id{3}));
  svc.flush();
  EXPECT_TRUE(svc.same_cluster(6, 7, 0.5));
  EXPECT_FALSE(svc.same_cluster(0, 1, 0.99));
}

// ---- crash injection --------------------------------------------------

TEST(Persist, RandomizedCrashPointsRecoverBitForBit) {
  const double tau = 0.5;
  auto rng = test::test_rng();
  int torn_seen = 0;
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    TempDir dir;
    ServiceConfig cfg;
    cfg.num_vertices = 40;
    cfg.num_shards = 4;
    cfg.retain_epochs = 256;
    cfg.persist.dir = dir.path;
    cfg.persist.checkpoint_every = 5;
    cfg.persist.fsync_every_n = 1;
    // Budgets sweep the interesting range: death inside the first
    // records through death inside a late checkpoint.
    uint64_t budget = 40 + rng.next_bounded(6000);
    std::map<uint64_t, EpochFingerprint> fps;
    bool died = false;
    {
      // Attach the fault plane by hand: same wiring the constructor
      // does, but over the injected backend.
      ServiceConfig boot = cfg;
      boot.persist.dir.clear();
      SldService svc(boot);
      auto fault =
          std::make_shared<FaultBackend>(persist::local_backend(), budget);
      svc.attach_persistence(std::make_unique<persist::PersistenceManager>(
          cfg.persist, fault, svc.obs_shared()));
      fps = churn_workload(svc, 100 + trial, 20, tau);
      died = fault->dead();
    }
    ASSERT_FALSE(fps.empty());
    auto res = persist::recover(cfg);
    ASSERT_TRUE(res.service);
    if (res.torn_tail_truncated) ++torn_seen;
    if (!died) {
      // Budget never ran out: full history must come back.
      EXPECT_EQ(res.tip_epoch, fps.rbegin()->first);
    }
    // Whatever the recovered tip is, it is a REAL epoch the original
    // run published, and its state matches bit for bit. With
    // fsync_every_n=1 everything the WAL accepted is on disk, so the
    // tip can only trail by the records the crash swallowed.
    if (res.tip_epoch == 0) continue;  // died before the first record
    ASSERT_TRUE(fps.count(res.tip_epoch))
        << "recovered to an epoch the original never published: "
        << res.tip_epoch;
    for (const auto& [e, fp] : fps) {
      if (e < res.checkpoint_epoch || e > res.tip_epoch) continue;
      SCOPED_TRACE("epoch=" + std::to_string(e));
      auto snap = res.service->snapshot_at(e);
      ASSERT_TRUE(snap);
      expect_fingerprint_eq(fingerprint(snap, tau), fp);
    }
    // The survivor is a live engine: it accepts churn and persists it.
    auto more = churn_workload(*res.service, 200 + trial, 4, tau);
    EXPECT_EQ(res.service->epoch(), more.rbegin()->first);
  }
  // Across 10 random budgets at least one crash should land mid-write;
  // if none did, the sweep is not exercising tears at all.
  EXPECT_GT(torn_seen, 0);
}

TEST(Persist, CorruptNewestCheckpointFallsBackToOlder) {
  TempDir dir;
  const double tau = 0.6;
  ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.num_shards = 2;
  cfg.retain_epochs = 256;
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 3;
  cfg.persist.retain_checkpoints = 8;  // keep deep history for fallback
  std::map<uint64_t, EpochFingerprint> fps;
  {
    SldService svc(cfg);
    fps = churn_workload(svc, 31, 15, tau);
    ASSERT_GE(svc.stats().checkpoints_written, 2u);
  }
  // Find the newest checkpoint and flip a payload byte.
  std::vector<std::string> ckpts;
  for (const auto& name : persist::local_backend()->list(dir.path)) {
    uint64_t e;
    if (persist::CheckpointWriter::parse_file_name(name, &e))
      ckpts.push_back(name);
  }
  ASSERT_GE(ckpts.size(), 2u);
  const std::string newest = dir.path + "/" + ckpts.back();
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(60);
    char c;
    f.seekg(60);
    f.get(c);
    c ^= 0x11;
    f.seekp(60);
    f.put(c);
  }
  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  // Fallback: an OLDER checkpoint anchored replay, and the WAL (whose
  // segments the retention window kept) still carried it to the tip.
  uint64_t newest_epoch = 0;
  ASSERT_TRUE(
      persist::CheckpointWriter::parse_file_name(ckpts.back(), &newest_epoch));
  EXPECT_LT(res.checkpoint_epoch, newest_epoch);
  EXPECT_EQ(res.tip_epoch, fps.rbegin()->first);
  expect_fingerprint_eq(fingerprint(res.service->snapshot(), tau),
                        fps.rbegin()->second);
}

TEST(Persist, CompactionBoundsHistoryAndKeepsRecoverability) {
  TempDir dir;
  const double tau = 0.5;
  ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.num_shards = 2;
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 2;
  cfg.persist.retain_checkpoints = 2;
  std::map<uint64_t, EpochFingerprint> fps;
  uint64_t removed_ckpts = 0, removed_segs = 0;
  {
    SldService svc(cfg);
    fps = churn_workload(svc, 41, 24, tau);
    auto r = svc.stats();
    removed_ckpts = r.checkpoints_removed;
    removed_segs = r.wal_segments_removed;
  }
  // Compaction actually ran...
  EXPECT_GT(removed_ckpts, 0u);
  EXPECT_GT(removed_segs, 0u);
  // ...and bounded the directory: at most retain_checkpoints checkpoint
  // files, and segments only above the retained horizon.
  size_t n_ckpt = 0, n_seg = 0;
  for (const auto& name : persist::local_backend()->list(dir.path)) {
    uint64_t e;
    if (persist::CheckpointWriter::parse_file_name(name, &e)) ++n_ckpt;
    if (persist::WalReader::parse_segment_name(name, &e)) ++n_seg;
  }
  EXPECT_LE(n_ckpt, cfg.persist.retain_checkpoints);
  EXPECT_LE(n_seg, cfg.persist.retain_checkpoints + 1);
  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  EXPECT_EQ(res.tip_epoch, fps.rbegin()->first);
  expect_fingerprint_eq(fingerprint(res.service->snapshot(), tau),
                        fps.rbegin()->second);
}

// ---- AsOf time travel -------------------------------------------------

TEST(AsOf, RingRehydrationAndUnavailability) {
  TempDir dir;
  const double tau = 0.5;
  ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.num_shards = 2;
  cfg.retain_epochs = 2;  // tiny ring: epochs age out fast
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 4;
  cfg.persist.retain_checkpoints = 8;
  SldService svc(cfg);
  auto rng = test::test_rng();
  std::map<uint64_t, EpochFingerprint> fps;
  uint64_t widx = 0;
  for (int i = 0; i < 12; ++i) {
    auto [u, v] = test::random_distinct_pair(rng, 32);
    svc.insert(u, v, unique_weight(widx++));
    uint64_t e = svc.flush();
    fps[e] = fingerprint(svc.snapshot(), tau);
  }
  ASSERT_EQ(svc.epoch(), 12u);

  auto asof = [&](uint64_t e) {
    QueryRequest req;
    req.queries = {FlatClusteringQuery{tau}, NumClustersQuery{tau}};
    req.consistency = AsOf{e};
    return svc.submit(std::move(req)).get();
  };

  // Ring tier: epoch 11 was just superseded (retain_epochs = 2).
  ResultSet ring = asof(11);
  EXPECT_EQ(ring.epoch, 11u);
  EXPECT_EQ(std::get<std::vector<vertex_id>>(ring.results[0]),
            fps[11].labels);
  EXPECT_EQ(std::get<uint64_t>(ring.results[1]), fps[11].num_clusters);
  EXPECT_EQ(svc.stats().asof_retained, 1u);

  // Checkpoint tier: epoch 4 is far below the ring but checkpointed.
  ResultSet cold = asof(4);
  EXPECT_EQ(cold.epoch, 4u);
  EXPECT_EQ(std::get<std::vector<vertex_id>>(cold.results[0]), fps[4].labels);
  EXPECT_EQ(std::get<uint64_t>(cold.results[1]), fps[4].num_clusters);
  EXPECT_EQ(svc.stats().asof_rehydrated, 1u);
  // Again: the rehydration LRU answers, no second decode.
  asof(4);
  EXPECT_EQ(svc.stats().asof_rehydrated, 1u);

  // Current epoch behaves like Latest (no historical tier involved).
  EXPECT_EQ(asof(12).epoch, 12u);

  // Cold epochs without a checkpoint, and future epochs, are typed
  // errors — never a silently different epoch.
  uint64_t unavailable_before = svc.stats().asof_unavailable;
  for (uint64_t bad : {uint64_t{5}, uint64_t{99}}) {
    QueryRequest req;
    req.queries = {NumClustersQuery{tau}};
    req.consistency = AsOf{bad};
    auto fut = svc.submit(std::move(req));
    try {
      fut.get();
      FAIL() << "AsOf{" << bad << "} should be unavailable";
    } catch (const QueryError& err) {
      EXPECT_EQ(err.code(), QueryErrorCode::kEpochUnavailable);
    }
  }
  EXPECT_EQ(svc.stats().asof_unavailable, unavailable_before + 2);

  // An empty AsOf request still resolves the epoch (or errors).
  QueryRequest empty;
  empty.consistency = AsOf{4};
  EXPECT_EQ(svc.submit(std::move(empty)).get().epoch, 4u);
}

TEST(AsOf, UnpersistedServiceServesRingOnly) {
  ServiceConfig cfg;
  cfg.num_vertices = 16;
  cfg.retain_epochs = 3;
  SldService svc(cfg);
  for (int i = 0; i < 6; ++i) {
    svc.insert(static_cast<vertex_id>(i), static_cast<vertex_id>(i + 1),
               unique_weight(static_cast<uint64_t>(i)));
    svc.flush();
  }
  QueryRequest ok;
  ok.queries = {NumClustersQuery{0.5}};
  ok.consistency = AsOf{5};
  EXPECT_EQ(svc.submit(std::move(ok)).get().epoch, 5u);
  QueryRequest gone;
  gone.queries = {NumClustersQuery{0.5}};
  gone.consistency = AsOf{1};
  auto fut = svc.submit(std::move(gone));
  try {
    fut.get();
    FAIL() << "epoch 1 fell off the ring and there is no rehydrator";
  } catch (const QueryError& err) {
    EXPECT_EQ(err.code(), QueryErrorCode::kEpochUnavailable);
  }
}

// ---- observability ----------------------------------------------------

TEST(Persist, CountersAndHistogramsReachTheScrapeSurface) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.num_vertices = 24;
  cfg.persist.dir = dir.path;
  cfg.persist.checkpoint_every = 2;
  SldService svc(cfg);
  churn_workload(svc, 51, 10, 0.5);
  auto snap = svc.obs().registry.scrape();
  EXPECT_GT(snap.counter("engine.wal_records"), 0u);
  EXPECT_GT(snap.counter("engine.wal_bytes"), 0u);
  EXPECT_GT(snap.counter("engine.wal_fsyncs"), 0u);
  EXPECT_GT(snap.counter("engine.checkpoints_written"), 0u);
  const auto* append = snap.histogram("persist.append");
  ASSERT_NE(append, nullptr);
  EXPECT_GT(append->count, 0u);
  const auto* ckpt = snap.histogram("persist.checkpoint");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_GT(ckpt->count, 0u);
  // The report mirrors the same counters (X-macro coverage in action).
  auto r = svc.stats();
  EXPECT_EQ(r.wal_records, snap.counter("engine.wal_records"));
  EXPECT_EQ(r.checkpoints_written, snap.counter("engine.checkpoints_written"));
}

}  // namespace
}  // namespace dynsld::engine
