// Unit tests for the fork-join runtime and the sequence primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

#include "parallel/par.hpp"
#include "parallel/primitives.hpp"
#include "parallel/random.hpp"

namespace dynsld::par {
namespace {

TEST(Scheduler, ParDoRunsBoth) {
  int a = 0, b = 0;
  par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, NestedForkJoin) {
  std::atomic<int> count{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    par_do([&] { rec(depth - 1); }, [&] { rec(depth - 1); });
  };
  rec(10);
  EXPECT_EQ(count.load(), 1 << 10);
}

TEST(Scheduler, ParallelForCoversRange) {
  const size_t n = 100000;
  std::vector<int> hit(n, 0);
  parallel_for(0, n, [&](size_t i) { hit[i] += 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), static_cast<int>(n));
}

TEST(Scheduler, ParallelForEmptyAndTiny) {
  int calls = 0;
  parallel_for(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

class PrimitiveSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(PrimitiveSizes, ReduceMatchesStd) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i) % 1000;
  uint64_t want = std::accumulate(v.begin(), v.end(), uint64_t{0});
  EXPECT_EQ(reduce<uint64_t>(v), want);
}

TEST_P(PrimitiveSizes, ScanExclusiveMatchesStd) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n), got(n), want(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i) % 100;
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    want[i] = acc;
    acc += v[i];
  }
  uint64_t total = scan_exclusive<uint64_t>(v, got);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, want);
}

TEST_P(PrimitiveSizes, ScanExclusiveInPlace) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n), want(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i * 7) % 100;
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    want[i] = acc;
    acc += v[i];
  }
  scan_exclusive<uint64_t>(v, v);
  EXPECT_EQ(v, want);
}

TEST_P(PrimitiveSizes, FilterKeepsOrder) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i);
  auto pred = [](uint64_t x) { return x % 3 == 0; };
  auto got = filter<uint64_t>(v, pred);
  std::vector<uint64_t> want;
  for (uint64_t x : v)
    if (pred(x)) want.push_back(x);
  EXPECT_EQ(got, want);
}

TEST_P(PrimitiveSizes, PackMatchesFlags) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n);
  std::vector<char> keep(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = i;
    keep[i] = (hash64(i) & 1) != 0;
  }
  auto got = pack<uint64_t>(v, keep);
  std::vector<uint64_t> want;
  for (size_t i = 0; i < n; ++i)
    if (keep[i]) want.push_back(v[i]);
  EXPECT_EQ(got, want);
}

TEST_P(PrimitiveSizes, MergeMatchesStd) {
  const size_t n = GetParam();
  std::vector<uint64_t> a(n / 2), b(n - n / 2);
  for (size_t i = 0; i < a.size(); ++i) a[i] = hash64(i) % 10000;
  for (size_t i = 0; i < b.size(); ++i) b[i] = hash64(i + 99) % 10000;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  auto got = merge<uint64_t>(a, b);
  std::vector<uint64_t> want(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), want.begin());
  EXPECT_EQ(got, want);
}

TEST_P(PrimitiveSizes, SortMatchesStd) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = hash64(i) % 1000;
  auto want = v;
  std::stable_sort(want.begin(), want.end());
  par::sort(v);
  EXPECT_EQ(v, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitiveSizes,
                         ::testing::Values(0, 1, 2, 7, 100, 2048, 2049, 50000));

TEST(Merge, StableTieBreaking) {
  // Equal keys: all of a's elements precede b's (std::merge semantics).
  struct Tag {
    int key;
    int src;
  };
  std::vector<Tag> a(3000, Tag{5, 0}), b(3000, Tag{5, 1});
  std::vector<Tag> out(6000);
  merge<Tag>(a, b, out, [](const Tag& x, const Tag& y) { return x.key < y.key; });
  for (size_t i = 0; i < 3000; ++i) EXPECT_EQ(out[i].src, 0);
  for (size_t i = 3000; i < 6000; ++i) EXPECT_EQ(out[i].src, 1);
}

TEST(Tabulate, Basic) {
  auto v = tabulate(1000, [](size_t i) { return i * i; });
  ASSERT_EQ(v.size(), 1000u);
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * i);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Rng, BoundedAndDouble) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_bounded(17), 17u);
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace dynsld::par
