// Cartesian tree tests (§6.2): equivalence with the classic stack
// construction, heap/in-order invariants under dynamic updates, RMQ
// correctness, and the O(1)-changes bound for appends.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>

#include "cartesian/cartesian_tree.hpp"
#include "parallel/random.hpp"
#include "parallel/stats.hpp"

namespace dynsld {
namespace {

using par::Rng;

/// Check the two defining properties: in-order = sequence, max-heap.
void expect_valid(CartesianTree& t, const std::vector<double>& want_values) {
  auto seq = t.in_order();
  ASSERT_EQ(seq.size(), want_values.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(t.value(seq[i]), want_values[i]) << "position " << i;
  }
  for (auto h : seq) {
    auto p = t.parent(h);
    if (p != CartesianTree::kNoHandle) EXPECT_GT(t.value(p), t.value(h));
  }
}

/// Structure check against the stack builder (distinct values).
void expect_matches_stack(CartesianTree& t, const std::vector<double>& values) {
  auto seq = t.in_order();
  ASSERT_EQ(seq.size(), values.size());
  auto parents = build_cartesian_parents(values);
  std::map<CartesianTree::handle, size_t> pos;
  for (size_t i = 0; i < seq.size(); ++i) pos[seq[i]] = i;
  for (size_t i = 0; i < seq.size(); ++i) {
    auto p = t.parent(seq[i]);
    if (parents[i] == static_cast<size_t>(-1)) {
      EXPECT_EQ(p, CartesianTree::kNoHandle) << "element " << i;
    } else {
      ASSERT_NE(p, CartesianTree::kNoHandle) << "element " << i;
      EXPECT_EQ(pos[p], parents[i]) << "element " << i;
    }
  }
}

TEST(Cartesian, PushBackMatchesStack) {
  Rng rng(3);
  std::vector<double> values;
  CartesianTree t(128);
  for (int i = 0; i < 100; ++i) {
    double v = static_cast<double>(rng.next_bounded(1000000));
    values.push_back(v);
    t.push_back(v);
    if (i % 10 == 0) expect_matches_stack(t, values);
  }
  expect_matches_stack(t, values);
}

TEST(Cartesian, PushFrontAndBack) {
  Rng rng(4);
  std::deque<double> values;
  CartesianTree t(128);
  for (int i = 0; i < 80; ++i) {
    double v = static_cast<double>(rng.next_bounded(1000000));
    if (rng.next_bounded(2)) {
      values.push_back(v);
      t.push_back(v);
    } else {
      values.push_front(v);
      t.push_front(v);
    }
  }
  std::vector<double> vv(values.begin(), values.end());
  expect_matches_stack(t, vv);
}

TEST(Cartesian, ArbitraryInsertErase) {
  Rng rng(5);
  std::vector<double> values;
  CartesianTree t(600);
  for (int step = 0; step < 400; ++step) {
    bool ins = values.empty() || rng.next_bounded(10) < 6;
    if (ins) {
      double v = static_cast<double>(rng.next_bounded(1000000));
      if (values.empty() || rng.next_bounded(4) == 0) {
        values.push_back(v);
        t.push_back(v);
      } else {
        size_t i = rng.next_bounded(values.size());
        auto seq = t.in_order();
        t.insert_after(seq[i], v);
        values.insert(values.begin() + static_cast<long>(i) + 1, v);
      }
    } else {
      size_t i = rng.next_bounded(values.size());
      auto seq = t.in_order();
      t.erase(seq[i]);
      values.erase(values.begin() + static_cast<long>(i));
    }
    if (step % 25 == 0) expect_matches_stack(t, values);
    expect_valid(t, values);
  }
}

TEST(Cartesian, RangeMaxMatchesBrute) {
  Rng rng(6);
  std::vector<double> values;
  CartesianTree t(200);
  for (int i = 0; i < 150; ++i) {
    double v = static_cast<double>(rng.next_bounded(1000000));
    values.push_back(v);
    t.push_back(v);
  }
  auto seq = t.in_order();
  for (int q = 0; q < 300; ++q) {
    size_t a = rng.next_bounded(values.size());
    size_t b = rng.next_bounded(values.size());
    if (a > b) std::swap(a, b);
    size_t want = a;
    for (size_t i = a; i <= b; ++i) {
      if (values[i] > values[want]) want = i;
    }
    EXPECT_EQ(t.range_max(seq[a], seq[b]), seq[want]) << a << ".." << b;
  }
}

TEST(Cartesian, AppendsAreConstantChange) {
  // §6.2: appends have c = O(1); worst-case O(log n) per op.
  CartesianTree t(1100);
  for (int i = 0; i < 1000; ++i) {
    t.push_back(static_cast<double>(i + 1));  // increasing: deep spine
  }
  stats::counters().reset();
  t.push_back(2000.0);  // new maximum: exactly one pointer change + root
  EXPECT_LE(stats::counters().pointer_writes.load(), 2u);
  stats::counters().reset();
  t.push_back(1.5);  // tiny value: O(1) changes at the bottom
  EXPECT_LE(stats::counters().pointer_writes.load(), 3u);
}

TEST(Cartesian, RootIsMaximum) {
  Rng rng(9);
  CartesianTree t(64);
  double best = -1;
  for (int i = 0; i < 50; ++i) {
    double v = static_cast<double>(rng.next_bounded(1000000));
    best = std::max(best, v);
    t.push_back(v);
    EXPECT_EQ(t.value(t.root()), best);
  }
}

TEST(Cartesian, SingleElementAndEmptying) {
  CartesianTree t(8);
  auto h = t.push_back(5.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.root(), h);
  t.erase(h);
  EXPECT_TRUE(t.empty());
  auto h2 = t.push_back(7.0);
  EXPECT_EQ(t.value(t.root()), 7.0);
  auto h3 = t.insert_after(h2, 9.0);
  EXPECT_EQ(t.root(), h3);
  EXPECT_EQ(t.in_order().size(), 2u);
}

}  // namespace
}  // namespace dynsld
