// Theorem 1.5 equivalence tests: batch insertions (tree contraction +
// Star-Merge) and batch deletions against the Kruskal reference, across
// batch sizes, forest shapes, and spine indices; plus the batch-based
// parallel static construction.
#include <gtest/gtest.h>

#include <algorithm>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"
#include "test_util.hpp"

namespace dynsld {
namespace {

using par::Rng;

void expect_matches_reference(DynSLD& s) {
  auto live = s.edges();
  Dendrogram want = build_kruskal(s.num_vertices(), live);
  ASSERT_DENDRO_EQ(s.dendrogram(), want);
  s.check_invariants();
}

std::vector<DynSLD::EdgeInsert> to_batch(std::span<const WeightedEdge> edges) {
  std::vector<DynSLD::EdgeInsert> b;
  b.reserve(edges.size());
  for (const auto& e : edges) b.push_back({e.u, e.v, e.weight});
  return b;
}

struct BatchParam {
  const char* name;
  SpineIndex index;
};

class BatchCombo : public ::testing::TestWithParam<BatchParam> {};

TEST_P(BatchCombo, WholeTreeAsOneBatch) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    gen::Forest f = gen::random_tree(60, seed);
    DynSLD s(f.n, GetParam().index);
    auto ids = s.insert_batch(to_batch(f.edges));
    EXPECT_EQ(ids.size(), f.edges.size());
    expect_matches_reference(s);
  }
}

TEST_P(BatchCombo, IncrementalBatches) {
  // Insert a random tree in chunks of growing size.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen::Forest f = gen::random_tree(80, seed);
    Rng rng(seed * 13);
    auto order = f.edges;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_bounded(i)]);
    }
    DynSLD s(f.n, GetParam().index);
    size_t pos = 0, chunk = 1;
    while (pos < order.size()) {
      size_t hi = std::min(order.size(), pos + chunk);
      std::span<const WeightedEdge> part(order.data() + pos, hi - pos);
      s.insert_batch(to_batch(part));
      expect_matches_reference(s);
      pos = hi;
      chunk = chunk * 2 + 1;
    }
  }
}

TEST_P(BatchCombo, StarPatternManySatellitesOneCenter) {
  // All batch edges share one center component: a single Star-Merge.
  const vertex_id spokes = 12;
  gen::Forest center = gen::random_tree(20, 3);
  DynSLD s(center.n + spokes * 6, GetParam().index);
  for (const auto& e : center.edges) s.insert(e.u, e.v, e.weight);
  // Each satellite is a small path; batch edges attach them to random
  // center vertices.
  std::vector<DynSLD::EdgeInsert> batch;
  Rng rng(99);
  for (vertex_id i = 0; i < spokes; ++i) {
    vertex_id base = center.n + i * 6;
    for (vertex_id j = 0; j + 1 < 6; ++j) {
      s.insert(base + j, base + j + 1,
               static_cast<double>(1000 + rng.next_bounded(5000)));
    }
    vertex_id y = static_cast<vertex_id>(rng.next_bounded(center.n));
    batch.push_back({base, y, static_cast<double>(rng.next_bounded(10000))});
  }
  s.insert_batch(batch);
  expect_matches_reference(s);
}

TEST_P(BatchCombo, SatellitesAtTheSameCenterVertex) {
  // Multiple satellites hitting the same center vertex y exercise the
  // per-vertex sub-bottom groups of Star-Merge.
  DynSLD s(40, GetParam().index);
  // Center: a path 0..9 with mid-range weights.
  for (vertex_id i = 0; i + 1 < 10; ++i) {
    s.insert(i, i + 1, 100.0 + i);
  }
  // Satellites: chains 10.., each connecting to center vertex 4, with
  // batch edge weights both below and above the center's edge weights.
  std::vector<DynSLD::EdgeInsert> batch;
  double wts[] = {1.0, 2.0, 500.0, 50.0};
  for (int k = 0; k < 4; ++k) {
    vertex_id base = static_cast<vertex_id>(10 + k * 5);
    for (vertex_id j = 0; j + 1 < 5; ++j) {
      s.insert(base + j, base + j + 1, 200.0 + k * 10 + j);
    }
    batch.push_back({base, 4, wts[k]});
  }
  s.insert_batch(batch);
  expect_matches_reference(s);
}

TEST_P(BatchCombo, ChainOfComponents) {
  // The incidence graph is a long path: stresses multi-round tree
  // contraction (rake-only progress would need Omega(k) rounds).
  const int comps = 17, size = 4;
  DynSLD s(comps * size, GetParam().index);
  Rng rng(5);
  for (int c = 0; c < comps; ++c) {
    vertex_id base = static_cast<vertex_id>(c * size);
    for (vertex_id j = 0; j + 1 < size; ++j) {
      s.insert(base + j, base + j + 1,
               static_cast<double>(rng.next_bounded(100000)));
    }
  }
  std::vector<DynSLD::EdgeInsert> batch;
  for (int c = 0; c + 1 < comps; ++c) {
    batch.push_back({static_cast<vertex_id>(c * size + size - 1),
                     static_cast<vertex_id>((c + 1) * size),
                     static_cast<double>(rng.next_bounded(100000))});
  }
  s.insert_batch(batch);
  expect_matches_reference(s);
}

TEST_P(BatchCombo, BatchIntoEmptyForest) {
  // Every component is a single vertex; centers may be edgeless
  // (the all-spines-merge-together path of Star-Merge).
  gen::Forest f = gen::random_tree(30, 8);
  DynSLD s(f.n, GetParam().index);
  s.insert_batch(to_batch(f.edges));
  expect_matches_reference(s);
}

TEST_P(BatchCombo, BatchDeleteRandomSubsets) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    gen::Forest f = gen::random_tree(70, seed);
    DynSLD s(f.n, GetParam().index);
    std::vector<edge_id> ids;
    for (const auto& e : f.edges) ids.push_back(s.insert(e.u, e.v, e.weight));
    Rng rng(seed * 71);
    for (size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.next_bounded(i)]);
    }
    size_t pos = 0, chunk = 2;
    while (pos < ids.size()) {
      size_t hi = std::min(ids.size(), pos + chunk);
      std::span<const edge_id> part(ids.data() + pos, hi - pos);
      s.erase_batch(part);
      expect_matches_reference(s);
      pos = hi;
      chunk = chunk * 2;
    }
    EXPECT_EQ(s.num_edges(), 0u);
  }
}

TEST_P(BatchCombo, BatchDeletePathChunks) {
  // Deleting contiguous chunks of a path: heavily overlapping spines,
  // the dedup path of apply_changes_tracked.
  for (auto weights : {gen::Weights::kIncreasing, gen::Weights::kRandom}) {
    gen::Forest f = gen::path(50, weights, 11);
    DynSLD s(f.n, GetParam().index);
    std::vector<edge_id> ids;
    for (const auto& e : f.edges) ids.push_back(s.insert(e.u, e.v, e.weight));
    // Delete the middle third at once.
    std::vector<edge_id> mid(ids.begin() + 16, ids.begin() + 33);
    s.erase_batch(mid);
    expect_matches_reference(s);
    // Then everything else at once.
    std::vector<edge_id> rest(ids.begin(), ids.begin() + 16);
    rest.insert(rest.end(), ids.begin() + 33, ids.end());
    s.erase_batch(rest);
    expect_matches_reference(s);
  }
}

TEST_P(BatchCombo, MixedBatchLifecycle) {
  // Alternating batch inserts and batch deletes on a persistent forest.
  const vertex_id n = 48;
  Rng rng(123);
  DynSLD s(n, GetParam().index);
  std::vector<edge_id> live;
  for (int round = 0; round < 25; ++round) {
    // Batch insert up to 6 random valid edges.
    std::vector<DynSLD::EdgeInsert> batch;
    UnionFind uf(n);
    for (edge_id e : live) {
      auto ed = s.edge(e);
      uf.unite(ed.u, ed.v);
    }
    for (int t = 0; t < 18 && batch.size() < 6; ++t) {
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
      vertex_id v = static_cast<vertex_id>(rng.next_bounded(n));
      if (u == v || uf.connected(u, v)) continue;
      uf.unite(u, v);
      batch.push_back({u, v, static_cast<double>(rng.next_bounded(100000))});
    }
    auto ids = s.insert_batch(batch);
    live.insert(live.end(), ids.begin(), ids.end());
    expect_matches_reference(s);
    // Batch delete a random ~third.
    std::vector<edge_id> del;
    std::vector<edge_id> keep;
    for (edge_id e : live) {
      if (rng.next_bounded(3) == 0) {
        del.push_back(e);
      } else {
        keep.push_back(e);
      }
    }
    s.erase_batch(del);
    live = std::move(keep);
    expect_matches_reference(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Indices, BatchCombo,
                         ::testing::Values(BatchParam{"ptr", SpineIndex::kPointer},
                                           BatchParam{"lct", SpineIndex::kLct},
                                           BatchParam{"rc", SpineIndex::kRc}),
                         [](const auto& info) { return info.param.name; });

TEST(BatchStatic, BuildBatchParallelMatchesKruskal) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen::Forest f = gen::random_tree(120, seed);
    Dendrogram got = build_batch_parallel(f.n, f.edges);
    Dendrogram want = build_kruskal(f.n, f.edges);
    ASSERT_DENDRO_EQ(got, want);
  }
  for (auto weights : {gen::Weights::kIncreasing, gen::Weights::kBalanced}) {
    gen::Forest f = gen::path(100, weights, 2);
    ASSERT_DENDRO_EQ(build_batch_parallel(f.n, f.edges),
                     build_kruskal(f.n, f.edges));
  }
  gen::Forest f = gen::lower_bound_stars(10, 6);
  ASSERT_DENDRO_EQ(build_batch_parallel(f.n, f.edges),
                   build_kruskal(f.n, f.edges));
}

TEST(BatchEdgeCases, EmptyAndSingleton) {
  DynSLD s(4, SpineIndex::kLct);
  EXPECT_TRUE(s.insert_batch({}).empty());
  std::vector<DynSLD::EdgeInsert> one{{0, 1, 3.0}};
  auto ids = s.insert_batch(one);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(s.edge_alive(ids[0]));
  s.erase_batch({});
  std::vector<edge_id> del{ids[0]};
  s.erase_batch(del);
  EXPECT_EQ(s.num_edges(), 0u);
}

}  // namespace
}  // namespace dynsld
