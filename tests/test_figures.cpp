// Worked-instance tests reproducing the behaviours depicted in the
// paper's figures (DESIGN.md rows Fig 1-5). Figure 1/2 use the paper's
// 12-vertex tree shape (vertices a..l) with a consistent weight
// assignment; Figures 3-5 reproduce the depicted algorithmic situations
// (multi-star batch insertion, PWS-alternation merge, divide-and-conquer
// merge on two long spines).
#include <gtest/gtest.h>

#include "dendrogram/static_sld.hpp"
#include "parallel/random.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/stats.hpp"
#include "test_util.hpp"

namespace dynsld {
namespace {

// Vertices a..l of Figure 1.
enum : vertex_id { a, b, c, d, e, f, g, h, i, j, k, l, kFigN };

// The Figure 1/2 tree: a-b, b-c, b-d, d-e, e-f, e-h, g-h, h-i, i-j,
// i-k, k-l (11 edges, 12 vertices). Weights chosen consistently; the
// (e,h) edge is the one inserted/deleted in Figure 2.
struct FigEdge {
  vertex_id u, v;
  double w;
};
constexpr FigEdge kFigEdges[] = {
    {a, b, 8},  {b, c, 11}, {b, d, 9}, {d, e, 10}, {e, f, 4},
    {g, h, 2},  {h, i, 7},  {i, j, 1}, {i, k, 6},  {k, l, 3},
};
constexpr FigEdge kFigInsert = {e, h, 5};

TEST(Figures, Fig1StaticDendrogram) {
  std::vector<WeightedEdge> edges;
  edge_id id = 0;
  for (const auto& fe : kFigEdges) {
    edges.push_back({fe.u, fe.v, fe.w, id++});
  }
  edges.push_back({kFigInsert.u, kFigInsert.v, kFigInsert.w, id});
  Dendrogram d = build_kruskal(kFigN, edges);
  ASSERT_TRUE(d == test::build_brute(kFigN, edges));
  // Spine ranks increase toward the root; the root merges everything.
  edge_id root = d.root_of(0);
  for (edge_id x = 0; x < d.capacity(); ++x) {
    if (d.alive(x)) EXPECT_EQ(d.root_of(x), root);
  }
}

TEST(Figures, Fig2InsertThenDeleteRestores) {
  // Build the two components (without e-h), insert (e,h) as in the left
  // panel, then delete it as in the right panel: the dendrogram must
  // return exactly to its pre-insertion state.
  DynSLD s(kFigN, SpineIndex::kLct);
  std::vector<edge_id> ids;
  for (const auto& fe : kFigEdges) ids.push_back(s.insert(fe.u, fe.v, fe.w));
  Dendrogram before = s.dendrogram();
  EXPECT_FALSE(s.connected(e, h));

  edge_id joined = s.insert(kFigInsert.u, kFigInsert.v, kFigInsert.w);
  EXPECT_TRUE(s.connected(a, l));
  {
    auto live = s.edges();
    ASSERT_DENDRO_EQ(s.dendrogram(), build_kruskal(kFigN, live));
  }
  s.erase(joined);
  ASSERT_DENDRO_EQ(s.dendrogram(), before);
}

TEST(Figures, Fig2CharacteristicSpinesMerge) {
  // The insertion merges the two characteristic spines by rank: after
  // inserting (e,h), every old node's new parent is the next-ranked
  // node among the union of the two spines (checked via the oracle),
  // and the merged spine is rank-sorted.
  DynSLD s(kFigN, SpineIndex::kLct);
  for (const auto& fe : kFigEdges) s.insert(fe.u, fe.v, fe.w);
  edge_id estar_e = s.min_incident_edge(e);
  edge_id estar_h = s.min_incident_edge(h);
  ASSERT_NE(estar_e, kNoEdge);
  ASSERT_NE(estar_h, kNoEdge);
  edge_id joined = s.insert(e, h, kFigInsert.w);
  auto spine = s.dendrogram().spine(joined);
  for (size_t t = 0; t + 1 < spine.size(); ++t) {
    EXPECT_LT(s.dendrogram().rank(spine[t]), s.dendrogram().rank(spine[t + 1]));
  }
}

TEST(Figures, Fig3BatchInsertionContractsStars) {
  // Figure 3's shape: 14 components connected by a batch whose incidence
  // graph is a tree, processed by rounds of star contraction.
  const int comps = 14, csize = 5;
  DynSLD s(comps * csize, SpineIndex::kLct);
  dynsld::par::Rng rng(42);
  for (int ci = 0; ci < comps; ++ci) {
    vertex_id base = static_cast<vertex_id>(ci * csize);
    for (vertex_id t = 0; t + 1 < csize; ++t) {
      s.insert(base + t, base + t + 1,
               static_cast<double>(rng.next_bounded(100000)));
    }
  }
  // Incidence tree mirroring the figure (a few hubs + chains).
  int tree[][2] = {{0, 1},  {0, 2},  {0, 3},  {0, 4},  {1, 5},  {1, 6},
                   {2, 7},  {3, 8},  {4, 9},  {9, 10}, {10, 11}, {10, 12},
                   {12, 13}};
  std::vector<DynSLD::EdgeInsert> batch;
  for (auto& pr : tree) {
    batch.push_back(DynSLD::EdgeInsert{
        static_cast<vertex_id>(pr[0] * csize + 2),
        static_cast<vertex_id>(pr[1] * csize + 2),
        static_cast<double>(rng.next_bounded(100000))});
  }
  s.insert_batch(batch);
  auto live = s.edges();
  ASSERT_DENDRO_EQ(s.dendrogram(), build_kruskal(s.num_vertices(), live));
  EXPECT_TRUE(s.connected(0, (comps - 1) * csize));
}

TEST(Figures, Fig4AlternatingPwsMerge) {
  // Figure 4: two spines with interleaved weights 1..16 (odd ranks in
  // one, even in the other, in blocks); the PWS-alternation merge does
  // exactly c queries and c pointer changes.
  // Component A: path with edge weights 2,3,4,5,10,11,12,13 (Spine(u));
  // component B: weights 1,6,7,8,9,14,15,16 (Spine(v)) — matching the
  // block pattern in the figure.
  double wa[] = {2, 3, 4, 5, 10, 11, 12, 13};
  double wb[] = {1, 6, 7, 8, 9, 14, 15, 16};
  DynSLD s(20, SpineIndex::kLct);
  for (int t = 0; t < 8; ++t) {
    s.insert(static_cast<vertex_id>(t), static_cast<vertex_id>(t + 1), wa[t]);
  }
  for (int t = 0; t < 8; ++t) {
    s.insert(static_cast<vertex_id>(10 + t), static_cast<vertex_id>(11 + t), wb[t]);
  }
  stats::counters().reset();
  s.insert_output_sensitive(0, 10, 0.5);
  EXPECT_EQ(stats::counters().pws_queries.load(),
            stats::counters().pointer_writes.load());
  auto live = s.edges();
  ASSERT_DENDRO_EQ(s.dendrogram(), build_kruskal(s.num_vertices(), live));
}

TEST(Figures, Fig5DivideAndConquerMerge) {
  // Figure 5: the parallel output-sensitive merge of two 12-node spines
  // via median + PWS splits; must produce the identical dendrogram.
  double wa[] = {4, 5, 7, 8, 9, 10, 11, 13, 14, 15, 22, 23};
  double wb[] = {1, 2, 3, 6, 12, 16, 17, 18, 19, 20, 21, 24};
  for (auto index : {SpineIndex::kLct, SpineIndex::kRc}) {
    DynSLD s(30, index);
    for (int t = 0; t < 12; ++t) {
      s.insert(static_cast<vertex_id>(t), static_cast<vertex_id>(t + 1), wa[t]);
    }
    for (int t = 0; t < 12; ++t) {
      s.insert(static_cast<vertex_id>(14 + t), static_cast<vertex_id>(15 + t),
               wb[t]);
    }
    stats::counters().reset();
    s.insert_parallel_output_sensitive(0, 14, 0.5);
    EXPECT_GT(stats::counters().median_queries.load(), 0u);
    auto live = s.edges();
    ASSERT_DENDRO_EQ(s.dendrogram(), build_kruskal(s.num_vertices(), live));
  }
}

}  // namespace
}  // namespace dynsld
