// Link-cut tree tests: randomized cross-check against a brute-force
// forest (adjacency lists + DFS) for both usage profiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "dtree/link_cut_tree.hpp"
#include "parallel/random.hpp"

namespace dynsld {
namespace {

using par::Rng;

/// Brute-force dynamic forest oracle.
struct BruteForest {
  explicit BruteForest(int n) : adj(n) {}
  std::vector<std::set<int>> adj;

  void link(int u, int v) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  void cut(int u, int v) {
    adj[u].erase(v);
    adj[v].erase(u);
  }
  bool connected(int u, int v) const { return !path(u, v).empty(); }

  /// Vertices on the u..v path inclusive; empty if disconnected.
  std::vector<int> path(int u, int v) const {
    std::vector<int> par(adj.size(), -2);
    std::vector<int> queue{u};
    par[u] = -1;
    for (size_t h = 0; h < queue.size(); ++h) {
      int x = queue[h];
      if (x == v) break;
      for (int y : adj[x]) {
        if (par[y] == -2) {
          par[y] = x;
          queue.push_back(y);
        }
      }
    }
    if (par[v] == -2) return {};
    std::vector<int> p;
    for (int x = v; x != -1; x = par[x]) p.push_back(x);
    std::reverse(p.begin(), p.end());
    return p;
  }
};

TEST(LinkCutTree, SmallManual) {
  LinkCutTree t(5);
  EXPECT_FALSE(t.connected(0, 1));
  t.link(0, 1);
  t.link(1, 2);
  EXPECT_TRUE(t.connected(0, 2));
  EXPECT_FALSE(t.connected(0, 3));
  t.link(3, 4);
  t.link(2, 3);
  EXPECT_TRUE(t.connected(0, 4));
  t.cut(2, 3);
  EXPECT_FALSE(t.connected(0, 4));
  EXPECT_TRUE(t.connected(0, 2));
  EXPECT_TRUE(t.connected(3, 4));
}

TEST(LinkCutTree, PathMaxSimple) {
  LinkCutTree t(4);
  for (int i = 0; i < 4; ++i) t.set_key(i, Rank{static_cast<double>(10 - i), 0});
  t.link(0, 1);
  t.link(1, 2);
  t.link(2, 3);
  EXPECT_EQ(t.path_max(3, 2).weight, 8.0);   // max(7,8)
  EXPECT_EQ(t.path_max(0, 3).weight, 10.0);  // max over all
  EXPECT_EQ(t.path_max(2, 2).weight, 8.0);   // single vertex
}

class LctRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LctRandom, MatchesBruteForest) {
  const int n = 60;
  Rng rng(GetParam());
  LinkCutTree t(n);
  BruteForest b(n);
  std::vector<Rank> key(n);
  for (int i = 0; i < n; ++i) {
    key[i] = Rank{static_cast<double>(rng.next_bounded(1000)),
                  static_cast<edge_id>(i)};
    t.set_key(i, key[i]);
  }
  std::vector<std::pair<int, int>> edges;
  for (int step = 0; step < 800; ++step) {
    int u = static_cast<int>(rng.next_bounded(n));
    int v = static_cast<int>(rng.next_bounded(n));
    uint64_t op = rng.next_bounded(10);
    if (op < 5) {
      if (u != v && !b.connected(u, v)) {
        t.link(u, v);
        b.link(u, v);
        edges.emplace_back(u, v);
      }
    } else if (op < 7 && !edges.empty()) {
      size_t i = rng.next_bounded(edges.size());
      auto [x, y] = edges[i];
      t.cut(x, y);
      b.cut(x, y);
      edges.erase(edges.begin() + static_cast<long>(i));
    } else if (op < 9) {
      EXPECT_EQ(t.connected(u, v), b.connected(u, v)) << "step " << step;
    } else {
      auto p = b.path(u, v);
      if (!p.empty()) {
        Rank want = key[p[0]];
        for (int x : p) want = std::max(want, key[x]);
        EXPECT_EQ(t.path_max(u, v), want) << "step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LctRandom, ::testing::Range<uint64_t>(1, 9));

/// Rooted-profile oracle: parent array.
struct BruteRooted {
  explicit BruteRooted(int n) : par(n, -1) {}
  std::vector<int> par;

  std::vector<int> spine(int x) const {
    std::vector<int> s;
    for (int t = x; t != -1; t = par[t]) s.push_back(t);
    return s;
  }
  long subtree_size(int x) const {
    long c = 0;
    for (int v = 0; v < static_cast<int>(par.size()); ++v) {
      int t = v;
      while (t != -1 && t != x) t = par[t];
      if (t == x) ++c;
    }
    return c;
  }
};

class LctRooted : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LctRooted, SpineOpsMatchBrute) {
  const int n = 50;
  Rng rng(GetParam());
  LinkCutTree t(n);
  BruteRooted b(n);
  // Node keys strictly increase from child to parent: assign key = a
  // random value, and only allow link(c, p) when key[c] < key[p]
  // (mirrors dendrogram rank order along spines).
  std::vector<Rank> key(n);
  for (int i = 0; i < n; ++i) {
    key[i] = Rank{static_cast<double>(rng.next_bounded(10000)),
                  static_cast<edge_id>(i)};
    t.set_key(i, key[i]);
  }
  for (int step = 0; step < 600; ++step) {
    uint64_t op = rng.next_bounded(10);
    int x = static_cast<int>(rng.next_bounded(n));
    if (op < 4) {
      int p = static_cast<int>(rng.next_bounded(n));
      if (b.par[x] == -1 && x != p && key[x] < key[p]) {
        // p must not be in x's subtree (would create a cycle): check
        // via the oracle.
        bool in_subtree = false;
        for (int tt = p; tt != -1; tt = b.par[tt]) {
          if (tt == x) {
            in_subtree = true;
            break;
          }
        }
        if (!in_subtree) {
          t.link_root(x, p);
          b.par[x] = p;
        }
      }
    } else if (op < 6) {
      t.cut_from_parent(x);
      b.par[x] = -1;
    } else if (op < 7) {
      auto s = b.spine(x);
      ASSERT_EQ(t.spine_length(x), static_cast<int>(s.size()));
      // select: k-th from the top = reverse order of the walked spine.
      size_t k = rng.next_bounded(s.size());
      EXPECT_EQ(t.spine_select_from_top(x, static_cast<int>(k)),
                s[s.size() - 1 - k]);
    } else if (op < 9) {
      Rank w{static_cast<double>(rng.next_bounded(10000)),
             static_cast<edge_id>(rng.next_bounded(n))};
      auto s = b.spine(x);
      int want_below = -1, want_above = -1;
      for (int v : s) {
        if (key[v] < w && (want_below == -1 || key[want_below] < key[v]))
          want_below = v;
        if (w < key[v] && (want_above == -1 || key[v] < key[want_above]))
          want_above = v;
      }
      EXPECT_EQ(t.spine_search_below(x, w), want_below) << "step " << step;
      EXPECT_EQ(t.spine_search_above(x, w), want_above) << "step " << step;
    } else {
      EXPECT_EQ(t.subtree_size(x), static_cast<uint64_t>(b.subtree_size(x)))
          << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LctRooted, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace dynsld
