// End-to-end equivalence tests for every single-update algorithm:
// after every operation, the maintained dendrogram must equal the
// Kruskal-reference SLD of the live edge set, for every (insert
// variant, erase variant, spine index) combination, across tree
// families and seeds.
#include <gtest/gtest.h>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"
#include "parallel/stats.hpp"
#include "test_util.hpp"

namespace dynsld {
namespace {

using par::Rng;

enum class Ins { kWalk, kOutputSensitive, kParallel, kParallelOs };
enum class Del { kSeq, kParallel };

struct Combo {
  const char* name;
  Ins ins;
  Del del;
  SpineIndex index;
};

edge_id do_insert(DynSLD& s, Ins v, vertex_id u, vertex_id w, double wt) {
  switch (v) {
    case Ins::kWalk:
      return s.insert(u, w, wt);
    case Ins::kOutputSensitive:
      return s.insert_output_sensitive(u, w, wt);
    case Ins::kParallel:
      return s.insert_parallel(u, w, wt);
    case Ins::kParallelOs:
      return s.insert_parallel_output_sensitive(u, w, wt);
  }
  return kNoEdge;
}

void do_erase(DynSLD& s, Del v, edge_id e) {
  switch (v) {
    case Del::kSeq:
      s.erase(e);
      break;
    case Del::kParallel:
      s.erase_parallel(e);
      break;
  }
}

void expect_matches_reference(DynSLD& s) {
  auto live = s.edges();
  Dendrogram want = build_kruskal(s.num_vertices(), live);
  ASSERT_DENDRO_EQ(s.dendrogram(), want);
  s.check_invariants();
}

class DynSldCombo : public ::testing::TestWithParam<Combo> {};

TEST_P(DynSldCombo, IncrementalRandomTree) {
  const auto& p = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    gen::Forest f = gen::random_tree(45, seed);
    // Insert in a shuffled order (so intermediate states are forests).
    Rng rng(seed * 97);
    auto order = f.edges;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_bounded(i)]);
    }
    DynSLD s(f.n, p.index);
    for (const auto& e : order) {
      do_insert(s, p.ins, e.u, e.v, e.weight);
      expect_matches_reference(s);
    }
    EXPECT_EQ(s.num_edges(), f.edges.size());
  }
}

TEST_P(DynSldCombo, DecrementalRandomTree) {
  const auto& p = GetParam();
  for (uint64_t seed = 4; seed <= 6; ++seed) {
    gen::Forest f = gen::random_tree(40, seed);
    DynSLD s(f.n, p.index);
    std::vector<edge_id> ids;
    for (const auto& e : f.edges) {
      ids.push_back(do_insert(s, p.ins, e.u, e.v, e.weight));
    }
    Rng rng(seed * 31);
    for (size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.next_bounded(i)]);
    }
    for (edge_id e : ids) {
      do_erase(s, p.del, e);
      expect_matches_reference(s);
    }
    EXPECT_EQ(s.num_edges(), 0u);
  }
}

TEST_P(DynSldCombo, FullyDynamicMix) {
  const auto& p = GetParam();
  const vertex_id n = 36;
  for (uint64_t seed = 10; seed <= 12; ++seed) {
    Rng rng(seed);
    DynSLD s(n, p.index);
    std::vector<edge_id> live;
    for (int step = 0; step < 220; ++step) {
      bool ins = live.empty() || rng.next_bounded(100) < 60;
      if (ins) {
        vertex_id u = static_cast<vertex_id>(rng.next_bounded(n));
        vertex_id v = static_cast<vertex_id>(rng.next_bounded(n));
        if (u == v || s.connected(u, v)) continue;
        double w = static_cast<double>(rng.next_bounded(10000));
        live.push_back(do_insert(s, p.ins, u, v, w));
      } else {
        size_t i = rng.next_bounded(live.size());
        do_erase(s, p.del, live[i]);
        live.erase(live.begin() + static_cast<long>(i));
      }
      expect_matches_reference(s);
    }
  }
}

TEST_P(DynSldCombo, PathFamiliesExtremes) {
  const auto& p = GetParam();
  for (auto weights : {gen::Weights::kIncreasing, gen::Weights::kDecreasing,
                       gen::Weights::kBalanced}) {
    gen::Forest f = gen::path(33, weights, 5);
    DynSLD s(f.n, p.index);
    std::vector<edge_id> ids;
    for (const auto& e : f.edges) {
      ids.push_back(do_insert(s, p.ins, e.u, e.v, e.weight));
      expect_matches_reference(s);
    }
    // Delete every other edge, then the rest.
    for (size_t i = 0; i < ids.size(); i += 2) do_erase(s, p.del, ids[i]);
    expect_matches_reference(s);
    for (size_t i = 1; i < ids.size(); i += 2) do_erase(s, p.del, ids[i]);
    expect_matches_reference(s);
  }
}

TEST_P(DynSldCombo, ReinsertAfterDelete) {
  // Edge slots get recycled; ranks must stay consistent.
  const auto& p = GetParam();
  DynSLD s(8, p.index);
  edge_id a = do_insert(s, p.ins, 0, 1, 5);
  edge_id b = do_insert(s, p.ins, 1, 2, 3);
  do_insert(s, p.ins, 2, 3, 8);
  expect_matches_reference(s);
  do_erase(s, p.del, b);
  expect_matches_reference(s);
  do_erase(s, p.del, a);
  expect_matches_reference(s);
  do_insert(s, p.ins, 0, 2, 1);
  do_insert(s, p.ins, 4, 5, 2);
  do_insert(s, p.ins, 3, 4, 9);
  expect_matches_reference(s);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, DynSldCombo,
    ::testing::Values(
        Combo{"walk_seq_ptr", Ins::kWalk, Del::kSeq, SpineIndex::kPointer},
        Combo{"walk_seq_lct", Ins::kWalk, Del::kSeq, SpineIndex::kLct},
        Combo{"os_seq_lct", Ins::kOutputSensitive, Del::kSeq, SpineIndex::kLct},
        Combo{"par_par_ptr", Ins::kParallel, Del::kParallel, SpineIndex::kPointer},
        Combo{"par_par_lct", Ins::kParallel, Del::kParallel, SpineIndex::kLct},
        Combo{"paros_par_lct", Ins::kParallelOs, Del::kParallel, SpineIndex::kLct},
        Combo{"walk_seq_rc", Ins::kWalk, Del::kSeq, SpineIndex::kRc},
        Combo{"os_seq_rc", Ins::kOutputSensitive, Del::kSeq, SpineIndex::kRc},
        Combo{"par_par_rc", Ins::kParallel, Del::kParallel, SpineIndex::kRc},
        Combo{"paros_par_rc", Ins::kParallelOs, Del::kParallel, SpineIndex::kRc}),
    [](const auto& info) { return info.param.name; });

// ---- Theorem 5.1: the lower-bound instance ----

TEST(LowerBound, StarJoinTouchesTwoHPlusOnePointers) {
  const vertex_id h = 16;
  gen::Forest f = gen::lower_bound_stars(h, 2);
  DynSLD s(f.n, SpineIndex::kLct);
  for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
  ASSERT_EQ(s.dendrogram().height(), static_cast<size_t>(h));

  // Insert weight-0 edge between the two star centers.
  stats::counters().reset();
  edge_id joined = s.insert_output_sensitive(0, h + 1, 0.0);
  uint64_t writes = stats::counters().pointer_writes.load();
  // The merged SLD is one path of height 2h+1; Theorem 5.1: Omega(h)
  // pointers change (exactly 2h here: every node of both old chains
  // except the surviving root, plus the new node).
  EXPECT_GE(writes, 2ull * h);
  EXPECT_LE(writes, 2ull * h + 1);
  EXPECT_EQ(s.dendrogram().height(), 2ull * h + 1);
  {
    auto live = s.edges();
    Dendrogram want = build_kruskal(s.num_vertices(), live);
    ASSERT_DENDRO_EQ(s.dendrogram(), want);
  }

  // Deleting it undoes all 2h+1 changes (plus the node detach).
  stats::counters().reset();
  s.erase(joined);
  EXPECT_GE(stats::counters().pointer_writes.load(), 2ull * h);
  EXPECT_EQ(s.dendrogram().height(), static_cast<size_t>(h));
}

TEST(OutputSensitive, LeafAppendIsConstantChanges) {
  // Appending a max-weight leaf to a path changes O(1) pointers even
  // when h is large (c = O(1) regime of Theorem 1.2).
  gen::Forest f = gen::path(400, gen::Weights::kIncreasing);
  DynSLD s(f.n + 1, SpineIndex::kLct);
  for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
  stats::counters().reset();
  s.insert_output_sensitive(f.n - 1, f.n, 1e9);
  EXPECT_LE(stats::counters().pointer_writes.load(), 2u);
  EXPECT_LE(stats::counters().pws_queries.load(), 4u);
}

TEST(OutputSensitive, CountsMatchStructuralChanges) {
  // PWS query count == pointer change count for the alternating merge
  // (the exact accounting from §4.2).
  gen::Forest f = gen::lower_bound_stars(10, 2);
  DynSLD s(f.n, SpineIndex::kLct);
  for (const auto& e : f.edges) s.insert(e.u, e.v, e.weight);
  stats::counters().reset();
  s.insert_output_sensitive(0, 11, 0.0);
  EXPECT_EQ(stats::counters().pws_queries.load(),
            stats::counters().pointer_writes.load());
}

}  // namespace
}  // namespace dynsld
