// Network plane tests: wire codec hardening, loopback RPC equivalence,
// replication bootstrap + live tailing, drain semantics, and weighted
// per-client QoS.
//
// The equivalence centerpiece mirrors the durability plane's bar: an
// answer served over TCP must be BIT FOR BIT the answer an in-process
// submit() gives at the same epoch — same label arrays, same
// histograms, same counts — and a replica bootstrapped over the wire
// from a kill-9'd writer must reconstruct the exact snapshot
// persist::recover() rebuilds from the directory the writer left
// behind (both are the same checkpoint + WAL replay protocol, one of
// them across a socket).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/query.hpp"
#include "engine/sld_service.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/replication.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "parallel/random.hpp"
#include "persist/bytes.hpp"
#include "persist/checkpoint.hpp"
#include "persist/persist.hpp"
#include "test_util.hpp"

namespace dynsld::net {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;
using engine::AsOf;
using engine::AtLeastEpoch;
using engine::QueryError;
using engine::QueryErrorCode;
using engine::QueryRequest;
using engine::ResultSet;
using engine::ServiceConfig;
using engine::SizeHistogram;
using engine::SldService;
using engine::ticket_t;

/// A unique scratch directory, recursively removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    static std::atomic<int> seq{0};
    path = (fs::temp_directory_path() /
            ("dynsld_net_" + std::to_string(seq.fetch_add(1)) + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffffffu)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Distinct, deterministic edge weights (ties are the documented
/// exactness caveat, so every test workload avoids them).
double unique_weight(uint64_t idx) {
  return static_cast<double>(idx * 2654435761ull % 999983ull) / 999983.0;
}

/// The engine shape all processes in these tests agree on.
ServiceConfig net_config(const std::string& dir = {}) {
  ServiceConfig cfg;
  cfg.num_vertices = 120;
  cfg.num_shards = 3;
  if (!dir.empty()) {
    cfg.persist.dir = dir;
    cfg.persist.checkpoint_every = 4;
  }
  return cfg;
}

/// Deterministic churn: `batches` flushed epochs of unique-weight edges
/// (plus some erases), identical across runs and processes.
void churn(SldService& svc, int batches, uint64_t seed) {
  par::Rng rng(seed);
  std::vector<ticket_t> live;
  uint64_t idx = 1 + seed * 100000;
  for (int b = 0; b < batches; ++b) {
    for (int i = 0; i < 25; ++i) {
      if (!live.empty() && rng.next_double() < 0.25) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        auto [u, v] = test::random_distinct_pair(rng, 120);
        live.push_back(svc.insert(u, v, unique_weight(idx++)));
      }
    }
    svc.flush();
  }
}

/// Canonical byte encoding of the snapshot at `epoch` — the bit-for-bit
/// comparator: every shard's dendrogram arrays byte-exact (encode_shard
/// is exposed for exactly this) plus flat label arrays across the tau
/// range. Full SnapshotCodec::encode() bytes are NOT comparable across
/// processes: they embed the epoch's per-process build timings
/// (EpochTrace), which are observability, not state.
std::string snapshot_bytes(const SldService& svc, uint64_t epoch) {
  engine::EpochManager::Snap snap = svc.snapshot_at(epoch);
  persist::ByteWriter w;
  w.u64(snap->epoch());
  for (int k = 0; k < 3; ++k)
    persist::SnapshotCodec::encode_shard(snap->shard(k), w);
  for (double tau : {0.15, 0.35, 0.55, 0.75, 0.95})
    w.pod_vec(snap->flat_clustering(tau));
  return w.take();
}

void expect_same_results(const ResultSet& a, const ResultSet& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i], b.results[i]) << "result " << i;
}

// ---- frame codec ------------------------------------------------------

TEST(FrameCodec, RoundTripWholeAndByteByByte) {
  const std::string payload = "the payload \x00\x01\xff bytes";
  for (uint8_t t = uint8_t(MsgType::kHello); t <= uint8_t(MsgType::kWalRecord);
       ++t) {
    std::string frame = encode_frame(MsgType(t), payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
    // Whole buffer at once.
    {
      FrameParser p;
      p.feed(frame.data(), frame.size());
      Frame f;
      ASSERT_EQ(p.next(&f), FrameParser::Status::kFrame);
      EXPECT_EQ(uint8_t(f.type), t);
      EXPECT_EQ(f.payload, payload);
      EXPECT_EQ(p.next(&f), FrameParser::Status::kNeedMore);
    }
    // One byte at a time (worst-case reassembly).
    {
      FrameParser p;
      Frame f;
      for (size_t i = 0; i + 1 < frame.size(); ++i) {
        p.feed(frame.data() + i, 1);
        ASSERT_EQ(p.next(&f), FrameParser::Status::kNeedMore) << "byte " << i;
      }
      p.feed(frame.data() + frame.size() - 1, 1);
      ASSERT_EQ(p.next(&f), FrameParser::Status::kFrame);
      EXPECT_EQ(f.payload, payload);
    }
  }
  // Empty payload frames (kPing) are legal.
  std::string ping = encode_frame(MsgType::kPing, std::string());
  FrameParser p;
  p.feed(ping.data(), ping.size());
  Frame f;
  ASSERT_EQ(p.next(&f), FrameParser::Status::kFrame);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FrameCodec, BackToBackFramesInOneFeed) {
  std::string stream = encode_frame(MsgType::kPing, "a") +
                       encode_frame(MsgType::kQuery, "bb") +
                       encode_frame(MsgType::kResult, "ccc");
  FrameParser p;
  p.feed(stream.data(), stream.size());
  Frame f;
  ASSERT_EQ(p.next(&f), FrameParser::Status::kFrame);
  EXPECT_EQ(f.payload, "a");
  ASSERT_EQ(p.next(&f), FrameParser::Status::kFrame);
  EXPECT_EQ(f.payload, "bb");
  ASSERT_EQ(p.next(&f), FrameParser::Status::kFrame);
  EXPECT_EQ(f.payload, "ccc");
  EXPECT_EQ(p.next(&f), FrameParser::Status::kNeedMore);
}

TEST(FrameCodec, TruncationNeverYieldsAFrame) {
  std::string frame = encode_frame(MsgType::kQuery, "truncate me please");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameParser p;
    p.feed(frame.data(), cut);
    Frame f;
    EXPECT_EQ(p.next(&f), FrameParser::Status::kNeedMore) << "cut " << cut;
  }
}

TEST(FrameCodec, CorruptionFuzzNeverYieldsAWrongFrame) {
  par::Rng rng = test::test_rng();
  std::string frame = encode_frame(MsgType::kResult, "some payload to guard");
  int rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string bad = frame;
    size_t pos = rng.next_bounded(bad.size());
    bad[pos] = static_cast<char>(bad[pos] ^ (1u << rng.next_bounded(8)));
    FrameParser p;
    p.feed(bad.data(), bad.size());
    Frame f;
    switch (p.next(&f)) {
      case FrameParser::Status::kFrame:
        // Only flips the CRC does not cover (reserved header bytes) may
        // still parse — and then content must be untouched.
        EXPECT_EQ(f.type, MsgType::kResult);
        EXPECT_EQ(f.payload, "some payload to guard");
        break;
      case FrameParser::Status::kBad:
        ++rejected;
        break;
      case FrameParser::Status::kNeedMore:
        // A length-field flip can claim a longer payload; starving is
        // the correct answer for a stream that never delivers it.
        break;
    }
  }
  // A corrupted payload byte must actually be caught by the CRC.
  EXPECT_GT(rejected, 0);
  std::string bad = frame;
  bad[kFrameHeaderBytes] ^= 0x40;
  FrameParser p;
  p.feed(bad.data(), bad.size());
  Frame f;
  EXPECT_EQ(p.next(&f), FrameParser::Status::kBad);
}

TEST(FrameCodec, OversizedAndMalformedHeadersAreSticky) {
  // An oversized length claim is rejected from the header alone.
  persist::ByteWriter w;
  w.u32(kProtoMagic);
  w.u8(kProtoVersion);
  w.u8(uint8_t(MsgType::kQuery));
  w.u8(0);
  w.u8(0);
  w.u32(kMaxFrameBytes + 1);
  w.u32(0);
  std::string huge = w.take();
  FrameParser p;
  p.feed(huge.data(), huge.size());
  Frame f;
  EXPECT_EQ(p.next(&f), FrameParser::Status::kBad);
  // kBad is sticky: even a pristine frame afterwards is refused (the
  // stream is poisoned; the connection must drop).
  std::string good = encode_frame(MsgType::kPing, "x");
  p.feed(good.data(), good.size());
  EXPECT_EQ(p.next(&f), FrameParser::Status::kBad);

  // Wrong magic and wrong version are rejected too.
  for (int variant = 0; variant < 2; ++variant) {
    std::string bad = good;
    bad[variant == 0 ? 0 : 4] ^= 0x01;
    FrameParser q;
    q.feed(bad.data(), bad.size());
    EXPECT_EQ(q.next(&f), FrameParser::Status::kBad);
  }
}

// ---- message codecs ---------------------------------------------------

TEST(MessageCodec, HelloRoundTrip) {
  Hello h;
  h.client_id = 0xABCDEF0123456789ull;
  h.weight = 7;
  h.role = kRoleReplica;
  Hello back;
  ASSERT_TRUE(decode_hello(encode_hello(h), &back));
  EXPECT_EQ(back.client_id, h.client_id);
  EXPECT_EQ(back.weight, h.weight);
  EXPECT_EQ(back.role, h.role);

  HelloAck a;
  a.epoch = 123456;
  a.num_vertices = 999;
  a.num_shards = 5;
  HelloAck aback;
  ASSERT_TRUE(decode_hello_ack(encode_hello_ack(a), &aback));
  EXPECT_EQ(aback.epoch, a.epoch);
  EXPECT_EQ(aback.num_vertices, a.num_vertices);
  EXPECT_EQ(aback.num_shards, a.num_shards);

  EXPECT_FALSE(decode_hello("short", &back));
  EXPECT_FALSE(decode_hello_ack("short", &aback));
}

TEST(MessageCodec, QueryRoundTripAllKindsAndConsistencies) {
  const auto now = std::chrono::steady_clock::now();
  QueryRequest req;
  req.queries = {engine::SameClusterQuery{3, 9, 0.25},
                 engine::ClusterSizeQuery{4, 0.5},
                 engine::ClusterReportQuery{5, 0.75},
                 engine::FlatClusteringQuery{0.1},
                 engine::SizeHistogramQuery{0.2},
                 engine::NumClustersQuery{0.3}};
  req.deadline = now + 1500ms;

  for (int mode = 0; mode < 3; ++mode) {
    if (mode == 1) req.consistency = AtLeastEpoch{42};
    if (mode == 2) req.consistency = AsOf{17};
    std::string payload;
    ASSERT_TRUE(encode_query(99, req, now, &payload));
    uint64_t id = 0;
    QueryRequest back;
    ASSERT_TRUE(decode_query(payload, &id, &back, now));
    EXPECT_EQ(id, 99u);
    ASSERT_EQ(back.queries.size(), req.queries.size());
    EXPECT_EQ(std::get<engine::SameClusterQuery>(back.queries[0]).u, 3u);
    EXPECT_EQ(std::get<engine::SameClusterQuery>(back.queries[0]).v, 9u);
    EXPECT_EQ(std::get<engine::ClusterSizeQuery>(back.queries[1]).u, 4u);
    EXPECT_EQ(std::get<engine::ClusterReportQuery>(back.queries[2]).tau, 0.75);
    EXPECT_EQ(std::get<engine::SizeHistogramQuery>(back.queries[4]).tau, 0.2);
    EXPECT_EQ(std::get<engine::NumClustersQuery>(back.queries[5]).tau, 0.3);
    if (mode == 0) EXPECT_TRUE(std::holds_alternative<engine::Latest>(back.consistency));
    if (mode == 1)
      EXPECT_EQ(std::get<AtLeastEpoch>(back.consistency).epoch, 42u);
    if (mode == 2) EXPECT_EQ(std::get<AsOf>(back.consistency).epoch, 17u);
    // The deadline crosses as a relative timeout: equal up to the
    // encoding's millisecond granularity.
    auto dt = back.deadline - req.deadline;
    EXPECT_LT(std::chrono::abs(dt), 5ms);
  }

  // Pinned holds a process-local pointer: not wire-encodable.
  QueryRequest pinned;
  pinned.queries = {engine::NumClustersQuery{0.5}};
  pinned.consistency = engine::Pinned{nullptr};
  std::string payload;
  EXPECT_FALSE(encode_query(1, pinned, now, &payload));

  // Garbage payloads are refused, not misparsed.
  uint64_t id;
  QueryRequest back;
  EXPECT_FALSE(decode_query("nonsense", &id, &back, now));
  EXPECT_FALSE(decode_query(std::string(), &id, &back, now));
}

TEST(MessageCodec, ResultAndErrorRoundTrip) {
  ResultSet rs;
  rs.epoch = 77;
  rs.results = {engine::QueryResult(true), engine::QueryResult(uint64_t(12)),
                engine::QueryResult(std::vector<vertex_id>{1, 5, 9}),
                engine::QueryResult(SizeHistogram{{{1, 4}, {3, 2}}})};
  uint64_t id = 0;
  ResultSet back;
  ASSERT_TRUE(decode_result(encode_result(55, rs), &id, &back));
  EXPECT_EQ(id, 55u);
  expect_same_results(rs, back);

  for (QueryErrorCode code :
       {QueryErrorCode::kDeadlineExceeded, QueryErrorCode::kCancelled,
        QueryErrorCode::kAdmissionRejected, QueryErrorCode::kShutdown,
        QueryErrorCode::kEpochUnavailable}) {
    QueryErrorCode bcode;
    ASSERT_TRUE(decode_error(encode_error(9, code), &id, &bcode));
    EXPECT_EQ(id, 9u);
    EXPECT_EQ(bcode, code);
  }
  EXPECT_FALSE(decode_result("bad", &id, &back));
  QueryErrorCode bcode;
  EXPECT_FALSE(decode_error("bad", &id, &bcode));
}

// ---- loopback RPC -----------------------------------------------------

TEST(Rpc, LoopbackMatchesInProcessBitForBit) {
  SldService svc(net_config());
  churn(svc, 6, /*seed=*/1);
  const uint64_t tip = svc.epoch();
  RpcServer server(svc);
  RpcClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.ack().epoch, tip);
  EXPECT_EQ(client.ack().num_vertices, 120u);
  EXPECT_TRUE(client.ping());

  par::Rng rng = test::test_rng();
  for (int round = 0; round < 8; ++round) {
    double tau = 0.1 + 0.8 * rng.next_double();
    vertex_id u = rng.next_bounded(120), v = rng.next_bounded(120);
    QueryRequest req;
    req.queries = {engine::SameClusterQuery{u, v, tau},
                   engine::ClusterSizeQuery{u, tau},
                   engine::ClusterReportQuery{v, tau},
                   engine::FlatClusteringQuery{tau},
                   engine::SizeHistogramQuery{tau},
                   engine::NumClustersQuery{tau}};
    // Pin both paths to the same epoch so the comparison is exact.
    req.consistency = AsOf{tip};
    QueryRequest wire = req, local = req;
    ResultSet over_wire = client.query(wire);
    ResultSet in_process = svc.submit(std::move(local)).get();
    expect_same_results(over_wire, in_process);
    EXPECT_EQ(over_wire.epoch, tip);
  }
  // Typed errors cross the wire as the same exception an in-process
  // future throws.
  QueryRequest stale;
  stale.queries = {engine::NumClustersQuery{0.5}};
  stale.consistency = AsOf{tip + 1000};
  try {
    client.query(stale);
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), QueryErrorCode::kEpochUnavailable);
  }
}

TEST(Rpc, ConcurrentClientsAllAnswerConsistently) {
  SldService svc(net_config());
  churn(svc, 5, /*seed=*/2);
  const uint64_t tip = svc.epoch();
  RpcServer server(svc);

  QueryRequest oracle_req;
  oracle_req.queries = {engine::NumClustersQuery{0.4},
                        engine::SizeHistogramQuery{0.4}};
  oracle_req.consistency = AsOf{tip};
  ResultSet oracle = svc.submit(std::move(oracle_req)).get();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      try {
        RpcClient client("127.0.0.1", server.port(),
                         RpcClient::Options{uint64_t(t + 1), 1});
        for (int i = 0; i < 20; ++i) {
          QueryRequest req;
          req.queries = {engine::NumClustersQuery{0.4},
                         engine::SizeHistogramQuery{0.4}};
          req.consistency = AsOf{tip};
          ResultSet rs = client.query(req);
          if (rs.epoch != oracle.epoch || rs.results != oracle.results)
            failures.fetch_add(1);
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- drain semantics (the shutdown-wake regression) -------------------

TEST(Broker, AbortWaitersResolvesParkedRequests) {
  SldService svc(net_config());
  churn(svc, 2, /*seed=*/3);
  // Park a waiter on an epoch no writer will ever publish.
  QueryRequest req;
  req.queries = {engine::NumClustersQuery{0.5}};
  req.consistency = AtLeastEpoch{svc.epoch() + 100};
  auto fut = svc.submit(std::move(req));
  ASSERT_EQ(fut.wait_for(100ms), std::future_status::timeout);
  svc.broker().abort_waiters();
  ASSERT_EQ(fut.wait_for(2s), std::future_status::ready);
  try {
    fut.get();
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), QueryErrorCode::kShutdown);
  }
  EXPECT_GE(svc.stats().broker_drain_aborted, 1u);
}

TEST(Rpc, StopDoesNotParkOnIdleEngineWaiters) {
  // The regression: a server drain used to rely on the hub's publish
  // signal alone, so a parked AtLeastEpoch waiter on an idle engine
  // held the drain until its full timeout.
  SldService svc(net_config());
  churn(svc, 2, /*seed=*/4);
  RpcServer::Options opt;
  opt.drain_timeout = 30s;  // a hang would blow way past the assert below
  auto server = std::make_unique<RpcServer>(svc, opt);
  uint16_t port = server->port();

  std::promise<void> got_error;
  std::thread waiter([&] {
    RpcClient client("127.0.0.1", port);
    QueryRequest req;
    req.queries = {engine::NumClustersQuery{0.5}};
    req.consistency = AtLeastEpoch{svc.epoch() + 100};
    try {
      client.query(req);
    } catch (const QueryError& e) {
      EXPECT_EQ(e.code(), QueryErrorCode::kShutdown);
      got_error.set_value();
      return;
    } catch (const std::runtime_error&) {
      // Transport teardown before the error frame flushed also proves
      // the drain did not park; the future was still resolved.
      got_error.set_value();
      return;
    }
    got_error.set_value();
    ADD_FAILURE() << "parked query resolved with a value";
  });

  std::this_thread::sleep_for(200ms);  // let the query park
  auto t0 = std::chrono::steady_clock::now();
  server->stop();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 10s);
  ASSERT_EQ(got_error.get_future().wait_for(5s), std::future_status::ready);
  waiter.join();
}

// ---- replication ------------------------------------------------------

TEST(Repl, ReplicaBootstrapsTailsAndServesAtLeastEpoch) {
  TempDir dir;
  SldService svc(net_config(dir.path));
  churn(svc, 6, /*seed=*/5);
  RpcServer server(svc);

  Replica::Options ropt;
  ropt.port = server.port();
  ropt.cfg = net_config();
  Replica replica(ropt);
  ASSERT_TRUE(replica.wait_for_epoch(svc.epoch(), 10000ms));
  EXPECT_FALSE(replica.desynced());

  // Bootstrap equivalence at the shared epoch.
  uint64_t tip = svc.epoch();
  EXPECT_EQ(snapshot_bytes(replica.service(), tip), snapshot_bytes(svc, tip));

  // Live tailing: new writer epochs arrive and an AtLeastEpoch query
  // against the LAGGING replica parks until its stream catches up.
  QueryRequest req;
  req.queries = {engine::NumClustersQuery{0.3}};
  req.consistency = AtLeastEpoch{tip + 2};
  auto fut = replica.service().submit(std::move(req));
  ASSERT_EQ(fut.wait_for(100ms), std::future_status::timeout);
  churn(svc, 2, /*seed=*/6);  // writer publishes tip+1, tip+2
  ResultSet rs = fut.get();
  EXPECT_GE(rs.epoch, tip + 2);
  ASSERT_TRUE(replica.wait_for_epoch(svc.epoch(), 10000ms));
  EXPECT_EQ(snapshot_bytes(replica.service(), svc.epoch()),
            snapshot_bytes(svc, svc.epoch()));
}

TEST(Repl, TwoReplicasFanOutAndServeIdenticalAnswers) {
  TempDir dir;
  SldService svc(net_config(dir.path));
  churn(svc, 5, /*seed=*/7);
  RpcServer server(svc);

  Replica::Options ropt;
  ropt.port = server.port();
  ropt.cfg = net_config();
  Replica rep1(ropt), rep2(ropt);
  // Each replica serves its own broker behind its own port.
  RpcServer srv1(rep1.service()), srv2(rep2.service());

  churn(svc, 3, /*seed=*/8);  // more epochs while both tail
  const uint64_t tip = svc.epoch();
  ASSERT_TRUE(rep1.wait_for_epoch(tip, 10000ms));
  ASSERT_TRUE(rep2.wait_for_epoch(tip, 10000ms));

  QueryRequest req;
  req.queries = {engine::FlatClusteringQuery{0.35},
                 engine::SizeHistogramQuery{0.35},
                 engine::NumClustersQuery{0.35}};
  req.consistency = AsOf{tip};
  QueryRequest r0 = req, r1 = req, r2 = req;
  ResultSet direct = svc.submit(std::move(r0)).get();
  RpcClient c1("127.0.0.1", srv1.port()), c2("127.0.0.1", srv2.port());
  ResultSet via1 = c1.query(r1), via2 = c2.query(r2);
  expect_same_results(via1, direct);
  expect_same_results(via2, direct);
  EXPECT_GE(svc.stats().repl_snapshots_served, 2u);
}

TEST(Repl, Kill9WriterReplicaMatchesRecoverBitForBit) {
  TempDir dir;
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Writer child: build durable state, serve it, then hang until the
    // parent SIGKILLs us — no destructor runs, like a real crash.
    ::close(pipefd[0]);
    {
      SldService svc(net_config(dir.path));
      churn(svc, 10, /*seed=*/9);
      RpcServer server(svc);
      uint16_t port = server.port();
      uint64_t tip = svc.epoch();
      if (::write(pipefd[1], &port, sizeof port) != sizeof port) ::_exit(3);
      if (::write(pipefd[1], &tip, sizeof tip) != sizeof tip) ::_exit(3);
      for (;;) ::pause();
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);
  uint16_t port = 0;
  uint64_t tip = 0;
  ASSERT_EQ(::read(pipefd[0], &port, sizeof port), ssize_t(sizeof port));
  ASSERT_EQ(::read(pipefd[0], &tip, sizeof tip), ssize_t(sizeof tip));
  ::close(pipefd[0]);

  std::string replica_bytes;
  {
    Replica::Options ropt;
    ropt.port = port;
    ropt.cfg = net_config();
    Replica replica(ropt);
    ASSERT_TRUE(replica.wait_for_epoch(tip, 15000ms));
    replica_bytes = snapshot_bytes(replica.service(), tip);
  }

  // kill -9 the writer mid-serve, then rebuild from the directory it
  // left behind. The wire bootstrap and the disk recovery must agree
  // on every byte of the snapshot.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  ASSERT_EQ(::waitpid(pid, nullptr, 0), pid);

  persist::RecoverResult rec = persist::recover(net_config(dir.path));
  ASSERT_EQ(rec.tip_epoch, tip);
  EXPECT_EQ(snapshot_bytes(*rec.service, tip), replica_bytes);
  EXPECT_FALSE(replica_bytes.empty());
}

TEST(Repl, ReplicaHelloRefusedByNonPersistedServer) {
  SldService svc(net_config());  // no data dir: nothing to stream
  churn(svc, 2, /*seed=*/10);
  RpcServer server(svc);
  Replica::Options ropt;
  ropt.port = server.port();
  ropt.cfg = net_config();
  EXPECT_THROW(Replica replica(ropt), std::runtime_error);
}

// ---- per-client QoS ---------------------------------------------------

TEST(QoS, SaturatingClientCannotStarveALightOne) {
  ServiceConfig cfg = net_config();
  cfg.broker_queue_depth = 8;  // small, so saturation is reachable
  SldService svc(cfg);
  churn(svc, 4, /*seed=*/11);
  RpcServer server(svc);

  const auto deadline_budget = 1500ms;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> heavy_ok{0}, heavy_rejected{0};
  // Four connections of ONE heavy tenant flooding expensive queries.
  std::vector<std::thread> heavy;
  for (int t = 0; t < 4; ++t) {
    heavy.emplace_back([&] {
      RpcClient client("127.0.0.1", server.port(),
                       RpcClient::Options{/*client_id=*/1, /*weight=*/1});
      par::Rng rng = test::test_rng(1000 + uint64_t(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
      while (!stop.load(std::memory_order_acquire)) {
        QueryRequest req;
        // Distinct taus defeat group sharing: every request is real
        // work.
        req.queries = {engine::FlatClusteringQuery{rng.next_double()},
                       engine::SizeHistogramQuery{rng.next_double()}};
        req.deadline = std::chrono::steady_clock::now() + 500ms;
        try {
          client.query(req);
          heavy_ok.fetch_add(1);
        } catch (const QueryError&) {
          heavy_rejected.fetch_add(1);
        } catch (const std::runtime_error&) {
          return;  // server shutting down under us
        }
      }
    });
  }

  // One light tenant with a 3x weight: every request must land well
  // inside its deadline even while the heavy tenant saturates.
  std::vector<double> light_latencies_ms;
  uint64_t light_errors = 0;
  {
    RpcClient client("127.0.0.1", server.port(),
                     RpcClient::Options{/*client_id=*/2, /*weight=*/3});
    for (int i = 0; i < 40; ++i) {
      QueryRequest req;
      req.queries = {engine::NumClustersQuery{0.45}};
      req.deadline = std::chrono::steady_clock::now() + deadline_budget;
      auto t0 = std::chrono::steady_clock::now();
      try {
        client.query(req);
        light_latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } catch (const QueryError&) {
        ++light_errors;
      }
      std::this_thread::sleep_for(10ms);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : heavy) th.join();

  // The heavy tenant really did hit its quota share...
  EXPECT_GT(svc.stats().broker_quota_rejects, 0u);
  EXPECT_GT(heavy_ok.load(), 0u);
  // ...and the light tenant never missed: no rejections, no expiries,
  // p99 (here: max of 40 samples) inside the deadline.
  EXPECT_EQ(light_errors, 0u);
  ASSERT_EQ(light_latencies_ms.size(), 40u);
  double worst = *std::max_element(light_latencies_ms.begin(),
                                   light_latencies_ms.end());
  const double budget_ms =
      std::chrono::duration<double, std::milli>(deadline_budget).count();
  EXPECT_LT(worst, budget_ms);
  // Per-client accounting surfaced in EngineObs.
  engine::ClientStats* light = svc.obs().clients.get(2);
  ASSERT_NE(light, nullptr);
  EXPECT_EQ(light->fulfilled.load(), 40u);
  EXPECT_EQ(light->deadline_expired.load(), 0u);
  EXPECT_EQ(light->quota_rejected.load(), 0u);
}

}  // namespace
}  // namespace dynsld::net
