// Randomized differential harness for the serving engine — many
// generated workloads, one oracle (the spirit of scenario-diverse
// benchmark suites: coverage breadth over hand-picked cases).
//
// Each schedule is a seeded interleaving of insert / erase-by-ticket /
// erase-by-endpoints / flush over a parameterized scenario (uneven
// shards, erase-heavy churn, single-shard hotspots, all-cross-edges).
// After every published epoch the harness checks three ways at several
// thresholds:
//
//   1. the subscription-refreshed ThresholdView answers bit-for-bit
//      like a freshly resolved view of the same snapshot (labels and
//      histograms as exact vector equality — labels are canonical,
//      i.e. a pure function of the snapshot and the resolution, so a
//      patched array and a from-scratch array must agree exactly and
//      any divergence is a refresh/patch bug, not an ordering
//      artifact); the label queries also run through the typed batch
//      API, so the patched path behind run() is covered on every
//      schedule;
//   2. both match the Kruskal reference partition of the epoch's
//      captured edge set (partition equality, sampled pair/size/report
//      queries);
//   3. refresh bookkeeping: the subscription serves exactly the
//      published epoch.
//
// Seeds are printed on failure (SCOPED_TRACE) for replay; set
// DYNSLD_FUZZ_SEEDS to scale the run (default 1000 schedules across
// the scenarios — CI's TSan leg runs fewer), or DYNSLD_FUZZ_SEED to
// replay one specific seed in every scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "engine/cluster_view.hpp"
#include "engine/query.hpp"
#include "engine/sld_service.hpp"
#include "engine/subscription.hpp"
#include "parallel/random.hpp"
#include "persist/persist.hpp"
#include "test_util.hpp"

namespace dynsld::engine {
namespace {

using test::expect_same_partition;
using test::ref_cluster_size;
using test::ref_histogram;
using test::reference_labels;

struct Scenario {
  const char* name;        // printed in failure traces
  const char* param_label; // gtest parameterized-test suffix (alphanumeric)
  vertex_id n;
  int shards;
  int steps;
  double erase_prob;  // per step: erase a live edge instead of inserting
  double cross_frac;  // per insert: force a cross-shard edge
  int hot_shard;      // >= 0: pin this fraction of intra inserts there
  double hot_frac;
  int flush_every;
};

// Four qualitatively different workloads; ~250 seeds each by default.
constexpr Scenario kScenarios[] = {
    // Stride 13 over 4 shards: the last shard is short (11 vertices),
    // exercising shard-local vertex spaces at every boundary.
    {"uneven_shards", "UnevenShards", 50, 4, 72, 0.30, 0.30, -1, 0.0, 12},
    // Deletion-dominated: replacement scans, annihilation, and empty
    // epochs are the common case.
    {"erase_heavy", "EraseHeavy", 48, 3, 90, 0.55, 0.20, -1, 0.0, 15},
    // One shard of eight takes 90% of the intra traffic: the refresh
    // path should reuse the other seven (counter-checked below).
    {"hotspot", "Hotspot", 64, 8, 72, 0.25, 0.15, 0, 0.9, 12},
    // Every edge crosses shards: the cross table and the blob
    // union-find ARE the clustering; shard dendrograms stay empty.
    {"all_cross", "AllCross", 40, 4, 60, 0.30, 1.0, -1, 0.0, 10},
};

int fuzz_seeds() {
  if (const char* s = std::getenv("DYNSLD_FUZZ_SEEDS")) {
    int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 1000;
}

struct LiveEdge {
  ticket_t ticket;
  vertex_id u, v;
};

/// One seeded schedule through `sc`; every published epoch is verified.
void run_schedule(const Scenario& sc, uint64_t seed) {
  SCOPED_TRACE(std::string("scenario=") + sc.name +
               " seed=" + std::to_string(seed) +
               "  (replay: DYNSLD_FUZZ_SEED=" + std::to_string(seed) + ")");
  ServiceConfig cfg;
  cfg.num_vertices = sc.n;
  cfg.num_shards = sc.shards;
  cfg.capture_edges = true;
  SldService svc(cfg);
  // Twin baseline: identical traffic with incremental snapshots OFF, so
  // every dirty shard rebuilds from scratch. Whatever the patching
  // builder produced for an epoch must match the twin's arrays
  // byte-for-byte (SnapshotCodec::encode_shard is the canonical byte
  // view) — this pins the copy-on-write contraction patch on every
  // schedule of every scenario.
  ServiceConfig bcfg = cfg;
  bcfg.incremental_snapshots = false;
  SldService baseline(bcfg);
  // By value: the epoch-0 snapshot this comes from is superseded later.
  const ShardMap map = svc.snapshot()->shard_map();

  par::Rng rng(seed);
  // Three thresholds: two fixed in the interesting band, one seeded.
  const double taus[3] = {0.25, 0.7, 0.05 + 0.9 * rng.next_double()};

  SubscribedView sub(svc);
  for (double tau : taus) sub.at(tau);  // initial full resolutions

  auto pick_insert = [&]() -> std::pair<vertex_id, vertex_id> {
    if (rng.next_double() < sc.cross_frac && sc.shards > 1) {
      // Cross-shard: endpoints with different homes.
      vertex_id u, v;
      do {
        u = static_cast<vertex_id>(rng.next_bounded(sc.n));
        v = static_cast<vertex_id>(rng.next_bounded(sc.n));
      } while (u == v || map.home(u) == map.home(v));
      return {u, v};
    }
    int k = sc.hot_shard >= 0 && rng.next_double() < sc.hot_frac
                ? sc.hot_shard
                : static_cast<int>(rng.next_bounded(sc.shards));
    vertex_id size = map.local_size(k);
    if (size < 2) return test::random_distinct_pair(rng, sc.n);
    return test::random_block_pair(rng, map.base(k), size);
  };

  std::vector<LiveEdge> live;
  for (int step = 0; step < sc.steps; ++step) {
    if (!live.empty() && rng.next_double() < sc.erase_prob) {
      size_t j = rng.next_bounded(live.size());
      if (rng.next_double() < 0.5) {
        svc.erase(live[j].ticket);
        baseline.erase(live[j].ticket);  // tickets align: same inserts
      } else {
        EXPECT_TRUE(svc.erase(live[j].u, live[j].v));
        EXPECT_TRUE(baseline.erase(live[j].u, live[j].v));
      }
      live[j] = live.back();
      live.pop_back();
    } else {
      auto [u, v] = pick_insert();
      double w = rng.next_double();
      live.push_back(LiveEdge{svc.insert(u, v, w), u, v});
      baseline.insert(u, v, w);
    }
    if (step % sc.flush_every != sc.flush_every - 1) continue;

    uint64_t epoch = svc.flush();
    ASSERT_EQ(baseline.flush(), epoch);
    sub.refresh();
    auto snap = svc.snapshot();
    ASSERT_EQ(snap->epoch(), epoch);
    ASSERT_EQ(sub.epoch(), epoch);

    // (0) Patched per-shard snapshots are byte-identical to the twin's
    // from-scratch builds.
    {
      auto bsnap = baseline.snapshot();
      for (int k = 0; k < sc.shards; ++k) {
        persist::ByteWriter pa, pb;
        persist::SnapshotCodec::encode_shard(snap->shard(k), pa);
        persist::SnapshotCodec::encode_shard(bsnap->shard(k), pb);
        ASSERT_EQ(pa.bytes(), pb.bytes())
            << "patched shard diverges from fresh build, shard=" << k
            << " epoch=" << epoch;
      }
    }

    ClusterView fresh_view(snap);
    for (double tau : taus) {
      SCOPED_TRACE("epoch=" + std::to_string(epoch) +
                   " tau=" + std::to_string(tau));
      auto subv = sub.at(tau);
      auto fresh = fresh_view.at(tau);
      ASSERT_EQ(subv->epoch(), epoch);

      // (1) Refreshed view == fresh view, bit for bit — including the
      // patched flat labels and the reassembled histogram, also via
      // the typed batch API.
      ASSERT_EQ(subv->flat_clustering(), fresh->flat_clustering());
      ASSERT_EQ(subv->size_histogram(), fresh->size_histogram());
      {
        std::vector<Query> lq{FlatClusteringQuery{tau},
                              SizeHistogramQuery{tau}};
        auto lres = sub.run(lq);
        ASSERT_EQ(std::get<std::vector<vertex_id>>(lres[0]),
                  fresh->flat_clustering());
        ASSERT_EQ(std::get<SizeHistogram>(lres[1]), fresh->size_histogram());
      }
      // (2) Both == the Kruskal oracle.
      auto ref = reference_labels(sc.n, snap->captured_edges(), tau);
      expect_same_partition(ref, subv->flat_clustering());
      // Canonical-label invariants the patch machinery relies on: a
      // label names a member of its own cluster and is idempotent.
      const std::vector<vertex_id>& lab = subv->flat_clustering();
      for (vertex_id v = 0; v < sc.n; ++v) {
        ASSERT_EQ(ref[lab[v]], ref[v]) << "label not a cluster member, v=" << v;
        ASSERT_EQ(lab[lab[v]], lab[v]) << "label not canonical, v=" << v;
      }
      ASSERT_EQ(subv->size_histogram(), ref_histogram(ref));
      // NumClusters reassembles from per-shard prefix counts + the
      // cross merge; it must agree with the histogram and the oracle.
      ASSERT_EQ(subv->num_clusters(), ref_histogram(ref).num_clusters());
      ASSERT_EQ(fresh->num_clusters(), subv->num_clusters());
      for (int q = 0; q < 12; ++q) {
        auto [s, t] = test::random_distinct_pair(rng, sc.n);
        ASSERT_EQ(subv->same_cluster(s, t), ref[s] == ref[t])
            << "s=" << s << " t=" << t;
        ASSERT_EQ(fresh->same_cluster(s, t), ref[s] == ref[t]);
      }
      vertex_id u = static_cast<vertex_id>(rng.next_bounded(sc.n));
      ASSERT_EQ(subv->cluster_size(u), ref_cluster_size(ref, u));
      // Reports may order members differently across refresh histories;
      // compare as sets.
      auto rep_sub = subv->cluster_report(u);
      auto rep_fresh = fresh->cluster_report(u);
      std::sort(rep_sub.begin(), rep_sub.end());
      std::sort(rep_fresh.begin(), rep_fresh.end());
      ASSERT_EQ(rep_sub, rep_fresh);
      ASSERT_EQ(rep_sub.size(), ref_cluster_size(ref, u));
    }

    // (4) Async plane: a random slice of the same query mix routed
    // through submit() — pinned to this verified epoch — must answer
    // bit-for-bit like the direct pinned views (reports as sorted
    // sets: member order may differ across refresh histories). The
    // broker's standing views refresh incrementally across the
    // schedule's epochs, so this also differentials the cached-refresh
    // path behind the public async API on every schedule.
    {
      std::vector<Query> slice;
      for (double tau : taus) {
        auto [s, t] = test::random_distinct_pair(rng, sc.n);
        if (rng.next_double() < 0.8) slice.push_back(SameClusterQuery{s, t, tau});
        if (rng.next_double() < 0.8) slice.push_back(ClusterSizeQuery{s, tau});
        if (rng.next_double() < 0.5) slice.push_back(ClusterReportQuery{t, tau});
        if (rng.next_double() < 0.5) slice.push_back(NumClustersQuery{tau});
        if (rng.next_double() < 0.3) slice.push_back(FlatClusteringQuery{tau});
        if (rng.next_double() < 0.3) slice.push_back(SizeHistogramQuery{tau});
      }
      QueryRequest req;
      req.queries = slice;
      req.consistency = Pinned{snap};
      ResultSet rs = svc.submit(std::move(req)).get();
      ASSERT_EQ(rs.epoch, epoch);
      ASSERT_EQ(rs.results.size(), slice.size());
      for (size_t i = 0; i < slice.size(); ++i) {
        SCOPED_TRACE("submit slice i=" + std::to_string(i));
        QueryResult direct = fresh_view.at(query_tau(slice[i]))->run(slice[i]);
        if (std::holds_alternative<ClusterReportQuery>(slice[i])) {
          auto got = std::get<std::vector<vertex_id>>(rs.results[i]);
          auto want = std::get<std::vector<vertex_id>>(direct);
          std::sort(got.begin(), got.end());
          std::sort(want.begin(), want.end());
          ASSERT_EQ(got, want);
        } else {
          ASSERT_TRUE(rs.results[i] == direct);
        }
      }
    }
  }
}

class FuzzEngine : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEngine, DifferentialSchedules) {
  const Scenario& sc = kScenarios[GetParam()];
  if (const char* s = std::getenv("DYNSLD_FUZZ_SEED")) {
    run_schedule(sc, std::strtoull(s, nullptr, 10));
    return;
  }
  int per_scenario =
      std::max(1, fuzz_seeds() / static_cast<int>(std::size(kScenarios)));
  for (int i = 0; i < per_scenario; ++i) {
    // Distinct streams per scenario; the seed printed on failure replays
    // this exact schedule via DYNSLD_FUZZ_SEED.
    uint64_t seed = par::hash64(static_cast<uint64_t>(GetParam()) * 1000003u + i);
    run_schedule(sc, seed);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "stopping scenario '" << sc.name
                    << "' after first failing seed " << seed;
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, FuzzEngine,
                         ::testing::Range(0, static_cast<int>(std::size(kScenarios))),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kScenarios[info.param].param_label;
                         });

/// The hotspot scenario must actually exercise the reuse machinery, not
/// just pass: across a full run, most per-refresh shard work is reuse.
TEST(FuzzEngine, HotspotSchedulesReuseShards) {
  const Scenario& sc = kScenarios[2];
  ASSERT_STREQ(sc.name, "hotspot");
  // A couple of schedules are plenty for the counters to accumulate.
  for (uint64_t seed : {7u, 8u}) run_schedule(sc, seed);
  // Counters are per-service, so re-run one schedule and inspect.
  ServiceConfig cfg;
  cfg.num_vertices = sc.n;
  cfg.num_shards = sc.shards;
  SldService svc(cfg);
  SubscribedView sub(svc);
  const double tau = 0.5;
  sub.at(tau);
  par::Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 10; ++i) {
      auto [u, v] = test::random_block_pair(rng, 0, 8);  // shard 0 only
      svc.insert(u, v, rng.next_double());
    }
    svc.flush();
    sub.refresh();
  }
  auto r = svc.stats();
  EXPECT_EQ(r.sub_refreshes, 8u);
  EXPECT_EQ(r.refresh_shards_reused, 8u * 7u);
  EXPECT_EQ(r.refresh_shards_rebuilt, 8u * 1u);
  EXPECT_EQ(r.refresh_views_full, 0u);
}

/// Skewed churn with flat labels queried every epoch: the label
/// maintenance must take the patch path (not silently rebuild), stay
/// bit-for-bit with fresh materializations, and account itself in the
/// labels_patched/labels_rebuilt counters.
TEST(FuzzEngine, FlatLabelPatchCountersUnderSkewedChurn) {
  ServiceConfig cfg;
  cfg.num_vertices = 64;
  cfg.num_shards = 8;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  // A weighted path across the whole range: intra-shard structure in
  // every shard plus sub-tau cross edges at each shard boundary, so the
  // patch has both dirty ranges and group fixups to handle.
  for (vertex_id v = 0; v + 1 < 64; ++v)
    svc.insert(v, v + 1, 0.2 + 0.5 * rng.next_double());
  svc.flush();

  SubscribedView sub(svc);
  const double tau = 0.5;
  sub.at(tau)->flat_clustering();  // initial materialization
  EXPECT_EQ(svc.stats().labels_rebuilt, 1u);

  const int rounds = 6;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < 6; ++i) {  // all churn inside shard 0
      auto [u, v] = test::random_block_pair(rng, 0, 8);
      svc.insert(u, v, rng.next_double());
    }
    svc.flush();
    sub.refresh();
    ClusterView fresh(svc.snapshot());
    ASSERT_EQ(sub.at(tau)->flat_clustering(), fresh.at(tau)->flat_clustering());
    ASSERT_EQ(sub.at(tau)->size_histogram(), fresh.at(tau)->size_histogram());
  }
  auto r = svc.stats();
  EXPECT_EQ(r.labels_patched, static_cast<uint64_t>(rounds));
  EXPECT_EQ(r.labels_rebuilt, 1u + rounds);  // initial + the fresh oracles
  EXPECT_EQ(r.labels_reused, 0u);
}

/// Concurrent epoch turnover: the background writer publishes epochs
/// whose notifications refresh a subscription *on the writer thread*
/// (via the publish hook) while the main thread runs typed batches
/// against the same subscription — the writer->reader notification
/// edge the TSan CI job watches, and the scheduler-claim-gate
/// composition (both sides may fan out on the fork-join pool).
TEST(FuzzEngine, ConcurrentNotifyRefreshVsReaderBatches) {
  const vertex_id n = 96;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 4;
  cfg.flush_threshold = 24;
  cfg.flush_interval = std::chrono::microseconds(100);
  SldService svc(cfg);

  std::atomic<uint64_t> notifies{0};
  std::optional<SubscribedView> sub;
  sub.emplace(svc, [&](uint64_t) {
    notifies.fetch_add(1, std::memory_order_relaxed);
    sub->refresh();  // on the publishing (writer) thread
  });
  sub->at(0.3);
  sub->at(0.7);
  svc.start_writer();

  std::thread producer([&] {
    par::Rng rng(2026);
    std::vector<ticket_t> live;
    for (int i = 0; i < 4000; ++i) {
      if (!live.empty() && rng.next_double() < 0.35) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        auto [u, v] = test::random_distinct_pair(rng, n);
        live.push_back(svc.insert(u, v, rng.next_double()));
      }
      if (i % 400 == 399) std::this_thread::yield();
    }
  });

  par::Rng qrng(7);
  uint64_t batches = 0;
  while (notifies.load(std::memory_order_relaxed) < 4 || batches < 50) {
    std::vector<Query> batch;
    for (double tau : {0.3, 0.7}) {
      auto [u, v] = test::random_distinct_pair(qrng, n);
      batch.push_back(SameClusterQuery{u, u, tau});  // reflexive: always true
      batch.push_back(SameClusterQuery{u, v, tau});
      batch.push_back(ClusterSizeQuery{u, tau});
    }
    auto results = sub->run(batch);
    for (size_t i = 0; i < results.size(); i += 3) {
      ASSERT_TRUE(std::get<bool>(results[i]));
      ASSERT_GE(std::get<uint64_t>(results[i + 2]), 1u);
    }
    ++batches;
    if (batches > 5000) break;  // liveness guard
  }

  producer.join();
  svc.stop_writer();
  // Catch up and verify the final epoch exactly.
  sub->refresh();
  auto snap = svc.snapshot();
  ClusterView fresh(snap);
  for (double tau : {0.3, 0.7})
    ASSERT_EQ(sub->at(tau)->flat_clustering(),
              fresh.at(tau)->flat_clustering());
  EXPECT_GT(notifies.load(), 0u);
  EXPECT_GT(svc.stats().sub_refreshes, 0u);
  sub.reset();  // unregister before the service dies
}

// The durability cross-check: run scenario schedules against a
// PERSISTED service, then recover the directory and demand that every
// republished epoch fingerprints identically to the live run — flat
// labels as exact vector equality at multiple thresholds. This rides
// the same workload generators as the differential harness, so the
// recovery path sees uneven shards and all-cross churn, not just the
// tailored workloads in test_persist.cpp.
TEST(FuzzEngine, RecoverAndDiffReplaysSchedulesBitForBit) {
  namespace fs = std::filesystem;
  const double taus[2] = {0.25, 0.7};
  int trial = 0;
  for (const Scenario& sc : {kScenarios[0], kScenarios[3]}) {
    for (uint64_t seed : {11u, 12u, 13u}) {
      SCOPED_TRACE(std::string("scenario=") + sc.name +
                   " seed=" + std::to_string(seed));
      const fs::path dir =
          fs::temp_directory_path() /
          ("dynsld_fuzz_recover_" + std::to_string(trial++));
      fs::remove_all(dir);
      fs::create_directories(dir);

      ServiceConfig cfg;
      cfg.num_vertices = sc.n;
      cfg.num_shards = sc.shards;
      cfg.capture_edges = true;
      cfg.retain_epochs = 256;  // recovered ring holds the whole replay
      cfg.persist.dir = dir.string();
      cfg.persist.checkpoint_every = 3;

      // Per-epoch label fingerprints of the live run. Weights are
      // drawn DISTINCT (injective index map modulo a prime) — ties
      // would make the dendrogram non-unique and the bit-for-bit
      // comparison ill-posed.
      std::map<uint64_t, std::array<std::vector<vertex_id>, 2>> fps;
      {
        SldService svc(cfg);
        const ShardMap map = svc.snapshot()->shard_map();
        par::Rng rng(seed);
        uint64_t widx = 0;
        auto next_weight = [&] {
          return static_cast<double>((widx++ * 2654435761ull + seed) %
                                     999983ull) /
                 999983.0;
        };
        std::vector<LiveEdge> live;
        for (int step = 0; step < sc.steps; ++step) {
          if (!live.empty() && rng.next_double() < sc.erase_prob) {
            size_t j = rng.next_bounded(live.size());
            if (rng.next_double() < 0.5)
              svc.erase(live[j].ticket);
            else
              EXPECT_TRUE(svc.erase(live[j].u, live[j].v));
            live[j] = live.back();
            live.pop_back();
          } else {
            vertex_id u, v;
            if (rng.next_double() < sc.cross_frac && sc.shards > 1) {
              do {
                u = static_cast<vertex_id>(rng.next_bounded(sc.n));
                v = static_cast<vertex_id>(rng.next_bounded(sc.n));
              } while (u == v || map.home(u) == map.home(v));
            } else {
              std::tie(u, v) = test::random_distinct_pair(rng, sc.n);
            }
            live.push_back(LiveEdge{svc.insert(u, v, next_weight()), u, v});
          }
          if (step % sc.flush_every != sc.flush_every - 1) continue;
          uint64_t before = svc.epoch();
          uint64_t e = svc.flush();
          if (e == before) continue;  // empty batch: no epoch published
          auto snap = svc.snapshot();
          fps[e] = {snap->flat_clustering(taus[0]),
                    snap->flat_clustering(taus[1])};
        }
      }  // destructor = clean shutdown; the directory is the survivor

      ASSERT_FALSE(fps.empty());
      auto res = persist::recover(cfg);
      ASSERT_TRUE(res.service);
      EXPECT_EQ(res.tip_epoch, fps.rbegin()->first);
      for (const auto& [e, labels] : fps) {
        if (e < res.checkpoint_epoch) continue;  // below the replay base
        SCOPED_TRACE("epoch=" + std::to_string(e));
        auto snap = res.service->snapshot_at(e);
        ASSERT_TRUE(snap);
        EXPECT_EQ(snap->flat_clustering(taus[0]), labels[0]);
        EXPECT_EQ(snap->flat_clustering(taus[1]), labels[1]);
      }
      res.service.reset();
      fs::remove_all(dir);
    }
  }
}

// The tentpole differential: one big shard under erase-heavy SMALL
// batches must take the contraction patch path — counters prove most
// lifting rounds were reused, not re-run — while staying byte-identical
// to a from-scratch twin and the Kruskal oracle, and the patched bytes
// must survive persist::recover() (whose replay rebuilds through the
// restore path) unchanged.
TEST(FuzzEngine, IncrementalShardPatchEraseHeavySmallBatches) {
  namespace fs = std::filesystem;
  const vertex_id n = 1024;
  const fs::path dir = fs::temp_directory_path() / "dynsld_fuzz_shard_patch";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 1;
  cfg.capture_edges = true;
  cfg.retain_epochs = 64;
  cfg.persist.dir = dir.string();
  cfg.persist.checkpoint_every = 5;
  ServiceConfig bcfg = cfg;
  bcfg.incremental_snapshots = false;
  bcfg.persist.dir.clear();

  std::map<uint64_t, std::string> shard_bytes;  // epoch -> encoded shard 0
  {
    SldService svc(cfg);
    SldService baseline(bcfg);
    par::Rng rng(20260808);
    uint64_t widx = 0;
    // Distinct weights (injective map modulo a prime): ties would make
    // the dendrogram depend on the rank tiebreak alone, which is fine
    // for correctness but makes failure triage noisier.
    auto next_weight = [&] {
      return static_cast<double>((widx++ * 2654435761ull + 17) % 999983ull) /
             999983.0;
    };
    std::vector<LiveEdge> live;
    auto ins = [&](vertex_id u, vertex_id v) {
      double w = next_weight();
      live.push_back(LiveEdge{svc.insert(u, v, w), u, v});
      baseline.insert(u, v, w);
    };
    // Bulk load: a path over the whole shard plus random chords.
    for (vertex_id v = 0; v + 1 < n; ++v) ins(v, v + 1);
    for (int i = 0; i < 256; ++i) {
      auto [u, v] = test::random_distinct_pair(rng, n);
      ins(u, v);
    }
    uint64_t e0 = svc.flush();
    ASSERT_EQ(baseline.flush(), e0);

    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 12; ++i) {  // small cut, erase-dominated
        if (!live.empty() && rng.next_double() < 0.7) {
          size_t j = rng.next_bounded(live.size());
          svc.erase(live[j].ticket);
          baseline.erase(live[j].ticket);
          live[j] = live.back();
          live.pop_back();
        } else {
          auto [u, v] = test::random_distinct_pair(rng, n);
          ins(u, v);
        }
      }
      uint64_t e = svc.flush();
      ASSERT_EQ(baseline.flush(), e);
      auto snap = svc.snapshot();
      auto bsnap = baseline.snapshot();
      persist::ByteWriter pa, pb;
      persist::SnapshotCodec::encode_shard(snap->shard(0), pa);
      persist::SnapshotCodec::encode_shard(bsnap->shard(0), pb);
      ASSERT_EQ(pa.bytes(), pb.bytes()) << "round " << round;
      shard_bytes[e] = pa.bytes();
      for (double tau : {0.3, 0.7}) {
        auto ref = reference_labels(n, snap->captured_edges(), tau);
        expect_same_partition(ref, snap->flat_clustering(tau));
      }
    }

    auto r = svc.stats();
    EXPECT_GT(r.shard_snapshots_patched, 0u);
    ASSERT_GT(r.contraction_rounds_total, 0u);
    // Sublinearity in action: a small cut re-runs only the rounds its
    // footprint touches; most lifting rounds are row-copied.
    EXPECT_LT(r.contraction_rounds_rerun, r.contraction_rounds_total);
    // Per-epoch introspection agrees with the aggregate counters.
    const EpochDelta& dl = svc.snapshot()->delta();
    ASSERT_EQ(dl.shard_patch.size(), 1u);
    EXPECT_EQ(dl.shard_patch[0].mode, 1);
    EXPECT_LT(dl.shard_patch[0].rounds_rerun, dl.shard_patch[0].rounds_total);
  }  // clean shutdown; the directory is the survivor

  auto res = persist::recover(cfg);
  ASSERT_TRUE(res.service);
  size_t compared = 0;
  for (const auto& [e, bytes] : shard_bytes) {
    if (e < res.checkpoint_epoch) continue;  // below the replay base
    auto snap = res.service->snapshot_at(e);
    ASSERT_TRUE(snap) << "epoch " << e;
    persist::ByteWriter pr;
    persist::SnapshotCodec::encode_shard(snap->shard(0), pr);
    EXPECT_EQ(pr.bytes(), bytes) << "epoch " << e;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
  res.service.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dynsld::engine
