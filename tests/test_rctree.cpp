// RC tree tests: randomized cross-check of connectivity, component
// aggregates, path decomposition, path queries (max edge, length,
// select, PWS, median) and dynamic link/cut against a brute-force
// forest; plus hierarchy-shape checks (O(log n) height).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "parallel/random.hpp"
#include "rctree/rc_tree.hpp"

namespace dynsld::rctree {
namespace {

using par::Rng;

struct BruteForest {
  explicit BruteForest(int n) : adj(n) {}
  std::vector<std::set<std::pair<int, double>>> adj;  // (nbr, edge weight)

  void link(int u, int v, double w) {
    adj[u].insert({v, w});
    adj[v].insert({u, w});
  }
  void cut(int u, int v) {
    auto drop = [&](int a, int b) {
      for (auto it = adj[a].begin(); it != adj[a].end(); ++it) {
        if (it->first == b) {
          adj[a].erase(it);
          return;
        }
      }
    };
    drop(u, v);
    drop(v, u);
  }
  std::vector<int> path(int u, int v) const {
    std::vector<int> par(adj.size(), -2);
    std::vector<int> q{u};
    par[u] = -1;
    for (size_t h = 0; h < q.size(); ++h) {
      for (auto [y, w] : adj[q[h]]) {
        (void)w;
        if (par[y] == -2) {
          par[y] = q[h];
          q.push_back(y);
        }
      }
    }
    if (par[v] == -2) return {};
    std::vector<int> p;
    for (int x = v; x != -1; x = par[x]) p.push_back(x);
    std::reverse(p.begin(), p.end());
    return p;
  }
  std::vector<int> component(int u) const {
    std::vector<char> seen(adj.size(), 0);
    std::vector<int> q{u};
    seen[u] = 1;
    for (size_t h = 0; h < q.size(); ++h) {
      for (auto [y, w] : adj[q[h]]) {
        (void)w;
        if (!seen[y]) {
          seen[y] = 1;
          q.push_back(y);
        }
      }
    }
    return q;
  }
  double edge_weight(int u, int v) const {
    for (auto [y, w] : adj[u]) {
      if (y == v) return w;
    }
    return -1;
  }
};

TEST(RcTree, SmallPathManual) {
  RcTree t(5);
  for (vertex_id v = 0; v < 5; ++v) {
    t.set_vertex_weight(v, Rank{static_cast<double>(v + 1), v});
  }
  t.link(0, 1, Rank{10, 0});
  t.link(1, 2, Rank{20, 1});
  t.link(2, 3, Rank{30, 2});
  t.link(3, 4, Rank{40, 3});
  EXPECT_TRUE(t.connected(0, 4));
  EXPECT_EQ(t.component_size(2), 5u);
  EXPECT_EQ(t.component_argmax(0), 4u);  // weight 5 at vertex 4
  EXPECT_EQ(t.path_length(0, 4), 5u);
  EXPECT_EQ(t.path_length(1, 3), 3u);
  EXPECT_EQ(t.path_max_edge(0, 4).weight, 40.0);
  EXPECT_EQ(t.path_max_edge(0, 2).weight, 20.0);
  auto verts = t.path_vertices(0, 4);
  EXPECT_EQ(verts, (std::vector<vertex_id>{0, 1, 2, 3, 4}));
  auto rev = t.path_vertices(4, 1);
  EXPECT_EQ(rev, (std::vector<vertex_id>{4, 3, 2, 1}));
  // Monotone weights along 0..4: PWS.
  EXPECT_EQ(t.path_weight_search(0, 4, Rank{3.5, 0}), 2u);
  EXPECT_EQ(t.path_weight_search(0, 4, Rank{100, 0}), 4u);
  EXPECT_EQ(t.path_weight_search(0, 4, Rank{0.5, 0}), kNoVertex);
  EXPECT_EQ(t.path_median(0, 4), 2u);
  t.cut(2, 3);
  EXPECT_FALSE(t.connected(0, 4));
  EXPECT_EQ(t.component_size(0), 3u);
  EXPECT_EQ(t.component_size(4), 2u);
}

TEST(RcTree, StarAndRelink) {
  RcTree t(8);
  for (vertex_id v = 0; v < 8; ++v) {
    t.set_vertex_weight(v, Rank{static_cast<double>(v), v});
  }
  for (vertex_id v = 1; v < 8; ++v) {
    t.link(0, v, Rank{static_cast<double>(v), v});
  }
  EXPECT_EQ(t.component_size(0), 8u);
  EXPECT_EQ(t.path_length(3, 5), 3u);  // 3 - 0 - 5
  EXPECT_EQ(t.path_max_edge(3, 5), (Rank{5.0, 5}));
  t.cut(0, 3);
  EXPECT_FALSE(t.connected(3, 5));
  t.link(3, 5, Rank{99, 100});
  EXPECT_TRUE(t.connected(3, 0));
  EXPECT_EQ(t.path_length(3, 0), 3u);  // 3 - 5 - 0
  EXPECT_EQ(t.path_max_edge(3, 0), (Rank{99.0, 100}));
}

class RcRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RcRandom, MatchesBruteForest) {
  const int n = 48;
  Rng rng(GetParam());
  RcTree t(n);
  BruteForest b(n);
  std::vector<Rank> vw(n);
  for (int v = 0; v < n; ++v) {
    vw[v] = Rank{static_cast<double>(rng.next_bounded(100000)),
                 static_cast<edge_id>(v)};
    t.set_vertex_weight(static_cast<vertex_id>(v), vw[v]);
  }
  std::vector<std::pair<int, int>> edges;
  edge_id next_eid = 1000;
  for (int step = 0; step < 500; ++step) {
    int u = static_cast<int>(rng.next_bounded(n));
    int v = static_cast<int>(rng.next_bounded(n));
    uint64_t op = rng.next_bounded(12);
    if (op < 5) {
      if (u != v && b.path(u, v).empty()) {
        double w = static_cast<double>(rng.next_bounded(100000));
        t.link(static_cast<vertex_id>(u), static_cast<vertex_id>(v),
               Rank{w, next_eid++});
        b.link(u, v, w);
        edges.emplace_back(u, v);
      }
    } else if (op < 7 && !edges.empty()) {
      size_t i = rng.next_bounded(edges.size());
      auto [x, y] = edges[i];
      t.cut(static_cast<vertex_id>(x), static_cast<vertex_id>(y));
      b.cut(x, y);
      edges.erase(edges.begin() + static_cast<long>(i));
    } else if (op < 8) {
      auto p = b.path(u, v);
      EXPECT_EQ(t.connected(static_cast<vertex_id>(u), static_cast<vertex_id>(v)),
                !p.empty() || u == v)
          << "step " << step;
    } else if (op < 9) {
      auto comp = b.component(u);
      EXPECT_EQ(t.component_size(static_cast<vertex_id>(u)), comp.size())
          << "step " << step;
      // argmax over component vertex weights
      int want = comp[0];
      for (int x : comp) {
        if (vw[want] < vw[x]) want = x;
      }
      EXPECT_EQ(t.component_argmax(static_cast<vertex_id>(u)),
                static_cast<vertex_id>(want))
          << "step " << step;
    } else {
      auto p = b.path(u, v);
      if (p.empty()) continue;
      // path vertices + length
      auto got = t.path_vertices(static_cast<vertex_id>(u),
                                 static_cast<vertex_id>(v));
      std::vector<vertex_id> want(p.begin(), p.end());
      EXPECT_EQ(got, want) << "step " << step;
      EXPECT_EQ(t.path_length(static_cast<vertex_id>(u),
                              static_cast<vertex_id>(v)),
                p.size());
      if (p.size() >= 2) {
        double wmax = -1;
        for (size_t i = 0; i + 1 < p.size(); ++i) {
          wmax = std::max(wmax, b.edge_weight(p[i], p[i + 1]));
        }
        EXPECT_EQ(t.path_max_edge(static_cast<vertex_id>(u),
                                  static_cast<vertex_id>(v))
                      .weight,
                  wmax)
            << "step " << step;
      }
      // select every index
      for (size_t k = 0; k < p.size(); ++k) {
        EXPECT_EQ(t.path_select(static_cast<vertex_id>(u),
                                static_cast<vertex_id>(v), k),
                  static_cast<vertex_id>(p[k]))
            << "step " << step << " k " << k;
      }
      EXPECT_EQ(t.path_median(static_cast<vertex_id>(u),
                              static_cast<vertex_id>(v)),
                static_cast<vertex_id>(p[p.size() / 2]));
    }
    if (step % 100 == 0) t.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcRandom, ::testing::Range<uint64_t>(1, 11));

TEST(RcTree, PwsOnMonotonePaths) {
  // Build a path whose vertex weights increase; query PWS exhaustively.
  const int n = 64;
  RcTree t(n);
  Rng rng(5);
  std::vector<double> w(n);
  double acc = 0;
  for (int v = 0; v < n; ++v) {
    acc += 1 + static_cast<double>(rng.next_bounded(10));
    w[v] = acc;
    t.set_vertex_weight(static_cast<vertex_id>(v),
                        Rank{acc, static_cast<edge_id>(v)});
  }
  for (int v = 0; v + 1 < n; ++v) {
    t.link(static_cast<vertex_id>(v), static_cast<vertex_id>(v + 1),
           Rank{0, static_cast<edge_id>(1000 + v)});
  }
  for (int lo = 0; lo < n; lo += 7) {
    for (int hi = lo; hi < n; hi += 5) {
      for (double q : {w[lo] - 0.5, w[lo] + 0.5, (w[lo] + w[hi]) / 2,
                       w[hi] + 0.5}) {
        vertex_id want = kNoVertex;
        for (int x = lo; x <= hi; ++x) {
          if (w[x] < q) want = static_cast<vertex_id>(x);
        }
        EXPECT_EQ(t.path_weight_search(static_cast<vertex_id>(lo),
                                       static_cast<vertex_id>(hi),
                                       Rank{q, 0}),
                  want)
            << lo << ".." << hi << " q=" << q;
      }
    }
  }
}

TEST(RcTree, HierarchyHeightLogarithmic) {
  // A long path is the adversarial case for contraction depth.
  const int n = 4096;
  RcTree t(n);
  for (int v = 0; v + 1 < n; ++v) {
    t.link(static_cast<vertex_id>(v), static_cast<vertex_id>(v + 1),
           Rank{1.0, static_cast<edge_id>(v)});
  }
  // Expected O(log n) rounds; allow a generous constant.
  EXPECT_LE(t.hierarchy_height(), 80u);
  t.check_invariants();
}

TEST(RcForest, RootedAdapterBasics) {
  RcForest f;
  // Chain 0 <- 1 <- 2 (ranks increase upward: parent has higher rank).
  for (edge_id e = 0; e < 6; ++e) {
    f.add_node(e, Rank{static_cast<double>(e + 1), e});
  }
  f.link_to_parent(0, 1);
  f.link_to_parent(1, 2);
  f.link_to_parent(3, 4);
  EXPECT_EQ(f.root_of(0), 2u);
  EXPECT_EQ(f.root_of(3), 4u);
  EXPECT_EQ(f.spine_length(0), 3u);
  EXPECT_EQ(f.spine(0), (std::vector<edge_id>{0, 1, 2}));
  EXPECT_EQ(f.spine_search_below(0, Rank{2.5, 0}), 1u);
  EXPECT_EQ(f.spine_search_below(0, Rank{0.5, 0}), kNoEdge);
  EXPECT_EQ(f.spine_select_from_top(0, 0), 2u);
  EXPECT_EQ(f.spine_select_from_top(0, 2), 0u);
  EXPECT_EQ(f.subtree_size(2), 3u);
  EXPECT_EQ(f.subtree_size(1), 2u);
  EXPECT_EQ(f.subtree_size(0), 1u);
  f.cut_from_parent(1);
  EXPECT_EQ(f.root_of(0), 1u);
  EXPECT_EQ(f.spine_length(0), 2u);
}

}  // namespace
}  // namespace dynsld::rctree
