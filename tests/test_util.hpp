// Shared test helpers: brute-force oracles and dendrogram comparison.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "dendrogram/dendrogram.hpp"
#include "graph/types.hpp"

namespace dynsld::test {

/// Brute-force SLD straight from the definition: simulate agglomerative
/// clustering with explicit vertex sets, merging edges in rank order.
/// O(n^2) — for validating build_kruskal on small instances.
inline Dendrogram build_brute(vertex_id n, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.rank() < b.rank();
            });
  edge_id max_id = 0;
  for (const auto& e : edges) max_id = std::max(max_id, e.id);
  Dendrogram d(edges.empty() ? 0 : static_cast<size_t>(max_id) + 1);
  // cluster of each vertex: set of members + current top node.
  std::map<vertex_id, std::set<vertex_id>> clusters;
  std::map<vertex_id, edge_id> top;  // keyed by cluster representative
  std::vector<vertex_id> rep(n);
  std::iota(rep.begin(), rep.end(), vertex_id{0});
  for (vertex_id v = 0; v < n; ++v) clusters[v] = {v};
  for (const auto& e : edges) {
    d.add_node(e);
    vertex_id ra = rep[e.u], rb = rep[e.v];
    EXPECT_NE(ra, rb) << "input not a forest";
    if (top.count(ra)) d.set_parent(top[ra], e.id);
    if (top.count(rb)) d.set_parent(top[rb], e.id);
    for (vertex_id m : clusters[rb]) {
      clusters[ra].insert(m);
      rep[m] = ra;
    }
    clusters.erase(rb);
    top.erase(rb);
    top[ra] = e.id;
  }
  return d;
}

/// Pretty diff of two dendrograms for failure messages.
inline std::string describe_diff(const Dendrogram& got, const Dendrogram& want) {
  std::ostringstream os;
  size_t cap = std::max(got.capacity(), want.capacity());
  int shown = 0;
  for (edge_id e = 0; e < cap && shown < 12; ++e) {
    bool ga = got.alive(e), wa = want.alive(e);
    if (ga != wa) {
      os << "node " << e << ": alive " << ga << " vs " << wa << "\n";
      ++shown;
      continue;
    }
    if (!ga) continue;
    if (got.parent(e) != want.parent(e)) {
      os << "node " << e << " (w=" << got.node(e).weight << "): parent "
         << static_cast<int64_t>(got.parent(e) == kNoEdge ? -1 : got.parent(e))
         << " vs "
         << static_cast<int64_t>(want.parent(e) == kNoEdge ? -1 : want.parent(e))
         << "\n";
      ++shown;
    }
  }
  return os.str();
}

#define EXPECT_DENDRO_EQ(got, want) \
  EXPECT_TRUE((got) == (want)) << dynsld::test::describe_diff((got), (want))

#define ASSERT_DENDRO_EQ(got, want) \
  ASSERT_TRUE((got) == (want)) << dynsld::test::describe_diff((got), (want))

}  // namespace dynsld::test
