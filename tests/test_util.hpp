// Shared test helpers: brute-force oracles, the Kruskal reference
// partition, dendrogram comparison, and deterministic per-test
// randomness. Both the unit tests and the randomized differential
// harness (test_fuzz_engine.cpp) build on these.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dendrogram/dendrogram.hpp"
#include "dendrogram/static_sld.hpp"
#include "engine/query.hpp"
#include "graph/types.hpp"
#include "parallel/random.hpp"

namespace dynsld::test {

/// Deterministic per-test RNG: seeded from the running test's full name
/// (plus an optional salt), so every test gets an independent but
/// reproducible stream and reordering tests never perturbs another
/// test's randomness.
inline par::Rng test_rng(uint64_t salt = 0) {
  uint64_t h = 0xcbf29ce484222325ULL ^ salt;  // FNV-1a over the test name
  if (const auto* info = ::testing::UnitTest::GetInstance()->current_test_info()) {
    std::string name = std::string(info->test_suite_name()) + "." + info->name();
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  }
  return par::Rng(h);
}

/// Uniform pair of distinct vertices in [0, n).
inline std::pair<vertex_id, vertex_id> random_distinct_pair(par::Rng& rng,
                                                            vertex_id n) {
  vertex_id u = static_cast<vertex_id>(rng.next_bounded(n)), v;
  do {
    v = static_cast<vertex_id>(rng.next_bounded(n));
  } while (v == u);
  return {u, v};
}

/// Uniform pair of distinct vertices inside the block [base, base+size).
inline std::pair<vertex_id, vertex_id> random_block_pair(par::Rng& rng,
                                                         vertex_id base,
                                                         vertex_id size) {
  vertex_id u = base + static_cast<vertex_id>(rng.next_bounded(size)), v;
  do {
    v = base + static_cast<vertex_id>(rng.next_bounded(size));
  } while (v == u);
  return {u, v};
}

/// Reference partition at threshold tau from the Kruskal-built SLD of
/// `edges`: label[v] = component representative. The captured edge set
/// is a graph (it includes cycle-closing edges), while build_kruskal
/// takes a forest, so first reduce to the MSF under (weight, id) order
/// — dropping a cycle edge never changes threshold components, because
/// its endpoints are already connected by edges of smaller rank.
inline std::vector<vertex_id> reference_labels(
    vertex_id n, const std::vector<WeightedEdge>& edges, double tau) {
  std::vector<WeightedEdge> sorted(edges);
  std::sort(sorted.begin(), sorted.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.rank() < b.rank();
            });
  std::vector<WeightedEdge> forest;
  {
    UnionFind uf(n);
    for (const WeightedEdge& e : sorted) {
      if (uf.find(e.u) != uf.find(e.v)) {
        uf.unite(e.u, e.v);
        forest.push_back(e);
      }
    }
  }
  Dendrogram ref = build_kruskal(n, forest);
  UnionFind uf(n);
  for (edge_id e = 0; e < ref.capacity(); ++e) {
    if (!ref.alive(e)) continue;
    const auto& nd = ref.node(e);
    if (nd.weight <= tau) uf.unite(nd.u, nd.v);
  }
  std::vector<vertex_id> label(n);
  for (vertex_id v = 0; v < n; ++v) label[v] = uf.find(v);
  return label;
}

/// Same partition? (Labels themselves may differ.)
inline void expect_same_partition(const std::vector<vertex_id>& a,
                                  const std::vector<vertex_id>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<vertex_id, vertex_id> a2b, b2a;
  for (size_t v = 0; v < a.size(); ++v) {
    auto [ia, fresh_a] = a2b.try_emplace(a[v], b[v]);
    EXPECT_EQ(ia->second, b[v]) << "vertex " << v;
    auto [ib, fresh_b] = b2a.try_emplace(b[v], a[v]);
    EXPECT_EQ(ib->second, a[v]) << "vertex " << v;
  }
}

/// |cluster of u| under a reference labeling.
inline uint64_t ref_cluster_size(const std::vector<vertex_id>& label,
                                 vertex_id u) {
  uint64_t k = 0;
  for (vertex_id l : label) k += l == label[u];
  return k;
}

/// Cluster-size histogram of a reference labeling.
inline engine::SizeHistogram ref_histogram(const std::vector<vertex_id>& label) {
  std::map<vertex_id, uint64_t> csize;
  for (vertex_id l : label) ++csize[l];
  std::map<uint64_t, uint64_t> hist;
  for (const auto& [l, s] : csize) ++hist[s];
  engine::SizeHistogram out;
  out.bins.assign(hist.begin(), hist.end());
  return out;
}

/// Brute-force SLD straight from the definition: simulate agglomerative
/// clustering with explicit vertex sets, merging edges in rank order.
/// O(n^2) — for validating build_kruskal on small instances.
inline Dendrogram build_brute(vertex_id n, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.rank() < b.rank();
            });
  edge_id max_id = 0;
  for (const auto& e : edges) max_id = std::max(max_id, e.id);
  Dendrogram d(edges.empty() ? 0 : static_cast<size_t>(max_id) + 1);
  // cluster of each vertex: set of members + current top node.
  std::map<vertex_id, std::set<vertex_id>> clusters;
  std::map<vertex_id, edge_id> top;  // keyed by cluster representative
  std::vector<vertex_id> rep(n);
  std::iota(rep.begin(), rep.end(), vertex_id{0});
  for (vertex_id v = 0; v < n; ++v) clusters[v] = {v};
  for (const auto& e : edges) {
    d.add_node(e);
    vertex_id ra = rep[e.u], rb = rep[e.v];
    EXPECT_NE(ra, rb) << "input not a forest";
    if (top.count(ra)) d.set_parent(top[ra], e.id);
    if (top.count(rb)) d.set_parent(top[rb], e.id);
    for (vertex_id m : clusters[rb]) {
      clusters[ra].insert(m);
      rep[m] = ra;
    }
    clusters.erase(rb);
    top.erase(rb);
    top[ra] = e.id;
  }
  return d;
}

/// Pretty diff of two dendrograms for failure messages.
inline std::string describe_diff(const Dendrogram& got, const Dendrogram& want) {
  std::ostringstream os;
  size_t cap = std::max(got.capacity(), want.capacity());
  int shown = 0;
  for (edge_id e = 0; e < cap && shown < 12; ++e) {
    bool ga = got.alive(e), wa = want.alive(e);
    if (ga != wa) {
      os << "node " << e << ": alive " << ga << " vs " << wa << "\n";
      ++shown;
      continue;
    }
    if (!ga) continue;
    if (got.parent(e) != want.parent(e)) {
      os << "node " << e << " (w=" << got.node(e).weight << "): parent "
         << static_cast<int64_t>(got.parent(e) == kNoEdge ? -1 : got.parent(e))
         << " vs "
         << static_cast<int64_t>(want.parent(e) == kNoEdge ? -1 : want.parent(e))
         << "\n";
      ++shown;
    }
  }
  return os.str();
}

#define EXPECT_DENDRO_EQ(got, want) \
  EXPECT_TRUE((got) == (want)) << dynsld::test::describe_diff((got), (want))

#define ASSERT_DENDRO_EQ(got, want) \
  ASSERT_TRUE((got) == (want)) << dynsld::test::describe_diff((got), (want))

}  // namespace dynsld::test
