// Engine tests: epoch snapshots, update coalescing, sharded routing,
// and the concurrent-reader stress test. The ground truth throughout is
// the static Kruskal construction (build_kruskal) over an epoch's
// captured edge set: single-linkage clusters at threshold tau are the
// connected components of the sub-tau edges, so partitions derived from
// the reference dendrogram must match every engine answer exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "dendrogram/static_sld.hpp"
#include "engine/cluster_view.hpp"
#include "engine/mutation_queue.hpp"
#include "engine/query.hpp"
#include "engine/replay.hpp"
#include "engine/sld_service.hpp"
#include "engine/snapshot.hpp"
#include "engine/subscription.hpp"
#include "msf/dynamic_msf.hpp"
#include "parallel/random.hpp"
#include "test_util.hpp"

namespace dynsld::engine {
namespace {

// Kruskal-reference oracles shared with the fuzz harness
// (test_fuzz_engine.cpp) live in test_util.hpp.
using test::expect_same_partition;
using test::ref_cluster_size;
using test::ref_histogram;
using test::reference_labels;

TEST(DendrogramSnapshot, MatchesLiveQueriesOnRandomForest) {
  const vertex_id n = 60;
  par::Rng rng(7);
  DynamicClustering dc(n);
  std::vector<uint32_t> handles;
  for (int i = 0; i < 150; ++i) {
    vertex_id u = rng.next_bounded(n), v;
    do {
      v = rng.next_bounded(n);
    } while (v == u);
    handles.push_back(dc.insert_edge(u, v, rng.next_double()));
    if (i % 5 == 0 && !handles.empty()) {
      uint32_t h = handles[rng.next_bounded(handles.size())];
      if (dc.edge_alive(h)) dc.erase_edge(h);
    }
  }
  auto snap = DendrogramSnapshot::build(dc.sld());
  for (double tau : {0.0, 0.05, 0.2, 0.4, 0.6, 0.85, 1.0}) {
    auto live = dc.sld().flat_clustering(tau);
    auto frozen = snap->flat_clustering(tau);
    expect_same_partition(live, frozen);
    for (vertex_id u = 0; u < n; ++u) {
      EXPECT_EQ(snap->cluster_size(u, tau), dc.sld().cluster_size(u, tau))
          << "u=" << u << " tau=" << tau;
      auto rep = snap->cluster_report(u, tau);
      EXPECT_EQ(rep.size(), snap->cluster_size(u, tau));
    }
    for (int q = 0; q < 200; ++q) {
      vertex_id s = rng.next_bounded(n), t = rng.next_bounded(n);
      EXPECT_EQ(snap->same_cluster(s, t, tau), dc.sld().same_cluster(s, t, tau));
    }
  }
}

TEST(MutationQueue, CoalescesInsertErasePairs) {
  EngineStats stats;
  MutationQueue q(&stats);
  ticket_t a = q.enqueue_insert(0, 1, 0.5);
  ticket_t b = q.enqueue_insert(1, 2, 0.25);
  EXPECT_EQ(q.pending(), 2u);
  // Erasing a pending insert annihilates in the queue.
  EXPECT_FALSE(q.enqueue_erase(a));
  EXPECT_EQ(q.pending(), 1u);
  auto d = q.drain();
  ASSERT_EQ(d.inserts.size(), 1u);
  EXPECT_EQ(d.inserts[0].ticket, b);
  EXPECT_TRUE(d.erases.empty());
  EXPECT_EQ(stats.coalesced_pairs.load(), 1u);

  // An applied ticket's erase is queued; a duplicate is dropped.
  EXPECT_TRUE(q.enqueue_erase(b));
  EXPECT_FALSE(q.enqueue_erase(b));
  d = q.drain();
  ASSERT_EQ(d.erases.size(), 1u);
  EXPECT_EQ(d.erases[0].ticket, b);
  // The queued erase carries its ledger-resolved endpoints.
  EXPECT_EQ(d.erases[0].u, 1u);
  EXPECT_EQ(d.erases[0].v, 2u);
  EXPECT_EQ(stats.duplicate_erases.load(), 1u);
}

/// Ticket-ledger edge cases around the batch dirty set: annihilation
/// must leave the dirty set empty, double erases must not double-mark,
/// and re-insert-after-erase inside one batch dirties the shard exactly
/// once through both ops.
TEST(MutationQueue, AnnihilationLeavesDirtySetEmpty) {
  const ShardMap map = ShardMap::make(40, 2);  // stride 20
  EngineStats stats;
  MutationQueue q(&stats);

  // Erase-by-endpoints of a not-yet-flushed insert: annihilates in the
  // queue; the drained batch is empty and dirties nothing.
  q.enqueue_insert(1, 2, 0.5);
  EXPECT_TRUE(q.enqueue_erase(vertex_id{1}, vertex_id{2}));
  auto d = q.drain();
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.dirty_set(map).any());
  EXPECT_EQ(stats.coalesced_pairs.load(), 1u);

  // Same via ticket, cross-shard edge: still nothing reaches the
  // shards, and the cross flag stays clear.
  ticket_t t = q.enqueue_insert(3, 25, 0.7);
  q.enqueue_erase(t);
  d = q.drain();
  EXPECT_TRUE(d.empty());
  auto dirty = d.dirty_set(map);
  EXPECT_FALSE(dirty.any());
  EXPECT_FALSE(dirty.cross);
}

TEST(MutationQueue, DoubleEraseMarksDirtyOnce) {
  const ShardMap map = ShardMap::make(40, 2);
  EngineStats stats;
  MutationQueue q(&stats);
  ticket_t t = q.enqueue_insert(21, 22, 0.4);  // shard 1
  (void)q.drain();                             // "applied"
  EXPECT_TRUE(q.enqueue_erase(t));
  EXPECT_FALSE(q.enqueue_erase(t));                           // duplicate ticket
  EXPECT_FALSE(q.enqueue_erase(vertex_id{21}, vertex_id{22}));  // ledger gone
  auto d = q.drain();
  ASSERT_EQ(d.erases.size(), 1u);
  EXPECT_EQ(d.erases[0].u, 21u);
  auto dirty = d.dirty_set(map);
  EXPECT_EQ(dirty.shards[0], 0);
  EXPECT_EQ(dirty.shards[1], 1);
  EXPECT_FALSE(dirty.cross);
  // Counter triple: the real erase and its ticket-duplicate both count
  // as enqueued erase traffic; the endpoint-ledger miss enqueued
  // NOTHING, so it must not inflate either of those — it gets its own
  // counter (a miss used to bump erases_enqueued AND duplicate_erases).
  EXPECT_EQ(stats.erases_enqueued.load(), 2u);
  EXPECT_EQ(stats.duplicate_erases.load(), 1u);
  EXPECT_EQ(stats.erase_ledger_misses.load(), 1u);
}

TEST(MutationQueue, LedgerMissCountsOnlyTheMissCounter) {
  EngineStats stats;
  MutationQueue q(&stats);
  // No insertion of (3, 4) ever happened: pure miss.
  EXPECT_FALSE(q.enqueue_erase(vertex_id{3}, vertex_id{4}));
  EXPECT_EQ(stats.erases_enqueued.load(), 0u);
  EXPECT_EQ(stats.duplicate_erases.load(), 0u);
  EXPECT_EQ(stats.erase_ledger_misses.load(), 1u);
  // A hit right after still counts normally.
  ticket_t t = q.enqueue_insert(3, 4, 0.5);
  (void)q.drain();
  EXPECT_TRUE(q.enqueue_erase(vertex_id{3}, vertex_id{4}));
  EXPECT_EQ(stats.erases_enqueued.load(), 1u);
  EXPECT_EQ(stats.erase_ledger_misses.load(), 1u);
  (void)t;
}

/// Patch-viability fallback: a batch that guts more than half a shard
/// fails the exact re-check at materialization and falls back to a full
/// rebuild (counted, and visible per-shard in the epoch delta); the
/// next small batch patches again.
TEST(ShardRouter, PatchViabilityFallbackOnLargeCut) {
  ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.num_shards = 1;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  std::vector<ticket_t> ts;
  for (vertex_id v = 0; v + 1 < 32; ++v)
    ts.push_back(svc.insert(v, v + 1, rng.next_double()));
  svc.flush();

  for (size_t i = 0; i < 20; ++i) svc.erase(ts[i]);  // > half the shard
  svc.flush();
  auto r = svc.stats();
  EXPECT_GE(r.shard_patch_fallbacks, 1u);
  {
    const EpochDelta& dl = svc.snapshot()->delta();
    ASSERT_EQ(dl.shard_patch.size(), 1u);
    EXPECT_EQ(dl.shard_patch[0].mode, 0);
    EXPECT_EQ(dl.shard_patch[0].fallback, 1);
  }

  svc.insert(0, 31, 0.9);  // small follow-up batch
  svc.flush();
  EXPECT_GT(svc.stats().shard_snapshots_patched, 0u);
  {
    const EpochDelta& dl = svc.snapshot()->delta();
    ASSERT_EQ(dl.shard_patch.size(), 1u);
    EXPECT_EQ(dl.shard_patch[0].mode, 1);
    EXPECT_EQ(dl.shard_patch[0].fallback, 0);
  }
}

TEST(MutationQueue, ReinsertAfterEraseInOneBatch) {
  const ShardMap map = ShardMap::make(40, 2);
  MutationQueue q;
  ticket_t old_t = q.enqueue_insert(5, 6, 0.9);
  (void)q.drain();  // applied in an earlier epoch

  // One batch: erase the applied copy, then insert a replacement.
  EXPECT_TRUE(q.enqueue_erase(vertex_id{5}, vertex_id{6}));
  ticket_t new_t = q.enqueue_insert(5, 6, 0.2);
  auto d = q.drain();
  ASSERT_EQ(d.inserts.size(), 1u);
  ASSERT_EQ(d.erases.size(), 1u);
  EXPECT_EQ(d.erases[0].ticket, old_t);
  EXPECT_EQ(d.inserts[0].ticket, new_t);
  auto dirty = d.dirty_set(map);
  EXPECT_EQ(dirty.shards[0], 1);
  EXPECT_EQ(dirty.shards[1], 0);
  // The replacement is the live (5, 6) copy now.
  EXPECT_TRUE(q.enqueue_erase(vertex_id{6}, vertex_id{5}));
  EXPECT_FALSE(q.enqueue_erase(vertex_id{5}, vertex_id{6}));
}

/// Service-level annihilation: a churn-only batch publishes no epoch,
/// so subscribers are not notified and nothing refreshes.
TEST(SldService, AnnihilatedBatchPublishesNoEpoch) {
  ServiceConfig cfg;
  cfg.num_vertices = 16;
  SldService svc(cfg);
  int notified = 0;
  SubscribedView sub(svc, [&](uint64_t) { ++notified; });
  uint64_t before = svc.epoch();
  ticket_t t = svc.insert(2, 3, 0.5);
  svc.erase(t);
  EXPECT_EQ(svc.flush(), before);  // empty batch: same epoch
  EXPECT_EQ(notified, 0);
  EXPECT_FALSE(sub.stale());
  EXPECT_EQ(svc.stats().subs_notified, 0u);
}

TEST(MutationQueue, PreservesInsertOrder) {
  MutationQueue q;
  for (int i = 0; i < 10; ++i)
    q.enqueue_insert(static_cast<vertex_id>(i), static_cast<vertex_id>(i + 1),
                     i * 0.1);
  auto d = q.drain();
  ASSERT_EQ(d.inserts.size(), 10u);
  for (int i = 1; i < 10; ++i)
    EXPECT_LT(d.inserts[i - 1].ticket, d.inserts[i].ticket);
}

/// Single-shard service vs the Kruskal reference across random flush
/// points (insert/erase mix with cycles, swaps, and replacements).
TEST(SldService, MatchesReferenceAcrossEpochs) {
  const vertex_id n = 48;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 1;
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng(2025);
  std::vector<ticket_t> live;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.next_double() < 0.3) {
      size_t j = rng.next_bounded(live.size());
      svc.erase(live[j]);
      live[j] = live.back();
      live.pop_back();
    } else {
      vertex_id u = rng.next_bounded(n), v;
      do {
        v = rng.next_bounded(n);
      } while (v == u);
      live.push_back(svc.insert(u, v, rng.next_double()));
    }
    if (rng.next_double() < 0.15) {
      svc.flush();
      auto snap = svc.snapshot();
      for (double tau : {0.1, 0.35, 0.7}) {
        auto ref = reference_labels(n, snap->captured_edges(), tau);
        expect_same_partition(ref, snap->flat_clustering(tau));
        for (int q = 0; q < 30; ++q) {
          vertex_id s = rng.next_bounded(n), t = rng.next_bounded(n);
          EXPECT_EQ(snap->same_cluster(s, t, tau), ref[s] == ref[t]);
        }
        vertex_id u = rng.next_bounded(n);
        EXPECT_EQ(snap->cluster_size(u, tau), ref_cluster_size(ref, u));
      }
    }
  }
}

/// Sharded service (intra + cross edges) vs the same reference.
TEST(SldService, ShardedMatchesReference) {
  const vertex_id n = 60;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 3;
  cfg.capture_edges = true;
  SldService svc(cfg);
  EXPECT_EQ(svc.num_shards(), 3);
  par::Rng rng(99);
  std::vector<ticket_t> live;
  for (int step = 0; step < 500; ++step) {
    if (!live.empty() && rng.next_double() < 0.3) {
      size_t j = rng.next_bounded(live.size());
      svc.erase(live[j]);
      live[j] = live.back();
      live.pop_back();
    } else {
      // 70% intra-block (block = 20 = shard stride), 30% cross.
      vertex_id u = rng.next_bounded(n), v;
      if (rng.next_double() < 0.7) {
        vertex_id base = (u / 20) * 20;
        do {
          v = base + rng.next_bounded(20);
        } while (v == u);
      } else {
        do {
          v = rng.next_bounded(n);
        } while (v == u);
      }
      live.push_back(svc.insert(u, v, rng.next_double()));
    }
    if (step % 40 == 39) {
      svc.flush();
      auto snap = svc.snapshot();
      for (double tau : {0.15, 0.5, 0.9}) {
        auto ref = reference_labels(n, snap->captured_edges(), tau);
        expect_same_partition(ref, snap->flat_clustering(tau));
        for (int q = 0; q < 40; ++q) {
          vertex_id s = rng.next_bounded(n), t = rng.next_bounded(n);
          EXPECT_EQ(snap->same_cluster(s, t, tau), ref[s] == ref[t])
              << "s=" << s << " t=" << t << " tau=" << tau;
        }
        for (int q = 0; q < 10; ++q) {
          vertex_id u = rng.next_bounded(n);
          EXPECT_EQ(snap->cluster_size(u, tau), ref_cluster_size(ref, u));
          auto rep = snap->cluster_report(u, tau);
          EXPECT_EQ(rep.size(), ref_cluster_size(ref, u));
        }
      }
    }
  }
  auto r = svc.stats();
  EXPECT_GT(r.cross_ops, 0u);
}

/// An epoch reuses the per-shard snapshots of shards it did not touch.
TEST(SldService, UntouchedShardSnapshotsAreReused) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;  // stride 20: shard 0 = [0,20), shard 1 = [20,40)
  cfg.num_shards = 2;
  SldService svc(cfg);
  svc.insert(1, 2, 0.3);
  svc.flush();
  auto before = svc.snapshot();
  svc.insert(21, 22, 0.4);  // touches only shard 1
  svc.flush();
  auto after = svc.snapshot();
  EXPECT_EQ(&before->shard(0), &after->shard(0));  // pointer-identical reuse
  EXPECT_NE(&before->shard(1), &after->shard(1));
  EXPECT_GT(svc.stats().shard_snapshots_reused, 0u);
}

TEST(SldService, CoalescedChurnNeverReachesShards) {
  ServiceConfig cfg;
  cfg.num_vertices = 10;
  SldService svc(cfg);
  for (int i = 0; i < 100; ++i) {
    ticket_t t = svc.insert(0, 1 + (i % 5), 0.5);
    svc.erase(t);  // annihilates in the queue
  }
  svc.flush();
  auto r = svc.stats();
  EXPECT_EQ(r.coalesced_pairs, 100u);
  EXPECT_EQ(r.ops_applied, 0u);
  EXPECT_EQ(svc.snapshot()->num_tree_edges(), 0u);
}

/// The acceptance stress test: N reader threads issue threshold /
/// cluster-size / flat-clustering queries against epoch snapshots while
/// a writer streams coalesced batches through flush(); every answer is
/// checked against the Kruskal reference of that epoch's captured edge
/// set. Snapshot consistency means a reader's answers agree with the
/// reference even when many epochs are published mid-query-loop.
TEST(SldService, StressReadersVsWriterMatchKruskalReference) {
  const vertex_id n = 80;
  const int kReaders = 4;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 2;
  cfg.capture_edges = true;
  SldService svc(cfg);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> checks{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      par::Rng rng(1234 + r);
      // Per-epoch reference cache (epochs repeat across iterations).
      std::map<uint64_t, std::map<double, std::vector<vertex_id>>> cache;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = svc.snapshot();
        double tau = (1 + rng.next_bounded(9)) * 0.1;
        auto& ref = cache[snap->epoch()][tau];
        if (ref.empty())
          ref = reference_labels(n, snap->captured_edges(), tau);
        vertex_id s = rng.next_bounded(n), t = rng.next_bounded(n);
        ASSERT_EQ(snap->same_cluster(s, t, tau), ref[s] == ref[t])
            << "epoch " << snap->epoch() << " tau " << tau;
        ASSERT_EQ(snap->cluster_size(s, tau), ref_cluster_size(ref, s));
        expect_same_partition(ref, snap->flat_clustering(tau));
        checks.fetch_add(1, std::memory_order_relaxed);
        if (cache.size() > 8) cache.erase(cache.begin());
      }
    });
  }

  // Writer: streaming churn in batches.
  par::Rng rng(4321);
  std::vector<ticket_t> live;
  uint64_t epochs = 0;
  for (int batch = 0; batch < 60; ++batch) {
    for (int i = 0; i < 12; ++i) {
      if (!live.empty() && rng.next_double() < 0.35) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(n), v;
        do {
          v = rng.next_bounded(n);
        } while (v == u);
        live.push_back(svc.insert(u, v, rng.next_double()));
      }
    }
    epochs = svc.flush();
    if (batch % 10 == 0) std::this_thread::yield();
  }
  // Let readers observe the final epoch for a moment.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_GE(epochs, 50u);
  EXPECT_GT(checks.load(), 0u);
  auto r = svc.stats();
  EXPECT_GE(r.epochs_published, 60u);
}

/// Randomized typed query batches on a multi-shard service, including
/// duplicate-tau grouping, cross-checked against the per-epoch Kruskal
/// reference. Vertex n-1 stays edge-free so singleton clusters are
/// always part of the mix.
TEST(ClusterView, BatchMatchesReferenceOnShardedService) {
  const vertex_id n = 61;  // vertex 60 never touched: permanent singleton
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 3;
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng(314);
  std::vector<ticket_t> live;
  for (int step = 0; step < 360; ++step) {
    if (!live.empty() && rng.next_double() < 0.3) {
      size_t j = rng.next_bounded(live.size());
      svc.erase(live[j]);
      live[j] = live.back();
      live.pop_back();
    } else {
      vertex_id u = rng.next_bounded(n - 1), v;
      do {
        v = rng.next_bounded(n - 1);
      } while (v == u);
      live.push_back(svc.insert(u, v, rng.next_double()));
    }
    if (step % 60 != 59) continue;
    svc.flush();
    ClusterView view = svc.view();
    const auto& captured = view.snapshot().captured_edges();

    // Mixed batch over duplicate taus (three distinct thresholds).
    const std::vector<double> taus = {0.25, 0.6, 0.6, 0.9, 0.25, 0.6};
    std::vector<Query> batch;
    std::map<double, std::vector<vertex_id>> ref;
    for (double tau : taus) {
      if (!ref.count(tau)) ref[tau] = reference_labels(n, captured, tau);
      vertex_id u = rng.next_bounded(n), v = rng.next_bounded(n);
      batch.push_back(SameClusterQuery{u, v, tau});
      batch.push_back(ClusterSizeQuery{u, tau});
      batch.push_back(ClusterReportQuery{60, tau});  // singleton report
      batch.push_back(ClusterReportQuery{v, tau});
      batch.push_back(FlatClusteringQuery{tau});
      batch.push_back(SizeHistogramQuery{tau});
    }
    uint64_t views_before = svc.stats().views_built;
    std::vector<QueryResult> results = view.run(batch);
    // Duplicate taus share one resolution: three distinct thresholds,
    // three ThresholdView builds.
    EXPECT_EQ(svc.stats().views_built - views_before, 3u);

    ASSERT_EQ(results.size(), batch.size());
    size_t i = 0;
    for (double tau : taus) {
      const auto& labels = ref[tau];
      const auto& sc = std::get<SameClusterQuery>(batch[i]);
      EXPECT_EQ(std::get<bool>(results[i]),
                labels[sc.u] == labels[sc.v])
          << "tau=" << tau;
      ++i;
      const auto& cs = std::get<ClusterSizeQuery>(batch[i]);
      EXPECT_EQ(std::get<uint64_t>(results[i]), ref_cluster_size(labels, cs.u));
      ++i;
      auto singleton = std::get<std::vector<vertex_id>>(results[i]);
      EXPECT_EQ(singleton, std::vector<vertex_id>{60});
      ++i;
      const auto& cr = std::get<ClusterReportQuery>(batch[i]);
      auto members = std::get<std::vector<vertex_id>>(results[i]);
      EXPECT_EQ(members.size(), ref_cluster_size(labels, cr.u));
      bool contains_u = false;
      for (vertex_id m : members) {
        EXPECT_EQ(labels[m], labels[cr.u]);
        contains_u |= m == cr.u;
      }
      EXPECT_TRUE(contains_u);
      ++i;
      expect_same_partition(labels,
                            std::get<std::vector<vertex_id>>(results[i]));
      ++i;
      EXPECT_EQ(std::get<SizeHistogram>(results[i]), ref_histogram(labels));
      ++i;
    }
  }
  EXPECT_GT(svc.stats().cross_ops, 0u);
  EXPECT_GT(svc.stats().batch_runs, 0u);
}

/// Acceptance: N mixed queries at one tau through a ThresholdView cost
/// exactly one cross-shard union-find build, and at() memoizes.
TEST(ClusterView, ThresholdViewResolvesCrossMergeOnce) {
  const vertex_id n = 40;  // 2 shards, stride 20
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 2;
  SldService svc(cfg);
  par::Rng rng(77);
  for (int i = 0; i < 60; ++i) {  // intra edges in both shards
    vertex_id base = (i % 2) * 20;
    vertex_id u = base + rng.next_bounded(20), v;
    do {
      v = base + rng.next_bounded(20);
    } while (v == u);
    svc.insert(u, v, rng.next_double() * 0.5);
  }
  for (int i = 0; i < 10; ++i)  // sub-tau cross edges
    svc.insert(rng.next_bounded(20), 20 + rng.next_bounded(20),
               0.1 + 0.4 * rng.next_double());
  svc.flush();

  ClusterView view = svc.view();
  uint64_t uf_before = svc.stats().cross_uf_builds;
  auto tv = view.at(0.6);
  for (int q = 0; q < 200; ++q) {
    vertex_id u = rng.next_bounded(n), v = rng.next_bounded(n);
    tv->same_cluster(u, v);
    tv->cluster_size(u);
    if (q % 20 == 0) {
      tv->cluster_report(v);
      tv->flat_clustering();
    }
  }
  EXPECT_EQ(svc.stats().cross_uf_builds - uf_before, 1u);
  EXPECT_GT(tv->num_cross_groups(), 0u);
  EXPECT_EQ(view.at(0.6).get(), tv.get());  // memoized, same resolution

  // The per-call conveniences pay one resolution per call — the view
  // plane's amortization is real, not bookkeeping.
  uf_before = svc.stats().cross_uf_builds;
  auto snap = svc.snapshot();
  snap->same_cluster(0, 21, 0.6);
  snap->cluster_size(0, 0.6);
  EXPECT_EQ(svc.stats().cross_uf_builds - uf_before, 2u);
}

/// Epoch-0 views: everything is a singleton; the batch API still
/// answers coherently (empty service, no cross edges, no tree edges).
TEST(ClusterView, EpochZeroAllSingletons) {
  const vertex_id n = 12;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 4;
  SldService svc(cfg);
  ClusterView view = svc.view();
  EXPECT_EQ(view.epoch(), 0u);
  auto tv = view.at(0.5);
  EXPECT_TRUE(tv->same_cluster(3, 3));
  EXPECT_FALSE(tv->same_cluster(3, 4));
  EXPECT_EQ(tv->cluster_size(7), 1u);
  EXPECT_EQ(tv->cluster_report(7), std::vector<vertex_id>{7});
  auto labels = tv->flat_clustering();
  ASSERT_EQ(labels.size(), n);
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(labels[v], v);
  SizeHistogram h = tv->size_histogram();
  ASSERT_EQ(h.bins.size(), 1u);
  EXPECT_EQ(h.bins[0], (std::pair<uint64_t, uint64_t>{1, n}));
  EXPECT_EQ(h.num_clusters(), n);
}

/// Erase-by-endpoints: the queue's (u, v) ledger resolves tickets for
/// callers that don't retain them — pre-flush (annihilation), across
/// flushes, reversed endpoints, multi-edges, and unknown pairs.
TEST(SldService, EraseByEndpoints) {
  ServiceConfig cfg;
  cfg.num_vertices = 20;
  SldService svc(cfg);

  // Pre-flush: annihilates in the queue, never reaches shards.
  svc.insert(1, 2, 0.5);
  EXPECT_TRUE(svc.erase(vertex_id{1}, vertex_id{2}));
  svc.flush();
  EXPECT_EQ(svc.stats().coalesced_pairs, 1u);
  EXPECT_EQ(svc.stats().ops_applied, 0u);

  // Across a flush, with reversed endpoints.
  svc.insert(3, 4, 0.2);
  svc.flush();
  EXPECT_TRUE(svc.same_cluster(3, 4, 0.5));
  EXPECT_TRUE(svc.erase(vertex_id{4}, vertex_id{3}));
  svc.flush();
  EXPECT_FALSE(svc.same_cluster(3, 4, 0.5));

  // Unknown pair / already-erased pair.
  EXPECT_FALSE(svc.erase(vertex_id{5}, vertex_id{6}));
  EXPECT_FALSE(svc.erase(vertex_id{3}, vertex_id{4}));

  // Multi-edge: one endpoint-erase per copy, most recent first.
  svc.insert(7, 8, 0.1);
  svc.insert(7, 8, 0.3);
  svc.flush();
  EXPECT_TRUE(svc.erase(vertex_id{7}, vertex_id{8}));
  EXPECT_TRUE(svc.erase(vertex_id{7}, vertex_id{8}));
  EXPECT_FALSE(svc.erase(vertex_id{7}, vertex_id{8}));
  svc.flush();
  EXPECT_FALSE(svc.same_cluster(7, 8, 1.0));

  // A ticket-erase also clears the ledger entry.
  ticket_t t = svc.insert(9, 10, 0.4);
  svc.erase(t);
  EXPECT_FALSE(svc.erase(vertex_id{9}, vertex_id{10}));
}

/// Shard-local vertex spaces: per-shard snapshots are sized to the
/// shard's own range (uneven last shard included), and sharded answers
/// still match the reference exactly.
TEST(SldService, ShardLocalSpacesUnevenRanges) {
  const vertex_id n = 50;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 4;  // stride 13: ranges 13, 13, 13, 11
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng(424);
  for (int i = 0; i < 220; ++i) {
    vertex_id u = rng.next_bounded(n), v;
    do {
      v = rng.next_bounded(n);
    } while (v == u);
    svc.insert(u, v, rng.next_double());
  }
  svc.flush();
  auto snap = svc.snapshot();
  ASSERT_EQ(snap->shard_map().stride, 13u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(snap->shard(k).num_vertices(), snap->shard_map().local_size(k));
    EXPECT_EQ(snap->shard(k).base(), snap->shard_map().base(k));
  }
  EXPECT_EQ(snap->shard(3).num_vertices(), 11u);
  for (double tau : {0.2, 0.55, 0.85}) {
    auto ref = reference_labels(n, snap->captured_edges(), tau);
    expect_same_partition(ref, snap->flat_clustering(tau));
    for (int q = 0; q < 60; ++q) {
      vertex_id s = rng.next_bounded(n), t = rng.next_bounded(n);
      EXPECT_EQ(snap->same_cluster(s, t, tau), ref[s] == ref[t])
          << "s=" << s << " t=" << t << " tau=" << tau;
    }
    for (int q = 0; q < 15; ++q) {
      vertex_id u = rng.next_bounded(n);
      EXPECT_EQ(snap->cluster_size(u, tau), ref_cluster_size(ref, u));
      EXPECT_EQ(snap->cluster_report(u, tau).size(), ref_cluster_size(ref, u));
    }
  }
}

/// Background writer thread: epochs advance without explicit flushes.
TEST(SldService, BackgroundWriterPublishesEpochs) {
  ServiceConfig cfg;
  cfg.num_vertices = 32;
  cfg.flush_threshold = 8;
  cfg.flush_interval = std::chrono::microseconds(100);
  SldService svc(cfg);
  svc.start_writer();
  par::Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    vertex_id u = rng.next_bounded(32), v;
    do {
      v = rng.next_bounded(32);
    } while (v == u);
    svc.insert(u, v, rng.next_double());
  }
  // The writer thread should pick these up on its own.
  for (int spin = 0; spin < 200 && svc.pending_updates() > 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  svc.stop_writer();
  EXPECT_EQ(svc.pending_updates(), 0u);
  EXPECT_GE(svc.epoch(), 1u);
  EXPECT_GT(svc.snapshot()->num_tree_edges(), 0u);
}

namespace {

/// Seed an 8-shard service (stride 8) with intra edges in every shard
/// plus sub-tau cross edges whose endpoints span all shards, so a
/// refresh at tau exercises the incremental path.
void seed_eight_shards(SldService& svc, par::Rng& rng) {
  for (int k = 0; k < 8; ++k) {
    for (int i = 0; i < 14; ++i) {
      auto [u, v] = test::random_block_pair(rng, static_cast<vertex_id>(k) * 8, 8);
      svc.insert(u, v, rng.next_double() * 0.5);
    }
  }
  for (int k = 0; k < 8; ++k) {  // one sub-tau cross endpoint per shard
    vertex_id u = static_cast<vertex_id>(k) * 8 + rng.next_bounded(8);
    vertex_id v = static_cast<vertex_id>((k + 3) % 8) * 8 + rng.next_bounded(8);
    svc.insert(u, v, 0.1 + 0.3 * rng.next_double());
  }
  svc.flush();
}

}  // namespace

/// The acceptance scenario: with 1 of 8 shards dirty per flush, a
/// subscription refresh reuses the 7 clean shards (counter-verified)
/// and answers bit-for-bit like a freshly built view.
TEST(SubscribedView, HotShardRefreshReusesCleanShards) {
  const vertex_id n = 64;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 8;
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_eight_shards(svc, rng);

  const double tau = 0.6;
  SubscribedView sub(svc);
  sub.at(tau);  // initial full resolution

  for (int round = 0; round < 6; ++round) {
    // Churn confined to shard 0: intra edges over vertices [0, 8).
    for (int i = 0; i < 10; ++i) {
      auto [u, v] = test::random_block_pair(rng, 0, 8);
      svc.insert(u, v, rng.next_double());
    }
    svc.flush();
    EXPECT_TRUE(sub.stale());
    // The published delta records the flush's footprint: shard 0
    // rebuilt, the rest untouched, no cross churn.
    {
      const EpochDelta& d = svc.snapshot()->delta();
      EXPECT_EQ(d.num_rebuilt(), 1);
      EXPECT_EQ(d.shard_rebuilt[0], 1);
      EXPECT_FALSE(d.cross_changed());
      EXPECT_EQ(d.cross_inserted + d.cross_erased, 0u);
    }
    auto before = svc.stats();
    ASSERT_TRUE(sub.refresh());
    auto after = svc.stats();
    EXPECT_EQ(after.refresh_shards_reused - before.refresh_shards_reused, 7u);
    EXPECT_EQ(after.refresh_shards_rebuilt - before.refresh_shards_rebuilt, 1u);
    EXPECT_EQ(after.refresh_views_full, before.refresh_views_full);
    // Shard 0 hosts a cross endpoint, so the refresh is incremental,
    // not a wholesale reuse.
    EXPECT_EQ(after.cross_uf_incremental - before.cross_uf_incremental, 1u);

    // Bit-for-bit against a freshly resolved view, and against the
    // Kruskal oracle.
    auto snap = svc.snapshot();
    ASSERT_EQ(sub.epoch(), snap->epoch());
    auto tv = sub.at(tau);
    auto fresh = ClusterView(snap).at(tau);
    EXPECT_EQ(tv->flat_clustering(), fresh->flat_clustering());
    EXPECT_EQ(tv->size_histogram(), fresh->size_histogram());
    auto ref = reference_labels(n, snap->captured_edges(), tau);
    expect_same_partition(ref, tv->flat_clustering());
    for (int q = 0; q < 40; ++q) {
      auto [s, t] = test::random_distinct_pair(rng, n);
      EXPECT_EQ(tv->same_cluster(s, t), ref[s] == ref[t]) << "s=" << s << " t=" << t;
      EXPECT_EQ(tv->cluster_size(s), ref_cluster_size(ref, s));
    }
  }
}

/// Cross-edge churn strictly above the threshold keeps the sub-tau
/// prefix intact: the single-step delta proves it and the refresh stays
/// incremental; churn at or below tau forces the full re-resolve.
TEST(SubscribedView, CrossDeltaGatesFullResolve) {
  const vertex_id n = 64;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 8;
  cfg.capture_edges = true;
  SldService svc(cfg);
  par::Rng rng = test::test_rng();
  seed_eight_shards(svc, rng);

  const double tau = 0.6;
  SubscribedView sub(svc);
  sub.at(tau);

  // A cross edge above tau: the delta's cross_min_w exceeds tau, so the
  // resolution survives (no full rebuild).
  svc.insert(2, 50, 0.9);
  svc.flush();
  EXPECT_GT(svc.snapshot()->delta().cross_min_w, tau);
  auto before = svc.stats();
  ASSERT_TRUE(sub.refresh());
  auto after = svc.stats();
  EXPECT_EQ(after.refresh_views_full, before.refresh_views_full);
  EXPECT_EQ(after.refresh_views_reused +
                after.refresh_views_incremental -
                before.refresh_views_reused - before.refresh_views_incremental,
            1u);

  // A cross edge below tau changes the prefix: full re-resolve.
  svc.insert(3, 40, 0.2);
  svc.flush();
  before = svc.stats();
  ASSERT_TRUE(sub.refresh());
  after = svc.stats();
  EXPECT_EQ(after.refresh_views_full - before.refresh_views_full, 1u);

  // Either way the refreshed view matches a fresh one exactly.
  auto snap = svc.snapshot();
  auto fresh = ClusterView(snap).at(tau);
  EXPECT_EQ(sub.at(tau)->flat_clustering(), fresh->flat_clustering());
  auto ref = reference_labels(n, snap->captured_edges(), tau);
  expect_same_partition(ref, sub.at(tau)->flat_clustering());
}

/// Register/refresh/unregister lifecycle: publishes bump the pending
/// epoch and fire the hook; refresh catches up (also across several
/// skipped epochs); destruction unregisters.
TEST(SubscribedView, LifecycleAndNotifications) {
  ServiceConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_shards = 2;
  SldService svc(cfg);
  EXPECT_EQ(svc.subscriptions().size(), 0u);
  {
    std::vector<uint64_t> hook_epochs;
    SubscribedView sub(svc, [&](uint64_t e) { hook_epochs.push_back(e); });
    EXPECT_EQ(svc.subscriptions().size(), 1u);
    EXPECT_EQ(sub.epoch(), 0u);
    EXPECT_FALSE(sub.stale());
    EXPECT_FALSE(sub.refresh());  // nothing published yet

    svc.insert(1, 2, 0.3);
    svc.flush();
    svc.insert(21, 22, 0.4);
    svc.flush();  // two epochs behind now
    EXPECT_TRUE(sub.stale());
    EXPECT_EQ(sub.pending_epoch(), 2u);
    ASSERT_EQ(hook_epochs.size(), 2u);
    EXPECT_TRUE(sub.refresh());
    EXPECT_EQ(sub.epoch(), 2u);
    EXPECT_FALSE(sub.stale());
    EXPECT_FALSE(sub.refresh());  // idempotent

    // Batch API serves the subscription's pinned epoch.
    std::vector<Query> batch = {SameClusterQuery{1, 2, 0.5},
                                ClusterSizeQuery{21, 0.5}};
    auto results = sub.run(batch);
    EXPECT_TRUE(std::get<bool>(results[0]));
    EXPECT_EQ(std::get<uint64_t>(results[1]), 2u);
  }
  EXPECT_EQ(svc.subscriptions().size(), 0u);  // unregistered
  svc.insert(5, 6, 0.1);
  svc.flush();  // notifies nobody, crashes nothing
  EXPECT_EQ(svc.stats().subs_notified, 2u);
}

/// Replay driver smoke test: the sliding-window trace ends with the
/// same clustering whether driven through the service or re-derived
/// from the captured edge set.
TEST(Replay, SlidingWindowTraceMatchesReference) {
  Trace tr = Trace::sliding_window(/*window=*/40, /*steps=*/4, /*per_step=*/10,
                                   /*connect_radius=*/0.8, /*seed=*/11);
  ServiceConfig cfg;
  cfg.num_vertices = tr.num_vertices;
  cfg.capture_edges = true;
  SldService svc(cfg);
  ReplayOptions opt;
  opt.reader_threads = 2;
  opt.tau = 0.35;
  opt.ops_per_flush = 16;
  ReplayReport rep = replay(tr, svc, opt);
  EXPECT_EQ(rep.ops_applied, tr.ops.size());
  EXPECT_GT(rep.epochs_published, 0u);
  auto snap = svc.snapshot();
  auto ref = reference_labels(tr.num_vertices, snap->captured_edges(), 0.35);
  expect_same_partition(ref, snap->flat_clustering(0.35));
}

}  // namespace
}  // namespace dynsld::engine
