// Streaming clustering: points arrive and leave over time (the
// intro's motivating "rapidly changing modern datasets"); the engine
// maintains the exact single-linkage dendrogram of the evolving
// similarity graph and answers live cluster queries.
//
// This drives the serving engine (SldService) through the async
// request plane: edges are enqueued on insert and erased *by
// endpoints* — the queue's (u, v) ledger resolves tickets, so points
// only remember who they connected to. Each window slide is one
// coalesced batch flush; the per-step census is one submitted
// QueryRequest pinned to at least the slide's epoch (read-your-slide:
// AtLeastEpoch parks the request until the flush publishes), answered
// from the broker's standing ThresholdView, which refreshes
// incrementally across the stream's epochs instead of re-resolving.
//
// Workload: a sliding window over a stream of 2-D points (three moving
// Gaussian-ish blobs). Each window step inserts new points' edges,
// erases expired ones, flushes, then reports the cluster structure at a
// fixed distance threshold.
//
//   $ ./streaming_clusters             # the census table
//   $ ./streaming_clusters --metrics   # plus the registry scrape as
//                                      # JSON on stderr
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <vector>

#include "engine/sld_service.hpp"
#include "obs/export.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using namespace dynsld::engine;

int main(int argc, char** argv) {
  bool metrics = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--metrics") == 0) metrics = true;
  const int window = 120;         // live points
  const int steps = 12;           // window slides
  const int per_step = 30;        // points replaced per slide
  const double tau = 0.35;        // clustering threshold
  const vertex_id capacity = window + steps * per_step;

  ServiceConfig cfg;
  cfg.num_vertices = capacity;
  SldService svc(cfg);
  par::Rng rng(2026);

  struct Point {
    vertex_id id;
    double x, y;
    std::vector<vertex_id> neighbors;  // endpoints of similarity edges
  };
  std::deque<Point> live;
  vertex_id next_id = 0;

  auto blob_center = [](int t, int b) {
    double phase = 0.08 * t + 2.1 * b;
    return std::pair<double, double>{1.5 + std::cos(phase), 1.5 + std::sin(phase)};
  };

  auto add_point = [&](int t) {
    int b = static_cast<int>(rng.next_bounded(3));
    auto [cx, cy] = blob_center(t, b);
    Point p;
    p.id = next_id++;
    p.x = cx + (rng.next_double() - 0.5) * 0.3;
    p.y = cy + (rng.next_double() - 0.5) * 0.3;
    // Similarity edges to all live points within distance 0.8. No
    // tickets retained: expiry erases by endpoints through the queue's
    // ledger, which also makes the duplicate erase from the second
    // endpoint a clean no-op (the pair is gone after the first).
    for (Point& q : live) {
      double d = std::hypot(p.x - q.x, p.y - q.y);
      if (d <= 0.8) {
        svc.insert(p.id, q.id, d);
        p.neighbors.push_back(q.id);
        q.neighbors.push_back(p.id);
      }
    }
    live.push_back(std::move(p));
  };

  for (int i = 0; i < window; ++i) add_point(0);

  std::printf("%5s %7s %9s %7s %10s %8s\n", "step", "points", "msf_edges",
              "epoch", "clusters", "biggest");
  for (int t = 0; t < steps; ++t) {
    // Expire the oldest points; their edges go with them.
    for (int i = 0; i < per_step; ++i) {
      const Point& p = live.front();
      for (vertex_id q : p.neighbors) svc.erase(p.id, q);
      live.pop_front();
    }
    for (int i = 0; i < per_step; ++i) add_point(t);

    // Cluster census for this slide: submit BEFORE the flush, pinned
    // to at least the epoch the flush will publish — the broker parks
    // the request and fulfills it the moment the slide's epoch lands.
    QueryRequest census;
    census.queries = {FlatClusteringQuery{tau}, NumClustersQuery{tau}};
    census.consistency = AtLeastEpoch{svc.epoch() + 1};
    auto fut = svc.submit(std::move(census));
    svc.flush();  // one batch per window slide -> one epoch

    ResultSet rs = fut.get();
    const auto& labels = std::get<std::vector<vertex_id>>(rs.results[0]);
    std::vector<int> count(capacity, 0);
    int clusters = 0, biggest = 0;
    for (const Point& p : live) {
      int c = ++count[labels[p.id]];
      if (c == 1) ++clusters;
      if (c > biggest) biggest = c;
    }
    std::printf("%5d %7zu %9zu %7llu %10d %8d\n", t, live.size(),
                svc.snapshot()->num_tree_edges(),
                (unsigned long long)rs.epoch, clusters, biggest);
    // Graph-wide count = live clusters + one singleton per expired or
    // not-yet-born id; a cheap cross-check on the NumClusters
    // reassembly against the label array.
    uint64_t graph_clusters = std::get<uint64_t>(rs.results[1]);
    if (graph_clusters !=
        static_cast<uint64_t>(clusters) + (capacity - live.size()))
      std::printf("WARNING: NumClusters (%llu) disagrees with labels\n",
                  (unsigned long long)graph_clusters);
  }

  // Drill into the cluster of the newest point — the single-shot
  // conveniences are submit-and-wait wrappers over the same broker.
  const Point& probe = live.back();
  auto members = svc.cluster_report(probe.id, tau);
  std::printf("\ncluster of newest point %u at tau=%.2f: %zu members\n",
              probe.id, tau, members.size());
  // --metrics: one scrape of the engine's registry — per-slide flush
  // stage latencies and the broker's fulfillment histogram included.
  if (metrics)
    std::fprintf(stderr, "%s\n",
                 obs::to_json(svc.obs().registry.scrape()).c_str());
  return 0;
}
