// Streaming clustering: points arrive and leave over time (the
// intro's motivating "rapidly changing modern datasets"); the pipeline
// maintains the exact single-linkage dendrogram of the evolving
// similarity graph and answers live cluster queries.
//
// Workload: a sliding window over a stream of 2-D points (three moving
// Gaussian-ish blobs). Each window step inserts new points' edges into
// the dynamic-MSF pipeline and deletes expired ones, then reports the
// cluster structure at a fixed distance threshold.
//
//   $ ./streaming_clusters
#include <cmath>
#include <cstdio>
#include <deque>
#include <vector>

#include "msf/dynamic_msf.hpp"
#include "parallel/random.hpp"

using namespace dynsld;

int main() {
  const int window = 120;         // live points
  const int steps = 12;           // window slides
  const int per_step = 30;        // points replaced per slide
  const double tau = 0.35;        // clustering threshold
  const vertex_id capacity = window + steps * per_step;

  DynamicClustering dc(capacity);
  par::Rng rng(2026);

  struct Point {
    vertex_id id;
    double x, y;
    std::vector<uint32_t> edges;  // graph-edge handles touching it
  };
  std::deque<Point> live;
  vertex_id next_id = 0;

  auto blob_center = [](int t, int b) {
    double phase = 0.08 * t + 2.1 * b;
    return std::pair<double, double>{1.5 + std::cos(phase), 1.5 + std::sin(phase)};
  };

  auto add_point = [&](int t) {
    int b = static_cast<int>(rng.next_bounded(3));
    auto [cx, cy] = blob_center(t, b);
    Point p;
    p.id = next_id++;
    p.x = cx + (rng.next_double() - 0.5) * 0.3;
    p.y = cy + (rng.next_double() - 0.5) * 0.3;
    // Similarity edges to all live points within distance 0.8, recorded
    // on both endpoints so expiry can remove them from either side.
    for (Point& q : live) {
      double d = std::hypot(p.x - q.x, p.y - q.y);
      if (d <= 0.8) {
        uint32_t h = dc.insert_edge(p.id, q.id, d);
        p.edges.push_back(h);
        q.edges.push_back(h);
      }
    }
    live.push_back(std::move(p));
  };

  for (int i = 0; i < window; ++i) add_point(0);

  std::printf("%5s %7s %7s %9s %10s %8s\n", "step", "points", "edges",
              "msf_edges", "clusters", "biggest");
  for (int t = 0; t < steps; ++t) {
    // Expire the oldest points (their edges go with them).
    for (int i = 0; i < per_step; ++i) {
      // Handles may be stale (already erased and possibly reused for an
      // unrelated edge): only erase live edges actually touching the
      // expiring vertex.
      vertex_id dying = live.front().id;
      for (uint32_t h : live.front().edges) {
        if (!dc.edge_alive(h)) continue;
        auto e = dc.edge(h);
        if (e.u == dying || e.v == dying) dc.erase_edge(h);
      }
      live.pop_front();
    }
    for (int i = 0; i < per_step; ++i) add_point(t);

    // Cluster census at threshold tau.
    auto labels = dc.sld().flat_clustering(tau);
    std::vector<int> count(capacity, 0);
    int clusters = 0, biggest = 0;
    for (const Point& p : live) {
      int c = ++count[labels[p.id]];
      if (c == 1) ++clusters;
      if (c > biggest) biggest = c;
    }
    std::printf("%5d %7zu %7zu %9zu %10d %8d\n", t, live.size(), dc.num_edges(),
                dc.num_tree_edges(), clusters, biggest);
  }

  // Drill into the cluster of the newest point.
  const Point& probe = live.back();
  auto members = dc.sld().cluster_report(probe.id, tau);
  std::printf("\ncluster of newest point %u at tau=%.2f: %zu members\n",
              probe.id, tau, members.size());
  return 0;
}
