// Batch-dynamic maintenance (Theorem 1.5): a forest that changes in
// bursts — whole groups of connections arriving and departing at once —
// processed with insert_batch / erase_batch rather than one at a time,
// mirroring the end-to-end batch-dynamic pipeline of §1 (batch MSF +
// batch SLD).
//
//   $ ./batch_pipeline
#include <cstdio>
#include <vector>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/generators.hpp"
#include "parallel/random.hpp"

using namespace dynsld;

int main() {
  // 64 sensor clusters of 32 nodes each; intra-cluster links are
  // permanent, inter-cluster links come and go in batches.
  const vertex_id clusters = 64, csize = 32;
  const vertex_id n = clusters * csize;
  DynSLD s(n, SpineIndex::kLct);
  par::Rng rng(11);

  for (vertex_id c = 0; c < clusters; ++c) {
    vertex_id base = c * csize;
    for (vertex_id i = 1; i < csize; ++i) {
      s.insert(base + static_cast<vertex_id>(rng.next_bounded(i)), base + i,
               static_cast<double>(rng.next_bounded(100)));
    }
  }
  std::printf("base forest: %u vertices, %zu edges, height %zu\n", n,
              s.num_edges(), s.dendrogram().height());

  std::printf("\n%6s %8s %10s %10s %9s\n", "burst", "batch_k", "edges",
              "height", "comps@500");
  std::vector<edge_id> bridges;
  for (int burst = 0; burst < 6; ++burst) {
    if (burst % 2 == 0) {
      // Arrival burst: connect a random spanning structure over the
      // cluster representatives (acyclic by construction).
      std::vector<DynSLD::EdgeInsert> batch;
      for (vertex_id c = 1; c < clusters; ++c) {
        vertex_id a = static_cast<vertex_id>(rng.next_bounded(c)) * csize;
        batch.push_back({a, c * csize,
                         500.0 + static_cast<double>(rng.next_bounded(500))});
      }
      auto ids = s.insert_batch(batch);
      bridges.insert(bridges.end(), ids.begin(), ids.end());
      // Count components at threshold 500 (bridges excluded).
      auto labels = s.flat_clustering(500.0);
      std::vector<char> seen(n, 0);
      int comps = 0;
      for (vertex_id v = 0; v < n; ++v) {
        if (!seen[labels[v]]) {
          seen[labels[v]] = 1;
          ++comps;
        }
      }
      std::printf("%6d %8zu %10zu %10zu %9d\n", burst, batch.size(),
                  s.num_edges(), s.dendrogram().height(), comps);
    } else {
      // Departure burst: all bridges drop at once.
      s.erase_batch(bridges);
      std::printf("%6d %8zu %10zu %10zu %9s\n", burst, bridges.size(),
                  s.num_edges(), s.dendrogram().height(), "-");
      bridges.clear();
    }
  }

  // Cross-check against static recomputation.
  auto live = s.edges();
  Dendrogram want = build_kruskal(n, live);
  std::printf("\nfinal dendrogram matches static recomputation: %s\n",
              s.dendrogram() == want ? "yes" : "NO");
  return 0;
}
