// Dynamic range-maximum queries via dynamic Cartesian trees (§6.2):
// maintain a mutable sequence of readings and answer range-max queries
// in O(log n), with O(log n) worst-case appends.
//
//   $ ./dynamic_rmq
#include <cstdio>
#include <vector>

#include "cartesian/cartesian_tree.hpp"
#include "parallel/random.hpp"

using namespace dynsld;

int main() {
  // A sensor feed: readings appended over time, occasional corrections
  // (inserts/removals in the middle), with sliding range-max queries.
  CartesianTree feed(4096);
  par::Rng rng(7);

  std::printf("appending 1000 readings...\n");
  for (int i = 0; i < 1000; ++i) {
    feed.push_back(20.0 + 10.0 * rng.next_double() +
                   (i % 97 == 0 ? 25.0 : 0.0));  // occasional spikes
  }

  auto seq = feed.in_order();
  std::printf("range-max over sliding windows of 100:\n");
  for (size_t lo = 0; lo + 100 <= seq.size(); lo += 250) {
    auto h = feed.range_max(seq[lo], seq[lo + 99]);
    std::printf("  window [%4zu, %4zu): max = %.2f\n", lo, lo + 100,
                feed.value(h));
  }

  std::printf("\ncorrections: removing the 10 biggest spikes...\n");
  for (int r = 0; r < 10; ++r) {
    auto top = feed.root();  // global max = dendrogram root
    std::printf("  removing value %.2f\n", feed.value(top));
    feed.erase(top);
  }
  seq = feed.in_order();
  auto h = feed.range_max(seq.front(), seq.back());
  std::printf("new global max: %.2f over %zu readings\n", feed.value(h),
              feed.size());

  std::printf("\nsplicing 5 late-arriving readings after position 500...\n");
  for (int r = 0; r < 5; ++r) {
    seq = feed.in_order();
    feed.insert_after(seq[500], 40.0 + r);
  }
  seq = feed.in_order();
  h = feed.range_max(seq[480], seq[520]);
  std::printf("max around the splice: %.2f\n", feed.value(h));
  return 0;
}
