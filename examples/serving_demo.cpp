// Serving demo: the engine's end-to-end story in one page.
//
// A background writer thread flushes coalesced update batches while the
// main thread plays "user traffic": acquiring epoch snapshots and
// asking live clustering questions. Every query binds to one epoch, so
// a multi-call read (size + members + threshold) is internally
// consistent even though updates keep landing underneath it.
//
//   $ ./serving_demo
#include <cstdio>
#include <thread>

#include "engine/sld_service.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using namespace dynsld::engine;

int main() {
  const vertex_id n = 1000;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 4;
  cfg.flush_threshold = 64;
  cfg.flush_interval = std::chrono::microseconds(200);
  SldService svc(cfg);
  svc.start_writer();

  // Update producer: random churn, fired from a separate thread to show
  // the front-end is just an enqueue.
  std::thread producer([&] {
    par::Rng rng(2026);
    std::vector<ticket_t> live;
    for (int i = 0; i < 20000; ++i) {
      if (!live.empty() && rng.next_double() < 0.3) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(n), v;
        do {
          v = rng.next_bounded(n);
        } while (v == u);
        live.push_back(svc.insert(u, v, rng.next_double()));
      }
      // Pace the stream so epochs are published while the main thread
      // is still querying (a raw loop would enqueue everything in
      // microseconds).
      if (i % 200 == 199) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Query traffic against whatever epoch is current.
  par::Rng qrng(7);
  for (int round = 0; round < 10; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    auto snap = svc.snapshot();  // one consistent view for all 3 queries
    vertex_id probe = qrng.next_bounded(n);
    double tau = 0.25;
    auto labels = snap->flat_clustering(tau);
    int clusters = 0;
    {
      std::vector<char> seen(n, 0);
      for (vertex_id v = 0; v < n; ++v) {
        if (!seen[labels[v]]) {
          seen[labels[v]] = 1;
          ++clusters;
        }
      }
    }
    std::printf(
        "epoch %4llu: %5zu tree edges, %4d clusters @tau=%.2f; vertex %3u's "
        "cluster has %llu members\n",
        (unsigned long long)snap->epoch(), snap->num_tree_edges(), clusters,
        tau, probe, (unsigned long long)snap->cluster_size(probe, tau));
  }

  producer.join();
  svc.stop_writer();
  print_report(svc.stats());
  return 0;
}
