// Serving demo: the engine's end-to-end story in one page.
//
// A background writer thread flushes coalesced update batches while the
// main thread plays "user traffic" through the ASYNC request plane:
// every round submits a QueryRequest — typed queries plus a deadline —
// and reaps the future. Concurrent requests at one (epoch, tau) are
// grouped by the broker and share a single merge resolution, no matter
// how many clients ask (serving many users is the whole point). The
// demo closes with read-your-writes via AtLeastEpoch and a submit_batch
// mixing thresholds.
//
//   $ ./serving_demo             # human-readable stats line at the end
//   $ ./serving_demo --metrics   # plus the full registry scrape as
//                                # JSON on stderr (counters, gauges,
//                                # flush/broker latency histograms)
//   $ ./serving_demo --data-dir DIR            # durable: WAL + ckpts
//   $ ./serving_demo --data-dir DIR --recover  # resume a crashed run
//                                # (replays the directory, prints the
//                                # recovered epoch, keeps serving)
//
// Network modes (docs/NETWORK.md):
//   $ ./serving_demo --serve 7070 [--data-dir DIR]
//       Writer process: ingests the demo churn, prints an oracle line
//       ("oracle epoch=E num_clusters@0.25=K") plus "ready", then
//       serves RPC on 127.0.0.1:7070 until SIGTERM/SIGINT. With
//       --data-dir it also streams checkpoints + WAL deltas to any
//       replica that connects.
//   $ ./serving_demo --replica HOST:PORT [--serve 7071]
//       Read replica: bootstraps from the writer's checkpoint, tails
//       its live WAL stream, prints "replica ready", and (with
//       --serve) answers queries from its own possibly-lagging broker.
//   $ ./serving_demo --connect HOST:PORT
//       Client: handshakes, pings, and runs a few queries over the
//       wire, printing "epoch=E num_clusters@0.25=K".
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/sld_service.hpp"
#include "net/client.hpp"
#include "net/replication.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "parallel/random.hpp"
#include "persist/persist.hpp"

using namespace dynsld;
using namespace dynsld::engine;
using namespace std::chrono_literals;

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_release); }

// "HOST:PORT" -> (host, port); false on malformed input.
bool split_hostport(const char* s, std::string* host, uint16_t* port) {
  const char* colon = std::strrchr(s, ':');
  if (!colon || colon == s) return false;
  long p = std::atol(colon + 1);
  if (p <= 0 || p > 65535) return false;
  host->assign(s, colon - s);
  *port = static_cast<uint16_t>(p);
  return true;
}

// The shared engine shape: every process in a serving topology must
// agree on it (the replica handshake enforces this).
ServiceConfig demo_config(const char* data_dir) {
  ServiceConfig cfg;
  cfg.num_vertices = 1000;
  cfg.num_shards = 4;
  cfg.flush_threshold = 64;
  cfg.flush_interval = std::chrono::microseconds(200);
  // A deep AsOf ring, so a client (or the CI smoke job) can pin an
  // epoch with --as-of and compare answers across the writer and
  // lagging replicas while the serve-mode trickle keeps publishing.
  cfg.retain_epochs = 512;
  if (data_dir) {
    cfg.persist.dir = data_dir;
    cfg.persist.checkpoint_every = 32;
  }
  return cfg;
}

// The demo churn: random inserts/erases from a fixed seed, so the
// writer's final clustering is deterministic and the oracle line can be
// checked against any client or replica answer.
void run_churn(SldService& svc, vertex_id n, int updates) {
  par::Rng rng(2026);
  std::vector<ticket_t> live;
  for (int i = 0; i < updates; ++i) {
    if (!live.empty() && rng.next_double() < 0.3) {
      size_t j = rng.next_bounded(live.size());
      svc.erase(live[j]);
      live[j] = live.back();
      live.pop_back();
    } else {
      vertex_id u = rng.next_bounded(n), v;
      do {
        v = rng.next_bounded(n);
      } while (v == u);
      live.push_back(svc.insert(u, v, rng.next_double()));
    }
  }
}

// --serve: writer process. Ingest, print the oracle, serve until
// signalled.
int run_server_mode(uint16_t port, const char* data_dir, bool metrics) {
  ServiceConfig cfg = demo_config(data_dir);
  std::unique_ptr<SldService> owned;
  try {
    owned = std::make_unique<SldService>(cfg);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  SldService& svc = *owned;
  svc.start_writer();
  run_churn(svc, cfg.num_vertices, 20000);
  svc.flush();

  QueryRequest oracle;
  oracle.queries = {NumClustersQuery{0.25}};
  ResultSet rs = svc.submit(std::move(oracle)).get();
  std::printf("oracle epoch=%llu num_clusters@0.25=%llu\n",
              (unsigned long long)rs.epoch,
              (unsigned long long)std::get<uint64_t>(rs.results[0]));

  net::RpcServer::Options sopt;
  sopt.port = port;
  std::unique_ptr<net::RpcServer> server;
  try {
    server = std::make_unique<net::RpcServer>(svc, sopt);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("ready\n");
  std::fflush(stdout);

  // Keep a trickle of updates flowing so connected replicas exercise
  // live tailing, not just bootstrap.
  par::Rng rng(4242);
  while (!g_stop.load(std::memory_order_acquire)) {
    vertex_id u = rng.next_bounded(cfg.num_vertices), v;
    do {
      v = rng.next_bounded(cfg.num_vertices);
    } while (v == u);
    svc.insert(u, v, rng.next_double());
    svc.flush();
    std::this_thread::sleep_for(250ms);
  }

  server->stop();
  svc.stop_writer();
  print_report(svc.stats());
  if (metrics)
    std::fprintf(stderr, "%s\n",
                 obs::to_json(svc.obs().registry.scrape()).c_str());
  return 0;
}

// --replica: bootstrap from the writer, tail its stream, optionally
// serve a broker of our own at the (possibly lagging) applied epoch.
int run_replica_mode(const std::string& host, uint16_t writer_port,
                     uint16_t serve_port, bool metrics) {
  net::Replica::Options ropt;
  ropt.host = host;
  ropt.port = writer_port;
  ropt.cfg = demo_config(nullptr);
  std::unique_ptr<net::Replica> replica;
  try {
    replica = std::make_unique<net::Replica>(ropt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replica: %s\n", e.what());
    return 2;
  }
  std::unique_ptr<net::RpcServer> server;
  if (serve_port) {
    net::RpcServer::Options sopt;
    sopt.port = serve_port;
    try {
      server = std::make_unique<net::RpcServer>(replica->service(), sopt);
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  std::printf("replica ready\n");
  std::fflush(stdout);

  while (!g_stop.load(std::memory_order_acquire)) {
    if (replica->desynced()) {
      std::fprintf(stderr, "replica: stream desynced, exiting\n");
      break;
    }
    if (!replica->live()) {
      std::fprintf(stderr, "replica: writer gone, serving frozen epoch %llu\n",
                   (unsigned long long)replica->applied_epoch());
      // Keep serving the last applied epoch until signalled.
      while (!g_stop.load(std::memory_order_acquire))
        std::this_thread::sleep_for(50ms);
      break;
    }
    std::this_thread::sleep_for(50ms);
  }

  if (server) server->stop();
  print_report(replica->service().stats());
  if (metrics)
    std::fprintf(stderr, "%s\n",
                 obs::to_json(replica->service().obs().registry.scrape())
                     .c_str());
  return replica->desynced() ? 3 : 0;
}

// --connect: a wire client. Ping, then the same questions the oracle
// answered, so outputs are directly comparable.
int run_client_mode(const std::string& host, uint16_t port) {
  std::unique_ptr<net::RpcClient> client;
  try {
    client = std::make_unique<net::RpcClient>(host, port);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "connect: %s\n", e.what());
    return 2;
  }
  if (!client->ping()) {
    std::fprintf(stderr, "connect: ping failed\n");
    return 2;
  }
  QueryRequest req;
  req.queries = {NumClustersQuery{0.25}, SizeHistogramQuery{0.25}};
  req.deadline = std::chrono::steady_clock::now() + 2s;
  try {
    ResultSet rs = client->query(req);
    const auto& hist = std::get<SizeHistogram>(rs.results[1]);
    std::printf("epoch=%llu num_clusters@0.25=%llu biggest=%llu\n",
                (unsigned long long)rs.epoch,
                (unsigned long long)std::get<uint64_t>(rs.results[0]),
                (unsigned long long)(hist.bins.empty() ? 0
                                                       : hist.bins.back().first));
  } catch (const QueryError& e) {
    std::fprintf(stderr, "connect: %s\n", e.what());
    return 3;
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "connect: %s\n", e.what());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics = false;
  bool do_recover = false;
  const char* data_dir = nullptr;
  uint16_t serve_port = 0;
  bool serve = false;
  const char* replica_target = nullptr;
  const char* connect_target = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) metrics = true;
    if (std::strcmp(argv[i], "--recover") == 0) do_recover = true;
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc)
      data_dir = argv[++i];
    if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve = true;
      serve_port = static_cast<uint16_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--replica") == 0 && i + 1 < argc)
      replica_target = argv[++i];
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc)
      connect_target = argv[++i];
  }

  if (serve || replica_target) {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
  }
  if (connect_target) {
    std::string host;
    uint16_t port = 0;
    if (!split_hostport(connect_target, &host, &port)) {
      std::fprintf(stderr, "--connect wants HOST:PORT\n");
      return 2;
    }
    return run_client_mode(host, port);
  }
  if (replica_target) {
    std::string host;
    uint16_t port = 0;
    if (!split_hostport(replica_target, &host, &port)) {
      std::fprintf(stderr, "--replica wants HOST:PORT\n");
      return 2;
    }
    return run_replica_mode(host, port, serve_port, metrics);
  }
  if (serve) return run_server_mode(serve_port, data_dir, metrics);

  if (do_recover && !data_dir) {
    std::fprintf(stderr, "--recover requires --data-dir\n");
    return 2;
  }
  const vertex_id n = 1000;
  ServiceConfig cfg = demo_config(data_dir);
  std::unique_ptr<SldService> owned;
  if (do_recover) {
    persist::RecoverResult rec = persist::recover(cfg);
    std::printf(
        "recovered %s: epoch %llu (checkpoint %llu + %llu WAL records%s)\n",
        data_dir, (unsigned long long)rec.tip_epoch,
        (unsigned long long)rec.checkpoint_epoch,
        (unsigned long long)rec.records_replayed,
        rec.torn_tail_truncated ? ", torn tail truncated" : "");
    owned = std::move(rec.service);
  } else {
    try {
      owned = std::make_unique<SldService>(cfg);
    } catch (const std::runtime_error& e) {
      // Most likely: --data-dir already holds durable state.
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  SldService& svc = *owned;
  svc.start_writer();

  // Update producer: random churn, fired from a separate thread to show
  // the front-end is just an enqueue.
  std::thread producer([&] {
    par::Rng rng(2026);
    std::vector<ticket_t> live;
    for (int i = 0; i < 20000; ++i) {
      if (!live.empty() && rng.next_double() < 0.3) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(n), v;
        do {
          v = rng.next_bounded(n);
        } while (v == u);
        live.push_back(svc.insert(u, v, rng.next_double()));
      }
      // Pace the stream so epochs are published while the main thread
      // is still querying (a raw loop would enqueue everything in
      // microseconds).
      if (i % 200 == 199) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Query traffic: submit() is the default read path. Each request
  // carries a deadline; if the broker cannot dispatch it in time it
  // resolves with a typed QueryError instead of running late. All
  // queries of one request answer at ONE epoch (rs.epoch).
  par::Rng qrng(7);
  const double tau = 0.25;
  for (int round = 0; round < 10; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    vertex_id probe = qrng.next_bounded(n);
    QueryRequest req;
    req.queries = {NumClustersQuery{tau}, SizeHistogramQuery{tau},
                   ClusterSizeQuery{probe, tau}};
    req.deadline = std::chrono::steady_clock::now() + 50ms;
    try {
      ResultSet rs = svc.submit(std::move(req)).get();
      const auto& hist = std::get<SizeHistogram>(rs.results[1]);
      std::printf(
          "epoch %4llu: %4llu clusters @tau=%.2f (biggest %llu); vertex "
          "%3u's cluster has %llu members\n",
          (unsigned long long)rs.epoch,
          (unsigned long long)std::get<uint64_t>(rs.results[0]), tau,
          (unsigned long long)(hist.bins.empty() ? 0 : hist.bins.back().first),
          probe, (unsigned long long)std::get<uint64_t>(rs.results[2]));
    } catch (const QueryError& e) {
      std::printf("round %d: %s\n", round, e.what());
    }
  }

  producer.join();
  svc.stop_writer();

  // Read-your-writes: enqueue an edge, then ask AT LEAST the epoch the
  // flush will publish — the broker parks the request until that epoch
  // lands, so the answer is guaranteed to see the write.
  svc.insert(1, 2, 0.05);
  QueryRequest ryw;
  ryw.queries = {SameClusterQuery{1, 2, tau}};
  ryw.consistency = AtLeastEpoch{svc.epoch() + 1};
  auto fut = svc.submit(std::move(ryw));
  svc.flush();
  ResultSet rs = fut.get();
  std::printf("\nread-your-writes at epoch %llu: same_cluster(1,2)=%s\n",
              (unsigned long long)rs.epoch,
              std::get<bool>(rs.results[0]) ? "yes" : "no");

  // submit_batch: several requests spliced into the intake atomically —
  // their shared thresholds collapse into cross-client groups, each
  // backed by one resolution.
  std::vector<QueryRequest> batch(4);
  for (int i = 0; i < 4; ++i) {
    double t = i % 2 ? 0.4 : 0.15;
    batch[i].queries = {SameClusterQuery{1, 2, t}, ClusterSizeQuery{3, t},
                        NumClustersQuery{t}};
  }
  auto futs = svc.submit_batch(std::move(batch));
  for (size_t i = 0; i < futs.size(); ++i) {
    ResultSet r = futs[i].get();
    double t = i % 2 ? 0.4 : 0.15;
    std::printf(
        "batch[%zu] @tau=%.2f: same_cluster(1,2)=%s  |cluster(3)|=%llu  "
        "clusters=%llu\n",
        i, t, std::get<bool>(r.results[0]) ? "yes" : "no",
        (unsigned long long)std::get<uint64_t>(r.results[1]),
        (unsigned long long)std::get<uint64_t>(r.results[2]));
  }
  print_report(svc.stats());
  // --metrics: the whole observability surface in one scrape — every
  // EngineStats counter, the live gauges, and the flush/broker latency
  // histograms (p50/p90/p99 in ns). Stderr, so piping stdout stays
  // clean.
  if (metrics)
    std::fprintf(stderr, "%s\n",
                 obs::to_json(svc.obs().registry.scrape()).c_str());
  return 0;
}
