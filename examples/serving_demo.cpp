// Serving demo: the engine's end-to-end story in one page.
//
// A background writer thread flushes coalesced update batches while the
// main thread plays "user traffic" through the subscription plane: a
// SubscribedView registers with the service once, every publish
// notifies it, and refresh() carries its resolved ThresholdView across
// epochs incrementally — only the shards a flush actually rebuilt are
// re-resolved, the rest are reused pointer-identically. The finale
// runs a typed Query batch (SubscribedView::run) mixing thresholds.
//
//   $ ./serving_demo
#include <cstdio>
#include <thread>

#include "engine/sld_service.hpp"
#include "parallel/random.hpp"

using namespace dynsld;
using namespace dynsld::engine;

int main() {
  const vertex_id n = 1000;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 4;
  cfg.flush_threshold = 64;
  cfg.flush_interval = std::chrono::microseconds(200);
  SldService svc(cfg);
  svc.start_writer();

  // Update producer: random churn, fired from a separate thread to show
  // the front-end is just an enqueue.
  std::thread producer([&] {
    par::Rng rng(2026);
    std::vector<ticket_t> live;
    for (int i = 0; i < 20000; ++i) {
      if (!live.empty() && rng.next_double() < 0.3) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(n), v;
        do {
          v = rng.next_bounded(n);
        } while (v == u);
        live.push_back(svc.insert(u, v, rng.next_double()));
      }
      // Pace the stream so epochs are published while the main thread
      // is still querying (a raw loop would enqueue everything in
      // microseconds).
      if (i % 200 == 199) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Query traffic: one long-lived subscription instead of a fresh view
  // per round. refresh() re-pins the latest epoch and swaps only the
  // dirty shards' blob structures in the resolved ThresholdView.
  SubscribedView sub(svc);
  par::Rng qrng(7);
  const double tau = 0.25;
  for (int round = 0; round < 10; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    sub.refresh();  // no-op when no epoch was published meanwhile
    auto tv = sub.at(tau);
    vertex_id probe = qrng.next_bounded(n);
    const SizeHistogram& hist = tv->size_histogram();
    std::printf(
        "epoch %4llu: %5zu tree edges, %4llu clusters @tau=%.2f (biggest "
        "%llu); vertex %3u's cluster has %llu members\n",
        (unsigned long long)sub.epoch(), tv->snapshot().num_tree_edges(),
        (unsigned long long)hist.num_clusters(), tau,
        (unsigned long long)(hist.bins.empty() ? 0 : hist.bins.back().first),
        probe, (unsigned long long)tv->cluster_size(probe));
  }

  producer.join();
  svc.stop_writer();
  sub.refresh();  // catch the shutdown flush

  // Typed batch: mixed kinds across two thresholds, grouped by tau and
  // answered in parallel against the subscription's pinned epoch.
  std::vector<Query> batch;
  for (double t : {0.15, 0.4}) {
    batch.push_back(SameClusterQuery{1, 2, t});
    batch.push_back(ClusterSizeQuery{3, t});
    batch.push_back(SizeHistogramQuery{t});
  }
  std::vector<QueryResult> results = sub.run(batch);
  for (size_t i = 0; i < batch.size(); i += 3) {
    double t = query_tau(batch[i]);
    std::printf(
        "batch @tau=%.2f: same_cluster(1,2)=%s  |cluster(3)|=%llu  "
        "clusters=%llu\n",
        t, std::get<bool>(results[i]) ? "yes" : "no",
        (unsigned long long)std::get<uint64_t>(results[i + 1]),
        (unsigned long long)std::get<SizeHistogram>(results[i + 2])
            .num_clusters());
  }
  print_report(svc.stats());
  return 0;
}
