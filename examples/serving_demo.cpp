// Serving demo: the engine's end-to-end story in one page.
//
// A background writer thread flushes coalesced update batches while the
// main thread plays "user traffic" through the ASYNC request plane:
// every round submits a QueryRequest — typed queries plus a deadline —
// and reaps the future. Concurrent requests at one (epoch, tau) are
// grouped by the broker and share a single merge resolution, no matter
// how many clients ask (serving many users is the whole point). The
// demo closes with read-your-writes via AtLeastEpoch and a submit_batch
// mixing thresholds.
//
//   $ ./serving_demo             # human-readable stats line at the end
//   $ ./serving_demo --metrics   # plus the full registry scrape as
//                                # JSON on stderr (counters, gauges,
//                                # flush/broker latency histograms)
//   $ ./serving_demo --data-dir DIR            # durable: WAL + ckpts
//   $ ./serving_demo --data-dir DIR --recover  # resume a crashed run
//                                # (replays the directory, prints the
//                                # recovered epoch, keeps serving)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/sld_service.hpp"
#include "obs/export.hpp"
#include "parallel/random.hpp"
#include "persist/persist.hpp"

using namespace dynsld;
using namespace dynsld::engine;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  bool metrics = false;
  bool do_recover = false;
  const char* data_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) metrics = true;
    if (std::strcmp(argv[i], "--recover") == 0) do_recover = true;
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc)
      data_dir = argv[++i];
  }
  if (do_recover && !data_dir) {
    std::fprintf(stderr, "--recover requires --data-dir\n");
    return 2;
  }
  const vertex_id n = 1000;
  ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.num_shards = 4;
  cfg.flush_threshold = 64;
  cfg.flush_interval = std::chrono::microseconds(200);
  if (data_dir) {
    // Durable serving: every flushed batch is WAL'd before it mutates
    // the shards, checkpoints land every 32 epochs, and old history is
    // compacted away. Kill this process at any point and --recover
    // picks up where the log ends.
    cfg.persist.dir = data_dir;
    cfg.persist.checkpoint_every = 32;
  }
  std::unique_ptr<SldService> owned;
  if (do_recover) {
    persist::RecoverResult rec = persist::recover(cfg);
    std::printf(
        "recovered %s: epoch %llu (checkpoint %llu + %llu WAL records%s)\n",
        data_dir, (unsigned long long)rec.tip_epoch,
        (unsigned long long)rec.checkpoint_epoch,
        (unsigned long long)rec.records_replayed,
        rec.torn_tail_truncated ? ", torn tail truncated" : "");
    owned = std::move(rec.service);
  } else {
    try {
      owned = std::make_unique<SldService>(cfg);
    } catch (const std::runtime_error& e) {
      // Most likely: --data-dir already holds durable state.
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  SldService& svc = *owned;
  svc.start_writer();

  // Update producer: random churn, fired from a separate thread to show
  // the front-end is just an enqueue.
  std::thread producer([&] {
    par::Rng rng(2026);
    std::vector<ticket_t> live;
    for (int i = 0; i < 20000; ++i) {
      if (!live.empty() && rng.next_double() < 0.3) {
        size_t j = rng.next_bounded(live.size());
        svc.erase(live[j]);
        live[j] = live.back();
        live.pop_back();
      } else {
        vertex_id u = rng.next_bounded(n), v;
        do {
          v = rng.next_bounded(n);
        } while (v == u);
        live.push_back(svc.insert(u, v, rng.next_double()));
      }
      // Pace the stream so epochs are published while the main thread
      // is still querying (a raw loop would enqueue everything in
      // microseconds).
      if (i % 200 == 199) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Query traffic: submit() is the default read path. Each request
  // carries a deadline; if the broker cannot dispatch it in time it
  // resolves with a typed QueryError instead of running late. All
  // queries of one request answer at ONE epoch (rs.epoch).
  par::Rng qrng(7);
  const double tau = 0.25;
  for (int round = 0; round < 10; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    vertex_id probe = qrng.next_bounded(n);
    QueryRequest req;
    req.queries = {NumClustersQuery{tau}, SizeHistogramQuery{tau},
                   ClusterSizeQuery{probe, tau}};
    req.deadline = std::chrono::steady_clock::now() + 50ms;
    try {
      ResultSet rs = svc.submit(std::move(req)).get();
      const auto& hist = std::get<SizeHistogram>(rs.results[1]);
      std::printf(
          "epoch %4llu: %4llu clusters @tau=%.2f (biggest %llu); vertex "
          "%3u's cluster has %llu members\n",
          (unsigned long long)rs.epoch,
          (unsigned long long)std::get<uint64_t>(rs.results[0]), tau,
          (unsigned long long)(hist.bins.empty() ? 0 : hist.bins.back().first),
          probe, (unsigned long long)std::get<uint64_t>(rs.results[2]));
    } catch (const QueryError& e) {
      std::printf("round %d: %s\n", round, e.what());
    }
  }

  producer.join();
  svc.stop_writer();

  // Read-your-writes: enqueue an edge, then ask AT LEAST the epoch the
  // flush will publish — the broker parks the request until that epoch
  // lands, so the answer is guaranteed to see the write.
  svc.insert(1, 2, 0.05);
  QueryRequest ryw;
  ryw.queries = {SameClusterQuery{1, 2, tau}};
  ryw.consistency = AtLeastEpoch{svc.epoch() + 1};
  auto fut = svc.submit(std::move(ryw));
  svc.flush();
  ResultSet rs = fut.get();
  std::printf("\nread-your-writes at epoch %llu: same_cluster(1,2)=%s\n",
              (unsigned long long)rs.epoch,
              std::get<bool>(rs.results[0]) ? "yes" : "no");

  // submit_batch: several requests spliced into the intake atomically —
  // their shared thresholds collapse into cross-client groups, each
  // backed by one resolution.
  std::vector<QueryRequest> batch(4);
  for (int i = 0; i < 4; ++i) {
    double t = i % 2 ? 0.4 : 0.15;
    batch[i].queries = {SameClusterQuery{1, 2, t}, ClusterSizeQuery{3, t},
                        NumClustersQuery{t}};
  }
  auto futs = svc.submit_batch(std::move(batch));
  for (size_t i = 0; i < futs.size(); ++i) {
    ResultSet r = futs[i].get();
    double t = i % 2 ? 0.4 : 0.15;
    std::printf(
        "batch[%zu] @tau=%.2f: same_cluster(1,2)=%s  |cluster(3)|=%llu  "
        "clusters=%llu\n",
        i, t, std::get<bool>(r.results[0]) ? "yes" : "no",
        (unsigned long long)std::get<uint64_t>(r.results[1]),
        (unsigned long long)std::get<uint64_t>(r.results[2]));
  }
  print_report(svc.stats());
  // --metrics: the whole observability surface in one scrape — every
  // EngineStats counter, the live gauges, and the flush/broker latency
  // histograms (p50/p90/p99 in ns). Stderr, so piping stdout stays
  // clean.
  if (metrics)
    std::fprintf(stderr, "%s\n",
                 obs::to_json(svc.obs().registry.scrape()).c_str());
  return 0;
}
