// Quickstart: maintain the single-linkage dendrogram of a small dynamic
// forest, mixing insertions, deletions, and clustering queries.
//
//   $ ./quickstart
#include <cstdio>

#include "dynsld/dyn_sld.hpp"

using namespace dynsld;

namespace {

void print_dendrogram(const DynSLD& s) {
  const Dendrogram& d = s.dendrogram();
  std::printf("  dendrogram (%zu merge nodes, height %zu):\n", d.size(),
              d.height());
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (!d.alive(e)) continue;
    const auto& nd = d.node(e);
    if (nd.parent == kNoEdge) {
      std::printf("    node %u: merge (%u,%u) at weight %.1f  [root]\n", e,
                  nd.u, nd.v, nd.weight);
    } else {
      std::printf("    node %u: merge (%u,%u) at weight %.1f  -> node %u\n", e,
                  nd.u, nd.v, nd.weight, nd.parent);
    }
  }
}

}  // namespace

int main() {
  // Eight points; similarities arrive as weighted edges of the minimum
  // spanning forest (lower weight = more similar).
  DynSLD s(8, SpineIndex::kLct);

  std::printf("inserting edges...\n");
  s.insert(0, 1, 1.0);
  s.insert(1, 2, 4.0);
  s.insert(3, 4, 2.0);
  edge_id bridge = s.insert(2, 3, 9.0);  // weak bridge between groups
  s.insert(5, 6, 3.0);
  s.insert(6, 7, 5.0);
  print_dendrogram(s);

  std::printf("\nqueries at threshold 5.0:\n");
  std::printf("  same_cluster(0, 4)  = %s\n",
              s.same_cluster(0, 4, 5.0) ? "yes" : "no");
  std::printf("  cluster_size(0)     = %llu\n",
              static_cast<unsigned long long>(s.cluster_size(0, 5.0)));
  auto members = s.cluster_report(5, 5.0);
  std::printf("  cluster_report(5)   = {");
  for (auto v : members) std::printf(" %u", v);
  std::printf(" }\n");

  std::printf("\ndeleting the weak bridge (weight 9.0)...\n");
  s.erase(bridge);
  print_dendrogram(s);

  std::printf("\nflat clustering at threshold 3.5:\n  labels:");
  auto labels = s.flat_clustering(3.5);
  for (vertex_id v = 0; v < s.num_vertices(); ++v) {
    std::printf(" %u:%u", v, labels[v]);
  }
  std::printf("\n");
  return 0;
}
