#!/usr/bin/env python3
"""Compare two dynsld-bench-v1 trajectory files (BENCH_*.json) and flag
regressions.

Metrics are matched by (experiment, name). The unit decides which
direction is a regression:

  - time units (ns / us / ms / s): bigger is worse
  - rates (unit ending in "/s") and speedup factors ("x"): smaller is
    worse
  - everything else ("count", "%", ...): reported, never a regression

Usage:

  python3 tools/bench_diff.py BENCH_old.json BENCH_new.json \
      --threshold 25

Exits non-zero when any comparable metric regressed by more than
--threshold percent (default 10). Metrics present on one side only are
reported but never fail the diff. Values below --min-us microseconds
(time metrics only, default 50) are skipped as noise-dominated.
"""

import argparse
import json
import sys

TIME_UNITS = {"ns", "us", "ms", "s"}
TIME_TO_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dynsld-bench-v1":
        sys.exit(f"{path}: not a dynsld-bench-v1 file")
    return doc


def direction(unit):
    """+1: bigger is worse; -1: smaller is worse; 0: informational."""
    if unit in TIME_UNITS:
        return +1
    if unit.endswith("/s") or unit == "x":
        return -1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline BENCH_*.json")
    ap.add_argument("new", help="candidate BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="regression tolerance in percent (default 10)",
    )
    ap.add_argument(
        "--min-us",
        type=float,
        default=50.0,
        metavar="US",
        help="skip time metrics below this many microseconds (noise)",
    )
    args = ap.parse_args()

    old_doc, new_doc = load(args.old), load(args.new)
    if old_doc.get("smoke") != new_doc.get("smoke"):
        print(
            "warning: comparing a smoke run against a full run",
            file=sys.stderr,
        )

    old = {
        (m["experiment"], m["name"]): m for m in old_doc["metrics"]
    }
    new = {
        (m["experiment"], m["name"]): m for m in new_doc["metrics"]
    }

    regressions = []
    print(f"{'experiment:name':<44} {'old':>12} {'new':>12} {'delta':>9}")
    for key in sorted(old.keys() | new.keys()):
        label = f"{key[0]}:{key[1]}"
        if key not in old:
            print(f"{label:<44} {'-':>12} {new[key]['value']:>12.4g}   (new)")
            continue
        if key not in new:
            print(f"{label:<44} {old[key]['value']:>12.4g} {'-':>12}   (gone)")
            continue
        o, n = old[key]["value"], new[key]["value"]
        unit = new[key]["unit"]
        if o == 0:
            delta = 0.0 if n == 0 else float("inf")
        else:
            delta = 100.0 * (n - o) / o
        sign = direction(unit)
        worse = sign * delta
        flag = ""
        skipped = (
            unit in TIME_UNITS
            and max(o, n) * TIME_TO_US[unit] < args.min_us
        )
        if sign and not skipped and worse > args.threshold:
            flag = "  REGRESSION"
            regressions.append((label, o, n, delta, unit))
        elif sign and not skipped and worse < -args.threshold:
            flag = "  improved"
        print(
            f"{label:<44} {o:>12.4g} {n:>12.4g} {delta:>+8.1f}%{flag}"
        )

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for label, o, n, delta, unit in regressions:
            print(
                f"  {label}: {o:.4g} -> {n:.4g} {unit} ({delta:+.1f}%)",
                file=sys.stderr,
            )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
