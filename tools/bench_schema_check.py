#!/usr/bin/env python3
"""Validate a BENCH_*.json trajectory file against the dynsld-bench-v1
schema (bench/bench_util.hpp JsonLog is the writer).

Checks:
  - top-level keys: schema (== "dynsld-bench-v1"), bench (str),
    smoke (bool), workers (int), metrics (list)
  - every metric record: experiment (str), name (str), value (finite
    number), unit (str)
  - no duplicate (experiment, name) pairs (bench_diff.py keys on them)
  - each --require EXPERIMENT:NAME is present

Exit status is the number of problems found (0 = valid), so CI can
gate on it directly:

  python3 tools/bench_schema_check.py BENCH_engine.json \
      --require E-ENGINE-7:broker_fulfill_p50_us
"""

import argparse
import json
import math
import sys

SCHEMA = "dynsld-bench-v1"

TOP_KEYS = {
    "schema": str,
    "bench": str,
    "smoke": bool,
    "workers": int,
    "metrics": list,
}
METRIC_KEYS = {
    "experiment": str,
    "name": str,
    "value": (int, float),
    "unit": str,
}


def check(path, requires):
    problems = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    for key, typ in TOP_KEYS.items():
        if key not in doc:
            problems.append(f"{path}: missing top-level key '{key}'")
        elif not isinstance(doc[key], typ) or (
            typ is int and isinstance(doc[key], bool)
        ):
            problems.append(
                f"{path}: key '{key}' is {type(doc[key]).__name__}, "
                f"want {typ.__name__}"
            )
    if doc.get("schema") not in (None, SCHEMA):
        problems.append(
            f"{path}: schema is {doc['schema']!r}, want {SCHEMA!r}"
        )

    seen = set()
    for i, m in enumerate(doc.get("metrics") or []):
        where = f"{path}: metrics[{i}]"
        if not isinstance(m, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, typ in METRIC_KEYS.items():
            if key not in m:
                problems.append(f"{where}: missing '{key}'")
            elif not isinstance(m[key], typ) or isinstance(m[key], bool):
                problems.append(
                    f"{where}: '{key}' is {type(m[key]).__name__}"
                )
        val = m.get("value")
        if isinstance(val, float) and not math.isfinite(val):
            problems.append(f"{where}: value is not finite")
        key = (m.get("experiment"), m.get("name"))
        if all(key):
            if key in seen:
                problems.append(f"{where}: duplicate metric {key}")
            seen.add(key)

    for req in requires:
        exp, _, name = req.partition(":")
        if not name:
            problems.append(f"--require '{req}' is not EXPERIMENT:NAME")
        elif (exp, name) not in seen:
            problems.append(f"{path}: required metric {exp}:{name} missing")

    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="BENCH_*.json files to check")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="EXPERIMENT:NAME",
        help="fail unless this metric is present (repeatable)",
    )
    args = ap.parse_args()

    problems = []
    for path in args.files:
        problems += check(path, args.require)
    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        print(f"schema OK: {', '.join(args.files)}")
    return min(len(problems), 100)


if __name__ == "__main__":
    sys.exit(main())
