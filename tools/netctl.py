#!/usr/bin/env python3
"""Talk to a running dynsld RpcServer from the command line.

A tiny pure-python client for the wire protocol in src/net/protocol.hpp
(full byte tables in docs/NETWORK.md): 16-byte frames — magic "DSN1",
version, type, payload length, CRC-32C chained over the type byte and
payload — carrying hello/query/result messages. Used by the CI loopback
smoke job to drive a server process and compare its answers with a
direct library run.

Usage:

  python3 tools/netctl.py ping HOST:PORT
      Handshake + kPing/kPong round trip. Prints the ack as JSON
      ({"epoch": ..., "num_vertices": ..., "num_shards": ...}).

  python3 tools/netctl.py epoch HOST:PORT
      Print the server's epoch at connect time (from the hello ack).

  python3 tools/netctl.py query HOST:PORT [--num-clusters TAU]
      [--histogram TAU] [--cluster-size U TAU] [--same-cluster U V TAU]
      [--members U TAU] [--labels TAU]
      [--at-least-epoch E | --as-of E] [--timeout-ms MS]
      [--client-id ID] [--weight W]
      Send one QueryRequest carrying every query given (repeatable,
      order preserved) and print the ResultSet as JSON:
      {"epoch": E, "results": [...]}. Query errors print
      {"error": "<code>"} and exit 3; transport failures exit 2.
"""

import argparse
import json
import socket
import struct
import sys

MAGIC = 0x314E5344  # "DSN1"
VERSION = 1
HEADER = struct.Struct("<IBBBBII")
MAX_FRAME = 64 << 20

T_HELLO, T_HELLO_ACK, T_QUERY, T_RESULT, T_ERROR, T_PING, T_PONG = range(1, 8)

CONS_LATEST, CONS_AT_LEAST_EPOCH, CONS_AS_OF = 0, 1, 2
NO_TIMEOUT = 0xFFFFFFFF
Q_SAME_CLUSTER, Q_CLUSTER_SIZE, Q_CLUSTER_REPORT = 0, 1, 2
Q_FLAT_CLUSTERING, Q_SIZE_HISTOGRAM, Q_NUM_CLUSTERS = 3, 4, 5
R_BOOL, R_U64, R_VERTEX_VEC, R_HISTOGRAM = 0, 1, 2, 3
ERROR_NAMES = [
    "deadline_exceeded", "cancelled", "admission_rejected", "shutdown",
    "epoch_unavailable",
]

# CRC-32C (Castagnoli, reflected poly 0x82F63B78), matching
# src/persist/crc32c.hpp bit for bit.
_TABLE = []
for _n in range(256):
    _c = _n
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _TABLE.append(_c)


def crc32c(data, seed=0):
    crc = seed ^ 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def frame_crc(mtype, payload):
    return crc32c(payload, crc32c(bytes([mtype])))


def encode_frame(mtype, payload):
    return HEADER.pack(MAGIC, VERSION, mtype, 0, 0, len(payload),
                       frame_crc(mtype, payload)) + payload


def read_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        buf += chunk
    return buf


def read_frame(sock):
    magic, version, mtype, _, _, length, crc = HEADER.unpack(
        read_exact(sock, HEADER.size))
    if magic != MAGIC or version != VERSION or length > MAX_FRAME:
        raise ConnectionError("malformed frame header")
    payload = read_exact(sock, length)
    if frame_crc(mtype, payload) != crc:
        raise ConnectionError("frame CRC mismatch")
    return mtype, payload


def connect(target, client_id=0, weight=1):
    host, _, port = target.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=30)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    hello = struct.pack("<QIB", client_id, weight, 0)  # role 0 = client
    sock.sendall(encode_frame(T_HELLO, hello))
    mtype, payload = read_frame(sock)
    if mtype != T_HELLO_ACK:
        raise ConnectionError("expected hello ack, got type %d" % mtype)
    epoch, num_vertices, num_shards = struct.unpack("<QII", payload)
    return sock, {"epoch": epoch, "num_vertices": num_vertices,
                  "num_shards": num_shards}


def decode_results(payload):
    (req_id, epoch, n) = struct.unpack_from("<QQI", payload)
    off = 20
    results = []
    for _ in range(n):
        kind = payload[off]
        off += 1
        if kind == R_BOOL:
            results.append(bool(payload[off]))
            off += 1
        elif kind == R_U64:
            (v,) = struct.unpack_from("<Q", payload, off)
            results.append(v)
            off += 8
        elif kind == R_VERTEX_VEC:
            (count,) = struct.unpack_from("<Q", payload, off)
            off += 8
            results.append(list(struct.unpack_from("<%dI" % count, payload,
                                                   off)))
            off += 4 * count
        elif kind == R_HISTOGRAM:
            (bins,) = struct.unpack_from("<Q", payload, off)
            off += 8
            hist = []
            for _b in range(bins):
                size, cnt = struct.unpack_from("<QQ", payload, off)
                off += 16
                hist.append([size, cnt])
            results.append(hist)
        else:
            raise ConnectionError("unknown result kind %d" % kind)
    return req_id, epoch, results


def build_query_payload(args):
    w = bytearray()
    w += struct.pack("<Q", 1)  # request id
    if args.at_least_epoch is not None:
        w += struct.pack("<BQ", CONS_AT_LEAST_EPOCH, args.at_least_epoch)
    elif args.as_of is not None:
        w += struct.pack("<BQ", CONS_AS_OF, args.as_of)
    else:
        w += struct.pack("<BQ", CONS_LATEST, 0)
    w += struct.pack("<I", args.timeout_ms if args.timeout_ms is not None
                     else NO_TIMEOUT)
    w += struct.pack("<I", len(args.ordered_queries))
    for kind, params in args.ordered_queries:
        if kind == Q_SAME_CLUSTER:
            w += struct.pack("<BIId", kind, int(params[0]), int(params[1]),
                             float(params[2]))
        elif kind in (Q_CLUSTER_SIZE, Q_CLUSTER_REPORT):
            w += struct.pack("<BId", kind, int(params[0]), float(params[1]))
        else:
            w += struct.pack("<Bd", kind, float(params[0]))
    return bytes(w)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_ping = sub.add_parser("ping")
    p_ping.add_argument("target")
    p_epoch = sub.add_parser("epoch")
    p_epoch.add_argument("target")

    p_query = sub.add_parser("query")
    p_query.add_argument("target")
    p_query.add_argument("--num-clusters", action="append", nargs=1,
                         metavar="TAU")
    p_query.add_argument("--histogram", action="append", nargs=1,
                         metavar="TAU")
    p_query.add_argument("--labels", action="append", nargs=1, metavar="TAU")
    p_query.add_argument("--cluster-size", action="append", nargs=2,
                         metavar=("U", "TAU"))
    p_query.add_argument("--members", action="append", nargs=2,
                         metavar=("U", "TAU"))
    p_query.add_argument("--same-cluster", action="append", nargs=3,
                         metavar=("U", "V", "TAU"))
    p_query.add_argument("--at-least-epoch", type=int)
    p_query.add_argument("--as-of", type=int)
    p_query.add_argument("--timeout-ms", type=int)
    p_query.add_argument("--client-id", type=int, default=0)
    p_query.add_argument("--weight", type=int, default=1)
    args = ap.parse_args()

    try:
        if args.cmd in ("ping", "epoch"):
            sock, ack = connect(args.target)
            if args.cmd == "ping":
                sock.sendall(encode_frame(T_PING, b""))
                mtype, _ = read_frame(sock)
                if mtype != T_PONG:
                    raise ConnectionError("expected pong, got %d" % mtype)
                print(json.dumps(ack))
            else:
                print(ack["epoch"])
            sock.close()
            return 0

        queries = []
        for flag, kind in [("num_clusters", Q_NUM_CLUSTERS),
                           ("histogram", Q_SIZE_HISTOGRAM),
                           ("labels", Q_FLAT_CLUSTERING),
                           ("cluster_size", Q_CLUSTER_SIZE),
                           ("members", Q_CLUSTER_REPORT),
                           ("same_cluster", Q_SAME_CLUSTER)]:
            for params in getattr(args, flag) or []:
                queries.append((kind, params))
        if not queries:
            print("query: give at least one query flag", file=sys.stderr)
            return 2
        args.ordered_queries = queries
        sock, _ = connect(args.target, args.client_id, args.weight)
        sock.sendall(encode_frame(T_QUERY, build_query_payload(args)))
        mtype, payload = read_frame(sock)
        sock.close()
        if mtype == T_ERROR:
            (_, code) = struct.unpack("<QB", payload)
            name = (ERROR_NAMES[code] if code < len(ERROR_NAMES)
                    else "code_%d" % code)
            print(json.dumps({"error": name}))
            return 3
        if mtype != T_RESULT:
            raise ConnectionError("expected result, got type %d" % mtype)
        _, epoch, results = decode_results(payload)
        print(json.dumps({"epoch": epoch, "results": results}))
        return 0
    except (OSError, ConnectionError, struct.error) as e:
        print("netctl: %s" % e, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
