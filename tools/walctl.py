#!/usr/bin/env python3
"""Inspect and repair a dynsld durability directory (WAL segments +
checkpoints) without the engine.

The on-disk formats are fixed and documented in docs/DURABILITY.md:

  wal-<epoch%020d>.log   "DSLDWAL1" u32 version | records:
                         u32 payload_len, u32 crc32c(payload), payload
                         payload = u64 epoch, u32 n_ins, u32 n_era,
                                   ins{u64 ticket,u32 u,u32 v,f64 w}*,
                                   era{u64 ticket,u32 u,u32 v}*
  ckpt-<epoch%020d>.bin  "DSLDCKP1" u32 version, u32 payload_len,
                         u32 crc32c(payload), payload

Everything is little-endian; CRC-32C (Castagnoli).

Usage:

  python3 tools/walctl.py list <dir>
      One line per file: name, size, epoch range, record/edge counts,
      and validation status (OK / TORN at byte N / CORRUPT).

  python3 tools/walctl.py verify <dir>
      Re-checks every CRC in every file. Exit 0 when all clean, 1 when
      any segment is torn or any checkpoint corrupt.

  python3 tools/walctl.py cat <dir>/wal-....log
      Dump each record (epoch, inserts, erases) as JSON lines.

  python3 tools/walctl.py truncate --truncate-torn-tail <dir>
      Truncate every torn segment back to its last valid record
      boundary (what recover() would do). Prints what was cut.
      Refuses to touch anything without the explicit flag.
"""

import argparse
import json
import os
import re
import struct
import sys

WAL_MAGIC = b"DSLDWAL1"
CKPT_MAGIC = b"DSLDCKP1"
WAL_RE = re.compile(r"^wal-(\d{20})\.log$")
CKPT_RE = re.compile(r"^ckpt-(\d{20})\.bin$")

# CRC-32C (Castagnoli, reflected poly 0x82F63B78), matching
# src/persist/crc32c.hpp bit for bit.
_TABLE = []
for _n in range(256):
    _c = _n
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _TABLE.append(_c)


def crc32c(data, seed=0):
    crc = seed ^ 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class Scan:
    """Result of walking one WAL segment."""

    def __init__(self):
        self.records = []     # (epoch, n_inserts, n_erases)
        self.valid_bytes = 0  # resumable prefix length
        self.torn = False
        self.error = None     # header-level problem (not a tear)


def scan_wal(data):
    s = Scan()
    if len(data) < 12 or data[:8] != WAL_MAGIC:
        s.error = "bad or missing segment header"
        return s
    (version,) = struct.unpack_from("<I", data, 8)
    if version != 1:
        s.error = f"unsupported WAL version {version}"
        return s
    off = 12
    s.valid_bytes = off
    while off < len(data):
        if off + 8 > len(data):
            s.torn = True
            return s
        length, crc = struct.unpack_from("<II", data, off)
        payload = data[off + 8 : off + 8 + length]
        if len(payload) < length or crc32c(payload) != crc:
            s.torn = True
            return s
        rec = parse_record(payload)
        if rec is None:
            s.torn = True
            return s
        s.records.append(rec)
        off += 8 + length
        s.valid_bytes = off
    return s


def parse_record(payload):
    """(epoch, inserts, erases) or None when the payload is malformed."""
    if len(payload) < 16:
        return None
    epoch, n_ins, n_era = struct.unpack_from("<QII", payload, 0)
    need = 16 + n_ins * 24 + n_era * 16
    if len(payload) != need:
        return None
    inserts, erases = [], []
    off = 16
    for _ in range(n_ins):
        t, u, v, w = struct.unpack_from("<QIId", payload, off)
        inserts.append({"ticket": t, "u": u, "v": v, "w": w})
        off += 24
    for _ in range(n_era):
        t, u, v = struct.unpack_from("<QII", payload, off)
        erases.append({"ticket": t, "u": u, "v": v})
        off += 16
    return epoch, inserts, erases


def check_ckpt(data):
    """None when valid, else a reason string."""
    if len(data) < 20 or data[:8] != CKPT_MAGIC:
        return "bad or missing checkpoint header"
    version, length, crc = struct.unpack_from("<III", data, 8)
    if version != 1:
        return f"unsupported checkpoint version {version}"
    payload = data[20 : 20 + length]
    if len(payload) != length or len(data) != 20 + length:
        return "size mismatch"
    if crc32c(payload) != crc:
        return "CRC mismatch"
    return None


def durable_files(dirpath):
    segs, ckpts = [], []
    try:
        names = sorted(os.listdir(dirpath))
    except OSError as e:
        sys.exit(f"walctl: {e}")
    for name in names:
        if WAL_RE.match(name):
            segs.append(name)
        elif CKPT_RE.match(name):
            ckpts.append(name)
    return segs, ckpts


def describe_seg(dirpath, name):
    with open(os.path.join(dirpath, name), "rb") as f:
        data = f.read()
    s = scan_wal(data)
    if s.error:
        status = f"CORRUPT ({s.error})"
    elif s.torn:
        status = f"TORN at byte {s.valid_bytes}"
    else:
        status = "OK"
    epochs = [r[0] for r in s.records]
    span = f"epochs {epochs[0]}..{epochs[-1]}" if epochs else "empty"
    ops = sum(len(r[1]) + len(r[2]) for r in s.records)
    return s, (f"{name}  {len(data):>10} B  {span:<24} "
               f"{len(s.records):>5} rec {ops:>6} ops  {status}")


def describe_ckpt(dirpath, name):
    with open(os.path.join(dirpath, name), "rb") as f:
        data = f.read()
    reason = check_ckpt(data)
    status = "OK" if reason is None else f"CORRUPT ({reason})"
    epoch = int(CKPT_RE.match(name).group(1))
    return reason, (f"{name}  {len(data):>10} B  epoch {epoch:<18} "
                    f"{'':>16} {status}")


def cmd_list(args):
    segs, ckpts = durable_files(args.dir)
    dirty = False
    for name in ckpts:
        reason, line = describe_ckpt(args.dir, name)
        dirty |= reason is not None
        print(line)
    for name in segs:
        s, line = describe_seg(args.dir, name)
        dirty |= s.torn or s.error is not None
        print(line)
    if not segs and not ckpts:
        print(f"{args.dir}: no durable state")
    return 1 if dirty else 0


def cmd_verify(args):
    rc = cmd_list(args)
    print("DIRTY" if rc else "CLEAN")
    return rc


def cmd_cat(args):
    with open(args.file, "rb") as f:
        data = f.read()
    s = scan_wal(data)
    if s.error:
        sys.exit(f"{args.file}: {s.error}")
    for epoch, inserts, erases in s.records:
        print(json.dumps({"epoch": epoch, "inserts": inserts,
                          "erases": erases}))
    if s.torn:
        print(f"# torn tail after byte {s.valid_bytes}", file=sys.stderr)
        return 1
    return 0


def cmd_truncate(args):
    if not args.truncate_torn_tail:
        sys.exit("walctl: truncate requires the explicit "
                 "--truncate-torn-tail flag (it rewrites files)")
    segs, _ = durable_files(args.dir)
    for name in segs:
        path = os.path.join(args.dir, name)
        with open(path, "rb") as f:
            data = f.read()
        s = scan_wal(data)
        if s.error:
            print(f"{name}: {s.error} — left alone (recover() drops it)")
            continue
        if not s.torn:
            continue
        with open(path, "r+b") as f:
            f.truncate(s.valid_bytes)
        print(f"{name}: truncated {len(data) - s.valid_bytes} B of torn "
              f"tail (now {s.valid_bytes} B, {len(s.records)} records)")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = p.add_subparsers(dest="cmd", required=True)
    sp = sub.add_parser("list", help="list and validate durable files")
    sp.add_argument("dir")
    sp.set_defaults(fn=cmd_list)
    sp = sub.add_parser("verify", help="exit non-zero on any corruption")
    sp.add_argument("dir")
    sp.set_defaults(fn=cmd_verify)
    sp = sub.add_parser("cat", help="dump a segment's records as JSON lines")
    sp.add_argument("file")
    sp.set_defaults(fn=cmd_cat)
    sp = sub.add_parser("truncate", help="cut torn tails back to a record "
                        "boundary")
    sp.add_argument("dir")
    sp.add_argument("--truncate-torn-tail", action="store_true")
    sp.set_defaults(fn=cmd_truncate)
    args = p.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
