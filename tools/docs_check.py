#!/usr/bin/env python3
"""Docs hygiene for the engine's public surface and the docs/ tree.

Two checks, both enforced by CI (and runnable locally from anywhere):

  1. Public-API comment coverage over src/engine/*.hpp,
     src/net/*.hpp, src/obs/*.hpp and src/persist/*.hpp.
     Every *public declaration* — a namespace-scope class / struct /
     enum / using / free function, or a public member function — must
     carry a comment block: the declaration, or the contiguous run of
     single-line declarations it belongs to, is immediately preceded by
     a `//` / `///` comment. Runs let one comment cover a tight group
     of one-line accessors (the established header style); a blank line
     breaks the run, so an uncommented declaration can't hide behind an
     unrelated comment half a screen up.

     Exempt: data members (fields document themselves or ride a section
     comment), `= default` / `= delete` special members, access
     specifiers, braces, preprocessor lines, and anything inside
     function bodies / enums / initializers.

  2. Markdown link integrity over docs/*.md and README.md.
     Every relative link target must exist on disk, and a `#fragment`
     pointing into a markdown file must match one of its heading slugs.

Exit status is the number of problems found (0 == clean).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

HEADER_GLOBS = ["src/engine/*.hpp", "src/net/*.hpp", "src/obs/*.hpp",
                "src/persist/*.hpp"]
DOC_FILES = ["README.md", "docs/*.md"]

EXEMPT_DECL = re.compile(r"=\s*(default|delete)\s*;")
FORWARD_DECL = re.compile(r"^\s*(class|struct)\s+\w+\s*;$")
ACCESS = re.compile(r"^\s*(public|private|protected)\s*:\s*$")
TYPE_DECL = re.compile(r"^\s*(template\s*<.*>\s*)?(class|struct|enum|union)\s+\w")
USING_DECL = re.compile(r"^\s*using\s+\w+\s*=")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving line
    structure, so brace counting can't be fooled. Marks comment-only
    lines with a leading '\x01' sentinel."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        had_code = False
        had_comment = in_block
        i = 0
        while i < len(raw):
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < len(raw) else ""
            if in_block:
                had_comment = True
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if c == "/" and nxt == "/":
                had_comment = True
                break  # line comment: rest of line gone
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < len(raw):
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        break
                    i += 1
                buf.append(quote)
                i += 1
                continue
            if not c.isspace():
                had_code = True
            buf.append(c)
            i += 1
        text = "".join(buf).rstrip()
        if not had_code and had_comment:
            out.append("\x01")  # comment-only line
        else:
            out.append(text)
    return out


def is_function_decl(stmt: str) -> bool:
    """A '(' before any '=' or brace-init marks a function (or operator)
    rather than a data member."""
    for ch_i, ch in enumerate(stmt):
        if ch == "(":
            return True
        if ch == "=" or ch == "{":
            return False
    return False


def check_header(path: pathlib.Path) -> list[str]:
    raw = path.read_text().splitlines()
    code = strip_comments_and_strings(raw)
    problems = []

    # Scope stack entries: ('ns',) / ('class', access) / ('other',)
    stack: list[list] = []
    stmt = ""        # statement accumulated since last ; { }
    stmt_line = 0    # line the current statement opened on
    covered = False  # is the current statement covered by a comment/run?
    prev_kind = "none"  # what the previous finished line was:
    #   'comment' | 'covered-decl' | 'code' | 'blank' | 'none'

    def eligible() -> bool:
        if any(s[0] == "other" for s in stack):
            return False
        for s in reversed(stack):
            if s[0] == "class":
                return s[1] == "public"
        return True  # namespace scope

    def classify(opened_stmt: str) -> list:
        if re.search(r"\bnamespace\b", opened_stmt):
            return ["ns"]
        m = re.search(r"\b(class|struct)\b", opened_stmt)
        if m and "enum" not in opened_stmt and not is_function_decl(
                opened_stmt.split("{")[0]):
            default = "public" if m.group(1) == "struct" else "private"
            return ["class", default]
        return ["other"]

    def flag(line_no: int, stmt_text: str) -> None:
        head = " ".join(stmt_text.split())[:70]
        problems.append(f"{path.relative_to(ROOT)}:{line_no}: "
                        f"public declaration lacks a comment block: {head}")

    def finish_decl(line_no: int, stmt_text: str, single_line: bool) -> None:
        nonlocal prev_kind
        s = stmt_text.strip()
        if not s or s.startswith("#"):
            prev_kind = "code"
            return
        if not eligible():
            prev_kind = "code"
            return
        if ACCESS.match(s) or s in ("};", "}", "{"):
            prev_kind = "code"
            return
        if EXEMPT_DECL.search(s) or FORWARD_DECL.match(s):
            prev_kind = "covered-decl"
            return
        is_type = bool(TYPE_DECL.match(s)) or bool(USING_DECL.match(s))
        is_func = is_function_decl(s)
        if not (is_type or is_func):  # data member or friend-less misc
            prev_kind = "code"
            return
        if covered:
            prev_kind = "covered-decl" if single_line else "code"
        else:
            flag(line_no, s)
            prev_kind = "code"

    for idx, line in enumerate(code, start=1):
        if line == "\x01":  # comment-only line
            prev_kind = "comment"
            continue
        if not line.strip():
            if not stmt.strip():
                prev_kind = "blank"
            continue
        if line.lstrip().startswith("#"):
            prev_kind = "code"
            continue
        if not stmt.strip():
            stmt_line = idx
            covered = prev_kind in ("comment", "covered-decl")
        stmt += " " + line
        # Consume the statement character-wise for scope tracking.
        consumed = ""
        for ch in line:
            consumed += ch
            if ch == "{":
                opened = stmt[: stmt.rfind("{") + 1] if "{" in stmt else stmt
                kind = classify(opened)
                if kind[0] == "class" and eligible():
                    # the type header itself is a declaration to check
                    finish_decl(stmt_line, opened.split("{")[0], False)
                stack.append(kind)
                stmt = ""
            elif ch == "}":
                if stack:
                    stack.pop()
                stmt = ""
            elif ch == ";":
                finish_decl(stmt_line, stmt.rstrip(";").strip() + ";",
                            single_line=(stmt_line == idx))
                stmt = ""
            elif ch == ":":
                s = stmt.strip()
                if ACCESS.match(s):
                    for sc in reversed(stack):
                        if sc[0] == "class":
                            sc[1] = s.rstrip(":").strip()
                            break
                    stmt = ""
    return problems


HEADING = re.compile(r"^#{1,6}\s+(.*)$")
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def slugify(heading: str) -> str:
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def md_slugs(path: pathlib.Path) -> set[str]:
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if m:
            slugs.add(slugify(m.group(1)))
    return slugs


def check_links(path: pathlib.Path) -> list[str]:
    problems = []
    in_fence = False
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            frag = ""
            if "#" in target:
                target, frag = target.split("#", 1)
            dest = path if not target else (path.parent / target).resolve()
            rel = f"{path.relative_to(ROOT)}:{line_no}"
            if target and not dest.exists():
                problems.append(f"{rel}: broken link target: {m.group(1)}")
                continue
            if frag and dest.suffix == ".md":
                if frag not in md_slugs(dest):
                    problems.append(
                        f"{rel}: missing anchor #{frag} in {dest.name}")
    return problems


def main() -> int:
    problems = []
    for pattern in HEADER_GLOBS:
        for hpp in sorted(ROOT.glob(pattern)):
            problems += check_header(hpp)
    for pattern in DOC_FILES:
        for md in sorted(ROOT.glob(pattern)):
            problems += check_links(md)
    for p in problems:
        print(p)
    if problems:
        print(f"\ndocs_check: {len(problems)} problem(s)")
    else:
        print("docs_check: clean")
    return min(len(problems), 99)


if __name__ == "__main__":
    sys.exit(main())
