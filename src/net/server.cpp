#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <stdexcept>

namespace dynsld::net {

RpcServer::RpcServer(engine::SldService& svc, Options opt)
    : svc_(svc), opt_(opt), obs_(svc.obs_shared()) {
  listen_ = tcp_listen(opt_.port);
  if (!listen_.valid())
    throw std::runtime_error("RpcServer: cannot bind 127.0.0.1:" +
                             std::to_string(opt_.port));
  port_ = local_port(listen_.get());
  set_nonblocking(listen_.get(), true);
  cq_ = std::make_shared<CompletionQueue>();
  if (svc_.persistence()) {
    repl_ = std::make_unique<ReplicationSource>(svc_);
    repl_->set_wakeup([this] { wake_.wake(); });
  }
  thread_ = std::thread([this] { loop(); });
}

RpcServer::~RpcServer() { stop(); }

void RpcServer::stop() {
  std::lock_guard<std::mutex> lk(stop_mu_);
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  wake_.wake();
  thread_.join();
  if (repl_) repl_->set_wakeup({});
}

void RpcServer::loop() {
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conns_ key per pfd row (0 = fixed fd)

  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() + opt_.drain_timeout;
      listen_.reset();  // no new connections
      // The explicit drain wake: parked AtLeastEpoch waiters on an
      // idle engine would otherwise hold pending_ open forever.
      svc_.broker().abort_waiters();
    }
    if (draining) {
      bool flushed = true;
      for (auto& [id, c] : conns_)
        if (c.out_off < c.outbox.size()) flushed = false;
      if ((pending_.empty() && flushed) ||
          std::chrono::steady_clock::now() >= drain_deadline)
        break;
    }

    pfds.clear();
    pfd_conn.clear();
    if (listen_.valid()) {
      pfds.push_back({listen_.get(), POLLIN, 0});
      pfd_conn.push_back(0);
    }
    pfds.push_back({wake_.read_fd(), POLLIN, 0});
    pfd_conn.push_back(0);
    pfds.push_back({cq_->pipe.read_fd(), POLLIN, 0});
    pfd_conn.push_back(0);
    for (auto& [id, c] : conns_) {
      short ev = 0;
      // While draining, stop reading new requests; only flush replies.
      if (!draining) ev |= POLLIN;
      if (c.out_off < c.outbox.size()) ev |= POLLOUT;
      if (!ev) continue;
      pfds.push_back({c.fd.get(), ev, 0});
      pfd_conn.push_back(id);
    }

    ::poll(pfds.data(), pfds.size(), draining ? 10 : 100);

    wake_.drain();
    collect_completions();
    if (repl_ && !draining) fan_out_replication();

    std::vector<uint64_t> dead;
    for (size_t i = 0; i < pfds.size(); ++i) {
      if (pfd_conn[i] == 0) {
        if (listen_.valid() && pfds[i].fd == listen_.get() &&
            (pfds[i].revents & POLLIN))
          accept_ready();
        continue;
      }
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        dead.push_back(c.id);
        continue;
      }
      if (pfds[i].revents & POLLIN) {
        if (!read_ready(c)) {
          dead.push_back(c.id);
          continue;
        }
      }
      if (pfds[i].revents & POLLOUT) flush(c);
      if (c.outbox.size() - c.out_off > kMaxOutboxBytes) dead.push_back(c.id);
    }
    for (uint64_t id : dead) close_conn(id);
  }

  conns_.clear();
  conn_count_.store(0, std::memory_order_release);
}

void RpcServer::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure: poll again later
    }
    set_nonblocking(fd, true);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn c;
    c.fd.reset(fd);
    c.id = next_conn_id_++;
    uint64_t id = c.id;
    conns_.emplace(id, std::move(c));
    conn_count_.store(conns_.size(), std::memory_order_release);
    if (obs_)
      obs_->stats.net_clients_accepted.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
}

bool RpcServer::read_ready(Conn& c) {
  char buf[64 * 1024];
  for (;;) {
    long n = recv_some(c.fd.get(), buf, sizeof buf);
    if (n == 0) return false;  // orderly close
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (obs_)
      obs_->stats.net_bytes_in.fetch_add(uint64_t(n),
                                         std::memory_order_relaxed);
    c.parser.feed(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof buf) break;  // drained the socket
  }
  for (;;) {
    Frame f;
    switch (c.parser.next(&f)) {
      case FrameParser::Status::kNeedMore:
        return true;
      case FrameParser::Status::kBad:
        // Poisoned framing: there is no resync — drop the connection.
        if (obs_)
          obs_->stats.net_frame_rejects.fetch_add(1,
                                                  std::memory_order_relaxed);
        return false;
      case FrameParser::Status::kFrame:
        if (obs_)
          obs_->stats.net_frames_in.fetch_add(1, std::memory_order_relaxed);
        if (!handle_frame(c, std::move(f))) return false;
        break;
    }
  }
}

bool RpcServer::handle_frame(Conn& c, Frame&& f) {
  auto send = [&](MsgType type, const std::string& payload) {
    c.outbox += encode_frame(type, payload);
    if (obs_) {
      obs_->stats.net_frames_out.fetch_add(1, std::memory_order_relaxed);
      obs_->stats.net_bytes_out.fetch_add(kFrameHeaderBytes + payload.size(),
                                          std::memory_order_relaxed);
    }
  };
  switch (f.type) {
    case MsgType::kPing:
      send(MsgType::kPong, f.payload);
      break;
    case MsgType::kHello: {
      Hello hello;
      if (!decode_hello(f.payload, &hello)) return false;
      if (hello.role == kRoleReplica && !repl_)
        return false;  // refuse: nothing durable to stream
      HelloAck ack;
      ack.epoch = svc_.epoch();
      ack.num_vertices = svc_.num_vertices();
      ack.num_shards = uint32_t(svc_.num_shards());
      send(MsgType::kHelloAck, encode_hello_ack(ack));
      if (hello.role == kRoleReplica) {
        c.is_replica = true;
        ReplicationSource::Bootstrap boot = repl_->bootstrap();
        send(MsgType::kCheckpoint, boot.checkpoint_bytes);
        c.repl_sent = boot.checkpoint_epoch;
        for (auto& [e, bytes] : boot.records) {
          send(MsgType::kWalRecord, bytes);
          c.repl_sent = e;
        }
      } else {
        c.client_id = hello.client_id;
        if (hello.client_id != 0)
          svc_.broker().set_client_weight(hello.client_id, hello.weight);
      }
      break;
    }
    case MsgType::kQuery: {
      uint64_t rid = 0;
      engine::QueryRequest req;
      if (!decode_query(f.payload, &rid, &req,
                        std::chrono::steady_clock::now())) {
        if (obs_)
          obs_->stats.net_frame_rejects.fetch_add(1,
                                                  std::memory_order_relaxed);
        return false;
      }
      req.client = c.client_id;
      // The hook may fire synchronously (fast-fail paths) — before the
      // pending_ insert below. Safe: completions are only drained
      // later in the same loop iteration, by which time the entry
      // exists.
      req.on_complete = [cq = cq_, cid = c.id, rid] { cq->push(cid, rid); };
      pending_[{c.id, rid}] = svc_.submit(std::move(req));
      break;
    }
    default:
      return false;  // server-bound stream has no other legal frames
  }
  flush(c);
  return true;
}

void RpcServer::collect_completions() {
  for (auto& [cid, rid] : cq_->drain()) {
    auto pit = pending_.find({cid, rid});
    if (pit == pending_.end()) continue;  // duplicate wake
    std::future<engine::ResultSet> fut = std::move(pit->second);
    pending_.erase(pit);
    auto cit = conns_.find(cid);
    std::string payload;
    MsgType type;
    try {
      // Ready by contract: on_complete fires after the promise
      // resolves, so this get() never blocks the poll thread.
      engine::ResultSet rs = fut.get();
      type = MsgType::kResult;
      payload = encode_result(rid, rs);
    } catch (const engine::QueryError& e) {
      type = MsgType::kError;
      payload = encode_error(rid, e.code());
    }
    if (cit == conns_.end()) continue;  // client hung up: drop the answer
    cit->second.outbox += encode_frame(type, payload);
    if (obs_) {
      obs_->stats.net_frames_out.fetch_add(1, std::memory_order_relaxed);
      obs_->stats.net_bytes_out.fetch_add(kFrameHeaderBytes + payload.size(),
                                          std::memory_order_relaxed);
    }
    flush(cit->second);
  }
}

void RpcServer::fan_out_replication() {
  for (auto& [id, c] : conns_) {
    if (!c.is_replica) continue;
    for (auto& [e, bytes] : repl_->records_after(c.repl_sent)) {
      c.outbox += encode_frame(MsgType::kWalRecord, bytes);
      c.repl_sent = e;
      if (obs_) {
        obs_->stats.net_frames_out.fetch_add(1, std::memory_order_relaxed);
        obs_->stats.net_bytes_out.fetch_add(kFrameHeaderBytes + bytes.size(),
                                            std::memory_order_relaxed);
      }
    }
    flush(c);
  }
}

void RpcServer::flush(Conn& c) {
  while (c.out_off < c.outbox.size()) {
    ssize_t w = ::send(c.fd.get(), c.outbox.data() + c.out_off,
                       c.outbox.size() - c.out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: poll for POLLOUT; real errors surface there too
    }
    c.out_off += static_cast<size_t>(w);
  }
  c.outbox.clear();
  c.out_off = 0;
}

void RpcServer::close_conn(uint64_t id) {
  conns_.erase(id);
  conn_count_.store(conns_.size(), std::memory_order_release);
}

}  // namespace dynsld::net
