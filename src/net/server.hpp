// RpcServer: the poll()-based network front door over an SldService.
//
// One background thread owns everything: the loopback listening
// socket, every connection's frame parser and outbox, and the pending
// request table. The loop never blocks on the engine — a decoded
// kQuery becomes a broker submit whose future is parked in the pending
// table, and the request's on_complete hook (query.hpp) pushes the id
// onto a completion queue that wakes the loop through a pipe; the loop
// then collects the ready future and writes the kResult/kError frame
// back. The dispatcher thread never touches a socket, the poll thread
// never waits on a future: a slow query delays nothing but itself.
//
//   client ──frames──> poll thread ──submit()──> broker dispatcher
//     ^                    ^                          |
//     └────kResult─────────┴── completion pipe <──────┘ (on_complete)
//
// Role split: a kRoleReplica hello turns the connection into a
// one-way replication stream (kCheckpoint bootstrap + live kWalRecord
// frames from the service's ReplicationSource — created automatically
// when the service persists; replica hellos to a non-persisted server
// are refused by closing the connection).
//
// QoS: a kRoleClient hello's (client_id, weight) registers the client
// in the broker's weighted admission (broker.hpp); every query on the
// connection then carries that identity, so one saturating tenant
// exhausts its own queue share instead of the fleet's.
//
// Shutdown drains: stop() closes the listener, aborts parked epoch
// waiters (QueryBroker::abort_waiters — the explicit wake that keeps a
// drain from parking forever on an idle engine), waits for in-flight
// requests up to drain_timeout while still flushing responses, then
// closes every connection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/sld_service.hpp"
#include "net/protocol.hpp"
#include "net/replication.hpp"
#include "net/socket.hpp"

namespace dynsld::net {

/// The network front door (see the header comment). Owns its listening
/// socket and poll thread; borrows the service, which must outlive it.
class RpcServer {
 public:
  /// Construction-time knobs.
  struct Options {
    /// Listening port on 127.0.0.1 (0 = ephemeral; read it back with
    /// port()).
    uint16_t port = 0;
    /// How long stop() keeps draining in-flight requests before
    /// cutting the remaining connections loose.
    std::chrono::milliseconds drain_timeout{2000};
  };

  /// Binds, primes the replication feed when `svc` persists, and
  /// starts the poll thread. Throws std::runtime_error when the port
  /// cannot be bound.
  RpcServer(engine::SldService& svc, Options opt);
  explicit RpcServer(engine::SldService& svc) : RpcServer(svc, Options()) {}
  /// Implies stop().
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// Drain and shut down (idempotent; see the header comment).
  void stop();

  /// Live connection count (tests/metrics).
  size_t connections() const {
    return conn_count_.load(std::memory_order_acquire);
  }

 private:
  /// Completion mailbox between whatever thread resolves a future and
  /// the poll loop. Held by shared_ptr so late on_complete callbacks
  /// (requests resolving after server death) write into a mailbox that
  /// is still alive, harmlessly.
  struct CompletionQueue {
    std::mutex mu;
    std::vector<std::pair<uint64_t, uint64_t>> done;  // (conn id, req id)
    WakePipe pipe;

    void push(uint64_t conn_id, uint64_t request_id) {
      {
        std::lock_guard<std::mutex> lk(mu);
        done.emplace_back(conn_id, request_id);
      }
      pipe.wake();
    }
    std::vector<std::pair<uint64_t, uint64_t>> drain() {
      pipe.drain();
      std::lock_guard<std::mutex> lk(mu);
      return std::move(done);
    }
  };

  /// One connection's state (poll-thread-only).
  struct Conn {
    Fd fd;
    uint64_t id = 0;
    FrameParser parser;
    std::string outbox;
    size_t out_off = 0;
    uint64_t client_id = 0;  // QoS identity from the hello
    bool is_replica = false;
    uint64_t repl_sent = 0;  // replication high-water mark
  };

  void loop();
  void accept_ready();
  bool read_ready(Conn& c);    // false = close the connection
  bool handle_frame(Conn& c, Frame&& f);
  void flush(Conn& c);
  void fan_out_replication();
  void collect_completions();
  void close_conn(uint64_t id);

  engine::SldService& svc_;
  Options opt_;
  std::shared_ptr<engine::EngineObs> obs_;
  Fd listen_;
  uint16_t port_ = 0;
  WakePipe wake_;  // stop() + replication arrivals
  std::shared_ptr<CompletionQueue> cq_;
  std::unique_ptr<ReplicationSource> repl_;

  std::atomic<bool> stopping_{false};
  std::atomic<size_t> conn_count_{0};
  std::mutex stop_mu_;  // serializes stop() callers
  std::thread thread_;

  // Poll-thread-only state.
  std::map<uint64_t, Conn> conns_;
  std::map<std::pair<uint64_t, uint64_t>, std::future<engine::ResultSet>>
      pending_;
  uint64_t next_conn_id_ = 1;

  /// A connection that buffers more than this without reading is
  /// broken or hostile — close it rather than queue unboundedly.
  static constexpr size_t kMaxOutboxBytes = 256u << 20;
};

}  // namespace dynsld::net
