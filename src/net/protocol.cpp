#include "net/protocol.hpp"

#include <cassert>
#include <cstring>

#include "persist/bytes.hpp"
#include "persist/crc32c.hpp"

namespace dynsld::net {

using persist::ByteReader;
using persist::ByteWriter;

namespace {

// Relative-timeout sentinel: "no deadline" on the wire.
constexpr uint32_t kNoTimeout = 0xFFFFFFFFu;

// Consistency kinds on the wire (Pinned deliberately absent).
constexpr uint8_t kConsLatest = 0;
constexpr uint8_t kConsAtLeastEpoch = 1;
constexpr uint8_t kConsAsOf = 2;

// Query kinds on the wire, positional with engine::Query alternatives.
constexpr uint8_t kQSameCluster = 0;
constexpr uint8_t kQClusterSize = 1;
constexpr uint8_t kQClusterReport = 2;
constexpr uint8_t kQFlatClustering = 3;
constexpr uint8_t kQSizeHistogram = 4;
constexpr uint8_t kQNumClusters = 5;

// Result kinds, positional with engine::QueryResult alternatives.
constexpr uint8_t kRBool = 0;
constexpr uint8_t kRU64 = 1;
constexpr uint8_t kRVertexVec = 2;
constexpr uint8_t kRHistogram = 3;

}  // namespace

namespace {

// The frame checksum covers the type byte AND the payload (chained
// CRC): magic/version/len are validated structurally, but without this
// a single bit flip could relabel a valid kResult as a valid kError.
uint32_t frame_crc(uint8_t type, const char* payload, size_t len) {
  const char t = static_cast<char>(type);
  uint32_t crc = persist::crc32c(&t, 1);
  return len ? persist::crc32c(payload, len, crc) : crc;
}

}  // namespace

std::string encode_frame(MsgType type, std::string_view payload) {
  assert(payload.size() <= kMaxFrameBytes);
  ByteWriter w;
  w.u32(kProtoMagic);
  w.u8(kProtoVersion);
  w.u8(static_cast<uint8_t>(type));
  w.u8(0);  // reserved
  w.u8(0);
  w.u32(static_cast<uint32_t>(payload.size()));
  w.u32(frame_crc(static_cast<uint8_t>(type), payload.data(), payload.size()));
  if (!payload.empty()) w.raw(payload.data(), payload.size());
  return w.take();
}

void FrameParser::feed(const char* data, size_t n) {
  if (bad_) return;
  // Compact the consumed prefix before growing (bounded memory even on
  // long-lived streams).
  if (off_ > 0 && (off_ == buf_.size() || off_ >= 4096)) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(data, n);
}

FrameParser::Status FrameParser::next(Frame* out) {
  if (bad_) return Status::kBad;
  if (buf_.size() - off_ < kFrameHeaderBytes) return Status::kNeedMore;
  ByteReader h(buf_.data() + off_, kFrameHeaderBytes);
  const uint32_t magic = h.u32();
  const uint8_t version = h.u8();
  const uint8_t type = h.u8();
  h.u8();  // reserved
  h.u8();
  const uint32_t len = h.u32();
  const uint32_t crc = h.u32();
  if (magic != kProtoMagic || version != kProtoVersion ||
      len > kMaxFrameBytes || type < uint8_t(MsgType::kHello) ||
      type > uint8_t(MsgType::kWalRecord)) {
    bad_ = true;
    return Status::kBad;
  }
  if (buf_.size() - off_ - kFrameHeaderBytes < len) return Status::kNeedMore;
  const char* payload = buf_.data() + off_ + kFrameHeaderBytes;
  if (frame_crc(type, payload, len) != crc) {
    bad_ = true;
    return Status::kBad;
  }
  out->type = static_cast<MsgType>(type);
  out->payload.assign(payload, len);
  off_ += kFrameHeaderBytes + len;
  return Status::kFrame;
}

std::string encode_hello(const Hello& h) {
  ByteWriter w;
  w.u64(h.client_id);
  w.u32(h.weight);
  w.u8(h.role);
  return w.take();
}

bool decode_hello(const std::string& payload, Hello* out) {
  ByteReader r(payload);
  out->client_id = r.u64();
  out->weight = r.u32();
  out->role = r.u8();
  return r.ok() && r.remaining() == 0 &&
         (out->role == kRoleClient || out->role == kRoleReplica);
}

std::string encode_hello_ack(const HelloAck& a) {
  ByteWriter w;
  w.u64(a.epoch);
  w.u32(a.num_vertices);
  w.u32(a.num_shards);
  return w.take();
}

bool decode_hello_ack(const std::string& payload, HelloAck* out) {
  ByteReader r(payload);
  out->epoch = r.u64();
  out->num_vertices = r.u32();
  out->num_shards = r.u32();
  return r.ok() && r.remaining() == 0;
}

bool encode_query(uint64_t request_id, const engine::QueryRequest& req,
                  std::chrono::steady_clock::time_point now,
                  std::string* out) {
  ByteWriter w;
  w.u64(request_id);
  if (std::holds_alternative<engine::Latest>(req.consistency)) {
    w.u8(kConsLatest);
    w.u64(0);
  } else if (const auto* ae =
                 std::get_if<engine::AtLeastEpoch>(&req.consistency)) {
    w.u8(kConsAtLeastEpoch);
    w.u64(ae->epoch);
  } else if (const auto* ao = std::get_if<engine::AsOf>(&req.consistency)) {
    w.u8(kConsAsOf);
    w.u64(ao->epoch);
  } else {
    return false;  // Pinned: a snapshot pointer has no remote meaning
  }
  if (req.deadline == engine::Deadline::max()) {
    w.u32(kNoTimeout);
  } else {
    int64_t ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     req.deadline - now)
                     .count();
    if (ms < 0) ms = 0;
    if (ms >= int64_t(kNoTimeout)) ms = kNoTimeout - 1;
    w.u32(static_cast<uint32_t>(ms));
  }
  w.u32(static_cast<uint32_t>(req.queries.size()));
  for (const engine::Query& q : req.queries) {
    if (const auto* sc = std::get_if<engine::SameClusterQuery>(&q)) {
      w.u8(kQSameCluster);
      w.u32(sc->u);
      w.u32(sc->v);
      w.f64(sc->tau);
    } else if (const auto* cs = std::get_if<engine::ClusterSizeQuery>(&q)) {
      w.u8(kQClusterSize);
      w.u32(cs->u);
      w.f64(cs->tau);
    } else if (const auto* cr = std::get_if<engine::ClusterReportQuery>(&q)) {
      w.u8(kQClusterReport);
      w.u32(cr->u);
      w.f64(cr->tau);
    } else if (const auto* fc = std::get_if<engine::FlatClusteringQuery>(&q)) {
      w.u8(kQFlatClustering);
      w.f64(fc->tau);
    } else if (const auto* sh = std::get_if<engine::SizeHistogramQuery>(&q)) {
      w.u8(kQSizeHistogram);
      w.f64(sh->tau);
    } else if (const auto* nc = std::get_if<engine::NumClustersQuery>(&q)) {
      w.u8(kQNumClusters);
      w.f64(nc->tau);
    }
  }
  *out = w.take();
  return true;
}

bool decode_query(const std::string& payload, uint64_t* request_id,
                  engine::QueryRequest* out,
                  std::chrono::steady_clock::time_point now) {
  ByteReader r(payload);
  *request_id = r.u64();
  const uint8_t cons = r.u8();
  const uint64_t epoch = r.u64();
  switch (cons) {
    case kConsLatest:
      out->consistency = engine::Latest{};
      break;
    case kConsAtLeastEpoch:
      out->consistency = engine::AtLeastEpoch{epoch};
      break;
    case kConsAsOf:
      out->consistency = engine::AsOf{epoch};
      break;
    default:
      return false;
  }
  const uint32_t timeout_ms = r.u32();
  out->deadline = timeout_ms == kNoTimeout
                      ? engine::Deadline::max()
                      : now + std::chrono::milliseconds(timeout_ms);
  const uint32_t n = r.u32();
  out->queries.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint8_t kind = r.u8();
    switch (kind) {
      case kQSameCluster: {
        engine::SameClusterQuery q{};
        q.u = r.u32();
        q.v = r.u32();
        q.tau = r.f64();
        out->queries.emplace_back(q);
        break;
      }
      case kQClusterSize: {
        engine::ClusterSizeQuery q{};
        q.u = r.u32();
        q.tau = r.f64();
        out->queries.emplace_back(q);
        break;
      }
      case kQClusterReport: {
        engine::ClusterReportQuery q{};
        q.u = r.u32();
        q.tau = r.f64();
        out->queries.emplace_back(q);
        break;
      }
      case kQFlatClustering:
        out->queries.emplace_back(engine::FlatClusteringQuery{r.f64()});
        break;
      case kQSizeHistogram:
        out->queries.emplace_back(engine::SizeHistogramQuery{r.f64()});
        break;
      case kQNumClusters:
        out->queries.emplace_back(engine::NumClustersQuery{r.f64()});
        break;
      default:
        return false;
    }
  }
  return r.ok() && r.remaining() == 0 && out->queries.size() == n;
}

std::string encode_result(uint64_t request_id, const engine::ResultSet& rs) {
  ByteWriter w;
  w.u64(request_id);
  w.u64(rs.epoch);
  w.u32(static_cast<uint32_t>(rs.results.size()));
  for (const engine::QueryResult& res : rs.results) {
    if (const auto* b = std::get_if<bool>(&res)) {
      w.u8(kRBool);
      w.u8(*b ? 1 : 0);
    } else if (const auto* u = std::get_if<uint64_t>(&res)) {
      w.u8(kRU64);
      w.u64(*u);
    } else if (const auto* v = std::get_if<std::vector<vertex_id>>(&res)) {
      w.u8(kRVertexVec);
      w.pod_vec(*v);
    } else if (const auto* h = std::get_if<engine::SizeHistogram>(&res)) {
      w.u8(kRHistogram);
      w.u64(h->bins.size());
      for (const auto& [size, count] : h->bins) {
        w.u64(size);
        w.u64(count);
      }
    }
  }
  return w.take();
}

bool decode_result(const std::string& payload, uint64_t* request_id,
                   engine::ResultSet* out) {
  ByteReader r(payload);
  *request_id = r.u64();
  out->epoch = r.u64();
  const uint32_t n = r.u32();
  out->results.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    switch (r.u8()) {
      case kRBool:
        out->results.emplace_back(r.u8() != 0);
        break;
      case kRU64:
        out->results.emplace_back(r.u64());
        break;
      case kRVertexVec:
        out->results.emplace_back(r.pod_vec<vertex_id>());
        break;
      case kRHistogram: {
        engine::SizeHistogram h;
        const uint64_t nbins = r.u64();
        if (nbins > r.remaining() / 16) return false;  // implausible count
        h.bins.reserve(static_cast<size_t>(nbins));
        for (uint64_t b = 0; b < nbins && r.ok(); ++b) {
          uint64_t size = r.u64();
          uint64_t count = r.u64();
          h.bins.emplace_back(size, count);
        }
        out->results.emplace_back(std::move(h));
        break;
      }
      default:
        return false;
    }
  }
  return r.ok() && r.remaining() == 0 && out->results.size() == n;
}

std::string encode_error(uint64_t request_id, engine::QueryErrorCode code) {
  ByteWriter w;
  w.u64(request_id);
  w.u8(static_cast<uint8_t>(code));
  return w.take();
}

bool decode_error(const std::string& payload, uint64_t* request_id,
                  engine::QueryErrorCode* out) {
  ByteReader r(payload);
  *request_id = r.u64();
  const uint8_t code = r.u8();
  if (code > uint8_t(engine::QueryErrorCode::kEpochUnavailable)) return false;
  *out = static_cast<engine::QueryErrorCode>(code);
  return r.ok() && r.remaining() == 0;
}

}  // namespace dynsld::net
