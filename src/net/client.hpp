// RpcClient: a small blocking client for the RpcServer — the test /
// bench / example counterpart of the nonblocking server.
//
// One connection, one outstanding request at a time (submit-and-wait):
// query() sends a kQuery frame and blocks until the matching kResult
// or kError arrives, decoding the former into a ResultSet and throwing
// the latter as the SAME typed engine::QueryError an in-process
// submit() would have thrown — so a caller cannot tell (other than by
// latency) whether it crossed a wire. Transport failures (server gone,
// protocol poison) throw std::runtime_error instead: they are not
// query outcomes.
//
// NOT thread-safe: share nothing, or use one client per thread (the
// server multiplexes connections cheaply). For pipelined or massively
// concurrent traffic, talk to the server from many clients — that is
// the shape the broker's cross-client batching rewards anyway.
#pragma once

#include <cstdint>
#include <string>

#include "engine/query.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace dynsld::net {

/// Blocking RPC client (see the header comment).
class RpcClient {
 public:
  /// Identity options sent in the hello.
  struct Options {
    /// QoS client id (0 = anonymous pool; see QueryRequest::client).
    uint64_t client_id = 0;
    /// Requested admission weight for that id.
    uint32_t weight = 1;
  };

  /// Connect and handshake; throws std::runtime_error on failure.
  RpcClient(const std::string& host, uint16_t port, Options opt);
  RpcClient(const std::string& host, uint16_t port)
      : RpcClient(host, port, Options()) {}

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// The server's hello ack: epoch at connect time + engine shape.
  const HelloAck& ack() const { return ack_; }

  /// Submit-and-wait one request across the wire. Throws
  /// engine::QueryError exactly like an in-process submit()'s
  /// future.get(); throws std::runtime_error on transport failure.
  /// Pinned consistency is rejected (std::invalid_argument) — a
  /// snapshot pointer has no remote meaning.
  engine::ResultSet query(const engine::QueryRequest& req);

  /// Liveness echo: kPing/kPong round trip. False on any failure.
  bool ping();

  /// Is the socket still believed healthy? (Sticky false after any
  /// transport error.)
  bool connected() const { return fd_.valid(); }

 private:
  bool roundtrip(MsgType send_type, const std::string& payload, Frame* reply);

  Fd fd_;
  FrameParser parser_;
  HelloAck ack_;
  uint64_t next_request_id_ = 1;
};

}  // namespace dynsld::net
