#include "net/replication.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <stdexcept>

#include "net/protocol.hpp"
#include "persist/checkpoint.hpp"
#include "persist/persist.hpp"
#include "persist/wal.hpp"

namespace dynsld::net {

// ---- ReplicationSource ----

ReplicationSource::ReplicationSource(engine::SldService& svc)
    : svc_(svc), obs_(svc.obs_shared()) {
  if (!svc.persistence())
    throw std::invalid_argument(
        "ReplicationSource: service has no persistence plane (the feed is "
        "the durability stream)");
  engine::SldService::EpochTap tap;
  tap.on_batch = [this](uint64_t e, const std::string& rec) {
    on_batch(e, rec);
  };
  tap.on_checkpoint = [this](uint64_t ck) { on_checkpoint(ck); };
  // Installing the tap also syncs the WAL tail to disk (under the
  // flush lock — sld_service.cpp), so everything logged before this
  // line is readable below and everything after it is tapped: the two
  // sources overlap rather than gap, and the ring dedups by epoch.
  svc_.set_epoch_tap(std::move(tap));
  prime_from_disk();
}

ReplicationSource::~ReplicationSource() {
  // Waits out any in-progress flush, so no on_batch runs past here.
  svc_.set_epoch_tap({});
}

void ReplicationSource::prime_from_disk() {
  persist::PersistenceManager* pm = svc_.persistence();
  persist::FileBackend& fb = pm->backend();
  const std::string& dir = pm->options().dir;

  std::vector<uint64_t> ckpts, segs;
  for (const std::string& name : fb.list(dir)) {
    uint64_t e;
    if (persist::CheckpointWriter::parse_file_name(name, &e))
      ckpts.push_back(e);
    if (persist::WalReader::parse_segment_name(name, &e)) segs.push_back(e);
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::sort(segs.begin(), segs.end());

  // Newest checkpoint that validates (corrupt ones fall back — the
  // same discipline as persist::recover()).
  uint64_t ck_epoch = 0;
  std::string ck_bytes;
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    std::string bytes;
    if (!fb.read_file(dir + "/" + persist::CheckpointWriter::file_name(*it),
                      &bytes))
      continue;
    persist::CheckpointData ck;
    if (persist::CheckpointWriter::read(bytes, &ck)) {
      ck_epoch = ck.epoch;
      ck_bytes = std::move(bytes);
      break;
    }
  }

  // Re-frame every on-disk record past the checkpoint (encode_record
  // of a decoded record reproduces the original bytes exactly).
  std::vector<std::pair<uint64_t, std::string>> recs;
  for (uint64_t seg : segs) {
    std::string bytes;
    if (!fb.read_file(dir + "/" + persist::WalReader::segment_name(seg),
                      &bytes))
      continue;
    persist::WalReader::Scan scan = persist::WalReader::scan(bytes);
    for (const persist::WalRecord& rec : scan.records) {
      if (rec.epoch <= ck_epoch) continue;
      recs.emplace_back(
          rec.epoch, persist::WalWriter::encode_record(rec.epoch, rec.batch));
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (ck_epoch > ckpt_epoch_) {
    ckpt_epoch_ = ck_epoch;
    ckpt_bytes_ = std::move(ck_bytes);
  }
  for (auto& [e, b] : recs)
    if (e > ckpt_epoch_) ring_.try_emplace(e, std::move(b));
  ring_.erase(ring_.begin(), ring_.lower_bound(ckpt_epoch_ + 1));
  tip_ = std::max(tip_, ckpt_epoch_);
  if (!ring_.empty()) tip_ = std::max(tip_, ring_.rbegin()->first);
}

void ReplicationSource::on_batch(uint64_t epoch, const std::string& record) {
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ring_.try_emplace(epoch, record);
    tip_ = std::max(tip_, epoch);
    wake = wakeup_;
  }
  if (wake) wake();
}

void ReplicationSource::on_checkpoint(uint64_t checkpoint_epoch) {
  // Called under the flush lock right after the checkpoint published;
  // its bytes are final on disk (write_atomic), so read them now and
  // let the ring drop everything the checkpoint covers.
  persist::PersistenceManager* pm = svc_.persistence();
  std::string bytes;
  if (!pm->backend().read_file(
          pm->options().dir + "/" +
              persist::CheckpointWriter::file_name(checkpoint_epoch),
          &bytes))
    return;  // keep streaming from the old basis; nothing is lost
  persist::CheckpointData ck;
  if (!persist::CheckpointWriter::read(bytes, &ck)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (checkpoint_epoch <= ckpt_epoch_) return;
  ckpt_epoch_ = checkpoint_epoch;
  ckpt_bytes_ = std::move(bytes);
  ring_.erase(ring_.begin(), ring_.lower_bound(ckpt_epoch_ + 1));
  tip_ = std::max(tip_, ckpt_epoch_);
}

ReplicationSource::Bootstrap ReplicationSource::bootstrap() {
  std::lock_guard<std::mutex> lk(mu_);
  Bootstrap b;
  b.checkpoint_epoch = ckpt_epoch_;
  b.checkpoint_bytes = ckpt_bytes_;
  b.records.reserve(ring_.size());
  for (const auto& [e, bytes] : ring_) b.records.emplace_back(e, bytes);
  if (obs_) {
    obs_->stats.repl_snapshots_served.fetch_add(1, std::memory_order_relaxed);
    obs_->stats.repl_records_streamed.fetch_add(b.records.size(),
                                                std::memory_order_relaxed);
  }
  return b;
}

std::vector<std::pair<uint64_t, std::string>> ReplicationSource::records_after(
    uint64_t after) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto it = ring_.upper_bound(after); it != ring_.end(); ++it)
    out.emplace_back(it->first, it->second);
  if (obs_ && !out.empty())
    obs_->stats.repl_records_streamed.fetch_add(out.size(),
                                                std::memory_order_relaxed);
  return out;
}

uint64_t ReplicationSource::tip() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tip_;
}

void ReplicationSource::set_wakeup(std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  wakeup_ = std::move(fn);
}

// ---- Replica ----

namespace {

/// Blocking frame read: recv until the parser yields one frame. False
/// on close, transport error, or protocol poison.
bool read_frame(int fd, FrameParser& parser, Frame* out) {
  for (;;) {
    switch (parser.next(out)) {
      case FrameParser::Status::kFrame:
        return true;
      case FrameParser::Status::kBad:
        return false;
      case FrameParser::Status::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    long n = recv_some(fd, buf, sizeof buf);
    if (n <= 0) return false;
    parser.feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace

Replica::Replica(Options opt) : opt_(std::move(opt)) {
  fd_ = tcp_connect(opt_.host, opt_.port);
  if (!fd_.valid())
    throw std::runtime_error("Replica: cannot connect to " + opt_.host);
  Hello hello;
  hello.role = kRoleReplica;
  std::string frame = encode_frame(MsgType::kHello, encode_hello(hello));
  if (!send_all(fd_.get(), frame.data(), frame.size()))
    throw std::runtime_error("Replica: hello send failed");

  FrameParser parser;
  Frame f;
  if (!read_frame(fd_.get(), parser, &f) || f.type != MsgType::kHelloAck)
    throw std::runtime_error("Replica: no hello ack (is the server a "
                             "persisted writer?)");
  HelloAck ack;
  if (!decode_hello_ack(f.payload, &ack))
    throw std::runtime_error("Replica: malformed hello ack");
  if (ack.num_vertices != opt_.cfg.num_vertices ||
      ack.num_shards != uint32_t(opt_.cfg.num_shards))
    throw std::runtime_error(
        "Replica: engine shape mismatch (writer " +
        std::to_string(ack.num_vertices) + "v/" +
        std::to_string(ack.num_shards) + "s, local config " +
        std::to_string(opt_.cfg.num_vertices) + "v/" +
        std::to_string(opt_.cfg.num_shards) + "s)");

  if (!read_frame(fd_.get(), parser, &f) || f.type != MsgType::kCheckpoint)
    throw std::runtime_error("Replica: no bootstrap checkpoint frame");

  // Local engine: never persisted (the stream is the durable history).
  engine::ServiceConfig cfg = opt_.cfg;
  cfg.persist.dir.clear();
  svc_ = std::make_unique<engine::SldService>(cfg);

  if (!f.payload.empty()) {
    persist::CheckpointData ck;
    if (!persist::CheckpointWriter::read(f.payload, &ck))
      throw std::runtime_error("Replica: corrupt bootstrap checkpoint");
    // Mirror persist::recover(): live edges under original tickets,
    // ticket floor, republish the checkpoint epoch.
    for (const persist::LiveEdge& e : ck.live)
      svc_->restore_insert(e.ticket, e.u, e.v, e.w);
    svc_->restore_ticket_floor(ck.next_ticket);
    svc_->restore_publish(ck.epoch);
    applied_ = ck.epoch;
  }
  live_ = true;
  // The tail thread adopts the parser mid-stream: record frames may
  // already sit buffered behind the checkpoint.
  tail_ = std::thread([this, parser = std::move(parser)]() mutable {
    Frame frame;
    for (;;) {
      if (!read_frame(fd_.get(), parser, &frame)) break;
      if (frame.type != MsgType::kWalRecord) continue;  // ignore chatter
      if (!apply_record(frame.payload)) break;
    }
    std::lock_guard<std::mutex> lk(mu_);
    live_ = false;
    cv_.notify_all();
  });
}

Replica::~Replica() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);  // unblock recv
  if (tail_.joinable()) tail_.join();
}

bool Replica::apply_record(const std::string& bytes) {
  persist::WalRecord rec;
  if (!persist::WalReader::decode_record(bytes, &rec)) {
    std::lock_guard<std::mutex> lk(mu_);
    desynced_ = true;
    cv_.notify_all();
    return false;
  }
  uint64_t applied;
  {
    std::lock_guard<std::mutex> lk(mu_);
    applied = applied_;
  }
  if (rec.epoch <= applied) return true;  // bootstrap overlap, skip
  if (rec.epoch != applied + 1) {
    // Epoch gap: the stream is broken (same contract as recovery's
    // replay halt) — serving stale is safe, applying past a hole is
    // not.
    std::lock_guard<std::mutex> lk(mu_);
    desynced_ = true;
    cv_.notify_all();
    return false;
  }
  for (const auto& op : rec.batch.inserts)
    svc_->restore_insert(op.ticket, op.u, op.v, op.w);
  for (const auto& op : rec.batch.erases) svc_->restore_erase(op.ticket);
  svc_->restore_publish(rec.epoch);
  if (auto obs = svc_->obs_shared())
    obs->stats.repl_records_applied.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  applied_ = rec.epoch;
  cv_.notify_all();
  return true;
}

uint64_t Replica::applied_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return applied_;
}

bool Replica::desynced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return desynced_;
}

bool Replica::live() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_;
}

bool Replica::wait_for_epoch(uint64_t epoch, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, timeout, [&] {
    return applied_ >= epoch || desynced_ || !live_;
  });
  return applied_ >= epoch;
}

}  // namespace dynsld::net
