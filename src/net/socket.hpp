// Minimal POSIX TCP plumbing for the network front-end: an RAII
// descriptor, loopback listen/connect helpers, and a self-wake pipe
// for poll() loops.
//
// Deliberately thin — no event-loop framework, no extra dependencies:
// the server (net/server.hpp) is a single poll() thread, the client
// (net/client.hpp) a blocking socket, and everything here is the
// handful of syscall wrappers both need. Sends use MSG_NOSIGNAL so a
// dead peer surfaces as an error return, never SIGPIPE. Listeners bind
// 127.0.0.1 only: the protocol is unauthenticated, so it must not be
// reachable off-host (docs/NETWORK.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dynsld::net {

/// RAII POSIX file descriptor: closes on destruction, move-only.
class Fd {
 public:
  /// Empty handle (no descriptor).
  Fd() = default;
  /// Adopt ownership of a raw descriptor (-1 = empty).
  explicit Fd(int fd) : fd_(fd) {}
  /// Closes the held descriptor, if any.
  ~Fd() { reset(); }
  /// Moves transfer ownership; the source becomes empty.
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset(o.fd_);
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  /// The raw descriptor (-1 when empty).
  int get() const { return fd_; }
  /// Is a descriptor held?
  bool valid() const { return fd_ >= 0; }
  /// Close the held descriptor (if any) and adopt `fd`.
  void reset(int fd = -1);
  /// Give up ownership without closing; returns the raw descriptor.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1:`port` (port 0 = ephemeral,
/// resolve it with local_port()). SO_REUSEADDR is set so tests can
/// rebind promptly. Invalid Fd on failure.
Fd tcp_listen(uint16_t port, int backlog = 64);

/// Blocking TCP connect to `host`:`port` (numeric or resolvable name).
/// TCP_NODELAY is set — frames are latency-sensitive and self-framed.
/// Invalid Fd on failure.
Fd tcp_connect(const std::string& host, uint16_t port);

/// The locally-bound port of a socket (0 on failure) — how a
/// tcp_listen(0) caller learns its ephemeral port.
uint16_t local_port(int fd);

/// Switch O_NONBLOCK on or off; false on fcntl failure.
bool set_nonblocking(int fd, bool on);

/// Send the whole buffer on a BLOCKING socket, retrying short writes
/// and EINTR. False on any error or peer close (MSG_NOSIGNAL: no
/// SIGPIPE).
bool send_all(int fd, const void* data, size_t n);

/// One recv() of up to `n` bytes, retrying EINTR: >0 bytes read, 0 on
/// orderly peer close, -1 on error (including EAGAIN on a nonblocking
/// socket — callers poll first).
long recv_some(int fd, void* buf, size_t n);

/// Self-wake pipe for poll() loops: other threads wake() it, the loop
/// polls read_fd() and drain()s on readiness. Nonblocking on both
/// ends; wake() is cheap and safe from any thread.
class WakePipe {
 public:
  /// Creates the pipe (aborts the process on resource exhaustion —
  /// this is boot-time plumbing, not a recoverable path).
  WakePipe();

  /// The readable end — what the poll loop watches.
  int read_fd() const { return r_.get(); }
  /// Make read_fd() readable. Coalesces: many wakes, one drain.
  void wake();
  /// Consume every pending wake byte (call on POLLIN).
  void drain();

 private:
  Fd r_, w_;
};

}  // namespace dynsld::net
