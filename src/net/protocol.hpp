// The wire protocol of the network front-end: length-prefixed,
// versioned, checksummed frames carrying query traffic and the
// writer→replica replication stream.
//
// Every frame is a 16-byte header followed by a payload:
//
//   u32 magic        0x314E5344 ("DSN1" as bytes on the wire)
//   u8  version      1
//   u8  type         MsgType
//   u16 reserved     0
//   u32 payload_len  <= kMaxFrameBytes (64 MiB)
//   u32 crc32c       Castagnoli CRC chained over the type byte then
//                    the payload (persist/crc32c.hpp — the same helper
//                    the WAL uses). Covering the type closes the
//                    one-bit-flip hole where a valid kResult frame
//                    relabels as a valid kError frame.
//
// (all integers little-endian, like the persist formats — full byte
// tables in docs/NETWORK.md). A header that fails magic/version/length
// validation, or a payload that fails its CRC, poisons the connection:
// FrameParser reports kBad and the peer drops the socket. There is no
// resync — after arbitrary corruption the only safe framing state is a
// fresh connection.
//
// Message payloads reuse the persist ByteWriter/ByteReader codec, so
// the replication frames can carry WAL record bytes VERBATIM: what a
// replica applies is bit-for-bit what recovery would have read from
// disk. Deadlines cross the wire as relative timeouts (milliseconds
// remaining) because steady_clock points are process-local; Pinned
// consistency is not wire-encodable (a snapshot pointer has no remote
// meaning) and is rejected at encode time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/query.hpp"

namespace dynsld::net {

/// Frame header magic ("DSN1" read as a little-endian u32).
constexpr uint32_t kProtoMagic = 0x314E5344;
/// Wire protocol version; a mismatch poisons the connection.
constexpr uint8_t kProtoVersion = 1;
/// Fixed frame header size in bytes.
constexpr size_t kFrameHeaderBytes = 16;
/// Upper bound on a frame payload — anything larger is corruption (or
/// abuse), not traffic: a full checkpoint of a billion-edge engine
/// fits well under this.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Frame types. Query traffic: kHello/kHelloAck handshake, then
/// kQuery frames answered by kResult or kError (correlated by request
/// id). Replication: after a kRoleReplica hello, the server pushes one
/// kCheckpoint then a stream of kWalRecord frames. kPing/kPong is the
/// liveness echo (netctl's connectivity probe).
enum class MsgType : uint8_t {
  kHello = 1,       ///< client → server: proto, identity, role
  kHelloAck = 2,    ///< server → client: epoch + engine shape
  kQuery = 3,       ///< client → server: one QueryRequest
  kResult = 4,      ///< server → client: the fulfilled ResultSet
  kError = 5,       ///< server → client: typed QueryError
  kPing = 6,        ///< liveness probe
  kPong = 7,        ///< liveness echo
  kCheckpoint = 8,  ///< replication bootstrap: raw checkpoint file bytes
  kWalRecord = 9,   ///< replication delta: one framed WAL record
};

/// One decoded frame: the type tag and its payload bytes.
struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Serialize a frame (header + payload) ready for the socket.
/// Payloads over kMaxFrameBytes are a caller bug (checked via assert;
/// nothing the engine produces approaches the cap).
std::string encode_frame(MsgType type, std::string_view payload);

/// Incremental frame decoder: feed() raw socket bytes, then next()
/// until it stops returning kFrame. kBad is sticky — validation failed
/// and the connection must be dropped (see the header comment).
class FrameParser {
 public:
  /// next() outcomes (see class comment).
  enum class Status { kNeedMore, kFrame, kBad };

  /// Append raw bytes from the socket.
  void feed(const char* data, size_t n);
  /// Extract the next complete, validated frame into *out.
  Status next(Frame* out);
  /// Bytes buffered but not yet consumed (tests/introspection).
  size_t buffered() const { return buf_.size() - off_; }

 private:
  std::string buf_;
  size_t off_ = 0;  // consumed prefix (compacted opportunistically)
  bool bad_ = false;
};

/// Connection roles carried in the hello (who is dialing in).
constexpr uint8_t kRoleClient = 0;
/// Replica role: the connection becomes a one-way replication stream.
constexpr uint8_t kRoleReplica = 1;

/// The hello payload: protocol number, QoS identity, and role.
struct Hello {
  /// QoS client id (QueryRequest::client); 0 = anonymous pool.
  uint64_t client_id = 0;
  /// Requested admission weight (server applies it to the client id).
  uint32_t weight = 1;
  /// kRoleClient or kRoleReplica.
  uint8_t role = kRoleClient;
};

/// The hello acknowledgement: current epoch plus the engine shape a
/// replica must replicate exactly (mismatch = refuse to bootstrap).
struct HelloAck {
  uint64_t epoch = 0;
  uint32_t num_vertices = 0;
  uint32_t num_shards = 0;
};

/// Encode/decode the handshake payloads (decode returns false on any
/// malformed payload; one comment covers the run).
std::string encode_hello(const Hello& h);
bool decode_hello(const std::string& payload, Hello* out);
std::string encode_hello_ack(const HelloAck& a);
bool decode_hello_ack(const std::string& payload, HelloAck* out);

/// Encode a query frame payload: request id + the request, with the
/// deadline converted to a relative timeout against `now`. Returns
/// false — encoding nothing — for a Pinned request (not
/// wire-encodable; see the header comment).
bool encode_query(uint64_t request_id, const engine::QueryRequest& req,
                  std::chrono::steady_clock::time_point now, std::string* out);

/// Decode a query frame payload; the relative timeout is re-anchored
/// to `now` on the receiving side (one-way network delay eats into the
/// budget, which is the conservative direction).
bool decode_query(const std::string& payload, uint64_t* request_id,
                  engine::QueryRequest* out,
                  std::chrono::steady_clock::time_point now);

/// Encode/decode a result frame payload (request id + ResultSet).
std::string encode_result(uint64_t request_id, const engine::ResultSet& rs);
bool decode_result(const std::string& payload, uint64_t* request_id,
                   engine::ResultSet* out);

/// Encode/decode an error frame payload (request id + error code).
std::string encode_error(uint64_t request_id, engine::QueryErrorCode code);
bool decode_error(const std::string& payload, uint64_t* request_id,
                  engine::QueryErrorCode* out);

}  // namespace dynsld::net
