#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dynsld::net {

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd tcp_listen(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return {};
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never off-host
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  return fd;
}

Fd tcp_connect(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  char port_str[8];
  std::snprintf(port_str, sizeof port_str, "%u", unsigned(port));
  if (::getaddrinfo(host.c_str(), port_str, &hints, &res) != 0 || !res)
    return {};
  Fd fd(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  bool ok = fd.valid() &&
            ::connect(fd.get(), res->ai_addr, res->ai_addrlen) == 0;
  ::freeaddrinfo(res);
  if (!ok) return {};
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

bool set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

bool send_all(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

long recv_some(int fd, void* buf, size_t n) {
  for (;;) {
    ssize_t r = ::recv(fd, buf, n, 0);
    if (r < 0 && errno == EINTR) continue;
    return static_cast<long>(r);
  }
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) std::abort();  // boot-time plumbing, not recoverable
  r_.reset(fds[0]);
  w_.reset(fds[1]);
  set_nonblocking(r_.get(), true);
  set_nonblocking(w_.get(), true);
}

void WakePipe::wake() {
  char b = 1;
  // A full pipe already holds a pending wake; any other failure just
  // delays the loop until its next timeout tick.
  [[maybe_unused]] ssize_t rc = ::write(w_.get(), &b, 1);
}

void WakePipe::drain() {
  char buf[64];
  while (::read(r_.get(), buf, sizeof buf) > 0) {
  }
}

}  // namespace dynsld::net
