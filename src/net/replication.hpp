// Writer → replica replication: the in-memory epoch feed on the writer
// side (ReplicationSource) and the consuming process on the replica
// side (Replica).
//
// The feed is the durability stream, tee'd: every flush hands its WAL
// record bytes to the source through SldService::set_epoch_tap — the
// SAME bytes the WAL appends, so a replica applies bit-for-bit what
// recovery would read from disk. The source keeps a ring of records
// newer than the latest checkpoint plus that checkpoint's file bytes;
// a replica bootstraps from (checkpoint, records...) exactly like
// persist::recover() bootstraps from the directory, then tails live
// records. Why a tee instead of tailing the files directly: the WAL
// rides buffered stdio whose tail only reaches the filesystem at fsync
// granularity, so a disk tailer would lag the engine by the fsync
// policy; the tee sees every record the instant it is logged.
//
// The source is attachment-order robust: its constructor installs the
// tap first (all later flushes are captured), then forces the WAL's
// stdio buffer to disk and primes the ring from the directory (all
// earlier records are captured), deduplicating by epoch — so there is
// no gap no matter when it attaches.
//
// A replica is a full SldService (non-persisted) fed only by the
// stream: checkpoint applied through the restore path (live edges +
// ticket floor + republish), then each record re-enacted in strict
// epoch order — a gap or malformed record marks the replica desynced
// and stops the tail, never applies garbage. Queries against a replica
// go through its own broker, so AtLeastEpoch waits work at a lagging
// epoch: the wait releases when the replicated epoch arrives.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/sld_service.hpp"
#include "net/socket.hpp"

namespace dynsld::net {

/// The writer-side feed (see the header comment). Construct one per
/// persisted service; the RpcServer does so automatically and serves
/// the stream to kRoleReplica connections. Thread-safe: the flush path
/// appends under the service's flush lock while the server thread
/// reads bootstraps and deltas.
class ReplicationSource {
 public:
  /// One bootstrap package: everything a fresh replica needs to reach
  /// the tip — the newest checkpoint's file bytes (empty = no
  /// checkpoint yet, start from epoch 0) and every record after it, in
  /// epoch order.
  struct Bootstrap {
    uint64_t checkpoint_epoch = 0;
    std::string checkpoint_bytes;
    std::vector<std::pair<uint64_t, std::string>> records;
  };

  /// Attaches to `svc` (which must have persistence — the feed is the
  /// durability stream; throws std::invalid_argument otherwise) and
  /// primes the ring from its directory. Detaches the tap on
  /// destruction.
  explicit ReplicationSource(engine::SldService& svc);
  /// Detaches the epoch tap (waits out any in-progress flush).
  ~ReplicationSource();

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// Snapshot the full bootstrap package for a fresh replica.
  Bootstrap bootstrap();

  /// All ring records with epoch > `after`, epoch-ascending — the live
  /// fan-out read (each replica connection tracks its own high-water
  /// mark).
  std::vector<std::pair<uint64_t, std::string>> records_after(uint64_t after);

  /// Highest epoch the feed has seen (checkpoint or record).
  uint64_t tip() const;

  /// Install a cheap callback fired (under the source's lock) whenever
  /// a new record lands — the server points this at its poll-loop wake
  /// pipe. Replace with {} to clear.
  void set_wakeup(std::function<void()> fn);

 private:
  void on_batch(uint64_t epoch, const std::string& record);
  void on_checkpoint(uint64_t checkpoint_epoch);
  void prime_from_disk();

  engine::SldService& svc_;
  std::shared_ptr<engine::EngineObs> obs_;

  mutable std::mutex mu_;
  // Record ring keyed by epoch (a map: priming and live tapping can
  // overlap, and try_emplace dedups them; bytes are identical anyway).
  std::map<uint64_t, std::string> ring_;
  uint64_t ckpt_epoch_ = 0;
  std::string ckpt_bytes_;
  uint64_t tip_ = 0;
  std::function<void()> wakeup_;
};

/// A read replica: dials a writer's RpcServer as kRoleReplica,
/// bootstraps a local non-persisted SldService from the streamed
/// checkpoint, and applies the record stream on a background tail
/// thread (see the header comment). Queries go to service() — its
/// broker serves them at the replicated (possibly lagging) epoch.
class Replica {
 public:
  /// Connection + engine-shape options.
  struct Options {
    /// Writer address.
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Local engine config; num_vertices / num_shards must match the
    /// writer's (validated against the hello ack). The persist dir is
    /// ignored — a replica never writes durable state.
    engine::ServiceConfig cfg;
  };

  /// Connects, handshakes, bootstraps, and starts the tail thread.
  /// Throws std::runtime_error on connection failure, shape mismatch,
  /// or a malformed bootstrap.
  explicit Replica(Options opt);
  /// Stops the tail thread (shutting the socket down unblocks it).
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// The replica engine — submit queries here (its broker honors
  /// AtLeastEpoch waits at the replicated epoch).
  engine::SldService& service() { return *svc_; }

  /// Highest epoch applied locally.
  uint64_t applied_epoch() const;
  /// Did the stream break (epoch gap, malformed record, writer gone)?
  /// A desynced replica keeps serving its last applied epoch.
  bool desynced() const;
  /// Is the tail thread still consuming the stream?
  bool live() const;
  /// Block until applied_epoch() >= epoch (true) or the timeout/a
  /// desync hits (false).
  bool wait_for_epoch(uint64_t epoch, std::chrono::milliseconds timeout);

 private:
  void tail_loop();
  bool apply_record(const std::string& bytes);

  Options opt_;
  Fd fd_;
  std::unique_ptr<engine::SldService> svc_;
  std::thread tail_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t applied_ = 0;  // guarded by mu_
  bool desynced_ = false;  // guarded by mu_
  bool live_ = false;      // guarded by mu_
};

}  // namespace dynsld::net
