#include "net/client.hpp"

#include <stdexcept>

namespace dynsld::net {

namespace {

/// Blocking frame read (same shape as the replica's helper).
bool read_frame(int fd, FrameParser& parser, Frame* out) {
  for (;;) {
    switch (parser.next(out)) {
      case FrameParser::Status::kFrame:
        return true;
      case FrameParser::Status::kBad:
        return false;
      case FrameParser::Status::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    long n = recv_some(fd, buf, sizeof buf);
    if (n <= 0) return false;
    parser.feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace

RpcClient::RpcClient(const std::string& host, uint16_t port, Options opt) {
  fd_ = tcp_connect(host, port);
  if (!fd_.valid())
    throw std::runtime_error("RpcClient: cannot connect to " + host + ":" +
                             std::to_string(port));
  Hello hello;
  hello.client_id = opt.client_id;
  hello.weight = opt.weight;
  hello.role = kRoleClient;
  std::string frame = encode_frame(MsgType::kHello, encode_hello(hello));
  if (!send_all(fd_.get(), frame.data(), frame.size())) {
    fd_.reset();
    throw std::runtime_error("RpcClient: hello send failed");
  }
  Frame f;
  if (!read_frame(fd_.get(), parser_, &f) || f.type != MsgType::kHelloAck ||
      !decode_hello_ack(f.payload, &ack_)) {
    fd_.reset();
    throw std::runtime_error("RpcClient: handshake failed");
  }
}

bool RpcClient::roundtrip(MsgType send_type, const std::string& payload,
                          Frame* reply) {
  if (!fd_.valid()) return false;
  std::string frame = encode_frame(send_type, payload);
  if (!send_all(fd_.get(), frame.data(), frame.size()) ||
      !read_frame(fd_.get(), parser_, reply)) {
    fd_.reset();  // transport dead: sticky disconnect
    return false;
  }
  return true;
}

engine::ResultSet RpcClient::query(const engine::QueryRequest& req) {
  const uint64_t id = next_request_id_++;
  std::string payload;
  if (!encode_query(id, req, std::chrono::steady_clock::now(), &payload))
    throw std::invalid_argument(
        "RpcClient: Pinned consistency is not wire-encodable");
  Frame reply;
  if (!roundtrip(MsgType::kQuery, payload, &reply))
    throw std::runtime_error("RpcClient: transport failure");
  uint64_t reply_id = 0;
  if (reply.type == MsgType::kError) {
    engine::QueryErrorCode code;
    if (!decode_error(reply.payload, &reply_id, &code) || reply_id != id) {
      fd_.reset();
      throw std::runtime_error("RpcClient: malformed error frame");
    }
    throw engine::QueryError(code);  // same type as in-process get()
  }
  engine::ResultSet rs;
  if (reply.type != MsgType::kResult ||
      !decode_result(reply.payload, &reply_id, &rs) || reply_id != id) {
    fd_.reset();
    throw std::runtime_error("RpcClient: malformed result frame");
  }
  return rs;
}

bool RpcClient::ping() {
  Frame reply;
  return roundtrip(MsgType::kPing, std::string(), &reply) &&
         reply.type == MsgType::kPong;
}

}  // namespace dynsld::net
