// DynSLD (§3): explicit maintenance of the single-linkage dendrogram of
// a fully-dynamic weighted forest. This class owns
//   - the explicit dendrogram (parent-pointer array, §2.1),
//   - the edge store and per-vertex incident-edge sets (for e*_v, the
//     minimum-rank edge incident to v),
//   - a dynamic-connectivity structure over the input forest (used by
//     deletions to decide which side of a cut each spine node is on,
//     and by threshold queries for path-max),
//   - an optional spine index over the dendrogram itself (LCT or RC
//     tree) maintained in lockstep with every parent change, enabling
//     the output-sensitive algorithms and O(log n) queries.
//
// Update algorithms implemented (one method per theorem):
//   insert / erase                      Thm 1.1  O(h) / O(h log(1+n/h))
//   insert_output_sensitive             Thm 1.2  O(c log(1+n/c))
//   insert_parallel / erase_parallel    Thm 1.3  O(h log(1+n/h)) work
//   insert_parallel_output_sensitive    Thm 1.4  O(c log(1+n/c)) work
//   insert_batch / erase_batch          Thm 1.5  O(kh log(1+n/(kh))) work
// plus the dendrogram queries of §6.1 (threshold, cluster size, cluster
// report, flat clustering).
//
// All methods keep the structure exactly equal to the Kruskal-reference
// SLD of the current edge set (verified exhaustively in tests); the
// different update algorithms are interchangeable per call.
#pragma once

#include <cassert>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "dendrogram/dendrogram.hpp"
#include "dtree/link_cut_tree.hpp"
#include "dynsld/spine_index.hpp"
#include "graph/types.hpp"

namespace dynsld {

namespace rctree {
class RcForest;  // forward declaration (paper-faithful backend, src/rctree)
}

class DynSLD {
 public:
  /// A forest over vertices [0, n) with no edges yet.
  explicit DynSLD(vertex_id n, SpineIndex index = SpineIndex::kLct);
  ~DynSLD();

  DynSLD(const DynSLD&) = delete;
  DynSLD& operator=(const DynSLD&) = delete;

  vertex_id num_vertices() const { return n_; }
  size_t num_edges() const { return dendro_.size(); }
  const Dendrogram& dendrogram() const { return dendro_; }
  SpineIndex spine_index_kind() const { return index_kind_; }

  // ---- Theorem 1.1: sequential height-bounded updates ----

  /// Insert edge (u, v) with weight w; u and v must currently be
  /// disconnected. Two spine-walk merges (Algorithm 2), O(h) plus
  /// index maintenance. Returns the new edge's id.
  edge_id insert(vertex_id u, vertex_id v, double w);

  /// Delete edge e: unmerge its characteristic spines using
  /// connectivity queries against the cut forest (Algorithm 2),
  /// O(h log(1+n/h)).
  void erase(edge_id e);

  // ---- Theorem 1.2: output-sensitive insertion ----

  /// Insert using PWS-query alternation (§4.2): O(c log n) with the LCT
  /// index (O(c log(1+n/c)) with the RC index), where c is the number
  /// of parent-pointer changes. Requires a spine index.
  edge_id insert_output_sensitive(vertex_id u, vertex_id v, double w);

  // ---- Theorem 1.3: parallel single updates ----

  /// Insert by extracting both characteristic spines, parallel-merging
  /// them by rank, and applying the changed pointers (§3.2).
  edge_id insert_parallel(vertex_id u, vertex_id v, double w);

  /// Delete by extracting spines, batch side queries, parallel filter,
  /// and bulk pointer application (§3.2).
  void erase_parallel(edge_id e);

  // ---- Theorem 1.4: parallel output-sensitive insertion ----

  /// Insert via the divide-and-conquer spine merge driven by path
  /// median + PWS queries (§4.3). Requires a spine index.
  edge_id insert_parallel_output_sensitive(vertex_id u, vertex_id v, double w);

  // ---- Theorem 1.5: batch-parallel updates ----

  struct EdgeInsert {
    vertex_id u;
    vertex_id v;
    double weight;
  };

  /// Batch insertion via tree contraction over the incidence graph and
  /// Star-Merge per contracted star (Algorithm 3). The batch together
  /// with the current forest must remain acyclic.
  std::vector<edge_id> insert_batch(std::span<const EdgeInsert> batch);

  /// Batch deletion: batch connectivity cut, then concurrent spine
  /// unmerges whose (identical) pointer writes are deduplicated
  /// (Algorithm 3).
  void erase_batch(std::span<const edge_id> batch);

  // ---- Queries (§6.1) ----

  /// Threshold/LCA query: are s and t in one cluster after merging all
  /// edges of weight <= tau? O(log n) via path-max on the input forest.
  bool same_cluster(vertex_id s, vertex_id t, double tau);

  /// Size (vertex count) of the cluster of u at threshold tau.
  /// O(log n) with a spine index (PWS + subtree size), O(|S|) without.
  uint64_t cluster_size(vertex_id u, double tau);

  /// All vertices of the cluster of u at threshold tau. O(|S|).
  std::vector<vertex_id> cluster_report(vertex_id u, double tau);

  /// Flat clustering at threshold tau: label[v] identifies v's cluster
  /// (labels are arbitrary but equal within a cluster). O(n).
  std::vector<vertex_id> flat_clustering(double tau);

  /// Table 2 comparison points: the same queries answered with only the
  /// forest adjacency (what a dynamic-MSF-only pipeline supports):
  /// breadth-first crawl over sub-threshold edges, O(|S| log deg).
  uint64_t cluster_size_via_crawl(vertex_id u, double tau);
  std::vector<vertex_id> cluster_report_via_crawl(vertex_id u, double tau);

  // ---- Introspection (tests, benchmarks, applications) ----

  bool connected(vertex_id u, vertex_id v);
  bool edge_alive(edge_id e) const { return dendro_.alive(e); }
  WeightedEdge edge(edge_id e) const { return dendro_.edge(e); }
  std::vector<WeightedEdge> edges() const;

  /// Minimum-rank edge incident to v (e*_v), or kNoEdge.
  edge_id min_incident_edge(vertex_id v) const;

  /// All edges incident to v, ordered by rank (tree adjacency; used by
  /// the dynamic-MSF pipeline and the crawl-based query baselines).
  const std::set<Rank>& incident_edges(vertex_id v) const { return incident_[v]; }

  /// Max-rank edge on the forest path s..t (s, t must be connected).
  WeightedEdge max_edge_on_path(vertex_id s, vertex_id t);

  // ---- const snapshot-export surface (engine epoch snapshots) ----
  // Everything a consistent read snapshot needs is reachable without
  // mutating the structure: the dendrogram (parents/children/weights via
  // dendrogram()), and e*_v per vertex below. The engine materializes
  // these into an immutable DendrogramSnapshot between batch flushes.

  /// e*_v for every vertex in one pass (kNoEdge where isolated). O(n).
  std::vector<edge_id> min_incident_all() const;

  /// Enable the dendrogram's structural-change journal (see
  /// Dendrogram::Journal): records node adds/removes/re-parentings so an
  /// incremental snapshot builder can patch instead of rebuild. `cap`
  /// bounds raw entries between clears; past it the journal overflows.
  void enable_structure_journal(size_t cap) { dendro_.enable_journal(cap); }

  /// The structural-change journal accumulated since the last clear.
  const Dendrogram::Journal& structure_journal() const {
    return dendro_.journal();
  }

  /// Reset the structural-change journal (after consuming it).
  void clear_structure_journal() { dendro_.clear_journal(); }

  /// Ephemeral component representative of v's tree in the input forest:
  /// equal ids iff connected. Valid only until the next update (the
  /// underlying link-cut tree re-roots on access). Used by the batch
  /// front-end to group updates by component without pairwise
  /// connectivity queries.
  int component_id(vertex_id v);

  /// Exhaustive structural checks (children consistency, heap order,
  /// index agreement); O(n log n). Test-only.
  void check_invariants();

  // -- spine-index query dispatch (public: used by the merge helpers,
  //    queries, benchmarks and tests; kLct / kRc, with O(h) pointer
  //    fallbacks) --
  /// Max-rank node with rank < w on the root path of x (PWS, Def 4.1).
  edge_id idx_spine_search_below(edge_id x, Rank w);
  /// Min-rank node with rank > w on the root path of x.
  edge_id idx_spine_search_above(edge_id x, Rank w);
  /// Node count on the root path of x, inclusive.
  size_t idx_spine_length(edge_id x);
  /// i-th node (0-based from x itself, ascending rank) on x's root path.
  edge_id idx_spine_select_from_bottom(edge_id x, size_t i);
  /// Index from bottom of node t on the root path of anchor x.
  size_t idx_spine_index_from_bottom(edge_id x, edge_id t);
  /// Subtree size of e in the dendrogram (internal nodes, incl. e).
  uint64_t idx_subtree_size(edge_id e);
  /// Extract the spine of e bottom-up (walk or RC parallel expansion).
  std::vector<edge_id> extract_spine(edge_id e);

 private:
  friend class DynSldTestPeer;

  // -- edge store --
  edge_id alloc_edge(vertex_id u, vertex_id v, double w);
  void register_edge(const WeightedEdge& e);    // incident sets + conn + node
  void unregister_edge(const WeightedEdge& e);  // inverse, node must be detached
  /// Node-only registration (dendrogram node, connectivity link, spine
  /// index slot) without touching the incidence sets — batch insertion
  /// defers incidence so e*_v queries exclude not-yet-merged batch edges.
  void register_edge_node(const WeightedEdge& e);
  void add_to_incidence(const WeightedEdge& e);

  // -- spine-index-aware structural updates --
  void set_parent_tracked(edge_id e, edge_id p);
  void apply_changes_tracked(std::span<const std::pair<edge_id, edge_id>> changes);

  // -- shared algorithm pieces --
  /// Walk-based merge of the root chains with bottoms a and b (Thm 1.1).
  void merge_spines_walk(edge_id a, edge_id b);
  /// PWS-alternation merge (Thm 1.2); returns #pointer changes.
  size_t merge_spines_output_sensitive(edge_id a, edge_id b);
  /// Extract-and-parallel-merge (Thm 1.3).
  void merge_spines_parallel(edge_id a, edge_id b);
  /// Median/PWS divide-and-conquer merge (Thm 1.4).
  void merge_spines_dc(edge_id a, edge_id b);
  /// Compute the unmerge pointer changes for deleting e (both sides),
  /// shared by erase / erase_parallel / erase_batch. Appends to `out`.
  /// `deleted` marks every edge being deleted in the same (batch)
  /// operation — those nodes are dropped from the relinked spines.
  /// `parallel` selects the §3.2 shape (parallel filter over extracted
  /// spines) over the sequential walk.
  void unmerge_changes(edge_id e, const std::vector<char>& deleted,
                       bool parallel,
                       std::vector<std::pair<edge_id, edge_id>>& out);
  /// Insert preamble: allocate, register, and return the two merge
  /// anchors (e*_u before insertion, e*_v before insertion).
  struct InsertPlan {
    edge_id e;
    edge_id eu;  // min incident edge of u in T_u (pre-insert), or kNoEdge
    edge_id ev;  // min incident edge of v in T_v (pre-insert), or kNoEdge
  };
  InsertPlan prepare_insert(vertex_id u, vertex_id v, double w);

  /// Star-Merge (Algorithm 3): merge satellite components into a center
  /// component along `sat_edges` (already registered new edge nodes).
  void star_merge(std::span<const edge_id> sat_edges,
                  std::span<const vertex_id> center_vertices);

  Rank rank_of(edge_id e) const { return dendro_.rank(e); }

  // conn_ node mapping: vertex v -> v, edge e -> n_ + e.
  int conn_vertex(vertex_id v) const { return static_cast<int>(v); }
  int conn_edge(edge_id e) const { return static_cast<int>(n_ + e); }

  vertex_id n_ = 0;
  SpineIndex index_kind_;
  Dendrogram dendro_;
  std::vector<WeightedEdge> edge_slots_;
  std::vector<edge_id> free_ids_;
  std::vector<std::set<Rank>> incident_;  // per vertex, orders by rank
  LinkCutTree conn_;   // input forest: vertices + one node per edge
  LinkCutTree spine_;  // dendrogram spine index (kLct mode)
  std::vector<char> deleted_mark_;  // reusable scratch for unmerges
  std::unique_ptr<rctree::RcForest> rc_spine_;  // kRc mode (see src/rctree)
};

}  // namespace dynsld
