// DynSLD plumbing + the sequential height-bounded update algorithms of
// Theorem 1.1 (Algorithm 2 in the paper): spine-walk insertion in O(h)
// and deletion by spine unmerge in O(h log(1+n/h)).
#include <algorithm>

#include "dynsld/dyn_sld.hpp"
#include "parallel/primitives.hpp"
#include "parallel/stats.hpp"
#include "rctree/rc_tree.hpp"

namespace dynsld {

DynSLD::DynSLD(vertex_id n, SpineIndex index)
    : n_(n), index_kind_(index), conn_(n) {
  incident_.resize(n);
  if (index_kind_ == SpineIndex::kRc) {
    rc_spine_ = std::make_unique<rctree::RcForest>(0);
  }
}

DynSLD::~DynSLD() = default;

edge_id DynSLD::alloc_edge(vertex_id u, vertex_id v, double w) {
  edge_id id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<edge_id>(edge_slots_.size());
    edge_slots_.emplace_back();
  }
  edge_slots_[id] = WeightedEdge{u, v, w, id};
  return id;
}

void DynSLD::register_edge(const WeightedEdge& e) {
  register_edge_node(e);
  add_to_incidence(e);
}

void DynSLD::add_to_incidence(const WeightedEdge& e) {
  incident_[e.u].insert(e.rank());
  incident_[e.v].insert(e.rank());
}

void DynSLD::register_edge_node(const WeightedEdge& e) {
  dendro_.add_node(e);
  conn_.grow(n_ + e.id + 1);
  conn_.set_key(conn_edge(e.id), e.rank());
  conn_.link(conn_vertex(e.u), conn_edge(e.id));
  conn_.link(conn_edge(e.id), conn_vertex(e.v));
  if (index_kind_ == SpineIndex::kLct) {
    spine_.grow(e.id + 1);
    spine_.set_key(static_cast<int>(e.id), e.rank());
  } else if (index_kind_ == SpineIndex::kRc) {
    rc_spine_->add_node(e.id, e.rank());
  }
}

void DynSLD::unregister_edge(const WeightedEdge& e) {
  incident_[e.u].erase(e.rank());
  incident_[e.v].erase(e.rank());
  conn_.cut(conn_vertex(e.u), conn_edge(e.id));
  conn_.cut(conn_edge(e.id), conn_vertex(e.v));
  if (index_kind_ == SpineIndex::kRc) rc_spine_->remove_node(e.id);
  free_ids_.push_back(e.id);
}

void DynSLD::set_parent_tracked(edge_id e, edge_id p) {
  if (dendro_.parent(e) == p) return;
  stats::bump(stats::counters().pointer_writes);
  if (index_kind_ == SpineIndex::kLct) {
    stats::bump(stats::counters().index_cuts);
    spine_.cut_from_parent(static_cast<int>(e));
    dendro_.set_parent(e, p);
    if (p != kNoEdge) {
      stats::bump(stats::counters().index_links);
      spine_.link_root(static_cast<int>(e), static_cast<int>(p));
    }
  } else if (index_kind_ == SpineIndex::kRc) {
    stats::bump(stats::counters().index_cuts);
    rc_spine_->cut_from_parent(e);
    dendro_.set_parent(e, p);
    if (p != kNoEdge) {
      stats::bump(stats::counters().index_links);
      rc_spine_->link_to_parent(e, p);
    }
  } else {
    dendro_.set_parent(e, p);
  }
}

void DynSLD::apply_changes_tracked(
    std::span<const std::pair<edge_id, edge_id>> changes) {
  // Filter to real changes first (batch producers may emit no-ops and
  // duplicates with identical targets).
  std::vector<std::pair<edge_id, edge_id>> real;
  real.reserve(changes.size());
  for (const auto& ch : changes) {
    if (dendro_.parent(ch.first) != ch.second) real.push_back(ch);
  }
  // Deduplicate (batch deletion: overlapping spines write identical values).
  std::sort(real.begin(), real.end());
  real.erase(std::unique(real.begin(), real.end()), real.end());
  stats::bump(stats::counters().pointer_writes, real.size());

  if (index_kind_ == SpineIndex::kLct) {
    for (const auto& [c, p] : real) {
      (void)p;
      spine_.cut_from_parent(static_cast<int>(c));
    }
  } else if (index_kind_ == SpineIndex::kRc) {
    for (const auto& [c, p] : real) {
      (void)p;
      rc_spine_->cut_from_parent(c);
    }
  }
  dendro_.apply_parent_changes(real);
  if (index_kind_ == SpineIndex::kLct) {
    for (const auto& [c, p] : real) {
      if (p != kNoEdge) spine_.link_root(static_cast<int>(c), static_cast<int>(p));
    }
  } else if (index_kind_ == SpineIndex::kRc) {
    for (const auto& [c, p] : real) {
      if (p != kNoEdge) rc_spine_->link_to_parent(c, p);
    }
  }
}

DynSLD::InsertPlan DynSLD::prepare_insert(vertex_id u, vertex_id v, double w) {
  assert(u < n_ && v < n_ && u != v);
  assert(!connected(u, v) && "insert would create a cycle");
  InsertPlan plan;
  plan.eu = min_incident_edge(u);
  plan.ev = min_incident_edge(v);
  plan.e = alloc_edge(u, v, w);
  register_edge(edge_slots_[plan.e]);
  return plan;
}

// ---------------------------------------------------------------------
// Theorem 1.1: insertion by spine-walk merge.
// ---------------------------------------------------------------------

void DynSLD::merge_spines_walk(edge_id a, edge_id b) {
  // Merge the root chains whose bottoms are a and b (distinct trees) so
  // that parent pointers follow increasing rank. Classic two-pointer
  // list merge; only interleave points change pointers.
  if (rank_of(b) < rank_of(a)) std::swap(a, b);
  while (b != kNoEdge) {
    stats::bump(stats::counters().spine_nodes_touched);
    // Advance a to the highest node of its chain with rank < rank(b).
    edge_id pa = dendro_.parent(a);
    while (pa != kNoEdge && rank_of(pa) < rank_of(b)) {
      stats::bump(stats::counters().spine_nodes_touched);
      a = pa;
      pa = dendro_.parent(a);
    }
    set_parent_tracked(a, b);
    a = b;
    b = pa;
  }
}

edge_id DynSLD::insert(vertex_id u, vertex_id v, double w) {
  InsertPlan plan = prepare_insert(u, v, w);
  // Two-step SLD-Merge (Algorithm 1/2): first merge the singleton chain
  // {e} with Spine(e*_u), then Spine(e) with Spine(e*_v).
  if (plan.eu != kNoEdge) merge_spines_walk(plan.e, plan.eu);
  if (plan.ev != kNoEdge) merge_spines_walk(plan.e, plan.ev);
  return plan.e;
}

// ---------------------------------------------------------------------
// Theorem 1.1: deletion by spine unmerge.
// ---------------------------------------------------------------------

void DynSLD::unmerge_changes(edge_id e, const std::vector<char>& deleted,
                             bool parallel,
                             std::vector<std::pair<edge_id, edge_id>>& out) {
  const WeightedEdge ed = edge_slots_[e];
  // The connectivity structure reflects the post-deletion forest here.
  for (int side = 0; side < 2; ++side) {
    vertex_id sv = side == 0 ? ed.u : ed.v;
    edge_id estar = min_incident_edge(sv);
    if (estar == kNoEdge) continue;  // this side has no edges left
    // Characteristic spine: every cluster containing sv lies on it.
    std::vector<edge_id> kept;
    if (!parallel) {
      for (edge_id x = estar; x != kNoEdge; x = dendro_.parent(x)) {
        stats::bump(stats::counters().spine_nodes_touched);
        if (deleted[x]) continue;
        const auto& nd = dendro_.node(x);
        stats::bump(stats::counters().connectivity_queries);
        if (conn_.connected(conn_vertex(nd.u), conn_vertex(sv))) kept.push_back(x);
      }
    } else {
      // §3.2 shape: extract the spine, batch the side queries, then an
      // order-preserving parallel filter.
      std::vector<edge_id> spine = extract_spine(estar);
      stats::bump(stats::counters().spine_nodes_touched, spine.size());
      std::vector<char> keep(spine.size());
      // Connectivity side tests (batched against the cut forest; the
      // LCT backend answers them one by one — see DESIGN.md).
      for (size_t i = 0; i < spine.size(); ++i) {
        edge_id x = spine[i];
        if (deleted[x]) {
          keep[i] = 0;
          continue;
        }
        stats::bump(stats::counters().connectivity_queries);
        keep[i] = conn_.connected(conn_vertex(dendro_.node(x).u),
                                  conn_vertex(sv))
                      ? 1
                      : 0;
      }
      kept = par::pack<edge_id>(spine, keep);
    }
    for (size_t i = 0; i + 1 < kept.size(); ++i) out.emplace_back(kept[i], kept[i + 1]);
    if (!kept.empty()) out.emplace_back(kept.back(), kNoEdge);
  }
  out.emplace_back(e, kNoEdge);
}

void DynSLD::erase(edge_id e) {
  assert(dendro_.alive(e));
  const WeightedEdge ed = edge_slots_[e];
  // Remove e from the incidence sets and the connectivity forest first:
  // e*_u / e*_v and the side tests are defined on the cut forest.
  unregister_edge(ed);
  if (deleted_mark_.size() < edge_slots_.size()) deleted_mark_.resize(edge_slots_.size(), 0);
  deleted_mark_[e] = 1;
  std::vector<std::pair<edge_id, edge_id>> changes;
  unmerge_changes(e, deleted_mark_, /*parallel=*/false, changes);
  deleted_mark_[e] = 0;
  apply_changes_tracked(changes);
  dendro_.remove_node(e);
}

// ---------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------

bool DynSLD::connected(vertex_id u, vertex_id v) {
  return conn_.connected(conn_vertex(u), conn_vertex(v));
}

std::vector<WeightedEdge> DynSLD::edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(dendro_.size());
  for (edge_id e = 0; e < edge_slots_.size(); ++e) {
    if (dendro_.alive(e)) out.push_back(edge_slots_[e]);
  }
  return out;
}

edge_id DynSLD::min_incident_edge(vertex_id v) const {
  const auto& set = incident_[v];
  return set.empty() ? kNoEdge : set.begin()->id;
}

std::vector<edge_id> DynSLD::min_incident_all() const {
  std::vector<edge_id> out(n_);
  for (vertex_id v = 0; v < n_; ++v) out[v] = min_incident_edge(v);
  return out;
}

int DynSLD::component_id(vertex_id v) { return conn_.find_root(conn_vertex(v)); }

WeightedEdge DynSLD::max_edge_on_path(vertex_id s, vertex_id t) {
  assert(s != t && connected(s, t));
  Rank mx = conn_.path_max(conn_vertex(s), conn_vertex(t));
  assert(mx.id != kNoEdge);
  return edge_slots_[mx.id];
}

void DynSLD::check_invariants() {
  size_t alive = 0;
  for (edge_id e = 0; e < edge_slots_.size(); ++e) {
    if (!dendro_.alive(e)) continue;
    ++alive;
    const auto& nd = dendro_.node(e);
    // Heap order along spines.
    if (nd.parent != kNoEdge) {
      assert(dendro_.alive(nd.parent));
      assert(dendro_.rank(e) < dendro_.rank(nd.parent));
    }
    // Child <-> parent consistency.
    for (edge_id c : nd.child) {
      if (c != kNoEdge) {
        assert(dendro_.alive(c));
        assert(dendro_.parent(c) == e);
      }
    }
    // Incidence sets contain this edge.
    assert(incident_[nd.u].count(dendro_.rank(e)) == 1);
    assert(incident_[nd.v].count(dendro_.rank(e)) == 1);
    // Endpoints connected in the connectivity forest.
    assert(conn_.connected(conn_vertex(nd.u), conn_vertex(nd.v)));
    // Spine index agrees on spine length.
    if (index_kind_ == SpineIndex::kLct) {
      assert(static_cast<size_t>(spine_.spine_length(static_cast<int>(e))) ==
             dendro_.spine(e).size());
    } else if (index_kind_ == SpineIndex::kRc) {
      assert(rc_spine_->spine_length(e) == dendro_.spine(e).size());
    }
  }
  assert(alive == dendro_.size());
  (void)alive;
}

}  // namespace dynsld
