// Output-sensitive insertion algorithms:
//   - Theorem 1.2 (§4.2): sequential PWS-alternation spine merge, doing
//     exactly c path weight searches and c pointer changes.
//   - Theorem 1.4 (§4.3): divide-and-conquer spine merge driven by path
//     median + PWS queries; the recursion's two halves are independent
//     and run under par_do when the backend's queries are read-only
//     (RC trees). Changes are collected and applied in one batch.
// Also hosts the spine-index query dispatch shared with queries.cpp.
#include <algorithm>

#include "dynsld/dyn_sld.hpp"
#include "parallel/par.hpp"
#include "parallel/stats.hpp"
#include "rctree/rc_tree.hpp"

namespace dynsld {

// ---------------------------------------------------------------------
// Spine-index dispatch.
// ---------------------------------------------------------------------

edge_id DynSLD::idx_spine_search_below(edge_id x, Rank w) {
  stats::bump(stats::counters().pws_queries);
  if (index_kind_ == SpineIndex::kLct) {
    int got = spine_.spine_search_below(static_cast<int>(x), w);
    return got == LinkCutTree::kNull ? kNoEdge : static_cast<edge_id>(got);
  }
  if (index_kind_ == SpineIndex::kRc) {
    return rc_spine_->spine_search_below(x, w);
  }
  // Pointer fallback: O(h) walk (used only by queries, never by the
  // output-sensitive algorithms, which require an index).
  edge_id best = kNoEdge;
  for (edge_id t = x; t != kNoEdge; t = dendro_.parent(t)) {
    if (rank_of(t) < w) {
      best = t;
    } else {
      break;  // ranks increase upward; no later node can qualify
    }
  }
  return best;
}

edge_id DynSLD::idx_spine_search_above(edge_id x, Rank w) {
  stats::bump(stats::counters().pws_queries);
  if (index_kind_ == SpineIndex::kLct) {
    int got = spine_.spine_search_above(static_cast<int>(x), w);
    return got == LinkCutTree::kNull ? kNoEdge : static_cast<edge_id>(got);
  }
  if (index_kind_ == SpineIndex::kRc) {
    // Derived from PWS: the successor of (max node < w), or the path
    // bottom when everything on the path exceeds w.
    if (w < rank_of(x)) return x;
    edge_id below = rc_spine_->spine_search_below(x, w);
    size_t i = idx_spine_index_from_bottom(x, below);
    size_t len = idx_spine_length(x);
    return i + 1 < len ? idx_spine_select_from_bottom(x, i + 1) : kNoEdge;
  }
  edge_id best = kNoEdge;
  for (edge_id t = x; t != kNoEdge; t = dendro_.parent(t)) {
    if (w < rank_of(t)) {
      best = t;
      break;  // first (lowest) node above w is the answer
    }
  }
  return best;
}

size_t DynSLD::idx_spine_length(edge_id x) {
  if (index_kind_ == SpineIndex::kLct) {
    return static_cast<size_t>(spine_.spine_length(static_cast<int>(x)));
  }
  if (index_kind_ == SpineIndex::kRc) return rc_spine_->spine_length(x);
  size_t len = 0;
  for (edge_id t = x; t != kNoEdge; t = dendro_.parent(t)) ++len;
  return len;
}

edge_id DynSLD::idx_spine_select_from_bottom(edge_id x, size_t i) {
  size_t len = idx_spine_length(x);
  assert(i < len);
  if (index_kind_ == SpineIndex::kLct) {
    return static_cast<edge_id>(spine_.spine_select_from_top(
        static_cast<int>(x), static_cast<int>(len - 1 - i)));
  }
  if (index_kind_ == SpineIndex::kRc) {
    return rc_spine_->spine_select_from_top(x, len - 1 - i);
  }
  edge_id t = x;
  for (size_t k = 0; k < i; ++k) t = dendro_.parent(t);
  return t;
}

size_t DynSLD::idx_spine_index_from_bottom(edge_id x, edge_id t) {
  // t lies on the root path of x; its own root path has length
  // (index from top) + 1, so index-from-bottom = len(x) - len(t).
  return idx_spine_length(x) - idx_spine_length(t);
}

uint64_t DynSLD::idx_subtree_size(edge_id e) {
  if (index_kind_ == SpineIndex::kLct) {
    return spine_.subtree_size(static_cast<int>(e));
  }
  if (index_kind_ == SpineIndex::kRc) return rc_spine_->subtree_size(e);
  // Pointer fallback: explicit DFS over child pointers.
  uint64_t count = 0;
  std::vector<edge_id> stack{e};
  while (!stack.empty()) {
    edge_id t = stack.back();
    stack.pop_back();
    ++count;
    for (edge_id c : dendro_.node(t).child) {
      if (c != kNoEdge) stack.push_back(c);
    }
  }
  return count;
}

std::vector<edge_id> DynSLD::extract_spine(edge_id e) {
  if (index_kind_ == SpineIndex::kRc) return rc_spine_->spine(e);
  return dendro_.spine(e);
}

// ---------------------------------------------------------------------
// Theorem 1.2: PWS-alternation merge.
// ---------------------------------------------------------------------

size_t DynSLD::merge_spines_output_sensitive(edge_id a, edge_id b) {
  assert(index_kind_ != SpineIndex::kPointer &&
         "output-sensitive merge requires a spine index");
  // Merge the root chains with bottoms a and b (distinct trees). Each
  // iteration finds, with one PWS query, the node of one chain whose
  // parent must become the current node of the other chain (Fig. 4),
  // then continues from the displaced parent. Exactly c queries and c
  // pointer changes.
  if (rank_of(b) < rank_of(a)) std::swap(a, b);
  edge_id from = a;    // chain currently receiving
  edge_id attach = b;  // node to splice in above the found position
  size_t changes = 0;
  while (true) {
    edge_id x = idx_spine_search_below(from, rank_of(attach));
    assert(x != kNoEdge);  // rank(from) < rank(attach) guarantees a hit
    edge_id p_old = dendro_.parent(x);
    set_parent_tracked(x, attach);
    ++changes;
    if (p_old == kNoEdge) break;
    from = attach;
    attach = p_old;
  }
  return changes;
}

edge_id DynSLD::insert_output_sensitive(vertex_id u, vertex_id v, double w) {
  InsertPlan plan = prepare_insert(u, v, w);
  if (plan.eu != kNoEdge) merge_spines_output_sensitive(plan.e, plan.eu);
  if (plan.ev != kNoEdge) merge_spines_output_sensitive(plan.e, plan.ev);
  return plan.e;
}

// ---------------------------------------------------------------------
// Theorem 1.4: divide-and-conquer merge (median + PWS).
// ---------------------------------------------------------------------

namespace {

/// One spine (root chain) addressed by index arithmetic against the
/// live spine index. Indices are 0-based from the bottom anchor.
struct SpineRef {
  DynSLD* self;
  edge_id bottom;
  size_t len;

  edge_id sel(size_t i) const { return self->idx_spine_select_from_bottom(bottom, i); }
  Rank rank(size_t i) const { return self->dendrogram().rank(sel(i)); }

  /// Index of the max node with rank < w, or -1; clamped to [lo, hi].
  long search_below(Rank w, long lo, long hi) const {
    edge_id t = self->idx_spine_search_below(bottom, w);
    if (t == kNoEdge) return lo - 1;
    long i = static_cast<long>(self->idx_spine_index_from_bottom(bottom, t));
    if (i < lo) return lo - 1;
    return std::min(i, hi);
  }

  /// Index of the min node with rank > w, clamped to [lo, hi+1].
  long search_above(Rank w, long lo, long hi) const {
    edge_id t = self->idx_spine_search_above(bottom, w);
    if (t == kNoEdge) return hi + 1;
    long i = static_cast<long>(self->idx_spine_index_from_bottom(bottom, t));
    if (i > hi) return hi + 1;
    return std::max(i, lo);
  }
};

struct DcMerger {
  SpineRef A, B;
  bool can_fork;
  std::vector<std::pair<edge_id, edge_id>> changes;

  void emit(edge_id c, edge_id p) { changes.emplace_back(c, p); }

  /// Set the parents of all nodes in A[alo..ahi] and B[blo..bhi] (index
  /// ranges inclusive) to their successor in the merged order; the
  /// overall maximum gets parent `above`. `a_leads` alternates which
  /// spine supplies the median (the work-efficiency trick of §4.3).
  void run(long alo, long ahi, long blo, long bhi, edge_id above, bool a_leads) {
    if (blo > bhi && alo > ahi) return;
    if (blo > bhi) {
      emit(A.sel(static_cast<size_t>(ahi)), above);  // A's top joins above;
      return;                                        // interior unchanged
    }
    if (alo > ahi) {
      emit(B.sel(static_cast<size_t>(bhi)), above);
      return;
    }
    if (!a_leads) {
      std::swap(A, B);
      std::swap(alo, blo);
      std::swap(ahi, bhi);
      run(alo, ahi, blo, bhi, above, true);
      std::swap(A, B);  // restore for the caller's frame
      return;
    }
    stats::bump(stats::counters().median_queries);
    long am = (alo + ahi) / 2;
    Rank rm = A.rank(static_cast<size_t>(am));

    long bx = B.search_below(rm, blo, bhi);  // max B < median
    if (bx < blo) {
      // All of B lies above the median: split A around B's bottom.
      Rank rb = B.rank(static_cast<size_t>(blo));
      long k = A.search_above(rb, am + 1, ahi);  // min A > B-bottom
      emit(A.sel(static_cast<size_t>(k - 1)), B.sel(static_cast<size_t>(blo)));
      run(k, ahi, blo, bhi, above, false);
      return;
    }
    if (bx == bhi) {
      // All of B lies below A's part above the median's low side.
      Rank rx = B.rank(static_cast<size_t>(bx));
      long j = A.search_below(rx, alo, am - 1);  // max A < B-top
      run(alo, j, blo, bx, A.sel(static_cast<size_t>(j + 1)), false);
      emit(A.sel(static_cast<size_t>(ahi)), above);  // A tail is on top
      return;
    }
    // General case (Fig. 5): x_v = B[bx], y_v = B[bx+1] straddle the
    // median; find the A split points hugging them.
    Rank rxv = B.rank(static_cast<size_t>(bx));
    Rank ryv = B.rank(static_cast<size_t>(bx + 1));
    long j = A.search_below(rxv, alo, am - 1);   // max A < x_v
    long k = A.search_above(ryv, am + 1, ahi);   // min A > y_v
    // Middle = A[j+1 .. k-1], nonempty (contains the median).
    edge_id mid_bottom = A.sel(static_cast<size_t>(j + 1));
    emit(A.sel(static_cast<size_t>(k - 1)), B.sel(static_cast<size_t>(bx + 1)));
    if (can_fork) {
      DcMerger lower{A, B, can_fork, {}};
      DcMerger upper{A, B, can_fork, {}};
      par::par_do(
          [&] { lower.run(alo, j, blo, bx, mid_bottom, false); },
          [&] { upper.run(k, ahi, bx + 1, bhi, above, false); });
      changes.insert(changes.end(), lower.changes.begin(), lower.changes.end());
      changes.insert(changes.end(), upper.changes.begin(), upper.changes.end());
    } else {
      run(alo, j, blo, bx, mid_bottom, false);
      run(k, ahi, bx + 1, bhi, above, false);
    }
  }
};

}  // namespace

void DynSLD::merge_spines_dc(edge_id a, edge_id b) {
  assert(index_kind_ != SpineIndex::kPointer &&
         "divide-and-conquer merge requires a spine index");
  size_t la = idx_spine_length(a);
  size_t lb = idx_spine_length(b);
  // Queries during the divide phase must see the unmodified spines, so
  // changes are collected and applied as one batch (basic variant of
  // §4.3; the interleaved work-efficient variant needs batch RC
  // updates, see DESIGN.md). Concurrent reads are safe only on the RC
  // backend; the LCT backend restructures on reads.
  DcMerger m{SpineRef{this, a, la}, SpineRef{this, b, lb},
             /*can_fork=*/index_kind_ == SpineIndex::kRc,
             {}};
  m.run(0, static_cast<long>(la) - 1, 0, static_cast<long>(lb) - 1, kNoEdge,
        /*a_leads=*/true);
  apply_changes_tracked(m.changes);
}

edge_id DynSLD::insert_parallel_output_sensitive(vertex_id u, vertex_id v,
                                                 double w) {
  InsertPlan plan = prepare_insert(u, v, w);
  if (plan.eu != kNoEdge) merge_spines_dc(plan.e, plan.eu);
  if (plan.ev != kNoEdge) merge_spines_dc(plan.e, plan.ev);
  return plan.e;
}

}  // namespace dynsld
