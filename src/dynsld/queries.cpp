// Dendrogram queries (§6.1, Table 2).
//
//   threshold / LCA   O(log n): path-max on the input forest
//   cluster size      O(log n) with a spine index (PWS + subtree size),
//                     O(|S|) fallback without one
//   cluster report    O(|S|): child-pointer DFS from the threshold node
//   flat clustering   O(n): union-find over the sub-threshold edges
//
// The *_via_crawl variants answer the same questions using only the
// forest adjacency (what a dynamic-MSF-only pipeline could do, the
// right-hand columns of Table 2); benchmarks contrast the two.
#include <unordered_set>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"

namespace dynsld {

namespace {

/// Threshold comparison: edges with weight <= tau are merged.
/// Rank{tau, kNoEdge} is an upper sentinel: every edge of weight tau
/// has id < kNoEdge, hence rank strictly below the sentinel.
Rank tau_sentinel(double tau) { return Rank{tau, kNoEdge}; }

}  // namespace

bool DynSLD::same_cluster(vertex_id s, vertex_id t, double tau) {
  if (s == t) return true;
  if (!connected(s, t)) return false;
  return max_edge_on_path(s, t).weight <= tau;
}

uint64_t DynSLD::cluster_size(vertex_id u, double tau) {
  edge_id estar = min_incident_edge(u);
  if (estar == kNoEdge || edge_slots_[estar].weight > tau) return 1;
  // Highest cluster on u's spine still within the threshold.
  edge_id top = idx_spine_search_below(estar, tau_sentinel(tau));
  assert(top != kNoEdge);
  // A cluster with k internal merge nodes spans k+1 vertices.
  return idx_subtree_size(top) + 1;
}

std::vector<vertex_id> DynSLD::cluster_report(vertex_id u, double tau) {
  edge_id estar = min_incident_edge(u);
  if (estar == kNoEdge || edge_slots_[estar].weight > tau) return {u};
  edge_id top = idx_spine_search_below(estar, tau_sentinel(tau));
  assert(top != kNoEdge);
  // DFS over child pointers; the cluster's vertices are exactly the
  // endpoints of the edges in the subtree.
  std::unordered_set<vertex_id> verts;
  std::vector<edge_id> stack{top};
  while (!stack.empty()) {
    edge_id e = stack.back();
    stack.pop_back();
    const auto& nd = dendro_.node(e);
    verts.insert(nd.u);
    verts.insert(nd.v);
    for (edge_id c : nd.child) {
      if (c != kNoEdge) stack.push_back(c);
    }
  }
  return {verts.begin(), verts.end()};
}

std::vector<vertex_id> DynSLD::cluster_report_via_crawl(vertex_id u, double tau) {
  // MSF-only strategy: breadth-first crawl over edges within threshold.
  std::unordered_set<vertex_id> seen{u};
  std::vector<vertex_id> queue{u};
  for (size_t head = 0; head < queue.size(); ++head) {
    vertex_id x = queue[head];
    for (const Rank& r : incident_[x]) {
      const WeightedEdge& ed = edge_slots_[r.id];
      if (ed.weight > tau) break;  // incident sets are rank-ordered
      vertex_id y = ed.other(x);
      if (seen.insert(y).second) queue.push_back(y);
    }
  }
  return queue;
}

uint64_t DynSLD::cluster_size_via_crawl(vertex_id u, double tau) {
  return cluster_report_via_crawl(u, tau).size();
}

std::vector<vertex_id> DynSLD::flat_clustering(double tau) {
  UnionFind uf(n_);
  for (edge_id e = 0; e < edge_slots_.size(); ++e) {
    if (!dendro_.alive(e)) continue;
    const WeightedEdge& ed = edge_slots_[e];
    if (ed.weight <= tau) uf.unite(ed.u, ed.v);
  }
  std::vector<vertex_id> label(n_);
  for (vertex_id v = 0; v < n_; ++v) label[v] = uf.find(v);
  return label;
}

}  // namespace dynsld
