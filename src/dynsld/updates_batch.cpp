// Theorem 1.5 (§3.3): batch-parallel updates.
//
// Batch insertion runs tree contraction over the incidence graph (one
// round = deterministic coin-flip star contraction) and applies
// Star-Merge (Algorithm 3) to every contracted star. Our Star-Merge
// grouping refines the paper's description to cover two boundary cases
// the pseudocode glosses over:
//   * segment boundaries are the branching nodes of D0 *plus* every
//     characteristic-spine bottom e*_{y_i} that has a D0 child
//     (an interior spine bottom is exactly the join point below which
//     another satellite's chain must not interleave);
//   * the part of a satellite spine below its own e*_{y_i} joins a
//     per-center-vertex group (satellites sharing the center vertex y
//     interleave from the very bottom; satellites at different center
//     vertices may not interleave below the first cluster joining
//     them). Each such group's top links to e*_y.
// Every boundary node is the bottom *member* of the segment above it,
// so group merges position it correctly with no special casing.
//
// Batch deletion cuts all edges from the connectivity forest, then
// computes every unmerge against the shared pre-update dendrogram; the
// overlapping spines produce identical pointer writes, which
// apply_changes_tracked deduplicates (the paper's concurrency argument).
#include <algorithm>
#include <unordered_map>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "parallel/primitives.hpp"
#include "parallel/random.hpp"
#include "parallel/stats.hpp"

namespace dynsld {

namespace {

/// Merge sorted-by-rank id sequences pairwise until one remains.
std::vector<edge_id> kway_merge(std::vector<std::vector<edge_id>>& seqs,
                                const Dendrogram& d) {
  auto by_rank = [&d](edge_id a, edge_id b) { return d.rank(a) < d.rank(b); };
  if (seqs.empty()) return {};
  while (seqs.size() > 1) {
    std::vector<std::vector<edge_id>> next((seqs.size() + 1) / 2);
    par::parallel_for(
        0, seqs.size() / 2,
        [&](size_t i) {
          next[i] = par::merge<edge_id>(seqs[2 * i], seqs[2 * i + 1], by_rank);
        },
        1);
    if (seqs.size() % 2 == 1) next.back() = std::move(seqs.back());
    seqs = std::move(next);
  }
  return std::move(seqs[0]);
}

}  // namespace

void DynSLD::star_merge(std::span<const edge_id> sat_edges,
                        std::span<const vertex_id> center_vertices) {
  const size_t k = sat_edges.size();
  assert(k == center_vertices.size());

  // Phase 1: anchors from the pre-star incidence state.
  std::vector<edge_id> ex(k), ey(k);
  std::vector<vertex_id> xv(k);
  for (size_t i = 0; i < k; ++i) {
    const WeightedEdge& ed = edge_slots_[sat_edges[i]];
    xv[i] = ed.other(center_vertices[i]);
    ex[i] = min_incident_edge(xv[i]);
    ey[i] = min_incident_edge(center_vertices[i]);
  }

  // Phase 2: make the new edges part of the forest and merge each into
  // its satellite's dendrogram ("merge the new edge nodes into the
  // dendrograms of the leaves"). Satellites are disjoint components.
  for (size_t i = 0; i < k; ++i) add_to_incidence(edge_slots_[sat_edges[i]]);
  for (size_t i = 0; i < k; ++i) {
    if (ex[i] != kNoEdge) merge_spines_walk(sat_edges[i], ex[i]);
  }

  // Phase 3: extract the characteristic spines.
  std::vector<std::vector<edge_id>> s(k), s0(k);
  for (size_t i = 0; i < k; ++i) {
    s[i] = extract_spine(sat_edges[i]);
    if (ey[i] != kNoEdge) s0[i] = extract_spine(ey[i]);
    stats::bump(stats::counters().spine_nodes_touched, s[i].size() + s0[i].size());
  }

  // Phase 4: D0 = union of the center spines; child counts; boundaries.
  struct D0Info {
    int child_count = 0;
    bool boundary = false;
    int seg = -1;
  };
  std::unordered_map<edge_id, D0Info> d0;
  for (const auto& sp : s0) {
    for (edge_id x : sp) d0.try_emplace(x);
  }
  for (const auto& [x, info] : d0) {
    (void)info;
    edge_id p = dendro_.parent(x);
    if (p != kNoEdge) {
      auto it = d0.find(p);
      assert(it != d0.end() && "D0 must be closed under parents");
      ++it->second.child_count;
    }
  }
  for (auto& [x, info] : d0) {
    (void)x;
    assert(info.child_count <= 2);
    if (info.child_count >= 2) info.boundary = true;
  }
  for (size_t i = 0; i < k; ++i) {
    if (ey[i] != kNoEdge) {
      auto& info = d0.at(ey[i]);
      if (info.child_count >= 1) info.boundary = true;  // interior spine bottom
    }
  }

  // Phase 5: segments — maximal chains cut *below* every boundary node,
  // each boundary being the bottom member of the segment above it.
  struct Segment {
    std::vector<edge_id> nodes;  // ascending rank; nodes[0] is the start
    edge_id above = kNoEdge;     // boundary node right above, if any
    std::vector<std::vector<edge_id>> frags;
  };
  std::vector<Segment> segs;
  for (auto& [x, info] : d0) {
    bool starts = info.boundary;
    if (!starts && info.child_count == 0) starts = true;
    if (!starts) continue;
    Segment seg;
    seg.nodes.push_back(x);
    info.seg = static_cast<int>(segs.size());
    edge_id t = dendro_.parent(x);
    while (t != kNoEdge) {
      auto& ti = d0.at(t);
      if (ti.boundary) break;
      seg.nodes.push_back(t);
      ti.seg = static_cast<int>(segs.size());
      t = dendro_.parent(t);
    }
    seg.above = t;
    segs.push_back(std::move(seg));
  }

  // Per-center-vertex groups for the sub-e*_y chain bottoms.
  struct VertexGroup {
    edge_id top_link = kNoEdge;  // e*_y, or none when the center is edgeless
    std::vector<std::vector<edge_id>> frags;
  };
  std::unordered_map<vertex_id, VertexGroup> vgroups;

  // Phase 6: split each satellite spine and assign fragments.
  for (size_t i = 0; i < k; ++i) {
    const auto& si = s[i];
    size_t pos = 0;
    // Sub-bottom fragment: ranks below rank(e*_{y_i}).
    {
      auto& vg = vgroups[center_vertices[i]];
      vg.top_link = ey[i];
      std::vector<edge_id> frag;
      if (ey[i] == kNoEdge) {
        frag.assign(si.begin(), si.end());
        pos = si.size();
      } else {
        Rank bound = rank_of(ey[i]);
        while (pos < si.size() && rank_of(si[pos]) < bound) frag.push_back(si[pos++]);
      }
      if (!frag.empty()) vg.frags.push_back(std::move(frag));
    }
    if (ey[i] == kNoEdge) continue;
    // Remaining fragments: split at the boundary nodes along s0_i
    // (strictly above e*_{y_i}); fragment below boundary c joins the
    // segment whose bottom-most member is the previous boundary (or
    // the segment containing e*_{y_i} itself for the first one).
    int cur_seg = d0.at(ey[i]).seg;
    for (size_t t = 1; t < s0[i].size() && pos < si.size(); ++t) {
      const D0Info& info = d0.at(s0[i][t]);
      if (!info.boundary) continue;
      Rank bound = rank_of(s0[i][t]);
      std::vector<edge_id> frag;
      while (pos < si.size() && rank_of(si[pos]) < bound) frag.push_back(si[pos++]);
      if (!frag.empty()) segs[static_cast<size_t>(cur_seg)].frags.push_back(std::move(frag));
      cur_seg = info.seg;
    }
    if (pos < si.size()) {
      std::vector<edge_id> frag(si.begin() + static_cast<long>(pos), si.end());
      segs[static_cast<size_t>(cur_seg)].frags.push_back(std::move(frag));
    }
  }

  // Phase 7: merge every group and emit the relink changes.
  std::vector<std::pair<edge_id, edge_id>> changes;
  for (auto& seg : segs) {
    if (seg.frags.empty()) continue;  // untouched chain piece
    std::vector<std::vector<edge_id>> inputs = std::move(seg.frags);
    inputs.push_back(seg.nodes);
    std::vector<edge_id> merged = kway_merge(inputs, dendro_);
    for (size_t i = 0; i + 1 < merged.size(); ++i) {
      changes.emplace_back(merged[i], merged[i + 1]);
    }
    changes.emplace_back(merged.back(), seg.above);
  }
  for (auto& [y, vg] : vgroups) {
    (void)y;
    if (vg.frags.empty()) continue;
    std::vector<edge_id> merged = kway_merge(vg.frags, dendro_);
    for (size_t i = 0; i + 1 < merged.size(); ++i) {
      changes.emplace_back(merged[i], merged[i + 1]);
    }
    changes.emplace_back(merged.back(), vg.top_link);
  }
  apply_changes_tracked(changes);
}

std::vector<edge_id> DynSLD::insert_batch(std::span<const EdgeInsert> batch) {
  const size_t k = batch.size();
  std::vector<edge_id> ids(k, kNoEdge);
  if (k == 0) return ids;
  if (k == 1) {
    ids[0] = insert(batch[0].u, batch[0].v, batch[0].weight);
    return ids;
  }

  // Snapshot component representatives before the connectivity links.
  std::vector<int> cu(k), cv(k);
  for (size_t i = 0; i < k; ++i) {
    cu[i] = conn_.find_root(conn_vertex(batch[i].u));
    cv[i] = conn_.find_root(conn_vertex(batch[i].v));
  }
  for (size_t i = 0; i < k; ++i) {
    ids[i] = alloc_edge(batch[i].u, batch[i].v, batch[i].weight);
    register_edge_node(edge_slots_[ids[i]]);
  }

  // Dense component ids + union-find over the incidence graph.
  std::unordered_map<int, vertex_id> dense;
  auto dense_id = [&dense](int r) {
    auto [it, fresh] = dense.try_emplace(r, static_cast<vertex_id>(dense.size()));
    (void)fresh;
    return it->second;
  };
  std::vector<vertex_id> du(k), dv(k);
  for (size_t i = 0; i < k; ++i) {
    du[i] = dense_id(cu[i]);
    dv[i] = dense_id(cv[i]);
  }
  UnionFind cycle_check(dense.size());
  for (size_t i = 0; i < k; ++i) {
    assert(!cycle_check.connected(du[i], dv[i]) &&
           "insert_batch would create a cycle");
    cycle_check.unite(du[i], dv[i]);
  }

  UnionFind uf(dense.size());
  std::vector<size_t> pending(k);
  for (size_t i = 0; i < k; ++i) pending[i] = i;
  uint64_t round = 0;

  while (!pending.empty()) {
    // Deterministic coin per current component; tails components
    // contract into an adjacent heads component along their minimum
    // pending edge (one round of star contraction).
    auto heads = [round](vertex_id comp) {
      return (par::hash64(0x51ab5eedULL + round * 0x10001ULL + comp) & 1) != 0;
    };
    std::unordered_map<vertex_id, size_t> chosen;  // tails comp -> edge index
    for (size_t idx : pending) {
      vertex_id a = uf.find(du[idx]);
      vertex_id b = uf.find(dv[idx]);
      vertex_id tails;
      if (heads(a) && !heads(b)) {
        tails = b;
      } else if (heads(b) && !heads(a)) {
        tails = a;
      } else {
        continue;
      }
      auto [it, fresh] = chosen.try_emplace(tails, idx);
      if (!fresh && idx < it->second) it->second = idx;
    }
    if (chosen.empty()) {
      // Coins stalled this round: force progress with the first pending
      // edge as a one-satellite star.
      size_t idx = pending[0];
      chosen.emplace(uf.find(du[idx]), idx);
    }

    // Group the contracted satellites by center component.
    std::unordered_map<vertex_id, std::vector<size_t>> stars;
    for (auto [tails, idx] : chosen) {
      vertex_id a = uf.find(du[idx]);
      vertex_id center = (a == tails) ? uf.find(dv[idx]) : a;
      stars[center].push_back(idx);
    }
    std::vector<char> processed(k, 0);
    for (auto& [center, idxs] : stars) {
      std::sort(idxs.begin(), idxs.end());  // deterministic order
      std::vector<edge_id> sat_ids;
      std::vector<vertex_id> centers;
      for (size_t idx : idxs) {
        sat_ids.push_back(ids[idx]);
        // The center-side endpoint is the one whose component is `center`.
        bool u_center = uf.find(du[idx]) == center;
        centers.push_back(u_center ? edge_slots_[ids[idx]].u
                                   : edge_slots_[ids[idx]].v);
        processed[idx] = 1;
      }
      star_merge(sat_ids, centers);
      for (size_t idx : idxs) {
        vertex_id a = uf.find(du[idx]);
        vertex_id b = uf.find(dv[idx]);
        vertex_id sat = (a == center) ? b : a;
        // Attach the satellite under the center so the center stays the
        // representative for the rest of this round.
        uf.unite(sat, center);
      }
    }
    std::vector<size_t> rest;
    rest.reserve(pending.size());
    for (size_t idx : pending) {
      if (!processed[idx]) rest.push_back(idx);
    }
    pending = std::move(rest);
    ++round;
  }
  return ids;
}

void DynSLD::erase_batch(std::span<const edge_id> batch) {
  if (batch.empty()) return;
  if (batch.size() == 1) {
    erase(batch[0]);
    return;
  }
  if (deleted_mark_.size() < edge_slots_.size()) {
    deleted_mark_.resize(edge_slots_.size(), 0);
  }
  std::vector<WeightedEdge> eds;
  eds.reserve(batch.size());
  for (edge_id e : batch) {
    assert(dendro_.alive(e));
    assert(!deleted_mark_[e] && "duplicate edge in erase_batch");
    deleted_mark_[e] = 1;
    eds.push_back(edge_slots_[e]);
  }
  // Batch cut: the connectivity structure reflects the final forest
  // before any side test runs.
  for (const WeightedEdge& ed : eds) unregister_edge(ed);
  std::vector<std::pair<edge_id, edge_id>> changes;
  for (edge_id e : batch) {
    unmerge_changes(e, deleted_mark_, /*parallel=*/true, changes);
  }
  apply_changes_tracked(changes);
  for (edge_id e : batch) {
    deleted_mark_[e] = 0;
    dendro_.remove_node(e);
  }
}

// ---------------------------------------------------------------------
// Parallel static construction (declared in static_sld.hpp).
// ---------------------------------------------------------------------

Dendrogram build_batch_parallel(vertex_id n, std::span<const WeightedEdge> edges,
                                SpineIndex index) {
  DynSLD sld(n, index);
  std::vector<DynSLD::EdgeInsert> batch(edges.size());
  par::parallel_for(0, edges.size(), [&](size_t i) {
    batch[i] = DynSLD::EdgeInsert{edges[i].u, edges[i].v, edges[i].weight};
  });
  sld.insert_batch(batch);
  return sld.dendrogram();
}

}  // namespace dynsld
