// Theorem 1.3 (§3.2): parallel single updates. Insertions extract both
// characteristic spines into arrays, merge them with the parallel merge
// primitive, and bulk-apply the changed pointers. Deletions extract the
// spines, run the side tests, and keep each side with an
// order-preserving parallel filter (shared with erase_batch through
// unmerge_changes).
#include "dynsld/dyn_sld.hpp"
#include "parallel/primitives.hpp"
#include "parallel/stats.hpp"

namespace dynsld {

void DynSLD::merge_spines_parallel(edge_id a, edge_id b) {
  std::vector<edge_id> sa = extract_spine(a);
  std::vector<edge_id> sb = extract_spine(b);
  stats::bump(stats::counters().spine_nodes_touched, sa.size() + sb.size());
  auto by_rank = [this](edge_id x, edge_id y) { return rank_of(x) < rank_of(y); };
  std::vector<edge_id> merged(sa.size() + sb.size());
  par::merge<edge_id>(sa, sb, std::span<edge_id>(merged), by_rank);

  // New parent of merged[i] is merged[i+1]; the overall top stays a
  // root (both inputs were full root chains). Collect only real
  // changes, in parallel.
  const size_t m = merged.size();
  std::vector<char> differs(m, 0);
  par::parallel_for(0, m - 1, [&](size_t i) {
    differs[i] = dendro_.parent(merged[i]) != merged[i + 1] ? 1 : 0;
  });
  std::vector<std::pair<edge_id, edge_id>> changes;
  changes.reserve(m);
  for (size_t i = 0; i + 1 < m; ++i) {
    if (differs[i]) changes.emplace_back(merged[i], merged[i + 1]);
  }
  apply_changes_tracked(changes);
}

edge_id DynSLD::insert_parallel(vertex_id u, vertex_id v, double w) {
  InsertPlan plan = prepare_insert(u, v, w);
  if (plan.eu != kNoEdge) merge_spines_parallel(plan.e, plan.eu);
  if (plan.ev != kNoEdge) merge_spines_parallel(plan.e, plan.ev);
  return plan.e;
}

void DynSLD::erase_parallel(edge_id e) {
  assert(dendro_.alive(e));
  const WeightedEdge ed = edge_slots_[e];
  unregister_edge(ed);
  if (deleted_mark_.size() < edge_slots_.size()) {
    deleted_mark_.resize(edge_slots_.size(), 0);
  }
  deleted_mark_[e] = 1;
  std::vector<std::pair<edge_id, edge_id>> changes;
  unmerge_changes(e, deleted_mark_, /*parallel=*/true, changes);
  deleted_mark_[e] = 0;
  apply_changes_tracked(changes);
  dendro_.remove_node(e);
}

}  // namespace dynsld
