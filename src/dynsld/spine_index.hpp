// Spine-index selection for DynSLD.
//
// The sequential height-bounded algorithms (Thm 1.1) walk parent
// pointers and need no auxiliary structure (kPointer). The
// output-sensitive algorithms (Thms 1.2/1.4) and the O(log n) cluster
// size query (§6.1) need path weight search / path median / subtree
// size on the dendrogram, provided by a dynamic tree maintained in
// lockstep with every parent change: a link-cut tree (kLct, O(log n)
// amortized) or the paper's rake-compress tree (kRc, §3.2).
#pragma once

namespace dynsld {

enum class SpineIndex {
  kPointer,  // no index: O(h) walks only
  kLct,      // splay link-cut tree over the dendrogram
  kRc,       // rake-compress tree over the dendrogram (paper-faithful)
};

}  // namespace dynsld
