#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "parallel/random.hpp"

namespace dynsld::gen {
namespace {

using par::Rng;

// Assign weights to m edges according to the requested pattern.
// kBalanced produces weights such that merging in weight order builds a
// balanced dendrogram over a path: weight of edge i = number of trailing
// zeros pattern (tournament order).
std::vector<double> make_weights(size_t m, Weights pattern, uint64_t seed) {
  std::vector<double> w(m);
  switch (pattern) {
    case Weights::kIncreasing:
      for (size_t i = 0; i < m; ++i) w[i] = static_cast<double>(i + 1);
      break;
    case Weights::kDecreasing:
      for (size_t i = 0; i < m; ++i) w[i] = static_cast<double>(m - i);
      break;
    case Weights::kRandom: {
      std::vector<size_t> perm(m);
      std::iota(perm.begin(), perm.end(), size_t{1});
      Rng rng(seed);
      for (size_t i = m; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.next_bounded(i)]);
      for (size_t i = 0; i < m; ++i) w[i] = static_cast<double>(perm[i]);
      break;
    }
    case Weights::kBalanced:
      // Tournament order: edge i gets weight by the position of its
      // lowest set bit, so merges pair up neighbors level by level and
      // the dendrogram height is O(log m).
      for (size_t i = 0; i < m; ++i) {
        size_t level = 0, x = i + 1;
        while ((x & 1) == 0) {
          ++level;
          x >>= 1;
        }
        w[i] = static_cast<double>(level) * static_cast<double>(m + 1) +
               static_cast<double>(i + 1);
      }
      break;
  }
  return w;
}

Forest from_pairs(vertex_id n, const std::vector<std::pair<vertex_id, vertex_id>>& pairs,
                  Weights pattern, uint64_t seed) {
  Forest f;
  f.n = n;
  auto w = make_weights(pairs.size(), pattern, seed);
  f.edges.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    f.edges.push_back(WeightedEdge{pairs[i].first, pairs[i].second, w[i],
                                   static_cast<edge_id>(i)});
  }
  return f;
}

}  // namespace

Forest path(vertex_id n, Weights pattern, uint64_t seed) {
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  for (vertex_id i = 0; i + 1 < n; ++i) pairs.emplace_back(i, i + 1);
  return from_pairs(n, pairs, pattern, seed);
}

Forest star(vertex_id n, Weights pattern, uint64_t seed) {
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  for (vertex_id i = 1; i < n; ++i) pairs.emplace_back(0, i);
  return from_pairs(n, pairs, pattern, seed);
}

Forest caterpillar(vertex_id n, Weights pattern, uint64_t seed) {
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  vertex_id spine = n / 2;
  for (vertex_id i = 0; i + 1 < spine; ++i) pairs.emplace_back(i, i + 1);
  for (vertex_id i = spine; i < n; ++i) pairs.emplace_back(i - spine, i);
  return from_pairs(n, pairs, pattern, seed);
}

Forest binary_tree(vertex_id n, Weights pattern, uint64_t seed) {
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  for (vertex_id i = 1; i < n; ++i) pairs.emplace_back((i - 1) / 2, i);
  return from_pairs(n, pairs, pattern, seed);
}

Forest random_tree(vertex_id n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  for (vertex_id i = 1; i < n; ++i) {
    pairs.emplace_back(static_cast<vertex_id>(rng.next_bounded(i)), i);
  }
  return from_pairs(n, pairs, Weights::kRandom, seed + 1);
}

Forest random_forest(vertex_id n, vertex_id num_components, uint64_t seed) {
  Forest f = random_tree(n, seed);
  if (num_components <= 1 || f.edges.empty()) return f;
  // Drop num_components-1 edges (deterministic sample) to split the tree.
  Rng rng(seed + 7);
  vertex_id drops = std::min<vertex_id>(num_components - 1,
                                        static_cast<vertex_id>(f.edges.size()));
  for (vertex_id d = 0; d < drops; ++d) {
    size_t i = rng.next_bounded(f.edges.size());
    f.edges.erase(f.edges.begin() + static_cast<long>(i));
  }
  // Reassign ids to stay index-aligned.
  for (size_t i = 0; i < f.edges.size(); ++i)
    f.edges[i].id = static_cast<edge_id>(i);
  return f;
}

Forest lower_bound_stars(vertex_id h, vertex_id num_stars) {
  Forest f;
  f.n = num_stars * (h + 1);
  f.edges.reserve(static_cast<size_t>(num_stars) * h);
  edge_id next_id = 0;
  for (vertex_id s = 0; s < num_stars; ++s) {
    vertex_id center = s * (h + 1);
    for (vertex_id j = 0; j < h; ++j) {
      // Star s (1-based s+1): weights s+1, h+(s+1), 2h+(s+1), ...
      double w = static_cast<double>(j) * static_cast<double>(h) +
                 static_cast<double>(s + 1);
      f.edges.push_back(WeightedEdge{center, center + 1 + j, w, next_id++});
    }
  }
  return f;
}

Graph random_geometric(vertex_id n, double radius, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (vertex_id i = 0; i < n; ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
  }
  Graph g;
  g.n = n;
  edge_id next_id = 0;
  for (vertex_id i = 0; i < n; ++i) {
    for (vertex_id j = i + 1; j < n; ++j) {
      double dx = x[i] - x[j], dy = y[i] - y[j];
      double d = std::sqrt(dx * dx + dy * dy);
      if (d <= radius) {
        g.edges.push_back(WeightedEdge{i, j, d, next_id++});
      }
    }
  }
  return g;
}

}  // namespace dynsld::gen
