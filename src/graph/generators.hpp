// Workload generators for tests, examples and benchmarks: the tree
// families the paper's bounds are parameterized by (height-h families,
// the Thm 5.1 lower-bound instance) plus generic random forests and the
// geometric graphs used by the end-to-end pipeline experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace dynsld::gen {

/// A generated forest: `n` vertices and a set of edges with ids assigned
/// 0..edges.size()-1 (matching their index).
struct Forest {
  vertex_id n = 0;
  std::vector<WeightedEdge> edges;
};

/// Weight pattern for path/star/caterpillar generators.
enum class Weights {
  kIncreasing,  // 1, 2, 3, ... => path SLD of height n-1
  kDecreasing,  // n-1, ..., 2, 1
  kRandom,      // deterministic pseudo-random permutation of 1..m
  kBalanced,    // weights that make the SLD a balanced binary tree
};

/// Path graph v0 - v1 - ... - v_{n-1}.
Forest path(vertex_id n, Weights pattern, uint64_t seed = 1);

/// Star with center 0 and n-1 leaves.
Forest star(vertex_id n, Weights pattern, uint64_t seed = 1);

/// Caterpillar: a path of n/2 spine vertices, each with one leg.
Forest caterpillar(vertex_id n, Weights pattern, uint64_t seed = 1);

/// Complete binary tree shape with random weights: SLD height ~log n
/// under kBalanced, random otherwise.
Forest binary_tree(vertex_id n, Weights pattern, uint64_t seed = 1);

/// Random tree by uniform random attachment: vertex i attaches to a
/// uniform vertex j < i. Random weights.
Forest random_tree(vertex_id n, uint64_t seed = 1);

/// Random forest: random tree minus a deterministic sample of edges.
Forest random_forest(vertex_id n, vertex_id num_components, uint64_t seed = 1);

/// The Theorem 5.1 lower-bound family: n/(h+1) disjoint stars of h+1
/// vertices; star i (1-based) has edge weights (i, h+i, 2h+i, ...), so
/// each star's SLD is a path of height h and inserting a weight-0 edge
/// between two star centers changes Omega(h) parent pointers.
Forest lower_bound_stars(vertex_id h, vertex_id num_stars);

/// Random geometric graph: n points in the unit square (deterministic),
/// an edge between every pair closer than `radius`, weight = distance.
/// Used by the dynamic-MSF end-to-end pipeline experiment.
struct Graph {
  vertex_id n = 0;
  std::vector<WeightedEdge> edges;
};
Graph random_geometric(vertex_id n, double radius, uint64_t seed = 1);

}  // namespace dynsld::gen
