// Core identifier and edge types shared by every module.
//
// Ranks (§2.1): the SLD is defined by the total order on edges given by
// weight with ties broken consistently; we use (weight, edge_id)
// lexicographic order everywhere, so dendrograms are unique and two
// independently computed dendrograms of the same forest are comparable
// field-by-field.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace dynsld {

using vertex_id = uint32_t;
using edge_id = uint32_t;

inline constexpr vertex_id kNoVertex = std::numeric_limits<vertex_id>::max();
inline constexpr edge_id kNoEdge = std::numeric_limits<edge_id>::max();

/// Total order on edges: weight, then id (consistent tie-breaking).
struct Rank {
  double weight = 0.0;
  edge_id id = kNoEdge;

  friend constexpr auto operator<=>(const Rank&, const Rank&) = default;
};

/// An undirected weighted edge. `id` is the stable identity used as the
/// dendrogram node index for this edge.
struct WeightedEdge {
  vertex_id u = kNoVertex;
  vertex_id v = kNoVertex;
  double weight = 0.0;
  edge_id id = kNoEdge;

  constexpr Rank rank() const { return Rank{weight, id}; }

  /// The endpoint that is not `x`; precondition: x is an endpoint.
  constexpr vertex_id other(vertex_id x) const { return x == u ? v : u; }

  friend constexpr bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

}  // namespace dynsld
