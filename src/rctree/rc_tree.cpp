// Rake-compress tree implementation.
//
// Representation: round-based tree contraction. rounds_[r] stores the
// adjacency of every vertex alive at round r (hash map vertex -> vector
// of (neighbor, edge-cluster id)) and the contraction actions taken at
// round r. Each round contracts the set of eligible vertices (degree
// <= 2) that are local priority maxima among their eligible neighbors,
// with priority = hash(round, vertex): deterministic, independent
// (adjacent vertices never both contract), and expected-constant-
// fraction progress per round, so O(log n) rounds.
//
// Dynamization: a single change-propagation loop serves both static
// construction and updates — a link/cut marks its endpoints dirty at
// round 0 (grow marks new vertices), and process_round(r) recomputes
// decisions for dirty vertices plus their eligible neighbors, re-derives
// the round-(r+1) adjacency entries of every touched vertex, and marks
// the entries that changed as dirty at r+1. Cluster ids are stable as
// long as the producing action (kind + neighbors + consumed edges) is
// unchanged; pure aggregate changes propagate up the parent chain.
#include "rctree/rc_tree.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cassert>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "parallel/random.hpp"

namespace dynsld::rctree {

namespace {

constexpr Rank kMinRank{-std::numeric_limits<double>::infinity(), 0};
constexpr Rank kMaxRank{std::numeric_limits<double>::infinity(), kNoEdge};

uint64_t priority(uint32_t round, vertex_id v) {
  return par::hash64((static_cast<uint64_t>(round) << 32) ^ v ^ 0xabcdef12345ULL);
}

}  // namespace

struct RcTree::Impl {
  enum Kind : uint8_t { kDead, kVertexLeaf, kBaseEdge, kRake, kCompress, kRoot };
  enum ActKind : uint8_t { kActRake, kActCompress, kActFinalize };

  struct Cluster {
    Kind kind = kDead;
    int parent = -1;
    uint32_t round = 0;       // creation round; parent.round > child.round
    vertex_id cvertex = kNoVertex;  // contracted/leaf vertex
    vertex_id bound[2] = {kNoVertex, kNoVertex};
    int pc[2] = {-1, -1};     // path children (compress) / edge child (rake)
    std::vector<int> unary_children;
    // aggregates over vertices strictly inside the cluster
    uint64_t vcount = 0;
    Rank vmax = kMinRank;
    vertex_id vmax_arg = kNoVertex;
    // cluster-path aggregates (base edge / compress)
    uint64_t path_len = 0;  // interior path vertices
    Rank path_vmax = kMinRank;
    vertex_id path_vmax_arg = kNoVertex;
    Rank path_vmin = kMaxRank;
    vertex_id path_vmin_arg = kNoVertex;
    Rank path_emax = kMinRank;
    Rank eweight = kMinRank;  // base edge weight
  };

  struct Action {
    ActKind kind;
    vertex_id nb[2] = {kNoVertex, kNoVertex};
    int in_edge[2] = {-1, -1};
    int produced = -1;

    bool same_shape(const Action& o) const {
      return kind == o.kind && nb[0] == o.nb[0] && nb[1] == o.nb[1] &&
             in_edge[0] == o.in_edge[0] && in_edge[1] == o.in_edge[1];
    }
  };

  using AdjList = std::vector<std::pair<vertex_id, int>>;  // (neighbor, edge cluster)

  struct Round {
    std::unordered_map<vertex_id, AdjList> adj;  // alive vertices only
    std::unordered_map<vertex_id, Action> actions;
  };

  size_t n = 0;
  std::vector<Rank> vweight;
  std::vector<Cluster> arena;
  std::vector<int> free_clusters;
  std::vector<Round> rounds;
  std::unordered_map<vertex_id, std::set<int>> rakes_onto;
  std::unordered_map<vertex_id, uint32_t> contracted_at;
  std::unordered_map<uint64_t, int> base_edges;  // (min,max) key -> cluster
  std::vector<std::unordered_set<vertex_id>> dirty;
  // value-dirty clusters, processed in creation-round order
  std::priority_queue<std::pair<uint32_t, int>, std::vector<std::pair<uint32_t, int>>,
                      std::greater<>> value_dirty;
  std::unordered_set<int> value_dirty_seen;
  std::vector<int> pending_free;

  static uint64_t edge_key(vertex_id u, vertex_id v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  int alloc_cluster() {
    if (!free_clusters.empty()) {
      int id = free_clusters.back();
      free_clusters.pop_back();
      arena[static_cast<size_t>(id)] = Cluster{};
      return id;
    }
    arena.emplace_back();
    return static_cast<int>(arena.size()) - 1;
  }

  Cluster& cl(int id) { return arena[static_cast<size_t>(id)]; }
  const Cluster& cl(int id) const { return arena[static_cast<size_t>(id)]; }

  void mark_dirty(uint32_t r, vertex_id v) {
    if (dirty.size() <= r) dirty.resize(r + 1);
    dirty[r].insert(v);
  }

  void mark_value_dirty(int c) {
    if (value_dirty_seen.insert(c).second) {
      value_dirty.emplace(cl(c).round, c);
    }
  }

  // ---- base mutations ----

  // Leaf cluster id of each vertex (allocated from the shared arena:
  // vertex ids and cluster ids are distinct spaces).
  std::vector<int> leaf_of;

  void grow(size_t m) {
    if (m <= n) return;
    vweight.resize(m, kMinRank);
    leaf_of.resize(m, -1);
    if (rounds.empty()) rounds.emplace_back();
    for (size_t v = n; v < m; ++v) {
      int id = alloc_cluster();
      leaf_of[v] = id;
      Cluster& c = cl(id);
      c.kind = kVertexLeaf;
      c.cvertex = static_cast<vertex_id>(v);
      c.vcount = 1;
      c.vmax = vweight[v];
      c.vmax_arg = static_cast<vertex_id>(v);
      rounds[0].adj.try_emplace(static_cast<vertex_id>(v));
      mark_dirty(0, static_cast<vertex_id>(v));
    }
    n = m;
    flush();
  }

  void set_vertex_weight(vertex_id v, Rank w) {
    vweight[v] = w;
    Cluster& c = cl(leaf_of[v]);
    c.vmax = w;
    c.vmax_arg = v;
    // Leaves are not recomputed from children; propagate directly from
    // the consuming cluster upward.
    if (c.parent >= 0) mark_value_dirty(c.parent);
    flush();
  }

  void link(vertex_id u, vertex_id v, Rank w) {
    assert(u < n && v < n && u != v);
    int e = alloc_cluster();
    Cluster& c = cl(e);
    c.kind = kBaseEdge;
    c.round = 0;
    c.bound[0] = u;
    c.bound[1] = v;
    c.eweight = w;
    c.path_emax = w;
    c.path_vmin = kMaxRank;
    c.path_vmax = kMinRank;
    base_edges[edge_key(u, v)] = e;
    rounds[0].adj[u].emplace_back(v, e);
    rounds[0].adj[v].emplace_back(u, e);
    mark_dirty(0, u);
    mark_dirty(0, v);
    flush();
  }

  void cut(vertex_id u, vertex_id v) {
    auto it = base_edges.find(edge_key(u, v));
    assert(it != base_edges.end() && "cut of a non-existent edge");
    int e = it->second;
    base_edges.erase(it);
    auto drop = [&](vertex_id a, vertex_id b) {
      AdjList& l = rounds[0].adj[a];
      l.erase(std::find_if(l.begin(), l.end(),
                           [&](const auto& p) { return p.first == b; }));
    };
    drop(u, v);
    drop(v, u);
    pending_free.push_back(e);
    mark_dirty(0, u);
    mark_dirty(0, v);
    flush();
  }

  // ---- contraction engine ----

  bool alive_at(vertex_id v, uint32_t r) const {
    return r < rounds.size() && rounds[r].adj.count(v) > 0;
  }

  size_t degree(uint32_t r, vertex_id v) const {
    auto it = rounds[r].adj.find(v);
    return it == rounds[r].adj.end() ? 0 : it->second.size();
  }

  /// Contraction decision for an alive vertex, from current round state.
  bool decide(uint32_t r, vertex_id v, Action* out) const {
    const AdjList& l = rounds[r].adj.at(v);
    if (l.size() > 2) return false;
    uint64_t my = priority(r, v);
    for (const auto& [w, e] : l) {
      (void)e;
      if (degree(r, w) <= 2) {
        uint64_t pw = priority(r, w);
        if (pw > my || (pw == my && w > v)) return false;  // blocked
      }
    }
    Action a;
    if (l.empty()) {
      a.kind = kActFinalize;
    } else if (l.size() == 1) {
      a.kind = kActRake;
      a.nb[0] = l[0].first;
      a.in_edge[0] = l[0].second;
    } else {
      a.kind = kActCompress;
      a.nb[0] = l[0].first;
      a.in_edge[0] = l[0].second;
      a.nb[1] = l[1].first;
      a.in_edge[1] = l[1].second;
    }
    *out = a;
    return true;
  }

  /// (Re)attach children and recompute the produced cluster's fields.
  void rebuild_cluster(vertex_id v, const Action& a) {
    Cluster& c = cl(a.produced);
    c.cvertex = v;
    c.pc[0] = a.in_edge[0];
    c.pc[1] = a.in_edge[1];
    switch (a.kind) {
      case kActRake:
        c.kind = kRake;
        c.bound[0] = a.nb[0];
        c.bound[1] = kNoVertex;
        break;
      case kActCompress: {
        c.kind = kCompress;
        // Align bound[i] with pc[i]'s far endpoint.
        c.bound[0] = a.nb[0];
        c.bound[1] = a.nb[1];
        break;
      }
      case kActFinalize:
        c.kind = kRoot;
        c.bound[0] = c.bound[1] = kNoVertex;
        break;
    }
    c.unary_children.clear();
    auto it = rakes_onto.find(v);
    if (it != rakes_onto.end()) {
      c.unary_children.assign(it->second.begin(), it->second.end());
    }
    // Parent pointers.
    cl(leaf_of[v]).parent = a.produced;  // vertex leaf
    for (int e : {c.pc[0], c.pc[1]}) {
      if (e >= 0) cl(e).parent = a.produced;
    }
    for (int u : c.unary_children) cl(u).parent = a.produced;
    mark_value_dirty(a.produced);
  }

  /// Children fingerprint check: does the produced cluster match what a
  /// rebuild would attach right now?
  bool children_current(vertex_id v, const Action& a) const {
    const Cluster& c = cl(a.produced);
    if (c.pc[0] != a.in_edge[0] || c.pc[1] != a.in_edge[1]) return false;
    auto it = rakes_onto.find(v);
    size_t want = it == rakes_onto.end() ? 0 : it->second.size();
    if (c.unary_children.size() != want) return false;
    if (want != 0) {
      size_t i = 0;
      for (int u : it->second) {
        if (c.unary_children[i++] != u) return false;
      }
    }
    return true;
  }

  // Rake targets whose unary-children sets changed during the current
  // round. Refreshing immediately is wrong: the target's own action in
  // this very round may still be pending undo, and rebuilding it would
  // re-point children at a doomed cluster. Resolved at end of round.
  std::set<vertex_id> pending_refresh;

  /// The unary-children set of contracted rake target t changed.
  /// If t's contraction round is already final (<= current round),
  /// rebuild its produced cluster in place; if it lies in the future,
  /// mark it dirty so its round's children_current check rebuilds it.
  void resolve_refresh(uint32_t r, vertex_id t) {
    auto cit = contracted_at.find(t);
    if (cit == contracted_at.end()) return;
    if (cit->second > r) {
      mark_dirty(cit->second, t);
      return;
    }
    auto ait = rounds[cit->second].actions.find(t);
    if (ait == rounds[cit->second].actions.end()) return;
    rebuild_cluster(t, ait->second);
  }

  void undo_action(uint32_t r, vertex_id v) {
    auto& acts = rounds[r].actions;
    auto it = acts.find(v);
    if (it == acts.end()) return;
    Action a = it->second;
    acts.erase(it);
    auto cit = contracted_at.find(v);
    if (cit != contracted_at.end() && cit->second == r) contracted_at.erase(cit);
    cl(a.produced).kind = kDead;
    pending_free.push_back(a.produced);
    if (a.kind == kActRake) {
      rakes_onto[a.nb[0]].erase(a.produced);
      pending_refresh.insert(a.nb[0]);
    }
  }

  void apply_action(uint32_t r, vertex_id v, Action a) {
    a.produced = alloc_cluster();
    Cluster& c = cl(a.produced);
    c.round = r + 1;
    c.parent = -1;
    rounds[r].actions[v] = a;
    contracted_at[v] = r;
    if (a.kind == kActRake) {
      rakes_onto[a.nb[0]].insert(a.produced);
      pending_refresh.insert(a.nb[0]);
    }
    rebuild_cluster(v, a);
  }

  /// Round-(r+1) adjacency entry of v, derived from round-r state.
  /// Returns false when v is not alive at r+1.
  bool derive(uint32_t r, vertex_id v, AdjList* out) const {
    auto it = rounds[r].adj.find(v);
    if (it == rounds[r].adj.end()) return false;              // dead at r
    if (rounds[r].actions.count(v)) return false;             // contracts at r
    out->clear();
    for (const auto& [w, e] : it->second) {
      auto ait = rounds[r].actions.find(w);
      if (ait == rounds[r].actions.end()) {
        out->emplace_back(w, e);
        continue;
      }
      const Action& aw = ait->second;
      if (aw.kind == kActRake) continue;  // edge consumed by the rake
      assert(aw.kind == kActCompress);
      vertex_id other = aw.nb[0] == v ? aw.nb[1] : aw.nb[0];
      out->emplace_back(other, aw.produced);
    }
    return true;
  }

  void process_round(uint32_t r) {
    const bool trace = std::getenv("DYNSLD_RC_TRACE") != nullptr;
    std::vector<vertex_id> R(dirty[r].begin(), dirty[r].end());
    dirty[r].clear();
    if (trace) {
      std::fprintf(stderr, "round %u R={", r);
      for (vertex_id v : R) std::fprintf(stderr, "%u ", v);
      std::fprintf(stderr, "}\n");
    }
    // Decisions of eligible neighbors depend on dirty vertices.
    {
      std::unordered_set<vertex_id> extra;
      for (vertex_id v : R) {
        auto it = rounds[r].adj.find(v);
        if (it == rounds[r].adj.end()) continue;
        for (const auto& [w, e] : it->second) {
          (void)e;
          if (degree(r, w) <= 2) extra.insert(w);
        }
      }
      for (vertex_id v : R) extra.erase(v);
      R.insert(R.end(), extra.begin(), extra.end());
    }
    std::sort(R.begin(), R.end());

    std::unordered_set<vertex_id> touched(R.begin(), R.end());
    for (vertex_id v : R) {
      bool alive = rounds[r].adj.count(v) > 0;
      Action na;
      bool contracts = alive && decide(r, v, &na);
      auto ait = rounds[r].actions.find(v);
      if (ait != rounds[r].actions.end()) {
        Action oa = ait->second;
        if (contracts && oa.same_shape(na)) {
          // Stable action; refresh children if the unary set drifted.
          if (!children_current(v, oa)) rebuild_cluster(v, oa);
          continue;
        }
        // Structural change: tear down the old action.
        touched.insert(oa.nb[0] != kNoVertex ? oa.nb[0] : v);
        if (oa.nb[1] != kNoVertex) touched.insert(oa.nb[1]);
        if (trace) {
          std::fprintf(stderr, "  undo v=%u kind=%d nb=(%d,%d) prod=%d\n", v,
                       static_cast<int>(oa.kind), static_cast<int>(oa.nb[0]),
                       static_cast<int>(oa.nb[1]), oa.produced);
        }
        undo_action(r, v);
      } else if (!contracts) {
        continue;  // was none, stays none
      }
      if (contracts) {
        apply_action(r, v, na);
        touched.insert(na.nb[0] != kNoVertex ? na.nb[0] : v);
        if (na.nb[1] != kNoVertex) touched.insert(na.nb[1]);
        if (trace) {
          const Action& aa = rounds[r].actions.at(v);
          std::fprintf(stderr, "  apply v=%u kind=%d nb=(%d,%d) in=(%d,%d) prod=%d\n",
                       v, static_cast<int>(aa.kind), static_cast<int>(aa.nb[0]),
                       static_cast<int>(aa.nb[1]), aa.in_edge[0], aa.in_edge[1],
                       aa.produced);
        }
      }
    }

    // Rake-target refreshes deferred from undo/apply: all round-r
    // actions are final now.
    {
      std::set<vertex_id> targets;
      targets.swap(pending_refresh);
      for (vertex_id t : targets) resolve_refresh(r, t);
    }

    // Re-derive round-(r+1) adjacency for every touched vertex, closing
    // symmetrically: when v's neighbor set at r+1 changes, the affected
    // neighbors' entries are stale too and join the worklist.
    if (rounds.size() <= r + 1) rounds.emplace_back();
    std::vector<vertex_id> work(touched.begin(), touched.end());
    std::sort(work.begin(), work.end());
    AdjList fresh;
    auto enqueue = [&](vertex_id w) {
      if (touched.insert(w).second) work.push_back(w);
    };
    for (size_t head = 0; head < work.size(); ++head) {
      vertex_id v = work[head];
      bool alive_next = derive(r, v, &fresh);
      auto it = rounds[r + 1].adj.find(v);
      if (trace) {
        std::fprintf(stderr, "  derive v=%u alive=%d list=[", v, (int)alive_next);
        if (alive_next) {
          for (auto& [w, e] : fresh) std::fprintf(stderr, "(%u,%d)", w, e);
        }
        std::fprintf(stderr, "]\n");
      }
      if (!alive_next) {
        if (it != rounds[r + 1].adj.end()) {
          for (const auto& [w, e] : it->second) {
            (void)e;
            enqueue(w);
          }
          rounds[r + 1].adj.erase(it);
          mark_dirty(r + 1, v);
        }
        continue;
      }
      std::sort(fresh.begin(), fresh.end());
      if (it == rounds[r + 1].adj.end()) {
        for (const auto& [w, e] : fresh) {
          (void)e;
          enqueue(w);
        }
        rounds[r + 1].adj.emplace(v, fresh);
        mark_dirty(r + 1, v);
      } else if (it->second != fresh) {
        // Neighbors present in exactly one of the two lists (or with a
        // changed edge cluster) are affected.
        for (const auto& pr : it->second) {
          if (std::find(fresh.begin(), fresh.end(), pr) == fresh.end()) {
            enqueue(pr.first);
          }
        }
        for (const auto& pr : fresh) {
          if (std::find(it->second.begin(), it->second.end(), pr) ==
              it->second.end()) {
            enqueue(pr.first);
          }
        }
        it->second = fresh;
        mark_dirty(r + 1, v);
      }
    }
  }

  void recompute_values() {
    while (!value_dirty.empty()) {
      auto [round, id] = value_dirty.top();
      value_dirty.pop();
      value_dirty_seen.erase(id);
      Cluster& c = cl(id);
      if (c.kind == kDead) continue;
      (void)round;
      Cluster old = c;
      recompute_one(c);
      bool changed = c.vcount != old.vcount || c.vmax != old.vmax ||
                     c.vmax_arg != old.vmax_arg || c.path_len != old.path_len ||
                     c.path_vmax != old.path_vmax || c.path_vmin != old.path_vmin ||
                     c.path_emax != old.path_emax;
      if (changed && c.parent >= 0 && cl(c.parent).kind != kDead) {
        mark_value_dirty(c.parent);
      }
    }
  }

  void recompute_one(Cluster& c) {
    if (c.kind == kVertexLeaf || c.kind == kBaseEdge) return;
    c.vcount = 1;  // the contracted vertex
    c.vmax = vweight[c.cvertex];
    c.vmax_arg = c.cvertex;
    auto absorb = [&](int child) {
      const Cluster& k = cl(child);
      c.vcount += k.vcount;
      if (c.vmax < k.vmax) {
        c.vmax = k.vmax;
        c.vmax_arg = k.vmax_arg;
      }
    };
    for (int e : {c.pc[0], c.pc[1]}) {
      if (e >= 0) absorb(e);
    }
    for (int u : c.unary_children) absorb(u);
    if (c.kind == kCompress) {
      const Cluster& a = cl(c.pc[0]);
      const Cluster& b = cl(c.pc[1]);
      c.path_len = a.path_len + 1 + b.path_len;
      c.path_vmax = vweight[c.cvertex];
      c.path_vmax_arg = c.cvertex;
      c.path_vmin = vweight[c.cvertex];
      c.path_vmin_arg = c.cvertex;
      c.path_emax = std::max(a.path_emax, b.path_emax);
      for (const Cluster* k : {&a, &b}) {
        if (k->path_len > 0 || k->kind == kCompress) {
          if (c.path_vmax < k->path_vmax) {
            c.path_vmax = k->path_vmax;
            c.path_vmax_arg = k->path_vmax_arg;
          }
          if (k->path_vmin < c.path_vmin) {
            c.path_vmin = k->path_vmin;
            c.path_vmin_arg = k->path_vmin_arg;
          }
        }
      }
    }
  }

  void flush() {
    for (uint32_t r = 0; r < dirty.size(); ++r) {
      if (!dirty[r].empty()) process_round(r);
      // process_round may grow `dirty`; the loop bound re-reads size().
    }
    recompute_values();
    for (int id : pending_free) {
      cl(id).kind = kDead;
      free_clusters.push_back(id);
    }
    pending_free.clear();
  }

  // ---- queries ----

  int root_cluster(vertex_id v) const {
    int c = leaf_of[v];
    while (cl(c).parent >= 0) c = cl(c).parent;
    return c;
  }

  /// One step of the two-sided path walk: current cluster `c` (with the
  /// walk origin strictly inside) and fragments toward each boundary.
  struct Walk {
    int c = -1;
    std::vector<PathFragment> frag[2];  // aligned with cl(c).bound
  };

  /// Path fragment for the full cluster path of binary cluster e,
  /// oriented so the `near` endpoint comes first.
  static PathFragment cluster_frag(int e, vertex_id near, const Cluster& ec) {
    PathFragment f;
    f.cluster = e;
    f.reversed = (ec.bound[0] != near);
    return f;
  }

  Walk start_walk(vertex_id u) const {
    Walk w;
    w.c = cl(leaf_of[u]).parent;
    assert(w.c >= 0 && "isolated leaf must have a root parent");
    const Cluster& c = cl(w.c);
    for (int i = 0; i < 2; ++i) {
      if (c.bound[i] == kNoVertex) continue;
      // u is the contracted vertex of w.c; the path child pc[i] spans
      // bound[i]..u for compress, pc[0] spans bound[0]..u for rake.
      int e = c.kind == kRake ? c.pc[0] : c.pc[i];
      w.frag[i].push_back(cluster_frag(e, u, cl(e)));
    }
    return w;
  }

  /// Advance the walk into the parent cluster; fragments re-expressed
  /// toward the parent's boundaries.
  void step_walk(Walk& w) const {
    const Cluster& c = cl(w.c);
    int p = c.parent;
    assert(p >= 0);
    const Cluster& pc = cl(p);
    vertex_id y = pc.cvertex;
    // Fragments toward y from the current cluster.
    std::vector<PathFragment> toward_y;
    if (c.kind == kVertexLeaf) {
      // origin == y; empty fragment list (only at the start when the
      // walk origin is the contracted vertex of p — handled by caller).
      assert(false && "walks never sit on a leaf");
    }
    int yidx = c.bound[0] == y ? 0 : 1;
    assert(c.bound[yidx] == y);
    toward_y = std::move(w.frag[yidx]);
    int other = 1 - yidx;

    Walk next;
    next.c = p;
    for (int i = 0; i < 2; ++i) {
      if (pc.bound[i] == kNoVertex) continue;
      if (c.bound[other] == pc.bound[i] && c.bound[other] != kNoVertex) {
        // This boundary survives unchanged (c is a path child on that side).
        next.frag[i] = std::move(w.frag[other]);
        continue;
      }
      // Route through y, then along the parent's other path child.
      std::vector<PathFragment> f = toward_y;
      PathFragment vy;
      vy.vertex = y;
      f.push_back(vy);
      // Which path child of p spans y..pc.bound[i]?
      int e = -1;
      if (pc.kind == kRake) {
        e = pc.pc[0];
      } else {
        // compress: pc.pc[i] spans bound[i]..y.
        e = pc.pc[i];
        if (e == w.c) e = -1;  // would re-enter ourselves; cannot happen
      }
      assert(e >= 0 && e != w.c);
      f.push_back(cluster_frag(e, y, cl(e)));
      next.frag[i] = std::move(f);
    }
    w = std::move(next);
  }

  /// Ordered fragments for the u..v path (empty if disconnected):
  /// climb both walks until their clusters meet, then join through the
  /// meet cluster's contracted vertex.
  std::vector<PathFragment> decompose_impl(vertex_id u, vertex_id v) const {
    // Special structure: each walk's current cluster always has the
    // origin strictly inside. The meet cluster A is the lowest common
    // cluster; each walk's previous cluster is a child of A with y on
    // its boundary (or the walk's origin *is* y).
    int pu = cl(leaf_of[u]).parent;
    int pv = cl(leaf_of[v]).parent;

    // Collect ancestor chains to find the meet cluster A.
    auto chain = [&](int c) {
      std::vector<int> ch;
      while (c >= 0) {
        ch.push_back(c);
        c = cl(c).parent;
      }
      return ch;
    };
    std::vector<int> cu = chain(pu), cv = chain(pv);
    if (cu.back() != cv.back()) return {};  // disconnected
    // Meet = first common cluster (chains share a suffix).
    std::unordered_set<int> on_u(cu.begin(), cu.end());
    int A = -1;
    for (int c : cv) {
      if (on_u.count(c)) {
        A = c;
        break;
      }
    }
    assert(A >= 0);
    const Cluster& ac = cl(A);
    vertex_id y = ac.cvertex;

    auto frags_toward_y = [&](vertex_id origin) -> std::vector<PathFragment> {
      if (origin == y) return {};
      Walk w = start_walk(origin);
      while (w.c != A) {
        // Stop when the parent is A: extract the y-side fragments.
        if (cl(w.c).parent == A) {
          const Cluster& c = cl(w.c);
          int yidx = c.bound[0] == y ? 0 : (c.bound[1] == y ? 1 : -1);
          if (yidx < 0) {
            std::fprintf(stderr,
                         "decompose: origin=%u A=%d kindA=%d y=%u child=%d "
                         "kind=%d bounds=(%d,%d)\n",
                         origin, A, static_cast<int>(cl(A).kind), y, w.c,
                         static_cast<int>(c.kind), static_cast<int>(c.bound[0]),
                         static_cast<int>(c.bound[1]));
          }
          assert(yidx >= 0 && "child of the meet cluster must touch y");
          return std::move(w.frag[yidx]);
        }
        step_walk(w);
      }
      // w.c == A can only happen when origin contracted at A, i.e.
      // origin == y, excluded above.
      assert(false);
      return {};
    };

    std::vector<PathFragment> out;
    PathFragment fu;
    fu.vertex = u;
    out.push_back(fu);
    if (u == v) return out;
    auto left = frags_toward_y(u);
    for (auto& f : left) out.push_back(f);
    if (y != u && y != v) {
      PathFragment fy;
      fy.vertex = y;
      out.push_back(fy);
    }
    auto right = frags_toward_y(v);
    for (auto it = right.rbegin(); it != right.rend(); ++it) {
      PathFragment f = *it;
      if (f.cluster >= 0) f.reversed = !f.reversed;
      out.push_back(f);
    }
    PathFragment fv;
    fv.vertex = v;
    out.push_back(fv);
    return out;
  }

  // ---- fragment descent helpers (interiors of binary clusters,
  //      oriented from the `near` boundary) ----

  /// The near-side / far-side path children of compress cluster e.
  void split_parts(int e, vertex_id near, int* e_near, int* e_far) const {
    const Cluster& c = cl(e);
    assert(c.kind == kCompress);
    int nidx = c.bound[0] == near ? 0 : 1;
    assert(c.bound[nidx] == near);
    *e_near = c.pc[nidx];
    *e_far = c.pc[1 - nidx];
  }

  void expand_into(int e, vertex_id near, std::vector<vertex_id>& out) const {
    const Cluster& c = cl(e);
    if (c.kind == kBaseEdge) return;
    int en, ef;
    split_parts(e, near, &en, &ef);
    expand_into(en, near, out);
    out.push_back(c.cvertex);
    expand_into(ef, c.cvertex, out);
  }

  /// k-th interior path vertex (0-based from near).
  vertex_id select_in(int e, vertex_id near, size_t k) const {
    const Cluster& c = cl(e);
    assert(c.kind == kCompress && k < c.path_len);
    int en, ef;
    split_parts(e, near, &en, &ef);
    size_t ln = cl(en).path_len;
    if (k < ln) return select_in(en, near, k);
    if (k == ln) return c.cvertex;
    return select_in(ef, c.cvertex, k - ln - 1);
  }

  /// Max interior vertex with weight < w; interior weights increase
  /// from near to far; precondition: path_vmin < w <= path_vmax.
  vertex_id pws_in(int e, vertex_id near, Rank w) const {
    const Cluster& c = cl(e);
    assert(c.kind == kCompress);
    int en, ef;
    split_parts(e, near, &en, &ef);
    if (vweight[c.cvertex] < w) {
      const Cluster& f = cl(ef);
      if (f.path_len > 0 && f.path_vmin < w) {
        if (f.path_vmax < w) return f.path_vmax_arg;
        return pws_in(ef, c.cvertex, w);
      }
      return c.cvertex;
    }
    const Cluster& a = cl(en);
    assert(a.path_len > 0 && a.path_vmin < w);
    if (a.path_vmax < w) return a.path_vmax_arg;
    return pws_in(en, near, w);
  }

  /// Near boundary vertex of a cluster fragment in query orientation.
  vertex_id frag_near(const PathFragment& f) const {
    const Cluster& c = cl(f.cluster);
    return f.reversed ? c.bound[1] : c.bound[0];
  }
};

// -----------------------------------------------------------------------
// Public API.
// -----------------------------------------------------------------------

RcTree::RcTree(size_t n) : impl_(std::make_unique<Impl>()) {
  if (n > 0) impl_->grow(n);
}
RcTree::~RcTree() = default;

size_t RcTree::capacity() const { return impl_->n; }
void RcTree::grow(size_t n) { impl_->grow(n); }

void RcTree::set_vertex_weight(vertex_id v, Rank w) {
  impl_->set_vertex_weight(v, w);
}
Rank RcTree::vertex_weight(vertex_id v) const { return impl_->vweight[v]; }

void RcTree::link(vertex_id u, vertex_id v, Rank w) { impl_->link(u, v, w); }
void RcTree::cut(vertex_id u, vertex_id v) { impl_->cut(u, v); }

bool RcTree::connected(vertex_id u, vertex_id v) {
  if (u == v) return true;
  return impl_->root_cluster(u) == impl_->root_cluster(v);
}

uint64_t RcTree::component_size(vertex_id u) {
  return impl_->cl(impl_->root_cluster(u)).vcount;
}

vertex_id RcTree::component_argmax(vertex_id u) {
  return impl_->cl(impl_->root_cluster(u)).vmax_arg;
}

std::vector<PathFragment> RcTree::path_decomposition(vertex_id u, vertex_id v) {
  return impl_->decompose_impl(u, v);
}

Rank RcTree::path_max_edge(vertex_id u, vertex_id v) {
  auto frags = impl_->decompose_impl(u, v);
  Rank best = kMinRank;
  for (const auto& f : frags) {
    if (f.cluster >= 0) best = std::max(best, impl_->cl(f.cluster).path_emax);
  }
  return best;
}

size_t RcTree::path_length(vertex_id u, vertex_id v) {
  auto frags = impl_->decompose_impl(u, v);
  size_t len = 0;
  for (const auto& f : frags) {
    len += f.cluster >= 0 ? impl_->cl(f.cluster).path_len : 1;
  }
  return len;
}

vertex_id RcTree::path_weight_search(vertex_id u, vertex_id v, Rank w) {
  auto frags = impl_->decompose_impl(u, v);
  vertex_id best = kNoVertex;
  for (const auto& f : frags) {
    if (f.cluster < 0) {
      if (impl_->vweight[f.vertex] < w) {
        best = f.vertex;
      } else {
        return best;  // weights increase toward v: nothing later qualifies
      }
      continue;
    }
    const auto& c = impl_->cl(f.cluster);
    if (c.path_len == 0) continue;
    if (c.path_vmax < w) {
      best = c.path_vmax_arg;
      continue;
    }
    if (c.path_vmin < w) return impl_->pws_in(f.cluster, impl_->frag_near(f), w);
    return best;
  }
  return best;
}

vertex_id RcTree::path_select(vertex_id u, vertex_id v, size_t k) {
  auto frags = impl_->decompose_impl(u, v);
  for (const auto& f : frags) {
    size_t s = f.cluster >= 0 ? impl_->cl(f.cluster).path_len : 1;
    if (k < s) {
      if (f.cluster < 0) return f.vertex;
      return impl_->select_in(f.cluster, impl_->frag_near(f), k);
    }
    k -= s;
  }
  assert(false && "path_select index out of range");
  return kNoVertex;
}

vertex_id RcTree::path_median(vertex_id u, vertex_id v) {
  size_t len = path_length(u, v);
  return path_select(u, v, len / 2);
}

std::vector<vertex_id> RcTree::path_vertices(vertex_id u, vertex_id v) {
  auto frags = impl_->decompose_impl(u, v);
  std::vector<vertex_id> out;
  for (const auto& f : frags) {
    if (f.cluster < 0) {
      out.push_back(f.vertex);
    } else {
      impl_->expand_into(f.cluster, impl_->frag_near(f), out);
    }
  }
  return out;
}

size_t RcTree::hierarchy_height() const {
  size_t best = 0;
  for (size_t v = 0; v < impl_->n; ++v) {
    size_t d = 0;
    int c = impl_->leaf_of[v];
    while (impl_->cl(c).parent >= 0) {
      c = impl_->cl(c).parent;
      ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

// -----------------------------------------------------------------------
// RcForest adapter (rooted dendrogram use, §3.2).
// -----------------------------------------------------------------------

RcForest::RcForest(size_t n) : tree_(n) {}

void RcForest::add_node(edge_id id, Rank rank) {
  if (id >= parent_.size()) parent_.resize(id + 1, kNoEdge);
  assert(parent_[id] == kNoEdge && "reused slot must be detached");
  tree_.grow(id + 1);
  tree_.set_vertex_weight(id, rank);
}

void RcForest::remove_node(edge_id id) {
  // Called while the unmerge changes are still pending: the node is
  // detached by the subsequent relinks, and slot reuse is guarded by
  // the isolation assert in add_node. Nothing to do here.
  (void)id;
}

void RcForest::link_to_parent(edge_id child, edge_id parent) {
  assert(parent_[child] == kNoEdge);
  parent_[child] = parent;
  tree_.link(child, parent);
}

void RcForest::cut_from_parent(edge_id child) {
  if (child >= parent_.size() || parent_[child] == kNoEdge) return;
  tree_.cut(child, parent_[child]);
  parent_[child] = kNoEdge;
}

edge_id RcForest::root_of(edge_id e) {
  // Ranks strictly increase along spines, so the component's max-rank
  // node is the dendrogram root.
  return tree_.component_argmax(e);
}

size_t RcForest::spine_length(edge_id e) {
  return tree_.path_length(e, root_of(e));
}

std::vector<edge_id> RcForest::spine(edge_id e) {
  return tree_.path_vertices(e, root_of(e));
}

edge_id RcForest::spine_search_below(edge_id e, Rank w) {
  edge_id r = root_of(e);
  // The PWS definition searches the whole root path including e itself.
  if (!(tree_.vertex_weight(e) < w)) return kNoEdge;
  vertex_id got = tree_.path_weight_search(e, r, w);
  return got == kNoVertex ? kNoEdge : got;
}

edge_id RcForest::spine_select_from_top(edge_id e, size_t k) {
  edge_id r = root_of(e);
  size_t len = tree_.path_length(e, r);
  assert(k < len);
  return tree_.path_select(e, r, len - 1 - k);
}

uint64_t RcForest::subtree_size(edge_id e) {
  // Component size after conceptually cutting the parent edge: cut,
  // measure, relink. O(log n) and exact; sequential use only.
  edge_id p = parent_[e];
  if (p == kNoEdge) return tree_.component_size(e);
  tree_.cut(e, p);
  uint64_t s = tree_.component_size(e);
  tree_.link(e, p);
  return s;
}

edge_id RcForest::parent_of(edge_id e) const { return parent_[e]; }

void RcTree::check_invariants() const {
  // Every live non-root cluster has a live parent; aggregates of roots
  // count each component's vertices exactly once.
  uint64_t total = 0;
  bool bad = false;
  for (size_t i = 0; i < impl_->arena.size(); ++i) {
    const auto& c = impl_->cl(static_cast<int>(i));
    if (c.kind == Impl::kDead) continue;
    if (c.parent >= 0) {
      if (impl_->cl(c.parent).kind == Impl::kDead) {
        std::fprintf(stderr, "dead parent: cl %zu kind=%d round=%u par=%d\n", i,
                     static_cast<int>(c.kind), c.round, c.parent);
        bad = true;
      } else {
        assert(impl_->cl(c.parent).round > c.round);
      }
    }
    if (c.kind == Impl::kRoot) total += c.vcount;
  }
  assert(!bad);
  if (total != impl_->n && std::getenv("DYNSLD_RC_DEBUG")) {
    for (const auto& [v, s] : impl_->rakes_onto) {
      if (s.empty()) continue;
      std::fprintf(stderr, "rakes_onto[%u] = {", v);
      for (int c : s) std::fprintf(stderr, "%d(kind %d) ", c, impl_->cl(c).kind);
      std::fprintf(stderr, "}\n");
    }
    std::fprintf(stderr, "RC dump: n=%zu root-total=%llu\n", impl_->n,
                 static_cast<unsigned long long>(total));
    for (size_t i = 0; i < impl_->arena.size(); ++i) {
      const auto& c = impl_->cl(static_cast<int>(i));
      if (c.kind == Impl::kDead) continue;
      std::fprintf(stderr,
                   "  cl %zu kind=%d round=%u par=%d cv=%d b=(%d,%d) pc=(%d,%d) "
                   "unary=%zu vcount=%llu\n",
                   i, static_cast<int>(c.kind), c.round, c.parent,
                   static_cast<int>(c.cvertex), static_cast<int>(c.bound[0]),
                   static_cast<int>(c.bound[1]), c.pc[0], c.pc[1],
                   c.unary_children.size(),
                   static_cast<unsigned long long>(c.vcount));
    }
  }
  assert(total == impl_->n);
  (void)total;
}

}  // namespace dynsld::rctree
