// Rake-compress trees (Acar et al. [3,4]; deterministic parallel
// variant after Anderson–Blelloch [7]) — the paper's dynamic-trees
// structure (§2.4, Table 1).
//
// RcTree maintains, for a dynamic unrooted forest on vertex slots
// [0, capacity), the hierarchy produced by rounds of tree contraction:
// each round contracts an independent set of degree-1 vertices (rake)
// and degree-2 vertices (compress), chosen deterministically by local
// id comparison. The contraction history forms a tree of clusters of
// height O(log n):
//   - leaf clusters: original vertices and edges,
//   - unary clusters (rake): a rooted subtree hanging off one boundary
//     vertex,
//   - binary clusters (compress): the path between two boundary
//     vertices plus everything hanging off it; its "cluster path" is
//     that path, and a parent binary cluster's path is the
//     concatenation of its two binary children's paths around the
//     contracted vertex.
// Updates (link/cut) re-run contraction on the affected vertices round
// by round (change propagation), leaving untouched regions intact.
//
// Supported queries (all O(log n) expected-ish, see DESIGN.md):
//   connected, component size / argmax-weight vertex,
//   path decomposition (the O(log n) fragments covering a u..v path),
//   path max edge/vertex, path weight search (Def 4.1),
//   path median (Def 4.2), ordered path expansion (spine extraction).
//
// RcForest adapts RcTree to the rooted-dendrogram use of §3.2: tree
// edges are parent links, the root of a component is its maximum-rank
// node (ranks increase upward along spines), and spine operations are
// path operations between a node and its component root.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace dynsld::rctree {

/// A fragment of a path decomposition, in order from the query source.
struct PathFragment {
  int cluster = -1;        // binary cluster index, or -1 for a single vertex
  vertex_id vertex = kNoVertex;  // set when this fragment is a single vertex
  bool reversed = false;   // cluster path runs opposite to query direction
};

class RcTree {
 public:
  explicit RcTree(size_t n = 0);
  ~RcTree();
  RcTree(const RcTree&) = delete;
  RcTree& operator=(const RcTree&) = delete;

  size_t capacity() const;
  void grow(size_t n);

  /// Vertex weights participate in path aggregates and component argmax.
  void set_vertex_weight(vertex_id v, Rank w);
  Rank vertex_weight(vertex_id v) const;

  /// Link u and v with an edge of weight w (must be disconnected).
  void link(vertex_id u, vertex_id v, Rank w = Rank{});

  /// Remove the edge between adjacent u and v.
  void cut(vertex_id u, vertex_id v);

  bool connected(vertex_id u, vertex_id v);

  /// Number of vertices in u's component.
  uint64_t component_size(vertex_id u);

  /// The vertex with maximum weight in u's component.
  vertex_id component_argmax(vertex_id u);

  /// The O(log n) ordered fragments whose concatenation is the u..v
  /// path (u and v inclusive as single-vertex fragments).
  std::vector<PathFragment> path_decomposition(vertex_id u, vertex_id v);

  /// Maximum edge weight on the u..v path.
  Rank path_max_edge(vertex_id u, vertex_id v);

  /// Number of vertices on the u..v path inclusive.
  size_t path_length(vertex_id u, vertex_id v);

  /// Path weight search (Def 4.1): on the u..v path, whose vertex
  /// weights increase from u to v, the maximum-weight vertex with
  /// weight < w (kNoVertex if none).
  vertex_id path_weight_search(vertex_id u, vertex_id v, Rank w);

  /// Path median (Def 4.2): the vertex at index floor(len/2) on the
  /// u..v path (0-based from u).
  vertex_id path_median(vertex_id u, vertex_id v);

  /// k-th vertex (0-based from u) on the u..v path.
  vertex_id path_select(vertex_id u, vertex_id v, size_t k);

  /// All vertices on the u..v path in order (O(path) work).
  std::vector<vertex_id> path_vertices(vertex_id u, vertex_id v);

  /// Height of the cluster hierarchy (O(log n)); exposed for tests.
  size_t hierarchy_height() const;

  /// Validate internal invariants (test-only, O(n log n)).
  void check_invariants() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Rooted adapter for the dendrogram spine index (§3.2).
class RcForest {
 public:
  explicit RcForest(size_t n = 0);

  void add_node(edge_id id, Rank rank);
  void remove_node(edge_id id);
  void link_to_parent(edge_id child, edge_id parent);
  void cut_from_parent(edge_id child);

  /// Root (max-rank node) of the component of e.
  edge_id root_of(edge_id e);

  /// Number of nodes on the root path of e, inclusive.
  size_t spine_length(edge_id e);

  /// The spine of e, bottom (e) to root, as ids. O(h) work.
  std::vector<edge_id> spine(edge_id e);

  /// PWS on the root path of e: max-rank node with rank < w.
  edge_id spine_search_below(edge_id e, Rank w);

  /// k-th node on the root path counted from the root (k=0 -> root).
  edge_id spine_select_from_top(edge_id e, size_t k);

  /// Size of the subtree of e in the rooted dendrogram.
  uint64_t subtree_size(edge_id e);

  RcTree& tree() { return tree_; }

 private:
  edge_id parent_of(edge_id e) const;

  RcTree tree_;
  std::vector<edge_id> parent_;  // mirror of the dendrogram parent array
};

}  // namespace dynsld::rctree
