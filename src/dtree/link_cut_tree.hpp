// Link-cut trees (Sleator–Tarjan) over splay trees, augmented with:
//   - path aggregates: max/min Rank and node count on preferred paths
//     (=> path-max queries for thresholds and MSF cycle queries),
//   - order statistics on root paths (=> spine select / path median),
//   - monotone weight search on root paths (=> the paper's path weight
//     search query, Def 4.1, for spines whose ranks increase upward),
//   - virtual-subtree sizes (=> O(log n) cluster-size queries, §6.1).
//
// Two usage profiles:
//   * unrooted forest (connectivity / path max): link, cut, connected,
//     path_max — these use evert internally.
//   * rooted tree (the dendrogram spine index): link_root,
//     cut_from_parent, spine_* operations, subtree_size — these must
//     never be mixed with evert on the same instance, since rooted
//     semantics depend on a stable orientation.
//
// All operations are O(log n) amortized. The RC tree (src/rctree)
// provides the paper's worst-case/parallel counterpart; the two engines
// are cross-checked in tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.hpp"

namespace dynsld {

class LinkCutTree {
 public:
  static constexpr int kNull = -1;
  static constexpr Rank kMinRank{-std::numeric_limits<double>::infinity(), 0};
  static constexpr Rank kMaxRank{std::numeric_limits<double>::infinity(), kNoEdge};

  LinkCutTree() = default;
  explicit LinkCutTree(size_t n) { grow(n); }

  size_t size() const { return nodes_.size(); }

  /// Ensure nodes [0, n) exist; new nodes are isolated with key kMinRank.
  void grow(size_t n) {
    if (n > nodes_.size()) nodes_.resize(n);
  }

  /// Set the key (weight) of x. Splays x so aggregates stay correct.
  void set_key(int x, Rank k) {
    access(x);
    nodes_[x].key = k;
    pull(x);
  }

  Rank key(int x) const { return nodes_[x].key; }

  bool connected(int u, int v) {
    if (u == v) return true;
    return find_root(u) == find_root(v);
  }

  int find_root(int x) {
    access(x);
    int t = x;
    push_down(t);
    while (nodes_[t].ch[0] != kNull) {
      t = nodes_[t].ch[0];
      push_down(t);
    }
    splay(t);
    return t;
  }

  /// Make x the root of its tree (unrooted profile only).
  void evert(int x) {
    access(x);
    nodes_[x].flip ^= true;
    push_down(x);
  }

  /// Join the trees of u and v by the edge (u, v) (unrooted profile).
  void link(int u, int v) {
    evert(u);
    assert(find_root(v) != u && "link would create a cycle");
    access(u);  // u is a splay root and tree root
    access(v);
    nodes_[u].par = v;
    nodes_[v].vsub += nodes_[u].asub;
    pull(v);
  }

  /// Remove the edge (u, v); u and v must be adjacent (unrooted profile).
  void cut(int u, int v) {
    evert(u);
    access(v);
    // Path u..v is the splay tree of v; adjacency means it is exactly
    // the two nodes, with u as v's left child and a leaf.
    assert(nodes_[v].ch[0] == u && nodes_[u].ch[0] == kNull &&
           nodes_[u].ch[1] == kNull && "cut of a non-existent edge");
    nodes_[v].ch[0] = kNull;
    nodes_[u].par = kNull;
    pull(v);
  }

  /// Max rank over nodes on the path u..v inclusive (unrooted profile).
  Rank path_max(int u, int v) {
    evert(u);
    access(v);
    assert(find_root(v) == u || u == v);
    access(v);
    return nodes_[v].mx;
  }

  // ------------------------------------------------------------------
  // Rooted profile (dendrogram spine index).
  // ------------------------------------------------------------------

  /// Attach c (a tree root) below p.
  void link_root(int c, int p) {
    access(c);
    assert(nodes_[c].ch[0] == kNull && "link_root: c must be a tree root");
    access(p);
    assert(c != p);
    nodes_[c].par = p;
    nodes_[p].vsub += nodes_[c].asub;
    pull(p);
  }

  /// Detach c from its parent (no-op if c is already a root).
  void cut_from_parent(int c) {
    access(c);
    int l = nodes_[c].ch[0];
    if (l == kNull) return;
    nodes_[c].ch[0] = kNull;
    nodes_[l].par = kNull;
    pull(c);
  }

  /// Number of nodes on the path from x to its tree root, inclusive.
  int spine_length(int x) {
    access(x);
    return static_cast<int>(nodes_[x].sz);
  }

  /// k-th node (0-based) on the root path of x counted from the root
  /// (k=0 is the tree root, k=len-1 is x).
  int spine_select_from_top(int x, int k) {
    access(x);
    int t = x;
    while (true) {
      push_down(t);
      int lsz = nodes_[t].ch[0] == kNull
                    ? 0
                    : static_cast<int>(nodes_[nodes_[t].ch[0]].sz);
      if (k < lsz) {
        t = nodes_[t].ch[0];
      } else if (k == lsz) {
        splay(t);
        return t;
      } else {
        k -= lsz + 1;
        t = nodes_[t].ch[1];
      }
    }
  }

  /// Path weight search (Def 4.1) on the root path of x, whose keys
  /// increase from x to the root: the maximum-key node with key < w,
  /// or kNull if every node on the path has key >= w.
  int spine_search_below(int x, Rank w) {
    access(x);
    // In-order = root..x, keys strictly decreasing; we want the first
    // in-order node with key < w.
    int t = x, best = kNull;
    while (t != kNull) {
      push_down(t);
      if (nodes_[t].key < w) {
        best = t;
        t = nodes_[t].ch[0];
      } else {
        t = nodes_[t].ch[1];
      }
    }
    if (best != kNull) splay(best);
    return best;
  }

  /// Dual of spine_search_below: minimum-key node with key > w.
  int spine_search_above(int x, Rank w) {
    access(x);
    int t = x, best = kNull;
    while (t != kNull) {
      push_down(t);
      if (w < nodes_[t].key) {
        best = t;
        t = nodes_[t].ch[1];
      } else {
        t = nodes_[t].ch[0];
      }
    }
    if (best != kNull) splay(best);
    return best;
  }

  /// Size of the subtree rooted at x (rooted profile; includes x).
  uint64_t subtree_size(int x) {
    access(x);
    return 1 + nodes_[x].vsub;
  }

 private:
  struct Nd {
    int ch[2] = {kNull, kNull};
    int par = kNull;  // splay parent, or path-parent when splay root
    bool flip = false;
    Rank key = kMinRank;
    Rank mx = kMinRank;   // max key over the splay subtree (path fragment)
    uint32_t sz = 1;      // splay subtree size (path fragment length)
    uint64_t vsub = 0;    // total size of virtual (non-preferred) subtrees
    uint64_t asub = 1;    // 1 + vsub + asub(splay children): full subtree
  };

  bool is_splay_root(int x) const {
    int p = nodes_[x].par;
    return p == kNull || (nodes_[p].ch[0] != x && nodes_[p].ch[1] != x);
  }

  void push_down(int x) {
    Nd& nd = nodes_[x];
    if (!nd.flip) return;
    std::swap(nd.ch[0], nd.ch[1]);
    for (int c : nd.ch) {
      if (c != kNull) nodes_[c].flip ^= true;
    }
    nd.flip = false;
  }

  void pull(int x) {
    Nd& nd = nodes_[x];
    nd.sz = 1;
    nd.mx = nd.key;
    nd.asub = 1 + nd.vsub;
    for (int c : nd.ch) {
      if (c == kNull) continue;
      const Nd& cn = nodes_[c];
      nd.sz += cn.sz;
      if (nd.mx < cn.mx) nd.mx = cn.mx;
      nd.asub += cn.asub;
    }
  }

  void rotate(int x) {
    int y = nodes_[x].par;
    int z = nodes_[y].par;
    int dir = nodes_[y].ch[1] == x ? 1 : 0;
    bool y_root = is_splay_root(y);
    int b = nodes_[x].ch[1 - dir];

    nodes_[y].ch[dir] = b;
    if (b != kNull) nodes_[b].par = y;
    nodes_[x].ch[1 - dir] = y;
    nodes_[y].par = x;
    nodes_[x].par = z;
    if (!y_root) {
      if (nodes_[z].ch[0] == y) {
        nodes_[z].ch[0] = x;
      } else {
        nodes_[z].ch[1] = x;
      }
    }
    pull(y);
    pull(x);
  }

  void splay(int x) {
    // Push pending flips from the splay root down to x before rotating.
    scratch_.clear();
    int t = x;
    scratch_.push_back(t);
    while (!is_splay_root(t)) {
      t = nodes_[t].par;
      scratch_.push_back(t);
    }
    for (size_t i = scratch_.size(); i-- > 0;) push_down(scratch_[i]);

    while (!is_splay_root(x)) {
      int y = nodes_[x].par;
      if (!is_splay_root(y)) {
        int z = nodes_[y].par;
        bool zigzig = (nodes_[z].ch[1] == y) == (nodes_[y].ch[1] == x);
        rotate(zigzig ? y : x);
      }
      rotate(x);
    }
  }

  /// Make the path root..x preferred and splay x; returns the last
  /// path-parent encountered (useful as an LCA primitive).
  int access(int x) {
    splay(x);
    if (nodes_[x].ch[1] != kNull) {
      nodes_[x].vsub += nodes_[nodes_[x].ch[1]].asub;
      nodes_[x].ch[1] = kNull;
      pull(x);
    }
    int last = x;
    while (nodes_[x].par != kNull) {
      int y = nodes_[x].par;
      splay(y);
      if (nodes_[y].ch[1] != kNull) {
        nodes_[y].vsub += nodes_[nodes_[y].ch[1]].asub;
      }
      nodes_[y].vsub -= nodes_[x].asub;
      nodes_[y].ch[1] = x;
      pull(y);
      splay(x);
      last = y;
    }
    return last;
  }

  std::vector<Nd> nodes_;
  std::vector<int> scratch_;  // reused stack for splay push-downs
};

}  // namespace dynsld
