// Binary fork-join entry points: par_do (the model's fork/join pair) and
// parallel_for (balanced recursive decomposition over an index range).
// All of the paper's parallel algorithms are expressed with these two
// calls plus the sequence primitives in primitives.hpp.
#pragma once

#include <cstddef>
#include <utility>

#include "parallel/scheduler.hpp"

namespace dynsld::par {

/// Number of workers in the global pool.
inline int num_workers() { return Scheduler::instance().num_workers(); }

/// Resize the global pool (call only between parallel computations).
inline void set_num_workers(int p) { Scheduler::instance().set_num_workers(p); }

namespace internal {

template <typename F1, typename F2>
void fork_join(Scheduler& sched, F1&& f1, F2&& f2) {
  using F2D = std::remove_reference_t<F2>;
  Job job;
  job.arg = static_cast<void*>(std::addressof(f2));
  job.run = [](void* arg) { (*static_cast<F2D*>(arg))(); };
  sched.push(&job);
  f1();
  if (sched.pop_if_local(&job)) {
    f2();
  } else {
    sched.wait(&job);
  }
}

}  // namespace internal

/// Run f1 and f2 as a binary fork: f2 is made stealable while the caller
/// runs f1. Equivalent to `f1(); f2();` on a 1-worker pool. Safe to call
/// from any thread: a foreign (non-pool) thread claims the external-entry
/// slot for its outermost fork-join, and when another foreign thread
/// already holds it the computation runs sequentially instead.
template <typename F1, typename F2>
void par_do(F1&& f1, F2&& f2) {
  Scheduler& sched = Scheduler::instance();
  if (!sched.should_fork()) {
    f1();
    f2();
    return;
  }
  if (!sched.in_pool()) {
    if (!sched.try_enter_external()) {
      f1();
      f2();
      return;
    }
    // Scope guard: an exception out of the fork must still release the
    // entry slot, or every later foreign entry degrades to sequential.
    struct ExitGuard {
      Scheduler& s;
      ~ExitGuard() { s.exit_external(); }
    } guard{sched};
    internal::fork_join(sched, f1, f2);
    return;
  }
  internal::fork_join(sched, f1, f2);
}

namespace internal {

template <typename F>
void parallel_for_rec(size_t lo, size_t hi, size_t grain, const F& f) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  par_do([&] { parallel_for_rec(lo, mid, grain, f); },
         [&] { parallel_for_rec(mid, hi, grain, f); });
}

}  // namespace internal

/// Apply f(i) for i in [lo, hi). `grain` bounds the size of a leaf task;
/// 0 picks a default that yields ~8 tasks per worker.
template <typename F>
void parallel_for(size_t lo, size_t hi, const F& f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (grain == 0) {
    size_t per = n / (8 * static_cast<size_t>(num_workers())) + 1;
    grain = per < 64 ? (n > 4096 ? 64 : per) : per;
    if (grain == 0) grain = 1;
  }
  internal::parallel_for_rec(lo, hi, grain, f);
}

}  // namespace dynsld::par
