// Work-proxy instrumentation. The paper's claims are about *work*
// (pointer changes, queries, spine nodes touched), which is machine
// independent; wall-clock on the build machine is not. Benchmarks report
// both. Counters are relaxed atomics and always on; the cost is one
// uncontended fetch_add per counted event, negligible next to the tree
// operations being counted.
#pragma once

#include <atomic>
#include <cstdint>

namespace dynsld::stats {

struct Counters {
  std::atomic<uint64_t> connectivity_queries{0};  // side-of-cut tests
  std::atomic<uint64_t> pws_queries{0};           // path weight searches
  std::atomic<uint64_t> median_queries{0};        // path median queries
  std::atomic<uint64_t> pointer_writes{0};        // dendrogram parent changes
  std::atomic<uint64_t> spine_nodes_touched{0};   // spine traversal length
  std::atomic<uint64_t> index_links{0};           // spine-index link ops
  std::atomic<uint64_t> index_cuts{0};            // spine-index cut ops

  void reset() {
    connectivity_queries = 0;
    pws_queries = 0;
    median_queries = 0;
    pointer_writes = 0;
    spine_nodes_touched = 0;
    index_links = 0;
    index_cuts = 0;
  }
};

inline Counters& counters() {
  static Counters c;
  return c;
}

inline void bump(std::atomic<uint64_t>& c, uint64_t k = 1) {
  c.fetch_add(k, std::memory_order_relaxed);
}

}  // namespace dynsld::stats
