// Work-stealing scheduler implementing the binary fork-join model
// (Blelloch et al., "Optimal Parallel Algorithms in the Binary-Forking
// Model", SPAA 2020) that the paper analyzes all algorithms in.
//
// Design: P workers, each with a LIFO deque of jobs. fork/join is
// expressed through par_do(f1, f2): the caller pushes a job for f2 onto
// its own deque, runs f1 inline, and then either pops f2 back (not
// stolen: run inline) or steals other work while waiting for the thief
// to finish f2. Jobs live on the forker's stack, so no allocation
// happens on the fork path.
//
// The runtime is deliberately simple (spinlock deques, random victim
// selection) in exchange for being easy to verify; on the target
// machines the algorithms are memory-bound so deque overhead is not the
// bottleneck. The calling (external) thread participates as worker 0
// while it waits, so a 1-thread pool degenerates to plain sequential
// execution with no job traffic at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

namespace dynsld::par {

/// A unit of work forked by par_do. Lives on the forking thread's stack;
/// the forker never returns before `done` is set, so the storage is safe.
struct Job {
  void (*run)(void*) = nullptr;
  void* arg = nullptr;
  std::atomic<bool> taken{false};
  std::atomic<bool> done{false};
};

/// Singleton work-stealing pool. Thread-safe for use by its own workers;
/// external entry is supported from one thread at a time (the usual
/// fork-join discipline: a single computation entered from `main`).
class Scheduler {
 public:
  /// Global instance; created on first use with num_workers() threads
  /// taken from DYNSLD_NUM_THREADS or std::thread::hardware_concurrency.
  static Scheduler& instance();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  int num_workers() const { return num_workers_; }

  /// Resize the pool. Must be called while no parallel work is running.
  void set_num_workers(int p);

  /// True when the current thread should fork (pool has >1 worker).
  bool should_fork() const { return num_workers_ > 1; }

  /// Push a job onto the current thread's deque (registering the thread
  /// as worker 0 if it is the external entry thread).
  void push(Job* job);

  /// Try to pop `job` back off the local deque. Returns true when the
  /// job was not stolen and the caller should run it inline.
  bool pop_if_local(Job* job);

  /// Steal-while-waiting until `job` completes.
  void wait(Job* job);

 private:
  explicit Scheduler(int num_workers);

  struct WorkerQueue;

  int register_external_thread();
  int current_worker() const;
  bool try_steal_and_run(int self);
  void worker_loop(int id);
  void start_threads();
  void stop_threads();

  int num_workers_ = 1;
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
};

}  // namespace dynsld::par
