// Work-stealing scheduler implementing the binary fork-join model
// (Blelloch et al., "Optimal Parallel Algorithms in the Binary-Forking
// Model", SPAA 2020) that the paper analyzes all algorithms in.
//
// Design: P workers, each with a LIFO deque of jobs. fork/join is
// expressed through par_do(f1, f2): the caller pushes a job for f2 onto
// its own deque, runs f1 inline, and then either pops f2 back (not
// stolen: run inline) or steals other work while waiting for the thief
// to finish f2. Jobs live on the forker's stack, so no allocation
// happens on the fork path.
//
// The runtime is deliberately simple (spinlock deques, random victim
// selection) in exchange for being easy to verify; on the target
// machines the algorithms are memory-bound so deque overhead is not the
// bottleneck. The calling (external) thread participates as worker 0
// while it waits, so a 1-thread pool degenerates to plain sequential
// execution with no job traffic at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

namespace dynsld::par {

/// A unit of work forked by par_do. Lives on the forking thread's stack;
/// the forker never returns before `done` is set, so the storage is safe.
struct Job {
  void (*run)(void*) = nullptr;
  void* arg = nullptr;
  std::atomic<bool> taken{false};
  std::atomic<bool> done{false};
};

/// Singleton work-stealing pool. Thread-safe for use by its own workers;
/// external entry is serialized by a claim gate: one foreign thread at a
/// time adopts worker slot 0 for the duration of its outermost fork-join
/// computation, and a concurrent foreign entry simply runs its
/// computation sequentially instead of forking (par_do handles this, so
/// callers — e.g. the engine's query plane fanning out a batch while the
/// writer flushes — never need to coordinate). This is what lets the
/// engine's publish notifications compose with concurrent reader
/// batches: a subscription refresh triggered on the flushing thread and
/// a ClusterView::run fan-out on a reader thread can both call par_do
/// at once; whichever loses the gate degrades to sequential execution
/// of the same computation, never to blocking or deadlock.
class Scheduler {
 public:
  /// Global instance; created on first use with num_workers() threads
  /// taken from DYNSLD_NUM_THREADS or std::thread::hardware_concurrency.
  static Scheduler& instance();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  int num_workers() const { return num_workers_; }

  /// Resize the pool. Must be called while no parallel work is running.
  void set_num_workers(int p);

  /// True when the current thread should fork (pool has >1 worker).
  bool should_fork() const { return num_workers_ > 1; }

  /// Is the current thread already inside the pool (a worker thread, or
  /// a foreign thread that has claimed the external-entry slot)?
  bool in_pool() const { return current_worker() >= 0; }

  /// Claim the external-entry slot (worker slot 0) for this foreign
  /// thread. Returns false when another foreign thread holds it — the
  /// caller must then run its computation sequentially.
  bool try_enter_external();

  /// Release the slot claimed by try_enter_external(); must be called
  /// by the same thread after its outermost fork-join returns.
  void exit_external();

  /// Push a job onto the current thread's deque (registering the thread
  /// as worker 0 if it is the external entry thread).
  void push(Job* job);

  /// Try to pop `job` back off the local deque. Returns true when the
  /// job was not stolen and the caller should run it inline.
  bool pop_if_local(Job* job);

  /// Steal-while-waiting until `job` completes.
  void wait(Job* job);

 private:
  explicit Scheduler(int num_workers);

  struct WorkerQueue;

  int register_external_thread();
  int current_worker() const;
  bool try_steal_and_run(int self);
  void worker_loop(int id);
  void start_threads();
  void stop_threads();

  int num_workers_ = 1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> external_busy_{false};
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
};

}  // namespace dynsld::par
