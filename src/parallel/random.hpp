// Deterministic pseudo-randomness. Tests and workload generators need
// reproducible streams; parallel code needs index-addressable hashing
// (no shared RNG state). SplitMix64 provides both.
#pragma once

#include <cstdint>

namespace dynsld::par {

/// SplitMix64 finalizer: high-quality 64-bit mix, usable as a stateless
/// hash for parallel random access (hash64(seed ^ i)).
inline uint64_t hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Small deterministic RNG for sequential generators.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return hash64(state_);
  }

  /// Uniform in [0, bound).
  uint64_t next_bounded(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace dynsld::par
