#include "parallel/scheduler.hpp"

#include <cassert>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>

namespace dynsld::par {
namespace {

// Identity of the current thread inside the pool; -1 for foreign threads.
thread_local int tls_worker_id = -1;

int default_num_workers() {
  if (const char* env = std::getenv("DYNSLD_NUM_THREADS")) {
    int p = std::atoi(env);
    if (p >= 1) return p;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

struct Scheduler::WorkerQueue {
  std::mutex mu;
  std::deque<Job*> jobs;

  void push_bottom(Job* j) {
    std::lock_guard<std::mutex> lock(mu);
    jobs.push_back(j);
  }

  // Owner-side pop: succeeds only when `j` is still at the bottom, which
  // with LIFO discipline means it was not stolen.
  bool pop_bottom_if(Job* j) {
    std::lock_guard<std::mutex> lock(mu);
    if (!jobs.empty() && jobs.back() == j) {
      jobs.pop_back();
      return true;
    }
    return false;
  }

  Job* steal_top() {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return nullptr;
    Job* j = jobs.front();
    jobs.pop_front();
    return j;
  }
};

Scheduler& Scheduler::instance() {
  static Scheduler sched(default_num_workers());
  return sched;
}

Scheduler::Scheduler(int num_workers) { set_num_workers(num_workers); }

Scheduler::~Scheduler() { stop_threads(); }

void Scheduler::set_num_workers(int p) {
  if (p < 1) p = 1;
  stop_threads();
  num_workers_ = p;
  queues_.clear();
  queues_.reserve(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  start_threads();
}

void Scheduler::start_threads() {
  stop_.store(false, std::memory_order_relaxed);
  // Worker slot 0 belongs to the external entry thread; spawn the rest.
  for (int i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Scheduler::stop_threads() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) t.join();
  threads_.clear();
}

int Scheduler::register_external_thread() {
  // Direct push() from an unclaimed foreign thread (no par_do gate):
  // adopt worker slot 0 as before. par_do-driven entry goes through
  // try_enter_external() instead, which serializes foreign threads.
  tls_worker_id = 0;
  return 0;
}

bool Scheduler::try_enter_external() {
  bool expected = false;
  if (!external_busy_.compare_exchange_strong(expected, true,
                                              std::memory_order_acquire)) {
    return false;
  }
  tls_worker_id = 0;
  return true;
}

void Scheduler::exit_external() {
  tls_worker_id = -1;
  external_busy_.store(false, std::memory_order_release);
}

int Scheduler::current_worker() const { return tls_worker_id; }

void Scheduler::push(Job* job) {
  int id = current_worker();
  // Foreign threads must come through par_do's try_enter_external()
  // gate; a direct push from an unclaimed thread would share deque 0
  // with a legitimate claimant. The registration fallback stays as a
  // release-mode safety net for legacy callers.
  assert(id >= 0 && "foreign threads enter the pool via par_do");
  if (id < 0) id = register_external_thread();
  queues_[static_cast<size_t>(id)]->push_bottom(job);
}

bool Scheduler::pop_if_local(Job* job) {
  int id = current_worker();
  return id >= 0 && queues_[static_cast<size_t>(id)]->pop_bottom_if(job);
}

bool Scheduler::try_steal_and_run(int self) {
  // Check the local deque first (continuations we forked while running a
  // stolen task), then sweep the other workers.
  static thread_local std::minstd_rand rng(
      std::random_device{}() ^ static_cast<unsigned>(self * 0x9e3779b9u));
  const int p = num_workers_;
  int start = static_cast<int>(rng() % static_cast<unsigned>(p));
  for (int k = 0; k < p; ++k) {
    int victim = (start + k) % p;
    Job* j = queues_[static_cast<size_t>(victim)]->steal_top();
    if (j != nullptr) {
      j->taken.store(true, std::memory_order_relaxed);
      j->run(j->arg);
      j->done.store(true, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void Scheduler::wait(Job* job) {
  int self = current_worker();
  int spins = 0;
  while (!job->done.load(std::memory_order_acquire)) {
    if (try_steal_and_run(self)) {
      spins = 0;
      continue;
    }
    // The job is running on another worker and nothing is stealable:
    // back off politely rather than burning the core the thief needs.
    if (++spins > 64) {
      std::this_thread::yield();
    }
  }
}

void Scheduler::worker_loop(int id) {
  tls_worker_id = id;
  int idle = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (try_steal_and_run(id)) {
      idle = 0;
      continue;
    }
    if (++idle > 64) {
      std::this_thread::yield();
      if (idle > 4096) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
}

}  // namespace dynsld::par
