// Parallel sequence primitives in the binary fork-join model:
//   reduce        O(n) work, O(log n) depth
//   scan          O(n) work, O(log n) depth (exclusive, blocked two-pass)
//   filter / pack O(n) work, O(log n) depth, order-preserving (§2.3)
//   merge         O(n) work, O(log n) depth (dual binary search, §2.3)
//   merge_sort    O(n log n) work, O(log^2 n) depth, stable
// These mirror the primitives the paper assumes (JáJá / Cole); the SLD
// update algorithms consume filter (deletion unmerge) and merge
// (insertion spine merge) directly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <span>
#include <vector>

#include "parallel/par.hpp"

namespace dynsld::par {

inline constexpr size_t kSeqThreshold = 2048;

/// Build a vector of n elements where element i is f(i).
template <typename F>
auto tabulate(size_t n, F&& f) {
  using T = std::decay_t<decltype(f(size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(0, n, [&](size_t i) { out[i] = f(i); });
  return out;
}

/// Sum-like reduction of in under an associative op with identity.
template <typename T, typename Op = std::plus<T>>
T reduce(std::span<const T> in, T identity = T{}, Op op = Op{}) {
  if (in.size() <= kSeqThreshold) {
    T acc = identity;
    for (const T& x : in) acc = op(acc, x);
    return acc;
  }
  size_t mid = in.size() / 2;
  T left{}, right{};
  par_do([&] { left = reduce(in.subspan(0, mid), identity, op); },
         [&] { right = reduce(in.subspan(mid), identity, op); });
  return op(left, right);
}

/// Exclusive prefix sums of in into out (same buffer allowed); returns
/// the total. Blocked two-pass algorithm.
template <typename T, typename Op = std::plus<T>>
T scan_exclusive(std::span<const T> in, std::span<T> out, T identity = T{},
                 Op op = Op{}) {
  const size_t n = in.size();
  if (n == 0) return identity;
  if (n <= kSeqThreshold) {
    T acc = identity;
    for (size_t i = 0; i < n; ++i) {
      T next = op(acc, in[i]);
      out[i] = acc;
      acc = next;
    }
    return acc;
  }
  const size_t nblocks = std::min<size_t>(8 * static_cast<size_t>(num_workers()),
                                          (n + kSeqThreshold - 1) / kSeqThreshold);
  const size_t bsize = (n + nblocks - 1) / nblocks;
  std::vector<T> sums(nblocks, identity);
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        T acc = identity;
        for (size_t i = lo; i < hi; ++i) acc = op(acc, in[i]);
        sums[b] = acc;
      },
      1);
  T total = identity;
  for (size_t b = 0; b < nblocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        T acc = sums[b];
        for (size_t i = lo; i < hi; ++i) {
          T next = op(acc, in[i]);
          out[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

/// Order-preserving filter: all x in `in` with pred(x), in input order.
template <typename T, typename Pred>
std::vector<T> filter(std::span<const T> in, Pred pred) {
  const size_t n = in.size();
  if (n <= kSeqThreshold) {
    std::vector<T> out;
    out.reserve(n);
    for (const T& x : in)
      if (pred(x)) out.push_back(x);
    return out;
  }
  std::vector<size_t> flags(n);
  parallel_for(0, n, [&](size_t i) { flags[i] = pred(in[i]) ? 1 : 0; });
  std::vector<size_t> offsets(n);
  size_t total = scan_exclusive<size_t>(flags, offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flags[i]) out[offsets[i]] = in[i];
  });
  return out;
}

/// pack: keep in[i] where keep[i] is nonzero, preserving order.
template <typename T>
std::vector<T> pack(std::span<const T> in, std::span<const char> keep) {
  const size_t n = in.size();
  std::vector<size_t> flags(n);
  parallel_for(0, n, [&](size_t i) { flags[i] = keep[i] ? 1 : 0; });
  std::vector<size_t> offsets(n);
  size_t total = scan_exclusive<size_t>(flags, offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flags[i]) out[offsets[i]] = in[i];
  });
  return out;
}

namespace internal {

template <typename T, typename Comp>
void merge_rec(std::span<const T> a, std::span<const T> b, std::span<T> out,
               Comp comp) {
  if (a.size() + b.size() <= kSeqThreshold) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), comp);
    return;
  }
  if (a.size() < b.size()) {
    // Keep `a` the larger side so the split halves it; swapping operands
    // is safe for stability here because std::merge's tie rule (prefer
    // a's element) is preserved by using upper_bound vs lower_bound.
    size_t mb = b.size() / 2;
    // Elements of a strictly less-or-equal b[mb] go left: upper_bound.
    size_t ma = static_cast<size_t>(
        std::upper_bound(a.begin(), a.end(), b[mb], comp) - a.begin());
    par_do(
        [&] { merge_rec(a.subspan(0, ma), b.subspan(0, mb), out.subspan(0, ma + mb), comp); },
        [&] { merge_rec(a.subspan(ma), b.subspan(mb), out.subspan(ma + mb), comp); });
    return;
  }
  size_t ma = a.size() / 2;
  size_t mb = static_cast<size_t>(
      std::lower_bound(b.begin(), b.end(), a[ma], comp) - b.begin());
  par_do(
      [&] { merge_rec(a.subspan(0, ma), b.subspan(0, mb), out.subspan(0, ma + mb), comp); },
      [&] { merge_rec(a.subspan(ma), b.subspan(mb), out.subspan(ma + mb), comp); });
}

}  // namespace internal

/// Merge two sorted sequences into one sorted output sequence.
/// out.size() must equal a.size() + b.size().
template <typename T, typename Comp = std::less<T>>
void merge(std::span<const T> a, std::span<const T> b, std::span<T> out,
           Comp comp = Comp{}) {
  internal::merge_rec(a, b, out, comp);
}

template <typename T, typename Comp = std::less<T>>
std::vector<T> merge(std::span<const T> a, std::span<const T> b,
                     Comp comp = Comp{}) {
  std::vector<T> out(a.size() + b.size());
  merge<T>(a, b, std::span<T>(out), comp);
  return out;
}

namespace internal {

template <typename T, typename Comp>
void merge_sort_rec(std::span<T> data, std::span<T> buf, Comp comp,
                    bool to_buf) {
  const size_t n = data.size();
  if (n <= kSeqThreshold) {
    std::stable_sort(data.begin(), data.end(), comp);
    if (to_buf) std::copy(data.begin(), data.end(), buf.begin());
    return;
  }
  size_t mid = n / 2;
  par_do([&] { merge_sort_rec(data.subspan(0, mid), buf.subspan(0, mid), comp, !to_buf); },
         [&] { merge_sort_rec(data.subspan(mid), buf.subspan(mid), comp, !to_buf); });
  std::span<T> src = to_buf ? data : buf;
  std::span<T> dst = to_buf ? buf : data;
  merge_rec(std::span<const T>(src.subspan(0, mid)),
            std::span<const T>(src.subspan(mid)), dst, comp);
}

}  // namespace internal

/// Stable parallel merge sort, in place.
template <typename T, typename Comp = std::less<T>>
void sort(std::span<T> data, Comp comp = Comp{}) {
  if (data.size() <= kSeqThreshold) {
    std::stable_sort(data.begin(), data.end(), comp);
    return;
  }
  std::vector<T> buf(data.size());
  internal::merge_sort_rec(data, std::span<T>(buf), comp, /*to_buf=*/false);
}

template <typename T, typename Comp = std::less<T>>
void sort(std::vector<T>& data, Comp comp = Comp{}) {
  sort(std::span<T>(data), comp);
}

}  // namespace dynsld::par
