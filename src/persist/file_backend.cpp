#include "persist/file_backend.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace dynsld::persist {

namespace fs = std::filesystem;

namespace {

/// fsync a stdio stream: flush the application buffer, then push the
/// OS cache to stable storage. On platforms without fsync the flush is
/// the best available.
bool sync_stream(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifndef _WIN32
  return ::fsync(::fileno(f)) == 0;
#else
  return true;
#endif
}

class LocalFile final : public FileBackend::File {
 public:
  explicit LocalFile(std::FILE* f, uint64_t size) : f_(f), size_(size) {}
  ~LocalFile() override {
    if (f_) std::fclose(f_);
  }

  bool append(const void* data, size_t len) override {
    if (!f_ || std::fwrite(data, 1, len, f_) != len) return false;
    size_ += len;
    return true;
  }

  bool sync() override { return f_ && sync_stream(f_); }

  uint64_t size() const override { return size_; }

 private:
  std::FILE* f_;
  uint64_t size_;
};

}  // namespace

bool LocalFileBackend::mkdirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  return fs::is_directory(dir, ec);
}

std::vector<std::string> LocalFileBackend::list(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    if (ent.is_regular_file(ec)) names.push_back(ent.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<FileBackend::File> LocalFileBackend::open_append(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) return nullptr;
  std::error_code ec;
  uint64_t size = fs::exists(path, ec) ? fs::file_size(path, ec) : 0;
  return std::make_unique<LocalFile>(f, size);
}

bool LocalFileBackend::read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool LocalFileBackend::write_atomic(const std::string& path,
                                    const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            sync_stream(f);
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  // POSIX rename atomicity: readers see the old file or the complete
  // new one, never a prefix.
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool LocalFileBackend::remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  return !fs::exists(path, ec);
}

bool LocalFileBackend::truncate(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  return !ec;
}

std::shared_ptr<FileBackend> local_backend() {
  static std::shared_ptr<FileBackend> b =
      std::make_shared<LocalFileBackend>();
  return b;
}

}  // namespace dynsld::persist
