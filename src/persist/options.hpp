// Durability knobs — the leaf config both sides of the persistence
// boundary share.
//
// This header is deliberately dependency-free (no engine includes) so
// ServiceConfig can embed a PersistOptions without the engine headers
// ever depending on the persistence subsystem: the service sees only
// this POD plus a forward-declared PersistenceManager, while
// src/persist/ owns every format and I/O decision.
//
// The durability/latency trade-off is the fsync policy: every WAL
// append is buffered-write cheap, and the policy decides how often the
// writer pays an fsync — every record (kEveryN, n = 1), every n
// records, on a wall-clock interval, or never (kOff: the OS page cache
// is the only durability, suitable for benchmarks and tests). The
// policy bounds how many most-recent epochs a crash can lose; the
// matrix lives in docs/DURABILITY.md.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dynsld::persist {

/// When the WAL writer fsyncs its active segment (see the header
/// comment and the policy matrix in docs/DURABILITY.md).
enum class FsyncPolicy : uint8_t {
  kOff,       ///< never fsync: page cache only (bench/test mode)
  kEveryN,    ///< fsync after every `fsync_every_n` appended records
  kInterval,  ///< fsync when `fsync_interval` elapsed since the last
};

/// Construction-time durability knobs (embedded in ServiceConfig as
/// `persist`). An empty `dir` disables persistence entirely — the
/// engine runs exactly as before this subsystem existed.
struct PersistOptions {
  /// Log directory (WAL segments + checkpoints). Empty = persistence
  /// off. A fresh service requires the directory to hold no prior
  /// state; restarting over an existing log goes through
  /// persist::recover() instead.
  std::string dir;

  /// Fsync policy for WAL appends (see FsyncPolicy).
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryN;
  /// Records per fsync under kEveryN (1 = sync every record).
  uint64_t fsync_every_n = 1;
  /// Wall-clock fsync cadence under kInterval.
  std::chrono::milliseconds fsync_interval{50};

  /// Write a checkpoint (full EngineSnapshot + live-edge table) every
  /// this many published epochs, then rotate to a fresh WAL segment.
  uint64_t checkpoint_every = 64;

  /// Checkpoints the compactor retains (newest first). WAL segments
  /// whose epochs are entirely covered by the oldest retained
  /// checkpoint are deleted with it — together these bound the
  /// on-disk history window to roughly
  /// `retain_checkpoints * checkpoint_every` epochs.
  size_t retain_checkpoints = 4;

  /// Capacity of the rehydrated-checkpoint LRU serving AsOf{epoch}
  /// queries older than the in-memory retention ring (each entry is a
  /// full decoded EngineSnapshot).
  size_t rehydrate_cache = 2;

  /// Persistence enabled?
  bool enabled() const { return !dir.empty(); }

  /// Reject nonsensical knob combinations up front with a typed error
  /// instead of silently clamping them at the point of use (a zero
  /// rehydrate_cache used to behave as capacity 1, which lied about
  /// the memory budget the caller asked for). Called by
  /// PersistenceManager on construction — both the fresh-service and
  /// recover() paths go through it.
  void validate() const {
    if (rehydrate_cache == 0)
      throw std::invalid_argument(
          "PersistOptions.rehydrate_cache must be >= 1 (AsOf queries "
          "older than the retention ring need at least one slot)");
    if (fsync_policy == FsyncPolicy::kEveryN && fsync_every_n == 0)
      throw std::invalid_argument(
          "PersistOptions.fsync_every_n must be >= 1 under kEveryN");
    if (checkpoint_every == 0)
      throw std::invalid_argument(
          "PersistOptions.checkpoint_every must be >= 1");
  }
};

}  // namespace dynsld::persist
