// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding
// every WAL record and checkpoint payload.
//
// Software, byte-at-a-time over a lazily built 256-entry table: ~1 B/
// cycle, far below the record sizes where a slicing or SSE4.2 variant
// would matter for this workload (appends are dominated by the fsync
// policy, not the checksum). Chosen over plain CRC32 for its better
// error-detection properties on short records and because it is the
// conventional storage-stack checksum — tools/walctl.py implements the
// same function so log directories are checkable without the binary.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dynsld::persist {

namespace detail {

/// The 256-entry CRC32C lookup table, built once at compile time
/// (reflected polynomial 0x82F63B78).
inline constexpr std::array<uint32_t, 256> make_crc32c_table() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// CRC32C of `len` bytes at `data`. `seed` chains incremental runs:
/// crc32c(b, crc32c(a)) == crc32c(a ++ b). The empty input maps to 0.
inline uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < len; ++i)
    c = detail::kCrc32cTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return ~c;
}

}  // namespace dynsld::persist
