#include "persist/persist.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace dynsld::persist {

PersistenceManager::PersistenceManager(PersistOptions opts,
                                       std::shared_ptr<FileBackend> backend,
                                       std::shared_ptr<engine::EngineObs> obs)
    : opts_(std::move(opts)),
      backend_(std::move(backend)),
      obs_(std::move(obs)),
      wal_(backend_, opts_, obs_),
      ckpt_(backend_, opts_, obs_) {
  // Typed rejection of nonsensical knobs (zero cache/cadence used to be
  // silently clamped to 1 at the point of use). Fresh services and
  // recover() both construct the manager, so both paths are covered.
  opts_.validate();
  backend_->mkdirs(opts_.dir);
}

void PersistenceManager::require_fresh() const {
  for (const std::string& name : backend_->list(opts_.dir)) {
    uint64_t e;
    if (WalReader::parse_segment_name(name, &e) ||
        CheckpointWriter::parse_file_name(name, &e))
      throw std::runtime_error(
          "dynsld: persist dir '" + opts_.dir +
          "' already holds durable state (" + name +
          "); resume it with persist::recover() instead of constructing "
          "a fresh service over it");
  }
}

void PersistenceManager::log_batch(
    uint64_t epoch, const engine::MutationQueue::Drained& batch) {
  wal_.append(epoch, batch);
  for (const auto& op : batch.inserts)
    live_[op.ticket] = Edge{op.u, op.v, op.w};
  for (const auto& op : batch.erases) live_.erase(op.ticket);
}

void PersistenceManager::on_publish(const engine::EngineSnapshot& snap,
                                    uint64_t next_ticket) {
  // checkpoint_every == 0 is rejected by PersistOptions::validate().
  if (snap.epoch() - last_checkpoint_epoch_ < opts_.checkpoint_every) return;
  std::vector<LiveEdge> live;
  live.reserve(live_.size());
  for (const auto& [t, e] : live_)
    live.push_back(LiveEdge{t, e.u, e.v, e.w});
  if (!ckpt_.write(snap, next_ticket, live)) return;  // retry next publish
  last_checkpoint_epoch_ = snap.epoch();
  // Rotate so the new segment starts past the checkpoint: compaction
  // then deletes whole covered segments, never rewrites one.
  wal_.begin_segment(snap.epoch() + 1);
  Compactor::run(*backend_, opts_, obs_.get());
}

engine::EpochManager::Snap PersistenceManager::rehydrate(uint64_t epoch) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == epoch) {
      cache_.splice(cache_.begin(), cache_, it);
      return cache_.front().second;
    }
  }
  obs::ScopedSpan span(nullptr, "persist.rehydrate", epoch,
                       obs_ ? obs_->persist_rehydrate : nullptr);
  std::string bytes;
  if (!backend_->read_file(opts_.dir + "/" + CheckpointWriter::file_name(epoch),
                           &bytes))
    return nullptr;
  CheckpointData data;
  if (!CheckpointWriter::read(bytes, &data)) return nullptr;
  ByteReader in(data.snapshot_bytes);
  engine::EpochManager::Snap snap =
      SnapshotCodec::decode(in, engine::EngineObs::stats_handle(obs_), obs_);
  if (!snap || snap->epoch() != epoch) return nullptr;
  if (obs_)
    obs_->stats.asof_rehydrated.fetch_add(1, std::memory_order_relaxed);
  cache_.emplace_front(epoch, snap);
  // rehydrate_cache == 0 is rejected by PersistOptions::validate().
  while (cache_.size() > opts_.rehydrate_cache) cache_.pop_back();
  return snap;
}

RecoverResult recover(engine::ServiceConfig cfg,
                      std::shared_ptr<FileBackend> backend) {
  if (!cfg.persist.enabled())
    throw std::invalid_argument("persist::recover: cfg.persist.dir is empty");
  if (!backend) backend = local_backend();
  const PersistOptions opts = cfg.persist;
  backend->mkdirs(opts.dir);

  std::vector<uint64_t> ckpts, segs;
  for (const std::string& name : backend->list(opts.dir)) {
    uint64_t e;
    if (CheckpointWriter::parse_file_name(name, &e)) ckpts.push_back(e);
    if (WalReader::parse_segment_name(name, &e)) segs.push_back(e);
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::sort(segs.begin(), segs.end());

  RecoverResult res;
  // Boot the service with persistence DETACHED: replay re-enacts
  // history through the normal mutation path, and none of it may be
  // re-logged. The manager attaches once the replay is complete.
  engine::ServiceConfig boot = cfg;
  boot.persist.dir.clear();
  auto svc = std::make_unique<engine::SldService>(boot);
  obs::ScopedSpan recover_span(nullptr, "persist.recover", 0,
                               svc->obs_shared()->persist_recover);
  auto pm =
      std::make_unique<PersistenceManager>(opts, backend, svc->obs_shared());

  // Newest checkpoint that validates wins; corrupt files fall back to
  // older ones (checkpoints publish atomically, so at most the newest
  // can be a casualty of the crash — and only on non-atomic stores).
  CheckpointData ck;
  bool have_ck = false;
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    std::string bytes;
    if (!backend->read_file(
            opts.dir + "/" + CheckpointWriter::file_name(*it), &bytes))
      continue;
    if (CheckpointWriter::read(bytes, &ck)) {
      have_ck = true;
      break;
    }
  }
  if (have_ck) {
    for (const LiveEdge& e : ck.live) {
      svc->restore_insert(e.ticket, e.u, e.v, e.w);
      pm->seed_live(e.ticket, e.u, e.v, e.w);
    }
    svc->restore_ticket_floor(ck.next_ticket);
    svc->restore_publish(ck.epoch);
    pm->set_last_checkpoint(ck.epoch);
    res.checkpoint_epoch = ck.epoch;
  }

  // Replay WAL segments in epoch order, re-enacting each record past
  // the checkpoint through the restore path. Replay halts at the first
  // tear; later segments (possible only after mid-file corruption) are
  // unreachable across the hole and are dropped.
  uint64_t published = svc->epoch();
  std::string resume;  // segment the writer should continue appending to
  bool halted = false;
  size_t si = 0;
  for (; si < segs.size() && !halted; ++si) {
    const std::string name = WalReader::segment_name(segs[si]);
    const std::string path = opts.dir + "/" + name;
    std::string bytes;
    if (!backend->read_file(path, &bytes)) {
      backend->remove(path);
      res.torn_tail_truncated = true;
      halted = true;
      break;
    }
    WalReader::Scan scan = WalReader::scan(bytes);
    if (!scan.ok) {
      // Crash before the segment header landed: the file carries no
      // records — drop it and start fresh from here.
      backend->remove(path);
      res.torn_tail_truncated = true;
      halted = true;
      break;
    }
    for (const WalRecord& rec : scan.records) {
      if (rec.epoch <= published) continue;  // covered by the checkpoint
      if (rec.epoch != published + 1) {
        // Epoch gap: impossible from the single sequential writer;
        // indicates external tampering. Stop replaying — everything up
        // to the gap is consistent — and drop the segment (resuming
        // after out-of-order records would corrupt it further).
        halted = true;
        break;
      }
      for (const auto& op : rec.batch.inserts) {
        svc->restore_insert(op.ticket, op.u, op.v, op.w);
        pm->seed_live(op.ticket, op.u, op.v, op.w);
      }
      for (const auto& op : rec.batch.erases) {
        svc->restore_erase(op.ticket);
        pm->unseed_live(op.ticket);
      }
      svc->restore_publish(rec.epoch);
      published = rec.epoch;
      ++res.records_replayed;
    }
    if (scan.torn) {
      backend->truncate(path, scan.valid_bytes);
      res.torn_tail_truncated = true;
      halted = true;
      resume = name;  // truncated to a record boundary: appendable
    } else if (!halted) {
      resume = name;
    }
  }
  if (halted) {
    for (size_t j = si; j < segs.size(); ++j)
      backend->remove(opts.dir + "/" + WalReader::segment_name(segs[j]));
  }

  res.tip_epoch = published;
  if (res.records_replayed && svc->obs_shared())
    svc->obs_shared()->stats.recovery_replayed.fetch_add(
        res.records_replayed, std::memory_order_relaxed);
  if (!resume.empty()) pm->resume_segment(resume);
  svc->attach_persistence(std::move(pm));
  res.service = std::move(svc);
  return res;
}

}  // namespace dynsld::persist
