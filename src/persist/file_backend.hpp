// FileBackend: the narrow filesystem seam under the durability
// subsystem.
//
// Everything the WAL, checkpoints, and recovery touch on disk goes
// through this interface — append to a log file, fsync it, read a
// whole file, write-then-rename atomically, list/remove/truncate. Two
// reasons for the indirection:
//
//   - crash injection: the persistence tests wrap the real backend in
//     a fault injector that stops persisting bytes at a scheduled
//     point (mid-record, mid-checkpoint, pre-fsync), simulating a
//     power cut without killing the test process — recovery is then
//     verified bit-for-bit against an uninterrupted reference run;
//   - portability: the engine core stays header-pure C++; the one
//     place that needs fsync/rename lives behind this seam (and a
//     future remote/object-store backend slots in here).
//
// LocalFileBackend is the production implementation: buffered stdio
// appends, fsync via fileno, atomic publication via write-to-temp +
// rename (POSIX rename atomicity is what makes checkpoints all-or-
// nothing — a torn checkpoint write leaves the previous one intact).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dynsld::persist {

/// Abstract filesystem operations of the durability subsystem (see the
/// header comment). All paths are plain strings; directories use '/'.
/// Implementations must be safe for use from one thread at a time per
/// file — the engine serializes all persistence under its flush lock.
class FileBackend {
 public:
  /// One open append-only file (a WAL segment being written).
  class File {
   public:
    virtual ~File() = default;
    /// Append `len` bytes; false on any I/O failure (a failed append
    /// poisons the writer — see WalWriter).
    virtual bool append(const void* data, size_t len) = 0;
    /// Flush application + OS buffers to stable storage (fsync).
    virtual bool sync() = 0;
    /// Bytes successfully appended through this handle so far.
    virtual uint64_t size() const = 0;
  };

  virtual ~FileBackend() = default;

  /// Create `dir` (and parents) if missing; true when it exists after.
  virtual bool mkdirs(const std::string& dir) = 0;
  /// Names (not paths) of regular files directly under `dir`, sorted
  /// ascending; empty for a missing directory.
  virtual std::vector<std::string> list(const std::string& dir) = 0;
  /// Open `path` for appending (created if missing); null on failure.
  virtual std::unique_ptr<File> open_append(const std::string& path) = 0;
  /// Read the whole file into *out; false when unreadable.
  virtual bool read_file(const std::string& path, std::string* out) = 0;
  /// Atomically publish `bytes` at `path`: write a temp file in the
  /// same directory, fsync it, rename over `path`. Either the old
  /// content or the complete new content is visible, never a prefix.
  virtual bool write_atomic(const std::string& path,
                            const std::string& bytes) = 0;
  /// Delete a file; true if it no longer exists.
  virtual bool remove(const std::string& path) = 0;
  /// Truncate a file to `size` bytes (the torn-tail repair primitive).
  virtual bool truncate(const std::string& path, uint64_t size) = 0;
};

/// The POSIX/stdio implementation used outside tests.
class LocalFileBackend : public FileBackend {
 public:
  /// See FileBackend::mkdirs.
  bool mkdirs(const std::string& dir) override;
  /// See FileBackend::list.
  std::vector<std::string> list(const std::string& dir) override;
  /// See FileBackend::open_append.
  std::unique_ptr<File> open_append(const std::string& path) override;
  /// See FileBackend::read_file.
  bool read_file(const std::string& path, std::string* out) override;
  /// See FileBackend::write_atomic.
  bool write_atomic(const std::string& path,
                    const std::string& bytes) override;
  /// See FileBackend::remove.
  bool remove(const std::string& path) override;
  /// See FileBackend::truncate.
  bool truncate(const std::string& path, uint64_t size) override;
};

/// Process-wide shared LocalFileBackend (the default when a service is
/// constructed with persistence and no explicit backend).
std::shared_ptr<FileBackend> local_backend();

}  // namespace dynsld::persist
