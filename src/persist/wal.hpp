// Write-ahead log: epoch-stamped, checksummed batch records in
// append-only segment files.
//
// The coalescing queue's drained batches are the natural WAL unit —
// they are exactly what the flush applies, already deduplicated and
// annihilated, with every erase carrying its ledger-resolved
// endpoints. At flush time (after the drain, before the apply, under
// the flush lock) the service hands each non-empty batch to the
// WalWriter, which appends ONE record per epoch:
//
//   segment file  wal-<first_epoch>.log
//     header   "DSLDWAL1" (8 B magic)  u32 version
//     record*  u32 payload_len   u32 crc32c(payload)   payload
//     payload  u64 epoch   u32 n_inserts   u32 n_erases
//              insert*  u64 ticket  u32 u  u32 v  f64 weight
//              erase*   u64 ticket  u32 u  u32 v
//
// (all integers little-endian; weights are raw IEEE-754 bits — byte
// layouts in docs/DURABILITY.md). Segments rotate at checkpoints, so
// one segment holds exactly the epochs between two checkpoints and
// compaction deletes whole files, never rewrites them.
//
// Torn tails are expected, not errors: a crash mid-append leaves a
// trailing record whose length/CRC cannot validate. WalReader::scan
// stops at the first invalid record and reports the valid byte prefix;
// recovery truncates the file there and replays what remains — losing
// at most the epochs the fsync policy said could be lost.
//
// A failed append POISONS the writer (every later append no-ops and
// reports failure): after an I/O error the log's tail is unknown, and
// appending more records after a hole would corrupt the epoch
// sequence. A real deployment treats a poisoned WAL as fatal; the
// crash-injection tests use it to simulate the death of the write
// path at exact byte offsets.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/mutation_queue.hpp"
#include "engine/stats.hpp"
#include "persist/file_backend.hpp"
#include "persist/options.hpp"

namespace dynsld::persist {

/// One decoded WAL record: the batch that produced `epoch`.
struct WalRecord {
  uint64_t epoch = 0;
  engine::MutationQueue::Drained batch;
};

/// Appends epoch records to the active segment under the configured
/// fsync policy (see the header comment). Not thread-safe — the
/// service serializes all appends under its flush lock.
class WalWriter {
 public:
  /// `obs` (nullable) receives wal_* counters and the persist.append /
  /// persist.fsync histograms.
  WalWriter(std::shared_ptr<FileBackend> backend, PersistOptions opts,
            std::shared_ptr<engine::EngineObs> obs);
  /// Closes (and syncs) the active segment.
  ~WalWriter();

  /// Append the record of `epoch`. Opens a segment named after `epoch`
  /// lazily when none is active. Returns false (and poisons the
  /// writer) on any I/O failure.
  bool append(uint64_t epoch, const engine::MutationQueue::Drained& batch);

  /// Close the active segment (synced) and start a fresh one whose
  /// name stamps `first_epoch` — called right after a checkpoint so
  /// compaction can delete whole segments.
  bool begin_segment(uint64_t first_epoch);

  /// Resume appending to an existing segment file (recovery: the torn
  /// tail, if any, has already been truncated away).
  bool open_existing(const std::string& name);

  /// Sync the active segment now regardless of policy (used when
  /// closing a segment; also handy in tests).
  bool sync();

  /// Interval-policy deadline check, callable OUTSIDE the append path.
  /// append() only evaluates the kInterval clock when a record arrives,
  /// so a burst followed by silence would leave the tail unsynced
  /// indefinitely; the service calls this from its idle tick and from
  /// empty flushes so a lull never exceeds the interval by more than
  /// one tick. No-op (returns true) unless policy is kInterval, there
  /// are unsynced records, and the interval has elapsed.
  bool sync_if_due();

  /// Has an append or open failed? A poisoned writer drops all
  /// subsequent appends.
  bool failed() const { return failed_; }

  /// Serialize one record (framing + payload) — exposed for tests and
  /// size accounting.
  static std::string encode_record(uint64_t epoch,
                                   const engine::MutationQueue::Drained& batch);

 private:
  bool ensure_segment(uint64_t first_epoch);
  void maybe_sync();

  std::shared_ptr<FileBackend> backend_;
  PersistOptions opts_;
  std::shared_ptr<engine::EngineObs> obs_;
  std::unique_ptr<FileBackend::File> file_;
  uint64_t records_since_sync_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
  bool failed_ = false;
};

/// Decodes segment files (see the format in the header comment).
/// Stateless — all methods are static.
class WalReader {
 public:
  /// What scanning one segment's bytes produced.
  struct Scan {
    /// Records that validated, in file order.
    std::vector<WalRecord> records;
    /// Byte offset just past the last valid record (the truncation
    /// point when `torn`).
    uint64_t valid_bytes = 0;
    /// A trailing partial or checksum-failing record was present.
    bool torn = false;
    /// Header present and well-formed (false = not a WAL segment).
    bool ok = false;
  };

  /// Segment file name for a first epoch (zero-padded so the
  /// lexicographic directory order is the epoch order).
  static std::string segment_name(uint64_t first_epoch);
  /// Parse a segment file name; false when `name` is not one.
  static bool parse_segment_name(const std::string& name,
                                 uint64_t* first_epoch);
  /// Scan a whole segment's bytes (see Scan).
  static Scan scan(const std::string& bytes);
  /// Decode ONE framed record (u32 len + u32 crc32c + payload — the
  /// exact bytes WalWriter::encode_record produced, without any segment
  /// header). False on truncation, checksum mismatch, or trailing
  /// bytes. The replication stream ships records in this framing, so a
  /// replica applies them with the same validation as recovery.
  static bool decode_record(const std::string& bytes, WalRecord* out);
};

}  // namespace dynsld::persist
