// Byte-level serialization helpers shared by the WAL and checkpoint
// codecs: a growable little-endian writer and a bounds-checked reader.
//
// Every on-disk integer is fixed-width little-endian (the only
// platforms this engine targets) and every float is the raw IEEE-754
// bit pattern, so encode/decode round-trips are bit-exact — which is
// what lets the recovery tests assert bit-for-bit equality rather than
// epsilon closeness. The reader never throws and never reads past its
// span: any short or malformed input flips a sticky `ok()` flag the
// caller checks once at the end (torn WAL tails and corrupt
// checkpoints are expected inputs, not exceptions).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dynsld::persist {

/// Append-only little-endian encoder over a std::string buffer (the
/// unit the file backend writes and checksums).
class ByteWriter {
 public:
  /// The bytes encoded so far.
  const std::string& bytes() const { return buf_; }
  /// Move the buffer out (leaves the writer empty).
  std::string take() { return std::move(buf_); }

  /// Fixed-width little-endian integer appends.
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) { raw(&v, 4); }
  void u64(uint64_t v) { raw(&v, 8); }
  /// Raw IEEE-754 bit pattern (bit-exact round trip).
  void f64(double v) { raw(&v, 8); }

  /// Append `len` raw bytes.
  void raw(const void* p, size_t len) {
    buf_.append(static_cast<const char*>(p), len);
  }

  /// Append a whole POD vector: u64 element count, then the raw
  /// elements (the CSR-array workhorse of the snapshot codec).
  template <class T>
  void pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
  }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
/// Never throws: a short read zero-fills and flips ok() sticky-false,
/// so one check after decoding validates the whole parse.
class ByteReader {
 public:
  /// Borrow [data, data + len); the buffer must outlive the reader.
  ByteReader(const void* data, size_t len)
      : p_(static_cast<const char*>(data)), end_(p_ + len) {}
  /// Borrow a whole string's bytes.
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  /// Every read so far stayed in bounds?
  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  /// Fixed-width little-endian integer reads (0 on underrun).
  uint8_t u8() { uint8_t v = 0; raw(&v, 1); return v; }
  uint32_t u32() { uint32_t v = 0; raw(&v, 4); return v; }
  uint64_t u64() { uint64_t v = 0; raw(&v, 8); return v; }
  /// Raw IEEE-754 bit pattern (0.0 on underrun).
  double f64() { double v = 0; raw(&v, 8); return v; }

  /// Copy `len` raw bytes out (zero-fills and fails on underrun).
  void raw(void* out, size_t len) {
    if (static_cast<size_t>(end_ - p_) < len) {
      ok_ = false;
      std::memset(out, 0, len);
      p_ = end_;
      return;
    }
    std::memcpy(out, p_, len);
    p_ += len;
  }

  /// Read a pod_vec()-encoded vector; an implausible count (more
  /// elements than bytes remain) fails instead of allocating.
  template <class T>
  std::vector<T> pod_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = u64();
    if (n > remaining() / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(static_cast<size_t>(n));
    if (n) raw(v.data(), static_cast<size_t>(n) * sizeof(T));
    return v;
  }

 private:
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace dynsld::persist
