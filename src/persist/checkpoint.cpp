#include "persist/checkpoint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "engine/snapshot.hpp"
#include "obs/trace.hpp"
#include "persist/crc32c.hpp"
#include "persist/wal.hpp"

namespace dynsld::persist {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'L', 'D', 'C', 'K', 'P', '1'};
// v2: EpochDelta gained per-shard patch records (shard_patch).
constexpr uint32_t kVersion = 2;

}  // namespace

// ---- SnapshotCodec ---------------------------------------------------

void SnapshotCodec::encode_shard(const engine::DendrogramSnapshot& d,
                                 ByteWriter& out) {
  out.u32(d.n_);
  out.u32(d.base_);
  out.pod_vec(d.u_);
  out.pod_vec(d.v_);
  out.pod_vec(d.weight_);
  out.pod_vec(d.parent_);
  out.pod_vec(d.count_);
  out.pod_vec(d.leaf_parent_);
  out.pod_vec(d.child_off_);
  out.pod_vec(d.child_list_);
  out.pod_vec(d.leaf_off_);
  out.pod_vec(d.leaf_list_);
  out.u32(static_cast<uint32_t>(d.levels_));
  out.pod_vec(d.up_);
}

void SnapshotCodec::encode(const engine::EngineSnapshot& snap,
                           ByteWriter& out) {
  out.u64(snap.epoch_);
  out.u32(snap.map_.n);
  out.u32(static_cast<uint32_t>(snap.map_.num_shards));
  out.u32(snap.map_.stride);
  for (const auto& sp : snap.shards_) encode_shard(*sp, out);
  out.pod_vec(snap.cross_->edges());
  // Delta + trace metadata: what this epoch changed and what it cost —
  // so a rehydrated snapshot introspects exactly like the original.
  const engine::EpochDelta& dl = snap.delta_;
  out.u64(dl.base_epoch);
  out.pod_vec(dl.shard_rebuilt);
  out.u32(dl.cross_inserted);
  out.u32(dl.cross_erased);
  out.f64(dl.cross_min_w);
  out.u64(dl.verts_rebuilt);
  // ShardPatch has interior padding: serialize field-wise so the file
  // bytes stay a pure function of the state.
  out.u64(dl.shard_patch.size());
  for (const engine::EpochDelta::ShardPatch& sp : dl.shard_patch) {
    out.u8(sp.mode);
    out.u8(sp.fallback);
    out.u32(sp.rounds_total);
    out.u32(sp.rounds_rerun);
    out.u64(sp.nodes_patched);
  }
  const obs::EpochTrace& tr = snap.trace_;
  out.u64(tr.epoch);
  out.u64(tr.ops);
  out.u32(static_cast<uint32_t>(tr.shards_rebuilt));
  out.u64(tr.drain_ns);
  out.u64(tr.apply_ns);
  out.u64(tr.shards_ns);
  out.u64(tr.cross_ns);
  // Captured edges (field-wise: WeightedEdge has tail padding, and the
  // file bytes should be a pure function of the state).
  out.u64(snap.edges_.size());
  for (const WeightedEdge& e : snap.edges_) {
    out.u32(e.u);
    out.u32(e.v);
    out.f64(e.weight);
    out.u32(e.id);
  }
}

engine::EpochManager::Snap SnapshotCodec::decode(
    ByteReader& in, std::shared_ptr<engine::EngineStats> stats,
    std::shared_ptr<engine::EngineObs> obs) {
  auto snap = std::shared_ptr<engine::EngineSnapshot>(
      new engine::EngineSnapshot());
  snap->epoch_ = in.u64();
  snap->map_.n = in.u32();
  snap->map_.num_shards = static_cast<int>(in.u32());
  snap->map_.stride = in.u32();
  if (!in.ok() || snap->map_.num_shards < 1 ||
      snap->map_.num_shards > 1 << 20)
    return nullptr;
  snap->shards_.reserve(snap->map_.num_shards);
  for (int k = 0; k < snap->map_.num_shards; ++k) {
    auto d = std::shared_ptr<engine::DendrogramSnapshot>(
        new engine::DendrogramSnapshot());
    d->n_ = in.u32();
    d->base_ = in.u32();
    d->u_ = in.pod_vec<vertex_id>();
    d->v_ = in.pod_vec<vertex_id>();
    d->weight_ = in.pod_vec<double>();
    d->parent_ = in.pod_vec<int32_t>();
    d->count_ = in.pod_vec<uint64_t>();
    d->leaf_parent_ = in.pod_vec<int32_t>();
    d->child_off_ = in.pod_vec<uint32_t>();
    d->child_list_ = in.pod_vec<uint32_t>();
    d->leaf_off_ = in.pod_vec<uint32_t>();
    d->leaf_list_ = in.pod_vec<uint32_t>();
    d->levels_ = static_cast<int>(in.u32());
    d->up_ = in.pod_vec<int32_t>();
    if (!in.ok()) return nullptr;
    snap->shards_.push_back(std::move(d));
  }
  snap->cross_ = std::make_shared<const engine::CrossEdgeView>(
      in.pod_vec<engine::CrossEdgeView::Edge>());
  engine::EpochDelta& dl = snap->delta_;
  dl.base_epoch = in.u64();
  dl.shard_rebuilt = in.pod_vec<char>();
  dl.cross_inserted = in.u32();
  dl.cross_erased = in.u32();
  dl.cross_min_w = in.f64();
  dl.verts_rebuilt = in.u64();
  uint64_t n_patch = in.u64();
  if (n_patch > in.remaining() / 18) return nullptr;  // 18 B encoded each
  dl.shard_patch.reserve(static_cast<size_t>(n_patch));
  for (uint64_t i = 0; i < n_patch; ++i) {
    engine::EpochDelta::ShardPatch sp;
    sp.mode = in.u8();
    sp.fallback = in.u8();
    sp.rounds_total = in.u32();
    sp.rounds_rerun = in.u32();
    sp.nodes_patched = in.u64();
    dl.shard_patch.push_back(sp);
  }
  obs::EpochTrace& tr = snap->trace_;
  tr.epoch = in.u64();
  tr.ops = in.u64();
  tr.shards_rebuilt = static_cast<int>(in.u32());
  tr.drain_ns = in.u64();
  tr.apply_ns = in.u64();
  tr.shards_ns = in.u64();
  tr.cross_ns = in.u64();
  uint64_t n_edges = in.u64();
  if (n_edges > in.remaining() / 20) return nullptr;  // 20 B encoded each
  snap->edges_.reserve(static_cast<size_t>(n_edges));
  for (uint64_t i = 0; i < n_edges; ++i) {
    WeightedEdge e;
    e.u = in.u32();
    e.v = in.u32();
    e.weight = in.f64();
    e.id = in.u32();
    snap->edges_.push_back(e);
  }
  if (!in.ok()) return nullptr;
  snap->stats_ = std::move(stats);
  snap->obs_ = std::move(obs);
  return snap;
}

// ---- CheckpointWriter ------------------------------------------------

CheckpointWriter::CheckpointWriter(std::shared_ptr<FileBackend> backend,
                                   PersistOptions opts,
                                   std::shared_ptr<engine::EngineObs> obs)
    : backend_(std::move(backend)),
      opts_(std::move(opts)),
      obs_(std::move(obs)) {}

std::string CheckpointWriter::file_name(uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "ckpt-%020" PRIu64 ".bin", epoch);
  return buf;
}

bool CheckpointWriter::parse_file_name(const std::string& name,
                                       uint64_t* epoch) {
  uint64_t e = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "ckpt-%20" SCNu64 ".bin%n", &e, &consumed) !=
          1 ||
      static_cast<size_t>(consumed) != name.size())
    return false;
  *epoch = e;
  return true;
}

bool CheckpointWriter::write(const engine::EngineSnapshot& snap,
                             uint64_t next_ticket,
                             const std::vector<LiveEdge>& live) {
  obs::ScopedSpan span(nullptr, "persist.checkpoint", snap.epoch(),
                       obs_ ? obs_->persist_checkpoint : nullptr);
  ByteWriter payload;
  payload.u64(snap.epoch());
  payload.u64(next_ticket);
  payload.u64(live.size());
  for (const LiveEdge& e : live) {
    payload.u64(e.ticket);
    payload.u32(e.u);
    payload.u32(e.v);
    payload.f64(e.w);
  }
  SnapshotCodec::encode(snap, payload);

  ByteWriter file;
  file.raw(kMagic, sizeof(kMagic));
  file.u32(kVersion);
  const std::string& p = payload.bytes();
  file.u32(static_cast<uint32_t>(p.size()));
  file.u32(crc32c(p.data(), p.size()));
  file.raw(p.data(), p.size());

  std::string path = opts_.dir + "/" + file_name(snap.epoch());
  if (!backend_->write_atomic(path, file.bytes())) return false;
  if (obs_)
    obs_->stats.checkpoints_written.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool CheckpointWriter::read(const std::string& bytes, CheckpointData* out) {
  constexpr size_t kHeader = sizeof(kMagic) + 4 + 8;  // magic+ver+frame
  if (bytes.size() < kHeader ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return false;
  ByteReader hdr(bytes.data() + sizeof(kMagic), 12);
  if (hdr.u32() != kVersion) return false;
  uint32_t len = hdr.u32();
  uint32_t crc = hdr.u32();
  if (bytes.size() - kHeader < len) return false;
  const char* payload = bytes.data() + kHeader;
  if (crc32c(payload, len) != crc) return false;
  ByteReader r(payload, len);
  out->epoch = r.u64();
  out->next_ticket = r.u64();
  uint64_t n_live = r.u64();
  if (n_live > r.remaining() / 24) return false;  // 24 B encoded each
  out->live.clear();
  out->live.reserve(static_cast<size_t>(n_live));
  for (uint64_t i = 0; i < n_live; ++i) {
    LiveEdge e;
    e.ticket = r.u64();
    e.u = r.u32();
    e.v = r.u32();
    e.w = r.f64();
    out->live.push_back(e);
  }
  if (!r.ok()) return false;
  out->snapshot_bytes.assign(payload + (len - r.remaining()), r.remaining());
  return true;
}

// ---- Compactor -------------------------------------------------------

Compactor::Result Compactor::run(FileBackend& backend,
                                 const PersistOptions& opts,
                                 engine::EngineObs* obs) {
  Result res;
  std::vector<uint64_t> ckpts;
  std::vector<uint64_t> segs;
  for (const std::string& name : backend.list(opts.dir)) {
    uint64_t e;
    if (CheckpointWriter::parse_file_name(name, &e)) ckpts.push_back(e);
    if (WalReader::parse_segment_name(name, &e)) segs.push_back(e);
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::sort(segs.begin(), segs.end());
  size_t retain = opts.retain_checkpoints ? opts.retain_checkpoints : 1;
  if (ckpts.empty()) return res;  // no horizon yet: keep everything
  size_t drop = ckpts.size() > retain ? ckpts.size() - retain : 0;
  for (size_t i = 0; i < drop; ++i) {
    if (backend.remove(opts.dir + "/" + CheckpointWriter::file_name(ckpts[i])))
      ++res.checkpoints_removed;
  }
  // Oldest surviving checkpoint: segments whose whole epoch range is
  // at or below it are covered by replay-from-that-checkpoint and can
  // go. A segment's range ends where the NEXT segment starts (rotation
  // happens at checkpoints), so segment i is removable when segment
  // i+1 starts at or below horizon + 1.
  uint64_t horizon = ckpts[drop];
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    if (segs[i + 1] > horizon + 1) break;
    if (backend.remove(opts.dir + "/" + WalReader::segment_name(segs[i])))
      ++res.segments_removed;
  }
  if (obs) {
    if (res.checkpoints_removed)
      obs->stats.checkpoints_removed.fetch_add(res.checkpoints_removed,
                                               std::memory_order_relaxed);
    if (res.segments_removed)
      obs->stats.wal_segments_removed.fetch_add(res.segments_removed,
                                                std::memory_order_relaxed);
  }
  return res;
}

}  // namespace dynsld::persist
