// Checkpoints: periodic full-state images that bound recovery replay
// and anchor AsOf time travel, plus the compactor that bounds the
// on-disk history window.
//
// Every `checkpoint_every` epochs the service hands the just-published
// EngineSnapshot to the CheckpointWriter, which serializes TWO views
// of the engine into one atomically published file:
//
//   - the LIVE EDGE TABLE (ticket, u, v, weight — ticket-ascending):
//     the alive edge multiset recovery re-inserts through the normal
//     mutation path, so the restored engine is a real, mutable engine,
//     not a frozen replica. Ticket order is insertion order, which
//     keeps the endpoint ledger's "erase the most recent copy"
//     resolution identical after recovery;
//   - the FROZEN SNAPSHOT (per-shard rank-sorted CSR DendrogramSnapshot
//     arrays + cross-edge table + epoch/delta/trace metadata), encoded
//     by SnapshotCodec: byte-exact rehydration for AsOf{epoch} queries
//     at the checkpoint epoch, no replay required.
//
//   checkpoint file  ckpt-<epoch>.bin
//     header   "DSLDCKP1" (8 B magic)  u32 version
//     frame    u32 payload_len   u32 crc32c(payload)
//     payload  u64 epoch   u64 next_ticket
//              u64 n_live  live*{u64 ticket  u32 u  u32 v  f64 w}
//              snapshot section (SnapshotCodec byte layout —
//              docs/DURABILITY.md)
//
// Publication is write-to-temp + rename (FileBackend::write_atomic),
// so a crash mid-checkpoint leaves the previous checkpoint intact and
// recovery falls back to it — checkpoints are all-or-nothing.
//
// The Compactor enforces the retention window after each successful
// checkpoint: keep the newest `retain_checkpoints` checkpoint files,
// delete older ones, and delete every WAL segment whose epochs are
// entirely at or below the oldest retained checkpoint (segments rotate
// at checkpoints, so this deletes whole files).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/epoch.hpp"
#include "engine/stats.hpp"
#include "persist/bytes.hpp"
#include "persist/file_backend.hpp"
#include "persist/options.hpp"

namespace dynsld::persist {

/// One alive edge at checkpoint time, keyed by its insertion ticket.
struct LiveEdge {
  uint64_t ticket = 0;
  uint32_t u = 0, v = 0;
  double w = 0.0;
};

/// Byte codec for a full EngineSnapshot (friend of EngineSnapshot and
/// DendrogramSnapshot — the one place their private arrays cross the
/// process boundary). encode/decode round-trip bit-exactly; the layout
/// is versioned by the checkpoint header.
struct SnapshotCodec {
  /// Serialize `snap` (shards, cross table, delta, trace, captured
  /// edges) into `out`.
  static void encode(const engine::EngineSnapshot& snap, ByteWriter& out);
  /// Serialize one shard's DendrogramSnapshot arrays — the per-shard
  /// unit encode() emits. Exposed so tests can compare a patched shard
  /// snapshot byte-for-byte against a freshly built one.
  static void encode_shard(const engine::DendrogramSnapshot& d,
                           ByteWriter& out);
  /// Rebuild a snapshot from codec bytes; null on malformed input.
  /// `stats`/`obs` (nullable) become the decoded snapshot's accounting
  /// sinks, normally the recovering service's own bundle.
  static engine::EpochManager::Snap decode(
      ByteReader& in, std::shared_ptr<engine::EngineStats> stats,
      std::shared_ptr<engine::EngineObs> obs);
};

/// Everything one checkpoint file holds, decoded (the snapshot section
/// stays as bytes so list-only consumers skip the decode).
struct CheckpointData {
  uint64_t epoch = 0;
  /// Ticket-counter floor: the queue resumes allocating above every
  /// ticket that ever existed, including erased ones absent from
  /// `live`.
  uint64_t next_ticket = 0;
  std::vector<LiveEdge> live;
  /// SnapshotCodec bytes of the frozen EngineSnapshot.
  std::string snapshot_bytes;
};

/// Serializes and atomically publishes checkpoint files.
class CheckpointWriter {
 public:
  /// `obs` (nullable) receives the checkpoints_written counter and the
  /// persist.checkpoint histogram.
  CheckpointWriter(std::shared_ptr<FileBackend> backend, PersistOptions opts,
                   std::shared_ptr<engine::EngineObs> obs);

  /// Write ckpt-<epoch>.bin for `snap` + the live-edge table. False on
  /// I/O failure (the previous checkpoint, if any, is untouched).
  bool write(const engine::EngineSnapshot& snap, uint64_t next_ticket,
             const std::vector<LiveEdge>& live);

  /// Checkpoint file name for an epoch (zero-padded: lexicographic
  /// order == epoch order).
  static std::string file_name(uint64_t epoch);
  /// Parse a checkpoint file name; false when `name` is not one.
  static bool parse_file_name(const std::string& name, uint64_t* epoch);
  /// Decode a checkpoint file's bytes (header + CRC validated); false
  /// on any corruption — recovery then falls back to an older file.
  static bool read(const std::string& bytes, CheckpointData* out);

 private:
  std::shared_ptr<FileBackend> backend_;
  PersistOptions opts_;
  std::shared_ptr<engine::EngineObs> obs_;
};

/// Deletes checkpoints past the retention count and WAL segments fully
/// covered by the oldest retained checkpoint (see the header comment).
class Compactor {
 public:
  /// What one compaction pass removed.
  struct Result {
    size_t checkpoints_removed = 0;
    size_t segments_removed = 0;
  };

  /// Run one pass over `opts.dir`. `obs` (nullable) receives the
  /// *_removed counters.
  static Result run(FileBackend& backend, const PersistOptions& opts,
                    engine::EngineObs* obs);
};

}  // namespace dynsld::persist
