#include "persist/wal.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/trace.hpp"
#include "persist/bytes.hpp"
#include "persist/crc32c.hpp"

namespace dynsld::persist {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'L', 'D', 'W', 'A', 'L', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 4;

// Decode one record payload (the bytes after the len/crc frame, CRC
// already verified). False when the payload is short, malformed, or
// longer than its contents — shared by scan() and decode_record() so a
// replica applies streamed records with exactly recovery's validation.
bool parse_payload(const char* payload, uint32_t len, WalRecord* out) {
  ByteReader r(payload, len);
  out->epoch = r.u64();
  uint32_t n_ins = r.u32();
  uint32_t n_ers = r.u32();
  // Count sanity BEFORE reserving: the counts must exactly account for
  // the payload length (24 B per insert, 16 B per erase, 16 B header),
  // so a crafted frame cannot force a multi-gigabyte reserve.
  if (!r.ok() ||
      uint64_t(n_ins) * 24 + uint64_t(n_ers) * 16 + 16 != uint64_t(len))
    return false;
  out->batch.inserts.reserve(n_ins);
  out->batch.erases.reserve(n_ers);
  for (uint32_t i = 0; i < n_ins; ++i) {
    engine::MutationQueue::InsertOp op;
    op.ticket = r.u64();
    op.u = r.u32();
    op.v = r.u32();
    op.w = r.f64();
    out->batch.inserts.push_back(op);
  }
  for (uint32_t i = 0; i < n_ers; ++i) {
    engine::MutationQueue::EraseOp op;
    op.ticket = r.u64();
    op.u = r.u32();
    op.v = r.u32();
    out->batch.erases.push_back(op);
  }
  return r.ok() && r.remaining() == 0;
}

}  // namespace

WalWriter::WalWriter(std::shared_ptr<FileBackend> backend, PersistOptions opts,
                     std::shared_ptr<engine::EngineObs> obs)
    : backend_(std::move(backend)),
      opts_(std::move(opts)),
      obs_(std::move(obs)),
      last_sync_(std::chrono::steady_clock::now()) {}

WalWriter::~WalWriter() {
  if (file_ && !failed_) file_->sync();
}

std::string WalWriter::encode_record(
    uint64_t epoch, const engine::MutationQueue::Drained& batch) {
  ByteWriter payload;
  payload.u64(epoch);
  payload.u32(static_cast<uint32_t>(batch.inserts.size()));
  payload.u32(static_cast<uint32_t>(batch.erases.size()));
  for (const auto& op : batch.inserts) {
    payload.u64(op.ticket);
    payload.u32(op.u);
    payload.u32(op.v);
    payload.f64(op.w);
  }
  for (const auto& op : batch.erases) {
    payload.u64(op.ticket);
    payload.u32(op.u);
    payload.u32(op.v);
  }
  ByteWriter rec;
  const std::string& p = payload.bytes();
  rec.u32(static_cast<uint32_t>(p.size()));
  rec.u32(crc32c(p.data(), p.size()));
  rec.raw(p.data(), p.size());
  return rec.take();
}

bool WalWriter::ensure_segment(uint64_t first_epoch) {
  if (file_) return true;
  if (failed_) return false;
  std::string path = opts_.dir + "/" + WalReader::segment_name(first_epoch);
  file_ = backend_->open_append(path);
  if (!file_) {
    failed_ = true;
    return false;
  }
  if (file_->size() == 0) {
    // Fresh segment: stamp the header before any record.
    ByteWriter hdr;
    hdr.raw(kMagic, sizeof(kMagic));
    hdr.u32(kVersion);
    if (!file_->append(hdr.bytes().data(), hdr.bytes().size())) {
      failed_ = true;
      return false;
    }
  }
  if (obs_)
    obs_->stats.wal_segments.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool WalWriter::begin_segment(uint64_t first_epoch) {
  if (failed_) return false;
  if (file_) {
    // Close synced: a rotated-away segment is final and must be fully
    // durable before the checkpoint that supersedes it can compact it.
    if (!file_->sync()) failed_ = true;
    file_.reset();
    if (failed_) return false;
  }
  records_since_sync_ = 0;
  return ensure_segment(first_epoch);
}

bool WalWriter::open_existing(const std::string& name) {
  if (failed_ || file_) return false;
  file_ = backend_->open_append(opts_.dir + "/" + name);
  if (!file_) failed_ = true;
  return !failed_;
}

bool WalWriter::sync() {
  if (failed_ || !file_) return !failed_;
  obs::ScopedSpan span(nullptr, "persist.fsync", 0,
                       obs_ ? obs_->persist_fsync : nullptr);
  if (!file_->sync()) {
    failed_ = true;
    return false;
  }
  if (obs_) obs_->stats.wal_fsyncs.fetch_add(1, std::memory_order_relaxed);
  records_since_sync_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  return true;
}

void WalWriter::maybe_sync() {
  switch (opts_.fsync_policy) {
    case FsyncPolicy::kOff:
      return;
    case FsyncPolicy::kEveryN:
      // fsync_every_n == 0 is rejected by PersistOptions::validate().
      if (records_since_sync_ >= opts_.fsync_every_n) sync();
      return;
    case FsyncPolicy::kInterval:
      if (std::chrono::steady_clock::now() - last_sync_ >= opts_.fsync_interval)
        sync();
      return;
  }
}

bool WalWriter::sync_if_due() {
  if (failed_ || !file_) return !failed_;
  if (opts_.fsync_policy != FsyncPolicy::kInterval) return true;
  if (records_since_sync_ == 0) return true;  // nothing at risk
  if (std::chrono::steady_clock::now() - last_sync_ < opts_.fsync_interval)
    return true;
  return sync();
}

bool WalWriter::append(uint64_t epoch,
                       const engine::MutationQueue::Drained& batch) {
  if (failed_) return false;
  if (!ensure_segment(epoch)) return false;
  obs::ScopedSpan span(nullptr, "persist.append", epoch,
                       obs_ ? obs_->persist_append : nullptr);
  std::string rec = encode_record(epoch, batch);
  if (!file_->append(rec.data(), rec.size())) {
    failed_ = true;
    return false;
  }
  if (obs_) {
    obs_->stats.wal_records.fetch_add(1, std::memory_order_relaxed);
    obs_->stats.wal_bytes.fetch_add(rec.size(), std::memory_order_relaxed);
  }
  ++records_since_sync_;
  maybe_sync();
  return !failed_;
}

std::string WalReader::segment_name(uint64_t first_epoch) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "wal-%020" PRIu64 ".log", first_epoch);
  return buf;
}

bool WalReader::parse_segment_name(const std::string& name,
                                   uint64_t* first_epoch) {
  uint64_t e = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%20" SCNu64 ".log%n", &e, &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size())
    return false;
  *first_epoch = e;
  return true;
}

WalReader::Scan WalReader::scan(const std::string& bytes) {
  Scan s;
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return s;  // not a segment (ok stays false)
  {
    ByteReader hdr(bytes.data() + sizeof(kMagic), 4);
    if (hdr.u32() != kVersion) return s;
  }
  s.ok = true;
  size_t off = kHeaderBytes;
  while (off < bytes.size()) {
    // Frame: length + checksum, then the payload. Any shortfall or
    // checksum mismatch is the torn tail — stop, remember the valid
    // prefix, and let recovery truncate there.
    if (bytes.size() - off < 8) break;
    ByteReader frame(bytes.data() + off, 8);
    uint32_t len = frame.u32();
    uint32_t crc = frame.u32();
    if (bytes.size() - off - 8 < len) break;
    const char* payload = bytes.data() + off + 8;
    if (crc32c(payload, len) != crc) break;
    WalRecord rec;
    if (!parse_payload(payload, len, &rec)) break;  // payload/CRC length lie
    s.records.push_back(std::move(rec));
    off += 8 + len;
  }
  s.valid_bytes = off;
  s.torn = off != bytes.size();
  return s;
}

bool WalReader::decode_record(const std::string& bytes, WalRecord* out) {
  if (bytes.size() < 8) return false;
  ByteReader frame(bytes.data(), 8);
  uint32_t len = frame.u32();
  uint32_t crc = frame.u32();
  if (bytes.size() - 8 != len) return false;  // exactly one record
  const char* payload = bytes.data() + 8;
  if (crc32c(payload, len) != crc) return false;
  return parse_payload(payload, len, out);
}

}  // namespace dynsld::persist
