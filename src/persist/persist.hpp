// The durability plane's front half: the PersistenceManager that rides
// the service's flush path, and recover() — the crash-recovery entry
// point that turns a directory back into a running engine.
//
// Write side (all calls under the service's flush lock):
//
//   flush: drain -> log_batch(epoch, batch)  [WAL append, pre-apply]
//            -> apply -> publish -> on_publish(snapshot, next_ticket)
//                                   [checkpoint every K epochs, rotate
//                                    the WAL segment, compact history]
//
// log_batch also maintains the manager's live-edge table (the alive
// ticket -> (u, v, w) multiset), which is what checkpoints serialize so
// recovery can rebuild a REAL mutable engine through the normal
// mutation path instead of thawing a frozen replica.
//
// Read side: rehydrate(epoch) serves the AsOf{epoch} checkpoint tier —
// an LRU of snapshots decoded from checkpoint files, shared with the
// broker through QueryBroker::set_rehydrator. Only exact checkpoint
// epochs rehydrate; anything else in cold history is unavailable by
// contract (docs/DURABILITY.md).
//
// recover(cfg) replays a directory:
//
//   1. load the newest checkpoint that validates (corrupt ones fall
//      back to older files — checkpoints publish atomically);
//   2. re-insert its live edges under their original tickets, restore
//      the ticket floor, republish the checkpoint epoch;
//   3. scan WAL segments in order and re-enact each record through the
//      restore path, republishing the exact epoch sequence; a torn
//      tail record is truncated away (bounded loss: whatever the fsync
//      policy left volatile), and the segment resumes appending there;
//   4. attach a PersistenceManager positioned to continue — same
//      segment, same checkpoint cadence — and hand back the service.
//
// The recovered engine is bit-for-bit the logged one: same tickets,
// same endpoint-ledger resolution, same epoch numbers, same labels and
// histograms per republished epoch (crash-injection asserted in
// tests/test_persist.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/epoch.hpp"
#include "engine/mutation_queue.hpp"
#include "engine/sld_service.hpp"
#include "engine/stats.hpp"
#include "persist/checkpoint.hpp"
#include "persist/file_backend.hpp"
#include "persist/options.hpp"
#include "persist/wal.hpp"

namespace dynsld::persist {

/// The service's durability plane: WAL + checkpoint cadence +
/// compaction on the write side, the AsOf rehydration LRU on the read
/// side (see the header comment). Write-side methods are called under
/// the service's flush lock; rehydrate() has its own lock and runs on
/// the broker's dispatcher thread.
class PersistenceManager {
 public:
  /// Creates `opts.dir` if missing. `obs` (nullable) receives every
  /// persist counter and histogram.
  PersistenceManager(PersistOptions opts, std::shared_ptr<FileBackend> backend,
                     std::shared_ptr<engine::EngineObs> obs);

  /// Throw std::runtime_error when the directory already holds WAL or
  /// checkpoint files — a fresh service must not silently shadow
  /// durable state; resume it through recover() instead.
  void require_fresh() const;

  const PersistOptions& options() const { return opts_; }
  FileBackend& backend() { return *backend_; }

  /// WAL the batch that is about to become `epoch` (called after the
  /// drain, before the apply) and fold it into the live-edge table.
  void log_batch(uint64_t epoch, const engine::MutationQueue::Drained& batch);

  /// Checkpoint cadence hook, called after every publish: every
  /// `checkpoint_every` epochs, write ckpt-<epoch>.bin, rotate the WAL
  /// segment to <epoch + 1>, and compact history past the retention
  /// window. A failed checkpoint write retries at the next publish.
  void on_publish(const engine::EngineSnapshot& snap, uint64_t next_ticket);

  /// AsOf checkpoint tier: the snapshot of exactly `epoch`, from the
  /// LRU or decoded from ckpt-<epoch>.bin; null when no checkpoint at
  /// that epoch exists (or it fails validation).
  engine::EpochManager::Snap rehydrate(uint64_t epoch);

  /// Has the WAL writer poisoned itself on an I/O failure? (Appends
  /// are dropped from then on; tests use this to detect injected
  /// crash points.)
  bool wal_failed() const { return wal_.failed(); }

  /// Force a WAL sync now regardless of policy.
  bool sync_wal() { return wal_.sync(); }

  /// Honor the kInterval fsync deadline outside the append path (the
  /// service calls this from empty flushes and the writer's idle tick
  /// so a burst-then-silence workload never leaves the tail unsynced
  /// past the interval). No-op under other policies.
  bool sync_if_due() { return wal_.sync_if_due(); }

  // ---- recovery seeding (recover() drives these before attach) ----

  /// Seed one alive edge into the live-edge table.
  void seed_live(uint64_t ticket, vertex_id u, vertex_id v, double w) {
    live_[ticket] = Edge{u, v, w};
  }
  /// Drop a ticket from the live-edge table (replayed erase).
  void unseed_live(uint64_t ticket) { live_.erase(ticket); }
  /// The checkpoint epoch the cadence counts from.
  void set_last_checkpoint(uint64_t epoch) { last_checkpoint_epoch_ = epoch; }
  /// Epoch of the newest durable checkpoint (0 = none yet). Flush-lock
  /// domain; the replication source reads it from the publish tap to
  /// notice cadence checkpoints and prune its record ring.
  uint64_t last_checkpoint() const { return last_checkpoint_epoch_; }
  /// Resume appending to the (already truncated) newest segment.
  bool resume_segment(const std::string& name) {
    return wal_.open_existing(name);
  }
  /// Alive edges tracked for the next checkpoint (introspection).
  size_t live_edges() const { return live_.size(); }

 private:
  /// One live-edge table entry (the ticket is the map key).
  struct Edge {
    vertex_id u, v;
    double w;
  };

  PersistOptions opts_;
  std::shared_ptr<FileBackend> backend_;
  std::shared_ptr<engine::EngineObs> obs_;
  WalWriter wal_;
  CheckpointWriter ckpt_;
  // Alive ticket -> edge, ticket-ascending (= insertion order, which
  // is the order checkpoints serialize and recovery re-inserts).
  // Flush-lock domain, like the WAL writer.
  std::map<uint64_t, Edge> live_;
  uint64_t last_checkpoint_epoch_ = 0;

  // AsOf rehydration LRU, most-recent first (own lock: dispatcher-
  // thread reads run concurrently with flush-side appends).
  std::mutex cache_mu_;
  std::list<std::pair<uint64_t, engine::EpochManager::Snap>> cache_;
};

/// What recover() reconstructed.
struct RecoverResult {
  /// The recovered engine, persistence attached and positioned to
  /// append. The background writer is NOT started (mirror of the
  /// constructor's contract).
  std::unique_ptr<engine::SldService> service;
  /// Epoch of the checkpoint replay started from (0 = none existed).
  uint64_t checkpoint_epoch = 0;
  /// Last epoch republished — the service's current epoch.
  uint64_t tip_epoch = 0;
  /// WAL records re-enacted past the checkpoint.
  uint64_t records_replayed = 0;
  /// A torn tail (or headerless partial segment) was truncated away.
  bool torn_tail_truncated = false;
};

/// Rebuild a service from `cfg.persist.dir` (see the header comment
/// for the protocol). `cfg` must have persistence enabled; an empty or
/// missing directory recovers to a fresh epoch-0 engine. Throws
/// std::invalid_argument when cfg.persist.dir is empty.
RecoverResult recover(engine::ServiceConfig cfg,
                      std::shared_ptr<FileBackend> backend = nullptr);

}  // namespace dynsld::persist
