#include "msf/dynamic_msf.hpp"

#include <cassert>
#include <unordered_map>

#include "dendrogram/static_sld.hpp"

namespace dynsld {

DynamicClustering::DynamicClustering(vertex_id n, SpineIndex index)
    : n_(n), sld_(n, index), nontree_(n) {}

void DynamicClustering::add_nontree(graph_edge g) {
  nontree_[edges_[g].u].insert(grank(g));
  nontree_[edges_[g].v].insert(grank(g));
}

void DynamicClustering::remove_nontree(graph_edge g) {
  nontree_[edges_[g].u].erase(grank(g));
  nontree_[edges_[g].v].erase(grank(g));
}

void DynamicClustering::bind_tree(graph_edge g, edge_id sld_id) {
  edges_[g].sld_id = sld_id;
  if (sld_to_graph_.size() <= sld_id) sld_to_graph_.resize(sld_id + 1);
  sld_to_graph_[sld_id] = g;
}

void DynamicClustering::make_tree(graph_edge g) {
  GraphEdge& e = edges_[g];
  // Per-theorem dispatch for the single-edge path: the output-sensitive
  // insertion (Thm 1.2) needs a spine index; fall back to the walk
  // (Thm 1.1) without one. Both yield the identical dendrogram.
  edge_id id = sld_.spine_index_kind() != SpineIndex::kPointer
                   ? sld_.insert_output_sensitive(e.u, e.v, e.w)
                   : sld_.insert(e.u, e.v, e.w);
  bind_tree(g, id);
}

DynamicClustering::graph_edge DynamicClustering::alloc_handle(vertex_id u,
                                                              vertex_id v,
                                                              double w) {
  assert(u < n_ && v < n_ && u != v);
  graph_edge g;
  if (!free_ids_.empty()) {
    g = free_ids_.back();
    free_ids_.pop_back();
  } else {
    g = static_cast<graph_edge>(edges_.size());
    edges_.emplace_back();
  }
  edges_[g] = GraphEdge{u, v, w, kNoEdge, true};
  ++num_alive_;
  return g;
}

void DynamicClustering::release_handle(graph_edge g) {
  edges_[g] = GraphEdge{};
  --num_alive_;
  free_ids_.push_back(g);
}

void DynamicClustering::route_insert(graph_edge g) {
  const GraphEdge& e = edges_[g];
  if (!sld_.connected(e.u, e.v)) {
    make_tree(g);
    return;
  }
  // Cycle: compare against the heaviest tree edge on the u..v path,
  // under the (weight, graph id) total order.
  WeightedEdge heavy = sld_.max_edge_on_path(e.u, e.v);
  graph_edge hg = sld_to_graph_[heavy.id];
  if (grank(g) < grank(hg)) {
    sld_.erase(heavy.id);
    edges_[hg].sld_id = kNoEdge;
    add_nontree(hg);
    make_tree(g);
  } else {
    add_nontree(g);
  }
}

DynamicClustering::graph_edge DynamicClustering::insert_edge(vertex_id u,
                                                             vertex_id v,
                                                             double w) {
  graph_edge g = alloc_handle(u, v, w);
  route_insert(g);
  return g;
}

std::vector<DynamicClustering::graph_edge> DynamicClustering::insert_edges(
    std::span<const EdgeUpdate> batch) {
  std::vector<graph_edge> out;
  out.reserve(batch.size());
  if (batch.size() == 1) {
    out.push_back(insert_edge(batch[0].u, batch[0].v, batch[0].w));
    return out;
  }
  for (const EdgeUpdate& e : batch) out.push_back(alloc_handle(e.u, e.v, e.w));

  // Classify by component: a local union-find keyed on the ephemeral
  // component representatives of the endpoints. Edges joining two
  // distinct components (considering earlier accepted batch edges) are
  // guaranteed MSF edges and form an acyclic batch for Thm 1.5; the
  // rest close cycles and take the sequential swap path afterwards.
  std::unordered_map<int, vertex_id> comp;  // lct root -> dsu slot
  UnionFind dsu(2 * batch.size());
  vertex_id next_slot = 0;
  auto slot_of = [&](vertex_id x) {
    auto [it, fresh] = comp.try_emplace(sld_.component_id(x), next_slot);
    if (fresh) ++next_slot;
    return it->second;
  };
  std::vector<DynSLD::EdgeInsert> tree;
  std::vector<size_t> tree_pos;
  std::vector<graph_edge> fallback;
  for (size_t i = 0; i < batch.size(); ++i) {
    vertex_id cu = dsu.find(slot_of(batch[i].u));
    vertex_id cv = dsu.find(slot_of(batch[i].v));
    if (cu != cv) {
      dsu.unite(cu, cv);
      tree.push_back({batch[i].u, batch[i].v, batch[i].w});
      tree_pos.push_back(i);
    } else {
      fallback.push_back(out[i]);
    }
  }
  if (!tree.empty()) {
    std::vector<edge_id> ids = sld_.insert_batch(tree);
    for (size_t j = 0; j < ids.size(); ++j) bind_tree(out[tree_pos[j]], ids[j]);
  }
  for (graph_edge g : fallback) route_insert(g);
  return out;
}

void DynamicClustering::erase_edges(std::span<const graph_edge> batch) {
  if (batch.size() == 1) {
    erase_edge(batch[0]);
    return;
  }
  size_t nontree_alive = num_alive_ - sld_.num_edges();
  std::vector<edge_id> tree_ids;
  std::vector<graph_edge> tree_g;
  size_t nontree_erased = 0;
  for (graph_edge g : batch) {
    assert(edge_alive(g));
    if (edges_[g].sld_id == kNoEdge) {
      remove_nontree(g);
      release_handle(g);
      ++nontree_erased;
    } else {
      tree_ids.push_back(edges_[g].sld_id);
      tree_g.push_back(g);
    }
  }
  if (tree_g.empty()) return;
  if (nontree_alive == nontree_erased) {
    // Pure forest after the non-tree removals: no replacement edge can
    // exist, so all cuts go through one batch deletion (Thm 1.5).
    sld_.erase_batch(tree_ids);
    for (graph_edge g : tree_g) release_handle(g);
    return;
  }
  // Replacement edges may cross several of the batch's cuts; process
  // tree deletions one at a time so each replacement search sees the
  // true connectivity (the classical Holm et al. discipline).
  for (graph_edge g : tree_g) erase_edge(g);
}

void DynamicClustering::find_replacement(vertex_id u, vertex_id v) {
  // Lockstep BFS over tree adjacency to find the smaller component.
  std::vector<vertex_id> comp[2] = {{u}, {v}};
  std::set<vertex_id> seen[2] = {{u}, {v}};
  size_t head[2] = {0, 0};
  int small = -1;
  while (true) {
    bool progressed = false;
    for (int s = 0; s < 2; ++s) {
      if (head[s] >= comp[s].size()) {
        small = s;
        break;
      }
      vertex_id x = comp[s][head[s]++];
      for (const Rank& r : sld_.incident_edges(x)) {
        vertex_id y = sld_.edge(r.id).other(x);
        if (seen[s].insert(y).second) comp[s].push_back(y);
      }
      progressed = true;
    }
    if (small >= 0) break;
    if (!progressed) break;
  }
  if (small < 0) small = comp[0].size() <= comp[1].size() ? 0 : 1;
  // Minimum non-tree edge with exactly one endpoint in the small side.
  // Per vertex, the incident sets are rank-ordered, so the first
  // crossing entry is that vertex's best candidate.
  Rank best{0, kNoGraphEdge};
  bool found = false;
  for (vertex_id x : comp[small]) {
    for (const Rank& r : nontree_[x]) {
      graph_edge g = static_cast<graph_edge>(r.id);
      const GraphEdge& ge = edges_[g];
      vertex_id y = ge.u == x ? ge.v : ge.u;
      if (seen[small].count(y)) continue;  // internal to the small side
      if (!found || r < best) {
        best = r;
        found = true;
      }
      break;
    }
  }
  if (found) {
    graph_edge g = static_cast<graph_edge>(best.id);
    remove_nontree(g);
    make_tree(g);
  }
}

void DynamicClustering::erase_edge(graph_edge g) {
  assert(edge_alive(g));
  GraphEdge e = edges_[g];
  if (e.sld_id == kNoEdge) {
    remove_nontree(g);
  } else {
    sld_.erase(e.sld_id);
  }
  release_handle(g);
  if (e.sld_id != kNoEdge) find_replacement(e.u, e.v);
}

std::vector<WeightedEdge> DynamicClustering::all_edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(num_alive_);
  for (graph_edge g = 0; g < edges_.size(); ++g) {
    const GraphEdge& e = edges_[g];
    if (e.alive) out.push_back(WeightedEdge{e.u, e.v, e.w, g});
  }
  return out;
}

std::vector<WeightedEdge> DynamicClustering::forest_edges() const {
  std::vector<WeightedEdge> out;
  for (graph_edge g = 0; g < edges_.size(); ++g) {
    const GraphEdge& e = edges_[g];
    if (e.alive && e.sld_id != kNoEdge) {
      out.push_back(WeightedEdge{e.u, e.v, e.w, g});
    }
  }
  return out;
}

}  // namespace dynsld
