#include "msf/dynamic_msf.hpp"

#include <cassert>

namespace dynsld {

DynamicClustering::DynamicClustering(vertex_id n, SpineIndex index)
    : n_(n), sld_(n, index), nontree_(n) {}

void DynamicClustering::add_nontree(graph_edge g) {
  nontree_[edges_[g].u].insert(grank(g));
  nontree_[edges_[g].v].insert(grank(g));
}

void DynamicClustering::remove_nontree(graph_edge g) {
  nontree_[edges_[g].u].erase(grank(g));
  nontree_[edges_[g].v].erase(grank(g));
}

void DynamicClustering::make_tree(graph_edge g) {
  GraphEdge& e = edges_[g];
  e.sld_id = sld_.insert(e.u, e.v, e.w);
  if (sld_to_graph_.size() <= e.sld_id) sld_to_graph_.resize(e.sld_id + 1);
  sld_to_graph_[e.sld_id] = g;
}

DynamicClustering::graph_edge DynamicClustering::insert_edge(vertex_id u,
                                                             vertex_id v,
                                                             double w) {
  assert(u < n_ && v < n_ && u != v);
  graph_edge g;
  if (!free_ids_.empty()) {
    g = free_ids_.back();
    free_ids_.pop_back();
  } else {
    g = static_cast<graph_edge>(edges_.size());
    edges_.emplace_back();
  }
  edges_[g] = GraphEdge{u, v, w, kNoEdge, true};
  ++num_alive_;

  if (!sld_.connected(u, v)) {
    make_tree(g);
    return g;
  }
  // Cycle: compare against the heaviest tree edge on the u..v path,
  // under the (weight, graph id) total order.
  WeightedEdge heavy = sld_.max_edge_on_path(u, v);
  graph_edge hg = sld_to_graph_[heavy.id];
  if (grank(g) < grank(hg)) {
    sld_.erase(heavy.id);
    edges_[hg].sld_id = kNoEdge;
    add_nontree(hg);
    make_tree(g);
  } else {
    add_nontree(g);
  }
  return g;
}

void DynamicClustering::find_replacement(vertex_id u, vertex_id v) {
  // Lockstep BFS over tree adjacency to find the smaller component.
  std::vector<vertex_id> comp[2] = {{u}, {v}};
  std::set<vertex_id> seen[2] = {{u}, {v}};
  size_t head[2] = {0, 0};
  int small = -1;
  while (true) {
    bool progressed = false;
    for (int s = 0; s < 2; ++s) {
      if (head[s] >= comp[s].size()) {
        small = s;
        break;
      }
      vertex_id x = comp[s][head[s]++];
      for (const Rank& r : sld_.incident_edges(x)) {
        vertex_id y = sld_.edge(r.id).other(x);
        if (seen[s].insert(y).second) comp[s].push_back(y);
      }
      progressed = true;
    }
    if (small >= 0) break;
    if (!progressed) break;
  }
  if (small < 0) small = comp[0].size() <= comp[1].size() ? 0 : 1;
  // Minimum non-tree edge with exactly one endpoint in the small side.
  // Per vertex, the incident sets are rank-ordered, so the first
  // crossing entry is that vertex's best candidate.
  Rank best{0, kNoGraphEdge};
  bool found = false;
  for (vertex_id x : comp[small]) {
    for (const Rank& r : nontree_[x]) {
      graph_edge g = static_cast<graph_edge>(r.id);
      const GraphEdge& ge = edges_[g];
      vertex_id y = ge.u == x ? ge.v : ge.u;
      if (seen[small].count(y)) continue;  // internal to the small side
      if (!found || r < best) {
        best = r;
        found = true;
      }
      break;
    }
  }
  if (found) {
    graph_edge g = static_cast<graph_edge>(best.id);
    remove_nontree(g);
    make_tree(g);
  }
}

void DynamicClustering::erase_edge(graph_edge g) {
  assert(edge_alive(g));
  GraphEdge e = edges_[g];
  if (e.sld_id == kNoEdge) {
    remove_nontree(g);
  } else {
    sld_.erase(e.sld_id);
  }
  edges_[g] = GraphEdge{};
  --num_alive_;
  free_ids_.push_back(g);
  if (e.sld_id != kNoEdge) find_replacement(e.u, e.v);
}

std::vector<WeightedEdge> DynamicClustering::forest_edges() const {
  std::vector<WeightedEdge> out;
  for (graph_edge g = 0; g < edges_.size(); ++g) {
    const GraphEdge& e = edges_[g];
    if (e.alive && e.sld_id != kNoEdge) {
      out.push_back(WeightedEdge{e.u, e.v, e.w, g});
    }
  }
  return out;
}

}  // namespace dynsld
