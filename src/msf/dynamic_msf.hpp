// End-to-end fully-dynamic single-linkage clustering (Problem 2):
// a dynamic weighted *graph* whose minimum spanning forest is maintained
// and fed into DynSLD, so the explicit dendrogram of the graph is
// available after every edge insertion/deletion.
//
// MSF maintenance (DESIGN.md substitution #4 for Holm et al. [33] /
// Tseng et al. [48]):
//   - insertion: if the endpoints are connected, find the maximum edge
//     on the tree path (O(log n) path query); if the new edge is
//     lighter, swap (one DynSLD erase + insert), else store it as a
//     non-tree edge. O(log n + dendrogram update).
//   - deletion of a non-tree edge: O(log deg).
//   - deletion of a tree edge: cut, then scan the smaller component's
//     non-tree edges for the minimum replacement (lockstep BFS decides
//     the smaller side). Worst-case O(smaller side); the forest is
//     always the exact MSF under the (weight, graph-edge-id) order.
//
// Graph edges have their own id space (handles returned by insert_edge);
// the underlying forest-edge ids are internal.
#pragma once

#include <set>
#include <span>
#include <vector>

#include "dynsld/dyn_sld.hpp"

namespace dynsld {

class DynamicClustering {
 public:
  using graph_edge = uint32_t;
  static constexpr graph_edge kNoGraphEdge = static_cast<graph_edge>(-1);

  explicit DynamicClustering(vertex_id n, SpineIndex index = SpineIndex::kLct);

  vertex_id num_vertices() const { return n_; }
  size_t num_edges() const { return num_alive_; }
  size_t num_tree_edges() const { return sld_.num_edges(); }

  /// Insert a weighted graph edge; returns its handle.
  graph_edge insert_edge(vertex_id u, vertex_id v, double w);

  /// Delete a graph edge by handle.
  void erase_edge(graph_edge g);

  // ---- batch front-end (engine flush path) ----

  struct EdgeUpdate {
    vertex_id u;
    vertex_id v;
    double w;
  };

  /// Batch insertion, dispatching per the paper's theorems by batch
  /// shape: a singleton goes through the single-update path (which uses
  /// the output-sensitive Thm 1.2 insertion when a spine index is
  /// present, the Thm 1.1 walk otherwise); a larger batch is classified
  /// by component so the acyclic subset runs through
  /// DynSLD::insert_batch (Thm 1.5) and only cycle-closing edges take
  /// the sequential swap path. Returns handles aligned with `batch`.
  std::vector<graph_edge> insert_edges(std::span<const EdgeUpdate> batch);

  /// Batch deletion: non-tree deletions are local; tree deletions go
  /// through DynSLD::erase_batch (Thm 1.5) when no non-tree edge
  /// survives (pure forest: no replacement can exist), and otherwise
  /// one at a time with a replacement search per cut.
  void erase_edges(std::span<const graph_edge> batch);

  bool edge_alive(graph_edge g) const {
    return g < edges_.size() && edges_[g].alive;
  }

  /// Is g currently part of the minimum spanning forest?
  bool is_tree_edge(graph_edge g) const {
    return edge_alive(g) && edges_[g].sld_id != kNoEdge;
  }

  /// Endpoints and weight of a live edge (id field = g).
  WeightedEdge edge(graph_edge g) const {
    const GraphEdge& e = edges_[g];
    return WeightedEdge{e.u, e.v, e.w, g};
  }

  /// The MSF edges as (u, v, w, graph id).
  std::vector<WeightedEdge> forest_edges() const;

  /// The maintained dendrogram of the graph (node ids are internal
  /// forest-edge ids; see sld() for queries).
  const Dendrogram& dendrogram() const { return sld_.dendrogram(); }

  /// The underlying DynSLD, for the §6.1 queries (same_cluster,
  /// cluster_size, cluster_report, flat_clustering).
  DynSLD& sld() { return sld_; }

  /// Const view of the maintained DynSLD (engine snapshot export).
  const DynSLD& sld() const { return sld_; }

  /// Every alive graph edge — tree and non-tree — with id = handle.
  /// Used by the engine to capture an epoch's exact edge set for
  /// verification against the static Kruskal reference.
  std::vector<WeightedEdge> all_edges() const;

 private:
  struct GraphEdge {
    vertex_id u = kNoVertex;
    vertex_id v = kNoVertex;
    double w = 0.0;
    edge_id sld_id = kNoEdge;  // forest edge id when in the MSF
    bool alive = false;
  };

  Rank grank(graph_edge g) const { return Rank{edges_[g].w, g}; }
  void add_nontree(graph_edge g);
  void remove_nontree(graph_edge g);
  void make_tree(graph_edge g);
  /// Allocate a handle for (u, v, w) without routing it anywhere yet.
  graph_edge alloc_handle(vertex_id u, vertex_id v, double w);
  /// Route a freshly allocated edge: tree insert, swap, or non-tree.
  void route_insert(graph_edge g);
  /// Record that graph edge g is backed by forest edge `sld_id`.
  void bind_tree(graph_edge g, edge_id sld_id);
  /// Free a handle whose forest/non-tree residue is already gone.
  void release_handle(graph_edge g);
  /// Find and reinstate the minimum replacement edge across the cut
  /// separating u's and v's components (after a tree-edge removal).
  void find_replacement(vertex_id u, vertex_id v);

  vertex_id n_;
  DynSLD sld_;
  std::vector<GraphEdge> edges_;
  std::vector<graph_edge> free_ids_;
  size_t num_alive_ = 0;
  // Non-tree edges incident to each vertex, ordered by (weight, id).
  std::vector<std::set<Rank>> nontree_;
  // Reverse map: forest edge id -> graph edge id.
  std::vector<graph_edge> sld_to_graph_;
};

}  // namespace dynsld
