// The explicit single-linkage dendrogram (SLD) data structure of §2.1:
// a rooted binary forest with one internal node per edge of the input
// forest, stored as a parent-pointer array indexed by edge id. Leaves
// (input vertices) are implicit — a vertex's conceptual parent is its
// minimum-rank incident edge. We additionally maintain the (at most
// two) child pointers of every node so that subtree operations (cluster
// report, §6.1) and structural validation are possible; each parent
// change updates them in O(1).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace dynsld {

class Dendrogram {
 public:
  struct Node {
    vertex_id u = kNoVertex;          // endpoints of the edge this node merges
    vertex_id v = kNoVertex;
    double weight = 0.0;
    edge_id parent = kNoEdge;         // next (higher-rank) cluster containing this one
    edge_id child[2] = {kNoEdge, kNoEdge};
    bool alive = false;
  };

  /// Structural-change journal: when enabled, every node add/remove and
  /// parent-pointer change since the last clear is recorded so that an
  /// incremental snapshot builder can patch the previous epoch's arrays
  /// instead of rebuilding them. Entries are raw (not deduplicated): a
  /// node may appear several times and in several lists; consumers
  /// reconcile against the current dendrogram state. Once `touched()`
  /// exceeds the configured cap the journal marks itself overflowed and
  /// drops its contents — the batch clearly touched too much for a patch
  /// to beat a rebuild, so there is no point paying for the log.
  struct Journal {
    struct Removed {
      edge_id e;
      vertex_id u, v;  // endpoints at removal time (node is dead now)
    };
    bool enabled = false;
    bool overflowed = false;
    size_t cap = 0;
    std::vector<edge_id> added;
    std::vector<Removed> removed;
    std::vector<edge_id> parent_changed;

    size_t touched() const {
      return added.size() + removed.size() + parent_changed.size();
    }
    void clear() {
      overflowed = false;
      added.clear();
      removed.clear();
      parent_changed.clear();
    }
  };

  Dendrogram() = default;
  explicit Dendrogram(size_t capacity) : nodes_(capacity) {}

  /// Start journaling structural changes, dropping the log whenever more
  /// than `cap` raw entries accumulate between clears.
  void enable_journal(size_t cap) {
    journal_.enabled = true;
    journal_.cap = cap;
    journal_.clear();
  }

  /// The journal since the last clear (meaningful only when enabled).
  const Journal& journal() const { return journal_; }

  /// Reset the journal at a consumption point (e.g. after a snapshot).
  void clear_journal() { journal_.clear(); }

  size_t capacity() const { return nodes_.size(); }
  size_t size() const { return num_alive_; }

  bool alive(edge_id e) const {
    return e < nodes_.size() && nodes_[e].alive;
  }

  const Node& node(edge_id e) const {
    assert(alive(e));
    return nodes_[e];
  }

  Rank rank(edge_id e) const { return Rank{nodes_[e].weight, e}; }
  edge_id parent(edge_id e) const { return nodes_[e].parent; }
  WeightedEdge edge(edge_id e) const {
    const Node& nd = nodes_[e];
    return WeightedEdge{nd.u, nd.v, nd.weight, e};
  }

  /// Create the node for edge `e` (parentless, childless). e.id chooses
  /// the slot; the array grows as needed.
  void add_node(const WeightedEdge& e) {
    if (e.id >= nodes_.size()) nodes_.resize(static_cast<size_t>(e.id) + 1);
    Node& nd = nodes_[e.id];
    assert(!nd.alive);
    nd = Node{};
    nd.u = e.u;
    nd.v = e.v;
    nd.weight = e.weight;
    nd.alive = true;
    ++num_alive_;
    if (journal_.enabled && !journal_.overflowed) {
      journal_.added.push_back(e.id);
      journal_overflow_check();
    }
  }

  /// Remove a node. The caller must have already detached it (no parent,
  /// no children) — deletion algorithms relink neighbors first.
  void remove_node(edge_id e) {
    Node& nd = nodes_[e];
    assert(nd.alive);
    assert(nd.parent == kNoEdge);
    assert(nd.child[0] == kNoEdge && nd.child[1] == kNoEdge);
    if (journal_.enabled && !journal_.overflowed) {
      journal_.removed.push_back({e, nd.u, nd.v});
      journal_overflow_check();
    }
    nd.alive = false;
    --num_alive_;
  }

  /// Change the parent pointer of `e` to `p` (possibly kNoEdge),
  /// maintaining child lists on both sides.
  void set_parent(edge_id e, edge_id p) {
    Node& nd = nodes_[e];
    assert(nd.alive);
    if (nd.parent == p) return;
    if (journal_.enabled && !journal_.overflowed) {
      journal_.parent_changed.push_back(e);
      journal_overflow_check();
    }
    if (nd.parent != kNoEdge) detach_child(nd.parent, e);
    nd.parent = p;
    if (p != kNoEdge) attach_child(p, e);
  }

  /// Apply a set of parent-pointer changes {child -> new parent} in two
  /// phases (detach all, then attach all). Unlike repeated set_parent,
  /// this is insensitive to ordering: update algorithms that relink
  /// several chains (deletion unmerge, batch star merges) may produce
  /// changes whose pairwise application order would transiently give a
  /// node three children. Duplicate entries must agree on the target.
  void apply_parent_changes(
      std::span<const std::pair<edge_id, edge_id>> changes) {
    if (journal_.enabled && !journal_.overflowed) {
      // Record before mutating: after phase 1 the old parents are gone,
      // so the no-op filter (parent already == target) must run now.
      for (const auto& [c, p] : changes) {
        if (nodes_[c].parent == p) continue;
        journal_.parent_changed.push_back(c);
        journal_overflow_check();
        if (journal_.overflowed) break;
      }
    }
    for (const auto& [c, p] : changes) {
      Node& nd = nodes_[c];
      assert(nd.alive);
      if (nd.parent != p && nd.parent != kNoEdge) {
        detach_child(nd.parent, c);
        nd.parent = kNoEdge;
      }
    }
    for (const auto& [c, p] : changes) {
      Node& nd = nodes_[c];
      if (nd.parent == p) continue;  // duplicate or unchanged entry
      assert(nd.parent == kNoEdge);
      nd.parent = p;
      if (p != kNoEdge) attach_child(p, c);
    }
  }

  /// Number of internal-node children (0..2).
  int num_children(edge_id e) const {
    const Node& nd = nodes_[e];
    return (nd.child[0] != kNoEdge ? 1 : 0) + (nd.child[1] != kNoEdge ? 1 : 0);
  }

  /// The root of the dendrogram tree containing e (O(spine length)).
  edge_id root_of(edge_id e) const {
    while (nodes_[e].parent != kNoEdge) e = nodes_[e].parent;
    return e;
  }

  /// Spine of e (§2.1): the node-to-root path, e first. O(length).
  std::vector<edge_id> spine(edge_id e) const {
    std::vector<edge_id> s;
    for (edge_id x = e; x != kNoEdge; x = nodes_[x].parent) s.push_back(x);
    return s;
  }

  /// Height: length of the longest leaf-to-root chain of internal nodes.
  /// O(size). (h in the paper's bounds; h <= n-1.)
  size_t height() const {
    std::vector<uint32_t> depth(nodes_.size(), 0);
    size_t best = 0;
    // Depth of a node = 1 + max over ancestors processed lazily: walk up
    // with path memoization.
    std::vector<edge_id> stack;
    std::vector<bool> done(nodes_.size(), false);
    for (edge_id e = 0; e < nodes_.size(); ++e) {
      if (!nodes_[e].alive || done[e]) continue;
      stack.clear();
      edge_id x = e;
      while (x != kNoEdge && !done[x]) {
        stack.push_back(x);
        x = nodes_[x].parent;
      }
      uint32_t d = (x == kNoEdge) ? 0 : depth[x];
      while (!stack.empty()) {
        edge_id y = stack.back();
        stack.pop_back();
        depth[y] = ++d;
        done[y] = true;
        // depth counted from root=1 downward; height = max depth.
        best = std::max(best, static_cast<size_t>(depth[y]));
      }
    }
    return best;
  }

  /// Structural equality on the alive node set (ids, endpoints, weights,
  /// parents). Child order is not significant.
  friend bool operator==(const Dendrogram& a, const Dendrogram& b) {
    size_t cap = std::max(a.nodes_.size(), b.nodes_.size());
    for (edge_id e = 0; e < cap; ++e) {
      bool aa = a.alive(e), bb = b.alive(e);
      if (aa != bb) return false;
      if (!aa) continue;
      const Node& x = a.nodes_[e];
      const Node& y = b.nodes_[e];
      if (x.parent != y.parent || x.weight != y.weight) return false;
      if (!((x.u == y.u && x.v == y.v) || (x.u == y.v && x.v == y.u))) return false;
    }
    return true;
  }

 private:
  void attach_child(edge_id p, edge_id c) {
    Node& pn = nodes_[p];
    if (pn.child[0] == kNoEdge) {
      pn.child[0] = c;
    } else {
      assert(pn.child[1] == kNoEdge && "a dendrogram node has at most 2 children");
      pn.child[1] = c;
    }
  }

  void detach_child(edge_id p, edge_id c) {
    Node& pn = nodes_[p];
    if (pn.child[0] == c) {
      pn.child[0] = pn.child[1];
      pn.child[1] = kNoEdge;
    } else {
      assert(pn.child[1] == c);
      pn.child[1] = kNoEdge;
    }
  }

  void journal_overflow_check() {
    if (journal_.touched() <= journal_.cap) return;
    // Keep the flag but drop the payload: an overflowed journal only
    // ever answers "patching is not viable".
    journal_.overflowed = true;
    journal_.added.clear();
    journal_.removed.clear();
    journal_.parent_changed.clear();
  }

  std::vector<Node> nodes_;
  size_t num_alive_ = 0;
  Journal journal_;
};

}  // namespace dynsld
