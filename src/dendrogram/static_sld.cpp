#include "dendrogram/static_sld.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace dynsld {

Dendrogram build_kruskal(vertex_id n, std::span<const WeightedEdge> edges) {
  std::vector<size_t> order(edges.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return edges[a].rank() < edges[b].rank();
  });

  edge_id max_id = 0;
  for (const auto& e : edges) max_id = std::max(max_id, e.id);
  Dendrogram d(edges.empty() ? 0 : static_cast<size_t>(max_id) + 1);

  UnionFind uf(n);
  // top[root vertex] = dendrogram node currently at the top of that
  // component's chain (kNoEdge while the component has no edges yet).
  std::vector<edge_id> top(n, kNoEdge);

  for (size_t idx : order) {
    const WeightedEdge& e = edges[idx];
    d.add_node(e);
    vertex_id ra = uf.find(e.u);
    vertex_id rb = uf.find(e.v);
    // The input must be a forest: an edge never joins a component to itself.
    assert(ra != rb && "build_kruskal input must be acyclic");
    if (top[ra] != kNoEdge) d.set_parent(top[ra], e.id);
    if (top[rb] != kNoEdge) d.set_parent(top[rb], e.id);
    vertex_id r = uf.unite(ra, rb);
    top[r] = e.id;
  }
  return d;
}

}  // namespace dynsld
