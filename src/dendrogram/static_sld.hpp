// Static SLD construction.
//
// build_kruskal: the classical O(m log m) algorithm (sort by rank, then
// union-find, tracking the current top dendrogram node of every
// component). This is both the ground-truth oracle for every dynamic
// algorithm's tests and the "static recomputation" baseline the paper's
// update bounds are compared against (the optimal static algorithm of
// [19] is O(n log h); sorted Kruskal is O(n log n) and its post-sort
// phase is O(n alpha(n)) — see DESIGN.md substitution #3).
//
// build_parallel: parallel static construction that sorts in parallel
// and then batch-inserts all edges using the Theorem 1.5 machinery
// (declared here, defined in updates_batch.cpp to avoid a cycle).
#pragma once

#include <span>

#include "dendrogram/dendrogram.hpp"
#include "dynsld/spine_index.hpp"
#include "graph/types.hpp"

namespace dynsld {

/// Ground-truth static SLD: Kruskal-style, O(m log m).
/// Edge ids must be distinct; they index the dendrogram nodes.
Dendrogram build_kruskal(vertex_id n, std::span<const WeightedEdge> edges);

/// Parallel static construction: batch-insert every edge into an empty
/// DynSLD with the Theorem 1.5 machinery (parallel sort happens inside
/// the star merges). Node ids are the edge positions, so the result is
/// directly comparable with build_kruskal on id-aligned input.
/// Defined in dynsld/updates_batch.cpp.
Dendrogram build_batch_parallel(vertex_id n, std::span<const WeightedEdge> edges,
                                SpineIndex index = SpineIndex::kPointer);

/// Union-find with path halving; exposed for reuse (tests, MSF).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<vertex_id>(i);
  }

  vertex_id find(vertex_id x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Union by attaching a's root under b's root; returns the new root.
  vertex_id unite(vertex_id a, vertex_id b) {
    vertex_id ra = find(a), rb = find(b);
    if (ra == rb) return ra;
    parent_[ra] = rb;
    return rb;
  }

  bool connected(vertex_id a, vertex_id b) { return find(a) == find(b); }

 private:
  std::vector<vertex_id> parent_;
};

}  // namespace dynsld
