// Dynamic Cartesian trees (§6.2).
//
// The Cartesian tree of a sequence A equals the single-linkage
// dendrogram of a path graph whose edge weights are A's entries ([19];
// max-heap order on values, in-order traversal = A). This class
// maintains that equivalence on top of DynSLD:
//   - leaf updates / appends: O(log n) worst-case (c = O(1) output-
//     sensitive insertion; improves the O(log n) *amortized* bounds of
//     Demaine et al. and Bialynicka-Birula–Grossi),
//   - arbitrary position inserts/deletes via the vertex-split / edge-
//     contraction reduction, with DynSLD update costs,
//   - range-max queries (RMQ) in O(log n) via path-max.
//
// Elements are identified by stable handles. The constructor takes a
// lifetime budget of insertions (each insertion consumes one fresh path
// vertex; DynSLD's vertex set is fixed at construction).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dynsld/dyn_sld.hpp"

namespace dynsld {

class CartesianTree {
 public:
  using handle = edge_id;
  static constexpr handle kNoHandle = kNoEdge;

  /// `max_insertions`: total number of element insertions this instance
  /// will ever perform (push/insert calls), used to size the vertex set.
  explicit CartesianTree(size_t max_insertions,
                         SpineIndex index = SpineIndex::kLct);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Append at the end / front of the sequence. O(log n) worst case.
  handle push_back(double value);
  handle push_front(double value);

  /// Insert right after element h (arbitrary position).
  handle insert_after(handle h, double value);

  /// Remove an element from anywhere in the sequence.
  void erase(handle h);

  double value(handle h) const { return sld_.edge(h).weight; }

  /// Max-heap Cartesian tree structure: parent has the larger value.
  handle parent(handle h) const { return sld_.dendrogram().parent(h); }
  handle root() const;

  /// The sequence, front to back. O(n).
  std::vector<handle> in_order() const;

  /// Handle of the maximum element in the inclusive range [l..r]
  /// (l must not come after r in sequence order). O(log n).
  handle range_max(handle l, handle r);

  /// Underlying dendrogram (= the Cartesian tree; node id = handle).
  const Dendrogram& tree() const { return sld_.dendrogram(); }

 private:
  vertex_id fresh_vertex();
  handle link_elem(vertex_id a, vertex_id b, double value);

  DynSLD sld_;
  vertex_id next_vertex_ = 0;
  size_t size_ = 0;
  // Path structure: for each element (edge id), its left/right path
  // vertices; for each vertex, the elements on its two sides.
  struct ElemEnds {
    vertex_id left = kNoVertex;
    vertex_id right = kNoVertex;
  };
  std::vector<ElemEnds> ends_;
  struct VertexSides {
    handle left = kNoHandle;
    handle right = kNoHandle;
  };
  std::vector<VertexSides> sides_;
  vertex_id head_ = kNoVertex;  // leftmost path vertex
  vertex_id tail_ = kNoVertex;  // rightmost path vertex
};

/// Classic O(n) stack construction of the (max) Cartesian tree of
/// `values`; returns the parent index of each element (size_t(-1) for
/// the root). Ties broken toward the earlier element, matching the
/// (weight, id) rank order when ids increase left to right.
std::vector<size_t> build_cartesian_parents(const std::vector<double>& values);

}  // namespace dynsld
