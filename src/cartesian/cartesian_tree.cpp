#include "cartesian/cartesian_tree.hpp"

#include <cassert>

namespace dynsld {

CartesianTree::CartesianTree(size_t max_insertions, SpineIndex index)
    : sld_(static_cast<vertex_id>(max_insertions + 1), index) {}

vertex_id CartesianTree::fresh_vertex() {
  assert(next_vertex_ < sld_.num_vertices() &&
         "CartesianTree insertion budget exhausted");
  vertex_id v = next_vertex_++;
  if (sides_.size() <= v) sides_.resize(v + 1);
  sides_[v] = VertexSides{};
  return v;
}

CartesianTree::handle CartesianTree::link_elem(vertex_id a, vertex_id b,
                                               double value) {
  handle e = sld_.spine_index_kind() == SpineIndex::kPointer
                 ? sld_.insert(a, b, value)
                 : sld_.insert_output_sensitive(a, b, value);
  if (ends_.size() <= e) ends_.resize(e + 1);
  ends_[e] = ElemEnds{a, b};
  sides_[a].right = e;
  sides_[b].left = e;
  ++size_;
  return e;
}

CartesianTree::handle CartesianTree::push_back(double value) {
  if (empty()) {
    vertex_id a = fresh_vertex();
    vertex_id b = fresh_vertex();
    head_ = a;
    tail_ = b;
    return link_elem(a, b, value);
  }
  vertex_id w = fresh_vertex();
  vertex_id t = tail_;
  tail_ = w;
  return link_elem(t, w, value);
}

CartesianTree::handle CartesianTree::push_front(double value) {
  if (empty()) return push_back(value);
  vertex_id w = fresh_vertex();
  vertex_id h = head_;
  head_ = w;
  return link_elem(w, h, value);
}

CartesianTree::handle CartesianTree::insert_after(handle h, double val) {
  assert(sld_.edge_alive(h));
  vertex_id b = ends_[h].right;
  handle g = sides_[b].right;
  if (g == kNoHandle) {
    // h is the last element: plain append.
    vertex_id m = fresh_vertex();
    tail_ = m;
    return link_elem(b, m, val);
  }
  // Vertex split (§6.2): replace g = (b, c) by new element (b, m) and
  // the rebuilt neighbor (m, c). The neighbor's handle is reassigned.
  vertex_id c = ends_[g].right;
  double gw = value(g);
  sld_.erase(g);
  --size_;
  vertex_id m = fresh_vertex();
  handle fresh = link_elem(b, m, val);
  link_elem(m, c, gw);
  return fresh;
}

void CartesianTree::erase(handle h) {
  assert(sld_.edge_alive(h));
  vertex_id u = ends_[h].left;
  vertex_id v = ends_[h].right;
  handle l = sides_[u].left;
  handle r = sides_[v].right;
  sld_.erase(h);
  --size_;
  if (l == kNoHandle && r == kNoHandle) {
    head_ = tail_ = kNoVertex;
    return;
  }
  if (l == kNoHandle) {  // first element
    head_ = v;
    sides_[v].left = kNoHandle;
    return;
  }
  if (r == kNoHandle) {  // last element
    tail_ = u;
    sides_[u].right = kNoHandle;
    return;
  }
  // Edge contraction (§6.2): rebuild the left neighbor l = (t, u) as
  // (t, v); vertex u leaves the path. l's handle is reassigned.
  vertex_id t = ends_[l].left;
  double lw = value(l);
  sld_.erase(l);
  --size_;
  link_elem(t, v, lw);
}

CartesianTree::handle CartesianTree::root() const {
  assert(!empty());
  return sld_.dendrogram().root_of(sides_[head_].right);
}

std::vector<CartesianTree::handle> CartesianTree::in_order() const {
  std::vector<handle> out;
  if (empty()) return out;
  for (handle e = sides_[head_].right; e != kNoHandle;) {
    out.push_back(e);
    e = sides_[ends_[e].right].right;
  }
  return out;
}

CartesianTree::handle CartesianTree::range_max(handle l, handle r) {
  return sld_.max_edge_on_path(ends_[l].left, ends_[r].right).id;
}

std::vector<size_t> build_cartesian_parents(const std::vector<double>& values) {
  std::vector<size_t> parent(values.size(), static_cast<size_t>(-1));
  std::vector<size_t> stack;
  for (size_t i = 0; i < values.size(); ++i) {
    size_t last = static_cast<size_t>(-1);
    while (!stack.empty() && values[stack.back()] < values[i]) {
      last = stack.back();
      stack.pop_back();
    }
    if (last != static_cast<size_t>(-1)) parent[last] = i;
    if (!stack.empty()) parent[i] = stack.back();
    stack.push_back(i);
  }
  return parent;
}

}  // namespace dynsld
