// Typed batch query surface of the read plane (§6.1 query set).
//
// A Query is one request struct per §6.1 query kind, closed over its
// threshold tau, wrapped in a std::variant. ClusterView::run() groups a
// batch by tau, resolves one ThresholdView per distinct threshold, and
// executes the groups in parallel — so the per-threshold merge work
// (cross-shard union-find + per-shard root resolution) is paid once per
// tau per epoch, no matter how many queries share it.
//
// QueryResult mirrors the request kinds positionally: bool for
// SameCluster, uint64_t for ClusterSize, std::vector<vertex_id> for
// ClusterReport and FlatClustering (member list / label array), and
// SizeHistogram for the histogram request.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "graph/types.hpp"

namespace dynsld::engine {

/// Are u and v in one cluster at threshold tau?
struct SameClusterQuery {
  vertex_id u, v;
  double tau;
};

/// Vertex count of u's cluster at threshold tau.
struct ClusterSizeQuery {
  vertex_id u;
  double tau;
};

/// All members of u's cluster at threshold tau.
struct ClusterReportQuery {
  vertex_id u;
  double tau;
};

/// Label array over all vertices; labels are member vertices, equal
/// within a cluster and arbitrary otherwise.
struct FlatClusteringQuery {
  double tau;
};

/// Distribution of cluster sizes at threshold tau (singletons included).
struct SizeHistogramQuery {
  double tau;
};

/// One typed request, closed over its threshold — the element of a
/// run() batch. Every alternative carries a `tau` field (the grouping
/// key, see query_tau).
using Query = std::variant<SameClusterQuery, ClusterSizeQuery,
                           ClusterReportQuery, FlatClusteringQuery,
                           SizeHistogramQuery>;

/// Cluster-size histogram: (size, number of clusters of that size),
/// size-ascending.
struct SizeHistogram {
  std::vector<std::pair<uint64_t, uint64_t>> bins;

  uint64_t num_clusters() const {
    uint64_t k = 0;
    for (const auto& [size, count] : bins) k += count;
    return k;
  }

  friend bool operator==(const SizeHistogram&, const SizeHistogram&) = default;
};

/// One answer, mirroring the request kinds positionally: bool for
/// SameCluster, uint64_t for ClusterSize, vector<vertex_id> for
/// ClusterReport (member list) and FlatClustering (label array),
/// SizeHistogram for the histogram request.
using QueryResult =
    std::variant<bool, uint64_t, std::vector<vertex_id>, SizeHistogram>;

/// The threshold a query closes over (the batch grouping key).
inline double query_tau(const Query& q) {
  return std::visit([](const auto& req) { return req.tau; }, q);
}

}  // namespace dynsld::engine
