// Typed query surface of the read plane (§6.1 query set) and the
// request envelopes of the asynchronous front door.
//
// A Query is one request struct per §6.1 query kind, closed over its
// threshold tau, wrapped in a std::variant. The batch executors
// (ClusterView::run, the QueryBroker's dispatcher) group queries by
// tau, resolve one ThresholdView per distinct threshold, and execute
// the groups in parallel — so the per-threshold merge work (cross-shard
// union-find + per-shard root resolution) is paid once per tau per
// epoch, no matter how many queries — or clients — share it.
//
// QueryResult mirrors the request kinds positionally: bool for
// SameCluster, uint64_t for ClusterSize / NumClusters,
// std::vector<vertex_id> for ClusterReport and FlatClustering (member
// list / label array), and SizeHistogram for the histogram request.
//
// QueryRequest is the broker envelope (broker.hpp): the typed Query
// payload plus a deadline, a consistency mode (Latest / AtLeastEpoch /
// Pinned), and a cancellation token. submit() resolves the request's
// std::future<ResultSet> with the answers, or with a typed QueryError
// when the request was expired, cancelled, rejected at intake, or
// aborted by shutdown — in every error case WITHOUT running any query
// work.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "graph/types.hpp"

namespace dynsld::engine {

class EngineSnapshot;  // epoch.hpp; Pinned holds one by shared_ptr

/// Are u and v in one cluster at threshold tau?
struct SameClusterQuery {
  vertex_id u, v;
  double tau;
};

/// Vertex count of u's cluster at threshold tau.
struct ClusterSizeQuery {
  vertex_id u;
  double tau;
};

/// All members of u's cluster at threshold tau.
struct ClusterReportQuery {
  vertex_id u;
  double tau;
};

/// Label array over all vertices; labels are member vertices, equal
/// within a cluster and arbitrary otherwise.
struct FlatClusteringQuery {
  double tau;
};

/// Distribution of cluster sizes at threshold tau (singletons included).
struct SizeHistogramQuery {
  double tau;
};

/// Number of clusters at threshold tau (singletons included). Answered
/// from the per-shard reassembly — each shard's count is a rank-prefix
/// lookup, corrected by the cross merge's blob/group counts — without
/// materializing histogram bins or the O(n) label array.
struct NumClustersQuery {
  double tau;
};

/// One typed request, closed over its threshold — the element of a
/// run() batch. Every alternative carries a `tau` field (the grouping
/// key, see query_tau).
using Query = std::variant<SameClusterQuery, ClusterSizeQuery,
                           ClusterReportQuery, FlatClusteringQuery,
                           SizeHistogramQuery, NumClustersQuery>;

/// Cluster-size histogram: (size, number of clusters of that size),
/// size-ascending.
struct SizeHistogram {
  std::vector<std::pair<uint64_t, uint64_t>> bins;

  uint64_t num_clusters() const {
    uint64_t k = 0;
    for (const auto& [size, count] : bins) k += count;
    return k;
  }

  friend bool operator==(const SizeHistogram&, const SizeHistogram&) = default;
};

/// One answer, mirroring the request kinds positionally: bool for
/// SameCluster, uint64_t for ClusterSize and NumClusters,
/// vector<vertex_id> for ClusterReport (member list) and FlatClustering
/// (label array), SizeHistogram for the histogram request.
using QueryResult =
    std::variant<bool, uint64_t, std::vector<vertex_id>, SizeHistogram>;

/// The threshold a query closes over (the batch grouping key).
inline double query_tau(const Query& q) {
  return std::visit([](const auto& req) { return req.tau; }, q);
}

// ---- async request envelopes (the QueryBroker front door) ----

/// Why a submitted request's future was resolved with an error instead
/// of a ResultSet. In every case the request executed no query work.
enum class QueryErrorCode {
  kDeadlineExceeded,   ///< deadline passed before the request dispatched
  kCancelled,          ///< its CancelToken fired while it was queued
  kAdmissionRejected,  ///< intake was at queue-depth capacity at submit
  kShutdown,           ///< the broker shut down with the request in flight
  kEpochUnavailable,   ///< AsOf epoch outside the retained history
};

/// Human-readable name of an error code (log/diagnostic helper).
inline const char* query_error_name(QueryErrorCode c) {
  switch (c) {
    case QueryErrorCode::kDeadlineExceeded: return "deadline exceeded";
    case QueryErrorCode::kCancelled: return "cancelled";
    case QueryErrorCode::kAdmissionRejected: return "admission rejected";
    case QueryErrorCode::kShutdown: return "broker shutdown";
    case QueryErrorCode::kEpochUnavailable: return "epoch unavailable";
  }
  return "unknown";
}

/// The typed error a rejected/expired/cancelled/aborted request's
/// future throws from get(). Requests that fail with a QueryError never
/// executed: no view was resolved and no query counter moved on their
/// behalf (counter-asserted in the broker tests).
class QueryError : public std::runtime_error {
 public:
  explicit QueryError(QueryErrorCode code)
      : std::runtime_error(std::string("QueryError: ") +
                           query_error_name(code)),
        code_(code) {}

  QueryErrorCode code() const { return code_; }

 private:
  QueryErrorCode code_;
};

/// Read side of a cancellation handle. Default-constructed tokens never
/// cancel; obtain a live one from CancelSource::token(). Copying is
/// cheap (one shared_ptr) and all copies observe the same source.
class CancelToken {
 public:
  CancelToken() = default;

  /// Has the owning CancelSource requested cancellation?
  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side of a cancellation handle: hand token() to any number of
/// QueryRequests, then request_cancel() to abandon the ones still
/// queued (in-flight execution is not interrupted — cancellation takes
/// effect at dispatch, before any query work runs). Thread-safe.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Flip the token; queued requests carrying it resolve with
  /// QueryError{kCancelled} at their next dispatch opportunity.
  void request_cancel() { flag_->store(true, std::memory_order_release); }

  /// A token observing this source.
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Consistency mode: answer at whatever epoch is current when the
/// request dispatches (the default; all Latest requests of one dispatch
/// cycle share one epoch, which is what makes them groupable across
/// clients).
struct Latest {};

/// Consistency mode: hold the request until an epoch >= `epoch` is
/// published, then answer at the then-current epoch. Lets a client read
/// its own write: flush() returns the epoch to wait for. The request's
/// deadline still applies while parked.
struct AtLeastEpoch {
  uint64_t epoch;
};

/// Consistency mode: answer against this exact pinned snapshot
/// (obtained from SldService::snapshot() or ClusterView::snap()), no
/// matter how many epochs publish meanwhile. A null snap behaves like
/// Latest.
struct Pinned {
  std::shared_ptr<const EngineSnapshot> snap;
};

/// Consistency mode: time travel — answer at the HISTORICAL epoch
/// `epoch` exactly. Served from the in-memory retention ring
/// (ServiceConfig::retain_epochs recent epochs) when possible, else
/// rehydrated from a checkpoint file when the service persists and a
/// checkpoint exists at exactly that epoch; otherwise the request
/// resolves with QueryError{kEpochUnavailable}. An AsOf at the current
/// epoch behaves like Latest.
struct AsOf {
  uint64_t epoch;
};

/// When/where a request's queries are answered (see the four modes).
using Consistency = std::variant<Latest, AtLeastEpoch, Pinned, AsOf>;

/// Deadline clock of the request plane (steady: immune to wall-clock
/// jumps). Deadline::max() — the default — means "no deadline".
using Deadline = std::chrono::steady_clock::time_point;

/// The broker envelope: one client request of any number of typed
/// queries (mixed kinds and thresholds welcome — the dispatcher splits
/// them into (epoch, tau) groups shared across clients), plus the
/// request-plane controls. Aggregate-initializable:
///
///   svc.submit({.queries = {SameClusterQuery{u, v, tau}},
///               .deadline = std::chrono::steady_clock::now() + 10ms});
struct QueryRequest {
  std::vector<Query> queries;
  Consistency consistency = Latest{};
  Deadline deadline = Deadline::max();
  CancelToken cancel;
  /// QoS identity for weighted admission (stats.hpp ClientStatsTable).
  /// Each client id gets a proportional share of the broker's queue
  /// depth; 0 — the default — is the shared anonymous pool.
  uint64_t client = 0;
  /// Completion hook: invoked exactly once, after the future is ready
  /// (fulfilled OR resolved with a QueryError), on whichever thread
  /// resolved it — possibly the submitting thread for fast-fail paths.
  /// Must be cheap and must not submit or block: the RpcServer uses it
  /// to wake its poll loop instead of parking a reaper thread per
  /// future. Null (the default) means no notification.
  std::function<void()> on_complete;
};

/// What a fulfilled request resolves to: results[i] answers queries[i],
/// all computed against the single epoch `epoch` (mutually consistent,
/// like any snapshot read).
struct ResultSet {
  std::vector<QueryResult> results;
  uint64_t epoch = 0;
};

}  // namespace dynsld::engine
