// SldService: the concurrent serving layer over the paper's dynamic
// SLD machinery — the piece that lets queries stream in *while* the
// dendrogram is being updated.
//
//   writer side                          reader side
//   -----------                          -----------
//   insert()/erase() -> MutationQueue    view() -> ClusterView.at(tau)
//        | drain (coalesced)                  ^      -> ThresholdView
//        v                                    |  (epoch-consistent,
//   ShardRouter::apply  ------ publish ----> EpochManager
//   (per-shard batches, Thm 1.1/1.2/1.5)        lock-free queries)
//
// Mutations are cheap enqueues returning a ticket; a flush (caller-
// driven via flush(), or the background writer thread) drains the
// queue, applies the coalesced batch through the sharded backend with
// the per-theorem batch algorithms, freezes the changed shards into a
// new immutable snapshot, and publishes it as the next epoch. Readers
// never block writers and vice versa: a reader holds a shared_ptr to
// its epoch for as long as it likes.
//
// Long-lived readers subscribe instead of polling: every publish
// notifies the SubscriptionHub, and a SubscribedView refreshes its
// resolved ThresholdViews incrementally against the epoch's delta
// metadata (subscription.hpp) rather than rebuilding per epoch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>

#include "engine/cluster_view.hpp"
#include "engine/epoch.hpp"
#include "engine/mutation_queue.hpp"
#include "engine/query.hpp"
#include "engine/shard_router.hpp"
#include "engine/stats.hpp"
#include "engine/subscription.hpp"

namespace dynsld::engine {

/// Construction-time knobs of an SldService.
struct ServiceConfig {
  vertex_id num_vertices = 0;
  int num_shards = 1;
  SpineIndex index = SpineIndex::kLct;
  /// Background writer flushes when this many ops are pending...
  size_t flush_threshold = 256;
  /// ...or this much time passed since the last flush, whichever first.
  std::chrono::microseconds flush_interval{200};
  /// Epoch snapshots carry their full edge set (verification mode).
  bool capture_edges = false;
};

/// The serving engine's facade: thread-safe update enqueue + flush on
/// the writer side, epoch-pinned views/subscriptions on the reader
/// side. Readers never block writers and vice versa; any state a
/// reader obtains (snapshot(), view(), SubscribedView) stays valid and
/// self-consistent no matter how many flushes happen meanwhile.
class SldService {
 public:
  /// Construct with epoch 0 published (the empty snapshot).
  explicit SldService(const ServiceConfig& cfg);
  /// Stops the background writer. Destroy all SubscribedViews first.
  ~SldService();

  SldService(const SldService&) = delete;
  SldService& operator=(const SldService&) = delete;

  // ---- update front-end (thread-safe) ----

  /// Enqueue an edge insertion; returns its ticket immediately. The
  /// edge becomes visible to readers at the next published epoch.
  ticket_t insert(vertex_id u, vertex_id v, double w);

  /// Enqueue an erase by ticket. Erasing a not-yet-flushed insertion
  /// annihilates in the queue and never reaches the shards.
  void erase(ticket_t t);

  /// Erase by endpoints: resolves (u, v) to its most recently inserted
  /// live copy through the queue's endpoint ledger, so callers need not
  /// retain tickets. Returns false when no live (u, v) edge is known.
  bool erase(vertex_id u, vertex_id v);

  /// Synchronously drain + apply + publish. Returns the epoch readers
  /// now see (unchanged when nothing was pending). Safe to call
  /// concurrently with the background writer and with readers.
  uint64_t flush();

  /// Start/stop the background writer thread (idempotent).
  void start_writer();
  void stop_writer();

  // ---- query front-end (thread-safe, wait-free vs the writer) ----

  /// The current epoch snapshot. All queries on it are mutually
  /// consistent; hold it across several calls for a transaction-like
  /// read view.
  EpochManager::Snap snapshot() const { return epochs_.acquire(); }

  /// Pin the current epoch as a ClusterView: the full query surface,
  /// with per-threshold merge resolution cached across calls. This is
  /// the primary read API; view().at(tau) amortizes all tau-dependent
  /// work over every query at that threshold.
  ClusterView view() const { return ClusterView(epochs_.acquire()); }

  /// Execute a typed query batch against the current epoch (one
  /// transient view: grouped by tau, resolved once per threshold, run
  /// in parallel). results[i] answers queries[i].
  std::vector<QueryResult> run(std::span<const Query> queries) const {
    return view().run(queries);
  }

  // ---- subscriptions (push half of the read plane) ----

  /// The publish fan-out point. Long-lived readers normally register by
  /// constructing a SubscribedView(svc) rather than calling this
  /// directly; every flush that publishes a new epoch notifies the
  /// registered subscribers (on the flushing thread, after the flush
  /// lock is released — callbacks must not call flush()).
  SubscriptionHub& subscriptions() { return subs_; }
  const SubscriptionHub& subscriptions() const { return subs_; }

  /// Convenience single-shot queries against the current epoch — thin
  /// one-query wrappers over a transient view; batch traffic should use
  /// view()/run() so the merge resolution amortizes.
  bool same_cluster(vertex_id s, vertex_id t, double tau) const;
  uint64_t cluster_size(vertex_id u, double tau) const;
  std::vector<vertex_id> cluster_report(vertex_id u, double tau) const;
  std::vector<vertex_id> flat_clustering(double tau) const;

  // ---- introspection ----

  uint64_t epoch() const { return epochs_.cur_epoch(); }
  size_t pending_updates() const { return queue_.pending(); }
  vertex_id num_vertices() const { return cfg_.num_vertices; }
  int num_shards() const { return router_.num_shards(); }
  const ServiceConfig& config() const { return cfg_; }
  EngineStats::Report stats() const { return stats_->report(); }

 private:
  void writer_loop();
  void nudge_writer();

  ServiceConfig cfg_;
  std::shared_ptr<EngineStats> stats_;
  MutationQueue queue_;
  ShardRouter router_;  // guarded by flush_mu_
  EpochManager epochs_;
  SubscriptionHub subs_;
  uint64_t next_epoch_ = 1;  // guarded by flush_mu_
  std::mutex flush_mu_;

  std::thread writer_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool writer_running_ = false;
  bool stop_ = false;  // guarded by wake_mu_
};

}  // namespace dynsld::engine
