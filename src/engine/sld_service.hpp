// SldService: the concurrent serving layer over the paper's dynamic
// SLD machinery — the piece that lets queries stream in *while* the
// dendrogram is being updated.
//
//   writer side                          reader side
//   -----------                          -----------
//   insert()/erase() -> MutationQueue    submit(QueryRequest)
//        | drain (coalesced)                  | -> future<ResultSet>
//        v                                    v
//   ShardRouter::apply  ---- publish ---> QueryBroker (intake ->
//   (per-shard batches,        |          dispatcher: group clients by
//    Thm 1.1/1.2/1.5)          |          (epoch, tau), one view per
//                              |          group, fulfill futures)
//                              +--------> EpochManager / Subscription-
//                                         Hub (pinned views: ClusterView
//                                         / SubscribedView escape hatch)
//
// Mutations are cheap enqueues returning a ticket; a flush (caller-
// driven via flush(), or the background writer thread) drains the
// queue, applies the coalesced batch through the sharded backend with
// the per-theorem batch algorithms, freezes the changed shards into a
// new immutable snapshot, and publishes it as the next epoch. Readers
// never block writers and vice versa: a reader holds a shared_ptr to
// its epoch for as long as it likes.
//
// Queries default through the asynchronous request plane: submit() a
// QueryRequest (deadline + consistency mode + cancellation token) and
// get a std::future<ResultSet>; the broker batches concurrent clients'
// requests into (epoch, tau) groups so the merge resolution is paid
// once per group fleet-wide, not per caller (broker.hpp). The sync
// surfaces — run() and the single-shot conveniences — are thin
// submit-and-wait wrappers over one-element requests. Power users who
// want explicit epoch pinning keep ClusterView / SubscribedView.
//
// Long-lived readers subscribe instead of polling: every publish
// notifies the SubscriptionHub, and a SubscribedView refreshes its
// resolved ThresholdViews incrementally against the epoch's delta
// metadata (subscription.hpp) rather than rebuilding per epoch. The
// broker's dispatcher rides the same publish signal as a system
// subscriber.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "engine/broker.hpp"
#include "engine/cluster_view.hpp"
#include "engine/epoch.hpp"
#include "engine/mutation_queue.hpp"
#include "engine/query.hpp"
#include "engine/shard_router.hpp"
#include "engine/stats.hpp"
#include "engine/subscription.hpp"
#include "obs/export.hpp"
#include "persist/options.hpp"

namespace dynsld::persist {
class PersistenceManager;  // persist/persist.hpp
}

namespace dynsld::engine {

/// Construction-time knobs of an SldService.
struct ServiceConfig {
  vertex_id num_vertices = 0;
  int num_shards = 1;
  SpineIndex index = SpineIndex::kLct;
  /// Background writer flushes when this many ops are pending...
  size_t flush_threshold = 256;
  /// ...or this much time passed since the last flush, whichever first.
  std::chrono::microseconds flush_interval{200};
  /// Epoch snapshots carry their full edge set (verification mode).
  bool capture_edges = false;
  /// Dirty-shard snapshots patch the previous epoch's arrays
  /// copy-on-write when the batch's structural footprint is small
  /// (retained contraction-round state; engine/contraction.hpp). Off:
  /// every dirty shard rebuilds from scratch — the comparison baseline;
  /// either way the published snapshots are bit-identical.
  bool incremental_snapshots = true;
  /// Broker admission control: submits beyond this many in-flight
  /// requests are rejected with QueryError{kAdmissionRejected}.
  size_t broker_queue_depth = 4096;
  /// Broker dispatcher micro-batch timer (liveness fallback + parked
  /// deadline sweep granularity; submits and publishes wake it sooner).
  std::chrono::microseconds broker_interval{200};
  /// Superseded epochs kept alive in memory for AsOf{epoch} time
  /// travel (0 = current epoch only; each retained epoch pins its
  /// snapshot's memory).
  size_t retain_epochs = 8;
  /// Durability (persist/options.hpp): an empty dir disables the whole
  /// persistence plane. A non-empty dir must not hold prior WAL or
  /// checkpoint state — resume an existing directory through
  /// persist::recover() instead.
  persist::PersistOptions persist;
};

/// The serving engine's facade: thread-safe update enqueue + flush on
/// the writer side, epoch-pinned views/subscriptions on the reader
/// side. Readers never block writers and vice versa; any state a
/// reader obtains (snapshot(), view(), SubscribedView) stays valid and
/// self-consistent no matter how many flushes happen meanwhile.
class SldService {
 public:
  /// Construct with epoch 0 published (the empty snapshot) and the
  /// broker dispatcher running.
  explicit SldService(const ServiceConfig& cfg);
  /// Shuts the broker down (in-flight futures resolve with
  /// QueryError{kShutdown}) and stops the background writer. Destroy
  /// all SubscribedViews first.
  ~SldService();

  SldService(const SldService&) = delete;
  SldService& operator=(const SldService&) = delete;

  // ---- update front-end (thread-safe) ----

  /// Enqueue an edge insertion; returns its ticket immediately. The
  /// edge becomes visible to readers at the next published epoch.
  ticket_t insert(vertex_id u, vertex_id v, double w);

  /// Enqueue an erase by ticket. Erasing a not-yet-flushed insertion
  /// annihilates in the queue and never reaches the shards.
  void erase(ticket_t t);

  /// Erase by endpoints: resolves (u, v) to its most recently inserted
  /// live copy through the queue's endpoint ledger, so callers need not
  /// retain tickets. Returns false when no live (u, v) edge is known.
  bool erase(vertex_id u, vertex_id v);

  /// Synchronously drain + apply + publish. Returns the epoch readers
  /// now see (unchanged when nothing was pending). Safe to call
  /// concurrently with the background writer and with readers.
  uint64_t flush();

  /// Start/stop the background writer thread (idempotent).
  void start_writer();
  void stop_writer();

  // ---- query front-end (thread-safe, wait-free vs the writer) ----

  /// Submit one request to the asynchronous request plane — the
  /// default read path. The broker groups concurrent clients' queries
  /// by (epoch, tau), resolves one ThresholdView per group, and
  /// fulfills the future; requests that expire, cancel, overflow the
  /// intake, or outlive the service resolve with a typed QueryError
  /// instead and never execute (broker.hpp).
  std::future<ResultSet> submit(QueryRequest req) const {
    return broker_->submit(std::move(req));
  }

  /// Submit several requests as one atomic intake splice: the
  /// dispatcher sees them in the same cycle, so shared (epoch, tau)
  /// groups collapse deterministically. futures[i] answers reqs[i].
  std::vector<std::future<ResultSet>> submit_batch(
      std::vector<QueryRequest> reqs) const {
    return broker_->submit_batch(std::move(reqs));
  }

  /// The request plane itself (depth introspection; submit through the
  /// service facade).
  QueryBroker& broker() const { return *broker_; }

  /// The current epoch snapshot. All queries on it are mutually
  /// consistent; hold it across several calls for a transaction-like
  /// read view.
  EpochManager::Snap snapshot() const { return epochs_.acquire(); }

  /// The retained snapshot of exactly `epoch` — current epoch or one
  /// still in the AsOf retention ring (cfg.retain_epochs). Null when
  /// that epoch fell off the ring; AsOf{epoch} requests then fall back
  /// to checkpoint rehydration before erroring (query.hpp).
  EpochManager::Snap snapshot_at(uint64_t epoch) const {
    return epochs_.at_epoch(epoch);
  }

  /// Pin the current epoch as a ClusterView: the full query surface
  /// with per-threshold merge resolution cached across calls — the
  /// power-user pinned-epoch escape hatch (the broker is the default
  /// path; a pinned view never moves epochs under you).
  ClusterView view() const { return ClusterView(epochs_.acquire()); }

  /// Synchronous convenience: submit-and-wait on one Latest request.
  /// results[i] answers queries[i], all at one epoch. Batch traffic
  /// that can tolerate a future should prefer submit(): same
  /// amortization, no blocking. Throws QueryError like any submit.
  std::vector<QueryResult> run(std::span<const Query> queries) const;

  // ---- subscriptions (push half of the read plane) ----

  /// The publish fan-out point. Long-lived readers normally register by
  /// constructing a SubscribedView(svc) rather than calling this
  /// directly; every flush that publishes a new epoch notifies the
  /// registered subscribers (on the flushing thread, after the flush
  /// lock is released — callbacks must not call flush()).
  SubscriptionHub& subscriptions() { return subs_; }
  const SubscriptionHub& subscriptions() const { return subs_; }

  /// Convenience single-shot queries — submit-and-wait wrappers over
  /// one-element requests, so even stray single calls join the
  /// broker's cross-client (epoch, tau) groups instead of paying their
  /// own merge resolution. Throw QueryError like any submit.
  bool same_cluster(vertex_id s, vertex_id t, double tau) const;
  uint64_t cluster_size(vertex_id u, double tau) const;
  std::vector<vertex_id> cluster_report(vertex_id u, double tau) const;
  std::vector<vertex_id> flat_clustering(double tau) const;
  uint64_t num_clusters(double tau) const;

  // ---- introspection ----

  uint64_t epoch() const { return epochs_.cur_epoch(); }
  size_t pending_updates() const { return queue_.pending(); }
  vertex_id num_vertices() const { return cfg_.num_vertices; }
  int num_shards() const { return router_.num_shards(); }
  const ServiceConfig& config() const { return cfg_; }
  EngineStats::Report stats() const { return stats_->report(); }

  /// The engine's observability bundle: metric registry (every
  /// EngineStats counter plus live gauges and the flush/broker latency
  /// histograms — the one scrape surface), and the span trace ring.
  /// Scrape with obs().registry.scrape() and render via obs/export.hpp,
  /// or attach a periodic reporter with make_stats_sink(). Gauges read
  /// the live service and are cleared on destruction; snapshots keep
  /// the rest of the bundle alive for readers that outlive the service.
  EngineObs& obs() const { return *obs_; }

  /// Start a periodic reporter over this service's registry: scrapes
  /// every `opt.interval` and hands the rendered text to `emit`
  /// (obs/export.hpp). Destroy the sink before the service.
  std::unique_ptr<obs::StatsSink> make_stats_sink(
      std::function<void(const std::string&)> emit,
      obs::StatsSink::Options opt = {}) const;

  /// The observability bundle as the shared handle snapshots carry —
  /// what persistence components take as their accounting sink.
  std::shared_ptr<EngineObs> obs_shared() const { return obs_; }

  // ---- recovery plumbing (persist/persist.hpp drives these) ----
  // The restore_* surface re-enacts history through the NORMAL
  // mutation/flush path — recovery produces a real, mutable engine
  // whose state is bit-for-bit the pre-crash one, not a frozen replica.

  /// Re-enqueue an insertion under its original ticket (no stats).
  void restore_insert(ticket_t t, vertex_id u, vertex_id v, double w) {
    queue_.restore_insert(t, u, v, w);
  }
  /// Re-enqueue an erase by original ticket (no stats).
  void restore_erase(ticket_t t) { queue_.restore_erase(t); }
  /// Raise the ticket counter to the checkpoint's floor.
  void restore_ticket_floor(ticket_t floor) {
    queue_.restore_ticket_floor(floor);
  }
  /// Drain + apply + publish exactly like flush(), but FORCE the
  /// published epoch to `epoch` and publish even when the queue is
  /// empty (replay must reproduce empty epochs too). Never logs to the
  /// WAL — recovery attaches persistence only after replay completes.
  uint64_t restore_publish(uint64_t epoch);
  /// Hand the service its persistence plane (WAL hooks engage on the
  /// next flush; the broker gains the checkpoint-rehydration tier).
  /// Called by the constructor for fresh persisted services and by
  /// persist::recover() after replay.
  void attach_persistence(std::unique_ptr<persist::PersistenceManager> pm);
  /// The attached persistence plane (null when not persisting).
  persist::PersistenceManager* persistence() const { return persist_.get(); }

  /// In-memory tee of the durability stream — the replication feed
  /// (net/replication.hpp). on_batch sees every flushed batch's epoch
  /// record UNDER THE FLUSH LOCK, right after the WAL append, in
  /// exactly the WAL's byte framing; on_checkpoint fires (same lock)
  /// when a cadence checkpoint lands, with its epoch. Callbacks must be
  /// cheap and must not call flush() or submit(). Either hook may be
  /// null; replace with {} to detach. Recovery's restore_publish never
  /// fires the tap (a replica bootstraps from disk, not from replay).
  struct EpochTap {
    /// Fired per published epoch with the exact WAL record bytes.
    std::function<void(uint64_t epoch, const std::string& record)> on_batch;
    /// Fired when a cadence checkpoint lands (its epoch).
    std::function<void(uint64_t checkpoint_epoch)> on_checkpoint;
  };
  /// Install/replace/clear the tee (thread-safe vs concurrent
  /// flushes). Also syncs the WAL tail to disk when persisting, so a
  /// tap plus the directory see a gap-free record history no matter
  /// when the tap attaches.
  void set_epoch_tap(EpochTap tap);

 private:
  void writer_loop();
  void nudge_writer();
  /// Submit-and-wait on a one-element Latest request (the convenience
  /// wrappers' shared path).
  QueryResult run_one(Query q) const;

  ServiceConfig cfg_;
  std::shared_ptr<EngineObs> obs_;
  std::shared_ptr<EngineStats> stats_;  // aliases obs_->stats
  MutationQueue queue_;
  ShardRouter router_;  // guarded by flush_mu_
  EpochManager epochs_;
  SubscriptionHub subs_;
  std::unique_ptr<QueryBroker> broker_;  // after subs_: dies first
  // Durability plane (null when not persisting); safe to destroy
  // before broker_ — the destructor joins the dispatcher (the only
  // rehydration caller) before members die.
  std::unique_ptr<persist::PersistenceManager> persist_;
  EpochTap tap_;  // guarded by flush_mu_ (set vs flush-path invocation)
  uint64_t next_epoch_ = 1;  // guarded by flush_mu_
  std::mutex flush_mu_;

  std::thread writer_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool writer_running_ = false;
  bool stop_ = false;  // guarded by wake_mu_
};

}  // namespace dynsld::engine
