// Epoch-based read snapshots.
//
// The engine publishes a new EngineSnapshot after every batch flush.
// Readers acquire() the current snapshot (a shared_ptr copy) and run
// any number of queries against it — the answers are mutually
// consistent and correspond to exactly one prefix of the applied update
// stream, no matter how many flushes happen meanwhile. Reclamation is
// the shared_ptr refcount: a superseded epoch is destroyed when its
// last reader releases it, which is precisely epoch-based reclamation
// without a separate quiescence protocol.
//
// An EngineSnapshot combines the per-shard DendrogramSnapshots with the
// cross-shard edge view and answers the merged §6.1 queries exactly:
// single-linkage clusters at threshold tau are the connected components
// of the sub-tau edges, and the edge set is partitioned into intra-
// shard edges (each shard's clusters are exact for its subgraph) plus
// the cross table, so merging per-shard clusters along sub-tau cross
// edges reproduces the global clustering. With no sub-tau cross edges
// the queries collapse to the owning shard's O(log h) lookups.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/snapshot.hpp"
#include "engine/stats.hpp"
#include "graph/types.hpp"

namespace dynsld::persist {
struct SnapshotCodec;  // persist/checkpoint.hpp
}

namespace dynsld::engine {

/// Vertex-range shard assignment: shard k owns [k*stride, (k+1)*stride).
struct ShardMap {
  vertex_id n = 0;
  int num_shards = 1;
  vertex_id stride = 0;

  static ShardMap make(vertex_id n, int num_shards) {
    ShardMap m;
    m.n = n;
    m.num_shards = num_shards < 1 ? 1 : num_shards;
    m.stride = (n + m.num_shards - 1) / m.num_shards;
    if (m.stride == 0) m.stride = 1;
    return m;
  }

  int home(vertex_id v) const { return static_cast<int>(v / stride); }
  bool intra(vertex_id u, vertex_id v) const { return home(u) == home(v); }
  /// Global id of shard k's local vertex 0 (shard-local vertex spaces).
  vertex_id base(int k) const { return static_cast<vertex_id>(k) * stride; }
  /// Size of shard k's vertex range (the last shards may be short/empty).
  vertex_id local_size(int k) const {
    vertex_id b = base(k);
    if (b >= n) return 0;
    return n - b < stride ? n - b : stride;
  }
};

/// Immutable view of the cross-shard edge table, rebuilt on epochs whose
/// flush touched it: alive cross edges sorted by weight, so threshold
/// consumers (ThresholdView) scan exactly the sub-tau prefix.
class CrossEdgeView {
 public:
  /// One alive cross-shard edge (global endpoint ids).
  struct Edge {
    vertex_id u, v;
    double w;
  };

  CrossEdgeView() = default;
  /// `edges` need not be sorted; the view sorts by weight.
  explicit CrossEdgeView(std::vector<Edge> edges);

  bool empty() const { return edges_.empty(); }
  size_t size() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Number of edges with w <= tau (the prefix threshold consumers
  /// scan). O(log X).
  size_t sub_tau_prefix(double tau) const;

 private:
  std::vector<Edge> edges_;  // weight-ascending
};

/// What changed between an epoch and the one it was built from,
/// recorded by the router at flush time and published with the
/// snapshot. The refresh machinery itself keys shard reuse off
/// DendrogramSnapshot pointer identity (robust across skipped epochs)
/// and consumes cross_min_w/base_epoch to gate full re-resolves; the
/// rebuild flags and churn counts are the observable record of the
/// flush's footprint (introspection, tests, external consumers).
struct EpochDelta {
  /// The epoch this delta is relative to (the previously published
  /// snapshot; equals this snapshot's own epoch for the initial build).
  uint64_t base_epoch = 0;
  /// Per shard: was this shard's dendrogram snapshot rebuilt?
  std::vector<char> shard_rebuilt;
  /// Per-shard materialization record for the shards this epoch rebuilt
  /// (clean shards keep the zero record): whether the incremental
  /// builder patched the previous arrays copy-on-write or rebuilt from
  /// scratch, and — when it patched — how many contraction rounds
  /// re-ran vs row-copied and how many per-round node entries were
  /// recomputed. The patch-vs-rebuild gate is re-verified at
  /// materialization exactly like label_patch_viable below; `fallback`
  /// records the re-check failing after the journal pre-filter passed.
  struct ShardPatch {
    uint8_t mode = 0;      // 0 = rebuilt fresh, 1 = patched COW
    uint8_t fallback = 0;  // exact viability re-check failed
    uint32_t rounds_total = 0;
    uint32_t rounds_rerun = 0;
    uint64_t nodes_patched = 0;
  };
  std::vector<ShardPatch> shard_patch;
  /// Cross-shard edge-table churn this flush.
  uint32_t cross_inserted = 0;
  uint32_t cross_erased = 0;
  /// Lightest weight among the changed cross edges: a view resolved at
  /// tau < cross_min_w reads the same sub-tau prefix before and after,
  /// so its cross merge is untouched even though the table changed.
  double cross_min_w = std::numeric_limits<double>::infinity();
  /// Vertex mass of the rebuilt shards (sum of their local range
  /// sizes): the group-churn bound the flat-label maintenance consumes.
  /// Every vertex whose per-shard cluster — hence blob-UF group
  /// membership — could have changed this flush lives in that mass, so
  /// together with n it decides patch-vs-rebuild without a rescan.
  uint64_t verts_rebuilt = 0;

  /// Is patching the previous epoch's flat-label array (copy + re-label
  /// dirty ranges + redo cross-group fixups) expected to beat a global
  /// rebuild? Patching re-labels only the rebuilt vertex mass, so it
  /// wins while that mass is a minority of n; at or past half, the
  /// O(n) copy stops paying for itself.
  bool label_patch_viable(vertex_id n) const { return 2 * verts_rebuilt < n; }

  bool cross_changed() const { return cross_inserted + cross_erased != 0; }
  int num_rebuilt() const {
    int k = 0;
    for (char c : shard_rebuilt) k += c != 0;
    return k;
  }
};

/// One published epoch: the per-shard DendrogramSnapshots, the frozen
/// cross-edge table, and the delta vs the epoch it was built from.
/// Entirely immutable — every method is const and thread-safe; readers
/// hold it via shared_ptr (EpochManager::Snap) for as long as they
/// like, which is also the reclamation scheme.
class EngineSnapshot {
 public:
  /// Monotone publication counter (0 = the empty initial snapshot).
  uint64_t epoch() const { return epoch_; }
  const ShardMap& shard_map() const { return map_; }
  const DendrogramSnapshot& shard(int k) const { return *shards_[k]; }
  const CrossEdgeView& cross() const { return *cross_; }
  /// What this epoch changed relative to the one it was built from
  /// (per-shard rebuild flags + cross-edge churn).
  const EpochDelta& delta() const { return delta_; }
  /// Stage breakdown of the flush that built this epoch — what the
  /// epoch you are reading cost to produce (drain/apply/shard-rebuild/
  /// cross timings; obs/trace.hpp). Zero-filled for snapshots built
  /// outside a service flush (the epoch-0 initial build).
  const obs::EpochTrace& trace() const { return trace_; }
  /// Dendrogram nodes across the shard snapshots — intra-shard forest
  /// edges only; cross-table edges are raw and counted by cross().
  size_t num_tree_edges() const;

  // ---- merged §6.1 queries (exact across shards) ----
  // Single-shot convenience wrappers: each builds a transient
  // ThresholdView (cluster_view.hpp) over this snapshot and asks it.
  // Batch traffic should hold a ClusterView / ThresholdView instead so
  // the per-threshold merge resolution is paid once, not per call.
  bool same_cluster(vertex_id s, vertex_id t, double tau) const;
  uint64_t cluster_size(vertex_id u, double tau) const;
  std::vector<vertex_id> cluster_report(vertex_id u, double tau) const;
  std::vector<vertex_id> flat_clustering(double tau) const;

  /// The epoch's full alive edge set (tree + non-tree + cross), present
  /// only when the service runs with capture_edges (verification mode);
  /// ids are dense positions.
  const std::vector<WeightedEdge>& captured_edges() const { return edges_; }

  /// Query accounting sink shared with the publishing service (may be
  /// null in unit contexts); views bump their counters through it.
  const std::shared_ptr<EngineStats>& stats() const { return stats_; }

  /// The publishing engine's full observability bundle (registry,
  /// trace ring, histograms) — null in unit contexts. Shared ownership:
  /// a reader holding the snapshot keeps the scrape surface alive even
  /// past the service, exactly like stats().
  const std::shared_ptr<EngineObs>& obs() const { return obs_; }

 private:
  friend class ShardRouter;
  // The checkpoint byte codec: the one place these private arrays
  // cross the process boundary (persist/checkpoint.hpp).
  friend struct persist::SnapshotCodec;
  EngineSnapshot() = default;

  uint64_t epoch_ = 0;
  ShardMap map_;
  std::vector<std::shared_ptr<const DendrogramSnapshot>> shards_;
  std::shared_ptr<const CrossEdgeView> cross_;
  EpochDelta delta_;
  obs::EpochTrace trace_;
  std::vector<WeightedEdge> edges_;
  // Query accounting: shared with the publishing service so counting
  // stays safe even for readers that outlive it.
  std::shared_ptr<EngineStats> stats_;
  std::shared_ptr<EngineObs> obs_;
};

/// Publication point between the writer and the readers.
class EpochManager {
 public:
  /// A reader's handle on an epoch: holding it pins the snapshot (and
  /// everything it shares) until released.
  using Snap = std::shared_ptr<const EngineSnapshot>;

  /// Current snapshot; never null once the service has constructed
  /// (epoch 0 is the empty snapshot). Wait-free for readers modulo the
  /// shared_ptr control-block increment.
  Snap acquire() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cur_;
  }

  void publish(Snap s) {
    uint64_t e = s->epoch();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (retain_ > 0 && cur_) {
        ring_.push_back(cur_);
        while (ring_.size() > retain_) ring_.pop_front();
      }
      cur_ = std::move(s);
    }
    epoch_.store(e, std::memory_order_release);
  }

  uint64_t cur_epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Keep the last `n` superseded snapshots alive for AsOf time travel
  /// (0 = current epoch only). The ring pins memory: each retained
  /// epoch holds its rebuilt shards and cross table.
  void set_retention(size_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    retain_ = n;
    while (ring_.size() > retain_) ring_.pop_front();
  }

  /// The retained snapshot of exactly `epoch` (current included), or
  /// null when it fell off the ring. O(retention) scan — the ring is
  /// small by construction.
  Snap at_epoch(uint64_t epoch) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (cur_ && cur_->epoch() == epoch) return cur_;
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it)
      if ((*it)->epoch() == epoch) return *it;
    return nullptr;
  }

 private:
  mutable std::mutex mu_;
  Snap cur_;
  // Recently superseded epochs, oldest first (guarded by mu_).
  std::deque<Snap> ring_;
  size_t retain_ = 0;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace dynsld::engine
