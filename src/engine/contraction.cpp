#include "engine/contraction.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <utility>

namespace dynsld::engine {

namespace {
constexpr int32_t kNoSlot = DendrogramSnapshot::kNoSlot;
constexpr uint32_t kFar = std::numeric_limits<uint32_t>::max();
}  // namespace

std::shared_ptr<const DendrogramSnapshot> ShardContraction::advance(
    DynSLD& sld, vertex_id base, const DendrogramSnapshot* prev,
    PatchStats& out) {
  out = PatchStats{};
  if (!incremental_) return DendrogramSnapshot::build(sld, base);
  const Dendrogram::Journal& j = sld.structure_journal();
  // An empty previous shard (cold start, epoch 0) rebuilds without
  // counting as a viability fallback — there was nothing to patch.
  if (last_ && prev == last_.get() && prev->num_nodes() > 0 && j.enabled &&
      !j.overflowed) {
    if (auto snap = try_patch(sld, base, *prev, out)) return snap;
    out.fallback = true;
  }
  return rebuild(sld, base);
}

std::shared_ptr<const DendrogramSnapshot> ShardContraction::rebuild(
    DynSLD& sld, vertex_id base) {
  std::vector<edge_id> ids;
  auto snap = DendrogramSnapshot::build(sld, base, &ids);
  adopt(sld, std::move(ids), snap);
  return snap;
}

void ShardContraction::adopt(DynSLD& sld, std::vector<edge_id>&& ids,
                             std::shared_ptr<const DendrogramSnapshot> snap) {
  ids_ = std::move(ids);
  slot_of_.assign(sld.dendrogram().capacity(), kNoSlot);
  for (size_t i = 0; i < ids_.size(); ++i)
    slot_of_[ids_[i]] = static_cast<int32_t>(i);
  sld.enable_structure_journal(journal_cap(ids_.size()));
  last_ = std::move(snap);
}

std::shared_ptr<const DendrogramSnapshot> ShardContraction::try_patch(
    DynSLD& sld, vertex_id base, const DendrogramSnapshot& prev,
    PatchStats& out) {
  const Dendrogram& d = sld.dendrogram();
  const Dendrogram::Journal& j = sld.structure_journal();
  const size_t m_old = prev.num_nodes();
  assert(base == prev.base());

  // 1. Reconcile the raw journal into disjoint edit sets against the
  //    live dendrogram: `added` = journal-added ids still alive;
  //    `removed_slots` = old slots whose node died (including the old
  //    incarnation of re-added ids); `reparented` = survivors whose
  //    parent pointer changed.
  std::vector<edge_id> added(j.added);
  std::sort(added.begin(), added.end());
  added.erase(std::unique(added.begin(), added.end()), added.end());
  std::erase_if(added, [&](edge_id e) { return !d.alive(e); });

  std::vector<int32_t> removed_slots;
  removed_slots.reserve(j.removed.size());
  for (const Dendrogram::Journal::Removed& r : j.removed)
    if (r.e < slot_of_.size() && slot_of_[r.e] != kNoSlot)
      removed_slots.push_back(slot_of_[r.e]);
  std::sort(removed_slots.begin(), removed_slots.end());
  removed_slots.erase(
      std::unique(removed_slots.begin(), removed_slots.end()),
      removed_slots.end());

  // The raw reparent log runs into the thousands for a small batch
  // (erase replacements rewrite parents transiently), so dedup with
  // edge-id stamps instead of a sort: O(raw) with the stamp buffer
  // retained across epochs.
  if (seen_.size() < d.capacity()) seen_.resize(d.capacity(), 0);
  for (edge_id e : added) seen_[e] = 1;  // added ids are not reparents
  std::vector<edge_id> reparented;
  reparented.reserve(j.parent_changed.size());
  for (edge_id e : j.parent_changed) {
    if (!d.alive(e) || seen_[e]) continue;
    seen_[e] = 1;
    reparented.push_back(e);
  }
  for (edge_id e : added) seen_[e] = 0;
  for (edge_id e : reparented) seen_[e] = 0;

  // 2. Exact viability, re-verified at materialization (the journal cap
  //    was only a loose pre-filter): a patch touching half the shard
  //    cannot beat the rebuild — same shape as label_patch_viable.
  const size_t changed_n =
      added.size() + removed_slots.size() + reparented.size();
  if (m_old == 0 || 2 * changed_n >= m_old) return nullptr;

  // 3. Integrity: the reconciled sets must account for the live node
  //    count exactly; anything else means a missed write.
  const size_t m = m_old - removed_slots.size() + added.size();
  if (m != d.size()) return nullptr;

  auto snap = std::shared_ptr<DendrogramSnapshot>(new DendrogramSnapshot());
  DendrogramSnapshot& s = *snap;
  s.n_ = prev.n_;
  s.base_ = base;
  // The merged arrays append into reserved storage (run inserts are
  // memcpy-grade and touch each page once); parent_ is sized up front
  // because step 6 fills it out of slot order.
  s.u_.reserve(m);
  s.v_.reserve(m);
  s.weight_.reserve(m);
  s.parent_.resize(m);

  // 4. Rank merge of the surviving old slots (already sorted — this
  //    replaces the fresh build's O(m log m) sort) with the added
  //    nodes, producing the new slot order plus both remaps. Both
  //    sides are sorted, so one streamed scan over the old order finds
  //    every insertion point; everything between two edit points then
  //    block-copies, so the merge costs O(m) in sequential memory.
  // Rank keys fetched once (d.rank walks the node table; the sort's
  // comparator would re-read it per compare).
  std::vector<std::pair<Rank, edge_id>> akeys;
  akeys.reserve(added.size());
  for (edge_id e : added) akeys.emplace_back(d.rank(e), e);
  std::sort(akeys.begin(), akeys.end());
  for (size_t a = 0; a < added.size(); ++a) added[a] = akeys[a].second;
  std::vector<size_t> ipos(added.size());
  {
    // Successive insertion points are non-decreasing, so each search
    // gallops forward from the last one and binary-searches the landed
    // range: O(edits log gap) probes instead of a scan over m.
    // Weights decide almost every probe; the id tiebreak array is only
    // touched on exact weight collisions, halving the cold reads.
    auto old_below = [&](size_t idx, const Rank& r) {
      const double w = prev.weight_[idx];
      if (w != r.weight) return w < r.weight;
      return ids_[idx] < r.id;
    };
    size_t lo = 0;
    for (size_t a = 0; a < added.size(); ++a) {
      const Rank& ar = akeys[a].first;
      size_t step = 1, hi = lo;
      while (hi < m_old && old_below(hi, ar)) {
        lo = hi + 1;
        hi = lo + step - 1;
        step *= 2;
      }
      hi = std::min(hi, m_old);
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (old_below(mid, ar))
          lo = mid + 1;
        else
          hi = mid;
      }
      ipos[a] = lo;  // first old slot ranked above the added node
    }
  }

  // 5. (fused into the merge walk) Edge-id -> slot map: clear every id
  //    that died up front; the walk then writes the shifted position of
  //    each live node as it places it.
  if (slot_of_.size() < d.capacity()) slot_of_.resize(d.capacity(), kNoSlot);
  for (const Dendrogram::Journal::Removed& r : j.removed)
    if (r.e < slot_of_.size()) slot_of_[r.e] = kNoSlot;

  remap_.resize(m_old);
  old_of_.resize(m);
  runs_.clear();
  std::vector<edge_id> new_ids;
  new_ids.reserve(m);
  size_t ri = 0, ai = 0, so = 0;
  auto place_added = [&] {
    const edge_id e = added[ai++];
    const Dendrogram::Node& nd = d.node(e);
    const int32_t w = static_cast<int32_t>(new_ids.size());
    new_ids.push_back(e);
    s.u_.push_back(nd.u + base);
    s.v_.push_back(nd.v + base);
    s.weight_.push_back(nd.weight);
    old_of_[w] = -1;
    slot_of_[e] = w;
  };
  while (so < m_old) {
    while (ai < added.size() && ipos[ai] == so) place_added();
    if (ri < removed_slots.size() &&
        removed_slots[ri] == static_cast<int32_t>(so)) {
      remap_[so] = kRemovedSlot;
      ++ri;
      ++so;
      continue;
    }
    size_t end = m_old;  // run of untouched survivors: block-copy it
    if (ai < added.size()) end = std::min(end, ipos[ai]);
    if (ri < removed_slots.size())
      end = std::min(end, static_cast<size_t>(removed_slots[ri]));
    const size_t len = end - so;
    const size_t w = new_ids.size();
    runs_.push_back({static_cast<int32_t>(so), static_cast<int32_t>(w),
                     static_cast<int32_t>(len)});
    new_ids.insert(new_ids.end(), ids_.begin() + so, ids_.begin() + end);
    s.u_.insert(s.u_.end(), prev.u_.begin() + so, prev.u_.begin() + end);
    s.v_.insert(s.v_.end(), prev.v_.begin() + so, prev.v_.begin() + end);
    s.weight_.insert(s.weight_.end(), prev.weight_.begin() + so,
                     prev.weight_.begin() + end);
    for (size_t t = 0; t < len; ++t) {
      remap_[so + t] = static_cast<int32_t>(w + t);
      old_of_[w + t] = static_cast<int32_t>(so + t);
      slot_of_[ids_[so + t]] = static_cast<int32_t>(w + t);
    }
    so = end;
  }
  while (ai < added.size()) place_added();
  assert(new_ids.size() == m);

  // 6. Parent pointers: survivors remap-copy; slots with genuinely new
  //    structure (added nodes + reparented survivors) read the live
  //    dendrogram. A survivor whose remapped parent was removed is by
  //    the detach-before-remove invariant always in `reparented`, so
  //    the transient kRemovedSlot is always overwritten.
  for (size_t i = 0; i < m; ++i) {
    const int32_t oi = old_of_[i];
    if (oi < 0) continue;
    const int32_t op = prev.parent_[oi];
    s.parent_[i] = op == kNoSlot ? kNoSlot : remap_[op];
  }
  std::vector<int32_t> changed;
  changed.reserve(added.size() + reparented.size());
  for (edge_id e : added) {
    const int32_t sl = slot_of_[e];
    const Dendrogram::Node& nd = d.node(e);
    s.parent_[sl] = nd.parent == kNoEdge ? kNoSlot : slot_of_[nd.parent];
    changed.push_back(sl);
  }
  // Journaled parent writes mostly cancel out over a batch: an erase
  // replacement detaches and reattaches whole subtrees transiently, so
  // the raw reparent list runs 10-100x larger than the net edit. Only
  // survivors whose parent slot actually differs from the remap-copied
  // previous value seed the contraction rounds below.
  for (edge_id e : reparented) {
    const int32_t sl = slot_of_[e];
    const Dendrogram::Node& nd = d.node(e);
    const int32_t np = nd.parent == kNoEdge ? kNoSlot : slot_of_[nd.parent];
    if (s.parent_[sl] == np) continue;
    s.parent_[sl] = np;
    changed.push_back(sl);
  }
#ifndef NDEBUG
  for (size_t i = 0; i < m; ++i)
    assert(s.parent_[i] == kNoSlot || s.parent_[i] > static_cast<int32_t>(i));
#endif

  // 7. Leaf hooks: value-remap the previous epoch's e*_v slots, then
  //    re-resolve only vertices whose incident edge set changed (the
  //    endpoints of added/removed nodes).
  s.leaf_parent_.resize(s.n_);
  for (vertex_id v = 0; v < s.n_; ++v) {
    const int32_t lp = prev.leaf_parent_[v];
    s.leaf_parent_[v] = lp == kNoSlot ? kNoSlot : remap_[lp];
  }
  if (vmoved_.size() < s.n_) vmoved_.resize(s.n_, 0);
  std::vector<vertex_id> vtouched;  // stamped vertices, to clear below
  auto retop = [&](vertex_id v) {
    // Endpoints shared by several edits re-resolve once — each resolve
    // splays inside the dynamic forest, so the stamp saves real work.
    if (vmoved_[v]) return;
    vmoved_[v] = 1;
    vtouched.push_back(v);
    const edge_id e = sld.min_incident_edge(v);
    s.leaf_parent_[v] = e == kNoEdge ? kNoSlot : slot_of_[e];
  };
  for (const Dendrogram::Journal::Removed& r : j.removed) {
    retop(r.u);
    retop(r.v);
  }
  for (edge_id e : added) {
    const Dendrogram::Node& nd = d.node(e);
    retop(nd.u);
    retop(nd.v);
  }
  for (const vertex_id v : vtouched) vmoved_[v] = 0;
#ifndef NDEBUG
  for (vertex_id v = 0; v < s.n_; ++v)
    assert(s.leaf_parent_[v] != kRemovedSlot);
#endif

  // 8. Child CSR / leaf CSR / counts: the exact code path the fresh
  //    build runs, so the derived arrays match bit-for-bit. (A delta
  //    fill that re-emitted surviving runs was measured 2x slower than
  //    this counting sort — the sort is two tight streaming passes.)
  s.derive_csr_and_counts();

  // 9. Lifting table, the contraction rounds proper. Distance from each
  //    slot to its nearest changed ancestor (inclusive) decides what
  //    re-runs: entry (k, i) is row-copied from the previous table iff
  //    dist[i] >= 2^k — its whole 2^k-hop chain then avoids changed
  //    nodes, so the landing ancestor is the same node as last epoch.
  //    The same descending sweep computes the max depth, sizing the
  //    table through the formula the fresh build uses.
  dist_.assign(m, kFar);
  for (int32_t sl : changed) dist_[sl] = 0;
  depth_.resize(m);
  uint32_t maxd = 0;
  for (size_t i = m; i-- > 0;) {
    const int32_t p = s.parent_[i];
    if (p != kNoSlot) {
      depth_[i] = depth_[p] + 1;
      if (dist_[i] != 0 && dist_[p] != kFar) dist_[i] = dist_[p] + 1;
    } else {
      depth_[i] = 0;
    }
    if (depth_[i] > maxd) maxd = depth_[i];
  }

  s.levels_ = DendrogramSnapshot::levels_for_depth(maxd);
  // Every row is written in full below (row 0 copies parent_, later
  // rounds either gather or recompute all m entries), so rows append
  // into reserved storage instead of paying a zero-fill pass over the
  // whole table first. reserve() up front keeps data() stable.
  s.up_.reserve(static_cast<size_t>(s.levels_) * m);
  out.rounds_total = static_cast<uint32_t>(s.levels_);
  out.nodes_patched = changed.size();  // round-0 writes (parent_ fixups)
  if (m) {
    s.up_.insert(s.up_.end(), s.parent_.begin(), s.parent_.end());
    const int kcopy = std::min(s.levels_, prev.levels_);
    // Bucket each slot by the first round whose copy is invalid for it
    // (dist < 2^k <=> k >= bit_width(dist); changed slots start at 1).
    if (rounds_.size() < static_cast<size_t>(s.levels_))
      rounds_.resize(static_cast<size_t>(s.levels_));
    for (Round& r : rounds_) r.bucket.clear();
    for (size_t i = 0; i < m; ++i) {
      if (dist_[i] == kFar) continue;
      const int start = dist_[i] == 0 ? 1 : std::bit_width(dist_[i]);
      if (start < s.levels_)
        rounds_[start].bucket.push_back(static_cast<int32_t>(i));
    }
    active_.clear();
    for (int k = 1; k < s.levels_; ++k) {
      // Capacity is reserved above, so this append never reallocates:
      // the row below stays valid while the new row is written in
      // place, and each page is touched by the write itself.
      s.up_.resize(static_cast<size_t>(k + 1) * m);
      int32_t* const row = s.up_.data() + static_cast<size_t>(k) * m;
      const int32_t* below = row - m;
      bool rerun = k >= kcopy;  // no previous row at this height
      if (!rerun) {
        active_.insert(active_.end(), rounds_[k].bucket.begin(),
                       rounds_[k].bucket.end());
        // Once the active set covers half the shard, one recompute
        // pass beats a full gather plus fixups over half the entries.
        rerun = 2 * active_.size() >= m;
      }
      if (rerun) {
        // Whole round re-runs off the finished round below it.
        for (size_t i = 0; i < m; ++i) {
          const int32_t half = below[i];
          row[i] = half == kNoSlot ? kNoSlot : below[half];
        }
        ++out.rounds_rerun;
        out.nodes_patched += m;
      } else {
        // Row gather reads only the previous epoch's table: an entry
        // whose 2^k-hop chain avoids every changed node lands on the
        // same ancestor as last epoch, so the remapped copy is final.
        // Streaming the merge's survivor runs keeps both row accesses
        // sequential; only the value remap is a random (L1-resident)
        // read. Added slots have dist 0 — every one is in active_, so
        // the fixup pass below overwrites their placeholder.
        const int32_t* old_row =
            prev.up_.data() + static_cast<size_t>(k) * m_old;
        for (edge_id e : added) row[slot_of_[e]] = kRemovedSlot;
        for (const Run& r : runs_) {
          const int32_t* src = old_row + r.old_start;
          int32_t* dst = row + r.new_start;
          for (int32_t t = 0; t < r.len; ++t) {
            const int32_t ov = src[t];
            dst[t] = ov == kNoSlot ? kNoSlot : remap_[ov];
          }
        }
        for (const int32_t i : active_) {
          const int32_t half = below[i];
          row[i] = half == kNoSlot ? kNoSlot : below[half];
        }
        out.nodes_patched += active_.size();
      }
    }
  }

  // 10. Re-arm for the next epoch.
  ids_ = std::move(new_ids);
  sld.enable_structure_journal(journal_cap(m));
  last_ = snap;
  out.patched = true;
  return snap;
}

}  // namespace dynsld::engine
