#include "engine/replay.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <deque>
#include <thread>

#include "parallel/random.hpp"

namespace dynsld::engine {

size_t Trace::num_inserts() const {
  size_t k = 0;
  for (const TraceOp& op : ops) k += op.kind == TraceOp::kInsert;
  return k;
}

Trace Trace::sliding_window(int window, int steps, int per_step,
                            double connect_radius, uint64_t seed) {
  Trace tr;
  tr.num_vertices = static_cast<vertex_id>(window + steps * per_step);
  par::Rng rng(seed);

  struct Point {
    vertex_id id;
    double x, y;
    std::vector<uint32_t> edge_ops;  // indices of insert ops touching it
  };
  std::deque<Point> live;
  vertex_id next_id = 0;

  auto blob_center = [](int t, int b) {
    double phase = 0.08 * t + 2.1 * b;
    return std::pair<double, double>{1.5 + std::cos(phase),
                                     1.5 + std::sin(phase)};
  };
  auto add_point = [&](int t) {
    int b = static_cast<int>(rng.next_bounded(3));
    auto [cx, cy] = blob_center(t, b);
    Point p;
    p.id = next_id++;
    p.x = cx + (rng.next_double() - 0.5) * 0.3;
    p.y = cy + (rng.next_double() - 0.5) * 0.3;
    for (Point& q : live) {
      double d = std::hypot(p.x - q.x, p.y - q.y);
      if (d <= connect_radius) {
        uint32_t op = static_cast<uint32_t>(tr.ops.size());
        tr.ops.push_back(TraceOp{TraceOp::kInsert, p.id, q.id, d, 0});
        p.edge_ops.push_back(op);
        q.edge_ops.push_back(op);
      }
    }
    live.push_back(std::move(p));
  };

  for (int i = 0; i < window; ++i) add_point(0);
  std::vector<char> erased(tr.ops.size(), 0);
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < per_step; ++i) {
      for (uint32_t op : live.front().edge_ops) {
        if (op < erased.size() && erased[op]) continue;
        if (op >= erased.size()) erased.resize(op + 1, 0);
        erased[op] = 1;
        tr.ops.push_back(TraceOp{TraceOp::kErase, 0, 0, 0.0, op});
      }
      live.pop_front();
    }
    for (int i = 0; i < per_step; ++i) add_point(t);
    erased.resize(tr.ops.size(), 0);
  }
  return tr;
}

Trace Trace::blocks(int groups, int block, int churn_ops,
                    double cross_fraction, uint64_t seed) {
  Trace tr;
  tr.num_vertices = static_cast<vertex_id>(groups) * block;
  par::Rng rng(seed);
  std::vector<uint32_t> live_ops;  // insert op indices still alive
  for (int i = 0; i < churn_ops; ++i) {
    bool do_erase = !live_ops.empty() && rng.next_double() < 0.35;
    if (do_erase) {
      size_t j = rng.next_bounded(live_ops.size());
      tr.ops.push_back(TraceOp{TraceOp::kErase, 0, 0, 0.0, live_ops[j]});
      live_ops[j] = live_ops.back();
      live_ops.pop_back();
      continue;
    }
    vertex_id u, v;
    if (rng.next_double() < cross_fraction && groups > 1) {
      int ga = static_cast<int>(rng.next_bounded(groups));
      int gb = static_cast<int>(rng.next_bounded(groups - 1));
      if (gb >= ga) ++gb;
      u = static_cast<vertex_id>(ga) * block + rng.next_bounded(block);
      v = static_cast<vertex_id>(gb) * block + rng.next_bounded(block);
    } else {
      int g = static_cast<int>(rng.next_bounded(groups));
      u = static_cast<vertex_id>(g) * block + rng.next_bounded(block);
      do {
        v = static_cast<vertex_id>(g) * block + rng.next_bounded(block);
      } while (v == u);
    }
    live_ops.push_back(static_cast<uint32_t>(tr.ops.size()));
    tr.ops.push_back(
        TraceOp{TraceOp::kInsert, u, v, rng.next_double(), 0});
  }
  return tr;
}

ReplayReport replay(const Trace& trace, SldService& svc,
                    const ReplayOptions& opt) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_queries{0};
  std::vector<std::thread> readers;
  readers.reserve(opt.reader_threads);
  for (int r = 0; r < opt.reader_threads; ++r) {
    readers.emplace_back([&, r] {
      par::Rng rng(opt.query_seed + 7919 * (r + 1));
      uint64_t local = 0;
      // One query-mix loop for both read paths; `target` yields the
      // ThresholdView to query — reused per epoch (amortized mode) or
      // built fresh per call, which is exactly what the snapshot
      // conveniences do internally.
      std::shared_ptr<const ThresholdView> tv;
      auto target = [&]() -> std::shared_ptr<const ThresholdView> {
        if (opt.amortize_views) {
          if (!tv || svc.epoch() != tv->epoch())
            tv = svc.view().at(opt.tau);
          return tv;
        }
        return std::make_shared<const ThresholdView>(svc.snapshot(), opt.tau);
      };
      while (!done.load(std::memory_order_relaxed)) {
        auto t = target();
        vertex_id u = rng.next_bounded(trace.num_vertices);
        vertex_id v = rng.next_bounded(trace.num_vertices);
        switch (rng.next_bounded(3)) {
          case 0:
            t->same_cluster(u, v);
            break;
          case 1:
            t->cluster_size(u);
            break;
          default:
            t->flat_clustering();
            break;
        }
        ++local;
      }
      reader_queries.fetch_add(local, std::memory_order_relaxed);
    });
  }

  uint64_t epochs_before = svc.stats().epochs_published;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<ticket_t> tickets(trace.ops.size(), kNoTicket);
  size_t since_flush = 0;
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    const TraceOp& op = trace.ops[i];
    if (op.kind == TraceOp::kInsert) {
      tickets[i] = svc.insert(op.u, op.v, op.w);
    } else {
      assert(tickets[op.ref] != kNoTicket);
      svc.erase(tickets[op.ref]);
    }
    if (++since_flush >= opt.ops_per_flush) {
      svc.flush();
      since_flush = 0;
    }
  }
  svc.flush();
  double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  ReplayReport rep;
  rep.wall_ms = wall_ms;
  rep.ops_applied = trace.ops.size();
  rep.epochs_published = svc.stats().epochs_published - epochs_before;
  rep.reader_queries = reader_queries.load();
  rep.updates_per_s = wall_ms > 0 ? 1e3 * rep.ops_applied / wall_ms : 0.0;
  rep.queries_per_s = wall_ms > 0 ? 1e3 * rep.reader_queries / wall_ms : 0.0;
  return rep;
}

}  // namespace dynsld::engine
