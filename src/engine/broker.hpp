// QueryBroker: the asynchronous front door of the read plane.
//
// PRs 1-4 built a read surface that amortizes beautifully *within* one
// caller (a ThresholdView shares its merge resolution across every
// query at its tau) but not *across* callers: two clients asking at
// the same tau in the same epoch each resolve their own transient
// view, and there is no backpressure, deadline, or cancellation story
// at all. The broker closes that gap by making submission asynchronous
// and dispatch batched:
//
//   client A ── submit(QueryRequest) ──> lock-free intake ─┐
//   client B ── submit(...)          ──>       (MPSC stack)│
//   client C ── submit_batch(...)    ──>                   │ drain
//                                                          v
//   SubscriptionHub publish signal ──> dispatcher thread:
//   micro-batch timer             ──>   expire past-deadline / cancelled
//                                       park AtLeastEpoch waiters
//                                       group the rest by (epoch, tau)
//                                       — ACROSS clients —
//                                       one ThresholdView per group
//                                       (standing cache, refreshed
//                                        incrementally per epoch)
//                                       execute groups in parallel
//                                       fulfill the futures
//
// The request envelope (QueryRequest, query.hpp) carries the typed
// Query payload plus a deadline, a consistency mode (Latest /
// AtLeastEpoch / Pinned), and a CancelToken. A request that cannot be
// served — deadline passed, cancelled while queued, intake over the
// configured queue depth (admission control), or broker shutdown —
// resolves its future with a typed QueryError and NEVER executes any
// query work. No future is ever left dangling: shutdown resolves
// everything still in flight.
//
// Amortization: all Latest requests of one dispatch cycle share the
// cycle's epoch, so concurrent clients at one tau collapse into a
// single (epoch, tau) group backed by one ThresholdView — one cross-UF
// resolution no matter how many clients asked (the E-ENGINE-7 claim,
// counter-verified). The view cache is carried across epochs through
// ThresholdView::refreshed, so steady-state traffic at stable taus
// pays the *incremental* refresh cost per epoch, like a SubscribedView.
//
// Threading: submit()/submit_batch() are thread-safe and lock-free on
// the intake path (one CAS per request chain plus a wakeup). The
// dispatcher is one background thread; group execution fans out on the
// global fork-join scheduler. Futures may outlive the broker — the
// shared state keeps them valid; they just resolve with
// QueryError{kShutdown} if the broker died first.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/cluster_view.hpp"
#include "engine/epoch.hpp"
#include "engine/query.hpp"
#include "engine/stats.hpp"
#include "engine/subscription.hpp"

namespace dynsld::engine {

/// The async request plane between clients and the query plane (see
/// the header comment). Owned by SldService; power users reach it via
/// SldService::broker() for depth introspection, but submit through
/// the service facade.
class QueryBroker {
 public:
  /// Construction-time knobs (surfaced in ServiceConfig).
  struct Options {
    /// Admission control: submits beyond this many in-flight requests
    /// are rejected immediately with QueryError{kAdmissionRejected}.
    size_t queue_depth = 4096;
    /// Dispatcher micro-batch timer: upper bound on how long intake
    /// can sit before a dispatch cycle picks it up (submits and
    /// publishes nudge the dispatcher immediately; the timer is the
    /// liveness fallback and the parked-deadline sweep granularity).
    std::chrono::microseconds interval{200};
  };

  /// Starts the dispatcher thread and registers with `hub` as a system
  /// subscriber (publishes wake the dispatcher; AtLeastEpoch waiters
  /// unpark). `epochs` and `hub` must outlive the broker. `obs` (the
  /// owning service's observability bundle, nullable in unit contexts)
  /// receives the request-lifecycle histograms — intake wait, park
  /// time, per-group resolve, submit-to-fulfill — and dispatch spans.
  QueryBroker(const EpochManager& epochs, SubscriptionHub& hub,
              std::shared_ptr<EngineObs> obs, Options opt);
  /// Implies shutdown(): all in-flight futures resolve.
  ~QueryBroker();

  QueryBroker(const QueryBroker&) = delete;
  QueryBroker& operator=(const QueryBroker&) = delete;

  /// Enqueue one request; returns the future of its ResultSet. The
  /// future throws QueryError from get() when the request expired, was
  /// cancelled or rejected at intake, or the broker shut down — in all
  /// of which cases none of its queries executed. An empty request
  /// completes immediately with the current epoch.
  std::future<ResultSet> submit(QueryRequest req);

  /// Enqueue several requests as one atomic intake splice (a single
  /// CAS): the dispatcher sees them in the same cycle, so their shared
  /// (epoch, tau) groups are guaranteed to collapse. futures[i] belongs
  /// to reqs[i].
  std::vector<std::future<ResultSet>> submit_batch(
      std::vector<QueryRequest> reqs);

  /// Stop the dispatcher and resolve every queued/parked request with
  /// QueryError{kShutdown}. Idempotent; later submits are rejected the
  /// same way. Existing futures stay valid (shared state).
  void shutdown();

  /// Requests accepted but not yet fulfilled (intake + parked +
  /// dispatching) — the admission-control gauge.
  size_t depth() const { return depth_.load(std::memory_order_acquire); }

  /// Checkpoint-rehydration tier of AsOf{epoch}: resolves a historical
  /// epoch the in-memory retention ring no longer holds (null result =
  /// no checkpoint at that epoch). Thread-safe to set; invoked on the
  /// dispatcher thread only.
  using Rehydrator = std::function<EpochManager::Snap(uint64_t)>;
  /// Install/replace the rehydration tier (the service wires this when
  /// persistence attaches; without one, ring misses are unavailable).
  void set_rehydrator(Rehydrator fn);

  /// Nudge the dispatcher to run a cycle now (deadline sweep, unpark
  /// check) without waiting for a submit, a publish, or the interval
  /// timer. Harmless at any time; the network server uses it during
  /// connection teardown.
  void wake() { nudge(); }

  /// Resolve every parked AtLeastEpoch waiter with
  /// QueryError{kShutdown} at the next dispatch cycle (triggered now).
  /// A server drain calls this so it cannot wait forever on a waiter
  /// whose epoch an idle engine will never publish; unlike shutdown(),
  /// the broker stays live for new submits. Counted in
  /// broker_drain_aborted.
  void abort_waiters();

  /// Set the QoS weight of `client` (see QueryRequest::client). A
  /// client's admission share of queue_depth is weight / total_weight
  /// across all clients ever seen; weight 0 clamps to 1. No-op in
  /// obs-less unit contexts (no client table to weight).
  void set_client_weight(uint64_t client, uint64_t weight);

 private:
  /// One accepted request: envelope, fulfillment state, intake link.
  struct Request {
    QueryRequest req;
    std::promise<ResultSet> promise;
    ResultSet out;  // results preallocated at classification
    // Distinct (epoch, tau) groups still owing answers; the group that
    // decrements this to zero fulfills the promise.
    std::atomic<uint32_t> groups_left{0};
    Request* next = nullptr;  // intake chain link
    // Lifecycle stamps (obs histograms): admission time — the base of
    // intake-wait and submit-to-fulfill — and, for AtLeastEpoch
    // waiters, when the dispatcher parked it.
    std::chrono::steady_clock::time_point submitted{};
    std::chrono::steady_clock::time_point parked_at{};
    // Per-client QoS accounting row (null for the anonymous pool or in
    // obs-less contexts); inflight was bumped at admission and must
    // drop exactly once at resolution.
    ClientStats* client_stats = nullptr;
  };

  /// One cross-client (snapshot, tau) execution unit of a cycle.
  struct Group {
    EpochManager::Snap snap;
    double tau = 0.0;
    std::shared_ptr<const ThresholdView> prev;  // cache basis (may be null)
    std::shared_ptr<const ThresholdView> view;  // resolved during execution
    bool current = false;  // snap == the cycle's Latest snapshot
    std::vector<std::pair<Request*, uint32_t>> items;  // (request, query idx)
  };

  static std::future<ResultSet> error_future(QueryErrorCode code);
  /// Shared submit front half: fast-fail (shutdown / cancelled /
  /// expired / completable-empty) or admit one request. On fast paths
  /// returns the already-resolved future with *out null; on admission
  /// returns the live future and hands the allocated request back in
  /// *out for the caller to splice into the intake.
  std::future<ResultSet> prepare(QueryRequest&& req, bool stopped,
                                 Request** out);
  /// Push a pre-linked [first..last] chain with one CAS. Returns true
  /// when the intake was empty — the only case that needs a nudge (a
  /// non-empty intake already has one pending, and the dispatcher
  /// re-checks the intake under the wake lock before sleeping).
  bool push_chain(Request* first, Request* last);
  void nudge();
  /// Resolve with an error and reclaim (never ran any query work).
  void finish_error(Request* r, QueryErrorCode code);
  /// Resolve with r->out and reclaim.
  void finish_ok(Request* r);
  /// Resolve everything in the intake with kShutdown (shutdown path,
  /// also the submit-vs-shutdown race backstop).
  void abort_intake();
  void dispatcher_loop();
  /// One dispatch cycle: drain intake, unpark/expire waiters, classify,
  /// group across clients, execute, fulfill.
  void dispatch_cycle();

  const EpochManager& epochs_;
  SubscriptionHub& hub_;
  std::shared_ptr<EngineObs> obs_;
  // Aliasing handle on obs_->stats, so counter bumps stay one `->`.
  std::shared_ptr<EngineStats> stats_;
  Options opt_;
  SubscriptionHub::Token hub_token_ = 0;

  // Intake: MPSC Treiber stack (order restored at drain). seq_cst so
  // the submit-side stopped_ check totally orders against shutdown's
  // final drain — a request can land after it only if its submitter
  // already observed stopped_ and aborts the intake itself.
  std::atomic<Request*> intake_{nullptr};
  std::atomic<size_t> depth_{0};
  std::atomic<bool> stopped_{false};
  // Drain request (abort_waiters): consumed by the dispatch cycle that
  // cuts the parked waiters loose.
  std::atomic<bool> abort_waiters_{false};

  std::mutex rehydrate_mu_;  // guards rehydrate_ (set vs dispatcher read)
  Rehydrator rehydrate_;

  std::mutex mu_;  // dispatcher sleep/wake + stop flag
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::mutex shutdown_mu_;  // serializes concurrent shutdown() calls
  std::thread dispatcher_;

  /// One standing-cache entry: the resolved view plus the dispatch
  /// cycle that last used it (idle entries are evicted, so per-publish
  /// refresh work is bounded by the actively queried taus).
  struct CachedView {
    std::shared_ptr<const ThresholdView> view;
    uint64_t last_used = 0;
  };

  // Dispatcher-thread-only state (shutdown touches it after join).
  std::vector<Request*> parked_;  // AtLeastEpoch waiters
  uint64_t last_epoch_ = 0;       // epoch of the last cycle's snapshot
  uint64_t cycle_ = 0;            // dispatch-cycle counter (cache aging)
  std::atomic<uint64_t> published_{0};  // max epoch the hub announced
  /// Standing Latest-view cache, one entry per tau, carried across
  /// epochs via ThresholdView::refreshed.
  std::map<double, CachedView> views_;

  static constexpr size_t kMaxCachedTaus = 64;
  static constexpr uint64_t kIdleEvictCycles = 16;
};

}  // namespace dynsld::engine
