#include "engine/cluster_view.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "dendrogram/static_sld.hpp"
#include "parallel/par.hpp"

namespace dynsld::engine {

int64_t ThresholdView::slot_key(int32_t top, vertex_id vtx) {
  // Clustered blobs key on the (non-negative) top slot; singleton blobs
  // key on the vertex, folded into the negative range so the two spaces
  // never collide within a shard.
  if (top == DendrogramSnapshot::kNoSlot) return -1 - static_cast<int64_t>(vtx);
  return top;
}

std::shared_ptr<const ThresholdView::Resolution> ThresholdView::resolve(
    const EngineSnapshot& es, double tau, const Resolution* prev,
    const std::vector<char>* shard_clean) {
  const auto& cross = es.cross().edges();  // weight-ascending
  const size_t m = es.cross().sub_tau_prefix(tau);
  if (m == 0) return nullptr;  // trivial mode: every cluster is one shard blob

  auto res = std::make_shared<Resolution>();
  const ShardMap& map = es.shard_map();
  const int K = map.num_shards;

  // Clean shards share their ShardBlobs from prev by pointer (frozen:
  // lookups only, guaranteed to hit because the sub-tau prefix — hence
  // the endpoint multiset — is unchanged on this path); rebuilt shards
  // get fresh blocks and re-intern.
  std::vector<std::shared_ptr<ShardBlobs>> fresh(K);
  res->shard.resize(K);
  for (int k = 0; k < K; ++k) {
    if (prev && shard_clean && (*shard_clean)[k]) {
      res->shard[k] = prev->shard[k];
    } else {
      fresh[k] = std::make_shared<ShardBlobs>();
      res->shard[k] = fresh[k];
    }
  }

  struct Occ {
    int32_t shard;
    uint32_t local;
  };
  auto intern = [&](vertex_id x) -> Occ {
    int k = map.home(x);
    if (!fresh[k]) {  // frozen clean shard
      const ShardBlobs& sb = *res->shard[k];
      int32_t top = sb.endpoint_top.at(x);
      return {k, sb.blob_of.at(slot_key(top, x))};
    }
    ShardBlobs& sb = *fresh[k];
    auto [et, fresh_ep] =
        sb.endpoint_top.try_emplace(x, DendrogramSnapshot::kNoSlot);
    if (fresh_ep) et->second = es.shard(k).top_of(x, tau);
    auto [bt, fresh_blob] =
        sb.blob_of.try_emplace(slot_key(et->second, x),
                               static_cast<uint32_t>(sb.local.size()));
    if (fresh_blob)
      sb.local.push_back(Blob{static_cast<int32_t>(k), et->second, x});
    return {k, bt->second};
  };

  std::vector<Occ> occ;
  occ.reserve(2 * m);
  for (size_t i = 0; i < m; ++i) {
    occ.push_back(intern(cross[i].u));
    occ.push_back(intern(cross[i].v));
  }

  // Dense global blob ids: per-shard prefix offsets over the (possibly
  // shared) local blob lists.
  res->blob_base.assign(K + 1, 0);
  for (int k = 0; k < K; ++k)
    res->blob_base[k + 1] =
        res->blob_base[k] + static_cast<uint32_t>(res->shard[k]->local.size());
  const uint32_t num_blobs = res->blob_base[K];
  res->blobs.reserve(num_blobs);
  for (int k = 0; k < K; ++k)
    res->blobs.insert(res->blobs.end(), res->shard[k]->local.begin(),
                      res->shard[k]->local.end());

  UnionFind uf(num_blobs);
  for (size_t i = 0; i < occ.size(); i += 2)
    uf.unite(res->blob_base[occ[i].shard] + occ[i].local,
             res->blob_base[occ[i + 1].shard] + occ[i + 1].local);

  // Flatten into dense immutable groups (queries must be pure reads).
  res->blob_group.assign(num_blobs, -1);
  std::vector<int32_t> root_group(num_blobs, -1);
  int32_t num_groups = 0;
  for (uint32_t i = 0; i < num_blobs; ++i) {
    vertex_id r = uf.find(i);
    if (root_group[r] < 0) root_group[r] = num_groups++;
    res->blob_group[i] = root_group[r];
  }

  res->group_size.assign(num_groups, 0);
  res->group_off.assign(num_groups + 1, 0);
  for (uint32_t i = 0; i < num_blobs; ++i)
    ++res->group_off[res->blob_group[i] + 1];
  std::partial_sum(res->group_off.begin(), res->group_off.end(),
                   res->group_off.begin());
  res->group_blobs.resize(num_blobs);
  std::vector<uint32_t> cursor(res->group_off.begin(),
                               res->group_off.end() - 1);
  for (uint32_t i = 0; i < num_blobs; ++i) {
    res->group_blobs[cursor[res->blob_group[i]]++] = i;
    const Blob& b = res->blobs[i];
    res->group_size[res->blob_group[i]] +=
        b.top == DendrogramSnapshot::kNoSlot
            ? 1
            : es.shard(b.shard).slot_count(b.top);
  }
  return res;
}

ThresholdView::ThresholdView(EpochManager::Snap snap, double tau)
    : snap_(std::move(snap)), tau_(tau) {
  const auto& stats = snap_->stats();
  if (stats) stats->views_built.fetch_add(1, std::memory_order_relaxed);
  res_ = resolve(*snap_, tau_, nullptr, nullptr);
  if (res_ && stats)
    stats->cross_uf_builds.fetch_add(1, std::memory_order_relaxed);
}

ThresholdView::ThresholdView(EpochManager::Snap snap, double tau,
                             std::shared_ptr<const Resolution> res)
    : snap_(std::move(snap)), tau_(tau), res_(std::move(res)) {}

std::shared_ptr<const ThresholdView> ThresholdView::refreshed(
    const std::shared_ptr<const ThresholdView>& prev,
    EpochManager::Snap snap) {
  assert(prev);
  if (snap->epoch() == prev->snap_->epoch()) return prev;
  const EngineSnapshot& es = *snap;
  const EngineSnapshot& pes = *prev->snap_;
  const double tau = prev->tau_;
  const auto& stats = es.stats();
  const ShardMap& map = es.shard_map();
  assert(map.num_shards == pes.shard_map().num_shards &&
         map.n == pes.shard_map().n);

  // Shard cleanliness is pointer identity: an epoch reuses untouched
  // shards' DendrogramSnapshots by pointer, so this holds across any
  // number of skipped epochs with no delta chaining.
  std::vector<char> clean(map.num_shards, 0);
  int num_dirty = 0;
  for (int k = 0; k < map.num_shards; ++k) {
    clean[k] = &es.shard(k) == &pes.shard(k);
    num_dirty += !clean[k];
  }

  // Flat-label patch basis: prev's materialized labels (or the seed it
  // inherited). The single-step EpochDelta short-circuits hopeless
  // cases — a flush that rebuilt a majority of the vertex mass forces
  // a label rebuild no matter what came before — and the exact mass vs
  // the seed's origin catches multi-epoch accumulation, so a doomed
  // seed never pins a dead epoch's arrays.
  std::shared_ptr<const LabelSeed> seed;
  if (es.delta().base_epoch != pes.epoch() ||
      es.delta().label_patch_viable(map.n))
    seed = prev->label_seed();
  if (seed) {
    uint64_t mass = 0;
    for (int k = 0; k < map.num_shards; ++k) {
      if (&es.shard(k) != &seed->origin->shard(k)) mass += map.local_size(k);
    }
    if (2 * mass >= map.n) seed.reset();
  }

  // The resolution reads only the sub-tau cross prefix: unchanged when
  // the table is pointer-identical, or when a single-step delta proves
  // every changed cross edge sits above this threshold.
  bool prefix_same = &es.cross() == &pes.cross();
  if (!prefix_same && es.delta().base_epoch == pes.epoch() &&
      es.delta().cross_min_w > tau)
    prefix_same = true;

  if (!prefix_same) {
    if (stats) {
      stats->refresh_views_full.fetch_add(1, std::memory_order_relaxed);
      stats->refresh_shards_rebuilt.fetch_add(map.num_shards,
                                              std::memory_order_relaxed);
    }
    auto view = std::make_shared<const ThresholdView>(std::move(snap), tau);
    view->seed_ = std::move(seed);  // label patching survives a re-resolve
    return view;
  }

  if (stats) {
    stats->refresh_shards_reused.fetch_add(map.num_shards - num_dirty,
                                           std::memory_order_relaxed);
    stats->refresh_shards_rebuilt.fetch_add(num_dirty,
                                            std::memory_order_relaxed);
  }

  // Does the resolution read any rebuilt shard? Endpoint tops and blob
  // slot counts are per home shard of the cross endpoints, so a rebuild
  // of a shard no sub-tau cross edge touches cannot affect it.
  bool touches_dirty = false;
  if (num_dirty && prev->res_) {
    for (int k = 0; k < map.num_shards; ++k) {
      if (!clean[k] && !prev->res_->shard[k]->local.empty()) {
        touches_dirty = true;
        break;
      }
    }
  }
  if (!touches_dirty) {
    if (stats)
      stats->refresh_views_reused.fetch_add(1, std::memory_order_relaxed);
    auto view = std::shared_ptr<const ThresholdView>(
        new ThresholdView(std::move(snap), tau, prev->res_));
    view->seed_ = std::move(seed);
    return view;
  }

  if (stats) {
    stats->refresh_views_incremental.fetch_add(1, std::memory_order_relaxed);
    stats->cross_uf_incremental.fetch_add(1, std::memory_order_relaxed);
  }
  auto res = resolve(es, tau, prev->res_.get(), &clean);
  auto view = std::shared_ptr<const ThresholdView>(
      new ThresholdView(std::move(snap), tau, std::move(res)));
  view->seed_ = std::move(seed);
  return view;
}

int32_t ThresholdView::resolve_vertex(vertex_id x, int& shard,
                                      int32_t& top) const {
  const EngineSnapshot& es = *snap_;
  shard = es.shard_map().home(x);
  if (!res_) {
    top = es.shard(shard).top_of(x, tau_);
    return -1;
  }
  const ShardBlobs& sb = *res_->shard[shard];
  // Cross endpoints carry their top in the shard's cache (valid for
  // this epoch: clean-shard entries are pointer-stable).
  auto et = sb.endpoint_top.find(x);
  top = et != sb.endpoint_top.end() ? et->second
                                    : es.shard(shard).top_of(x, tau_);
  auto bt = sb.blob_of.find(slot_key(top, x));
  if (bt == sb.blob_of.end()) return -1;
  return res_->blob_group[res_->blob_base[shard] + bt->second];
}

bool ThresholdView::same_cluster(vertex_id s, vertex_id t) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_same_cluster.fetch_add(1, std::memory_order_relaxed);
  if (s == t) return true;
  int ss, st;
  int32_t tops, topt;
  int32_t gs = resolve_vertex(s, ss, tops);
  int32_t gt = resolve_vertex(t, st, topt);
  if (gs >= 0 || gt >= 0) return gs == gt;
  // Neither blob is touched by a sub-tau cross edge: the cluster is the
  // blob itself, so equality is same shard + same (non-singleton) top.
  return ss == st && tops != DendrogramSnapshot::kNoSlot && tops == topt;
}

uint64_t ThresholdView::cluster_size(vertex_id u) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_cluster_size.fetch_add(1, std::memory_order_relaxed);
  int s;
  int32_t top;
  int32_t g = resolve_vertex(u, s, top);
  if (g >= 0) return res_->group_size[g];
  return top == DendrogramSnapshot::kNoSlot
             ? 1
             : snap_->shard(s).slot_count(top);
}

std::vector<vertex_id> ThresholdView::cluster_report(vertex_id u) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_cluster_report.fetch_add(1, std::memory_order_relaxed);
  int s;
  int32_t top;
  int32_t g = resolve_vertex(u, s, top);
  if (g < 0) {
    if (top == DendrogramSnapshot::kNoSlot) return {u};
    std::vector<vertex_id> out;
    out.reserve(snap_->shard(s).slot_count(top));
    snap_->shard(s).members_of(top, out);
    return out;
  }
  std::vector<vertex_id> out;
  out.reserve(res_->group_size[g]);
  for (uint32_t i = res_->group_off[g]; i < res_->group_off[g + 1]; ++i) {
    const Blob& b = res_->blobs[res_->group_blobs[i]];
    if (b.top == DendrogramSnapshot::kNoSlot)
      out.push_back(b.vtx);
    else
      snap_->shard(b.shard).members_of(b.top, out);
  }
  return out;
}

std::shared_ptr<const ThresholdView::LabelSet> ThresholdView::build_labels(
    const EngineSnapshot& es, double tau, const Resolution* res,
    const LabelSeed* seed) {
  const ShardMap& map = es.shard_map();
  const int K = map.num_shards;
  const auto& stats = es.stats();

  // Shard cleanliness vs the seed's ORIGIN (not just the previous
  // epoch): pointer identity holds across any number of skipped
  // refreshes, because a rebuilt snapshot is a fresh allocation that
  // can never equal a pointer the seed keeps alive.
  std::vector<char> clean(K, 0);
  uint64_t dirty_mass = 0;
  if (seed) {
    assert(seed->origin->shard_map().n == map.n &&
           seed->origin->shard_map().num_shards == K);
    for (int k = 0; k < K; ++k) {
      clean[k] = &es.shard(k) == &seed->origin->shard(k);
      if (!clean[k]) dirty_mass += map.local_size(k);
    }
    // Nothing this view reads changed since the seed's origin: adopt
    // the whole LabelSet (flat array, shard blocks, histogram) as-is.
    if (dirty_mass == 0 && res == seed->res.get()) {
      if (stats) stats->labels_reused.fetch_add(1, std::memory_order_relaxed);
      return seed->labels;
    }
  }
  // Patch only while the rebuilt vertex mass is a minority of n;
  // otherwise the O(n) copy stops paying for itself (the same bound
  // EpochDelta::label_patch_viable applies per flush).
  const bool patch = seed && 2 * dirty_mass < map.n;

  auto ls = std::make_shared<LabelSet>();
  ls->shard.resize(K);
  for (int k = 0; k < K; ++k) {
    if (seed && clean[k]) {  // identical snapshot + tau => identical block
      ls->shard[k] = seed->labels->shard[k];
    } else {
      ls->shard[k] = std::make_shared<const DendrogramSnapshot::FlatLabels>(
          es.shard(k).flat_labels(tau));
    }
  }

  // Canonical label of a blob's cluster, O(1): the vertex itself for a
  // singleton blob, the top node's u endpoint otherwise — the same
  // label flat_labels() assigns, so an un-merged blob needs no write.
  // The blob's slots index `in`'s shard snapshots, so an old blob must
  // be read through the seed's origin (its home shard may be rebuilt).
  auto canon = [](const EngineSnapshot& in, const Blob& b) -> vertex_id {
    return b.top == DendrogramSnapshot::kNoSlot
               ? b.vtx
               : in.shard(b.shard).slot_u(b.top);
  };
  // A group's canonical label: min over its blobs' canons —
  // order-independent, so an incremental and a from-scratch resolution
  // agree on it bit-for-bit.
  auto group_labels = [&](const EngineSnapshot& in, const Resolution* r) {
    std::vector<vertex_id> gl;
    if (!r) return gl;
    gl.assign(r->group_size.size(), std::numeric_limits<vertex_id>::max());
    for (size_t i = 0; i < r->blobs.size(); ++i) {
      vertex_id c = canon(in, r->blobs[i]);
      if (c < gl[r->blob_group[i]]) gl[r->blob_group[i]] = c;
    }
    return gl;
  };
  const std::vector<vertex_id> glabel = group_labels(es, res);

  // Blob-granular label writes against a base the caller prepared:
  // members of group blobs get their group label; `stable` (patch path
  // only) marks blobs whose members provably already carry it.
  std::vector<vertex_id> members;
  auto apply_fixups = [&](const std::vector<char>* stable) {
    if (!res) return;
    for (size_t i = 0; i < res->blobs.size(); ++i) {
      if (stable && (*stable)[i]) continue;
      const Blob& b = res->blobs[i];
      vertex_id gl = glabel[res->blob_group[i]];
      if (b.top == DendrogramSnapshot::kNoSlot) {
        ls->flat[b.vtx] = gl;
        continue;
      }
      if (canon(es, b) == gl) continue;  // base label already correct
      members.clear();
      es.shard(b.shard).members_of(b.top, members);
      for (vertex_id v : members) ls->flat[v] = gl;
    }
  };

  if (patch) {
    // Copy-on-write patch: start from the origin's flat array, then
    // re-label exactly what may differ — dirty shards' vertex ranges
    // and the members of cross-merge groups whose label changed.
    // O(n/K * dirty_shards + changed-group mass) plus the memcpy.
    ls->flat = seed->labels->flat;
    for (int k = 0; k < K; ++k) {
      if (clean[k]) continue;
      std::copy(ls->shard[k]->label.begin(), ls->shard[k]->label.end(),
                ls->flat.begin() + map.base(k));
    }
    if (res != seed->res.get()) {
      const std::vector<vertex_id> old_glabel =
          group_labels(*seed->origin, seed->res.get());
      // A blob is STABLE when it kept its identity across the refresh —
      // clean home shard and the resolution sharing that shard's
      // ShardBlobs block (so old and new local blob indices coincide) —
      // and its group's label is unchanged. Its members already carry
      // the right label; a giant unchanged cross group costs zero
      // writes. Everything else: undo the old fixup (restore canonical
      // base labels), then apply the new groups.
      std::vector<char> stable;
      if (res && seed->res) {
        stable.assign(res->blobs.size(), 0);
        for (int k = 0; k < K; ++k) {
          if (!clean[k] || res->shard[k] != seed->res->shard[k]) continue;
          uint32_t nb = res->blob_base[k], ob = seed->res->blob_base[k];
          uint32_t cnt = static_cast<uint32_t>(res->shard[k]->local.size());
          for (uint32_t i = 0; i < cnt; ++i) {
            stable[nb + i] = glabel[res->blob_group[nb + i]] ==
                             old_glabel[seed->res->blob_group[ob + i]];
          }
        }
      }
      if (seed->res) {
        for (size_t i = 0; i < seed->res->blobs.size(); ++i) {
          const Blob& b = seed->res->blobs[i];
          if (!clean[b.shard]) continue;  // range was overwritten above
          if (!stable.empty() && res->shard[b.shard] == seed->res->shard[b.shard] &&
              stable[res->blob_base[b.shard] +
                     (static_cast<uint32_t>(i) - seed->res->blob_base[b.shard])])
            continue;
          if (b.top == DendrogramSnapshot::kNoSlot) {
            ls->flat[b.vtx] = b.vtx;
            continue;
          }
          members.clear();
          es.shard(b.shard).members_of(b.top, members);
          vertex_id c = es.shard(b.shard).slot_u(b.top);
          for (vertex_id v : members) ls->flat[v] = c;
        }
      }
      apply_fixups(stable.empty() ? nullptr : &stable);
    }
    // else: same resolution object — every blob lives in a clean shard
    // (wholesale reuse is gated on that), so the copied fixups stand.
    if (stats) stats->labels_patched.fetch_add(1, std::memory_order_relaxed);
  } else {
    ls->flat.resize(map.n);
    for (int k = 0; k < K; ++k)
      std::copy(ls->shard[k]->label.begin(), ls->shard[k]->label.end(),
                ls->flat.begin() + map.base(k));
    apply_fixups(nullptr);
    if (stats) stats->labels_rebuilt.fetch_add(1, std::memory_order_relaxed);
  }

  // The histogram never touches the O(n) array: merge the per-shard
  // histograms, then move each cross group's blob clusters into one
  // merged bin.
  std::map<uint64_t, int64_t> acc;
  for (int k = 0; k < K; ++k)
    for (const auto& [size, cnt] : ls->shard[k]->hist)
      acc[size] += static_cast<int64_t>(cnt);
  if (res) {
    for (const Blob& b : res->blobs) {
      uint64_t bs = b.top == DendrogramSnapshot::kNoSlot
                        ? 1
                        : es.shard(b.shard).slot_count(b.top);
      --acc[bs];
    }
    for (uint64_t gs : res->group_size) ++acc[gs];
  }
  for (const auto& [size, cnt] : acc) {
    assert(cnt >= 0);
    if (cnt > 0)
      ls->hist.bins.emplace_back(size, static_cast<uint64_t>(cnt));
  }
  return ls;
}

const ThresholdView::LabelSet& ThresholdView::label_set() const {
  {
    std::lock_guard<std::mutex> lk(labels_mu_);
    if (labels_) return *labels_;
  }
  // Serialize builders on their own mutex and run the O(n) build with
  // labels_mu_ RELEASED: label_seed() — hence a concurrent refreshed(),
  // possibly on the flushing thread — only ever waits for the pointer
  // swap below, never for a materialization. build_labels reads only
  // immutable view state, so this is safe; a refresh that overlaps the
  // build simply propagates the not-yet-consumed seed (patching against
  // an older origin is correct, just proportionally more work).
  std::lock_guard<std::mutex> build_lk(labels_build_mu_);
  std::shared_ptr<const LabelSeed> seed;
  {
    std::lock_guard<std::mutex> lk(labels_mu_);
    if (labels_) return *labels_;  // lost the race to an earlier builder
    seed = seed_;
  }
  auto built = build_labels(*snap_, tau_, res_.get(), seed.get());
  std::lock_guard<std::mutex> lk(labels_mu_);
  labels_ = std::move(built);
  seed_.reset();  // consumed; release the origin epoch
  return *labels_;
}

std::shared_ptr<const ThresholdView::LabelSeed> ThresholdView::label_seed()
    const {
  std::lock_guard<std::mutex> lk(labels_mu_);
  if (labels_)
    return std::make_shared<const LabelSeed>(LabelSeed{snap_, labels_, res_});
  return seed_;  // propagate an unconsumed basis (possibly null)
}

const std::vector<vertex_id>& ThresholdView::flat_clustering() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_flat_clustering.fetch_add(1, std::memory_order_relaxed);
  return label_set().flat;
}

const SizeHistogram& ThresholdView::size_histogram() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_size_histogram.fetch_add(1, std::memory_order_relaxed);
  return label_set().hist;
}

uint64_t ThresholdView::num_clusters() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_num_clusters.fetch_add(1, std::memory_order_relaxed);
  const ShardMap& map = snap_->shard_map();
  uint64_t total = 0;
  for (int k = 0; k < map.num_shards; ++k)
    total += snap_->shard(k).num_clusters(tau_);
  // Each cross-merge group collapses its member blobs — one per-shard
  // cluster or cross-touched singleton each, all distinct — into one.
  if (res_) total -= res_->blobs.size() - res_->group_size.size();
  return total;
}

QueryResult ThresholdView::run(const Query& q) const {
  // This view's threshold is authoritative (see header); the request's
  // tau is only the ClusterView::run routing key.
  assert(query_tau(q) == tau_);
  struct Dispatch {
    const ThresholdView& v;
    QueryResult operator()(const SameClusterQuery& r) const {
      return v.same_cluster(r.u, r.v);
    }
    QueryResult operator()(const ClusterSizeQuery& r) const {
      return v.cluster_size(r.u);
    }
    QueryResult operator()(const ClusterReportQuery& r) const {
      return v.cluster_report(r.u);
    }
    QueryResult operator()(const FlatClusteringQuery&) const {
      return v.flat_clustering();
    }
    QueryResult operator()(const SizeHistogramQuery&) const {
      return v.size_histogram();
    }
    QueryResult operator()(const NumClustersQuery&) const {
      return v.num_clusters();
    }
  };
  return std::visit(Dispatch{*this}, q);
}

namespace detail {

std::vector<QueryResult> run_batch(
    std::span<const Query> queries, const std::shared_ptr<EngineStats>& stats,
    const std::function<std::shared_ptr<const ThresholdView>(double)>&
        view_at) {
  std::vector<QueryResult> out(queries.size());
  std::map<double, std::vector<uint32_t>> by_tau;
  for (uint32_t i = 0; i < queries.size(); ++i)
    by_tau[query_tau(queries[i])].push_back(i);
  std::vector<const std::pair<const double, std::vector<uint32_t>>*> groups;
  groups.reserve(by_tau.size());
  for (const auto& g : by_tau) groups.push_back(&g);

  if (stats) {
    stats->batch_runs.fetch_add(1, std::memory_order_relaxed);
    stats->batch_queries.fetch_add(queries.size(), std::memory_order_relaxed);
  }

  par::parallel_for(
      0, groups.size(),
      [&](size_t g) {
        auto view = view_at(groups[g]->first);  // one resolution per tau
        const std::vector<uint32_t>& idx = groups[g]->second;
        par::parallel_for(
            0, idx.size(),
            [&](size_t j) { out[idx[j]] = view->run(queries[idx[j]]); },
            /*grain=*/8);
      },
      /*grain=*/1);
  return out;
}

}  // namespace detail

ClusterView::ClusterView(EpochManager::Snap snap)
    : snap_(std::move(snap)), cache_(std::make_shared<Cache>()) {}

std::shared_ptr<const ThresholdView> ClusterView::at(double tau) const {
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    auto it = cache_->views.find(tau);
    if (it != cache_->views.end()) return it->second;
  }
  // Build outside the lock (the resolution can be expensive); a racing
  // builder at the same tau loses to whoever inserts first.
  auto view = std::make_shared<const ThresholdView>(snap_, tau);
  std::lock_guard<std::mutex> lk(cache_->mu);
  auto [it, fresh] = cache_->views.try_emplace(tau, std::move(view));
  return it->second;
}

std::vector<QueryResult> ClusterView::run(std::span<const Query> queries) const {
  return detail::run_batch(queries, snap_->stats(),
                           [this](double tau) { return at(tau); });
}

}  // namespace dynsld::engine
