#include "engine/cluster_view.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "dendrogram/static_sld.hpp"
#include "parallel/par.hpp"

namespace dynsld::engine {

ThresholdView::ThresholdView(EpochManager::Snap snap, double tau)
    : snap_(std::move(snap)), tau_(tau) {
  const EngineSnapshot& es = *snap_;
  const auto& stats = es.stats();
  if (stats) stats->views_built.fetch_add(1, std::memory_order_relaxed);

  const auto& cross = es.cross().edges();  // weight-ascending
  size_t m = 0;
  while (m < cross.size() && cross[m].w <= tau_) ++m;
  if (m == 0) return;  // trivial mode: every cluster is one shard blob

  if (stats) stats->cross_uf_builds.fetch_add(1, std::memory_order_relaxed);
  const ShardMap& map = es.shard_map();

  auto intern = [&](vertex_id x) -> uint32_t {
    int s = map.home(x);
    int32_t top = es.shard(s).top_of(x, tau_);
    auto [it, fresh] =
        blob_id_.try_emplace(blob_key(s, top, x),
                             static_cast<uint32_t>(blobs_.size()));
    if (fresh) blobs_.push_back(Blob{s, top, x});
    return it->second;
  };

  std::vector<std::pair<uint32_t, uint32_t>> unions;
  unions.reserve(m);
  for (size_t i = 0; i < m; ++i)
    unions.emplace_back(intern(cross[i].u), intern(cross[i].v));

  UnionFind uf(blobs_.size());
  for (auto [a, b] : unions) uf.unite(a, b);

  // Flatten into dense immutable groups (queries must be pure reads).
  blob_group_.assign(blobs_.size(), -1);
  std::vector<int32_t> root_group(blobs_.size(), -1);
  int32_t num_groups = 0;
  for (uint32_t i = 0; i < blobs_.size(); ++i) {
    vertex_id r = uf.find(i);
    if (root_group[r] < 0) root_group[r] = num_groups++;
    blob_group_[i] = root_group[r];
  }

  group_size_.assign(num_groups, 0);
  group_off_.assign(num_groups + 1, 0);
  for (uint32_t i = 0; i < blobs_.size(); ++i) ++group_off_[blob_group_[i] + 1];
  std::partial_sum(group_off_.begin(), group_off_.end(), group_off_.begin());
  group_blobs_.resize(blobs_.size());
  std::vector<uint32_t> cursor(group_off_.begin(), group_off_.end() - 1);
  for (uint32_t i = 0; i < blobs_.size(); ++i) {
    group_blobs_[cursor[blob_group_[i]]++] = i;
    const Blob& b = blobs_[i];
    group_size_[blob_group_[i]] +=
        b.top == DendrogramSnapshot::kNoSlot
            ? 1
            : es.shard(b.shard).slot_count(b.top);
  }
}

int32_t ThresholdView::resolve(vertex_id x, int& shard, int32_t& top) const {
  const EngineSnapshot& es = *snap_;
  shard = es.shard_map().home(x);
  top = es.shard(shard).top_of(x, tau_);
  if (blob_id_.empty()) return -1;
  auto it = blob_id_.find(blob_key(shard, top, x));
  return it == blob_id_.end() ? -1 : blob_group_[it->second];
}

bool ThresholdView::same_cluster(vertex_id s, vertex_id t) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_same_cluster.fetch_add(1, std::memory_order_relaxed);
  if (s == t) return true;
  int ss, st;
  int32_t tops, topt;
  int32_t gs = resolve(s, ss, tops);
  int32_t gt = resolve(t, st, topt);
  if (gs >= 0 || gt >= 0) return gs == gt;
  // Neither blob is touched by a sub-tau cross edge: the cluster is the
  // blob itself, so equality is same shard + same (non-singleton) top.
  return ss == st && tops != DendrogramSnapshot::kNoSlot && tops == topt;
}

uint64_t ThresholdView::cluster_size(vertex_id u) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_cluster_size.fetch_add(1, std::memory_order_relaxed);
  int s;
  int32_t top;
  int32_t g = resolve(u, s, top);
  if (g >= 0) return group_size_[g];
  return top == DendrogramSnapshot::kNoSlot
             ? 1
             : snap_->shard(s).slot_count(top);
}

std::vector<vertex_id> ThresholdView::cluster_report(vertex_id u) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_cluster_report.fetch_add(1, std::memory_order_relaxed);
  int s;
  int32_t top;
  int32_t g = resolve(u, s, top);
  if (g < 0) {
    if (top == DendrogramSnapshot::kNoSlot) return {u};
    std::vector<vertex_id> out;
    out.reserve(snap_->shard(s).slot_count(top));
    snap_->shard(s).members_of(top, out);
    return out;
  }
  std::vector<vertex_id> out;
  out.reserve(group_size_[g]);
  for (uint32_t i = group_off_[g]; i < group_off_[g + 1]; ++i) {
    const Blob& b = blobs_[group_blobs_[i]];
    if (b.top == DendrogramSnapshot::kNoSlot)
      out.push_back(b.vtx);
    else
      snap_->shard(b.shard).members_of(b.top, out);
  }
  return out;
}

const std::vector<vertex_id>& ThresholdView::labels() const {
  std::call_once(labels_once_, [this] {
    const EngineSnapshot& es = *snap_;
    const ShardMap& map = es.shard_map();
    UnionFind uf(map.n);
    for (int k = 0; k < map.num_shards; ++k)
      es.shard(k).threshold_union(uf, tau_);
    for (const CrossEdgeView::Edge& e : es.cross().edges()) {
      if (e.w > tau_) break;  // weight-ascending
      uf.unite(e.u, e.v);
    }
    labels_.resize(map.n);
    for (vertex_id v = 0; v < map.n; ++v) labels_[v] = uf.find(v);
  });
  return labels_;
}

const std::vector<vertex_id>& ThresholdView::flat_clustering() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_flat_clustering.fetch_add(1, std::memory_order_relaxed);
  return labels();
}

const SizeHistogram& ThresholdView::size_histogram() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_size_histogram.fetch_add(1, std::memory_order_relaxed);
  std::call_once(histogram_once_, [this] {
    std::unordered_map<vertex_id, uint64_t> csize;
    for (vertex_id l : labels()) ++csize[l];
    std::map<uint64_t, uint64_t> hist;
    for (const auto& [label, size] : csize) ++hist[size];
    histogram_.bins.assign(hist.begin(), hist.end());
  });
  return histogram_;
}

QueryResult ThresholdView::run(const Query& q) const {
  // This view's threshold is authoritative (see header); the request's
  // tau is only the ClusterView::run routing key.
  assert(query_tau(q) == tau_);
  struct Dispatch {
    const ThresholdView& v;
    QueryResult operator()(const SameClusterQuery& r) const {
      return v.same_cluster(r.u, r.v);
    }
    QueryResult operator()(const ClusterSizeQuery& r) const {
      return v.cluster_size(r.u);
    }
    QueryResult operator()(const ClusterReportQuery& r) const {
      return v.cluster_report(r.u);
    }
    QueryResult operator()(const FlatClusteringQuery&) const {
      return v.flat_clustering();
    }
    QueryResult operator()(const SizeHistogramQuery&) const {
      return v.size_histogram();
    }
  };
  return std::visit(Dispatch{*this}, q);
}

ClusterView::ClusterView(EpochManager::Snap snap)
    : snap_(std::move(snap)), cache_(std::make_shared<Cache>()) {}

std::shared_ptr<const ThresholdView> ClusterView::at(double tau) const {
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    auto it = cache_->views.find(tau);
    if (it != cache_->views.end()) return it->second;
  }
  // Build outside the lock (the resolution can be expensive); a racing
  // builder at the same tau loses to whoever inserts first.
  auto view = std::make_shared<const ThresholdView>(snap_, tau);
  std::lock_guard<std::mutex> lk(cache_->mu);
  auto [it, fresh] = cache_->views.try_emplace(tau, std::move(view));
  return it->second;
}

std::vector<QueryResult> ClusterView::run(std::span<const Query> queries) const {
  std::vector<QueryResult> out(queries.size());
  std::map<double, std::vector<uint32_t>> by_tau;
  for (uint32_t i = 0; i < queries.size(); ++i)
    by_tau[query_tau(queries[i])].push_back(i);
  std::vector<const std::pair<const double, std::vector<uint32_t>>*> groups;
  groups.reserve(by_tau.size());
  for (const auto& g : by_tau) groups.push_back(&g);

  const auto& stats = snap_->stats();
  if (stats) {
    stats->batch_runs.fetch_add(1, std::memory_order_relaxed);
    stats->batch_queries.fetch_add(queries.size(), std::memory_order_relaxed);
  }

  par::parallel_for(
      0, groups.size(),
      [&](size_t g) {
        auto view = at(groups[g]->first);  // one resolution per tau
        const std::vector<uint32_t>& idx = groups[g]->second;
        par::parallel_for(
            0, idx.size(),
            [&](size_t j) { out[idx[j]] = view->run(queries[idx[j]]); },
            /*grain=*/8);
      },
      /*grain=*/1);
  return out;
}

}  // namespace dynsld::engine
