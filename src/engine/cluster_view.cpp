#include "engine/cluster_view.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "dendrogram/static_sld.hpp"
#include "parallel/par.hpp"

namespace dynsld::engine {

int64_t ThresholdView::slot_key(int32_t top, vertex_id vtx) {
  // Clustered blobs key on the (non-negative) top slot; singleton blobs
  // key on the vertex, folded into the negative range so the two spaces
  // never collide within a shard.
  if (top == DendrogramSnapshot::kNoSlot) return -1 - static_cast<int64_t>(vtx);
  return top;
}

std::shared_ptr<const ThresholdView::Resolution> ThresholdView::resolve(
    const EngineSnapshot& es, double tau, const Resolution* prev,
    const std::vector<char>* shard_clean) {
  const auto& cross = es.cross().edges();  // weight-ascending
  const size_t m = es.cross().sub_tau_prefix(tau);
  if (m == 0) return nullptr;  // trivial mode: every cluster is one shard blob

  auto res = std::make_shared<Resolution>();
  const ShardMap& map = es.shard_map();
  const int K = map.num_shards;

  // Clean shards share their ShardBlobs from prev by pointer (frozen:
  // lookups only, guaranteed to hit because the sub-tau prefix — hence
  // the endpoint multiset — is unchanged on this path); rebuilt shards
  // get fresh blocks and re-intern.
  std::vector<std::shared_ptr<ShardBlobs>> fresh(K);
  res->shard.resize(K);
  for (int k = 0; k < K; ++k) {
    if (prev && shard_clean && (*shard_clean)[k]) {
      res->shard[k] = prev->shard[k];
    } else {
      fresh[k] = std::make_shared<ShardBlobs>();
      res->shard[k] = fresh[k];
    }
  }

  struct Occ {
    int32_t shard;
    uint32_t local;
  };
  auto intern = [&](vertex_id x) -> Occ {
    int k = map.home(x);
    if (!fresh[k]) {  // frozen clean shard
      const ShardBlobs& sb = *res->shard[k];
      int32_t top = sb.endpoint_top.at(x);
      return {k, sb.blob_of.at(slot_key(top, x))};
    }
    ShardBlobs& sb = *fresh[k];
    auto [et, fresh_ep] =
        sb.endpoint_top.try_emplace(x, DendrogramSnapshot::kNoSlot);
    if (fresh_ep) et->second = es.shard(k).top_of(x, tau);
    auto [bt, fresh_blob] =
        sb.blob_of.try_emplace(slot_key(et->second, x),
                               static_cast<uint32_t>(sb.local.size()));
    if (fresh_blob)
      sb.local.push_back(Blob{static_cast<int32_t>(k), et->second, x});
    return {k, bt->second};
  };

  std::vector<Occ> occ;
  occ.reserve(2 * m);
  for (size_t i = 0; i < m; ++i) {
    occ.push_back(intern(cross[i].u));
    occ.push_back(intern(cross[i].v));
  }

  // Dense global blob ids: per-shard prefix offsets over the (possibly
  // shared) local blob lists.
  res->blob_base.assign(K + 1, 0);
  for (int k = 0; k < K; ++k)
    res->blob_base[k + 1] =
        res->blob_base[k] + static_cast<uint32_t>(res->shard[k]->local.size());
  const uint32_t num_blobs = res->blob_base[K];
  res->blobs.reserve(num_blobs);
  for (int k = 0; k < K; ++k)
    res->blobs.insert(res->blobs.end(), res->shard[k]->local.begin(),
                      res->shard[k]->local.end());

  UnionFind uf(num_blobs);
  for (size_t i = 0; i < occ.size(); i += 2)
    uf.unite(res->blob_base[occ[i].shard] + occ[i].local,
             res->blob_base[occ[i + 1].shard] + occ[i + 1].local);

  // Flatten into dense immutable groups (queries must be pure reads).
  res->blob_group.assign(num_blobs, -1);
  std::vector<int32_t> root_group(num_blobs, -1);
  int32_t num_groups = 0;
  for (uint32_t i = 0; i < num_blobs; ++i) {
    vertex_id r = uf.find(i);
    if (root_group[r] < 0) root_group[r] = num_groups++;
    res->blob_group[i] = root_group[r];
  }

  res->group_size.assign(num_groups, 0);
  res->group_off.assign(num_groups + 1, 0);
  for (uint32_t i = 0; i < num_blobs; ++i)
    ++res->group_off[res->blob_group[i] + 1];
  std::partial_sum(res->group_off.begin(), res->group_off.end(),
                   res->group_off.begin());
  res->group_blobs.resize(num_blobs);
  std::vector<uint32_t> cursor(res->group_off.begin(),
                               res->group_off.end() - 1);
  for (uint32_t i = 0; i < num_blobs; ++i) {
    res->group_blobs[cursor[res->blob_group[i]]++] = i;
    const Blob& b = res->blobs[i];
    res->group_size[res->blob_group[i]] +=
        b.top == DendrogramSnapshot::kNoSlot
            ? 1
            : es.shard(b.shard).slot_count(b.top);
  }
  return res;
}

ThresholdView::ThresholdView(EpochManager::Snap snap, double tau)
    : snap_(std::move(snap)), tau_(tau) {
  const auto& stats = snap_->stats();
  if (stats) stats->views_built.fetch_add(1, std::memory_order_relaxed);
  res_ = resolve(*snap_, tau_, nullptr, nullptr);
  if (res_ && stats)
    stats->cross_uf_builds.fetch_add(1, std::memory_order_relaxed);
}

ThresholdView::ThresholdView(EpochManager::Snap snap, double tau,
                             std::shared_ptr<const Resolution> res)
    : snap_(std::move(snap)), tau_(tau), res_(std::move(res)) {}

std::shared_ptr<const ThresholdView> ThresholdView::refreshed(
    const std::shared_ptr<const ThresholdView>& prev,
    EpochManager::Snap snap) {
  assert(prev);
  if (snap->epoch() == prev->snap_->epoch()) return prev;
  const EngineSnapshot& es = *snap;
  const EngineSnapshot& pes = *prev->snap_;
  const double tau = prev->tau_;
  const auto& stats = es.stats();
  const ShardMap& map = es.shard_map();
  assert(map.num_shards == pes.shard_map().num_shards &&
         map.n == pes.shard_map().n);

  // Shard cleanliness is pointer identity: an epoch reuses untouched
  // shards' DendrogramSnapshots by pointer, so this holds across any
  // number of skipped epochs with no delta chaining.
  std::vector<char> clean(map.num_shards, 0);
  int num_dirty = 0;
  for (int k = 0; k < map.num_shards; ++k) {
    clean[k] = &es.shard(k) == &pes.shard(k);
    num_dirty += !clean[k];
  }

  // The resolution reads only the sub-tau cross prefix: unchanged when
  // the table is pointer-identical, or when a single-step delta proves
  // every changed cross edge sits above this threshold.
  bool prefix_same = &es.cross() == &pes.cross();
  if (!prefix_same && es.delta().base_epoch == pes.epoch() &&
      es.delta().cross_min_w > tau)
    prefix_same = true;

  if (!prefix_same) {
    if (stats) {
      stats->refresh_views_full.fetch_add(1, std::memory_order_relaxed);
      stats->refresh_shards_rebuilt.fetch_add(map.num_shards,
                                              std::memory_order_relaxed);
    }
    return std::make_shared<const ThresholdView>(std::move(snap), tau);
  }

  if (stats) {
    stats->refresh_shards_reused.fetch_add(map.num_shards - num_dirty,
                                           std::memory_order_relaxed);
    stats->refresh_shards_rebuilt.fetch_add(num_dirty,
                                            std::memory_order_relaxed);
  }

  // Does the resolution read any rebuilt shard? Endpoint tops and blob
  // slot counts are per home shard of the cross endpoints, so a rebuild
  // of a shard no sub-tau cross edge touches cannot affect it.
  bool touches_dirty = false;
  if (num_dirty && prev->res_) {
    for (int k = 0; k < map.num_shards; ++k) {
      if (!clean[k] && !prev->res_->shard[k]->local.empty()) {
        touches_dirty = true;
        break;
      }
    }
  }
  if (!touches_dirty) {
    if (stats)
      stats->refresh_views_reused.fetch_add(1, std::memory_order_relaxed);
    return std::shared_ptr<const ThresholdView>(
        new ThresholdView(std::move(snap), tau, prev->res_));
  }

  if (stats) {
    stats->refresh_views_incremental.fetch_add(1, std::memory_order_relaxed);
    stats->cross_uf_incremental.fetch_add(1, std::memory_order_relaxed);
  }
  auto res = resolve(es, tau, prev->res_.get(), &clean);
  return std::shared_ptr<const ThresholdView>(
      new ThresholdView(std::move(snap), tau, std::move(res)));
}

int32_t ThresholdView::resolve_vertex(vertex_id x, int& shard,
                                      int32_t& top) const {
  const EngineSnapshot& es = *snap_;
  shard = es.shard_map().home(x);
  if (!res_) {
    top = es.shard(shard).top_of(x, tau_);
    return -1;
  }
  const ShardBlobs& sb = *res_->shard[shard];
  // Cross endpoints carry their top in the shard's cache (valid for
  // this epoch: clean-shard entries are pointer-stable).
  auto et = sb.endpoint_top.find(x);
  top = et != sb.endpoint_top.end() ? et->second
                                    : es.shard(shard).top_of(x, tau_);
  auto bt = sb.blob_of.find(slot_key(top, x));
  if (bt == sb.blob_of.end()) return -1;
  return res_->blob_group[res_->blob_base[shard] + bt->second];
}

bool ThresholdView::same_cluster(vertex_id s, vertex_id t) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_same_cluster.fetch_add(1, std::memory_order_relaxed);
  if (s == t) return true;
  int ss, st;
  int32_t tops, topt;
  int32_t gs = resolve_vertex(s, ss, tops);
  int32_t gt = resolve_vertex(t, st, topt);
  if (gs >= 0 || gt >= 0) return gs == gt;
  // Neither blob is touched by a sub-tau cross edge: the cluster is the
  // blob itself, so equality is same shard + same (non-singleton) top.
  return ss == st && tops != DendrogramSnapshot::kNoSlot && tops == topt;
}

uint64_t ThresholdView::cluster_size(vertex_id u) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_cluster_size.fetch_add(1, std::memory_order_relaxed);
  int s;
  int32_t top;
  int32_t g = resolve_vertex(u, s, top);
  if (g >= 0) return res_->group_size[g];
  return top == DendrogramSnapshot::kNoSlot
             ? 1
             : snap_->shard(s).slot_count(top);
}

std::vector<vertex_id> ThresholdView::cluster_report(vertex_id u) const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_cluster_report.fetch_add(1, std::memory_order_relaxed);
  int s;
  int32_t top;
  int32_t g = resolve_vertex(u, s, top);
  if (g < 0) {
    if (top == DendrogramSnapshot::kNoSlot) return {u};
    std::vector<vertex_id> out;
    out.reserve(snap_->shard(s).slot_count(top));
    snap_->shard(s).members_of(top, out);
    return out;
  }
  std::vector<vertex_id> out;
  out.reserve(res_->group_size[g]);
  for (uint32_t i = res_->group_off[g]; i < res_->group_off[g + 1]; ++i) {
    const Blob& b = res_->blobs[res_->group_blobs[i]];
    if (b.top == DendrogramSnapshot::kNoSlot)
      out.push_back(b.vtx);
    else
      snap_->shard(b.shard).members_of(b.top, out);
  }
  return out;
}

const std::vector<vertex_id>& ThresholdView::labels() const {
  std::call_once(labels_once_, [this] {
    const EngineSnapshot& es = *snap_;
    const ShardMap& map = es.shard_map();
    UnionFind uf(map.n);
    for (int k = 0; k < map.num_shards; ++k)
      es.shard(k).threshold_union(uf, tau_);
    for (const CrossEdgeView::Edge& e : es.cross().edges()) {
      if (e.w > tau_) break;  // weight-ascending
      uf.unite(e.u, e.v);
    }
    labels_.resize(map.n);
    for (vertex_id v = 0; v < map.n; ++v) labels_[v] = uf.find(v);
  });
  return labels_;
}

const std::vector<vertex_id>& ThresholdView::flat_clustering() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_flat_clustering.fetch_add(1, std::memory_order_relaxed);
  return labels();
}

const SizeHistogram& ThresholdView::size_histogram() const {
  const auto& stats = snap_->stats();
  if (stats) stats->q_size_histogram.fetch_add(1, std::memory_order_relaxed);
  std::call_once(histogram_once_, [this] {
    std::unordered_map<vertex_id, uint64_t> csize;
    for (vertex_id l : labels()) ++csize[l];
    std::map<uint64_t, uint64_t> hist;
    for (const auto& [label, size] : csize) ++hist[size];
    histogram_.bins.assign(hist.begin(), hist.end());
  });
  return histogram_;
}

QueryResult ThresholdView::run(const Query& q) const {
  // This view's threshold is authoritative (see header); the request's
  // tau is only the ClusterView::run routing key.
  assert(query_tau(q) == tau_);
  struct Dispatch {
    const ThresholdView& v;
    QueryResult operator()(const SameClusterQuery& r) const {
      return v.same_cluster(r.u, r.v);
    }
    QueryResult operator()(const ClusterSizeQuery& r) const {
      return v.cluster_size(r.u);
    }
    QueryResult operator()(const ClusterReportQuery& r) const {
      return v.cluster_report(r.u);
    }
    QueryResult operator()(const FlatClusteringQuery&) const {
      return v.flat_clustering();
    }
    QueryResult operator()(const SizeHistogramQuery&) const {
      return v.size_histogram();
    }
  };
  return std::visit(Dispatch{*this}, q);
}

namespace detail {

std::vector<QueryResult> run_batch(
    std::span<const Query> queries, const std::shared_ptr<EngineStats>& stats,
    const std::function<std::shared_ptr<const ThresholdView>(double)>&
        view_at) {
  std::vector<QueryResult> out(queries.size());
  std::map<double, std::vector<uint32_t>> by_tau;
  for (uint32_t i = 0; i < queries.size(); ++i)
    by_tau[query_tau(queries[i])].push_back(i);
  std::vector<const std::pair<const double, std::vector<uint32_t>>*> groups;
  groups.reserve(by_tau.size());
  for (const auto& g : by_tau) groups.push_back(&g);

  if (stats) {
    stats->batch_runs.fetch_add(1, std::memory_order_relaxed);
    stats->batch_queries.fetch_add(queries.size(), std::memory_order_relaxed);
  }

  par::parallel_for(
      0, groups.size(),
      [&](size_t g) {
        auto view = view_at(groups[g]->first);  // one resolution per tau
        const std::vector<uint32_t>& idx = groups[g]->second;
        par::parallel_for(
            0, idx.size(),
            [&](size_t j) { out[idx[j]] = view->run(queries[idx[j]]); },
            /*grain=*/8);
      },
      /*grain=*/1);
  return out;
}

}  // namespace detail

ClusterView::ClusterView(EpochManager::Snap snap)
    : snap_(std::move(snap)), cache_(std::make_shared<Cache>()) {}

std::shared_ptr<const ThresholdView> ClusterView::at(double tau) const {
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    auto it = cache_->views.find(tau);
    if (it != cache_->views.end()) return it->second;
  }
  // Build outside the lock (the resolution can be expensive); a racing
  // builder at the same tau loses to whoever inserts first.
  auto view = std::make_shared<const ThresholdView>(snap_, tau);
  std::lock_guard<std::mutex> lk(cache_->mu);
  auto [it, fresh] = cache_->views.try_emplace(tau, std::move(view));
  return it->second;
}

std::vector<QueryResult> ClusterView::run(std::span<const Query> queries) const {
  return detail::run_batch(queries, snap_->stats(),
                           [this](double tau) { return at(tau); });
}

}  // namespace dynsld::engine
