// First-class read views over an epoch snapshot — the query plane.
//
//   SldService::view() ──> ClusterView (pins one epoch)
//                             │ at(tau)            (cached per tau)
//                             v
//                          ThresholdView (merge resolved ONCE at tau)
//                             │ same_cluster / cluster_size /
//                             │ cluster_report / flat_clustering /
//                             │ size_histogram / run(Query)
//
// A ThresholdView resolves everything tau-dependent up front, exactly
// once: it scans the weight-ascending cross-edge prefix (w <= tau),
// computes the per-shard top cluster node of every cross endpoint
// (O(log h) each), and runs a union-find over those *blobs* — a blob
// being one shard's cluster (shard, top slot) or a cross-touched
// singleton vertex. The flattened result (dense groups with aggregate
// sizes and member-blob lists) is immutable, so any number of threads
// then answer:
//
//   same_cluster   O(log h)         two top_of lookups + group compare
//   cluster_size   O(log h)         one top_of + group aggregate
//   cluster_report O(log h + |S|)   walk the group's blob member lists
//   flat_clustering / size_histogram  O(n) label materialization on a
//                                     fresh view, computed lazily once;
//                                     O(n/K * dirty + X) patched on a
//                                     refreshed view (see below)
//
// The build is O(X log h + X alpha) for X sub-tau cross edges —
// independent of n and of the query count, which is the whole point:
// thousands of queries at one tau share a single merge resolution
// instead of re-deriving it per call (the PR 1 behavior).
//
// Incremental refresh (the subscription plane, subscription.hpp): the
// resolution is a shareable immutable block, and ThresholdView::
// refreshed(prev, snap) carries it across epochs proportionally to the
// published EpochDelta. Per-shard snapshot reuse is pointer-identical,
// so cleanliness needs no bookkeeping: a shard whose DendrogramSnapshot
// pointer is unchanged gives identical top_of answers, and its cached
// endpoint tops are reused verbatim. Three refresh grades:
//
//   reused       sub-tau cross prefix unchanged, no resolved endpoint
//                homed in a rebuilt shard -> share the resolution block
//                wholesale (zero work);
//   incremental  prefix unchanged, some endpoints dirty -> recompute
//                tops only for endpoints in rebuilt shards (cache hits
//                for the rest), re-run the cheap blob union-find;
//   full         the sub-tau prefix itself changed (cross churn at or
//                below tau) -> resolve from scratch, as the paper's
//                locality argument no longer applies.
//
// Flat labels carry across epochs the same way. Labels are canonical —
// a cluster's label is a pure function of the shard snapshots and the
// resolution (DendrogramSnapshot::FlatLabels + min-over-group fixups),
// never of traversal order — so a patched array and a from-scratch
// array agree bit-for-bit. refreshed() hands the new view a LabelSeed
// (the previous epoch's materialized label blocks); the first
// flat_clustering()/size_histogram() on the new view then copies the
// previous flat array and re-labels only the vertex ranges of rebuilt
// shards plus the members of cross-merge groups, instead of re-running
// the global O(n) pass: O(n/K * dirty_shards + X) plus one memcpy.
// Per-shard label blocks of clean shards are shared by pointer; the
// size histogram reassembles from per-shard histograms and group sizes
// without touching the O(n) array. EpochDelta::label_patch_viable
// gates the seed: when the rebuilt vertex mass is a majority of n the
// copy stops paying and the view rebuilds (labels_rebuilt vs
// labels_patched vs labels_reused in EngineStats).
//
// ClusterView is a cheap value type (two shared_ptrs): it pins the
// epoch like EngineSnapshot does and memoizes ThresholdViews by tau.
// run() executes a typed Query batch: group by tau, resolve each
// threshold once, fan the groups out on the fork-join scheduler.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/epoch.hpp"
#include "engine/query.hpp"

namespace dynsld::engine {

/// One epoch resolved at one threshold: the unit of amortization of
/// the read plane. Construction pins the epoch (holds the snapshot
/// shared_ptr) and pays all tau-dependent merge work exactly once;
/// every query afterwards is a pure read on immutable state, safe from
/// any number of threads with no further synchronization — except the
/// two flat materializations, which build lazily once under an
/// internal mutex and are immutable after that.
class ThresholdView {
 public:
  /// Resolve `snap` at threshold tau (one cross-shard union-find
  /// build). Prefer ClusterView::at(), which memoizes, or a
  /// SubscribedView, which refreshes incrementally across epochs.
  ThresholdView(EpochManager::Snap snap, double tau);

  /// Refresh `prev` onto `snap` (same threshold, newer epoch): shares
  /// or incrementally rebuilds the merge resolution depending on what
  /// the epochs in between actually changed — see the header comment.
  /// Also threads `prev`'s materialized flat labels through as the new
  /// view's patch basis, so a later flat_clustering()/size_histogram()
  /// re-labels only dirty shards and cross groups instead of running
  /// the global pass. Returns `prev` itself when the epoch did not
  /// advance. Thread-safe and never waits behind an in-flight label
  /// materialization in `prev` (it propagates the unconsumed patch
  /// basis instead).
  static std::shared_ptr<const ThresholdView> refreshed(
      const std::shared_ptr<const ThresholdView>& prev,
      EpochManager::Snap snap);

  double tau() const { return tau_; }
  uint64_t epoch() const { return snap_->epoch(); }
  const EngineSnapshot& snapshot() const { return *snap_; }

  // ---- §6.1 queries, all const and thread-safe ----

  /// Are s and t in one cluster at tau()? O(log h).
  bool same_cluster(vertex_id s, vertex_id t) const;
  /// Vertex count of u's cluster at tau(). O(log h).
  uint64_t cluster_size(vertex_id u) const;
  /// All members of u's cluster at tau(). O(log h + |cluster|).
  std::vector<vertex_id> cluster_report(vertex_id u) const;
  /// Canonical label per vertex (equal within a cluster; the label is a
  /// member vertex). Materialized lazily, once per view, and patched
  /// from the previous epoch on refreshed views; the reference stays
  /// valid for the view's lifetime — copy if you outlive it.
  const std::vector<vertex_id>& flat_clustering() const;
  /// Cluster-size distribution at tau(), singletons included. Shares
  /// the flat-label materialization (assembled from per-shard
  /// histograms + cross-group sizes, not from the O(n) array).
  const SizeHistogram& size_histogram() const;

  /// Number of clusters at tau(), singletons included — equal to
  /// size_histogram().num_clusters() but assembled directly from the
  /// per-shard rank-prefix counts corrected by the cross merge
  /// (Σ shard clusters − blobs + groups): O(K log |nodes|), touching
  /// neither histogram bins nor the O(n) label array.
  uint64_t num_clusters() const;

  /// Dispatch one typed query. The view's threshold is authoritative:
  /// the request is answered at tau() regardless of its own tau field
  /// (which only ClusterView::run uses, to route each query to the
  /// right view). Passing a mismatched query is a caller bug — asserted
  /// in debug builds; route through ClusterView::run when in doubt.
  QueryResult run(const Query& q) const;

  /// Number of merged cross-shard groups (introspection/tests).
  size_t num_cross_groups() const { return res_ ? res_->group_size.size() : 0; }

 private:
  // A blob is the unit the cross merge unites: one shard-local cluster
  // (shard, top slot) or a vertex that is a singleton at tau but has a
  // sub-tau cross edge.
  struct Blob {
    int32_t shard;
    int32_t top;    // kNoSlot for a singleton blob
    vertex_id vtx;  // the singleton vertex (unused otherwise)
  };

  /// One shard's share of the resolution: the tops of the cross
  /// endpoints homed here and the interned blobs they induce. Immutable
  /// and pointer-shared across refreshes — THE unit an incremental
  /// refresh swaps: a clean shard's block is reused verbatim (zero hash
  /// inserts, zero top_of calls); only rebuilt shards re-intern.
  struct ShardBlobs {
    std::unordered_map<vertex_id, int32_t> endpoint_top;  // endpoint -> top
    std::unordered_map<int64_t, uint32_t> blob_of;  // slot_key -> local blob
    std::vector<Blob> local;                        // this shard's blobs
  };

  /// Everything the sub-tau cross prefix determines, as one immutable
  /// shareable block: per-shard blob structures, dense global blob
  /// table, and the flattened union-find groups. Null on a view in
  /// trivial mode (no sub-tau cross edge). Global blob id =
  /// blob_base[shard] + local index.
  struct Resolution {
    std::vector<std::shared_ptr<const ShardBlobs>> shard;  // size K
    std::vector<uint32_t> blob_base;                // size K+1, prefix sums
    std::vector<Blob> blobs;                        // global, concatenated
    std::vector<int32_t> blob_group;
    std::vector<uint64_t> group_size;               // per group: vertices
    std::vector<uint32_t> group_off, group_blobs;   // CSR group -> blobs
  };

  /// Adopt an already-built (shared or incrementally rebuilt)
  /// resolution for a new epoch; used only by refreshed().
  ThresholdView(EpochManager::Snap snap, double tau,
                std::shared_ptr<const Resolution> res);

  /// Build the resolution of `es` at tau. With `prev`/`shard_clean`,
  /// clean shards' ShardBlobs are shared by pointer (lookups only, no
  /// interning) and only rebuilt shards' endpoints pay O(log h) tops —
  /// the incremental path; the blob union-find re-runs either way.
  static std::shared_ptr<const Resolution> resolve(
      const EngineSnapshot& es, double tau, const Resolution* prev,
      const std::vector<char>* shard_clean);

  static int64_t slot_key(int32_t top, vertex_id vtx);

  /// Group of vertex x's blob, or -1 when no sub-tau cross edge touches
  /// it (the blob then IS the cluster). Also yields shard and top slot.
  int32_t resolve_vertex(vertex_id x, int& shard, int32_t& top) const;

  /// The materialized flat-label state: per-shard label blocks (clean
  /// shards share theirs across refreshes by pointer), the flat global
  /// array with cross-group fixups applied, and the assembled size
  /// histogram. Immutable once built.
  struct LabelSet {
    std::vector<std::shared_ptr<const DendrogramSnapshot::FlatLabels>> shard;
    std::vector<vertex_id> flat;  // size n; canonical label per vertex
    SizeHistogram hist;
  };

  /// Patch basis a refreshed view inherits: the epoch the labels were
  /// materialized against (shard cleanliness is pointer identity vs its
  /// shards), the label blocks themselves, and that epoch's resolution
  /// (whose group fixups the patch must undo). Propagated unchanged
  /// through views that never materialize labels, so a chain of
  /// refreshes patches against the last epoch that actually did.
  struct LabelSeed {
    EpochManager::Snap origin;
    std::shared_ptr<const LabelSet> labels;
    std::shared_ptr<const Resolution> res;  // origin's (null in trivial mode)
  };

  /// Materialize the labels of `es` at tau. With a seed, clean shards'
  /// label blocks are shared and the flat array is patched (copy, then
  /// re-label dirty ranges, undo the seed resolution's group fixups,
  /// apply `res`'s); without one — or when the dirty vertex mass makes
  /// patching a loss — every shard re-labels and fixups apply to a
  /// fresh concatenation.
  static std::shared_ptr<const LabelSet> build_labels(const EngineSnapshot& es,
                                                      double tau,
                                                      const Resolution* res,
                                                      const LabelSeed* seed);

  /// This view as a patch basis: its own labels if materialized, else
  /// the seed it inherited (possibly null). Takes only labels_mu_ (the
  /// pointer lock), so callers — including refreshed() on the flushing
  /// thread — never wait behind an in-flight materialization.
  std::shared_ptr<const LabelSeed> label_seed() const;

  /// The lazily materialized label state (flat_clustering and
  /// size_histogram both land here). Builders serialize on
  /// labels_build_mu_ and run with labels_mu_ released; labels_mu_
  /// guards only the labels_/seed_ pointer swap.
  const LabelSet& label_set() const;

  EpochManager::Snap snap_;
  double tau_ = 0.0;
  std::shared_ptr<const Resolution> res_;  // null => trivial mode
  mutable std::mutex labels_mu_;        // pointer lock: labels_ + seed_
  mutable std::mutex labels_build_mu_;  // serializes materializations
  mutable std::shared_ptr<const LabelSet> labels_;
  mutable std::shared_ptr<const LabelSeed> seed_;  // consumed by label_set()
};

namespace detail {

/// Shared batch executor: group `queries` by tau, resolve each distinct
/// threshold once through `view_at`, fan the groups out on the
/// fork-join scheduler. Both ClusterView::run and SubscribedView::run
/// route through this. `view_at` must be safe to call from scheduler
/// workers.
std::vector<QueryResult> run_batch(
    std::span<const Query> queries, const std::shared_ptr<EngineStats>& stats,
    const std::function<std::shared_ptr<const ThresholdView>(double)>& view_at);

}  // namespace detail

/// The query plane's entry point: pins one epoch and memoizes one
/// ThresholdView per threshold. A cheap value type (two shared_ptrs) —
/// copy it freely; copies share the epoch pin and the view cache. All
/// methods are thread-safe; the epoch never changes under a
/// ClusterView (subscribe via SubscribedView to follow the stream).
class ClusterView {
 public:
  /// Pin `snap`'s epoch. Prefer SldService::view(), which acquires the
  /// current epoch for you.
  explicit ClusterView(EpochManager::Snap snap);

  /// The pinned epoch / its snapshot (valid for this view's lifetime).
  uint64_t epoch() const { return snap_->epoch(); }
  const EngineSnapshot& snapshot() const { return *snap_; }
  EpochManager::Snap snap() const { return snap_; }

  /// The resolved view at threshold tau; memoized, so every later
  /// at(tau) — and every run() query at tau — reuses the resolution.
  std::shared_ptr<const ThresholdView> at(double tau) const;

  /// Execute a typed query batch: group by tau, resolve each distinct
  /// threshold once, run the groups in parallel on the fork-join
  /// scheduler. results[i] answers queries[i].
  std::vector<QueryResult> run(std::span<const Query> queries) const;

 private:
  struct Cache {
    std::mutex mu;
    std::map<double, std::shared_ptr<const ThresholdView>> views;
  };

  EpochManager::Snap snap_;
  std::shared_ptr<Cache> cache_;
};

}  // namespace dynsld::engine
