// First-class read views over an epoch snapshot — the query plane.
//
//   SldService::view() ──> ClusterView (pins one epoch)
//                             │ at(tau)            (cached per tau)
//                             v
//                          ThresholdView (merge resolved ONCE at tau)
//                             │ same_cluster / cluster_size /
//                             │ cluster_report / flat_clustering /
//                             │ size_histogram / run(Query)
//
// A ThresholdView resolves everything tau-dependent up front, exactly
// once: it scans the weight-ascending cross-edge prefix (w <= tau),
// computes the per-shard top cluster node of every cross endpoint
// (O(log h) each), and runs a union-find over those *blobs* — a blob
// being one shard's cluster (shard, top slot) or a cross-touched
// singleton vertex. The flattened result (dense groups with aggregate
// sizes and member-blob lists) is immutable, so any number of threads
// then answer:
//
//   same_cluster   O(log h)         two top_of lookups + group compare
//   cluster_size   O(log h)         one top_of + group aggregate
//   cluster_report O(log h + |S|)   walk the group's blob member lists
//   flat_clustering / size_histogram  O(n) label materialization,
//                                     computed once per view (call_once)
//
// The build is O(X log h + X alpha) for X sub-tau cross edges —
// independent of n and of the query count, which is the whole point:
// thousands of queries at one tau share a single merge resolution
// instead of re-deriving it per call (the PR 1 behavior).
//
// ClusterView is a cheap value type (two shared_ptrs): it pins the
// epoch like EngineSnapshot does and memoizes ThresholdViews by tau.
// run() executes a typed Query batch: group by tau, resolve each
// threshold once, fan the groups out on the fork-join scheduler.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/epoch.hpp"
#include "engine/query.hpp"

namespace dynsld::engine {

class ThresholdView {
 public:
  /// Resolve `snap` at threshold tau (one cross-shard union-find
  /// build). Prefer ClusterView::at(), which memoizes.
  ThresholdView(EpochManager::Snap snap, double tau);

  double tau() const { return tau_; }
  uint64_t epoch() const { return snap_->epoch(); }
  const EngineSnapshot& snapshot() const { return *snap_; }

  // ---- §6.1 queries, all const and thread-safe ----

  bool same_cluster(vertex_id s, vertex_id t) const;
  uint64_t cluster_size(vertex_id u) const;
  std::vector<vertex_id> cluster_report(vertex_id u) const;
  /// Both O(n) materializations happen once per view (call_once) and
  /// return references into it — copy if you outlive the view.
  const std::vector<vertex_id>& flat_clustering() const;
  const SizeHistogram& size_histogram() const;

  /// Dispatch one typed query. The view's threshold is authoritative:
  /// the request is answered at tau() regardless of its own tau field
  /// (which only ClusterView::run uses, to route each query to the
  /// right view). Passing a mismatched query is a caller bug — asserted
  /// in debug builds; route through ClusterView::run when in doubt.
  QueryResult run(const Query& q) const;

  /// Number of merged cross-shard groups (introspection/tests).
  size_t num_cross_groups() const { return group_size_.size(); }

 private:
  // A blob is the unit the cross merge unites: one shard-local cluster
  // (shard, top slot) or a vertex that is a singleton at tau but has a
  // sub-tau cross edge.
  struct Blob {
    int32_t shard;
    int32_t top;    // kNoSlot for a singleton blob
    vertex_id vtx;  // the singleton vertex (unused otherwise)
  };

  static uint64_t blob_key(int shard, int32_t top, vertex_id vtx) {
    // Clustered blobs get shard+1 in the high word; singleton blobs get
    // 0 there and the vertex id below, so the two spaces never collide.
    if (top == DendrogramSnapshot::kNoSlot) return static_cast<uint64_t>(vtx);
    return (static_cast<uint64_t>(shard + 1) << 32) |
           static_cast<uint32_t>(top);
  }

  /// Group of vertex x's blob, or -1 when no sub-tau cross edge touches
  /// it (the blob then IS the cluster). Also yields shard and top slot.
  int32_t resolve(vertex_id x, int& shard, int32_t& top) const;

  /// Lazily materialized flat labels (one global union-find pass),
  /// shared by flat_clustering and size_histogram.
  const std::vector<vertex_id>& labels() const;

  EpochManager::Snap snap_;
  double tau_ = 0.0;
  // Dense blob table over the endpoints of sub-tau cross edges; empty
  // in the trivial (no sub-tau cross edge) mode.
  std::unordered_map<uint64_t, uint32_t> blob_id_;
  std::vector<Blob> blobs_;
  std::vector<int32_t> blob_group_;
  std::vector<uint64_t> group_size_;                // per group: vertices
  std::vector<uint32_t> group_off_, group_blobs_;   // CSR group -> blobs
  mutable std::once_flag labels_once_;
  mutable std::vector<vertex_id> labels_;
  mutable std::once_flag histogram_once_;
  mutable SizeHistogram histogram_;
};

class ClusterView {
 public:
  explicit ClusterView(EpochManager::Snap snap);

  uint64_t epoch() const { return snap_->epoch(); }
  const EngineSnapshot& snapshot() const { return *snap_; }
  EpochManager::Snap snap() const { return snap_; }

  /// The resolved view at threshold tau; memoized, so every later
  /// at(tau) — and every run() query at tau — reuses the resolution.
  std::shared_ptr<const ThresholdView> at(double tau) const;

  /// Execute a typed query batch: group by tau, resolve each distinct
  /// threshold once, run the groups in parallel on the fork-join
  /// scheduler. results[i] answers queries[i].
  std::vector<QueryResult> run(std::span<const Query> queries) const;

 private:
  struct Cache {
    std::mutex mu;
    std::map<double, std::shared_ptr<const ThresholdView>> views;
  };

  EpochManager::Snap snap_;
  std::shared_ptr<Cache> cache_;
};

}  // namespace dynsld::engine
