// First-class read views over an epoch snapshot — the query plane.
//
//   SldService::view() ──> ClusterView (pins one epoch)
//                             │ at(tau)            (cached per tau)
//                             v
//                          ThresholdView (merge resolved ONCE at tau)
//                             │ same_cluster / cluster_size /
//                             │ cluster_report / flat_clustering /
//                             │ size_histogram / run(Query)
//
// A ThresholdView resolves everything tau-dependent up front, exactly
// once: it scans the weight-ascending cross-edge prefix (w <= tau),
// computes the per-shard top cluster node of every cross endpoint
// (O(log h) each), and runs a union-find over those *blobs* — a blob
// being one shard's cluster (shard, top slot) or a cross-touched
// singleton vertex. The flattened result (dense groups with aggregate
// sizes and member-blob lists) is immutable, so any number of threads
// then answer:
//
//   same_cluster   O(log h)         two top_of lookups + group compare
//   cluster_size   O(log h)         one top_of + group aggregate
//   cluster_report O(log h + |S|)   walk the group's blob member lists
//   flat_clustering / size_histogram  O(n) label materialization,
//                                     computed once per view (call_once)
//
// The build is O(X log h + X alpha) for X sub-tau cross edges —
// independent of n and of the query count, which is the whole point:
// thousands of queries at one tau share a single merge resolution
// instead of re-deriving it per call (the PR 1 behavior).
//
// Incremental refresh (the subscription plane, subscription.hpp): the
// resolution is a shareable immutable block, and ThresholdView::
// refreshed(prev, snap) carries it across epochs proportionally to the
// published EpochDelta. Per-shard snapshot reuse is pointer-identical,
// so cleanliness needs no bookkeeping: a shard whose DendrogramSnapshot
// pointer is unchanged gives identical top_of answers, and its cached
// endpoint tops are reused verbatim. Three refresh grades:
//
//   reused       sub-tau cross prefix unchanged, no resolved endpoint
//                homed in a rebuilt shard -> share the resolution block
//                wholesale (zero work);
//   incremental  prefix unchanged, some endpoints dirty -> recompute
//                tops only for endpoints in rebuilt shards (cache hits
//                for the rest), re-run the cheap blob union-find;
//   full         the sub-tau prefix itself changed (cross churn at or
//                below tau) -> resolve from scratch, as the paper's
//                locality argument no longer applies.
//
// ClusterView is a cheap value type (two shared_ptrs): it pins the
// epoch like EngineSnapshot does and memoizes ThresholdViews by tau.
// run() executes a typed Query batch: group by tau, resolve each
// threshold once, fan the groups out on the fork-join scheduler.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/epoch.hpp"
#include "engine/query.hpp"

namespace dynsld::engine {

class ThresholdView {
 public:
  /// Resolve `snap` at threshold tau (one cross-shard union-find
  /// build). Prefer ClusterView::at(), which memoizes, or a
  /// SubscribedView, which refreshes incrementally across epochs.
  ThresholdView(EpochManager::Snap snap, double tau);

  /// Refresh `prev` onto `snap` (same threshold, newer epoch): shares
  /// or incrementally rebuilds the merge resolution depending on what
  /// the epochs in between actually changed — see the header comment.
  /// Returns `prev` itself when the epoch did not advance.
  static std::shared_ptr<const ThresholdView> refreshed(
      const std::shared_ptr<const ThresholdView>& prev,
      EpochManager::Snap snap);

  double tau() const { return tau_; }
  uint64_t epoch() const { return snap_->epoch(); }
  const EngineSnapshot& snapshot() const { return *snap_; }

  // ---- §6.1 queries, all const and thread-safe ----

  bool same_cluster(vertex_id s, vertex_id t) const;
  uint64_t cluster_size(vertex_id u) const;
  std::vector<vertex_id> cluster_report(vertex_id u) const;
  /// Both O(n) materializations happen once per view (call_once) and
  /// return references into it — copy if you outlive the view.
  const std::vector<vertex_id>& flat_clustering() const;
  const SizeHistogram& size_histogram() const;

  /// Dispatch one typed query. The view's threshold is authoritative:
  /// the request is answered at tau() regardless of its own tau field
  /// (which only ClusterView::run uses, to route each query to the
  /// right view). Passing a mismatched query is a caller bug — asserted
  /// in debug builds; route through ClusterView::run when in doubt.
  QueryResult run(const Query& q) const;

  /// Number of merged cross-shard groups (introspection/tests).
  size_t num_cross_groups() const { return res_ ? res_->group_size.size() : 0; }

 private:
  // A blob is the unit the cross merge unites: one shard-local cluster
  // (shard, top slot) or a vertex that is a singleton at tau but has a
  // sub-tau cross edge.
  struct Blob {
    int32_t shard;
    int32_t top;    // kNoSlot for a singleton blob
    vertex_id vtx;  // the singleton vertex (unused otherwise)
  };

  /// One shard's share of the resolution: the tops of the cross
  /// endpoints homed here and the interned blobs they induce. Immutable
  /// and pointer-shared across refreshes — THE unit an incremental
  /// refresh swaps: a clean shard's block is reused verbatim (zero hash
  /// inserts, zero top_of calls); only rebuilt shards re-intern.
  struct ShardBlobs {
    std::unordered_map<vertex_id, int32_t> endpoint_top;  // endpoint -> top
    std::unordered_map<int64_t, uint32_t> blob_of;  // slot_key -> local blob
    std::vector<Blob> local;                        // this shard's blobs
  };

  /// Everything the sub-tau cross prefix determines, as one immutable
  /// shareable block: per-shard blob structures, dense global blob
  /// table, and the flattened union-find groups. Null on a view in
  /// trivial mode (no sub-tau cross edge). Global blob id =
  /// blob_base[shard] + local index.
  struct Resolution {
    std::vector<std::shared_ptr<const ShardBlobs>> shard;  // size K
    std::vector<uint32_t> blob_base;                // size K+1, prefix sums
    std::vector<Blob> blobs;                        // global, concatenated
    std::vector<int32_t> blob_group;
    std::vector<uint64_t> group_size;               // per group: vertices
    std::vector<uint32_t> group_off, group_blobs;   // CSR group -> blobs
  };

  /// Adopt an already-built (shared or incrementally rebuilt)
  /// resolution for a new epoch; used only by refreshed().
  ThresholdView(EpochManager::Snap snap, double tau,
                std::shared_ptr<const Resolution> res);

  /// Build the resolution of `es` at tau. With `prev`/`shard_clean`,
  /// clean shards' ShardBlobs are shared by pointer (lookups only, no
  /// interning) and only rebuilt shards' endpoints pay O(log h) tops —
  /// the incremental path; the blob union-find re-runs either way.
  static std::shared_ptr<const Resolution> resolve(
      const EngineSnapshot& es, double tau, const Resolution* prev,
      const std::vector<char>* shard_clean);

  static int64_t slot_key(int32_t top, vertex_id vtx);

  /// Group of vertex x's blob, or -1 when no sub-tau cross edge touches
  /// it (the blob then IS the cluster). Also yields shard and top slot.
  int32_t resolve_vertex(vertex_id x, int& shard, int32_t& top) const;

  /// Lazily materialized flat labels (one global union-find pass),
  /// shared by flat_clustering and size_histogram.
  const std::vector<vertex_id>& labels() const;

  EpochManager::Snap snap_;
  double tau_ = 0.0;
  std::shared_ptr<const Resolution> res_;  // null => trivial mode
  mutable std::once_flag labels_once_;
  mutable std::vector<vertex_id> labels_;
  mutable std::once_flag histogram_once_;
  mutable SizeHistogram histogram_;
};

namespace detail {

/// Shared batch executor: group `queries` by tau, resolve each distinct
/// threshold once through `view_at`, fan the groups out on the
/// fork-join scheduler. Both ClusterView::run and SubscribedView::run
/// route through this. `view_at` must be safe to call from scheduler
/// workers.
std::vector<QueryResult> run_batch(
    std::span<const Query> queries, const std::shared_ptr<EngineStats>& stats,
    const std::function<std::shared_ptr<const ThresholdView>(double)>& view_at);

}  // namespace detail

class ClusterView {
 public:
  explicit ClusterView(EpochManager::Snap snap);

  uint64_t epoch() const { return snap_->epoch(); }
  const EngineSnapshot& snapshot() const { return *snap_; }
  EpochManager::Snap snap() const { return snap_; }

  /// The resolved view at threshold tau; memoized, so every later
  /// at(tau) — and every run() query at tau — reuses the resolution.
  std::shared_ptr<const ThresholdView> at(double tau) const;

  /// Execute a typed query batch: group by tau, resolve each distinct
  /// threshold once, run the groups in parallel on the fork-join
  /// scheduler. results[i] answers queries[i].
  std::vector<QueryResult> run(std::span<const Query> queries) const;

 private:
  struct Cache {
    std::mutex mu;
    std::map<double, std::shared_ptr<const ThresholdView>> views;
  };

  EpochManager::Snap snap_;
  std::shared_ptr<Cache> cache_;
};

}  // namespace dynsld::engine
