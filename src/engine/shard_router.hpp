// Sharded backend: vertex-range shards, each owning an independent
// DynamicClustering over its intra-shard edges, plus the cross-shard
// edge table.
//
// An edge whose endpoints share a home shard is routed there and
// participates in that shard's MSF + dendrogram maintenance; an edge
// spanning two shards lands in the cross table, which is kept raw (no
// MSF filtering) so the merged queries stay exact. Shards are
// independent structures, so a flush applies their sub-batches in
// parallel on the fork-join scheduler, and snapshot rebuilds touch
// only the shards an epoch actually changed — the rest of the epoch
// reuses the previous per-shard snapshots by pointer.
//
// Ticket resolution lives here: the router records where every applied
// insertion landed (shard handle or cross slot), so later erases route
// to the right place by ticket alone.
//
// Shard-local vertex spaces: ranges are contiguous, so shard k's
// DynamicClustering spans only its own range remapped to [0,
// local_size(k)) — global ids are translated by base(k) on the way in
// (apply) and back out at the snapshot boundary (DendrogramSnapshot
// carries the base). Per-shard memory and a dirty shard's snapshot
// rebuild are O(n/K), not O(n).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "engine/contraction.hpp"
#include "engine/epoch.hpp"
#include "engine/mutation_queue.hpp"
#include "engine/stats.hpp"
#include "msf/dynamic_msf.hpp"

namespace dynsld::engine {

/// The sharded write-side backend (see the header comment). NOT
/// thread-safe — the service serializes apply/build_snapshot under its
/// flush lock; the snapshots it produces are immutable and safe to
/// read from anywhere.
class ShardRouter {
 public:
  /// Stand up `num_shards` empty per-shard clusterings over n vertices.
  /// `obs` (nullable in unit contexts) is the owning service's
  /// observability bundle: counters are bumped through its stats block
  /// and snapshot builds record stage timings into its histograms.
  /// `incremental` arms the per-shard incremental snapshot builders
  /// (ShardContraction): dirty shards patch the previous epoch's
  /// arrays copy-on-write when the batch's structural footprint is
  /// small; off, every dirty shard rebuilds from scratch (the baseline
  /// the benchmark and the fuzz twin-service compare against).
  ShardRouter(vertex_id n, int num_shards, SpineIndex index,
              std::shared_ptr<EngineObs> obs, bool incremental = true);

  const ShardMap& shard_map() const { return map_; }
  int num_shards() const { return map_.num_shards; }

  /// Apply one drained batch: route, group by shard, apply erases then
  /// inserts per shard (in parallel across shards). Not thread-safe —
  /// the service serializes flushes.
  void apply(const MutationQueue::Drained& batch);

  /// Materialize the epoch snapshot after apply(). Shards untouched
  /// since `prev` reuse prev's per-shard snapshots; `capture_edges`
  /// additionally copies the full alive edge set into the snapshot for
  /// reference verification. The snapshot carries an EpochDelta (shard
  /// rebuild flags + cross-edge churn accumulated since the previous
  /// build) for subscription refreshes, and an EpochTrace: the caller
  /// seeds the pre-build stages (drain/apply) in `seed`, the router
  /// fills the shard-rebuild and cross-rebuild stages and freezes the
  /// whole record into the snapshot. Clears the dirty flags and delta
  /// accumulators.
  std::shared_ptr<const EngineSnapshot> build_snapshot(
      uint64_t epoch, const EngineSnapshot* prev, bool capture_edges,
      obs::EpochTrace seed = {});

 private:
  struct Loc {
    enum Kind : uint8_t { kDead = 0, kShard, kCross };
    Kind kind = kDead;
    int32_t shard = -1;
    uint32_t id = 0;  // graph handle or cross-table slot
  };

  Loc* loc(ticket_t t) {
    return t < locs_.size() ? &locs_[t] : nullptr;
  }
  void record(ticket_t t, Loc l) {
    if (locs_.size() <= t) locs_.resize(t + 1);
    locs_[t] = l;
  }

  ShardMap map_;
  std::vector<std::unique_ptr<DynamicClustering>> shards_;
  // Per-shard incremental snapshot builders (retained contraction-round
  // state; contraction.hpp), 1:1 with shards_.
  std::vector<ShardContraction> contraction_;
  std::vector<char> dirty_;
  // Cross-shard edge table (mutable side; CrossEdgeView is the frozen one).
  struct CrossSlot {
    vertex_id u, v;
    double w;
    bool alive = false;
  };
  std::vector<CrossSlot> cross_;
  std::vector<uint32_t> cross_free_;
  size_t cross_alive_ = 0;
  bool cross_dirty_ = false;
  // Delta accumulators since the last build_snapshot: cross-edge churn
  // and its lightest weight, published with the epoch for subscribers.
  uint32_t delta_cross_ins_ = 0;
  uint32_t delta_cross_del_ = 0;
  double delta_cross_min_w_ = std::numeric_limits<double>::infinity();
  std::shared_ptr<const CrossEdgeView> cross_view_;
  std::vector<Loc> locs_;  // by ticket
  std::shared_ptr<EngineObs> obs_;
  // Aliasing handle on obs_->stats, so counter bumps stay one `->`.
  std::shared_ptr<EngineStats> stats_;
};

}  // namespace dynsld::engine
