#include "engine/epoch.hpp"

#include <algorithm>
#include <numeric>

#include "engine/cluster_view.hpp"

namespace dynsld::engine {

CrossEdgeView::CrossEdgeView(std::vector<Edge> edges)
    : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });
}

size_t CrossEdgeView::sub_tau_prefix(double tau) const {
  auto it = std::upper_bound(
      edges_.begin(), edges_.end(), tau,
      [](double t, const Edge& e) { return t < e.w; });
  return static_cast<size_t>(it - edges_.begin());
}

size_t EngineSnapshot::num_tree_edges() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->num_nodes();
  return total;
}

namespace {

/// Non-owning alias of a caller-held snapshot, so the convenience
/// wrappers can stand up a transient ThresholdView without a refcount
/// round-trip (the caller's shared_ptr keeps the epoch alive).
EpochManager::Snap alias(const EngineSnapshot* snap) {
  return EpochManager::Snap(std::shared_ptr<void>(), snap);
}

}  // namespace

bool EngineSnapshot::same_cluster(vertex_id s, vertex_id t, double tau) const {
  return ThresholdView(alias(this), tau).same_cluster(s, t);
}

uint64_t EngineSnapshot::cluster_size(vertex_id u, double tau) const {
  return ThresholdView(alias(this), tau).cluster_size(u);
}

std::vector<vertex_id> EngineSnapshot::cluster_report(vertex_id u,
                                                      double tau) const {
  return ThresholdView(alias(this), tau).cluster_report(u);
}

std::vector<vertex_id> EngineSnapshot::flat_clustering(double tau) const {
  return ThresholdView(alias(this), tau).flat_clustering();
}

}  // namespace dynsld::engine
