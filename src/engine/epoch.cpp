#include "engine/epoch.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "dendrogram/static_sld.hpp"

namespace dynsld::engine {

CrossEdgeView::CrossEdgeView(std::vector<Edge> edges, vertex_id n)
    : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });
  off_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++off_[e.u + 1];
    ++off_[e.v + 1];
  }
  std::partial_sum(off_.begin(), off_.end(), off_.begin());
  adj_.resize(2 * edges_.size());
  std::vector<uint32_t> cursor(off_.begin(), off_.end() - 1);
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    adj_[cursor[edges_[i].u]++] = i;
    adj_[cursor[edges_[i].v]++] = i;
  }
}

double CrossEdgeView::min_weight() const {
  return edges_.empty() ? std::numeric_limits<double>::infinity()
                        : edges_.front().w;
}

size_t EngineSnapshot::num_tree_edges() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->num_nodes();
  return total;
}

bool EngineSnapshot::collect_cluster(vertex_id u, double tau,
                                     std::vector<vertex_id>& out,
                                     vertex_id stop) const {
  // BFS whose units are shard "blobs" (one shard's cluster of a vertex)
  // glued together by sub-tau cross edges. Every vertex has intra-shard
  // edges only in its home shard, so one top_of per visited vertex
  // suffices; visited blobs are deduplicated by (shard, top slot).
  std::unordered_set<vertex_id> seen{u};
  std::unordered_set<uint64_t> blobs;
  std::vector<vertex_id> queue{u};
  std::vector<vertex_id> members;
  out.push_back(u);
  for (size_t head = 0; head < queue.size(); ++head) {
    vertex_id x = queue[head];
    int s = map_.home(x);
    int32_t top = shards_[s]->top_of(x, tau);
    if (top != DendrogramSnapshot::kNoSlot &&
        blobs.insert((static_cast<uint64_t>(s) << 32) |
                     static_cast<uint32_t>(top))
            .second) {
      members.clear();
      shards_[s]->members_of(top, members);
      for (vertex_id m : members) {
        if (seen.insert(m).second) {
          out.push_back(m);
          queue.push_back(m);
        }
      }
    }
    cross_->for_each_incident(x, [&](vertex_id y, double w) {
      if (w > tau) return;
      if (seen.insert(y).second) {
        out.push_back(y);
        queue.push_back(y);
      }
    });
    if (stop != kNoVertex && seen.count(stop)) return true;
  }
  return stop != kNoVertex && seen.count(stop) > 0;
}

bool EngineSnapshot::same_cluster(vertex_id s, vertex_id t, double tau) const {
  if (stats_) stats_->q_same_cluster.fetch_add(1, std::memory_order_relaxed);
  if (s == t) return true;
  if (cross_->min_weight() > tau) {
    // No sub-tau cross edge: the answer is intra-shard or trivially no.
    if (map_.home(s) != map_.home(t)) return false;
    return shards_[map_.home(s)]->same_cluster(s, t, tau);
  }
  std::vector<vertex_id> scratch;
  return collect_cluster(s, tau, scratch, t);
}

uint64_t EngineSnapshot::cluster_size(vertex_id u, double tau) const {
  if (stats_) stats_->q_cluster_size.fetch_add(1, std::memory_order_relaxed);
  if (cross_->min_weight() > tau)
    return shards_[map_.home(u)]->cluster_size(u, tau);
  std::vector<vertex_id> members;
  collect_cluster(u, tau, members, kNoVertex);
  return members.size();
}

std::vector<vertex_id> EngineSnapshot::cluster_report(vertex_id u,
                                                      double tau) const {
  if (stats_) stats_->q_cluster_report.fetch_add(1, std::memory_order_relaxed);
  if (cross_->min_weight() > tau)
    return shards_[map_.home(u)]->cluster_report(u, tau);
  std::vector<vertex_id> members;
  collect_cluster(u, tau, members, kNoVertex);
  return members;
}

std::vector<vertex_id> EngineSnapshot::flat_clustering(double tau) const {
  if (stats_) stats_->q_flat_clustering.fetch_add(1, std::memory_order_relaxed);
  if (cross_->min_weight() > tau && map_.num_shards == 1)
    return shards_[0]->flat_clustering(tau);
  // Components of the sub-tau edge set: per-shard tree edges (each
  // shard's rank-sorted prefix) glued by sub-tau cross edges.
  UnionFind uf(map_.n);
  for (const auto& s : shards_) s->threshold_union(uf, tau);
  for (const CrossEdgeView::Edge& e : cross_->edges()) {
    if (e.w > tau) break;  // weight-ascending
    uf.unite(e.u, e.v);
  }
  std::vector<vertex_id> label(map_.n);
  for (vertex_id v = 0; v < map_.n; ++v) label[v] = uf.find(v);
  return label;
}

}  // namespace dynsld::engine
