// Incremental per-shard snapshot builds: retained contraction-round
// state + copy-on-write patching of the rank-sorted DendrogramSnapshot.
//
// A flush used to rebuild every dirty shard's snapshot from scratch:
// O(m log m) to re-sort the alive nodes by rank plus O(m log m) to
// refill the binary-lifting table — the dominant write-stall at serving
// scale, paid even when the batch touched a handful of edges. This
// module makes the dirty-shard build cost proportional to the batch's
// structural footprint instead (psac-style self-adjusting computation:
// keep the per-round state of the previous run, re-execute only the
// rounds whose inputs changed).
//
// ShardContraction retains, per shard, across epochs:
//   - the slot -> edge-id order the previous snapshot chose (and its
//     inverse), so the dendrogram's structural-change journal — raw
//     node adds / removes / re-parentings recorded by the batch
//     algorithms themselves — translates into slot-space edits;
//   - cache-aligned per-round node buckets for the lifting table: round
//     k re-runs only for nodes within distance 2^k of a structural
//     change, everything else row-copies (remap-gathered) from the
//     previous epoch's table.
//
// A patched build then:
//   1. reconciles the journal against the live dendrogram into disjoint
//      added / removed / re-parented node sets;
//   2. re-checks patch viability exactly at materialization (the
//      journal's cap is a loose pre-filter, like `label_patch_viable`
//      is re-verified when labels actually materialize) — too much
//      churn falls back to the fresh build;
//   3. rank-merges the surviving slots with the added nodes (the old
//      order is already sorted: a linear merge replaces the O(m log m)
//      sort), remapping every slot-valued array copy-on-write;
//   4. recomputes per-vertex leaf hooks only for vertices whose
//      incident edge set changed, and re-derives the CSR/count arrays
//      through the exact code path the fresh build uses;
//   5. patches the lifting table per round as above.
//
// The output is bit-identical to DendrogramSnapshot::build on the same
// dendrogram — by construction for the derived arrays (shared helper)
// and by the dist-to-changed-ancestor argument for the lifting rows
// (an entry is row-copied only when its whole 2^k-hop chain avoids
// changed nodes, in which case the ancestor is unchanged too). The
// engine's fuzz harness pins this byte-for-byte through SnapshotCodec
// across randomized schedules, including through persist::recover().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/snapshot.hpp"
#include "graph/types.hpp"

namespace dynsld::engine {

/// One shard's incremental snapshot builder (see the header comment).
/// Owned by ShardRouter next to the shard's DynamicClustering; NOT
/// thread-safe (the router builds each shard from one task).
class ShardContraction {
 public:
  /// Slot sentinel distinct from DendrogramSnapshot::kNoSlot: the old
  /// slot was removed this epoch (remap targets only).
  static constexpr int32_t kRemovedSlot = -2;

  /// Outcome of one advance(), surfaced into EpochDelta / EngineStats.
  struct PatchStats {
    bool patched = false;        // false: fresh rebuild
    bool fallback = false;       // viability re-check failed at
                                 // materialization (counted rebuilt)
    uint32_t rounds_total = 0;   // lifting rounds in the new table
    uint32_t rounds_rerun = 0;   // rounds recomputed rather than copied
    uint64_t nodes_patched = 0;  // per-round node entries recomputed
  };

  /// `incremental` off = always delegate to the fresh build and never
  /// enable the journal (the zero-overhead baseline the benchmark and
  /// the fuzz twin-service compare against).
  explicit ShardContraction(bool incremental) : incremental_(incremental) {}

  /// Produce this shard's snapshot for the epoch being built. `prev` is
  /// the shard snapshot of the previous epoch (nullptr at epoch 0);
  /// patching engages only when it is the exact snapshot this builder
  /// produced last (pointer identity — the same cleanliness test the
  /// rest of the engine uses) and the journal stayed within its cap.
  /// Consumes and re-arms the dendrogram's structural-change journal.
  std::shared_ptr<const DendrogramSnapshot> advance(
      DynSLD& sld, vertex_id base, const DendrogramSnapshot* prev,
      PatchStats& out);

 private:
  std::shared_ptr<const DendrogramSnapshot> rebuild(DynSLD& sld,
                                                    vertex_id base);
  /// The patch path; returns nullptr when the exact viability or
  /// integrity checks fail (caller falls back to rebuild()).
  std::shared_ptr<const DendrogramSnapshot> try_patch(
      DynSLD& sld, vertex_id base, const DendrogramSnapshot& prev,
      PatchStats& out);

  /// Journal cap for the next epoch: past this many raw entries a patch
  /// cannot win, so the journal stops logging (loose pre-filter; the
  /// exact check runs at materialization).
  static size_t journal_cap(size_t m) { return 2 * m + 64; }

  /// Re-arm bookkeeping after a successful build of `snap` whose slot
  /// order is `ids` (moved in).
  void adopt(DynSLD& sld, std::vector<edge_id>&& ids,
             std::shared_ptr<const DendrogramSnapshot> snap);

  bool incremental_;
  // Retained across epochs: the previous snapshot's slot order, its
  // inverse (edge id -> slot), and the snapshot itself (pointer
  // identity = validity).
  std::vector<edge_id> ids_;
  std::vector<int32_t> slot_of_;
  std::shared_ptr<const DendrogramSnapshot> last_;

  // Per-round node buckets for the lifting-table patch, cache-aligned
  // per round (psac idiom) and retained across epochs so steady-state
  // patches do not reallocate.
  struct alignas(64) Round {
    std::vector<int32_t> bucket;  // slots whose re-run starts this round
  };
  std::vector<Round> rounds_;
  // Reusable scratch (sized to the shard, allocated once).
  std::vector<int32_t> remap_;    // old slot -> new slot / kRemovedSlot
  std::vector<int32_t> old_of_;   // new slot -> old slot / -1 (added)
  /// Survivor runs of the rank merge: `len` consecutive old slots from
  /// `old_start` landed at `new_start`. The lifting-table gather streams
  /// these instead of dereferencing old_of_ per entry — the same
  /// information, but the access pattern is explicit block copies.
  struct Run {
    int32_t old_start, new_start, len;
  };
  std::vector<Run> runs_;
  std::vector<uint32_t> dist_;    // new slot -> hops to changed ancestor
  std::vector<int32_t> active_;   // cumulative re-run list across rounds
  std::vector<uint8_t> seen_;     // edge-id stamps for journal dedup
  std::vector<uint32_t> depth_;   // scratch for the fused dist/depth pass
  std::vector<uint8_t> vmoved_;   // vertex stamps: e*_v re-resolved this epoch
};

}  // namespace dynsld::engine
