#include "engine/shard_router.hpp"

#include <cassert>
#include <chrono>

#include "parallel/par.hpp"

namespace dynsld::engine {

ShardRouter::ShardRouter(vertex_id n, int num_shards, SpineIndex index,
                         std::shared_ptr<EngineObs> obs, bool incremental)
    : map_(ShardMap::make(n, num_shards)),
      obs_(std::move(obs)),
      stats_(EngineObs::stats_handle(obs_)) {
  shards_.reserve(map_.num_shards);
  contraction_.reserve(map_.num_shards);
  for (int k = 0; k < map_.num_shards; ++k) {
    // Shard-local vertex space: size each clustering to the shard's own
    // range (min 1 — trailing shards can own an empty range and never
    // receive edges, but the structures want n >= 1).
    vertex_id local_n = map_.local_size(k);
    shards_.push_back(
        std::make_unique<DynamicClustering>(local_n ? local_n : 1, index));
    contraction_.emplace_back(incremental);
  }
  dirty_.assign(map_.num_shards, 0);
  cross_view_ = std::make_shared<CrossEdgeView>(std::vector<CrossEdgeView::Edge>{});
}

void ShardRouter::apply(const MutationQueue::Drained& batch) {
  // Route. Erases resolve through the ticket ledger; inserts split into
  // per-shard sub-batches and cross-table appends.
  std::vector<std::vector<DynamicClustering::graph_edge>> shard_erases(
      shards_.size());
  std::vector<std::vector<DynamicClustering::EdgeUpdate>> shard_inserts(
      shards_.size());
  std::vector<std::vector<ticket_t>> shard_insert_tickets(shards_.size());

  for (const MutationQueue::EraseOp& eop : batch.erases) {
    Loc* l = loc(eop.ticket);
    if (!l || l->kind == Loc::kDead) {
      if (stats_) stats_->invalid_erases.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (l->kind == Loc::kCross) {
      CrossSlot& slot = cross_[l->id];
      slot.alive = false;
      cross_free_.push_back(l->id);
      --cross_alive_;
      cross_dirty_ = true;
      ++delta_cross_del_;
      if (slot.w < delta_cross_min_w_) delta_cross_min_w_ = slot.w;
      if (stats_) stats_->cross_ops.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard_erases[l->shard].push_back(l->id);
      dirty_[l->shard] = 1;
    }
    *l = Loc{};
  }

  for (const MutationQueue::InsertOp& op : batch.inserts) {
    if (map_.intra(op.u, op.v)) {
      int k = map_.home(op.u);
      vertex_id base = map_.base(k);
      shard_inserts[k].push_back({op.u - base, op.v - base, op.w});
      shard_insert_tickets[k].push_back(op.ticket);
      dirty_[k] = 1;
    } else {
      uint32_t slot;
      if (!cross_free_.empty()) {
        slot = cross_free_.back();
        cross_free_.pop_back();
      } else {
        slot = static_cast<uint32_t>(cross_.size());
        cross_.emplace_back();
      }
      cross_[slot] = CrossSlot{op.u, op.v, op.w, true};
      ++cross_alive_;
      cross_dirty_ = true;
      ++delta_cross_ins_;
      if (op.w < delta_cross_min_w_) delta_cross_min_w_ = op.w;
      record(op.ticket, Loc{Loc::kCross, -1, slot});
      if (stats_) stats_->cross_ops.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Apply per-shard sub-batches in parallel: shards are independent
  // structures, and the batch algorithms inside each shard fork further
  // on the same scheduler.
  std::vector<std::vector<DynamicClustering::graph_edge>> handles(
      shards_.size());
  par::parallel_for(
      0, shards_.size(),
      [&](size_t k) {
        if (!shard_erases[k].empty()) shards_[k]->erase_edges(shard_erases[k]);
        if (!shard_inserts[k].empty())
          handles[k] = shards_[k]->insert_edges(shard_inserts[k]);
      },
      /*grain=*/1);

  for (size_t k = 0; k < shards_.size(); ++k) {
    for (size_t i = 0; i < handles[k].size(); ++i) {
      record(shard_insert_tickets[k][i],
             Loc{Loc::kShard, static_cast<int32_t>(k), handles[k][i]});
    }
    if (stats_ && (!shard_erases[k].empty() || !shard_inserts[k].empty()))
      stats_->shard_batches.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const EngineSnapshot> ShardRouter::build_snapshot(
    uint64_t epoch, const EngineSnapshot* prev, bool capture_edges,
    obs::EpochTrace seed) {
  auto t0 = std::chrono::steady_clock::now();
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->epoch_ = epoch;
  snap->map_ = map_;
  snap->stats_ = stats_;
  snap->obs_ = obs_;
  snap->shards_.resize(shards_.size());
  obs::TraceRing* ring = obs_ ? &obs_->trace : nullptr;

  // Record the delta before the dirty flags are consumed below. The
  // initial build (no prev) marks everything rebuilt and is its own
  // base, so subscribers can never mistake it for an increment.
  snap->delta_.base_epoch = prev ? prev->epoch() : epoch;
  snap->delta_.shard_rebuilt.assign(shards_.size(), 1);
  if (prev) {
    for (size_t k = 0; k < shards_.size(); ++k)
      snap->delta_.shard_rebuilt[k] = dirty_[k];
  }
  snap->delta_.cross_inserted = delta_cross_ins_;
  snap->delta_.cross_erased = delta_cross_del_;
  snap->delta_.cross_min_w = delta_cross_min_w_;
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (snap->delta_.shard_rebuilt[k])
      snap->delta_.verts_rebuilt += map_.local_size(static_cast<int>(k));
  }
  delta_cross_ins_ = delta_cross_del_ = 0;
  delta_cross_min_w_ = std::numeric_limits<double>::infinity();

  uint64_t built = 0, reused = 0;
  std::vector<ShardContraction::PatchStats> patch_stats(shards_.size());
  snap->delta_.shard_patch.assign(shards_.size(), {});
  {
    // The stage span covers all rebuilds of the epoch; each rebuilt
    // shard additionally records its own build into flush.shard_build
    // (or flush.shard_patch when the incremental builder patched) from
    // inside the parallel loop (per-thread histogram shards make that
    // wait-free even when every worker lands at once).
    obs::ScopedSpan shards_span(ring, "flush.shards", epoch,
                                obs_ ? obs_->flush_shards : nullptr);
    par::parallel_for(
        0, shards_.size(),
        [&](size_t k) {
          if (prev && !dirty_[k]) {
            snap->shards_[k] = prev->shards_[k];
          } else {
            uint64_t b0 = obs::now_ns();
            snap->shards_[k] = contraction_[k].advance(
                shards_[k]->sld(), map_.base(static_cast<int>(k)),
                prev ? prev->shards_[k].get() : nullptr, patch_stats[k]);
            uint64_t dt = obs::now_ns() - b0;
            if (obs_)
              (patch_stats[k].patched ? obs_->flush_shard_patch
                                      : obs_->flush_shard_build)
                  ->record(dt);
          }
        },
        /*grain=*/1);
    seed.shards_ns = shards_span.stop();
  }
  uint64_t patched = 0, fallbacks = 0;
  uint64_t rounds_total = 0, rounds_rerun = 0, nodes_patched = 0;
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (prev && !dirty_[k]) {
      ++reused;
    } else {
      ++built;
      const ShardContraction::PatchStats& ps = patch_stats[k];
      EpochDelta::ShardPatch& sp = snap->delta_.shard_patch[k];
      sp.mode = ps.patched ? 1 : 0;
      sp.fallback = ps.fallback ? 1 : 0;
      sp.rounds_total = ps.rounds_total;
      sp.rounds_rerun = ps.rounds_rerun;
      sp.nodes_patched = ps.nodes_patched;
      if (ps.patched) {
        ++patched;
        rounds_total += ps.rounds_total;
        rounds_rerun += ps.rounds_rerun;
        nodes_patched += ps.nodes_patched;
      }
      if (ps.fallback) ++fallbacks;
    }
    dirty_[k] = 0;
  }

  if (cross_dirty_ || !prev) {
    obs::ScopedSpan cross_span(ring, "flush.cross", epoch,
                               obs_ ? obs_->flush_cross : nullptr);
    std::vector<CrossEdgeView::Edge> alive;
    alive.reserve(cross_alive_);
    for (const CrossSlot& s : cross_) {
      if (s.alive) alive.push_back({s.u, s.v, s.w});
    }
    cross_view_ = std::make_shared<CrossEdgeView>(std::move(alive));
    cross_dirty_ = false;
    seed.cross_ns = cross_span.stop();
  }
  snap->cross_ = cross_view_;

  seed.epoch = epoch;
  seed.shards_rebuilt = static_cast<int>(built);
  snap->trace_ = seed;

  if (capture_edges) {
    for (size_t k = 0; k < shards_.size(); ++k) {
      vertex_id base = map_.base(static_cast<int>(k));
      for (const WeightedEdge& e : shards_[k]->all_edges()) {
        snap->edges_.push_back(
            WeightedEdge{e.u + base, e.v + base, e.weight,
                         static_cast<edge_id>(snap->edges_.size())});
      }
    }
    for (const CrossSlot& s : cross_) {
      if (s.alive)
        snap->edges_.push_back(WeightedEdge{
            s.u, s.v, s.w, static_cast<edge_id>(snap->edges_.size())});
    }
  }

  if (stats_) {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    stats_->snapshot_build_ns.fetch_add(ns, std::memory_order_relaxed);
    stats_->shard_snapshots_built.fetch_add(built, std::memory_order_relaxed);
    stats_->shard_snapshots_reused.fetch_add(reused, std::memory_order_relaxed);
    stats_->shard_snapshots_patched.fetch_add(patched,
                                              std::memory_order_relaxed);
    stats_->shard_patch_fallbacks.fetch_add(fallbacks,
                                            std::memory_order_relaxed);
    stats_->contraction_rounds_total.fetch_add(rounds_total,
                                               std::memory_order_relaxed);
    stats_->contraction_rounds_rerun.fetch_add(rounds_rerun,
                                               std::memory_order_relaxed);
    stats_->contraction_nodes_patched.fetch_add(nodes_patched,
                                                std::memory_order_relaxed);
    stats_->epochs_published.fetch_add(1, std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace dynsld::engine
