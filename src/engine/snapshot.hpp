// Immutable epoch snapshot of one shard's dendrogram.
//
// DynSLD answers its §6.1 queries through dynamic trees that splay on
// every access, so a live structure cannot serve concurrent readers.
// Instead the engine freezes the dendrogram between batch flushes into
// a compact, read-only materialization:
//
//   - nodes densely renumbered in ascending rank order, so a node's
//     parent always has a larger slot and a single ascending pass
//     computes subtree vertex counts bottom-up;
//   - CSR child lists (internal children) and leaf lists (vertices
//     whose minimum incident edge e*_v is the node) for cluster report;
//   - a binary-lifting table over parent pointers: because weights
//     increase towards the root, the top cluster node of v at
//     threshold tau ("highest ancestor of e*_v with weight <= tau")
//     descends the table in O(log h).
//
// Build is O(n + m log m) from const DynSLD accessors only; every query
// method is const and safe from any number of threads. Readers hold the
// snapshot via shared_ptr, which doubles as the epoch reclamation
// scheme: a superseded snapshot is freed when its last reader drops it.
//
// Shard-local vertex spaces: a sharded backend keeps each shard's
// DynamicClustering over local ids [0, stride). The snapshot is built
// with the shard's `base` offset and translates at the boundary — every
// public method takes and returns *global* vertex ids, while the
// internal leaf arrays stay sized to the shard's local range.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dendrogram/static_sld.hpp"
#include "dynsld/dyn_sld.hpp"
#include "graph/types.hpp"

namespace dynsld::persist {
struct SnapshotCodec;  // persist/checkpoint.hpp
}

namespace dynsld::engine {

/// The frozen dendrogram of one shard at one epoch (see the header
/// comment). Immutable after build(); every method is const and
/// thread-safe. The engine shares untouched shards' snapshots across
/// epochs by pointer — pointer identity IS the cleanliness test the
/// refresh and label-patch machinery rely on.
class DendrogramSnapshot {
 public:
  /// Sentinel slot: "no node" (singleton vertex / no parent).
  static constexpr int32_t kNoSlot = -1;

  /// Freeze the current dendrogram of `sld`. Uses only const accessors;
  /// the caller guarantees no concurrent mutation during the build
  /// (the engine builds under its writer lock). `base` is the global id
  /// of the sld's local vertex 0 (shard-local vertex spaces).
  static std::shared_ptr<const DendrogramSnapshot> build(const DynSLD& sld,
                                                         vertex_id base = 0);

  /// Same, but also exports the slot -> edge-id mapping the build chose
  /// (ascending rank order). The incremental builder (ShardContraction)
  /// retains it to translate the dendrogram's structural-change journal
  /// into slot-space patches on the next epoch.
  static std::shared_ptr<const DendrogramSnapshot> build(
      const DynSLD& sld, vertex_id base, std::vector<edge_id>* ids_out);

  /// Local vertex count (the shard's range size, not the global n).
  vertex_id num_vertices() const { return n_; }
  /// Global id of local vertex 0.
  vertex_id base() const { return base_; }
  size_t num_nodes() const { return weight_.size(); }

  /// Dense slot of the top cluster node of v at threshold tau, or
  /// kNoSlot when v is a singleton at tau. O(log h).
  int32_t top_of(vertex_id v, double tau) const;

  /// §6.1 threshold query. O(log h).
  bool same_cluster(vertex_id s, vertex_id t, double tau) const;

  /// Vertex count of v's cluster at tau. O(log h).
  uint64_t cluster_size(vertex_id u, double tau) const;

  /// Number of clusters of the shard's subgraph at threshold tau,
  /// singletons included. Each dendrogram node is one MSF edge and
  /// each sub-tau edge merges two clusters, so the count is n minus
  /// the rank-sorted node table's sub-tau prefix — one binary search,
  /// O(log |nodes|), no bins or labels materialized.
  uint64_t num_clusters(double tau) const;

  /// Append the members of slot `top`'s cluster to `out`. O(|cluster|).
  void members_of(int32_t top, std::vector<vertex_id>& out) const;

  /// §6.1 cluster report. O(log h + |cluster|).
  std::vector<vertex_id> cluster_report(vertex_id u, double tau) const;

  /// One shard's flat-label block at threshold tau: canonical labels
  /// over the local vertex range plus the shard's cluster-size
  /// histogram (singletons included). The label of a cluster is the
  /// `u` endpoint of its top node — a member vertex, and a pure
  /// function of (snapshot, tau), so two passes over the same snapshot
  /// agree bit-for-bit. This determinism is what lets the view plane
  /// patch label arrays across epochs instead of rebuilding them
  /// (cluster_view.hpp).
  struct FlatLabels {
    std::vector<vertex_id> label;  // local index -> global canonical label
    std::vector<std::pair<uint64_t, uint64_t>> hist;  // size -> clusters, asc
  };

  /// Build the shard's flat-label block in one linear sweep: a
  /// descending slot pass resolves every node's top cluster node (the
  /// parent slot is always larger), then a vertex pass reads labels off
  /// e*_v. O(n + |nodes|) — no per-vertex binary lifting.
  FlatLabels flat_labels(double tau) const;

  /// §6.1 flat clustering over the local vertex range; label[i] is a
  /// member vertex (global id) of local vertex i's cluster — the
  /// canonical label of flat_labels(). O(n + |nodes|).
  std::vector<vertex_id> flat_clustering(double tau) const;

  /// Unite every tree edge of weight <= tau into the caller's
  /// union-find (cross-shard merged queries). Nodes are rank-sorted, so
  /// this scans a prefix and stops. O(|{e : w_e <= tau}|).
  void threshold_union(UnionFind& uf, double tau) const;

  /// Endpoints/weight/vertex-count of a dense slot (merged-query
  /// plumbing; endpoints are global ids).
  vertex_id slot_u(int32_t s) const { return u_[s]; }
  vertex_id slot_v(int32_t s) const { return v_[s]; }
  double slot_weight(int32_t s) const { return weight_[s]; }
  uint64_t slot_count(int32_t s) const { return count_[s]; }

 private:
  // The checkpoint byte codec rebuilds snapshots array-for-array
  // (persist/checkpoint.hpp); the incremental builder patches a copy of
  // the arrays instead of rebuilding them (engine/contraction.hpp).
  friend struct persist::SnapshotCodec;
  friend class ShardContraction;
  DendrogramSnapshot() = default;

  /// Derive child CSR, leaf CSR and subtree counts from parent_ and
  /// leaf_parent_ (already filled). Shared by the fresh build and the
  /// incremental patch so derived arrays are bit-identical between the
  /// two paths by construction.
  void derive_csr_and_counts();

  /// The counts tail of derive_csr_and_counts (subtree vertex counts
  /// from leaf_off_ and parent_), split out so the incremental patch —
  /// which delta-patches the CSR arrays instead of re-deriving them —
  /// still computes counts through the exact shared code.
  void derive_counts();

  /// Level count for the binary-lifting table: enough rounds to cover
  /// the deepest root-to-node chain (2^levels - 1 hops), computed from
  /// parent_. Shared by the fresh build and the incremental patch so
  /// the table shape is identical between the two paths.
  int compute_levels() const;

  /// Rounds needed to cover chains of `maxd` hops (2^levels - 1 >=
  /// maxd). The patch path folds the depth computation into a pass it
  /// already makes, then sizes the table through this same formula.
  static int levels_for_depth(uint32_t maxd) {
    int lv = 1;
    while ((uint32_t{1} << lv) < maxd + 1) ++lv;
    return lv;
  }

  vertex_id n_ = 0;
  vertex_id base_ = 0;
  // Per dense slot, ascending rank order.
  std::vector<vertex_id> u_, v_;
  std::vector<double> weight_;
  std::vector<int32_t> parent_;
  std::vector<uint64_t> count_;  // vertices in the slot's cluster
  std::vector<int32_t> leaf_parent_;  // per vertex: slot of e*_v or kNoSlot
  std::vector<uint32_t> child_off_, child_list_;
  std::vector<uint32_t> leaf_off_, leaf_list_;
  int levels_ = 0;
  std::vector<int32_t> up_;  // levels_ x num_nodes, level-major

  int32_t up(int k, int32_t s) const { return up_[k * weight_.size() + s]; }
};

}  // namespace dynsld::engine
