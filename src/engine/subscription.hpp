// Epoch subscriptions: the push half of the read plane.
//
// PR 2 left long-lived readers polling svc.epoch() and rebuilding their
// ThresholdViews from scratch on every publish — even when a flush
// touched one shard out of K. The paper's point is that updates are
// localized, so views should refresh proportionally to what changed:
//
//   SldService::flush() ── publish ──> SubscriptionHub::notify
//                                           │ (per subscriber)
//                                           v
//   SubscribedView      pending epoch bumped (+ optional user hook)
//        │ refresh()  ── re-pins the epoch, then per cached tau:
//        v               ThresholdView::refreshed — swap only rebuilt
//   ThresholdViews       shards' blob structures, incremental blob-UF,
//                        full re-resolve only when the sub-tau cross
//                        prefix changed; flat labels thread through as
//                        a patch basis, so bulk queries on the
//                        refreshed view re-label only what changed
//                        (cluster_view.hpp)
//
// Lifecycle: constructing a SubscribedView registers it with the
// service's hub; destroying it unregisters. "Dirty shard" means the
// shard's DendrogramSnapshot was rebuilt this epoch (its pointer
// changed); everything else is reused pointer-identically, which is
// exactly what the refresh reuses.
//
// Threading: notify() runs on whichever thread published the flush
// (the background writer or a caller of flush()), with the hub lock
// held — callbacks must not re-enter add/remove/notify, and remove()
// returning guarantees no further invocation (safe destruction).
// SubscribedView's own methods are thread-safe; refresh() may be
// called from the publish hook or from any reader. Refresh work and
// reader batches may both fan out on the fork-join pool: the
// scheduler's external-entry claim gate serializes foreign threads, so
// a notification-driven refresh composes with concurrent
// ClusterView/SubscribedView::run batches (the loser simply runs its
// computation sequentially).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "engine/cluster_view.hpp"
#include "engine/epoch.hpp"

namespace dynsld::engine {

class SldService;

/// Publication fan-out point between the service's flush path and
/// registered subscribers.
class SubscriptionHub {
 public:
  /// Handle identifying one registration (the remove() key).
  using Token = uint64_t;
  /// Publish callback; runs on the flushing thread under the hub lock.
  using Callback = std::function<void(const EpochManager::Snap&)>;

  /// Register; the callback fires on every subsequent publish.
  Token add(Callback cb) { return add_entry(std::move(cb), /*system=*/false); }

  /// Register an infrastructure subscriber (the service's QueryBroker
  /// dispatcher wake-up rides this). Fires exactly like a user
  /// subscription but is excluded from size() and from notify()'s fired
  /// count, so user-facing accounting — including the subs_notified
  /// counter — keeps meaning "user subscribers".
  Token add_system(Callback cb) {
    return add_entry(std::move(cb), /*system=*/true);
  }

  /// Unregister. Serialized with notify(): once remove() returns the
  /// callback will never be invoked again, so the subscriber can be
  /// destroyed.
  void remove(Token t) {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (subs_[i].token == t) {
        subs_.erase(subs_.begin() + i);
        return;
      }
    }
  }

  /// Deliver `snap` to every subscriber (on the calling thread, under
  /// the hub lock — see the header's threading contract). Returns how
  /// many *user* callbacks fired (system subscribers run but are not
  /// counted). Deliberate tradeoff: holding the lock makes remove() a
  /// hard barrier (safe teardown), at the cost that a slow callback
  /// delays other subscribers, concurrent flushes' notifies, and
  /// removals — keep hooks cheap.
  size_t notify(const EpochManager::Snap& snap) const {
    std::lock_guard<std::mutex> lk(mu_);
    size_t fired = 0;
    for (const auto& e : subs_) {
      e.cb(snap);
      fired += !e.system;
    }
    return fired;
  }

  /// Registered *user* subscribers (system registrations excluded).
  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    size_t n = 0;
    for (const auto& e : subs_) n += !e.system;
    return n;
  }

 private:
  struct Entry {
    Token token;
    Callback cb;
    bool system;
  };

  Token add_entry(Callback cb, bool system) {
    std::lock_guard<std::mutex> lk(mu_);
    Token t = next_++;
    subs_.push_back(Entry{t, std::move(cb), system});
    return t;
  }

  mutable std::mutex mu_;
  Token next_ = 1;
  std::vector<Entry> subs_;
};

/// A long-lived reader registered with the service: it keeps its
/// resolved ThresholdViews alive across epochs and refreshes them
/// incrementally instead of rebuilding per publish.
///
///   SubscribedView sub(svc);          // register
///   auto tv = sub.at(0.35);           // resolve once (full build)
///   ... svc churns, epochs publish, sub.stale() turns true ...
///   sub.refresh();                    // swap only dirty shards' blobs
///   tv = sub.at(0.35);                // refreshed, mostly reused
///   ...                               // ~SubscribedView unregisters
///
/// Must not outlive the service. The optional on_publish hook runs on
/// the publishing thread (hub lock held): keep it cheap — bumping a
/// condition variable or even calling refresh() is fine, blocking on a
/// reader is not.
class SubscribedView {
 public:
  /// Register with `svc`'s hub, pinned to its current epoch. The
  /// optional hook fires on every publish (on the flushing thread).
  explicit SubscribedView(SldService& svc,
                          std::function<void(uint64_t)> on_publish = {});
  /// Unregisters; serialized with notification, so destruction is
  /// race-free once no other thread still calls methods on *this.
  ~SubscribedView();

  SubscribedView(const SubscribedView&) = delete;
  SubscribedView& operator=(const SubscribedView&) = delete;

  /// The epoch this subscription currently serves.
  uint64_t epoch() const;
  /// Latest epoch a publish notification announced.
  uint64_t pending_epoch() const {
    return pending_.load(std::memory_order_acquire);
  }
  /// Has a newer epoch been published since the last refresh()?
  bool stale() const { return pending_epoch() > epoch(); }

  /// Re-pin the service's current epoch and refresh every resolved
  /// ThresholdView through ThresholdView::refreshed (reuse clean
  /// shards, incremental blob union-find, full rebuild only on sub-tau
  /// cross churn). Each refreshed view also inherits the previous
  /// epoch's materialized flat labels as its patch basis, so the O(n)
  /// queries (flat_clustering / size_histogram) re-label only dirty
  /// shards and changed cross groups instead of rebuilding — the
  /// refresh is cheap even when every epoch is followed by a bulk
  /// query. Returns false when the epoch had not advanced.
  bool refresh();

  /// The resolved view at tau against the subscription's current
  /// epoch; resolved once, then maintained by refresh().
  std::shared_ptr<const ThresholdView> at(double tau);

  /// Typed batch against the subscription's current epoch. All
  /// thresholds are pinned up front, so a concurrent refresh() cannot
  /// split the batch across epochs.
  std::vector<QueryResult> run(std::span<const Query> queries);

 private:
  std::shared_ptr<const ThresholdView> at_locked(double tau);

  SldService* svc_;
  SubscriptionHub::Token token_ = 0;
  std::function<void(uint64_t)> hook_;
  std::atomic<uint64_t> pending_{0};
  mutable std::mutex mu_;  // guards snap_ + views_
  EpochManager::Snap snap_;
  std::map<double, std::shared_ptr<const ThresholdView>> views_;
};

}  // namespace dynsld::engine
