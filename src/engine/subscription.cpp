#include "engine/subscription.hpp"

#include "engine/sld_service.hpp"

namespace dynsld::engine {

namespace {

/// Monotone max-store: publishes can notify out of order (flushes race
/// to the hub after releasing the flush lock), so only raise the mark.
void store_max(std::atomic<uint64_t>& a, uint64_t e) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < e && !a.compare_exchange_weak(cur, e,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

SubscribedView::SubscribedView(SldService& svc,
                               std::function<void(uint64_t)> on_publish)
    : svc_(&svc), hook_(std::move(on_publish)), snap_(svc.snapshot()) {
  // Capturing `this` is safe: the destructor's remove() serializes with
  // notify() under the hub lock, so no callback outlives us.
  token_ = svc.subscriptions().add([this](const EpochManager::Snap& s) {
    uint64_t e = s->epoch();
    store_max(pending_, e);
    if (hook_) hook_(e);
  });
  // A publish between pinning snap_ above and registering would be
  // missed forever (the hub notified nobody); fold the service's
  // current epoch in so stale() cannot under-report. The hook is not
  // replayed for that window — subscribers needing every epoch poll
  // stale() after construction.
  store_max(pending_, svc.epoch());
}

SubscribedView::~SubscribedView() { svc_->subscriptions().remove(token_); }

uint64_t SubscribedView::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return snap_->epoch();
}

bool SubscribedView::refresh() {
  EpochManager::Snap snap = svc_->snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  // <= not ==: a racing refresh (e.g. from the publish hook) may have
  // advanced us past the snapshot acquired above — never move a
  // subscription backwards in epochs.
  if (snap->epoch() <= snap_->epoch()) return false;
  uint64_t t0 = obs::now_ns();
  for (auto& [tau, view] : views_) {
    (void)tau;
    // refreshed() carries the merge resolution across incrementally
    // AND threads the old view's materialized flat labels through as
    // the new view's patch basis — bulk queries after a refresh
    // re-label only dirty shards and changed cross groups.
    view = ThresholdView::refreshed(view, snap);
  }
  snap_ = std::move(snap);
  const auto& stats = snap_->stats();
  if (stats) stats->sub_refreshes.fetch_add(1, std::memory_order_relaxed);
  if (snap_->obs()) snap_->obs()->sub_refresh->record(obs::now_ns() - t0);
  return true;
}

std::shared_ptr<const ThresholdView> SubscribedView::at_locked(double tau) {
  auto it = views_.find(tau);
  if (it != views_.end()) return it->second;
  auto view = std::make_shared<const ThresholdView>(snap_, tau);
  views_.emplace(tau, view);
  return view;
}

std::shared_ptr<const ThresholdView> SubscribedView::at(double tau) {
  std::lock_guard<std::mutex> lk(mu_);
  return at_locked(tau);
}

std::vector<QueryResult> SubscribedView::run(std::span<const Query> queries) {
  // Pin every distinct threshold against one epoch up front; the batch
  // then runs lock-free on immutable views even if refresh() swaps the
  // cache mid-flight.
  std::map<double, std::shared_ptr<const ThresholdView>> pinned;
  std::shared_ptr<EngineStats> stats;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats = snap_->stats();
    for (const Query& q : queries) {
      double tau = query_tau(q);
      if (!pinned.count(tau)) pinned.emplace(tau, at_locked(tau));
    }
  }
  return detail::run_batch(queries, stats,
                           [&](double tau) { return pinned.at(tau); });
}

}  // namespace dynsld::engine
