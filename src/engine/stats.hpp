// Engine observability: lock-free counters covering both front-ends
// (update coalescing, batch flushes, epoch publication, query traffic).
// Writers bump them with relaxed atomics on the hot paths; report()
// takes a consistent-enough plain copy for printing. Counters are
// cumulative over the service's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace dynsld::engine {

/// The engine's counter block (shared by the service, its snapshots
/// and the views built over them). Thread-safe: all counters are
/// relaxed atomics bumped from hot paths.
struct EngineStats {
  // -- update front-end --
  std::atomic<uint64_t> inserts_enqueued{0};
  std::atomic<uint64_t> erases_enqueued{0};
  std::atomic<uint64_t> coalesced_pairs{0};      // insert+erase annihilated
  std::atomic<uint64_t> duplicate_erases{0};     // dropped in the queue
  std::atomic<uint64_t> invalid_erases{0};       // unknown/dead ticket at apply
  // -- flush path --
  std::atomic<uint64_t> flushes{0};              // non-empty batch applications
  std::atomic<uint64_t> ops_applied{0};
  std::atomic<uint64_t> max_batch{0};
  std::atomic<uint64_t> shard_batches{0};        // per-shard sub-batches applied
  std::atomic<uint64_t> cross_ops{0};            // ops landing in the cross table
  // -- epochs --
  std::atomic<uint64_t> epochs_published{0};
  std::atomic<uint64_t> snapshot_build_ns{0};
  std::atomic<uint64_t> shard_snapshots_built{0};
  std::atomic<uint64_t> shard_snapshots_reused{0};
  // -- query front-end --
  std::atomic<uint64_t> q_same_cluster{0};
  std::atomic<uint64_t> q_cluster_size{0};
  std::atomic<uint64_t> q_cluster_report{0};
  std::atomic<uint64_t> q_flat_clustering{0};
  std::atomic<uint64_t> q_size_histogram{0};
  std::atomic<uint64_t> q_num_clusters{0};
  // -- view plane --
  std::atomic<uint64_t> views_built{0};       // ThresholdView resolutions
  std::atomic<uint64_t> cross_uf_builds{0};   // full cross-shard union-find builds
  std::atomic<uint64_t> batch_runs{0};        // ClusterView::run calls
  std::atomic<uint64_t> batch_queries{0};     // queries executed via run()
  // -- subscription plane --
  std::atomic<uint64_t> subs_notified{0};         // publish callbacks fired
  std::atomic<uint64_t> sub_refreshes{0};         // refresh() calls that advanced
  std::atomic<uint64_t> refresh_views_reused{0};  // resolution shared wholesale
  std::atomic<uint64_t> refresh_views_incremental{0};  // dirty shards re-topped
  std::atomic<uint64_t> refresh_views_full{0};    // cross prefix changed: rebuilt
  std::atomic<uint64_t> refresh_shards_reused{0};    // clean shards per refresh
  std::atomic<uint64_t> refresh_shards_rebuilt{0};   // dirty shards per refresh
  std::atomic<uint64_t> cross_uf_incremental{0};  // incremental blob-UF re-resolves
  // -- flat-label maintenance --
  std::atomic<uint64_t> labels_rebuilt{0};  // global label materializations
  std::atomic<uint64_t> labels_patched{0};  // prev labels copied + patched
  std::atomic<uint64_t> labels_reused{0};   // prev LabelSet adopted wholesale
  // -- broker (async request plane) --
  std::atomic<uint64_t> broker_submits{0};        // requests accepted at intake
  std::atomic<uint64_t> broker_batches{0};        // dispatch cycles with groups
  std::atomic<uint64_t> broker_groups{0};         // (epoch, tau) groups resolved
  std::atomic<uint64_t> broker_group_requests{0};  // per-group distinct requests
  std::atomic<uint64_t> broker_epoch_waits{0};    // AtLeastEpoch requests parked
  std::atomic<uint64_t> broker_admission_rejects{0};  // intake over queue depth
  std::atomic<uint64_t> broker_deadline_expired{0};   // expired, never executed
  std::atomic<uint64_t> broker_cancelled{0};          // cancelled while queued
  std::atomic<uint64_t> broker_shutdown_aborted{0};   // resolved at shutdown
  std::atomic<uint64_t> broker_max_depth{0};          // queue-depth high-water

  /// A plain (non-atomic) copy of every counter, for printing and
  /// test assertions.
  struct Report {
    uint64_t inserts_enqueued, erases_enqueued, coalesced_pairs,
        duplicate_erases, invalid_erases, flushes, ops_applied, max_batch,
        shard_batches, cross_ops, epochs_published, snapshot_build_ns,
        shard_snapshots_built, shard_snapshots_reused, q_same_cluster,
        q_cluster_size, q_cluster_report, q_flat_clustering, q_size_histogram,
        q_num_clusters, views_built, cross_uf_builds, batch_runs,
        batch_queries, subs_notified, sub_refreshes, refresh_views_reused,
        refresh_views_incremental, refresh_views_full, refresh_shards_reused,
        refresh_shards_rebuilt, cross_uf_incremental, labels_rebuilt,
        labels_patched, labels_reused, broker_submits, broker_batches,
        broker_groups, broker_group_requests, broker_epoch_waits,
        broker_admission_rejects, broker_deadline_expired, broker_cancelled,
        broker_shutdown_aborted, broker_max_depth;

    uint64_t queries() const {
      return q_same_cluster + q_cluster_size + q_cluster_report +
             q_flat_clustering + q_size_histogram + q_num_clusters;
    }
    double avg_batch() const {
      return flushes ? static_cast<double>(ops_applied) / flushes : 0.0;
    }
    /// Mean number of distinct client requests sharing one (epoch, tau)
    /// group — the cross-client amortization factor of the broker.
    double avg_group_requests() const {
      return broker_groups
                 ? static_cast<double>(broker_group_requests) / broker_groups
                 : 0.0;
    }
  };

  Report report() const {
    auto r = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return Report{r(inserts_enqueued), r(erases_enqueued), r(coalesced_pairs),
                  r(duplicate_erases), r(invalid_erases), r(flushes),
                  r(ops_applied), r(max_batch), r(shard_batches), r(cross_ops),
                  r(epochs_published), r(snapshot_build_ns),
                  r(shard_snapshots_built), r(shard_snapshots_reused),
                  r(q_same_cluster), r(q_cluster_size), r(q_cluster_report),
                  r(q_flat_clustering), r(q_size_histogram), r(q_num_clusters),
                  r(views_built), r(cross_uf_builds), r(batch_runs),
                  r(batch_queries), r(subs_notified), r(sub_refreshes),
                  r(refresh_views_reused), r(refresh_views_incremental),
                  r(refresh_views_full), r(refresh_shards_reused),
                  r(refresh_shards_rebuilt), r(cross_uf_incremental),
                  r(labels_rebuilt), r(labels_patched), r(labels_reused),
                  r(broker_submits), r(broker_batches), r(broker_groups),
                  r(broker_group_requests), r(broker_epoch_waits),
                  r(broker_admission_rejects), r(broker_deadline_expired),
                  r(broker_cancelled), r(broker_shutdown_aborted),
                  r(broker_max_depth)};
  }

  /// Raise a monotone high-water counter to at least `v`.
  static void bump_max(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void bump_max_batch(uint64_t sz) { bump_max(max_batch, sz); }
};

inline void print_report(const EngineStats::Report& r, std::FILE* out = stdout) {
  std::fprintf(out,
               "engine stats: enq %llu+/%llu-  coalesced %llu  flushes %llu "
               "(avg batch %.1f, max %llu)  epochs %llu  snapshots %llu built "
               "/ %llu reused (%.2f ms total)  queries %llu  cross ops %llu  "
               "views %llu (%llu cross-uf)  batches %llu (%llu queries)\n",
               (unsigned long long)r.inserts_enqueued,
               (unsigned long long)r.erases_enqueued,
               (unsigned long long)r.coalesced_pairs,
               (unsigned long long)r.flushes, r.avg_batch(),
               (unsigned long long)r.max_batch,
               (unsigned long long)r.epochs_published,
               (unsigned long long)r.shard_snapshots_built,
               (unsigned long long)r.shard_snapshots_reused,
               r.snapshot_build_ns / 1e6, (unsigned long long)r.queries(),
               (unsigned long long)r.cross_ops,
               (unsigned long long)r.views_built,
               (unsigned long long)r.cross_uf_builds,
               (unsigned long long)r.batch_runs,
               (unsigned long long)r.batch_queries);
  if (r.subs_notified || r.sub_refreshes)
    std::fprintf(out,
                 "subscriptions: %llu notifies  %llu refreshes  views %llu "
                 "reused / %llu incremental / %llu full  shards %llu reused / "
                 "%llu rebuilt  cross-uf %llu incremental\n",
                 (unsigned long long)r.subs_notified,
                 (unsigned long long)r.sub_refreshes,
                 (unsigned long long)r.refresh_views_reused,
                 (unsigned long long)r.refresh_views_incremental,
                 (unsigned long long)r.refresh_views_full,
                 (unsigned long long)r.refresh_shards_reused,
                 (unsigned long long)r.refresh_shards_rebuilt,
                 (unsigned long long)r.cross_uf_incremental);
  if (r.labels_rebuilt || r.labels_patched || r.labels_reused)
    std::fprintf(out,
                 "flat labels: %llu rebuilt / %llu patched / %llu reused\n",
                 (unsigned long long)r.labels_rebuilt,
                 (unsigned long long)r.labels_patched,
                 (unsigned long long)r.labels_reused);
  if (r.broker_submits || r.broker_admission_rejects ||
      r.broker_deadline_expired)
    std::fprintf(out,
                 "broker: %llu submits  %llu cycles  %llu groups (%.1f "
                 "reqs/group)  %llu epoch-waits  depth max %llu  rejected "
                 "%llu  expired %llu  cancelled %llu  aborted %llu\n",
                 (unsigned long long)r.broker_submits,
                 (unsigned long long)r.broker_batches,
                 (unsigned long long)r.broker_groups, r.avg_group_requests(),
                 (unsigned long long)r.broker_epoch_waits,
                 (unsigned long long)r.broker_max_depth,
                 (unsigned long long)r.broker_admission_rejects,
                 (unsigned long long)r.broker_deadline_expired,
                 (unsigned long long)r.broker_cancelled,
                 (unsigned long long)r.broker_shutdown_aborted);
}

}  // namespace dynsld::engine
