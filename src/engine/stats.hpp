// Engine observability: lock-free counters covering both front-ends
// (update coalescing, batch flushes, epoch publication, query traffic),
// bundled with the metrics registry and trace ring into EngineObs — the
// engine's one scrape surface.
//
// The counter set is defined ONCE, in the DYNSLD_ENGINE_COUNTERS
// X-macro list below. The struct fields, the plain Report copy,
// report()'s field-by-field load, the for_each() visitor that drives
// registry registration and exposition names, and the coverage
// static_assert are all generated from that single list — adding a
// counter is one line, and it is impossible to add one that report()
// or the scrape surface silently drops (the PR-5-era Report hand-copied
// 44 fields positionally; one missed field compiled fine).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dynsld::engine {

/// The engine's counter list — the single source of truth for
/// EngineStats' fields, Report, report(), for_each(), and the metric
/// names the registry scrapes. X is applied to each counter name.
#define DYNSLD_ENGINE_COUNTERS(X)                                         \
  /* -- update front-end -- */                                            \
  X(inserts_enqueued)                                                     \
  X(erases_enqueued)                                                      \
  X(coalesced_pairs)      /* insert+erase annihilated */                  \
  X(duplicate_erases)     /* dropped in the queue */                      \
  X(erase_ledger_misses)  /* endpoint erase with no live ledger entry */  \
  X(invalid_erases)       /* unknown/dead ticket at apply */              \
  /* -- flush path -- */                                                  \
  X(flushes)              /* non-empty batch applications */              \
  X(ops_applied)                                                          \
  X(max_batch)                                                            \
  X(shard_batches)        /* per-shard sub-batches applied */             \
  X(cross_ops)            /* ops landing in the cross table */            \
  /* -- epochs -- */                                                      \
  X(epochs_published)                                                     \
  X(snapshot_build_ns)                                                    \
  X(shard_snapshots_built)   /* materialized fresh or by patching */      \
  X(shard_snapshots_reused)                                               \
  X(shard_snapshots_patched) /* built by COW-patching the prev arrays */  \
  X(shard_patch_fallbacks)   /* patch gate failed at materialization */   \
  X(contraction_rounds_total)  /* lifting rounds across patched builds */ \
  X(contraction_rounds_rerun)  /* rounds recomputed (not row-copied) */   \
  X(contraction_nodes_patched) /* per-round node entries recomputed */    \
  /* -- query front-end -- */                                             \
  X(q_same_cluster)                                                       \
  X(q_cluster_size)                                                       \
  X(q_cluster_report)                                                     \
  X(q_flat_clustering)                                                    \
  X(q_size_histogram)                                                     \
  X(q_num_clusters)                                                       \
  /* -- view plane -- */                                                  \
  X(views_built)          /* ThresholdView resolutions */                 \
  X(cross_uf_builds)      /* full cross-shard union-find builds */        \
  X(batch_runs)           /* ClusterView::run calls */                    \
  X(batch_queries)        /* queries executed via run() */                \
  /* -- subscription plane -- */                                          \
  X(subs_notified)        /* publish callbacks fired */                   \
  X(sub_refreshes)        /* refresh() calls that advanced */             \
  X(refresh_views_reused) /* resolution shared wholesale */               \
  X(refresh_views_incremental) /* dirty shards re-topped */               \
  X(refresh_views_full)   /* cross prefix changed: rebuilt */             \
  X(refresh_shards_reused)   /* clean shards per refresh */               \
  X(refresh_shards_rebuilt)  /* dirty shards per refresh */               \
  X(cross_uf_incremental) /* incremental blob-UF re-resolves */           \
  /* -- flat-label maintenance -- */                                      \
  X(labels_rebuilt)       /* global label materializations */             \
  X(labels_patched)       /* prev labels copied + patched */              \
  X(labels_reused)        /* prev LabelSet adopted wholesale */           \
  /* -- broker (async request plane) -- */                                \
  X(broker_submits)       /* requests accepted at intake */               \
  X(broker_batches)       /* dispatch cycles with groups */               \
  X(broker_groups)        /* (epoch, tau) groups resolved */              \
  X(broker_group_requests) /* per-group distinct requests */              \
  X(broker_epoch_waits)   /* AtLeastEpoch requests parked */              \
  X(broker_admission_rejects) /* intake over queue depth */               \
  X(broker_quota_rejects)     /* over the client's weighted cap */        \
  X(broker_deadline_expired)  /* expired, never executed */               \
  X(broker_cancelled)         /* cancelled while queued */                \
  X(broker_shutdown_aborted)  /* resolved at shutdown */                  \
  X(broker_drain_aborted)     /* parked waiters cut loose by a drain */   \
  X(broker_max_depth)         /* queue-depth high-water */                \
  /* -- persistence (WAL + checkpoints + recovery + AsOf) -- */           \
  X(wal_records)          /* epoch records appended */                    \
  X(wal_bytes)            /* bytes appended (frames + payloads) */        \
  X(wal_fsyncs)           /* syncs the policy issued */                   \
  X(wal_segments)         /* segment files opened for append */           \
  X(checkpoints_written)                                                  \
  X(wal_segments_removed) /* compacted away */                            \
  X(checkpoints_removed)  /* past the retention count */                  \
  X(recovery_replayed)    /* WAL records replayed at recover() */         \
  X(asof_retained)        /* AsOf served from the in-memory ring */       \
  X(asof_rehydrated)      /* AsOf served from a checkpoint file */        \
  X(asof_unavailable)     /* AsOf outside the retained history */         \
  /* -- network front-end (src/net: RPC server + replication) -- */       \
  X(net_frames_in)        /* frames decoded off the wire */               \
  X(net_frames_out)       /* frames written to the wire */                \
  X(net_bytes_in)                                                         \
  X(net_bytes_out)                                                        \
  X(net_frame_rejects)    /* bad magic/version/CRC/oversize: conn cut */  \
  X(net_clients_accepted) /* connections accepted */                      \
  X(repl_snapshots_served) /* bootstrap checkpoints sent to replicas */   \
  X(repl_records_streamed) /* WAL records fanned out to replicas */       \
  X(repl_records_applied)  /* records applied on the replica side */

/// The engine's counter block (shared by the service, its snapshots
/// and the views built over them). Thread-safe: all counters are
/// relaxed atomics bumped from hot paths. Fields are generated from
/// DYNSLD_ENGINE_COUNTERS — see that list for per-counter meanings.
struct EngineStats {
#define DYNSLD_STATS_FIELD(name) std::atomic<uint64_t> name{0};
  DYNSLD_ENGINE_COUNTERS(DYNSLD_STATS_FIELD)
#undef DYNSLD_STATS_FIELD

  /// Number of counters in the block (generated; the coverage
  /// static_assert below keeps it honest).
  static constexpr size_t kNumCounters = 0
#define DYNSLD_STATS_PLUS1(name) +1
      DYNSLD_ENGINE_COUNTERS(DYNSLD_STATS_PLUS1)
#undef DYNSLD_STATS_PLUS1
      ;

  /// A plain (non-atomic) copy of every counter, for printing and test
  /// assertions. Fields mirror EngineStats one-for-one by generation,
  /// so a counter cannot exist without its Report field.
  struct Report {
#define DYNSLD_STATS_FIELD(name) uint64_t name;
    DYNSLD_ENGINE_COUNTERS(DYNSLD_STATS_FIELD)
#undef DYNSLD_STATS_FIELD

    uint64_t queries() const {
      return q_same_cluster + q_cluster_size + q_cluster_report +
             q_flat_clustering + q_size_histogram + q_num_clusters;
    }
    double avg_batch() const {
      return flushes ? static_cast<double>(ops_applied) / flushes : 0.0;
    }
    /// Mean number of distinct client requests sharing one (epoch, tau)
    /// group — the cross-client amortization factor of the broker.
    double avg_group_requests() const {
      return broker_groups
                 ? static_cast<double>(broker_group_requests) / broker_groups
                 : 0.0;
    }
  };

  /// Relaxed copy of every counter (generated field-by-field — no
  /// positional hand-copy to drift).
  Report report() const {
    Report rep;
#define DYNSLD_STATS_LOAD(name) \
  rep.name = name.load(std::memory_order_relaxed);
    DYNSLD_ENGINE_COUNTERS(DYNSLD_STATS_LOAD)
#undef DYNSLD_STATS_LOAD
    return rep;
  }

  /// Visit every counter as ("name", atomic&) — drives registry
  /// registration, exposition, and the coverage tests.
  template <class F>
  void for_each(F&& f) const {
#define DYNSLD_STATS_VISIT(name) f(#name, name);
    DYNSLD_ENGINE_COUNTERS(DYNSLD_STATS_VISIT)
#undef DYNSLD_STATS_VISIT
  }

  /// Raise a monotone high-water counter to at least `v`.
  static void bump_max(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void bump_max_batch(uint64_t sz) { bump_max(max_batch, sz); }
};

// Coverage guard: every atomic in EngineStats must come from the
// X-macro list. A field added by hand (outside DYNSLD_ENGINE_COUNTERS)
// changes sizeof and fails here instead of silently missing from
// report() and the scrape surface.
static_assert(sizeof(EngineStats) ==
                  EngineStats::kNumCounters * sizeof(std::atomic<uint64_t>),
              "EngineStats field added outside DYNSLD_ENGINE_COUNTERS");
// Same guard for the plain snapshot: Report must mirror the macro list
// field-for-field so the generated loads stay in sync.
static_assert(sizeof(EngineStats::Report) ==
                  EngineStats::kNumCounters * sizeof(uint64_t),
              "EngineStats::Report drifted from DYNSLD_ENGINE_COUNTERS");

/// Per-client request-plane accounting — the broker's QoS surface. One
/// block per client id (QueryRequest::client), created on first sight.
/// `weight`/`inflight` drive the weighted admission cap; the remaining
/// counters are scraped under "broker.client.<id>.*". All relaxed
/// atomics bumped from the submit/fulfill paths.
struct ClientStats {
  std::atomic<uint64_t> weight{1};           ///< admission weight (>= 1)
  std::atomic<uint64_t> inflight{0};         ///< admitted, unresolved
  std::atomic<uint64_t> submitted{0};        ///< requests admitted
  std::atomic<uint64_t> fulfilled{0};        ///< resolved with results
  std::atomic<uint64_t> quota_rejected{0};   ///< over the weighted cap
  std::atomic<uint64_t> deadline_expired{0};  ///< dropped by deadline
};

/// Registry-backed table of ClientStats blocks. Lives inside EngineObs
/// (not the broker) so the registered per-client counters share the
/// bundle's lifetime — snapshots can keep the registry alive past the
/// broker, and a late scrape must not chase freed counter storage.
/// Thread-safe: lookups take a shared lock, first-sight creation an
/// exclusive one; entries are never removed.
class ClientStatsTable {
 public:
  /// Wire the registry the per-client counters register into (done once
  /// by EngineObs's constructor, before any client can exist).
  void attach(obs::MetricRegistry* reg) { registry_ = reg; }

  /// The stats block of `client`, created — weight 1, counters
  /// registered under "broker.client.<id>.*" — on first sight. The
  /// pointer stays valid for the table's lifetime.
  ClientStats* get(uint64_t client) {
    {
      std::shared_lock<std::shared_mutex> lk(mu_);
      auto it = table_.find(client);
      if (it != table_.end()) return it->second.get();
    }
    std::unique_lock<std::shared_mutex> lk(mu_);
    auto [it, fresh] = table_.try_emplace(client);
    if (!fresh) return it->second.get();
    it->second = std::make_unique<ClientStats>();
    ClientStats* cs = it->second.get();
    total_weight_.fetch_add(1, std::memory_order_relaxed);
    if (registry_) {
      const std::string base = "broker.client." + std::to_string(client) + ".";
      registry_->add_counter(base + "submitted", &cs->submitted);
      registry_->add_counter(base + "fulfilled", &cs->fulfilled);
      registry_->add_counter(base + "quota_rejected", &cs->quota_rejected);
      registry_->add_counter(base + "deadline_expired", &cs->deadline_expired);
    }
    return cs;
  }

  /// Set a client's admission weight (0 clamps to 1), creating the
  /// block if unseen. The total adjusts so every cap recomputes on the
  /// next admission.
  void set_weight(uint64_t client, uint64_t weight) {
    if (weight == 0) weight = 1;
    ClientStats* cs = get(client);
    uint64_t old = cs->weight.exchange(weight, std::memory_order_relaxed);
    if (weight >= old)
      total_weight_.fetch_add(weight - old, std::memory_order_relaxed);
    else
      total_weight_.fetch_sub(old - weight, std::memory_order_relaxed);
  }

  /// Sum of every client's weight (0 until the first client appears).
  uint64_t total_weight() const {
    return total_weight_.load(std::memory_order_relaxed);
  }

  /// Distinct client ids seen.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return table_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<uint64_t, std::unique_ptr<ClientStats>> table_;
  std::atomic<uint64_t> total_weight_{0};
  obs::MetricRegistry* registry_ = nullptr;
};

/// The engine's full observability bundle: the counter block, the
/// metric registry it is registered into (one scrape surface), the
/// span trace ring, and the pre-registered latency histograms the hot
/// paths record into. Owned by SldService via shared_ptr; snapshots
/// alias the stats member so readers outliving the service stay safe.
///
/// Histogram units are nanoseconds; the catalog with meanings lives in
/// docs/OBSERVABILITY.md.
struct EngineObs {
  EngineStats stats;
  obs::MetricRegistry registry;
  obs::TraceRing trace;
  /// Per-client QoS accounting (broker weighted admission); counters
  /// register lazily under "broker.client.<id>.*".
  ClientStatsTable clients;

  // -- flush pipeline stages (recorded per flush / per shard) --
  obs::LatencyHistogram* flush_drain;
  obs::LatencyHistogram* flush_apply;
  obs::LatencyHistogram* flush_shard_build;  // one record per rebuilt shard
  obs::LatencyHistogram* flush_shard_patch;  // one record per patched shard
  obs::LatencyHistogram* flush_shards;       // all rebuilds of one epoch
  obs::LatencyHistogram* flush_cross;
  obs::LatencyHistogram* flush_publish;
  obs::LatencyHistogram* flush_notify;
  obs::LatencyHistogram* flush_total;
  // -- broker request lifecycle --
  obs::LatencyHistogram* broker_intake_wait;  // submit -> dispatch pickup
  obs::LatencyHistogram* broker_park;         // parked (AtLeastEpoch) time
  obs::LatencyHistogram* broker_resolve;      // per-group view resolution
  obs::LatencyHistogram* broker_fulfill;      // submit -> future fulfilled
  obs::LatencyHistogram* broker_cycle;        // whole dispatch cycle
  // -- subscription plane --
  obs::LatencyHistogram* sub_refresh;         // SubscribedView::refresh()
  // -- persistence (WAL append/fsync, checkpoint write, AsOf
  //    rehydration, whole-directory recovery) --
  obs::LatencyHistogram* persist_append;
  obs::LatencyHistogram* persist_fsync;
  obs::LatencyHistogram* persist_checkpoint;
  obs::LatencyHistogram* persist_rehydrate;
  obs::LatencyHistogram* persist_recover;

  /// Registers every EngineStats counter under "engine.<name>" and
  /// creates the histogram set. Gauges tied to a live service
  /// (epoch, queue depths) are added by SldService at construction.
  EngineObs() {
    clients.attach(&registry);
    stats.for_each([this](const char* name, const std::atomic<uint64_t>& c) {
      registry.add_counter(std::string("engine.") + name, &c);
    });
    flush_drain = registry.add_histogram("flush.drain");
    flush_apply = registry.add_histogram("flush.apply");
    flush_shard_build = registry.add_histogram("flush.shard_build");
    flush_shard_patch = registry.add_histogram("flush.shard_patch");
    flush_shards = registry.add_histogram("flush.shards");
    flush_cross = registry.add_histogram("flush.cross");
    flush_publish = registry.add_histogram("flush.publish");
    flush_notify = registry.add_histogram("flush.notify");
    flush_total = registry.add_histogram("flush.total");
    broker_intake_wait = registry.add_histogram("broker.intake_wait");
    broker_park = registry.add_histogram("broker.park");
    broker_resolve = registry.add_histogram("broker.resolve");
    broker_fulfill = registry.add_histogram("broker.fulfill");
    broker_cycle = registry.add_histogram("broker.cycle");
    sub_refresh = registry.add_histogram("sub.refresh");
    persist_append = registry.add_histogram("persist.append");
    persist_fsync = registry.add_histogram("persist.fsync");
    persist_checkpoint = registry.add_histogram("persist.checkpoint");
    persist_rehydrate = registry.add_histogram("persist.rehydrate");
    persist_recover = registry.add_histogram("persist.recover");
  }

  /// Aliasing handle on the stats member: shares the bundle's lifetime,
  /// so a snapshot holding it keeps the whole bundle alive.
  static std::shared_ptr<EngineStats> stats_handle(
      const std::shared_ptr<EngineObs>& obs) {
    return obs ? std::shared_ptr<EngineStats>(obs, &obs->stats) : nullptr;
  }
};

inline void print_report(const EngineStats::Report& r, std::FILE* out = stdout) {
  std::fprintf(out,
               "engine stats: enq %llu+/%llu-  coalesced %llu  flushes %llu "
               "(avg batch %.1f, max %llu)  epochs %llu  snapshots %llu built "
               "/ %llu reused (%.2f ms total)  queries %llu  cross ops %llu  "
               "views %llu (%llu cross-uf)  batches %llu (%llu queries)\n",
               (unsigned long long)r.inserts_enqueued,
               (unsigned long long)r.erases_enqueued,
               (unsigned long long)r.coalesced_pairs,
               (unsigned long long)r.flushes, r.avg_batch(),
               (unsigned long long)r.max_batch,
               (unsigned long long)r.epochs_published,
               (unsigned long long)r.shard_snapshots_built,
               (unsigned long long)r.shard_snapshots_reused,
               r.snapshot_build_ns / 1e6, (unsigned long long)r.queries(),
               (unsigned long long)r.cross_ops,
               (unsigned long long)r.views_built,
               (unsigned long long)r.cross_uf_builds,
               (unsigned long long)r.batch_runs,
               (unsigned long long)r.batch_queries);
  if (r.subs_notified || r.sub_refreshes)
    std::fprintf(out,
                 "subscriptions: %llu notifies  %llu refreshes  views %llu "
                 "reused / %llu incremental / %llu full  shards %llu reused / "
                 "%llu rebuilt  cross-uf %llu incremental\n",
                 (unsigned long long)r.subs_notified,
                 (unsigned long long)r.sub_refreshes,
                 (unsigned long long)r.refresh_views_reused,
                 (unsigned long long)r.refresh_views_incremental,
                 (unsigned long long)r.refresh_views_full,
                 (unsigned long long)r.refresh_shards_reused,
                 (unsigned long long)r.refresh_shards_rebuilt,
                 (unsigned long long)r.cross_uf_incremental);
  if (r.shard_snapshots_patched || r.shard_patch_fallbacks)
    std::fprintf(out,
                 "shard patching: %llu patched (%llu fallbacks)  rounds %llu "
                 "rerun / %llu total  %llu nodes patched\n",
                 (unsigned long long)r.shard_snapshots_patched,
                 (unsigned long long)r.shard_patch_fallbacks,
                 (unsigned long long)r.contraction_rounds_rerun,
                 (unsigned long long)r.contraction_rounds_total,
                 (unsigned long long)r.contraction_nodes_patched);
  if (r.labels_rebuilt || r.labels_patched || r.labels_reused)
    std::fprintf(out,
                 "flat labels: %llu rebuilt / %llu patched / %llu reused\n",
                 (unsigned long long)r.labels_rebuilt,
                 (unsigned long long)r.labels_patched,
                 (unsigned long long)r.labels_reused);
  if (r.broker_submits || r.broker_admission_rejects ||
      r.broker_deadline_expired)
    std::fprintf(out,
                 "broker: %llu submits  %llu cycles  %llu groups (%.1f "
                 "reqs/group)  %llu epoch-waits  depth max %llu  rejected "
                 "%llu  expired %llu  cancelled %llu  aborted %llu\n",
                 (unsigned long long)r.broker_submits,
                 (unsigned long long)r.broker_batches,
                 (unsigned long long)r.broker_groups, r.avg_group_requests(),
                 (unsigned long long)r.broker_epoch_waits,
                 (unsigned long long)r.broker_max_depth,
                 (unsigned long long)r.broker_admission_rejects,
                 (unsigned long long)r.broker_deadline_expired,
                 (unsigned long long)r.broker_cancelled,
                 (unsigned long long)r.broker_shutdown_aborted);
  if (r.wal_records || r.checkpoints_written || r.recovery_replayed ||
      r.asof_retained || r.asof_rehydrated || r.asof_unavailable)
    std::fprintf(out,
                 "persistence: wal %llu records (%llu B, %llu fsyncs, %llu "
                 "segments)  checkpoints %llu written / %llu removed  "
                 "segments removed %llu  replayed %llu  asof %llu ring / "
                 "%llu rehydrated / %llu unavailable\n",
                 (unsigned long long)r.wal_records,
                 (unsigned long long)r.wal_bytes,
                 (unsigned long long)r.wal_fsyncs,
                 (unsigned long long)r.wal_segments,
                 (unsigned long long)r.checkpoints_written,
                 (unsigned long long)r.checkpoints_removed,
                 (unsigned long long)r.wal_segments_removed,
                 (unsigned long long)r.recovery_replayed,
                 (unsigned long long)r.asof_retained,
                 (unsigned long long)r.asof_rehydrated,
                 (unsigned long long)r.asof_unavailable);
  if (r.net_frames_in || r.net_frames_out || r.repl_records_applied)
    std::fprintf(out,
                 "network: %llu frames in (%llu B) / %llu out (%llu B)  "
                 "%llu rejects  %llu clients  quota rejects %llu  repl %llu "
                 "streamed / %llu applied / %llu bootstraps\n",
                 (unsigned long long)r.net_frames_in,
                 (unsigned long long)r.net_bytes_in,
                 (unsigned long long)r.net_frames_out,
                 (unsigned long long)r.net_bytes_out,
                 (unsigned long long)r.net_frame_rejects,
                 (unsigned long long)r.net_clients_accepted,
                 (unsigned long long)r.broker_quota_rejects,
                 (unsigned long long)r.repl_records_streamed,
                 (unsigned long long)r.repl_records_applied,
                 (unsigned long long)r.repl_snapshots_served);
}

}  // namespace dynsld::engine
