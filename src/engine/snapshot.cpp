#include "engine/snapshot.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

namespace dynsld::engine {

std::shared_ptr<const DendrogramSnapshot> DendrogramSnapshot::build(
    const DynSLD& sld, vertex_id base) {
  auto snap = std::shared_ptr<DendrogramSnapshot>(new DendrogramSnapshot());
  DendrogramSnapshot& s = *snap;
  const Dendrogram& d = sld.dendrogram();
  s.n_ = sld.num_vertices();
  s.base_ = base;

  // Collect alive nodes and renumber in ascending rank order.
  std::vector<edge_id> ids;
  ids.reserve(d.size());
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (d.alive(e)) ids.push_back(e);
  }
  std::sort(ids.begin(), ids.end(),
            [&](edge_id a, edge_id b) { return d.rank(a) < d.rank(b); });
  size_t m = ids.size();
  std::vector<int32_t> slot_of(d.capacity(), kNoSlot);
  for (size_t i = 0; i < m; ++i) slot_of[ids[i]] = static_cast<int32_t>(i);

  s.u_.resize(m);
  s.v_.resize(m);
  s.weight_.resize(m);
  s.parent_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const Dendrogram::Node& nd = d.node(ids[i]);
    s.u_[i] = nd.u + base;
    s.v_[i] = nd.v + base;
    s.weight_[i] = nd.weight;
    s.parent_[i] = nd.parent == kNoEdge ? kNoSlot : slot_of[nd.parent];
    assert(s.parent_[i] == kNoSlot || s.parent_[i] > static_cast<int32_t>(i));
  }

  // Child CSR from the parent array (counting sort by parent).
  s.child_off_.assign(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    if (s.parent_[i] != kNoSlot) ++s.child_off_[s.parent_[i] + 1];
  }
  std::partial_sum(s.child_off_.begin(), s.child_off_.end(),
                   s.child_off_.begin());
  s.child_list_.resize(m ? s.child_off_[m] : 0);
  {
    std::vector<uint32_t> cursor(s.child_off_.begin(), s.child_off_.end() - 1);
    for (size_t i = 0; i < m; ++i) {
      if (s.parent_[i] != kNoSlot)
        s.child_list_[cursor[s.parent_[i]]++] = static_cast<uint32_t>(i);
    }
  }

  // Leaf lists: vertex v hangs off the node of e*_v.
  std::vector<edge_id> estar = sld.min_incident_all();
  s.leaf_parent_.resize(s.n_);
  s.leaf_off_.assign(m + 1, 0);
  for (vertex_id v = 0; v < s.n_; ++v) {
    s.leaf_parent_[v] = estar[v] == kNoEdge ? kNoSlot : slot_of[estar[v]];
    if (s.leaf_parent_[v] != kNoSlot) ++s.leaf_off_[s.leaf_parent_[v] + 1];
  }
  std::partial_sum(s.leaf_off_.begin(), s.leaf_off_.end(), s.leaf_off_.begin());
  s.leaf_list_.resize(m ? s.leaf_off_[m] : 0);
  {
    std::vector<uint32_t> cursor(s.leaf_off_.begin(), s.leaf_off_.end() - 1);
    for (vertex_id v = 0; v < s.n_; ++v) {
      if (s.leaf_parent_[v] != kNoSlot) s.leaf_list_[cursor[s.leaf_parent_[v]]++] = v;
    }
  }

  // Subtree vertex counts: one ascending pass (parent slot > child slot).
  s.count_.resize(m);
  for (size_t i = 0; i < m; ++i)
    s.count_[i] = s.leaf_off_[i + 1] - s.leaf_off_[i];
  for (size_t i = 0; i < m; ++i) {
    if (s.parent_[i] != kNoSlot) s.count_[s.parent_[i]] += s.count_[i];
  }

  // Binary lifting over parent pointers.
  s.levels_ = 1;
  while ((size_t{1} << s.levels_) < m + 1) ++s.levels_;
  s.up_.assign(static_cast<size_t>(s.levels_) * m, kNoSlot);
  if (m) {
    std::copy(s.parent_.begin(), s.parent_.end(), s.up_.begin());
    for (int k = 1; k < s.levels_; ++k) {
      for (size_t i = 0; i < m; ++i) {
        int32_t half = s.up_[(k - 1) * m + i];
        s.up_[k * m + i] = half == kNoSlot ? kNoSlot : s.up_[(k - 1) * m + half];
      }
    }
  }
  return snap;
}

int32_t DendrogramSnapshot::top_of(vertex_id v, double tau) const {
  int32_t x = leaf_parent_[v - base_];
  if (x == kNoSlot || weight_[x] > tau) return kNoSlot;
  for (int k = levels_ - 1; k >= 0; --k) {
    int32_t a = up(k, x);
    if (a != kNoSlot && weight_[a] <= tau) x = a;
  }
  return x;
}

bool DendrogramSnapshot::same_cluster(vertex_id s, vertex_id t,
                                      double tau) const {
  if (s == t) return true;
  int32_t a = top_of(s, tau);
  return a != kNoSlot && a == top_of(t, tau);
}

uint64_t DendrogramSnapshot::cluster_size(vertex_id u, double tau) const {
  int32_t top = top_of(u, tau);
  return top == kNoSlot ? 1 : count_[top];
}

uint64_t DendrogramSnapshot::num_clusters(double tau) const {
  // Nodes are rank-sorted, so weights are non-decreasing: the sub-tau
  // node count is the weight table's upper-bound prefix.
  size_t merges =
      std::upper_bound(weight_.begin(), weight_.end(), tau) - weight_.begin();
  return n_ - merges;
}

void DendrogramSnapshot::members_of(int32_t top,
                                    std::vector<vertex_id>& out) const {
  std::vector<int32_t> stack{top};
  while (!stack.empty()) {
    int32_t x = stack.back();
    stack.pop_back();
    for (uint32_t i = leaf_off_[x]; i < leaf_off_[x + 1]; ++i)
      out.push_back(leaf_list_[i] + base_);
    for (uint32_t i = child_off_[x]; i < child_off_[x + 1]; ++i)
      stack.push_back(static_cast<int32_t>(child_list_[i]));
  }
}

std::vector<vertex_id> DendrogramSnapshot::cluster_report(vertex_id u,
                                                          double tau) const {
  int32_t top = top_of(u, tau);
  if (top == kNoSlot) return {u};
  std::vector<vertex_id> out;
  out.reserve(count_[top]);
  members_of(top, out);
  return out;
}

DendrogramSnapshot::FlatLabels DendrogramSnapshot::flat_labels(
    double tau) const {
  FlatLabels out;
  const size_t m = weight_.size();
  // Descending slot pass: parents sit at larger slots, so top[parent]
  // is final when slot i is visited. A slot whose own weight exceeds
  // tau is inactive (kNoSlot); an active slot inherits its parent's top
  // when the parent is active, else it IS the top of its cluster.
  std::vector<int32_t> top(m);
  std::map<uint64_t, uint64_t> hist;
  uint64_t singletons = n_;
  for (size_t i = m; i-- > 0;) {
    if (weight_[i] > tau) {
      top[i] = kNoSlot;
      continue;
    }
    int32_t p = parent_[i];
    top[i] = (p != kNoSlot && top[p] != kNoSlot) ? top[p]
                                                 : static_cast<int32_t>(i);
    if (top[i] == static_cast<int32_t>(i)) {  // i tops a cluster at tau
      ++hist[count_[i]];
      singletons -= count_[i];
    }
  }
  if (singletons) hist[1] += singletons;
  // All members of a cluster share the same top node, so the top's u
  // endpoint (itself a member) is a consistent canonical label.
  out.label.resize(n_);
  for (vertex_id v = 0; v < n_; ++v) {
    int32_t lp = leaf_parent_[v];
    out.label[v] =
        (lp == kNoSlot || weight_[lp] > tau) ? v + base_ : u_[top[lp]];
  }
  out.hist.assign(hist.begin(), hist.end());
  return out;
}

std::vector<vertex_id> DendrogramSnapshot::flat_clustering(double tau) const {
  return flat_labels(tau).label;
}

void DendrogramSnapshot::threshold_union(UnionFind& uf, double tau) const {
  for (size_t i = 0; i < weight_.size(); ++i) {
    if (weight_[i] > tau) break;  // rank-sorted
    uf.unite(u_[i], v_[i]);
  }
}

}  // namespace dynsld::engine
