#include "engine/snapshot.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <cstring>

namespace dynsld::engine {

std::shared_ptr<const DendrogramSnapshot> DendrogramSnapshot::build(
    const DynSLD& sld, vertex_id base) {
  return build(sld, base, nullptr);
}

std::shared_ptr<const DendrogramSnapshot> DendrogramSnapshot::build(
    const DynSLD& sld, vertex_id base, std::vector<edge_id>* ids_out) {
  auto snap = std::shared_ptr<DendrogramSnapshot>(new DendrogramSnapshot());
  DendrogramSnapshot& s = *snap;
  const Dendrogram& d = sld.dendrogram();
  s.n_ = sld.num_vertices();
  s.base_ = base;

  // Collect alive nodes and renumber in ascending rank order.
  std::vector<edge_id> ids;
  ids.reserve(d.size());
  for (edge_id e = 0; e < d.capacity(); ++e) {
    if (d.alive(e)) ids.push_back(e);
  }
  std::sort(ids.begin(), ids.end(),
            [&](edge_id a, edge_id b) { return d.rank(a) < d.rank(b); });
  size_t m = ids.size();
  std::vector<int32_t> slot_of(d.capacity(), kNoSlot);
  for (size_t i = 0; i < m; ++i) slot_of[ids[i]] = static_cast<int32_t>(i);

  s.u_.resize(m);
  s.v_.resize(m);
  s.weight_.resize(m);
  s.parent_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const Dendrogram::Node& nd = d.node(ids[i]);
    s.u_[i] = nd.u + base;
    s.v_[i] = nd.v + base;
    s.weight_[i] = nd.weight;
    s.parent_[i] = nd.parent == kNoEdge ? kNoSlot : slot_of[nd.parent];
    assert(s.parent_[i] == kNoSlot || s.parent_[i] > static_cast<int32_t>(i));
  }

  // Leaf hooks: vertex v hangs off the node of e*_v.
  std::vector<edge_id> estar = sld.min_incident_all();
  s.leaf_parent_.resize(s.n_);
  for (vertex_id v = 0; v < s.n_; ++v)
    s.leaf_parent_[v] = estar[v] == kNoEdge ? kNoSlot : slot_of[estar[v]];

  s.derive_csr_and_counts();

  // Binary lifting over parent pointers.
  s.levels_ = s.compute_levels();
  s.up_.assign(static_cast<size_t>(s.levels_) * m, kNoSlot);
  if (m) {
    std::copy(s.parent_.begin(), s.parent_.end(), s.up_.begin());
    for (int k = 1; k < s.levels_; ++k) {
      for (size_t i = 0; i < m; ++i) {
        int32_t half = s.up_[(k - 1) * m + i];
        s.up_[k * m + i] = half == kNoSlot ? kNoSlot : s.up_[(k - 1) * m + half];
      }
    }
  }
  if (ids_out) *ids_out = std::move(ids);
  return snap;
}

int DendrogramSnapshot::compute_levels() const {
  // Sizing the table by the real maximum depth rather than log2(m)
  // keeps it small on the shallow dendrograms random weights produce;
  // a degenerate sorted-weight chain degrades back to log2(m) rounds.
  // Parents occupy larger slots, so a descending pass sees every
  // parent's depth before its children need it.
  const size_t m = parent_.size();
  std::vector<uint32_t> depth(m, 0);
  uint32_t maxd = 0;
  for (size_t i = m; i-- > 0;) {
    const int32_t p = parent_[i];
    if (p != kNoSlot) depth[i] = depth[p] + 1;
    if (depth[i] > maxd) maxd = depth[i];
  }
  return levels_for_depth(maxd);
}

void DendrogramSnapshot::derive_csr_and_counts() {
  const size_t m = parent_.size();

  // Child CSR from the parent array (counting sort by parent). Counts
  // land at index p, an in-place exclusive scan turns them into start
  // cursors, the fill advances the cursors into end offsets, and one
  // shift re-bases them — no separate cursor array.
  child_off_.assign(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    if (parent_[i] != kNoSlot) ++child_off_[parent_[i]];
  }
  uint32_t sum = 0;
  for (size_t p = 0; p <= m; ++p) {
    const uint32_t c = child_off_[p];
    child_off_[p] = sum;
    sum += c;
  }
  child_list_.resize(sum);
  for (size_t i = 0; i < m; ++i) {
    if (parent_[i] != kNoSlot)
      child_list_[child_off_[parent_[i]]++] = static_cast<uint32_t>(i);
  }
  if (m)
    std::memmove(child_off_.data() + 1, child_off_.data(),
                 m * sizeof(uint32_t));
  child_off_[0] = 0;

  // Leaf CSR from the per-vertex hooks, same scheme.
  leaf_off_.assign(m + 1, 0);
  for (vertex_id v = 0; v < n_; ++v) {
    if (leaf_parent_[v] != kNoSlot) ++leaf_off_[leaf_parent_[v]];
  }
  sum = 0;
  for (size_t p = 0; p <= m; ++p) {
    const uint32_t c = leaf_off_[p];
    leaf_off_[p] = sum;
    sum += c;
  }
  leaf_list_.resize(sum);
  for (vertex_id v = 0; v < n_; ++v) {
    if (leaf_parent_[v] != kNoSlot) leaf_list_[leaf_off_[leaf_parent_[v]]++] = v;
  }
  if (m)
    std::memmove(leaf_off_.data() + 1, leaf_off_.data(), m * sizeof(uint32_t));
  leaf_off_[0] = 0;

  derive_counts();
}

void DendrogramSnapshot::derive_counts() {
  // Subtree vertex counts: one ascending pass (parent slot > child slot).
  const size_t m = parent_.size();
  count_.resize(m);
  for (size_t i = 0; i < m; ++i) count_[i] = leaf_off_[i + 1] - leaf_off_[i];
  for (size_t i = 0; i < m; ++i) {
    if (parent_[i] != kNoSlot) count_[parent_[i]] += count_[i];
  }
}

int32_t DendrogramSnapshot::top_of(vertex_id v, double tau) const {
  int32_t x = leaf_parent_[v - base_];
  if (x == kNoSlot || weight_[x] > tau) return kNoSlot;
  for (int k = levels_ - 1; k >= 0; --k) {
    int32_t a = up(k, x);
    if (a != kNoSlot && weight_[a] <= tau) x = a;
  }
  return x;
}

bool DendrogramSnapshot::same_cluster(vertex_id s, vertex_id t,
                                      double tau) const {
  if (s == t) return true;
  int32_t a = top_of(s, tau);
  return a != kNoSlot && a == top_of(t, tau);
}

uint64_t DendrogramSnapshot::cluster_size(vertex_id u, double tau) const {
  int32_t top = top_of(u, tau);
  return top == kNoSlot ? 1 : count_[top];
}

uint64_t DendrogramSnapshot::num_clusters(double tau) const {
  // Nodes are rank-sorted, so weights are non-decreasing: the sub-tau
  // node count is the weight table's upper-bound prefix.
  size_t merges =
      std::upper_bound(weight_.begin(), weight_.end(), tau) - weight_.begin();
  return n_ - merges;
}

void DendrogramSnapshot::members_of(int32_t top,
                                    std::vector<vertex_id>& out) const {
  std::vector<int32_t> stack{top};
  while (!stack.empty()) {
    int32_t x = stack.back();
    stack.pop_back();
    for (uint32_t i = leaf_off_[x]; i < leaf_off_[x + 1]; ++i)
      out.push_back(leaf_list_[i] + base_);
    for (uint32_t i = child_off_[x]; i < child_off_[x + 1]; ++i)
      stack.push_back(static_cast<int32_t>(child_list_[i]));
  }
}

std::vector<vertex_id> DendrogramSnapshot::cluster_report(vertex_id u,
                                                          double tau) const {
  int32_t top = top_of(u, tau);
  if (top == kNoSlot) return {u};
  std::vector<vertex_id> out;
  out.reserve(count_[top]);
  members_of(top, out);
  return out;
}

DendrogramSnapshot::FlatLabels DendrogramSnapshot::flat_labels(
    double tau) const {
  FlatLabels out;
  const size_t m = weight_.size();
  // Descending slot pass: parents sit at larger slots, so top[parent]
  // is final when slot i is visited. A slot whose own weight exceeds
  // tau is inactive (kNoSlot); an active slot inherits its parent's top
  // when the parent is active, else it IS the top of its cluster.
  std::vector<int32_t> top(m);
  std::map<uint64_t, uint64_t> hist;
  uint64_t singletons = n_;
  for (size_t i = m; i-- > 0;) {
    if (weight_[i] > tau) {
      top[i] = kNoSlot;
      continue;
    }
    int32_t p = parent_[i];
    top[i] = (p != kNoSlot && top[p] != kNoSlot) ? top[p]
                                                 : static_cast<int32_t>(i);
    if (top[i] == static_cast<int32_t>(i)) {  // i tops a cluster at tau
      ++hist[count_[i]];
      singletons -= count_[i];
    }
  }
  if (singletons) hist[1] += singletons;
  // All members of a cluster share the same top node, so the top's u
  // endpoint (itself a member) is a consistent canonical label.
  out.label.resize(n_);
  for (vertex_id v = 0; v < n_; ++v) {
    int32_t lp = leaf_parent_[v];
    out.label[v] =
        (lp == kNoSlot || weight_[lp] > tau) ? v + base_ : u_[top[lp]];
  }
  out.hist.assign(hist.begin(), hist.end());
  return out;
}

std::vector<vertex_id> DendrogramSnapshot::flat_clustering(double tau) const {
  return flat_labels(tau).label;
}

void DendrogramSnapshot::threshold_union(UnionFind& uf, double tau) const {
  for (size_t i = 0; i < weight_.size(); ++i) {
    if (weight_[i] > tau) break;  // rank-sorted
    uf.unite(u_[i], v_[i]);
  }
}

}  // namespace dynsld::engine
