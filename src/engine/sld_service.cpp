#include "engine/sld_service.hpp"

#include <cassert>

namespace dynsld::engine {

SldService::SldService(const ServiceConfig& cfg)
    : cfg_(cfg),
      stats_(std::make_shared<EngineStats>()),
      queue_(stats_.get()),
      router_(cfg.num_vertices, cfg.num_shards, cfg.index, stats_) {
  // Epoch 0: the empty snapshot, so readers never see a null view.
  epochs_.publish(router_.build_snapshot(0, nullptr, cfg_.capture_edges));
  broker_ = std::make_unique<QueryBroker>(
      epochs_, subs_, stats_,
      QueryBroker::Options{cfg_.broker_queue_depth, cfg_.broker_interval});
}

SldService::~SldService() {
  // Broker first: resolve in-flight futures while the epochs they may
  // pin are still valid, and unhook its system subscription before the
  // shutdown flush publishes.
  broker_->shutdown();
  stop_writer();
}

void SldService::nudge_writer() {
  if (queue_.pending() < cfg_.flush_threshold) return;
  // Briefly take wake_mu_ so the notify cannot slip between the writer's
  // predicate check and its sleep (lost-wakeup race); otherwise a
  // threshold crossing could wait out a full flush_interval.
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_.notify_one();
}

ticket_t SldService::insert(vertex_id u, vertex_id v, double w) {
  assert(u < cfg_.num_vertices && v < cfg_.num_vertices && u != v);
  ticket_t t = queue_.enqueue_insert(u, v, w);
  nudge_writer();
  return t;
}

void SldService::erase(ticket_t t) {
  queue_.enqueue_erase(t);
  nudge_writer();
}

bool SldService::erase(vertex_id u, vertex_id v) {
  bool found = queue_.enqueue_erase(u, v);
  if (found) nudge_writer();
  return found;
}

uint64_t SldService::flush() {
  EpochManager::Snap published;
  uint64_t e;
  {
    std::lock_guard<std::mutex> lk(flush_mu_);
    MutationQueue::Drained batch = queue_.drain();
    if (batch.empty()) return epochs_.cur_epoch();
    stats_->flushes.fetch_add(1, std::memory_order_relaxed);
    stats_->ops_applied.fetch_add(batch.size(), std::memory_order_relaxed);
    stats_->bump_max_batch(batch.size());
    router_.apply(batch);
    EpochManager::Snap prev = epochs_.acquire();  // keep alive through build
    e = next_epoch_++;
    published = router_.build_snapshot(e, prev.get(), cfg_.capture_edges);
    epochs_.publish(published);
  }
  // Notify subscribers outside the flush lock so callbacks may read the
  // service (snapshot(), view(), even enqueue updates — not flush()).
  // Concurrent flushes can therefore notify out of order; subscribers
  // track the max pending epoch.
  size_t fired = subs_.notify(published);
  if (fired)
    stats_->subs_notified.fetch_add(fired, std::memory_order_relaxed);
  return e;
}

void SldService::start_writer() {
  std::lock_guard<std::mutex> lk(wake_mu_);
  if (writer_running_) return;
  stop_ = false;
  writer_running_ = true;
  writer_ = std::thread([this] { writer_loop(); });
}

void SldService::stop_writer() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    if (!writer_running_) return;
    stop_ = true;
  }
  wake_.notify_one();
  writer_.join();
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    writer_running_ = false;
  }
  flush();  // drain anything enqueued during shutdown
}

void SldService::writer_loop() {
  std::unique_lock<std::mutex> lk(wake_mu_);
  while (!stop_) {
    wake_.wait_for(lk, cfg_.flush_interval, [this] {
      return stop_ || queue_.pending() >= cfg_.flush_threshold;
    });
    if (stop_) break;
    if (queue_.pending() == 0) continue;
    lk.unlock();
    flush();
    lk.lock();
  }
}

std::vector<QueryResult> SldService::run(std::span<const Query> queries) const {
  if (queries.empty()) return {};
  QueryRequest req;
  req.queries.assign(queries.begin(), queries.end());
  return broker_->submit(std::move(req)).get().results;
}

QueryResult SldService::run_one(Query q) const {
  QueryRequest req;
  req.queries.push_back(std::move(q));
  return std::move(broker_->submit(std::move(req)).get().results[0]);
}

bool SldService::same_cluster(vertex_id s, vertex_id t, double tau) const {
  return std::get<bool>(run_one(SameClusterQuery{s, t, tau}));
}

uint64_t SldService::cluster_size(vertex_id u, double tau) const {
  return std::get<uint64_t>(run_one(ClusterSizeQuery{u, tau}));
}

std::vector<vertex_id> SldService::cluster_report(vertex_id u,
                                                  double tau) const {
  return std::get<std::vector<vertex_id>>(run_one(ClusterReportQuery{u, tau}));
}

std::vector<vertex_id> SldService::flat_clustering(double tau) const {
  return std::get<std::vector<vertex_id>>(run_one(FlatClusteringQuery{tau}));
}

uint64_t SldService::num_clusters(double tau) const {
  return std::get<uint64_t>(run_one(NumClustersQuery{tau}));
}

}  // namespace dynsld::engine
