#include "engine/sld_service.hpp"

#include <cassert>

#include "persist/persist.hpp"

namespace dynsld::engine {

SldService::SldService(const ServiceConfig& cfg)
    : cfg_(cfg),
      obs_(std::make_shared<EngineObs>()),
      stats_(EngineObs::stats_handle(obs_)),
      queue_(stats_.get()),
      router_(cfg.num_vertices, cfg.num_shards, cfg.index, obs_,
              cfg.incremental_snapshots) {
  // Live gauges: point-in-time reads of the running service, cleared in
  // the destructor (the registry itself may outlive us via snapshots).
  obs_->registry.add_gauge("engine.epoch", [this] { return epoch(); });
  obs_->registry.add_gauge("engine.pending_updates", [this] {
    return static_cast<uint64_t>(pending_updates());
  });
  obs_->registry.add_gauge("broker.depth", [this] {
    return static_cast<uint64_t>(broker_ ? broker_->depth() : 0);
  });
  obs_->registry.add_gauge("engine.subscribers", [this] {
    return static_cast<uint64_t>(subs_.size());
  });
  // AsOf retention: superseded epochs stay queryable from memory.
  epochs_.set_retention(cfg_.retain_epochs);
  // Epoch 0: the empty snapshot, so readers never see a null view.
  epochs_.publish(router_.build_snapshot(0, nullptr, cfg_.capture_edges));
  broker_ = std::make_unique<QueryBroker>(
      epochs_, subs_, obs_,
      QueryBroker::Options{cfg_.broker_queue_depth, cfg_.broker_interval});
  if (cfg_.persist.enabled()) {
    // Fresh durable service: refuse a directory that already holds
    // state (recover() is the resume path; shadowing it would fork
    // history), then engage the WAL from the very first flush.
    auto pm = std::make_unique<persist::PersistenceManager>(
        cfg_.persist, persist::local_backend(), obs_);
    pm->require_fresh();
    attach_persistence(std::move(pm));
  }
}

SldService::~SldService() {
  // Broker first: resolve in-flight futures while the epochs they may
  // pin are still valid, and unhook its system subscription before the
  // shutdown flush publishes.
  broker_->shutdown();
  stop_writer();
  // The bundle outlives us through snapshots; the gauges do not.
  obs_->registry.clear_gauges();
}

std::unique_ptr<obs::StatsSink> SldService::make_stats_sink(
    std::function<void(const std::string&)> emit,
    obs::StatsSink::Options opt) const {
  return std::make_unique<obs::StatsSink>(obs_->registry, std::move(emit),
                                          opt);
}

void SldService::nudge_writer() {
  if (queue_.pending() < cfg_.flush_threshold) return;
  // Briefly take wake_mu_ so the notify cannot slip between the writer's
  // predicate check and its sleep (lost-wakeup race); otherwise a
  // threshold crossing could wait out a full flush_interval.
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_.notify_one();
}

ticket_t SldService::insert(vertex_id u, vertex_id v, double w) {
  assert(u < cfg_.num_vertices && v < cfg_.num_vertices && u != v);
  ticket_t t = queue_.enqueue_insert(u, v, w);
  nudge_writer();
  return t;
}

void SldService::erase(ticket_t t) {
  queue_.enqueue_erase(t);
  nudge_writer();
}

bool SldService::erase(vertex_id u, vertex_id v) {
  bool found = queue_.enqueue_erase(u, v);
  if (found) nudge_writer();
  return found;
}

uint64_t SldService::flush() {
  EpochManager::Snap published;
  uint64_t e;
  {
    std::lock_guard<std::mutex> lk(flush_mu_);
    // Spans are tagged with the epoch this flush will publish if the
    // queue turns out non-empty (next_epoch_ is stable under the lock).
    const uint64_t e_tag = next_epoch_;
    obs::ScopedSpan total_span(&obs_->trace, "flush.total", e_tag,
                               obs_->flush_total);
    obs::ScopedSpan drain_span(&obs_->trace, "flush.drain", e_tag,
                               obs_->flush_drain);
    MutationQueue::Drained batch = queue_.drain();
    if (batch.empty()) {
      // Nothing flushed: no epoch, no spans (an idle-timer wakeup is
      // not a pipeline stage). But an interval fsync policy still owes
      // its deadline: a burst followed by silence must not leave the
      // WAL tail unsynced past the configured bound.
      if (persist_) persist_->sync_if_due();
      drain_span.cancel();
      total_span.cancel();
      return epochs_.cur_epoch();
    }
    uint64_t drain_ns = drain_span.stop();
    stats_->flushes.fetch_add(1, std::memory_order_relaxed);
    stats_->ops_applied.fetch_add(batch.size(), std::memory_order_relaxed);
    stats_->bump_max_batch(batch.size());
    // Write-ahead: the batch is durable (per the fsync policy) before
    // any of it mutates the shards, so a crash at any later point
    // replays to exactly this epoch.
    if (persist_) persist_->log_batch(e_tag, batch);
    // Replication tee: the same record bytes the WAL got, handed to the
    // in-memory feed under the same lock (net/replication.hpp).
    if (tap_.on_batch)
      tap_.on_batch(e_tag, persist::WalWriter::encode_record(e_tag, batch));
    obs::ScopedSpan apply_span(&obs_->trace, "flush.apply", e_tag,
                               obs_->flush_apply);
    router_.apply(batch);
    uint64_t apply_ns = apply_span.stop();
    EpochManager::Snap prev = epochs_.acquire();  // keep alive through build
    e = next_epoch_++;
    // Seed the epoch's trace with the stages the service timed; the
    // router fills the build stages and freezes it into the snapshot.
    obs::EpochTrace seed;
    seed.ops = batch.size();
    seed.drain_ns = drain_ns;
    seed.apply_ns = apply_ns;
    published =
        router_.build_snapshot(e, prev.get(), cfg_.capture_edges, seed);
    obs::ScopedSpan publish_span(&obs_->trace, "flush.publish", e,
                                 obs_->flush_publish);
    epochs_.publish(published);
    publish_span.stop();
    // Checkpoint cadence (still under the flush lock: the live-edge
    // table and the published snapshot must agree).
    if (persist_) {
      const uint64_t ck_before = persist_->last_checkpoint();
      persist_->on_publish(*published, queue_.next_ticket());
      const uint64_t ck_after = persist_->last_checkpoint();
      // A cadence checkpoint landed: tell the replication feed so it
      // can prune records the checkpoint now covers.
      if (ck_after != ck_before && tap_.on_checkpoint)
        tap_.on_checkpoint(ck_after);
    }
  }
  // Notify subscribers outside the flush lock so callbacks may read the
  // service (snapshot(), view(), even enqueue updates — not flush()).
  // Concurrent flushes can therefore notify out of order; subscribers
  // track the max pending epoch.
  obs::ScopedSpan notify_span(&obs_->trace, "flush.notify", e,
                              obs_->flush_notify);
  size_t fired = subs_.notify(published);
  notify_span.stop();
  if (fired)
    stats_->subs_notified.fetch_add(fired, std::memory_order_relaxed);
  return e;
}

uint64_t SldService::restore_publish(uint64_t epoch) {
  EpochManager::Snap published;
  {
    std::lock_guard<std::mutex> lk(flush_mu_);
    MutationQueue::Drained batch = queue_.drain();
    if (!batch.empty()) {
      stats_->flushes.fetch_add(1, std::memory_order_relaxed);
      stats_->ops_applied.fetch_add(batch.size(), std::memory_order_relaxed);
      stats_->bump_max_batch(batch.size());
      router_.apply(batch);
    }
    EpochManager::Snap prev = epochs_.acquire();
    // Force the epoch counter: replay republishes the exact historical
    // sequence, and post-recovery flushes continue right after it.
    next_epoch_ = epoch;
    uint64_t e = next_epoch_++;
    obs::EpochTrace seed;
    seed.ops = batch.size();
    published =
        router_.build_snapshot(e, prev.get(), cfg_.capture_edges, seed);
    epochs_.publish(published);
    // No persist hooks: recovery attaches persistence after replay, so
    // nothing here can re-log or re-checkpoint.
  }
  subs_.notify(published);
  return epoch;
}

void SldService::set_epoch_tap(EpochTap tap) {
  std::lock_guard<std::mutex> lk(flush_mu_);
  tap_ = std::move(tap);
  // Gap-free attachment contract (net/replication.hpp): every record
  // logged before this call must be readable from the directory, and
  // every later one reaches the tap — so flush the WAL's stdio tail to
  // disk while we hold the lock.
  if (persist_) persist_->sync_wal();
}

void SldService::attach_persistence(
    std::unique_ptr<persist::PersistenceManager> pm) {
  {
    std::lock_guard<std::mutex> lk(flush_mu_);
    persist_ = std::move(pm);
    // The boot config cleared the options to keep replay silent; make
    // config() truthful again.
    cfg_.persist = persist_->options();
  }
  broker_->set_rehydrator(
      [p = persist_.get()](uint64_t e) { return p->rehydrate(e); });
}

void SldService::start_writer() {
  std::lock_guard<std::mutex> lk(wake_mu_);
  if (writer_running_) return;
  stop_ = false;
  writer_running_ = true;
  writer_ = std::thread([this] { writer_loop(); });
}

void SldService::stop_writer() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    if (!writer_running_) return;
    stop_ = true;
  }
  wake_.notify_one();
  writer_.join();
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    writer_running_ = false;
  }
  flush();  // drain anything enqueued during shutdown
}

void SldService::writer_loop() {
  std::unique_lock<std::mutex> lk(wake_mu_);
  while (!stop_) {
    wake_.wait_for(lk, cfg_.flush_interval, [this] {
      return stop_ || queue_.pending() >= cfg_.flush_threshold;
    });
    if (stop_) break;
    if (queue_.pending() == 0) {
      // Idle tick: honor the WAL's interval-fsync deadline even though
      // no append will run it (wal.cpp only checks inside append()).
      lk.unlock();
      {
        std::lock_guard<std::mutex> flk(flush_mu_);
        if (persist_) persist_->sync_if_due();
      }
      lk.lock();
      continue;
    }
    lk.unlock();
    flush();
    lk.lock();
  }
}

std::vector<QueryResult> SldService::run(std::span<const Query> queries) const {
  if (queries.empty()) return {};
  QueryRequest req;
  req.queries.assign(queries.begin(), queries.end());
  return broker_->submit(std::move(req)).get().results;
}

QueryResult SldService::run_one(Query q) const {
  QueryRequest req;
  req.queries.push_back(std::move(q));
  return std::move(broker_->submit(std::move(req)).get().results[0]);
}

bool SldService::same_cluster(vertex_id s, vertex_id t, double tau) const {
  return std::get<bool>(run_one(SameClusterQuery{s, t, tau}));
}

uint64_t SldService::cluster_size(vertex_id u, double tau) const {
  return std::get<uint64_t>(run_one(ClusterSizeQuery{u, tau}));
}

std::vector<vertex_id> SldService::cluster_report(vertex_id u,
                                                  double tau) const {
  return std::get<std::vector<vertex_id>>(run_one(ClusterReportQuery{u, tau}));
}

std::vector<vertex_id> SldService::flat_clustering(double tau) const {
  return std::get<std::vector<vertex_id>>(run_one(FlatClusteringQuery{tau}));
}

uint64_t SldService::num_clusters(double tau) const {
  return std::get<uint64_t>(run_one(NumClustersQuery{tau}));
}

}  // namespace dynsld::engine
